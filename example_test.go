package bgpsim_test

import (
	"fmt"

	"bgpsim"
)

// The basic pattern: configure a partition, write the per-rank
// program, run it, and read the virtual elapsed time.
func ExampleRun() {
	cfg := bgpsim.NewSystem(bgpsim.BGP, bgpsim.VN, 64)
	res, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
		// Every rank reduces one double across the machine; on
		// BlueGene/P this rides the hardware collective tree.
		r.World().Allreduce(r, 8, true)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("tree ops:", res.Net.TreeOps)
	fmt.Println("torus messages:", res.Net.Messages)
	// Output:
	// tree ops: 1
	// torus messages: 0
}

// Point-to-point messages match on (source, tag) with wildcards, and
// can carry payload values between ranks.
func ExampleRank_payloads() {
	cfg := bgpsim.NewSystem(bgpsim.BGP, bgpsim.SMP, 2)
	result := make(chan string, 1)
	_, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
		if r.ID() == 0 {
			r.SendPayload(1, 64, 7, "measurement")
		} else {
			_, v := r.RecvPayload(bgpsim.AnySource, 7)
			result <- v.(string)
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(<-result)
	// Output:
	// measurement
}

// A deadlocked program is detected and reported rather than hanging:
// the error lists which ranks are blocked and why.
func ExampleRun_deadlock() {
	cfg := bgpsim.NewSystem(bgpsim.BGP, bgpsim.SMP, 2)
	_, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
		if r.ID() == 0 {
			r.Recv(1, 0) // rank 1 never sends
		}
	})
	fmt.Println(err != nil)
	// Output:
	// true
}

// Simulations are deterministic: identical configurations produce
// identical virtual times, so results can be compared exactly.
func ExampleRun_deterministic() {
	run := func() bgpsim.Duration {
		cfg := bgpsim.NewSystem(bgpsim.XT4QC, bgpsim.VN, 32)
		res, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
			r.World().Alltoall(r, 1024)
		})
		if err != nil {
			panic(err)
		}
		return res.Elapsed
	}
	fmt.Println(run() == run())
	// Output:
	// true
}
