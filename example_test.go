package bgpsim_test

import (
	"fmt"

	"bgpsim"
)

// The basic pattern: configure a partition, write the per-rank
// program, run it, and read the virtual elapsed time.
func ExampleRun() {
	cfg := bgpsim.NewSystem(bgpsim.BGP, bgpsim.VN, 64)
	res, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
		// Every rank reduces one double across the machine; on
		// BlueGene/P this rides the hardware collective tree.
		r.World().Allreduce(r, 8, true)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("tree ops:", res.Net.TreeOps)
	fmt.Println("torus messages:", res.Net.Messages)
	// Output:
	// tree ops: 1
	// torus messages: 0
}

// Point-to-point messages match on (source, tag) with wildcards, and
// can carry payload values between ranks.
func ExampleRank_payloads() {
	cfg := bgpsim.NewSystem(bgpsim.BGP, bgpsim.SMP, 2)
	result := make(chan string, 1)
	_, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
		if r.ID() == 0 {
			r.SendPayload(1, 64, 7, "measurement")
		} else {
			_, v := r.RecvPayload(bgpsim.AnySource, 7)
			result <- v.(string)
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(<-result)
	// Output:
	// measurement
}

// A deadlocked program is detected and reported rather than hanging:
// the error lists which ranks are blocked and why.
func ExampleRun_deadlock() {
	cfg := bgpsim.NewSystem(bgpsim.BGP, bgpsim.SMP, 2)
	_, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
		if r.ID() == 0 {
			r.Recv(1, 0) // rank 1 never sends
		}
	})
	fmt.Println(err != nil)
	// Output:
	// true
}

// Functional options are plain sugar over Config's public fields: an
// option-built and a field-poked configuration run identically.
func ExampleNewSystem() {
	cfg := bgpsim.NewSystem(bgpsim.BGP, bgpsim.VN, 64,
		bgpsim.WithColl("allreduce", "ring"),
		bgpsim.WithMapping(bgpsim.MapTXYZ))

	manual := bgpsim.NewSystem(bgpsim.BGP, bgpsim.VN, 64)
	manual.Coll = map[string]string{"allreduce": "ring"}
	manual.Mapping = bgpsim.MapTXYZ

	run := func(cfg bgpsim.Config) bgpsim.Duration {
		res, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
			r.World().Allreduce(r, 4096, true)
		})
		if err != nil {
			panic(err)
		}
		return res.Elapsed
	}
	fmt.Println(run(cfg) == run(manual))
	// Output:
	// true
}

// WithTrace records the run's message and collective events into a
// bounded buffer for inspection.
func ExampleWithTrace() {
	tb := bgpsim.NewTraceBuffer(128)
	cfg := bgpsim.NewSystem(bgpsim.BGP, bgpsim.SMP, 2,
		bgpsim.WithTrace(tb))
	_, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
		if r.ID() == 0 {
			r.Send(1, 1024, 5)
		} else {
			r.Recv(0, 5)
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("sends traced:", len(tb.OfKind(bgpsim.TraceSend)))
	// Output:
	// sends traced: 1
}

// WithProfile streams the run into a Recorder; the Result then yields
// per-rank time decompositions and a critical-path walk.
func ExampleWithProfile() {
	cfg := bgpsim.NewSystem(bgpsim.BGP, bgpsim.VN, 16,
		bgpsim.WithProfile(bgpsim.NewRecorder()))
	res, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
		r.Compute(1e8, 1e6, bgpsim.ClassDGEMM)
		r.World().Barrier(r)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("ranks profiled:", len(res.Profile().Ranks))
	fmt.Println("critical path covers the run:", res.CriticalPath().Total == res.Elapsed)
	// Output:
	// ranks profiled: 16
	// critical path covers the run: true
}

// Simulations are deterministic: identical configurations produce
// identical virtual times, so results can be compared exactly.
func ExampleRun_deterministic() {
	run := func() bgpsim.Duration {
		cfg := bgpsim.NewSystem(bgpsim.XT4QC, bgpsim.VN, 32)
		res, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
			r.World().Alltoall(r, 1024)
		})
		if err != nil {
			panic(err)
		}
		return res.Elapsed
	}
	fmt.Println(run() == run())
	// Output:
	// true
}

// A JSON job spec — the document a bgpsimd server client POSTs — is
// the second front-end to the same partition construction NewSystem
// performs with functional options: the two configurations run
// identically. The canonical spec rides along on the Config, so the
// Result always reports exactly which job produced it.
func ExampleNewSystemFromSpec() {
	spec, err := bgpsim.DecodeJobSpec([]byte(`{
		"kind": "bench",
		"machine": "BG/P", "mode": "VN", "ranks": 64,
		"mapping": "TXYZ", "fidelity": "analytic"
	}`))
	if err != nil {
		panic(err)
	}
	fromSpec, err := bgpsim.NewSystemFromSpec(spec)
	if err != nil {
		panic(err)
	}
	fromOpts := bgpsim.NewSystem(bgpsim.BGP, bgpsim.VN, 64,
		bgpsim.WithMapping(bgpsim.MapTXYZ))

	run := func(cfg bgpsim.Config) *bgpsim.Result {
		res, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
			r.World().Alltoall(r, 1024)
		})
		if err != nil {
			panic(err)
		}
		return res
	}
	a, b := run(fromSpec), run(fromOpts)
	fmt.Println("same elapsed:", a.Elapsed == b.Elapsed)
	got, ok := a.Spec().(bgpsim.JobSpec)
	fmt.Println("result carries the job:", ok && got.Hash() == spec.Hash())
	fmt.Println("option-built runs carry none:", b.Spec() == nil)
	// Output:
	// same elapsed: true
	// result carries the job: true
	// option-built runs carry none: true
}
