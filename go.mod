module bgpsim

go 1.22
