package bgpsim_test

// Golden determinism tests: the event-kernel fast path (4-ary heap,
// run-queue, closure-free process resumes) must reproduce the seed
// container/heap kernel bit for bit, and concurrent simulations must
// not perturb each other. The constants below were captured from the
// seed kernel before the fast path landed; any drift is a determinism
// regression, not a tolerance issue.

import (
	"testing"

	"bgpsim/internal/halo"
	"bgpsim/internal/imb"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/runner"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

// goldenAllreduce runs the contention-mode collective workload: a
// 32 KiB double-precision allreduce on 64 BG/P nodes in VN mode.
func goldenAllreduce() (*mpi.Result, error) {
	return mpi.Execute(mpi.Config{Machine: machine.Get(machine.BGP), Nodes: 64,
		Mode: machine.VN, Fidelity: network.Contention},
		func(r *mpi.Rank) { r.World().Allreduce(r, 32<<10, true) })
}

// goldenRing runs the packet-fidelity ring exchange workload on XT4/QC.
func goldenRing() (*mpi.Result, error) {
	return mpi.Execute(mpi.Config{Machine: machine.Get(machine.XT4QC), Nodes: 32,
		Mode: machine.VN, Fidelity: network.Packet},
		func(r *mpi.Rank) {
			right := (r.ID() + 1) % r.Size()
			left := (r.ID() - 1 + r.Size()) % r.Size()
			for k := 0; k < 4; k++ {
				r.Sendrecv(right, 16<<10, k, left, k)
			}
		})
}

const (
	seedAllreduceElapsed = sim.Duration(79101176)
	seedAllreduceEvents  = uint64(512)
	seedHaloDur          = sim.Duration(398397677)
	seedBcastDur         = sim.Duration(39550588)
	seedRingElapsed      = sim.Duration(130792824)
	seedRingEvents       = uint64(2176)
)

func TestGoldenSeedKernelValues(t *testing.T) {
	res, err := goldenAllreduce()
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed != seedAllreduceElapsed || res.Events != seedAllreduceEvents {
		t.Errorf("contention allreduce: elapsed=%d events=%d, seed kernel gave elapsed=%d events=%d",
			int64(res.Elapsed), res.Events, int64(seedAllreduceElapsed), seedAllreduceEvents)
	}

	d, err := halo.Run(halo.Options{Machine: machine.BGP, Mode: machine.VN,
		GridX: 16, GridY: 8, Mapping: topology.MapTXYZ,
		Protocol: halo.IsendIrecv, Words: 2048, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d != seedHaloDur {
		t.Errorf("halo: dur=%d, seed kernel gave %d", int64(d), int64(seedHaloDur))
	}

	d, err = imb.BcastLatency(machine.BGP, 256, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	if d != seedBcastDur {
		t.Errorf("bcast: dur=%d, seed kernel gave %d", int64(d), int64(seedBcastDur))
	}

	res, err = goldenRing()
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed != seedRingElapsed || res.Events != seedRingEvents {
		t.Errorf("packet ring: elapsed=%d events=%d, seed kernel gave elapsed=%d events=%d",
			int64(res.Elapsed), res.Events, int64(seedRingElapsed), seedRingEvents)
	}
}

// TestConcurrentRunsMatchSerial runs many simulations concurrently on
// the runner pool and checks every result against its serial value:
// each bgpsim run owns a private kernel, so cross-simulation
// parallelism must not change any individual outcome. Run under
// `go test -race` this also proves the runs share no state.
func TestConcurrentRunsMatchSerial(t *testing.T) {
	type job func() (sim.Duration, error)
	jobs := []job{
		func() (sim.Duration, error) {
			res, err := goldenAllreduce()
			if err != nil {
				return 0, err
			}
			return res.Elapsed, nil
		},
		func() (sim.Duration, error) {
			return halo.Run(halo.Options{Machine: machine.BGP, Mode: machine.VN,
				GridX: 16, GridY: 8, Mapping: topology.MapTXYZ,
				Protocol: halo.IsendIrecv, Words: 2048, Iterations: 3})
		},
		func() (sim.Duration, error) { return imb.BcastLatency(machine.BGP, 256, 32<<10) },
		func() (sim.Duration, error) {
			res, err := goldenRing()
			if err != nil {
				return 0, err
			}
			return res.Elapsed, nil
		},
	}

	serial := make([]sim.Duration, len(jobs))
	for i, j := range jobs {
		d, err := j()
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = d
	}

	// 8 interleaved copies of each workload on an 8-wide pool.
	const copies = 8
	got, err := runner.MapN(copies*len(jobs), 8, func(i int) (sim.Duration, error) {
		return jobs[i%len(jobs)]()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range got {
		if want := serial[i%len(jobs)]; d != want {
			t.Errorf("concurrent run %d: elapsed=%d, serial gave %d", i, int64(d), int64(want))
		}
	}
}
