package bgpsim_test

// Golden determinism tests: the event-kernel fast path (4-ary heap,
// run-queue, closure-free process resumes) must reproduce the seed
// container/heap kernel bit for bit, and concurrent simulations must
// not perturb each other. The constants below were captured from the
// seed kernel before the fast path landed; any drift is a determinism
// regression, not a tolerance issue.

import (
	"fmt"
	"testing"

	"bgpsim/internal/halo"
	"bgpsim/internal/imb"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/runner"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

// goldenAllreduce runs the contention-mode collective workload: a
// 32 KiB double-precision allreduce on 64 BG/P nodes in VN mode.
func goldenAllreduce() (*mpi.Result, error) {
	return mpi.Execute(mpi.Config{Machine: machine.Get(machine.BGP), Nodes: 64,
		Mode: machine.VN, Fidelity: network.Contention},
		func(r *mpi.Rank) { r.World().Allreduce(r, 32<<10, true) })
}

// goldenRing runs the packet-fidelity ring exchange workload on XT4/QC.
func goldenRing() (*mpi.Result, error) {
	return mpi.Execute(mpi.Config{Machine: machine.Get(machine.XT4QC), Nodes: 32,
		Mode: machine.VN, Fidelity: network.Packet},
		func(r *mpi.Rank) {
			right := (r.ID() + 1) % r.Size()
			left := (r.ID() - 1 + r.Size()) % r.Size()
			for k := 0; k < 4; k++ {
				r.Sendrecv(right, 16<<10, k, left, k)
			}
		})
}

// goldenShardedHalo runs the shard-eligible golden workload: the HALO
// exchange under the analytic network model (the only fidelity the
// sharded kernel accepts), split across the given number of domains.
// shards == 1 is the baseline the higher counts must reproduce.
func goldenShardedHalo(shards int) (sim.Duration, *mpi.Result, error) {
	return halo.RunResult(halo.Options{Machine: machine.BGP, Mode: machine.VN,
		GridX: 16, GridY: 8, Mapping: topology.MapTXYZ,
		Protocol: halo.IsendIrecv, Words: 2048, Iterations: 3,
		Analytic: true, Shards: shards})
}

const (
	seedAllreduceElapsed = sim.Duration(79101176)
	seedAllreduceEvents  = uint64(512)
	seedHaloDur          = sim.Duration(398397677)
	seedBcastDur         = sim.Duration(39550588)
	seedRingElapsed      = sim.Duration(130792824)
	seedRingEvents       = uint64(2176)

	// Captured from the sharded kernel at -shards 1; every other shard
	// count must reproduce them exactly.
	shardedHaloDur    = sim.Duration(90051176)
	shardedHaloEvents = uint64(7968)
)

func TestGoldenSeedKernelValues(t *testing.T) {
	res, err := goldenAllreduce()
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed != seedAllreduceElapsed || res.Events != seedAllreduceEvents {
		t.Errorf("contention allreduce: elapsed=%d events=%d, seed kernel gave elapsed=%d events=%d",
			int64(res.Elapsed), res.Events, int64(seedAllreduceElapsed), seedAllreduceEvents)
	}

	d, err := halo.Run(halo.Options{Machine: machine.BGP, Mode: machine.VN,
		GridX: 16, GridY: 8, Mapping: topology.MapTXYZ,
		Protocol: halo.IsendIrecv, Words: 2048, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d != seedHaloDur {
		t.Errorf("halo: dur=%d, seed kernel gave %d", int64(d), int64(seedHaloDur))
	}

	d, err = imb.BcastLatency(machine.BGP, 256, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	if d != seedBcastDur {
		t.Errorf("bcast: dur=%d, seed kernel gave %d", int64(d), int64(seedBcastDur))
	}

	res, err = goldenRing()
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed != seedRingElapsed || res.Events != seedRingEvents {
		t.Errorf("packet ring: elapsed=%d events=%d, seed kernel gave elapsed=%d events=%d",
			int64(res.Elapsed), res.Events, int64(seedRingElapsed), seedRingEvents)
	}
}

// TestGoldenShardedKernelValues pins the sharded kernel's canonical
// result: every shard count must produce the same elapsed time and
// event count, equal to the pinned -shards 1 baseline. A drift at any
// single count is a determinism regression in the conservative-PDES
// synchronization or the canonical event ordering.
func TestGoldenShardedKernelValues(t *testing.T) {
	for _, s := range []int{1, 2, 4, 8} {
		d, res, err := goldenShardedHalo(s)
		if err != nil {
			t.Fatalf("shards=%d: %v", s, err)
		}
		if res.Shards != s {
			t.Errorf("shards=%d: ran on %d shards (fallback?)", s, res.Shards)
		}
		if d != shardedHaloDur || res.Events != shardedHaloEvents {
			t.Errorf("shards=%d: dur=%d events=%d, want dur=%d events=%d",
				s, int64(d), res.Events, int64(shardedHaloDur), shardedHaloEvents)
		}
	}
}

// TestGoldenShardedAtAnyWorkerCount interleaves sharded runs at mixed
// shard counts on runner pools of different widths: stdout-visible
// results must be byte-identical at any -shards N and any -j N
// combination, including shard counts exceeding GOMAXPROCS.
func TestGoldenShardedAtAnyWorkerCount(t *testing.T) {
	counts := []int{1, 2, 4, 8}
	for _, workers := range []int{1, 4} {
		got, err := runner.MapN(2*len(counts), workers, func(i int) (sim.Duration, error) {
			d, res, err := goldenShardedHalo(counts[i%len(counts)])
			if err != nil {
				return 0, err
			}
			if res.Events != shardedHaloEvents {
				return 0, fmt.Errorf("events=%d, want %d", res.Events, shardedHaloEvents)
			}
			return d, nil
		})
		if err != nil {
			t.Fatalf("j=%d: %v", workers, err)
		}
		for i, d := range got {
			if d != shardedHaloDur {
				t.Errorf("j=%d run %d (shards=%d): dur=%d, want %d",
					workers, i, counts[i%len(counts)], int64(d), int64(shardedHaloDur))
			}
		}
	}
}

// TestConcurrentRunsMatchSerial runs many simulations concurrently on
// the runner pool and checks every result against its serial value:
// each bgpsim run owns a private kernel, so cross-simulation
// parallelism must not change any individual outcome. Run under
// `go test -race` this also proves the runs share no state.
func TestConcurrentRunsMatchSerial(t *testing.T) {
	type job func() (sim.Duration, error)
	jobs := []job{
		func() (sim.Duration, error) {
			res, err := goldenAllreduce()
			if err != nil {
				return 0, err
			}
			return res.Elapsed, nil
		},
		func() (sim.Duration, error) {
			return halo.Run(halo.Options{Machine: machine.BGP, Mode: machine.VN,
				GridX: 16, GridY: 8, Mapping: topology.MapTXYZ,
				Protocol: halo.IsendIrecv, Words: 2048, Iterations: 3})
		},
		func() (sim.Duration, error) { return imb.BcastLatency(machine.BGP, 256, 32<<10) },
		func() (sim.Duration, error) {
			res, err := goldenRing()
			if err != nil {
				return 0, err
			}
			return res.Elapsed, nil
		},
	}

	serial := make([]sim.Duration, len(jobs))
	for i, j := range jobs {
		d, err := j()
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = d
	}

	// 8 interleaved copies of each workload on an 8-wide pool.
	const copies = 8
	got, err := runner.MapN(copies*len(jobs), 8, func(i int) (sim.Duration, error) {
		return jobs[i%len(jobs)]()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range got {
		if want := serial[i%len(jobs)]; d != want {
			t.Errorf("concurrent run %d: elapsed=%d, serial gave %d", i, int64(d), int64(want))
		}
	}
}
