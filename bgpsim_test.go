package bgpsim_test

import (
	"testing"

	"bgpsim"
)

func TestPublicAPISmoke(t *testing.T) {
	cfg := bgpsim.NewSystem(bgpsim.BGP, bgpsim.VN, 64)
	res, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
		r.Compute(1e6, 1e5, bgpsim.ClassStencil)
		right := (r.ID() + 1) % r.Size()
		left := (r.ID() - 1 + r.Size()) % r.Size()
		r.Sendrecv(right, 1024, 0, left, 0)
		r.World().Allreduce(r, 8, true)
		r.World().Barrier(r)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
	if res.Net.Messages == 0 {
		t.Error("no messages recorded")
	}
}

func TestPublicAPIDeterminism(t *testing.T) {
	run := func() bgpsim.Duration {
		cfg := bgpsim.NewSystem(bgpsim.XT4QC, bgpsim.VN, 32)
		res, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
			r.World().Alltoall(r, 512)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	if a, b := run(), run(); a != b {
		t.Errorf("public API runs differ: %v vs %v", a, b)
	}
}

func TestGetMachine(t *testing.T) {
	m := bgpsim.GetMachine(bgpsim.BGP)
	if m.Name != "BlueGene/P" || m.CoresPerNode != 4 {
		t.Errorf("unexpected machine: %+v", m)
	}
}

func TestSites(t *testing.T) {
	rep, res, err := bgpsim.RunReport(bgpsim.Eugene, bgpsim.SMP, 8, func(r *bgpsim.Rank) {
		r.World().Bcast(r, 0, 4096)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || rep.Ranks != 8 {
		t.Errorf("report: %+v", rep)
	}
}

func TestSeconds(t *testing.T) {
	if bgpsim.Seconds(1).Seconds() != 1 {
		t.Error("Seconds round trip failed")
	}
	if bgpsim.Second != bgpsim.Seconds(1) {
		t.Error("Second constant mismatch")
	}
}

func TestDeadlockSurfaced(t *testing.T) {
	cfg := bgpsim.NewSystem(bgpsim.BGP, bgpsim.SMP, 2)
	_, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
		if r.ID() == 0 {
			r.Recv(1, 0)
		}
	})
	if err == nil {
		t.Fatal("deadlock not reported through public API")
	}
}

// TestPublicPartitionAPI: the partition surface — carving a prism and
// a scattered view out of a machine torus and running on each. The
// isolated prism is never slower than the same program on a scattered
// allocation of equal size, whose internal routes cross foreign nodes.
func TestPublicPartitionAPI(t *testing.T) {
	parent := bgpsim.NewTorus(bgpsim.DimsForNodes(64))
	ring := func(r *bgpsim.Rank) {
		right := (r.ID() + 1) % r.Size()
		left := (r.ID() - 1 + r.Size()) % r.Size()
		for k := 0; k < 4; k++ {
			r.Sendrecv(right, 64<<10, k, left, k)
		}
	}
	elapsed := func(p *bgpsim.Partition) bgpsim.Duration {
		cfg := bgpsim.NewSystem(bgpsim.BGP, bgpsim.SMP, 8, bgpsim.WithPartition(p))
		res, err := bgpsim.Run(cfg, ring)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}

	prism, err := bgpsim.NewPrismPartition(parent, bgpsim.Coord{0, 0, 0}, bgpsim.Dims{2, 2, 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	scattered, err := bgpsim.NewScatteredPartition(parent, []int{0, 8, 16, 24, 32, 40, 48, 56})
	if err != nil {
		t.Fatal(err)
	}
	if scattered.ExternalRouteShare() <= 0 {
		t.Fatalf("scattered partition reports external share %v, want > 0", scattered.ExternalRouteShare())
	}
	if iso, sc := elapsed(prism), elapsed(scattered); sc < iso {
		t.Errorf("scattered ring (%v) beat the isolated prism (%v)", sc, iso)
	}
}
