# bgpsim build and reproduction targets.

GO ?= go

.PHONY: all build test test-short vet bench paper paper-full verify examples cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure at reduced scale into results/.
paper:
	$(GO) run ./cmd/paper -exp all -out results/reduced

# The paper's actual process counts (minutes of wall time).
paper-full:
	$(GO) run ./cmd/paper -exp all -full -out results/full

# Check the paper's claims against the simulation.
verify:
	$(GO) run ./cmd/paper -verify

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/halo-mapping
	$(GO) run ./examples/power-study
	$(GO) run ./examples/custom-app
	$(GO) run ./examples/real-programs

cover:
	$(GO) test -cover ./...

clean:
	rm -f test_output.txt bench_output.txt
