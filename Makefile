# bgpsim build and reproduction targets.

GO ?= go

.PHONY: all build test test-short vet check bench bench-all benchdiff paper paper-full verify examples cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# Tier-1+ verification: formatting, vet, the full suite under the race
# detector (covers the concurrent sweep runner), the fuzz seed corpora,
# per-package coverage floors, and a resilience-sweep smoke run.
check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt -l:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) test -race -timeout 20m ./...
	$(GO) test -run 'Fuzz' ./internal/topology/ ./internal/mpi/ ./internal/fault/ ./internal/fault/conformance/ ./internal/alloc/ ./internal/facility/
	$(MAKE) cover
	@# Chaos smoke: the faults experiment (including the log=sender /
	@# restart=ckpt replay table) must print byte-identical output at
	@# any worker count and shard count.
	$(GO) run ./cmd/paper -exp faults -j 1 > /tmp/bgpsim-check-f1.txt
	$(GO) run ./cmd/paper -exp faults -j 4 -shards 4 > /tmp/bgpsim-check-f4.txt
	@cmp /tmp/bgpsim-check-f1.txt /tmp/bgpsim-check-f4.txt || \
		{ echo "check: paper -exp faults differs between -j 1 and -j 4 -shards 4"; exit 1; }
	@rm -f /tmp/bgpsim-check-f1.txt /tmp/bgpsim-check-f4.txt
	$(GO) run ./cmd/paper -exp colltune > /dev/null
	$(GO) run ./cmd/paper -exp profile > /dev/null
	$(GO) run ./cmd/halo -gx 4 -gy 2 -profile -trace /tmp/bgpsim-check-trace.json > /dev/null
	@rm -f /tmp/bgpsim-check-trace.json
	@# Sharded determinism smoke: the parallel kernel must print byte-
	@# identical experiment output at any shard count.
	$(GO) run ./cmd/paper -exp profile -shards 1 > /tmp/bgpsim-check-s1.txt
	$(GO) run ./cmd/paper -exp profile -shards 4 > /tmp/bgpsim-check-s4.txt
	@cmp /tmp/bgpsim-check-s1.txt /tmp/bgpsim-check-s4.txt || \
		{ echo "check: paper -exp profile differs between -shards 1 and -shards 4"; exit 1; }
	@rm -f /tmp/bgpsim-check-s1.txt /tmp/bgpsim-check-s4.txt
	@# Facility smoke: the multi-job facility loop (many concurrent
	@# partition-scoped simulations + a rack blast across jobs) must
	@# print byte-identical output at any worker and shard count.
	$(GO) run ./cmd/paper -exp facility -j 1 > /tmp/bgpsim-check-fac1.txt
	$(GO) run ./cmd/paper -exp facility -j 4 -shards 4 > /tmp/bgpsim-check-fac4.txt
	@cmp /tmp/bgpsim-check-fac1.txt /tmp/bgpsim-check-fac4.txt || \
		{ echo "check: paper -exp facility differs between -j 1 and -j 4 -shards 4"; exit 1; }
	@rm -f /tmp/bgpsim-check-fac1.txt /tmp/bgpsim-check-fac4.txt
	@# Calibration smoke: the fit and the CRN variability sweeps must
	@# print byte-identical output at any worker and shard count — the
	@# common-random-numbers guarantee the CI tables are built on.
	$(GO) run ./cmd/paper -exp calib -j 1 > /tmp/bgpsim-check-cal1.txt
	$(GO) run ./cmd/paper -exp calib -j 4 -shards 4 > /tmp/bgpsim-check-cal4.txt
	@cmp /tmp/bgpsim-check-cal1.txt /tmp/bgpsim-check-cal4.txt || \
		{ echo "check: paper -exp calib differs between -j 1 and -j 4 -shards 4"; exit 1; }
	@rm -f /tmp/bgpsim-check-cal1.txt /tmp/bgpsim-check-cal4.txt
	@# Server smoke: bgpsimd submits one job twice over real HTTP and
	@# must answer miss then hit with byte-identical result documents,
	@# then drain cleanly (exit 0).
	$(GO) run ./cmd/bgpsimd -smoke
	@# Daemon smoke: the real binary on a random port — POST the same
	@# job twice (second must be a byte-identical cache hit), SIGTERM,
	@# and require the graceful drain to exit 0.
	$(GO) build -o /tmp/bgpsim-check-bgpsimd ./cmd/bgpsimd
	@rm -f /tmp/bgpsim-check-bgpsimd.addr
	@/tmp/bgpsim-check-bgpsimd -addr 127.0.0.1:0 -addr-file /tmp/bgpsim-check-bgpsimd.addr 2>/dev/null & \
	pid=$$!; \
	for i in $$(seq 1 50); do [ -s /tmp/bgpsim-check-bgpsimd.addr ] && break; sleep 0.1; done; \
	addr=$$(cat /tmp/bgpsim-check-bgpsimd.addr); \
	job='{"kind":"bench","bench":"allreduce","ranks":64,"trace":true}'; \
	curl -sf -D /tmp/bgpsim-check-h1 -o /tmp/bgpsim-check-b1 -X POST "http://$$addr/v1/jobs" -d "$$job" || { echo "check: bgpsimd first submit failed"; kill $$pid; exit 1; }; \
	curl -sf -D /tmp/bgpsim-check-h2 -o /tmp/bgpsim-check-b2 -X POST "http://$$addr/v1/jobs" -d "$$job" || { echo "check: bgpsimd second submit failed"; kill $$pid; exit 1; }; \
	grep -qi "^X-Bgpsimd-Cache: hit" /tmp/bgpsim-check-h2 || { echo "check: bgpsimd resubmission was not a cache hit"; kill $$pid; exit 1; }; \
	cmp -s /tmp/bgpsim-check-b1 /tmp/bgpsim-check-b2 || { echo "check: bgpsimd cache hit body differs from miss body"; kill $$pid; exit 1; }; \
	cjob='{"kind":"calib"}'; \
	curl -sf -o /tmp/bgpsim-check-c1 -X POST "http://$$addr/v1/jobs" -d "$$cjob" || { echo "check: bgpsimd calib submit failed"; kill $$pid; exit 1; }; \
	curl -sf -D /tmp/bgpsim-check-ch2 -o /tmp/bgpsim-check-c2 -X POST "http://$$addr/v1/jobs" -d "$$cjob" || { echo "check: bgpsimd calib resubmit failed"; kill $$pid; exit 1; }; \
	grep -qi "^X-Bgpsimd-Cache: hit" /tmp/bgpsim-check-ch2 || { echo "check: bgpsimd calib resubmission was not a cache hit"; kill $$pid; exit 1; }; \
	cmp -s /tmp/bgpsim-check-c1 /tmp/bgpsim-check-c2 || { echo "check: bgpsimd calib cache hit body differs from miss body"; kill $$pid; exit 1; }; \
	kill -TERM $$pid; wait $$pid || { echo "check: bgpsimd drain did not exit 0"; exit 1; }
	@rm -f /tmp/bgpsim-check-bgpsimd /tmp/bgpsim-check-bgpsimd.addr /tmp/bgpsim-check-h1 /tmp/bgpsim-check-h2 /tmp/bgpsim-check-b1 /tmp/bgpsim-check-b2 /tmp/bgpsim-check-c1 /tmp/bgpsim-check-c2 /tmp/bgpsim-check-ch2

# Kernel hot-path benchmarks. BENCH_kernel.json (test2json stream, one
# object per line) records the perf trajectory so future PRs can diff
# ns/op, allocs/op, and events/s against this one.
bench:
	$(GO) test -run '^$$' -bench BenchmarkKernel -benchmem -count=1 -json ./internal/sim/ > BENCH_kernel.json
	@grep -oE '"Output":"Benchmark[^"]*\\t"' BENCH_kernel.json | sed 's/"Output":"//;s/\\t"$$//'
	@grep -oE '"Output":"[^"]*ns/op[^"]*"' BENCH_kernel.json | sed 's/"Output":"//;s/\\n"$$//;s/\\t/  /g'

# The full benchmark suite (paper tables, ablations, compute kernels).
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Re-run the kernel benchmarks and diff against the committed
# BENCH_kernel.json: fails on a >10% ns/op regression, and the named
# collective benchmarks must exist in both recordings.
benchdiff:
	$(GO) test -run '^$$' -bench BenchmarkKernel -benchmem -count=1 -json ./internal/sim/ > bench_fresh.json
	$(GO) run ./cmd/benchdiff -old BENCH_kernel.json -new bench_fresh.json \
		-max-regress 10 -require KernelAllreduce512,KernelBcast512,KernelSharded/shards=1
	@rm -f bench_fresh.json

# Regenerate every paper table/figure at reduced scale into results/.
paper:
	$(GO) run ./cmd/paper -exp all -out results/reduced

# The paper's actual process counts (minutes of wall time).
paper-full:
	$(GO) run ./cmd/paper -exp all -full -out results/full

# Check the paper's claims against the simulation.
verify:
	$(GO) run ./cmd/paper -verify

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/halo-mapping
	$(GO) run ./examples/power-study
	$(GO) run ./examples/custom-app
	$(GO) run ./examples/real-programs

# Coverage with per-package floors: the packages the resilience and
# observability contracts lean on (fault injection, the MPI layer, the
# probes) must not silently lose their tests. Floors sit ~5 points
# below measured coverage; raise them as the suites grow.
COVER_FLOORS = bgpsim/internal/fault:86 bgpsim/internal/mpi:83 bgpsim/internal/obs:65 bgpsim/internal/alloc:89 bgpsim/internal/facility:85 bgpsim/internal/jobspec:70 bgpsim/internal/server:70 bgpsim/internal/calib:80 bgpsim/internal/stats:80

cover:
	@$(GO) test -cover ./... | awk -v floors="$(COVER_FLOORS)" ' \
		{ print } \
		/^ok/ { for (i = 1; i <= NF; i++) if ($$i ~ /%$$/) pct[$$2] = substr($$i, 1, length($$i)-1) + 0 } \
		END { \
			n = split(floors, fl, " "); bad = 0; \
			for (j = 1; j <= n; j++) { \
				split(fl[j], kv, ":"); \
				if (!(kv[1] in pct)) { printf "cover: no coverage reported for %s\n", kv[1]; bad = 1 } \
				else if (pct[kv[1]] < kv[2] + 0) { printf "cover: %s at %.1f%% is below the %s%% floor\n", kv[1], pct[kv[1]], kv[2]; bad = 1 } \
			} \
			exit bad }'

clean:
	rm -f test_output.txt bench_output.txt bench_fresh.json
