package bgpsim_test

// The benchmark harness: one testing.B benchmark per table and figure
// of the paper, each regenerating its data from the simulator (at
// reduced scale by default; set BGPSIM_FULL=1 for the paper's actual
// process counts), plus kernel micro-benchmarks and ablation
// benchmarks for the design choices called out in DESIGN.md §4.
//
//	go test -bench=. -benchmem
//	BGPSIM_FULL=1 go test -bench=Fig4 -benchtime=1x

import (
	"os"
	"testing"

	"bgpsim/internal/apps/pop"
	"bgpsim/internal/halo"
	"bgpsim/internal/hpcc"
	"bgpsim/internal/imb"
	"bgpsim/internal/kernels"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/paper"
	"bgpsim/internal/runner"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

func opts() paper.Options {
	return paper.Options{Full: os.Getenv("BGPSIM_FULL") == "1"}
}

// runExperiment executes one registry experiment per iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := paper.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	o := opts()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(o); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper table/figure. ---

func BenchmarkTable1(b *testing.B)      { runExperiment(b, "table1") }
func BenchmarkTable2HPCC(b *testing.B)  { runExperiment(b, "table2") }
func BenchmarkTable3Power(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkTop500HPL(b *testing.B)   { runExperiment(b, "top500") }
func BenchmarkFig4POP(b *testing.B)     { runExperiment(b, "fig4") }
func BenchmarkFig5CAM(b *testing.B)     { runExperiment(b, "fig5") }
func BenchmarkFig6S3D(b *testing.B)     { runExperiment(b, "fig6") }
func BenchmarkFig7GYRO(b *testing.B)    { runExperiment(b, "fig7") }
func BenchmarkFig8MD(b *testing.B)      { runExperiment(b, "fig8") }

// Figure 1, per panel.

func fig1Ranks() int {
	if os.Getenv("BGPSIM_FULL") == "1" {
		return 4096
	}
	return 512
}

func BenchmarkFig1HPL(b *testing.B) {
	ranks := fig1Ranks()
	for i := 0; i < b.N; i++ {
		for _, id := range []machine.ID{machine.BGP, machine.XT4QC} {
			n := hpcc.ProblemSizeN(machine.Get(id), machine.VN, ranks, 0.8)
			gf := hpcc.HPLAnalytic(id, machine.VN, ranks, n, hpcc.BlockingNB(id))
			if gf <= 0 {
				b.Fatal("no HPL rate")
			}
		}
	}
}

func BenchmarkFig1FFT(b *testing.B) {
	ranks := fig1Ranks()
	for i := 0; i < b.N; i++ {
		for _, id := range []machine.ID{machine.BGP, machine.XT4QC} {
			if hpcc.FFTAnalytic(id, machine.VN, ranks) <= 0 {
				b.Fatal("no FFT rate")
			}
		}
	}
}

func BenchmarkFig1PTRANS(b *testing.B) {
	ranks := fig1Ranks()
	for i := 0; i < b.N; i++ {
		for _, id := range []machine.ID{machine.BGP, machine.XT4QC} {
			if hpcc.PTRANSAnalytic(id, machine.VN, ranks) <= 0 {
				b.Fatal("no PTRANS rate")
			}
		}
	}
}

func BenchmarkFig1RandomAccess(b *testing.B) {
	ranks := fig1Ranks()
	for i := 0; i < b.N; i++ {
		for _, id := range []machine.ID{machine.BGP, machine.XT4QC} {
			if hpcc.RandomAccessGUPS(id, machine.VN, ranks) <= 0 {
				b.Fatal("no RA rate")
			}
		}
	}
}

// Figure 2, per panel group. The sweep-shaped benchmarks run their
// points through the runner pool, like the experiments they model, so
// they measure the parallel sweep throughput the CLIs see (set
// GOMAXPROCS, or runner.SetWorkers from TestMain, to vary width).

func BenchmarkFig2Protocols(b *testing.B) {
	gx, gy := 16, 8
	if os.Getenv("BGPSIM_FULL") == "1" {
		gx, gy = 128, 64
	}
	protos := []halo.Protocol{halo.IsendIrecv, halo.SendRecv, halo.IrecvSend, halo.Persistent}
	for i := 0; i < b.N; i++ {
		_, err := runner.Sweep(protos, func(p halo.Protocol) (sim.Duration, error) {
			return halo.Run(halo.Options{Machine: machine.BGP, Mode: machine.VN,
				GridX: gx, GridY: gy, Mapping: topology.MapTXYZ, Protocol: p,
				Words: 2048, Iterations: 3})
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2Mappings(b *testing.B) {
	gx, gy := 32, 16
	if os.Getenv("BGPSIM_FULL") == "1" {
		gx, gy = 64, 64
	}
	for i := 0; i < b.N; i++ {
		_, err := runner.Sweep(topology.PaperHALOMappings, func(m topology.Mapping) (sim.Duration, error) {
			return halo.Run(halo.Options{Machine: machine.BGP, Mode: machine.VN,
				GridX: gx, GridY: gy, Mapping: m, Protocol: halo.IsendIrecv,
				Words: 20000, Iterations: 3})
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2Grids(b *testing.B) {
	grids := [][2]int{{16, 8}, {32, 16}}
	if os.Getenv("BGPSIM_FULL") == "1" {
		grids = [][2]int{{64, 32}, {128, 64}}
	}
	for i := 0; i < b.N; i++ {
		_, err := runner.Sweep(grids, func(g [2]int) (sim.Duration, error) {
			_, d, err := halo.BestMapping(halo.Options{Machine: machine.BGP, Mode: machine.VN,
				GridX: g[0], GridY: g[1], Protocol: halo.IsendIrecv,
				Words: 2048, Iterations: 3},
				[]topology.Mapping{topology.MapTXYZ, topology.MapXYZT})
			return d, err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 3, per collective.

func BenchmarkFig3Allreduce(b *testing.B) {
	ranks := 256
	if os.Getenv("BGPSIM_FULL") == "1" {
		ranks = 8192
	}
	type point struct {
		double bool
		id     machine.ID
	}
	var pts []point
	for _, double := range []bool{true, false} {
		for _, id := range []machine.ID{machine.BGP, machine.XT4QC} {
			pts = append(pts, point{double, id})
		}
	}
	for i := 0; i < b.N; i++ {
		_, err := runner.Sweep(pts, func(p point) (sim.Duration, error) {
			return imb.AllreduceLatency(p.id, ranks, 32<<10, p.double)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3Bcast(b *testing.B) {
	ranks := 256
	if os.Getenv("BGPSIM_FULL") == "1" {
		ranks = 8192
	}
	ids := []machine.ID{machine.BGP, machine.XT4QC}
	for i := 0; i < b.N; i++ {
		_, err := runner.Sweep(ids, func(id machine.ID) (sim.Duration, error) {
			return imb.BcastLatency(id, ranks, 32<<10)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §4). ---

// BenchmarkAblationTreeOffload compares the BG/P double-precision
// allreduce with the hardware tree against the same machine with the
// tree's reduction ALU disabled (software recursive doubling on the
// torus). The tree should win by an order of magnitude at size.
func BenchmarkAblationTreeOffload(b *testing.B) {
	run := func(b *testing.B, hw bool) {
		m := machine.Get(machine.BGP)
		m.TreeHWReduce = hw
		for i := 0; i < b.N; i++ {
			res, err := mpi.Execute(mpi.Config{Machine: m, Nodes: 64, Mode: machine.VN},
				func(r *mpi.Rank) { r.World().Allreduce(r, 32<<10, true) })
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Elapsed.Microseconds(), "virtual-us/op")
		}
	}
	b.Run("tree", func(b *testing.B) { run(b, true) })
	b.Run("software", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationNetworkFidelity compares the contention and
// analytic torus models on the mapping-sensitive HALO workload: the
// analytic model is faster to simulate but cannot see link sharing.
func BenchmarkAblationNetworkFidelity(b *testing.B) {
	for _, fid := range []network.Fidelity{network.Contention, network.Analytic, network.Packet} {
		fid := fid
		b.Run(fid.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := mpi.Config{Machine: machine.Get(machine.BGP), Nodes: 128,
					Mode: machine.VN, Mapping: topology.MapXYZT, Fidelity: fid}
				_, err := mpi.Execute(cfg, func(r *mpi.Rank) {
					right := (r.ID() + 1) % r.Size()
					left := (r.ID() - 1 + r.Size()) % r.Size()
					for k := 0; k < 8; k++ {
						r.Sendrecv(right, 64<<10, k, left, k)
					}
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAnalyticCollectives compares simulated and
// closed-form software collectives (simulation fidelity vs speed).
func BenchmarkAblationAnalyticCollectives(b *testing.B) {
	for _, analytic := range []bool{false, true} {
		analytic := analytic
		name := "simulated"
		if analytic {
			name = "analytic"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := mpi.Config{Machine: machine.Get(machine.XT4QC), Nodes: 256,
					Mode: machine.VN, AnalyticCollectives: analytic}
				_, err := mpi.Execute(cfg, func(r *mpi.Rank) {
					r.World().Allreduce(r, 32<<10, true)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSolverVariant measures the Chronopoulos-Gear
// reduction fusion against standard CG in POP's barotropic phase.
func BenchmarkAblationSolverVariant(b *testing.B) {
	for _, solver := range []pop.Solver{pop.StandardCG, pop.ChronopoulosGear} {
		solver := solver
		b.Run(solver.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := pop.Run(pop.Options{Machine: machine.XT4DC, Mode: machine.VN,
					Procs: 512, Solver: solver})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.BarotropicSec, "barotropic-s/day")
			}
		})
	}
}

// --- Kernel micro-benchmarks (the native Go implementations). ---

func BenchmarkKernelDGEMM(b *testing.B) {
	n := 128
	rng := sim.NewRNG(1)
	a := kernels.NewMatrix(n, n)
	bb := kernels.NewMatrix(n, n)
	c := kernels.NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
		bb.Data[i] = rng.Float64()
	}
	b.SetBytes(int64(3 * 8 * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.DGEMM(1, a, bb, 0, c)
	}
	b.ReportMetric(kernels.DGEMMFlops(n, n, n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

func BenchmarkKernelLU(b *testing.B) {
	n := 96
	rng := sim.NewRNG(2)
	a := kernels.NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
	}
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kernels.Factorize(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelFFT(b *testing.B) {
	n := 1 << 14
	rng := sim.NewRNG(3)
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64(), rng.Float64())
	}
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.FFT(x)
	}
	b.ReportMetric(kernels.FFTFlops(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

func BenchmarkKernelStreamTriad(b *testing.B) {
	n := 1 << 20
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	b.SetBytes(int64(kernels.StreamTriadBytes(n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.StreamTriad(x, y, z, 3.0)
	}
}

func BenchmarkKernelRandomAccess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		kernels.RandomAccess(16, 1<<16)
	}
}

func BenchmarkKernelCG(b *testing.B) {
	a := kernels.Laplacian2D(48, 48)
	rhs := make([]float64, a.N)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.CG(a, rhs, 1e-8, 2000)
	}
}

// BenchmarkSimulatorEventRate measures raw kernel throughput: how many
// simulation events per second the DES core sustains on an MPI-heavy
// workload (useful when judging full-scale experiment cost).
func BenchmarkSimulatorEventRate(b *testing.B) {
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := mpi.Execute(mpi.Config{Machine: machine.Get(machine.XT4QC), Nodes: 64, Mode: machine.VN},
			func(r *mpi.Rank) {
				for k := 0; k < 20; k++ {
					r.World().Allreduce(r, 8, true)
				}
			})
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}
