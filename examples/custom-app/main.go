// Custom-app: writing your own MPI application against the simulator —
// a 2-D Jacobi iteration with halo exchanges and a convergence test
// via allreduce, scaled across machine partitions.
//
//	go run ./examples/custom-app
package main

import (
	"fmt"
	"log"

	"bgpsim"
)

const (
	nx, ny     = 4096, 4096 // global grid
	iterations = 10
)

// jacobi runs `iterations` sweeps of a 5-point Jacobi relaxation over
// a block-decomposed grid.
func jacobi(r *bgpsim.Rank, px, py int) {
	me := r.ID()
	x, y := me%px, me/px
	bx, by := nx/px, ny/py
	wrap := func(v, m int) int { return ((v % m) + m) % m }
	at := func(x, y int) int { return wrap(y, py)*px + wrap(x, px) }
	west, east := at(x-1, y), at(x+1, y)
	north, south := at(x, y-1), at(x, y+1)

	for it := 0; it < iterations; it++ {
		// 5-point update: 4 flops per cell, 6 streamed values.
		r.Compute(float64(bx*by)*4, float64(bx*by)*48, bgpsim.ClassStencil)
		// Exchange one-cell halos with the four neighbours.
		tag := 10 + it*2
		r1 := r.Irecv(east, tag)
		r2 := r.Irecv(south, tag+1)
		s1 := r.Isend(west, by*8, tag)
		s2 := r.Isend(north, bx*8, tag+1)
		r.Waitall(r1, r2, s1, s2)
		// Global residual check.
		r.World().Allreduce(r, 8, true)
	}
}

func main() {
	fmt.Printf("2-D Jacobi, %dx%d grid, %d sweeps:\n\n", nx, ny, iterations)
	fmt.Printf("%10s %8s %14s %14s %10s\n", "machine", "ranks", "time", "per sweep", "speedup")
	for _, id := range []bgpsim.MachineID{bgpsim.BGP, bgpsim.XT4QC} {
		var base float64
		for _, grid := range [][2]int{{8, 8}, {16, 16}, {32, 32}} {
			px, py := grid[0], grid[1]
			ranks := px * py
			cfg := bgpsim.NewSystem(id, bgpsim.VN, ranks)
			res, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) { jacobi(r, px, py) })
			if err != nil {
				log.Fatal(err)
			}
			secs := res.Elapsed.Seconds()
			if base == 0 {
				base = secs * float64(ranks)
			}
			fmt.Printf("%10s %8d %14v %14v %9.2fx\n",
				id, ranks, res.Elapsed, res.Elapsed/iterations,
				base/float64(ranks)/secs)
		}
	}
	fmt.Println("\nSpeedup is relative to perfect scaling from the 64-rank run;")
	fmt.Println("the allreduce per sweep is what separates the two machines as the")
	fmt.Println("compute per rank shrinks.")
}
