// Quickstart: simulate a small MPI program on BlueGene/P and Cray
// XT4/QC and compare — the one-page tour of the bgpsim public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bgpsim"
)

func main() {
	const ranks = 1024

	fmt.Printf("compute + allreduce + barrier on %d ranks:\n\n", ranks)
	for _, id := range []bgpsim.MachineID{bgpsim.BGP, bgpsim.XT4QC} {
		cfg := bgpsim.NewSystem(id, bgpsim.VN, ranks)
		res, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
			// Each rank computes a block (1 Gflop of stencil work,
			// streaming 100 MB), then the world reduces a 1 KB vector
			// and synchronizes.
			r.Compute(1e9, 100e6, bgpsim.ClassStencil)
			r.World().Allreduce(r, 1024, true)
			r.World().Barrier(r)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %12v   %7d msgs  %5d tree ops\n",
			cfg.Machine.Name, res.Elapsed, res.Net.Messages, res.Net.TreeOps)
	}

	fmt.Println("\nThe XT's faster Opterons finish the compute block sooner;")
	fmt.Println("BlueGene/P's collective tree makes the allreduce nearly free.")
}
