// Real-programs: the simulator is not just a cost model — it executes
// genuine message-passing programs carrying real data. This example
// runs five numerically verified distributed codes on a simulated
// BlueGene/P partition:
//
//   - a block-cyclic LU factorization + solve (HPL's core),
//   - Bailey's four-step FFT with an all-to-all transpose,
//   - a RandomAccess (GUPS) table update with routed XOR updates,
//   - a striped conjugate-gradient solve (POP's barotropic core),
//   - the S3D pressure wave with ghost-zone exchanges,
//
// checks their answers against serial references, and reports the
// virtual time each would have taken on the machine.
//
//	go run ./examples/real-programs
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	"bgpsim/internal/dcg"
	"bgpsim/internal/dfft"
	"bgpsim/internal/dra"
	"bgpsim/internal/dwave"
	"bgpsim/internal/hpl"
	"bgpsim/internal/kernels"
	"bgpsim/internal/machine"
)

func main() {
	const procs = 8

	// --- Distributed LU (HPL core) ---
	lu, err := hpl.Run(hpl.Config{
		Machine: machine.BGP, Mode: machine.VN,
		Procs: procs, N: 256, NB: 32, Seed: 2026,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LU 256x256 on %d ranks:   %8.3f ms virtual, %6.2f GFlop/s, HPL residual %.3g (pass < 16)\n",
		procs, lu.VirtualSeconds*1e3, lu.GFlops, lu.Residual)

	// --- Distributed FFT ---
	ft, err := dfft.Run(dfft.Config{
		Machine: machine.BGP, Mode: machine.VN,
		Procs: procs, LogN: 14, Seed: 2026,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Verify against the serial kernel.
	ref := make([]complex128, 1<<14)
	for j := range ref {
		ref[j] = dfft.Input(2026, j)
	}
	kernels.FFT(ref)
	maxErr := 0.0
	for k := range ref {
		if e := cmplx.Abs(ft.X[k] - ref[k]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("FFT 2^14 on %d ranks:     %8.3f ms virtual, %6.2f GFlop/s, max |err| %.2g\n",
		procs, ft.VirtualSeconds*1e3, ft.GFlops, maxErr)

	// --- Distributed RandomAccess ---
	cfg := dra.Config{Machine: machine.BGP, Mode: machine.VN,
		Procs: procs, LogSize: 14, Seed: 2026}
	ra, err := dra.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	want := dra.SerialReference(cfg)
	bad := 0
	for i := range want {
		if ra.Table[i] != want[i] {
			bad++
		}
	}
	fmt.Printf("GUPS 2^14 on %d ranks:    %8.3f ms virtual, %6.4f GUPS, %d/%d table words wrong\n",
		procs, ra.VirtualSeconds*1e3, ra.GUPS, bad, len(want))

	// --- Distributed conjugate gradient (POP's barotropic core) ---
	cg, err := dcg.Run(dcg.Config{Machine: machine.BGP, Mode: machine.VN,
		Procs: procs, NX: 32, NY: 32, Tol: 1e-11, Fused: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CG 32x32 on %d ranks:     %8.3f ms virtual, %d iters, residual %.2g, %d reductions\n",
		procs, cg.VirtualSeconds*1e3, cg.Iterations, cg.Residual, cg.Reductions)

	// --- Distributed pressure wave (S3D's test problem) ---
	wv, err := dwave.Run(dwave.Config{Machine: machine.BGP, Mode: machine.VN,
		Procs: procs, N: 512, L: 1, C: 1, Sigma: 0.05, Steps: 50, DT: 0.4 / 512})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Wave 512pts on %d ranks:  %8.3f ms virtual, max dev from serial %.2g\n",
		procs, wv.VirtualSeconds*1e3, wv.MaxError)

	fmt.Println("\nAll five programs moved their actual data through the simulated")
	fmt.Println("torus; the timings come from the same network and compute models")
	fmt.Println("the paper-reproduction experiments use.")
}
