// Real-programs: the simulator is not just a cost model — it executes
// genuine message-passing programs carrying real data. This example
// writes three numerically verified distributed codes directly against
// the public API and runs them on a simulated BlueGene/P partition:
//
//   - a ring allreduce built from payload messages, checked against
//     the serial sum bit-for-bit,
//   - a 1-D wave equation (leapfrog) with ghost-cell exchanges,
//     checked against a serial integration of the same initial state,
//   - an odd-even transposition sort across ranks, gathered and
//     checked for global order,
//
// while the observability options watch them run: WithTrace records
// the message events of the ring reduction, WithProfile decomposes the
// wave solver's time, and WithColl forces its residual allreduce onto
// a software algorithm instead of the BlueGene tree.
//
//	go run ./examples/real-programs
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"bgpsim"
)

const procs = 8

func main() {
	ringAllreduce()
	waveEquation()
	oddEvenSort()

	fmt.Println("\nAll three programs moved their actual data through the simulated")
	fmt.Println("torus; the timings come from the same network and compute models")
	fmt.Println("the paper-reproduction experiments use.")
}

// ringAllreduce sums one vector slice per rank around a ring of
// payload messages — the textbook bandwidth-optimal allreduce, written
// by hand — and verifies every rank ends with the exact serial total.
// A trace buffer attached with WithTrace records the message events.
func ringAllreduce() {
	const elems = 1 << 10
	tb := bgpsim.NewTraceBuffer(1 << 16)
	cfg := bgpsim.NewSystem(bgpsim.BGP, bgpsim.VN, procs,
		bgpsim.WithTrace(tb))

	// The serial reference: rank r contributes value(r, i) at index i.
	value := func(rank, i int) float64 { return float64((rank*31+i*7)%101) - 50 }
	want := make([]float64, elems)
	for r := 0; r < procs; r++ {
		for i := range want {
			want[i] += value(r, i)
		}
	}

	wrong := 0
	res, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
		me, p := r.ID(), r.Size()
		acc := make([]float64, elems)
		for i := range acc {
			acc[i] = value(me, i)
		}
		next, prev := (me+1)%p, (me+p-1)%p
		// Reduce-scatter phase: after p-1 steps each rank holds the
		// fully reduced block (me+1)%p.
		for s := 0; s < p-1; s++ {
			out := (me - s + p) % p
			blk := append([]float64(nil), block(acc, out, p)...)
			req := r.IsendPayload(next, len(blk)*8, s, blk)
			_, v := r.RecvPayload(prev, s)
			in := (me - s - 1 + p) % p
			dst := block(acc, in, p)
			for i, x := range v.([]float64) {
				dst[i] += x
			}
			r.Wait(req)
		}
		// Allgather phase: circulate the reduced blocks.
		for s := 0; s < p-1; s++ {
			out := (me - s + 1 + p) % p
			blk := append([]float64(nil), block(acc, out, p)...)
			req := r.IsendPayload(next, len(blk)*8, 100+s, blk)
			_, v := r.RecvPayload(prev, 100+s)
			in := (me - s + p) % p
			copy(block(acc, in, p), v.([]float64))
			r.Wait(req)
		}
		for i := range acc {
			if acc[i] != want[i] {
				wrong++
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ring allreduce %d doubles on %d ranks: %10v virtual, %d/%d elements wrong, %d sends traced\n",
		elems, procs, res.Elapsed, wrong, elems*procs, len(tb.OfKind(bgpsim.TraceSend)))
}

// block returns the b-th of p equal slices of v.
func block(v []float64, b, p int) []float64 {
	n := len(v) / p
	return v[b*n : (b+1)*n]
}

// waveEquation integrates u_tt = c^2 u_xx with a leapfrog scheme on a
// block-decomposed periodic domain: each step every rank trades its
// edge values with both neighbours, updates its block, and joins a
// residual allreduce (forced onto the software ring by WithColl). The
// gathered final state is checked against a serial integration.
func waveEquation() {
	const (
		n     = 512
		steps = 50
		c     = 1.0
		dt    = 0.4 / n
		dx    = 1.0 / n
	)
	init := func(i int) float64 {
		x := (float64(i) + 0.5) * dx
		return math.Exp(-(x - 0.5) * (x - 0.5) / (2 * 0.05 * 0.05))
	}

	// Serial reference.
	ref, refPrev := make([]float64, n), make([]float64, n)
	for i := range ref {
		ref[i], refPrev[i] = init(i), init(i)
	}
	for s := 0; s < steps; s++ {
		ref, refPrev = leapfrog(ref, refPrev, c*c*dt*dt/(dx*dx)), ref
	}

	rec := bgpsim.NewRecorder()
	cfg := bgpsim.NewSystem(bgpsim.BGP, bgpsim.VN, procs,
		bgpsim.WithColl("allreduce", "ring"),
		bgpsim.WithProfile(rec))

	maxDev := 0.0
	res, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
		me, p := r.ID(), r.Size()
		bn := n / p
		left, right := (me+p-1)%p, (me+1)%p
		// Local block with two ghost cells.
		u, uPrev := make([]float64, bn+2), make([]float64, bn+2)
		for i := 0; i < bn; i++ {
			u[i+1], uPrev[i+1] = init(me*bn+i), init(me*bn+i)
		}
		k := c * c * dt * dt / (dx * dx)
		for s := 0; s < steps; s++ {
			tag := 10 + 4*s
			rl := r.IsendPayload(left, 8, tag, u[1])
			rr := r.IsendPayload(right, 8, tag+1, u[bn])
			_, gr := r.RecvPayload(right, tag)
			_, gl := r.RecvPayload(left, tag+1)
			u[0], u[bn+1] = gl.(float64), gr.(float64)
			r.Waitall(rl, rr)
			// The real update, plus its modelled cost.
			next := make([]float64, bn+2)
			for i := 1; i <= bn; i++ {
				next[i] = 2*u[i] - uPrev[i] + k*(u[i+1]-2*u[i]+u[i-1])
			}
			u, uPrev = next, u
			r.Compute(float64(bn)*6, float64(bn)*32, bgpsim.ClassStencil)
			r.World().Allreduce(r, 8, true)
		}
		// Gather the blocks and compare on rank 0.
		parts := r.World().GatherPayload(r, 0, bn*8, append([]float64(nil), u[1:bn+1]...))
		if me == 0 {
			for b, part := range parts {
				for i, v := range part.([]float64) {
					if d := math.Abs(v - ref[b*bn+i]); d > maxDev {
						maxDev = d
					}
				}
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	p := res.Profile()
	var mean bgpsim.RankProfile
	for _, rp := range p.Ranks {
		mean.Compute += rp.Compute
		mean.Total += rp.Total
	}
	fmt.Printf("wave %d pts, %d steps on %d ranks:  %10v virtual, max dev from serial %.2g, %.1f%% compute\n",
		n, steps, procs, res.Elapsed, maxDev,
		100*float64(mean.Compute)/float64(mean.Total))
}

// leapfrog advances the serial wave state one step on a periodic grid.
func leapfrog(u, uPrev []float64, k float64) []float64 {
	n := len(u)
	next := make([]float64, n)
	for i := range u {
		l, r := u[(i+n-1)%n], u[(i+1)%n]
		next[i] = 2*u[i] - uPrev[i] + k*(r-2*u[i]+l)
	}
	return next
}

// oddEvenSort sorts one block per rank with odd-even transposition:
// p rounds of compare-exchange with alternating neighbours, each
// carrying the real block as a payload. Rank 0 gathers the blocks and
// verifies the global order.
func oddEvenSort() {
	const bn = 64 // elements per rank
	cfg := bgpsim.NewSystem(bgpsim.BGP, bgpsim.VN, procs)

	keep := func(mine, theirs []float64, low bool) []float64 {
		all := append(append([]float64(nil), mine...), theirs...)
		sort.Float64s(all)
		if low {
			return all[:len(mine)]
		}
		return all[len(all)-len(mine):]
	}

	sorted, inversions := false, 0
	_, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
		me, p := r.ID(), r.Size()
		blk := make([]float64, bn)
		for i := range blk {
			blk[i] = float64((me*9973 + i*613) % 4001) // deterministic, scrambled
		}
		sort.Float64s(blk)
		for round := 0; round < p; round++ {
			partner := -1
			if round%2 == me%2 {
				partner = me + 1
			} else {
				partner = me - 1
			}
			if partner < 0 || partner >= p {
				r.World().Barrier(r)
				continue
			}
			req := r.IsendPayload(partner, bn*8, 200+round, append([]float64(nil), blk...))
			_, v := r.RecvPayload(partner, 200+round)
			blk = keep(blk, v.([]float64), me < partner)
			r.Wait(req)
			r.World().Barrier(r)
		}
		parts := r.World().GatherPayload(r, 0, bn*8, blk)
		if me == 0 {
			var all []float64
			for _, part := range parts {
				all = append(all, part.([]float64)...)
			}
			sorted = sort.Float64sAreSorted(all)
			for i := 1; i < len(all); i++ {
				if all[i-1] > all[i] {
					inversions++
				}
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("odd-even sort %d keys on %d ranks:  globally sorted: %v (%d inversions)\n",
		bn*procs, procs, sorted, inversions)
}
