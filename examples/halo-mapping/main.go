// Halo-mapping: how the BlueGene process-to-processor mapping changes
// the cost of a 2-D halo exchange — the paper's Figure 2(c)/(d)
// experiment, written directly against the public API.
//
//	go run ./examples/halo-mapping
package main

import (
	"fmt"
	"log"

	"bgpsim"
)

const (
	gridX = 32 // virtual process grid columns
	gridY = 16 // rows
	words = 20000
	iters = 5
)

// exchange performs the two-phase 1-2 row/column halo exchange from
// the Wallcraft HALO benchmark.
func exchange(r *bgpsim.Rank, it int) {
	me := r.ID()
	x, y := me%gridX, me/gridX
	wrap := func(v, m int) int { return ((v % m) + m) % m }
	at := func(x, y int) int { return wrap(y, gridY)*gridX + wrap(x, gridX) }
	n := words * 4

	phase := func(less, more, tag int, small, large int) {
		r1 := r.Irecv(more, tag)
		r2 := r.Irecv(less, tag+1)
		s1 := r.Isend(less, small, tag)
		s2 := r.Isend(more, large, tag+1)
		r.Waitall(r1, r2, s1, s2)
	}
	phase(at(x, y-1), at(x, y+1), 10+4*it, n, 2*n) // north/south
	phase(at(x-1, y), at(x+1, y), 12+4*it, n, 2*n) // west/east
}

func main() {
	fmt.Printf("HALO exchange of %d words on a %dx%d grid (BG/P, VN mode):\n\n", words, gridX, gridY)
	for _, mapping := range []bgpsim.Mapping{
		"TXYZ", "TYXZ", "TZXY", "TZYX", "XYZT", "YXZT", "ZXYT", "ZYXT",
	} {
		cfg := bgpsim.NewSystem(bgpsim.BGP, bgpsim.VN, gridX*gridY)
		cfg.Mapping = mapping
		cfg.Fidelity = bgpsim.Contention
		var per bgpsim.Duration
		res, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
			r.World().Barrier(r)
			t0 := r.Now()
			for it := 0; it < iters; it++ {
				exchange(r, it)
			}
			if r.ID() == 0 {
				per = r.Now().Sub(t0) / iters
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  mapping %-5s %12.1f us per exchange  (%d torus msgs, %d on-node)\n",
			mapping, per.Microseconds(), res.Net.Messages-res.Net.ShmMsgs, res.Net.ShmMsgs)
	}
	fmt.Println("\nCore-first (T...) mappings put grid neighbours on the same node or")
	fmt.Println("adjacent torus nodes; node-first mappings spread them out, sharing")
	fmt.Println("links and queuing large halos behind each other.")
}
