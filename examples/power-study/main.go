// Power-study: science per watt, the paper's Section IV argument in
// miniature. A fixed-size stencil application runs on BlueGene/P and
// the Cray XT4/QC at several core counts; we compare both the
// throughput-per-core and the aggregate power each system needs to
// reach the same delivered throughput.
//
//	go run ./examples/power-study
package main

import (
	"fmt"
	"log"

	"bgpsim"
)

// workUnits is the total fixed problem: stencil work units spread over
// the ranks, with a latency-bound allreduce per step.
const (
	totalFlops = 4e13
	totalBytes = 4e12
	steps      = 5
)

// throughput returns steps/second for the fixed problem on `ranks`
// tasks of the machine.
func throughput(id bgpsim.MachineID, ranks int) float64 {
	cfg := bgpsim.NewSystem(id, bgpsim.VN, ranks)
	res, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
		for s := 0; s < steps; s++ {
			r.Compute(totalFlops/float64(r.Size())/steps,
				totalBytes/float64(r.Size())/steps, bgpsim.ClassStencil)
			r.World().Allreduce(r, 16, true)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	return steps / res.Elapsed.Seconds()
}

func main() {
	fmt.Println("Fixed-size stencil application, equal core counts:")
	fmt.Printf("%8s  %22s  %22s\n", "cores", "BG/P", "XT4/QC")
	bgp := bgpsim.GetMachine(bgpsim.BGP)
	xt := bgpsim.GetMachine(bgpsim.XT4QC)
	for _, cores := range []int{512, 1024, 2048, 4096} {
		tb := throughput(bgpsim.BGP, cores)
		tx := throughput(bgpsim.XT4QC, cores)
		pb := bgp.WattsPerCoreApp * float64(cores) / 1000
		px := xt.WattsPerCoreApp * float64(cores) / 1000
		fmt.Printf("%8d  %9.2f st/s %6.1fkW  %9.2f st/s %6.1fkW\n", cores, tb, pb, tx, px)
	}

	// Equal-throughput comparison: how many cores (and kW) does each
	// machine need to hit the XT's 1024-core throughput?
	target := throughput(bgpsim.XT4QC, 1024)
	fmt.Printf("\nTarget throughput: %.2f steps/s (XT4/QC at 1024 cores)\n", target)
	for _, id := range []bgpsim.MachineID{bgpsim.BGP, bgpsim.XT4QC} {
		m := bgpsim.GetMachine(id)
		cores := 256
		for cores <= 65536 && throughput(id, cores) < target {
			cores *= 2
		}
		kw := m.WattsPerCoreApp * float64(cores) / 1000
		fmt.Printf("  %-22s %6d cores, %7.1f kW\n", m.Name, cores, kw)
	}
	fmt.Println("\nPer core BG/P draws ~15% of the XT's power, but it needs several")
	fmt.Println("times the cores for the same science throughput — so its aggregate")
	fmt.Println("power advantage shrinks, exactly the paper's Table 3 conclusion.")
}
