// Package bgpsim is a deterministic discrete-event simulator for
// large-scale message-passing supercomputers, built to reproduce the
// measurements in "Early Evaluation of IBM BlueGene/P" (SC'08): IBM
// BlueGene/P and BlueGene/L and Cray XT3/XT4 machine models, a 3-D
// torus network with per-link contention, the BlueGene collective tree
// and barrier networks, an MPI programming model with eager/rendezvous
// protocols and per-machine collective algorithms, and the paper's
// benchmark and application workloads.
//
// Quick start:
//
//	cfg := bgpsim.NewSystem(bgpsim.BGP, bgpsim.VN, 1024)
//	res, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
//		r.World().Allreduce(r, 8, true)
//	})
//
// See examples/ for complete programs and DESIGN.md for the modelling
// approach.
package bgpsim

import (
	"bgpsim/internal/core"
	"bgpsim/internal/jobspec"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

// Core simulation types.
type (
	// Config describes a simulated partition and run options.
	Config = mpi.Config
	// Rank is one MPI task of a simulated program.
	Rank = mpi.Rank
	// Comm is a communicator.
	Comm = mpi.Comm
	// Request is a non-blocking operation handle.
	Request = mpi.Request
	// Result summarizes a run.
	Result = mpi.Result
	// Machine is a hardware description from the catalog.
	Machine = machine.Machine
	// Site is a named installation (ORNL Eugene, ANL Intrepid, ...).
	Site = core.Site
	// Report is a human-readable run summary.
	Report = core.Report
	// Time is a point in virtual time (picoseconds).
	Time = sim.Time
	// Duration is a span of virtual time (picoseconds).
	Duration = sim.Duration
	// Mapping is a BlueGene process-to-processor mapping.
	Mapping = topology.Mapping
	// Partition is a job-visible view of a subset of a machine torus:
	// an isolated BlueGene-style sub-torus prism or an XT-style
	// scattered node set (Config.Partition, WithPartition).
	Partition = topology.Partition
	// Torus is a 3-D torus node space (the parent a Partition is
	// carved from).
	Torus = topology.Torus
	// Dims is a 3-D torus shape.
	Dims = topology.Dims
	// Coord is a 3-D torus coordinate.
	Coord = topology.Coord
	// Mode is a node execution mode (SMP, DUAL, VN).
	Mode = machine.Mode
	// KernelClass categorizes compute blocks for the roofline model.
	KernelClass = machine.KernelClass
	// MachineID names a machine model in the catalog.
	MachineID = machine.ID
	// JobSpec is the canonical, versioned, JSON-serializable job
	// description shared by the CLIs and the bgpsimd job server: the
	// same struct a server client POSTs as JSON. Its Canonical form
	// hashes to the job's cache identity (JobSpec.Hash); see
	// NewSystemFromSpec for turning one into a runnable Config.
	JobSpec = jobspec.Spec
)

// Job kinds for JobSpec.Kind.
const (
	KindBench    = jobspec.KindBench
	KindHalo     = jobspec.KindHalo
	KindHPCC     = jobspec.KindHPCC
	KindFacility = jobspec.KindFacility
)

// DecodeJobSpec parses a JSON document into a canonical, validated
// JobSpec (the format cmd/bgpsimd accepts; see docs/SERVER.md).
func DecodeJobSpec(data []byte) (JobSpec, error) { return jobspec.Decode(data) }

// Machine catalog identifiers.
const (
	BGP   = machine.BGP
	BGL   = machine.BGL
	XT3   = machine.XT3
	XT4DC = machine.XT4DC
	XT4QC = machine.XT4QC
)

// Execution modes.
const (
	SMP  = machine.SMP
	DUAL = machine.DUAL
	VN   = machine.VN
)

// Network fidelities.
const (
	Analytic   = network.Analytic
	Contention = network.Contention
)

// Kernel classes for Rank.Compute.
const (
	ClassDGEMM   = machine.ClassDGEMM
	ClassFFT     = machine.ClassFFT
	ClassStream  = machine.ClassStream
	ClassStencil = machine.ClassStencil
	ClassScalar  = machine.ClassScalar
	ClassUpdate  = machine.ClassUpdate
)

// Receive wildcards.
const (
	AnySource = mpi.AnySource
	AnyTag    = mpi.AnyTag
)

// Common process mappings.
const (
	MapXYZT = topology.MapXYZT
	MapTXYZ = topology.MapTXYZ
)

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// The paper's installations.
var (
	Eugene    = core.Eugene
	Intrepid  = core.Intrepid
	JaguarQC  = core.JaguarQC
	JaguarDC  = core.JaguarDC
	JaguarXT3 = core.JaguarXT3
)

// GetMachine returns a copy of the catalog entry for id.
func GetMachine(id machine.ID) *Machine { return machine.Get(id) }

// NewSystem builds a Config for `ranks` MPI tasks of machine id in the
// given mode, on the minimal standard partition, then applies the
// options in order. Options are sugar over Config's public fields (see
// Option); with no options the returned Config is identical to what
// NewSystem has always produced.
func NewSystem(id machine.ID, mode Mode, ranks int, opts ...Option) Config {
	cfg := core.PartitionConfig(id, mode, ranks)
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// NewSystemFromSpec builds a Config from a canonical job spec — the
// JSON-document front-end to the same partition construction NewSystem
// performs with functional options. The spec must be a bench-kind job
// (the Config-shaped kind: machine, mode, ranks, mapping, fidelity,
// faults, shards); the other kinds bundle their own programs and run
// through the CLIs or the bgpsimd server. The canonical spec is
// attached to the Config and carried through to Result.Spec, so a
// result always reports exactly which job produced it. Options apply
// after the spec, so they can override it.
func NewSystemFromSpec(s JobSpec, opts ...Option) (Config, error) {
	cfg, _, err := s.BenchConfig()
	if err != nil {
		return Config{}, err
	}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg, nil
}

// Run executes a program under a configuration.
func Run(cfg Config, program func(*Rank)) (*Result, error) {
	return core.Run(cfg, program)
}

// RunReport runs a program on a site and returns a summary.
func RunReport(site Site, mode Mode, ranks int, program func(*Rank)) (*Report, *Result, error) {
	return core.RunReport(site, mode, ranks, program)
}

// Seconds converts float seconds to a Duration.
func Seconds(s float64) Duration { return sim.Seconds(s) }

// NewTorus builds a torus over the given shape; use it as the parent
// machine node space when carving partitions.
func NewTorus(d Dims) *Torus { return topology.NewTorus(d) }

// DimsForNodes returns the most-cubic 3-D shape with the given node
// count (the shape the machine catalog would give a whole machine).
func DimsForNodes(nodes int) Dims { return topology.DimsForNodes(nodes) }

// NewPrismPartition carves an isolated rectangular sub-torus out of
// parent — a BlueGene-style electrically partitioned job block.
func NewPrismPartition(parent *Torus, origin Coord, shape Dims, isolated bool) (*Partition, error) {
	return topology.NewPrismPartition(parent, origin, shape, isolated)
}

// NewScatteredPartition wraps an arbitrary node set — an XT-style
// fragmented allocation whose internal routes cross other jobs' nodes.
func NewScatteredPartition(parent *Torus, nodes []int) (*Partition, error) {
	return topology.NewScatteredPartition(parent, nodes)
}
