// Command bgpsim runs a single micro-benchmark on a simulated machine
// partition and prints its timing — the quick way to poke at the
// machine models.
//
// Usage:
//
//	bgpsim -machine BG/P -mode VN -ranks 1024 -bench allreduce -bytes 32768
//	bgpsim -machine XT4/QC -ranks 512 -bench pingpong
//	bgpsim -machine BG/P -ranks 2048 -bench bcast -bytes 1048576
//	bgpsim -machine BG/P -ranks 512 -bench barrier
//	bgpsim -machine BG/P -ranks 512 -bench alltoall -bytes 4096
//	bgpsim -machine BG/P -ranks 64 -bench alltoall -profile -trace out.json
//
// The flags parse into a jobspec.Spec — the same canonical job
// description the bgpsimd server accepts as JSON — and run through the
// shared jobspec.Run path, so a CLI invocation and the equivalent
// server job produce byte-identical output.
package main

import (
	"flag"
	"fmt"
	"os"

	"bgpsim/internal/jobspec"
)

func main() {
	mach := flag.String("machine", "BG/P", "machine: BG/P, BG/L, XT3, XT4/DC, XT4/QC")
	modeS := flag.String("mode", "VN", "execution mode: SMP, DUAL, VN")
	ranks := flag.Int("ranks", 256, "MPI tasks")
	benchS := flag.String("bench", "allreduce", "benchmark: allreduce, bcast, barrier, alltoall, pingpong")
	bytes := flag.Int("bytes", 8, "payload size")
	double := flag.Bool("double", true, "double precision operands (allreduce)")
	mapping := flag.String("mapping", "XYZT", "process mapping (XYZT, TXYZ, ...)")
	fidelity := flag.String("fidelity", "contention", "network model: contention, analytic, or packet")
	shards := flag.Int("shards", 0, "partition the ranks across N parallel kernel shards (analytic fidelity only; output is byte-identical at any N)")
	faultsFlag := flag.String("faults", "", "inject a deterministic fault plan, e.g. 'seed=3,recover,kill=5@40us' or 'blast=50us/7/1/0/0/1' (see internal/fault.ParseSpec)")
	varFlag := flag.String("var", "", "inject seeded per-node performance variability, e.g. 'clock:2%,link:5%@7' (see internal/fault.ParseVariabilitySpec)")
	events := flag.Int("events", 0, "dump the first N trace events")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON timeline to FILE")
	profile := flag.Bool("profile", false, "print per-rank time decomposition and critical path")
	linksFile := flag.String("links", "", "write per-link utilization CSV to FILE")
	flag.Parse()

	spec := jobspec.Spec{
		Kind:     jobspec.KindBench,
		Machine:  *mach,
		Mode:     *modeS,
		Ranks:    *ranks,
		Bench:    *benchS,
		Bytes:    bytes,
		Double:   double,
		Mapping:  *mapping,
		Fidelity: *fidelity,
		Shards:   *shards,
		Faults:   *faultsFlag,
		Var:      *varFlag,
		Events:   *events,
		Trace:    *traceFile != "",
		Profile:  *profile,
		Links:    *linksFile != "",
	}
	res, err := jobspec.Run(spec, os.Stdout, os.Stderr)
	if err != nil {
		fail("%v", err)
	}
	if *traceFile != "" {
		if err := os.WriteFile(*traceFile, res.Artifact(jobspec.ArtifactTrace), 0o644); err != nil {
			fail("%v", err)
		}
	}
	if *linksFile != "" {
		if err := os.WriteFile(*linksFile, res.Artifact(jobspec.ArtifactLinks), 0o644); err != nil {
			fail("%v", err)
		}
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "bgpsim: "+format+"\n", args...)
	os.Exit(1)
}
