// Command bgpsim runs a single micro-benchmark on a simulated machine
// partition and prints its timing — the quick way to poke at the
// machine models.
//
// Usage:
//
//	bgpsim -machine BG/P -mode VN -ranks 1024 -bench allreduce -bytes 32768
//	bgpsim -machine XT4/QC -ranks 512 -bench pingpong
//	bgpsim -machine BG/P -ranks 2048 -bench bcast -bytes 1048576
//	bgpsim -machine BG/P -ranks 512 -bench barrier
//	bgpsim -machine BG/P -ranks 512 -bench alltoall -bytes 4096
//	bgpsim -machine BG/P -ranks 64 -bench alltoall -profile -trace out.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bgpsim/internal/core"
	"bgpsim/internal/fault"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/obs"
	"bgpsim/internal/topology"
	"bgpsim/internal/trace"
)

// parseMode maps the -mode flag to an execution mode.
func parseMode(s string) (machine.Mode, error) {
	switch s {
	case "SMP":
		return machine.SMP, nil
	case "DUAL":
		return machine.DUAL, nil
	case "VN":
		return machine.VN, nil
	}
	return 0, fmt.Errorf("unknown mode %q (valid: SMP, DUAL, VN)", s)
}

// parseFidelity maps the -fidelity flag to a network model. Unknown
// names are an error, not a silent fallback to contention.
func parseFidelity(s string) (network.Fidelity, error) {
	switch s {
	case "analytic":
		return network.Analytic, nil
	case "contention":
		return network.Contention, nil
	case "packet":
		return network.Packet, nil
	}
	return 0, fmt.Errorf("unknown fidelity %q (valid: analytic, contention, packet)", s)
}

func main() {
	mach := flag.String("machine", "BG/P", "machine: BG/P, BG/L, XT3, XT4/DC, XT4/QC")
	modeS := flag.String("mode", "VN", "execution mode: SMP, DUAL, VN")
	ranks := flag.Int("ranks", 256, "MPI tasks")
	benchS := flag.String("bench", "allreduce", "benchmark: allreduce, bcast, barrier, alltoall, pingpong")
	bytes := flag.Int("bytes", 8, "payload size")
	double := flag.Bool("double", true, "double precision operands (allreduce)")
	mapping := flag.String("mapping", "XYZT", "process mapping (XYZT, TXYZ, ...)")
	fidelity := flag.String("fidelity", "contention", "network model: contention, analytic, or packet")
	shards := flag.Int("shards", 0, "partition the ranks across N parallel kernel shards (analytic fidelity only; output is byte-identical at any N)")
	faultsFlag := flag.String("faults", "", "inject a deterministic fault plan, e.g. 'seed=3,recover,kill=5@40us' or 'blast=50us/7/1/0/0/1' (see internal/fault.ParseSpec)")
	events := flag.Int("events", 0, "dump the first N trace events")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON timeline to FILE")
	profile := flag.Bool("profile", false, "print per-rank time decomposition and critical path")
	linksFile := flag.String("links", "", "write per-link utilization CSV to FILE")
	flag.Parse()

	if _, err := machine.Lookup(machine.ID(*mach)); err != nil {
		fail("%v", err)
	}
	mode, err := parseMode(*modeS)
	if err != nil {
		fail("%v", err)
	}
	if *ranks <= 0 {
		fail("rank count %d must be positive", *ranks)
	}
	if !topology.Mapping(*mapping).Valid() {
		fail("invalid mapping %q (want a permutation of X, Y, Z, T)", *mapping)
	}
	fid, err := parseFidelity(*fidelity)
	if err != nil {
		fail("%v", err)
	}

	cfg := core.PartitionConfig(machine.ID(*mach), mode, *ranks)
	cfg.Mapping = topology.Mapping(*mapping)
	cfg.Fidelity = fid
	if *shards < 0 {
		fail("shard count %d must be >= 0", *shards)
	}
	cfg.Shards = *shards
	if *faultsFlag != "" {
		plan, blasts, err := fault.BuildForPartition(*faultsFlag, machine.ID(*mach), cfg.Nodes)
		if err != nil {
			fail("%v", err)
		}
		for _, b := range blasts {
			fmt.Fprintf(os.Stderr, "bgpsim: blast from node %d: %s domain [%d, %d], %d nodes killed\n",
				b.Origin, b.Level, b.First, b.Last, len(b.Dead))
		}
		cfg.Faults = plan
	}
	var tb *trace.Buffer
	if *events > 0 {
		tb = trace.NewBuffer(*events)
		cfg.Trace = tb
	}
	var rec *obs.Recorder
	if *traceFile != "" || *profile || *linksFile != "" {
		rec = obs.NewRecorder()
		cfg.Probe = rec
	}

	var program func(*mpi.Rank)
	switch *benchS {
	case "allreduce":
		program = func(r *mpi.Rank) { r.World().Allreduce(r, *bytes, *double) }
	case "bcast":
		program = func(r *mpi.Rank) { r.World().Bcast(r, 0, *bytes) }
	case "barrier":
		program = func(r *mpi.Rank) { r.World().Barrier(r) }
	case "alltoall":
		program = func(r *mpi.Rank) { r.World().Alltoall(r, *bytes) }
	case "pingpong":
		far := cfg.Nodes / 2
		if far == 0 {
			far = *ranks - 1
		}
		program = func(r *mpi.Rank) {
			switch r.ID() {
			case 0:
				r.Send(far, *bytes, 1)
				r.Recv(far, 2)
			case far:
				r.Recv(0, 1)
				r.Send(0, *bytes, 2)
			}
		}
	default:
		fail("unknown benchmark %q", *benchS)
	}

	res, err := mpi.Execute(cfg, program)
	if err != nil {
		fail("%v", err)
	}
	if *shards > 1 && res.Shards < *shards {
		// The fallback is silent on stdout (results are identical
		// either way) but worth a note: the user asked for parallelism
		// the configuration cannot provide.
		fmt.Fprintf(os.Stderr, "bgpsim: note: ran on the serial kernel (-shards %d needs -fidelity analytic and no link faults)\n", *shards)
	}
	fmt.Printf("%s %s %d ranks (%d nodes), %s, %d bytes\n",
		*mach, mode, cfg.Ranks, cfg.Nodes, *benchS, *bytes)
	fmt.Printf("  time:       %v\n", res.Elapsed)
	if *benchS == "pingpong" {
		half := res.Elapsed / 2
		fmt.Printf("  one-way:    %v\n", half)
		if *bytes > 0 {
			fmt.Printf("  bandwidth:  %.3f GB/s\n", float64(*bytes)/half.Seconds()/1e9)
		}
	}
	fmt.Printf("  messages:   %d (%d on shared memory)\n", res.Net.Messages, res.Net.ShmMsgs)
	fmt.Printf("  tree ops:   %d, barrier-net ops: %d\n", res.Net.TreeOps, res.Net.BarrierOps)
	if cfg.Faults != nil {
		fmt.Printf("  lost ranks: %v\n", res.Lost)
		fmt.Printf("  recoveries: %d (tree rebuilds %d, HW fallbacks %d, %v charged)\n",
			res.Net.Recoveries, res.Net.TreeRebuilds, res.Net.HWFallbacks, res.Net.RecoveryTime)
		if cfg.Faults.LogSender() {
			fmt.Printf("  peer-lost:  %d rank(s) had waits cancelled on a dead peer\n", len(res.PeerLost))
			fmt.Printf("  msg log:    %d orphans cancelled, %d restarts (%d msgs / %d bytes replayed, %v replay, %v restart charged)\n",
				res.Net.Orphans, res.Net.Restarts, res.Net.Replays, res.Net.ReplayBytes,
				res.Net.ReplayTime, res.Net.RestartTime)
		}
	}
	fmt.Printf("  sim events: %d\n", res.Events)
	if n := res.DroppedEvents(); n > 0 {
		fmt.Fprintf(os.Stderr, "bgpsim: warning: %d trace events dropped (raise -events)\n", n)
	}
	if tb != nil {
		fmt.Println("trace:")
		if err := tb.Dump(os.Stdout); err != nil {
			fail("%v", err)
		}
	}
	if rec != nil {
		if *profile {
			if err := res.Profile().WriteTable(os.Stdout); err != nil {
				fail("%v", err)
			}
			if err := res.CriticalPath().WriteSummary(os.Stdout); err != nil {
				fail("%v", err)
			}
		}
		if *traceFile != "" {
			if err := writeFileWith(*traceFile, rec.WriteChromeTrace); err != nil {
				fail("%v", err)
			}
		}
		if *linksFile != "" {
			if err := writeFileWith(*linksFile, func(w io.Writer) error {
				return rec.WriteLinkCSV(w, obs.TorusLinkName)
			}); err != nil {
				fail("%v", err)
			}
		}
	}
}

// writeFileWith creates path and streams one exporter into it.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "bgpsim: "+format+"\n", args...)
	os.Exit(1)
}
