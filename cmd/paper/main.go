// Command paper regenerates the tables and figures of "Early
// Evaluation of IBM BlueGene/P" (SC'08) from the simulator.
//
// Usage:
//
//	paper -exp all            # every experiment at reduced scale
//	paper -exp fig4,table3    # specific experiments
//	paper -exp fig1 -full     # the paper's actual process counts
//	paper -exp all -out results/   # also write .txt and .csv files
//	paper -exp all -j 8       # 8 concurrent simulations per sweep
//
// Sweep points run concurrently on a worker pool (-j, default
// GOMAXPROCS); each simulation is deterministic and results are
// assembled in input order, so stdout is byte-identical at any -j.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"bgpsim/internal/paper"
	"bgpsim/internal/runner"
)

// selectExperiments resolves the -exp flag: "all", or a comma-
// separated list of experiment ids. An unknown id is an error naming
// the valid ones.
func selectExperiments(expFlag string) ([]paper.Experiment, error) {
	if expFlag == "all" {
		return paper.All(), nil
	}
	var exps []paper.Experiment
	for _, id := range strings.Split(expFlag, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			return nil, fmt.Errorf("paper: empty experiment id in -exp %q (valid: %s)", expFlag, strings.Join(paper.IDs(), ","))
		}
		e, err := paper.Get(id) // Get's error names the valid ids
		if err != nil {
			return nil, err
		}
		exps = append(exps, e)
	}
	return exps, nil
}

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids, or 'all'; one of "+strings.Join(paper.IDs(), ","))
	full := flag.Bool("full", false, "run at the paper's full process counts and sizes")
	out := flag.String("out", "", "directory to write per-experiment .txt and .csv files")
	list := flag.Bool("list", false, "list experiments and exit")
	verify := flag.Bool("verify", false, "check the paper's claims against the simulation and exit")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "concurrent simulations per sweep (results are identical at any -j)")
	shards := flag.Int("shards", 0, "run shard-eligible workloads on N parallel kernel shards (output is byte-identical at any N)")
	flag.Parse()
	runner.SetWorkers(*jobs)
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "paper: shard count %d must be >= 0\n", *shards)
		os.Exit(1)
	}
	if *shards > 1 {
		// Sharded jobs run several kernel goroutines each; shrink the
		// sweep pool so the process stays within the -j budget.
		runner.SetWorkers(runner.BudgetWorkers(*shards))
	}

	if *verify {
		results := paper.VerifyClaims(paper.Options{Full: *full, Shards: *shards})
		failed := 0
		for _, r := range results {
			mark := "PASS"
			if !r.Pass {
				mark = "FAIL"
				failed++
			}
			fmt.Printf("[%s] %-20s %s\n", mark, r.Claim.ID, r.Claim.Text)
			if r.Err != nil {
				fmt.Printf("       error: %v\n", r.Err)
			} else {
				fmt.Printf("       %s\n", r.Detail)
			}
		}
		fmt.Printf("\n%d/%d claims verified\n", len(results)-failed, len(results))
		if failed > 0 {
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range paper.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	exps, err := selectExperiments(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	opts := paper.Options{Full: *full, Shards: *shards}
	for _, e := range exps {
		start := time.Now()
		tables, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		// Wall time goes to stderr so stdout is byte-identical at any -j.
		fmt.Fprintf(os.Stderr, "%s: %.1fs\n", e.ID, time.Since(start).Seconds())
		fmt.Printf("==== %s: %s ====\n\n", e.ID, e.Title)
		var txt, csv strings.Builder
		for _, tb := range tables {
			fmt.Println(tb)
			if tb.Chart != "" {
				fmt.Println(tb.Chart)
			}
			txt.WriteString(tb.String())
			if tb.Chart != "" {
				txt.WriteString("\n" + tb.Chart)
			}
			txt.WriteString("\n")
			csv.WriteString("# " + tb.Title + "\n")
			csv.WriteString(tb.CSV())
			csv.WriteString("\n")
		}
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			base := filepath.Join(*out, e.ID)
			if err := os.WriteFile(base+".txt", []byte(txt.String()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := os.WriteFile(base+".csv", []byte(csv.String()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}
