package main

import (
	"strings"
	"testing"

	"bgpsim/internal/paper"
)

func TestSelectExperiments(t *testing.T) {
	ids := paper.IDs()
	if len(ids) < 2 {
		t.Fatalf("need at least two registered experiments, have %v", ids)
	}

	t.Run("all", func(t *testing.T) {
		exps, err := selectExperiments("all")
		if err != nil {
			t.Fatalf("selectExperiments(all): %v", err)
		}
		if len(exps) != len(ids) {
			t.Fatalf("got %d experiments, want %d", len(exps), len(ids))
		}
	})

	t.Run("single", func(t *testing.T) {
		exps, err := selectExperiments(ids[0])
		if err != nil {
			t.Fatalf("selectExperiments(%q): %v", ids[0], err)
		}
		if len(exps) != 1 || exps[0].ID != ids[0] {
			t.Fatalf("got %v, want just %q", exps, ids[0])
		}
	})

	t.Run("list preserves order", func(t *testing.T) {
		flag := ids[1] + ", " + ids[0]
		exps, err := selectExperiments(flag)
		if err != nil {
			t.Fatalf("selectExperiments(%q): %v", flag, err)
		}
		if len(exps) != 2 || exps[0].ID != ids[1] || exps[1].ID != ids[0] {
			t.Fatalf("selectExperiments(%q) = %v, want [%s %s]", flag, exps, ids[1], ids[0])
		}
	})

	t.Run("unknown id", func(t *testing.T) {
		_, err := selectExperiments("no-such-experiment")
		if err == nil {
			t.Fatal("want error for unknown experiment id")
		}
		if !strings.Contains(err.Error(), ids[0]) {
			t.Fatalf("error %q should list the valid ids", err)
		}
	})

	t.Run("empty element", func(t *testing.T) {
		_, err := selectExperiments(ids[0] + ",,")
		if err == nil {
			t.Fatal("want error for empty experiment id")
		}
		if !strings.Contains(err.Error(), "empty experiment id") {
			t.Fatalf("error %q should complain about the empty id", err)
		}
	})
}
