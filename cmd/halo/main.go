// Command halo runs the Wallcraft HALO benchmark on a simulated
// machine: the cost of a two-phase 1-2 row/column halo exchange on a
// 2-D virtual process grid (the paper's Figure 2).
//
// Usage:
//
//	halo -gx 32 -gy 16 -words 2048
//	halo -gx 32 -gy 16 -sweep            # sweep halo sizes
//	halo -gx 32 -gy 16 -mappings -words 20000
//
// The flags parse into a jobspec.Spec — the same canonical job
// description the bgpsimd server accepts as JSON — and run through the
// shared jobspec.Run path, so a CLI invocation and the equivalent
// server job produce byte-identical output.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"

	"bgpsim/internal/jobspec"
	"bgpsim/internal/mpi"
	"bgpsim/internal/runner"
)

func main() {
	mach := flag.String("machine", "BG/P", "machine id")
	modeS := flag.String("mode", "VN", "execution mode: SMP, DUAL, VN")
	gx := flag.Int("gx", 16, "virtual process grid columns")
	gy := flag.Int("gy", 8, "virtual process grid rows")
	words := flag.Int("words", 1000, "halo size in 32-bit words")
	mapping := flag.String("mapping", "TXYZ", "process mapping")
	protoS := flag.String("protocol", "isend", "protocol: isend, sendrecv, irecvsend, persistent")
	collFlag := flag.String("coll", "", "force collective algorithms, e.g. barrier=reduce-bcast")
	faultsFlag := flag.String("faults", "", "inject a deterministic fault plan, e.g. 'seed=3,recover,kill=5@40us' or 'blast=50us/7/1/0/0/1' (see internal/fault.ParseSpec)")
	varFlag := flag.String("var", "", "inject seeded per-node performance variability, e.g. 'clock:2%,link:5%@7' (see internal/fault.ParseVariabilitySpec)")
	sweep := flag.Bool("sweep", false, "sweep halo sizes")
	mappings := flag.Bool("mappings", false, "compare all predefined mappings")
	analytic := flag.Bool("analytic", false, "use the analytic network model instead of link contention (required for -shards)")
	shards := flag.Int("shards", 0, "partition the ranks across N parallel kernel shards (needs -analytic; output is byte-identical at any N)")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON timeline to FILE (single-run mode)")
	profile := flag.Bool("profile", false, "print per-rank time decomposition and critical path (single-run mode)")
	linksFile := flag.String("links", "", "write per-link utilization CSV to FILE (single-run mode)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "concurrent simulations (results are identical at any -j)")
	flag.Parse()
	runner.SetWorkers(*jobs)
	if *shards > 1 {
		// Each sweep job now runs several kernel goroutines: split the
		// -j budget so the process stays within it. Results are
		// identical at any worker count either way.
		runner.SetWorkers(runner.BudgetWorkers(*shards))
	}

	coll, err := jobspec.ParseColl(*collFlag)
	if err != nil {
		fail(err)
	}
	fidelity := "contention"
	if *analytic {
		fidelity = "analytic"
	}
	spec := jobspec.Spec{
		Kind:       jobspec.KindHalo,
		Machine:    *mach,
		Mode:       *modeS,
		GridX:      *gx,
		GridY:      *gy,
		Words:      *words,
		Iterations: 5,
		Protocol:   *protoS,
		Mapping:    *mapping,
		Fidelity:   fidelity,
		Coll:       coll,
		Faults:     *faultsFlag,
		Var:        *varFlag,
		Shards:     *shards,
		Sweep:      *sweep,
		Mappings:   *mappings,
		Trace:      *traceFile != "",
		Profile:    *profile,
		Links:      *linksFile != "",
	}
	res, err := jobspec.Run(spec, os.Stdout, os.Stderr)
	if err != nil {
		var rf *mpi.RankFailure
		if errors.As(err, &rf) && res != nil && len(res.Artifacts) > 0 {
			// An injected kill aborts the run, but the recorder kept
			// everything observed up to the abort: write the truncated
			// timeline out before failing.
			fmt.Fprintln(os.Stderr, "halo:", err)
			writeArtifacts(res, *traceFile, *linksFile)
			os.Exit(1)
		}
		fail(err)
	}
	writeArtifacts(res, *traceFile, *linksFile)
}

// writeArtifacts lands the in-memory artifacts in the files their
// flags named.
func writeArtifacts(res *jobspec.RunResult, traceFile, linksFile string) {
	if traceFile != "" {
		if err := os.WriteFile(traceFile, res.Artifact(jobspec.ArtifactTrace), 0o644); err != nil {
			fail(err)
		}
	}
	if linksFile != "" {
		if err := os.WriteFile(linksFile, res.Artifact(jobspec.ArtifactLinks), 0o644); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "halo:", err)
	os.Exit(1)
}
