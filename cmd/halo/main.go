// Command halo runs the Wallcraft HALO benchmark on a simulated
// machine: the cost of a two-phase 1-2 row/column halo exchange on a
// 2-D virtual process grid (the paper's Figure 2).
//
// Usage:
//
//	halo -gx 32 -gy 16 -words 2048
//	halo -gx 32 -gy 16 -sweep            # sweep halo sizes
//	halo -gx 32 -gy 16 -mappings -words 20000
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"

	"bgpsim/internal/core"
	"bgpsim/internal/fault"
	"bgpsim/internal/halo"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/obs"
	"bgpsim/internal/runner"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

// parseMode maps the -mode flag to an execution mode. Unknown names
// are an error, not a silent default.
func parseMode(s string) (machine.Mode, error) {
	switch s {
	case "SMP":
		return machine.SMP, nil
	case "DUAL":
		return machine.DUAL, nil
	case "VN":
		return machine.VN, nil
	}
	return 0, fmt.Errorf("unknown mode %q (valid: SMP, DUAL, VN)", s)
}

// parseProtocol maps the -protocol flag to a halo exchange protocol.
func parseProtocol(s string) (halo.Protocol, error) {
	switch s {
	case "isend":
		return halo.IsendIrecv, nil
	case "sendrecv":
		return halo.SendRecv, nil
	case "irecvsend":
		return halo.IrecvSend, nil
	case "persistent":
		return halo.Persistent, nil
	}
	return 0, fmt.Errorf("unknown protocol %q (valid: isend, sendrecv, irecvsend, persistent)", s)
}

func main() {
	mach := flag.String("machine", "BG/P", "machine id")
	modeS := flag.String("mode", "VN", "execution mode: SMP, DUAL, VN")
	gx := flag.Int("gx", 16, "virtual process grid columns")
	gy := flag.Int("gy", 8, "virtual process grid rows")
	words := flag.Int("words", 1000, "halo size in 32-bit words")
	mapping := flag.String("mapping", "TXYZ", "process mapping")
	protoS := flag.String("protocol", "isend", "protocol: isend, sendrecv, irecvsend, persistent")
	collFlag := flag.String("coll", "", "force collective algorithms, e.g. barrier=reduce-bcast")
	faultsFlag := flag.String("faults", "", "inject a deterministic fault plan, e.g. 'seed=3,recover,kill=5@40us' or 'blast=50us/7/1/0/0/1' (see internal/fault.ParseSpec)")
	sweep := flag.Bool("sweep", false, "sweep halo sizes")
	mappings := flag.Bool("mappings", false, "compare all predefined mappings")
	analytic := flag.Bool("analytic", false, "use the analytic network model instead of link contention (required for -shards)")
	shards := flag.Int("shards", 0, "partition the ranks across N parallel kernel shards (needs -analytic; output is byte-identical at any N)")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON timeline to FILE (single-run mode)")
	profile := flag.Bool("profile", false, "print per-rank time decomposition and critical path (single-run mode)")
	linksFile := flag.String("links", "", "write per-link utilization CSV to FILE (single-run mode)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "concurrent simulations (results are identical at any -j)")
	flag.Parse()
	runner.SetWorkers(*jobs)
	if *shards > 1 {
		// Each sweep job now runs several kernel goroutines: split the
		// -j budget so the process stays within it. Results are
		// identical at any worker count either way.
		runner.SetWorkers(runner.BudgetWorkers(*shards))
	}

	if *shards < 0 {
		fail(fmt.Errorf("shard count %d must be >= 0", *shards))
	}
	if _, err := machine.Lookup(machine.ID(*mach)); err != nil {
		fail(err)
	}
	mode, err := parseMode(*modeS)
	if err != nil {
		fail(err)
	}
	proto, err := parseProtocol(*protoS)
	if err != nil {
		fail(err)
	}
	if !topology.Mapping(*mapping).Valid() {
		fail(fmt.Errorf("invalid mapping %q (want a permutation of X, Y, Z, T, e.g. TXYZ)", *mapping))
	}
	if *gx <= 0 || *gy <= 0 {
		fail(fmt.Errorf("process grid %dx%d: dimensions must be positive", *gx, *gy))
	}
	if *words <= 0 {
		fail(fmt.Errorf("halo size %d words must be positive", *words))
	}
	coll, err := mpi.ParseCollSpec(*collFlag)
	if err != nil {
		fail(err)
	}
	base := halo.Options{
		Machine: machine.ID(*mach), Mode: mode,
		GridX: *gx, GridY: *gy,
		Mapping: topology.Mapping(*mapping), Protocol: proto,
		Words: *words, Iterations: 5, Coll: coll,
		Analytic: *analytic, Shards: *shards,
	}

	// newFaults rebuilds the fault plan from the validated -faults spec:
	// each sweep job gets its own plan, so nothing is shared between
	// concurrent simulations. Build is deterministic, so every rebuild
	// schedules identical faults.
	var newFaults func() *fault.Plan
	if *faultsFlag != "" {
		nodes := core.PartitionConfig(base.Machine, mode, *gx**gy).Nodes
		_, blasts, err := fault.BuildForPartition(*faultsFlag, base.Machine, nodes)
		if err != nil {
			fail(err)
		}
		for _, b := range blasts {
			fmt.Fprintf(os.Stderr, "halo: blast from node %d: %s domain [%d, %d], %d nodes killed\n",
				b.Origin, b.Level, b.First, b.Last, len(b.Dead))
		}
		newFaults = func() *fault.Plan {
			p, _, err := fault.BuildForPartition(*faultsFlag, base.Machine, nodes)
			if err != nil {
				fail(err) // unreachable: the spec validated above
			}
			return p
		}
		base.Faults = newFaults()
	}

	observing := *traceFile != "" || *profile || *linksFile != ""
	if observing && (*sweep || *mappings) {
		fail(fmt.Errorf("-trace/-profile/-links apply to single-run mode only, not -sweep or -mappings"))
	}
	var rec *obs.Recorder
	if observing {
		rec = obs.NewRecorder()
		base.Probe = rec
	}

	// Per-job kernel warnings (dropped trace events, shard fallbacks)
	// are collected here and flushed in job order after each sweep:
	// printing them from the worker goroutines would interleave lines
	// nondeterministically under -j.
	var notes runner.Notes
	warn := func(i int, res *mpi.Result) {
		if res == nil {
			return
		}
		if n := res.DroppedEvents(); n > 0 {
			notes.Add(i, "halo: warning: job %d: %d trace events dropped (buffer full)", i, n)
		}
		if *shards > 1 && res.Shards < *shards {
			notes.Add(i, "halo: note: job %d ran on the serial kernel (-shards %d needs -analytic and no link faults)", i, *shards)
		}
	}

	switch {
	case *mappings:
		fmt.Printf("HALO mapping comparison: %s %s %dx%d grid, %d words\n",
			*mach, mode, *gx, *gy, *words)
		ds, err := runner.Map(len(topology.PaperHALOMappings), func(i int) (sim.Duration, error) {
			o := base
			o.Mapping = topology.PaperHALOMappings[i]
			if newFaults != nil {
				o.Faults = newFaults()
			}
			d, res, err := halo.RunResult(o)
			warn(i, res)
			return d, err
		})
		notes.Flush(os.Stderr)
		if err != nil {
			fail(err)
		}
		for i, m := range topology.PaperHALOMappings {
			fmt.Printf("  %-5s %10.2f us\n", m, ds[i].Microseconds())
		}
	case *sweep:
		fmt.Printf("HALO size sweep: %s %s %dx%d grid, %s, mapping %s\n",
			*mach, mode, *gx, *gy, proto, base.Mapping)
		sizes := []int{2, 8, 32, 128, 512, 2048, 8192, 32768, 131072}
		ds, err := runner.Map(len(sizes), func(i int) (sim.Duration, error) {
			o := base
			o.Words = sizes[i]
			if newFaults != nil {
				o.Faults = newFaults()
			}
			d, res, err := halo.RunResult(o)
			warn(i, res)
			return d, err
		})
		notes.Flush(os.Stderr)
		if err != nil {
			fail(err)
		}
		for i, w := range sizes {
			fmt.Printf("  %8d words %12.2f us\n", w, ds[i].Microseconds())
		}
	default:
		d, res, err := halo.RunResult(base)
		if err != nil {
			var rf *mpi.RankFailure
			if errors.As(err, &rf) && rec != nil {
				// An injected kill aborts the run, but the recorder
				// keeps everything observed up to the abort: write the
				// truncated timeline out before failing.
				fmt.Fprintln(os.Stderr, "halo:", err)
				if err := writeTrace(rec, *traceFile); err != nil {
					fail(err)
				}
				if err := writeLinks(rec, *linksFile); err != nil {
					fail(err)
				}
				os.Exit(1)
			}
			fail(err)
		}
		fmt.Printf("HALO %s %s %dx%d grid, %d words, %s, mapping %s: %v per exchange\n",
			*mach, mode, *gx, *gy, *words, proto, base.Mapping, d)
		if base.Faults != nil && res != nil {
			fmt.Printf("  faults: lost ranks %v, recoveries %d (%v charged)\n",
				res.Lost, res.Net.Recoveries, res.Net.RecoveryTime)
			if base.Faults.LogSender() {
				fmt.Printf("  msg log: %d orphans cancelled (%d peer-lost waits), %d restarts (%d msgs / %d bytes replayed, %v replay, %v restart charged)\n",
					res.Net.Orphans, len(res.PeerLost), res.Net.Restarts, res.Net.Replays,
					res.Net.ReplayBytes, res.Net.ReplayTime, res.Net.RestartTime)
			}
		}
		if n := res.DroppedEvents(); n > 0 {
			fmt.Fprintf(os.Stderr, "halo: warning: %d trace events dropped (buffer full)\n", n)
		}
		if *shards > 1 && res.Shards < *shards {
			fmt.Fprintf(os.Stderr, "halo: note: ran on the serial kernel (-shards %d needs -analytic and no link faults)\n", *shards)
		}
		if rec != nil {
			if *profile {
				if err := res.Profile().WriteTable(os.Stdout); err != nil {
					fail(err)
				}
				if err := res.CriticalPath().WriteSummary(os.Stdout); err != nil {
					fail(err)
				}
			}
			if err := writeTrace(rec, *traceFile); err != nil {
				fail(err)
			}
			if err := writeLinks(rec, *linksFile); err != nil {
				fail(err)
			}
		}
	}
}

// writeTrace writes the recorded timeline as Chrome trace_event JSON.
func writeTrace(rec *obs.Recorder, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeLinks writes the per-link utilization heatmap CSV.
func writeLinks(rec *obs.Recorder, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteLinkCSV(f, obs.TorusLinkName); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "halo:", err)
	os.Exit(1)
}
