// Command halo runs the Wallcraft HALO benchmark on a simulated
// machine: the cost of a two-phase 1-2 row/column halo exchange on a
// 2-D virtual process grid (the paper's Figure 2).
//
// Usage:
//
//	halo -gx 32 -gy 16 -words 2048
//	halo -gx 32 -gy 16 -sweep            # sweep halo sizes
//	halo -gx 32 -gy 16 -mappings -words 20000
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"bgpsim/internal/halo"
	"bgpsim/internal/machine"
	"bgpsim/internal/runner"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

func main() {
	mach := flag.String("machine", "BG/P", "machine id")
	modeS := flag.String("mode", "VN", "execution mode")
	gx := flag.Int("gx", 16, "virtual process grid columns")
	gy := flag.Int("gy", 8, "virtual process grid rows")
	words := flag.Int("words", 1000, "halo size in 32-bit words")
	mapping := flag.String("mapping", "TXYZ", "process mapping")
	protoS := flag.String("protocol", "isend", "protocol: isend, sendrecv, irecvsend, persistent")
	sweep := flag.Bool("sweep", false, "sweep halo sizes")
	mappings := flag.Bool("mappings", false, "compare all predefined mappings")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "concurrent simulations (results are identical at any -j)")
	flag.Parse()
	runner.SetWorkers(*jobs)

	mode := machine.VN
	switch *modeS {
	case "SMP":
		mode = machine.SMP
	case "DUAL":
		mode = machine.DUAL
	}
	proto := halo.IsendIrecv
	switch *protoS {
	case "sendrecv":
		proto = halo.SendRecv
	case "irecvsend":
		proto = halo.IrecvSend
	case "persistent":
		proto = halo.Persistent
	}
	base := halo.Options{
		Machine: machine.ID(*mach), Mode: mode,
		GridX: *gx, GridY: *gy,
		Mapping: topology.Mapping(*mapping), Protocol: proto,
		Words: *words, Iterations: 5,
	}

	switch {
	case *mappings:
		fmt.Printf("HALO mapping comparison: %s %s %dx%d grid, %d words\n",
			*mach, mode, *gx, *gy, *words)
		ds, err := runner.Sweep(topology.PaperHALOMappings, func(m topology.Mapping) (sim.Duration, error) {
			o := base
			o.Mapping = m
			return halo.Run(o)
		})
		if err != nil {
			fail(err)
		}
		for i, m := range topology.PaperHALOMappings {
			fmt.Printf("  %-5s %10.2f us\n", m, ds[i].Microseconds())
		}
	case *sweep:
		fmt.Printf("HALO size sweep: %s %s %dx%d grid, %s, mapping %s\n",
			*mach, mode, *gx, *gy, proto, base.Mapping)
		sizes := []int{2, 8, 32, 128, 512, 2048, 8192, 32768, 131072}
		ds, err := runner.Sweep(sizes, func(w int) (sim.Duration, error) {
			o := base
			o.Words = w
			return halo.Run(o)
		})
		if err != nil {
			fail(err)
		}
		for i, w := range sizes {
			fmt.Printf("  %8d words %12.2f us\n", w, ds[i].Microseconds())
		}
	default:
		d, err := halo.Run(base)
		if err != nil {
			fail(err)
		}
		fmt.Printf("HALO %s %s %dx%d grid, %d words, %s, mapping %s: %v per exchange\n",
			*mach, mode, *gx, *gy, *words, proto, base.Mapping, d)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "halo:", err)
	os.Exit(1)
}
