package main

import (
	"strings"
	"testing"
)

// TestRunDefaultSpec: the built-in demo runs, reports every section,
// and its blast note names at least one hit job.
func TestRunDefaultSpec(t *testing.T) {
	var b strings.Builder
	if err := run(defaultSpec, 0, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"utilization", "jobs", "blasts", "blast at", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestRunBadSpec: parse errors surface instead of panicking.
func TestRunBadSpec(t *testing.T) {
	var b strings.Builder
	err := run("cohort=unknown:8:1", 0, &b)
	if err == nil || !strings.Contains(err.Error(), "unknown skeleton") {
		t.Fatalf("want unknown-skeleton error, got %v", err)
	}
}

// TestRunDeterministicAcrossShards: the CLI's full output (report +
// notes) is byte-identical with and without kernel sharding.
func TestRunDeterministicAcrossShards(t *testing.T) {
	spec := "seed=9,nodes=64,jobs=5,phase=0s:1500ms," +
		"cohort=halo:8:1:15s:400:restart,blast=4s/0/1/0/0/0.7"
	var plain, sharded strings.Builder
	if err := run(spec, 0, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run(spec, 4, &sharded); err != nil {
		t.Fatal(err)
	}
	if plain.String() != sharded.String() {
		t.Fatalf("output differs across shard counts:\n--- shards=0 ---\n%s\n--- shards=4 ---\n%s",
			plain.String(), sharded.String())
	}
}
