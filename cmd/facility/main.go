// Command facility runs a multi-job workload over a partitioned
// machine: seeded arrivals queue through a batch scheduler (FCFS or
// EASY backfill), every placed job runs as a real partition-scoped
// simulation, and machine-level blasts strike across whatever jobs
// happen to be running.
//
// Usage:
//
//	facility                         # the built-in demo mix
//	facility -w "nodes=64,jobs=6,cohort=halo:8:1:20s:800:cancel,blast=6s/0/1/0/0/1"
//	facility -j 8 -shards 4          # stdout is byte-identical at any -j/-shards
//
// The workload grammar is documented on facility.Parse (see also
// docs/FACILITY.md). The flags parse into a jobspec.Spec — the same
// canonical job description the bgpsimd server accepts as JSON — and
// run through the shared jobspec.Run path.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"bgpsim/internal/jobspec"
	"bgpsim/internal/runner"
)

// defaultSpec is a small demo: a 64-node BG/P slice, two cohorts under
// different fault policies, and a card-level blast mid-mix.
const defaultSpec = "seed=7,nodes=64,jobs=8,phase=0s:2s," +
	"cohort=halo:8:2:20s:600:cancel,cohort=cg:16:1:12s:300:failstop," +
	"blast=6s/0/1/0/0/0.8"

// run executes one workload through the shared jobspec path and writes
// the report plus the per-blast notes to w.
func run(spec string, shards int, w io.Writer) error {
	_, err := jobspec.Run(jobspec.Spec{
		Kind:     jobspec.KindFacility,
		Workload: spec,
		Shards:   shards,
	}, w, w)
	return err
}

func main() {
	spec := flag.String("w", defaultSpec, "workload spec (see facility.Parse)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "concurrent job simulations (output is identical at any -j)")
	shards := flag.Int("shards", 0, "parallel kernel shards per job simulation (output is identical at any N)")
	flag.Parse()
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "facility: shard count %d must be >= 0\n", *shards)
		os.Exit(1)
	}
	runner.SetWorkers(*jobs)
	if *shards > 1 {
		// Sharded jobs run several kernel goroutines each; shrink the
		// sweep pool so the process stays within the -j budget.
		runner.SetWorkers(runner.BudgetWorkers(*shards))
	}
	if err := run(*spec, *shards, os.Stdout); err != nil {
		// Parse/Run errors already carry the "facility:" prefix.
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
