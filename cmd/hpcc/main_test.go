package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseRanks(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		want    []int
		wantErr string
	}{
		{name: "single", in: "256", want: []int{256}},
		{name: "list", in: "256,1024,4096", want: []int{256, 1024, 4096}},
		{name: "spaces", in: " 256 , 1024 ", want: []int{256, 1024}},
		{name: "not a number", in: "256,abc", wantErr: `bad -ranks value "abc"`},
		{name: "empty element", in: "256,,1024", wantErr: `bad -ranks value ""`},
		{name: "zero", in: "0", wantErr: "must be positive"},
		{name: "negative", in: "256,-4", wantErr: "must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseRanks(tc.in)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("parseRanks(%q) = %v, want error containing %q", tc.in, got, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("parseRanks(%q) error = %q, want it to contain %q", tc.in, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseRanks(%q): %v", tc.in, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("parseRanks(%q) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}
