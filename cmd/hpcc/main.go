// Command hpcc runs the HPC Challenge suite on a simulated machine and
// prints the per-test results (the paper's Table 2 and Figure 1
// quantities for one machine at one or more process counts).
//
// Usage:
//
//	hpcc -machine BG/P -ranks 1024
//	hpcc -machine XT4/QC -ranks 4096
//	hpcc -machine BG/P -ranks 256,1024,4096 -j 4
//
// With a comma-separated -ranks list the suites for the different
// process counts run concurrently on a worker pool (-j, default
// GOMAXPROCS); each simulation is deterministic and output order
// follows the list order, so the report is identical at any -j.
//
// The flags parse into a jobspec.Spec — the same canonical job
// description the bgpsimd server accepts as JSON — and run through the
// shared jobspec.Run path, so a CLI invocation and the equivalent
// server job produce byte-identical output.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"bgpsim/internal/jobspec"
	"bgpsim/internal/runner"
)

// parseRanks parses the -ranks flag: comma-separated positive process
// counts.
func parseRanks(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		r, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad -ranks value %q (want comma-separated integers, e.g. 256,1024)", f)
		}
		if r <= 0 {
			return nil, fmt.Errorf("bad -ranks value %d: process counts must be positive", r)
		}
		out = append(out, r)
	}
	return out, nil
}

func main() {
	mach := flag.String("machine", "BG/P", "machine: BG/P, BG/L, XT3, XT4/DC, XT4/QC")
	ranksFlag := flag.String("ranks", "256", "MPI processes (VN mode); comma-separated for a sweep")
	collFlag := flag.String("coll", "", "force collective algorithms, e.g. allreduce=ring,bcast=binomial")
	faultsFlag := flag.String("faults", "", "inject a deterministic fault plan into the collective phase, e.g. 'seed=3,recover,kill=5@40us' (see internal/fault.ParseSpec)")
	varFlag := flag.String("var", "", "inject seeded per-node performance variability into the simulated tests, e.g. 'clock:2%,link:5%@7' (see internal/fault.ParseVariabilitySpec)")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON timeline of the collective phase to FILE (single -ranks value)")
	profile := flag.Bool("profile", false, "print the collective phase's per-rank time decomposition and critical path (single -ranks value)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "concurrent simulations (results are identical at any -j)")
	shardsFlag := flag.Int("shards", 0, "request N parallel kernel shards per simulation (HPCC runs at contention fidelity, so this currently falls back to the serial kernel; output is identical at any N)")
	flag.Parse()
	runner.SetWorkers(*jobs)
	if *shardsFlag > 1 {
		runner.SetWorkers(runner.BudgetWorkers(*shardsFlag))
	}

	rankCounts, err := parseRanks(*ranksFlag)
	if err != nil {
		fail(err)
	}
	coll, err := jobspec.ParseColl(*collFlag)
	if err != nil {
		fail(err)
	}
	spec := jobspec.Spec{
		Kind:     jobspec.KindHPCC,
		Machine:  *mach,
		RankList: rankCounts,
		Coll:     coll,
		Faults:   *faultsFlag,
		Var:      *varFlag,
		Shards:   *shardsFlag,
		Trace:    *traceFile != "",
		Profile:  *profile,
	}
	res, err := jobspec.Run(spec, os.Stdout, os.Stderr)
	if err != nil {
		fail(err)
	}
	if *traceFile != "" {
		if err := os.WriteFile(*traceFile, res.Artifact(jobspec.ArtifactTrace), 0o644); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hpcc:", err)
	os.Exit(1)
}
