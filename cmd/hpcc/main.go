// Command hpcc runs the HPC Challenge suite on a simulated machine and
// prints the per-test results (the paper's Table 2 and Figure 1
// quantities for one machine at one process count).
//
// Usage:
//
//	hpcc -machine BG/P -ranks 1024
//	hpcc -machine XT4/QC -ranks 4096
package main

import (
	"flag"
	"fmt"
	"os"

	"bgpsim/internal/hpcc"
	"bgpsim/internal/machine"
)

func main() {
	mach := flag.String("machine", "BG/P", "machine: BG/P, BG/L, XT3, XT4/DC, XT4/QC")
	ranks := flag.Int("ranks", 256, "MPI processes (VN mode)")
	flag.Parse()

	id := machine.ID(*mach)
	m := machine.Get(id)

	ep, err := hpcc.SingleAndEP(id, *ranks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpcc:", err)
		os.Exit(1)
	}
	n := hpcc.ProblemSizeN(m, machine.VN, *ranks, 0.8)
	nb := hpcc.BlockingNB(id)

	fmt.Printf("HPCC on %s, %d processes (VN mode), N=%d, NB=%d\n\n", m.Name, *ranks, n, nb)
	fmt.Printf("Single-process / embarrassingly-parallel tests:\n")
	fmt.Printf("  DGEMM:             %8.2f GFlop/s per process\n", ep.DGEMMGF)
	fmt.Printf("  STREAM triad SP:   %8.2f GB/s\n", ep.StreamSPGB)
	fmt.Printf("  STREAM triad EP:   %8.2f GB/s per process\n", ep.StreamEPGB)
	fmt.Printf("  FFT EP:            %8.2f GFlop/s per process\n", ep.FFTEPGF)
	fmt.Printf("Communication tests:\n")
	fmt.Printf("  Ping-pong latency: %8.2f us\n", ep.PingPongLatUS)
	fmt.Printf("  Ping-pong BW:      %8.2f GB/s\n", ep.PingPongBWGBs)
	fmt.Printf("  Random ring lat:   %8.2f us\n", ep.RandRingLatUS)
	fmt.Printf("  Random ring BW:    %8.2f GB/s per process\n", ep.RandRingBWGBs)
	fmt.Printf("Parallel tests:\n")
	fmt.Printf("  HPL:               %8.1f GFlop/s (%.1f%% of peak)\n",
		hpcc.HPLAnalytic(id, machine.VN, *ranks, n, nb),
		hpcc.HPLAnalytic(id, machine.VN, *ranks, n, nb)*1e9/(m.PeakFlopsCore()*float64(*ranks))*100)
	fmt.Printf("  FFT:               %8.1f GFlop/s\n", hpcc.FFTAnalytic(id, machine.VN, *ranks))
	fmt.Printf("  PTRANS:            %8.1f GB/s\n", hpcc.PTRANSAnalytic(id, machine.VN, *ranks))
	fmt.Printf("  RandomAccess:      %8.3f GUPS\n", hpcc.RandomAccessGUPS(id, machine.VN, *ranks))
}
