// Command hpcc runs the HPC Challenge suite on a simulated machine and
// prints the per-test results (the paper's Table 2 and Figure 1
// quantities for one machine at one or more process counts).
//
// Usage:
//
//	hpcc -machine BG/P -ranks 1024
//	hpcc -machine XT4/QC -ranks 4096
//	hpcc -machine BG/P -ranks 256,1024,4096 -j 4
//
// With a comma-separated -ranks list the suites for the different
// process counts run concurrently on a worker pool (-j, default
// GOMAXPROCS); each simulation is deterministic and output order
// follows the list order, so the report is identical at any -j.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"bgpsim/internal/core"
	"bgpsim/internal/fault"
	"bgpsim/internal/hpcc"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/obs"
	"bgpsim/internal/runner"
)

// parseRanks parses the -ranks flag: comma-separated positive process
// counts.
func parseRanks(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		r, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad -ranks value %q (want comma-separated integers, e.g. 256,1024)", f)
		}
		if r <= 0 {
			return nil, fmt.Errorf("bad -ranks value %d: process counts must be positive", r)
		}
		out = append(out, r)
	}
	return out, nil
}

func main() {
	mach := flag.String("machine", "BG/P", "machine: BG/P, BG/L, XT3, XT4/DC, XT4/QC")
	ranksFlag := flag.String("ranks", "256", "MPI processes (VN mode); comma-separated for a sweep")
	collFlag := flag.String("coll", "", "force collective algorithms, e.g. allreduce=ring,bcast=binomial")
	faultsFlag := flag.String("faults", "", "inject a deterministic fault plan into the collective phase, e.g. 'seed=3,recover,kill=5@40us' (see internal/fault.ParseSpec)")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON timeline of the collective phase to FILE (single -ranks value)")
	profile := flag.Bool("profile", false, "print the collective phase's per-rank time decomposition and critical path (single -ranks value)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "concurrent simulations (results are identical at any -j)")
	shardsFlag := flag.Int("shards", 0, "request N parallel kernel shards per simulation (HPCC runs at contention fidelity, so this currently falls back to the serial kernel; output is identical at any N)")
	flag.Parse()
	runner.SetWorkers(*jobs)
	if *shardsFlag < 0 {
		fmt.Fprintf(os.Stderr, "hpcc: shard count %d must be >= 0\n", *shardsFlag)
		os.Exit(1)
	}
	hpcc.SetShards(*shardsFlag)
	if *shardsFlag > 1 {
		runner.SetWorkers(runner.BudgetWorkers(*shardsFlag))
	}

	id := machine.ID(*mach)
	m, err := machine.Lookup(id)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpcc: %v\n", err)
		os.Exit(1)
	}

	coll, err := mpi.ParseCollSpec(*collFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpcc: %v\n", err)
		os.Exit(1)
	}

	rankCounts, err := parseRanks(*ranksFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpcc: %v\n", err)
		os.Exit(1)
	}

	var rec *obs.Recorder
	if *traceFile != "" || *profile {
		if len(rankCounts) != 1 {
			fmt.Fprintln(os.Stderr, "hpcc: -trace/-profile need a single -ranks value")
			os.Exit(1)
		}
		rec = obs.NewRecorder()
	}

	// Per-job diagnostics (blast domains, dropped trace events, shard
	// fallbacks) are collected here and flushed in job order after the
	// sweep — including before an error exit, so an aborted run still
	// reports which nodes its blast took out. Printing from the worker
	// goroutines would interleave lines nondeterministically under -j.
	var notes runner.Notes
	reports, err := runner.Map(len(rankCounts), func(job int) (string, error) {
		ranks := rankCounts[job]
		ep, err := hpcc.SingleAndEP(id, ranks)
		if err != nil {
			return "", err
		}
		// The fault plan is built per rank count (blast domains and
		// range checks depend on the partition) and per job, so
		// concurrent simulations share nothing.
		var plan *fault.Plan
		if *faultsFlag != "" {
			nodes := core.PartitionConfig(id, machine.VN, ranks).Nodes
			var blasts []fault.BlastResult
			plan, blasts, err = fault.BuildForPartition(*faultsFlag, id, nodes)
			if err != nil {
				return "", err
			}
			for _, bl := range blasts {
				notes.Add(job, "hpcc: %d processes: blast from node %d: %s domain [%d, %d], %d nodes killed",
					ranks, bl.Origin, bl.Level, bl.First, bl.Last, len(bl.Dead))
			}
		}
		// rec is only non-nil with a single rank count, so at most one
		// simulation ever drives it.
		cb, cres, err := hpcc.CollBenchFaulty(id, ranks, coll, plan, probeOrNil(rec))
		if cres != nil {
			if n := cres.DroppedEvents(); n > 0 {
				notes.Add(job, "hpcc: warning: %d processes: %d trace events dropped (buffer full)", ranks, n)
			}
			if *shardsFlag > 1 && cres.Shards < *shardsFlag {
				notes.Add(job, "hpcc: note: %d processes ran on the serial kernel (-shards %d needs the analytic fidelity and no link faults)",
					ranks, *shardsFlag)
			}
		}
		if err != nil {
			return "", err
		}
		n := hpcc.ProblemSizeN(m, machine.VN, ranks, 0.8)
		nb := hpcc.BlockingNB(id)
		hpl := hpcc.HPLAnalytic(id, machine.VN, ranks, n, nb)

		var b strings.Builder
		fmt.Fprintf(&b, "HPCC on %s, %d processes (VN mode), N=%d, NB=%d\n\n", m.Name, ranks, n, nb)
		fmt.Fprintf(&b, "Single-process / embarrassingly-parallel tests:\n")
		fmt.Fprintf(&b, "  DGEMM:             %8.2f GFlop/s per process\n", ep.DGEMMGF)
		fmt.Fprintf(&b, "  STREAM triad SP:   %8.2f GB/s\n", ep.StreamSPGB)
		fmt.Fprintf(&b, "  STREAM triad EP:   %8.2f GB/s per process\n", ep.StreamEPGB)
		fmt.Fprintf(&b, "  FFT EP:            %8.2f GFlop/s per process\n", ep.FFTEPGF)
		fmt.Fprintf(&b, "Communication tests:\n")
		fmt.Fprintf(&b, "  Ping-pong latency: %8.2f us\n", ep.PingPongLatUS)
		fmt.Fprintf(&b, "  Ping-pong BW:      %8.2f GB/s\n", ep.PingPongBWGBs)
		fmt.Fprintf(&b, "  Random ring lat:   %8.2f us\n", ep.RandRingLatUS)
		fmt.Fprintf(&b, "  Random ring BW:    %8.2f GB/s per process\n", ep.RandRingBWGBs)
		fmt.Fprintf(&b, "Collective tests (%d bytes):\n", hpcc.CollBytes)
		fmt.Fprintf(&b, "  Barrier:           %8.2f us  [%s]\n", cb.BarrierUS, cb.BarrierAlgo)
		fmt.Fprintf(&b, "  Bcast:             %8.2f us  [%s]\n", cb.BcastUS, cb.BcastAlgo)
		fmt.Fprintf(&b, "  Allreduce:         %8.2f us  [%s]\n", cb.AllreduceUS, cb.AllreduceAlgo)
		if plan != nil {
			fmt.Fprintf(&b, "Injected faults (%s):\n", *faultsFlag)
			fmt.Fprintf(&b, "  lost ranks: %v\n", cres.Lost)
			fmt.Fprintf(&b, "  recoveries: %d (tree rebuilds %d, HW fallbacks %d, %v charged)\n",
				cres.Net.Recoveries, cres.Net.TreeRebuilds, cres.Net.HWFallbacks, cres.Net.RecoveryTime)
			if plan.LogSender() {
				fmt.Fprintf(&b, "  message log: %d orphans cancelled, %d restarts (%d msgs / %d bytes replayed, %v replay, %v restart charged)\n",
					cres.Net.Orphans, cres.Net.Restarts, cres.Net.Replays, cres.Net.ReplayBytes,
					cres.Net.ReplayTime, cres.Net.RestartTime)
			}
		}
		fmt.Fprintf(&b, "Parallel tests:\n")
		fmt.Fprintf(&b, "  HPL:               %8.1f GFlop/s (%.1f%% of peak)\n",
			hpl, hpl*1e9/(m.PeakFlopsCore()*float64(ranks))*100)
		fmt.Fprintf(&b, "  FFT:               %8.1f GFlop/s\n", hpcc.FFTAnalytic(id, machine.VN, ranks))
		fmt.Fprintf(&b, "  PTRANS:            %8.1f GB/s\n", hpcc.PTRANSAnalytic(id, machine.VN, ranks))
		fmt.Fprintf(&b, "  RandomAccess:      %8.3f GUPS\n", hpcc.RandomAccessGUPS(id, machine.VN, ranks))
		return b.String(), nil
	})
	notes.Flush(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpcc:", err)
		os.Exit(1)
	}
	for i, r := range reports {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(r)
	}
	if rec != nil {
		if *profile {
			fmt.Println()
			if err := rec.Profile().WriteTable(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "hpcc:", err)
				os.Exit(1)
			}
			if err := rec.CriticalPath().WriteSummary(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "hpcc:", err)
				os.Exit(1)
			}
		}
		if *traceFile != "" {
			f, err := os.Create(*traceFile)
			if err == nil {
				err = rec.WriteChromeTrace(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "hpcc:", err)
				os.Exit(1)
			}
		}
	}
}

// probeOrNil converts a possibly-nil *obs.Recorder to an obs.Probe
// without producing a non-nil interface around a nil pointer.
func probeOrNil(rec *obs.Recorder) obs.Probe {
	if rec == nil {
		return nil
	}
	return rec
}
