// Command bgpsimd serves bgpsim simulations over HTTP: clients POST
// canonical job specs (the same document the CLIs build from their
// flags) and get back the run's stdout, stderr, and observability
// artifacts as JSON. Deterministic execution makes results
// content-addressable — resubmitting a job returns the cached document
// byte-identically without re-running it. See docs/SERVER.md.
//
// Usage:
//
//	bgpsimd [-addr host:port] [-workers n] [-queue n] [-cache n]
//	        [-rate r -burst n] [-snapshots n] [-addr-file path]
//
// SIGINT/SIGTERM triggers a graceful drain: accepted jobs finish,
// parked snapshots unwind, then the process exits 0.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bgpsim/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the actual listen address to this file once serving")
	workers := flag.Int("workers", 2, "concurrent simulation workers")
	queue := flag.Int("queue", 8, "queued-job depth before submissions get 429")
	cache := flag.Int("cache", 64, "result cache capacity (documents)")
	rate := flag.Float64("rate", 0, "sustained job submissions per second (0 = unlimited)")
	burst := flag.Int("burst", 4, "rate-limit burst depth")
	snapshots := flag.Int("snapshots", 16, "maximum parked snapshots")
	smoke := flag.Bool("smoke", false, "self-test: start, submit a job twice, verify the cache replays it byte-identically, drain, exit")
	flag.Parse()

	cfg := server.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		RatePerSec:   *rate,
		Burst:        *burst,
		MaxSnapshots: *snapshots,
	}
	if *smoke {
		if err := runSmoke(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "bgpsimd: smoke: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("bgpsimd: smoke ok")
		return
	}
	if err := serve(cfg, *addr, *addrFile); err != nil {
		fmt.Fprintf(os.Stderr, "bgpsimd: %v\n", err)
		os.Exit(1)
	}
}

func serve(cfg server.Config, addr, addrFile string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := server.New(cfg)
	hs := &http.Server{Handler: srv.Handler()}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return fmt.Errorf("write addr file: %v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "bgpsimd: serving on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "bgpsimd: %v: draining\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return fmt.Errorf("drain: %v", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %v", err)
	}
	fmt.Fprintln(os.Stderr, "bgpsimd: drained")
	return nil
}

// runSmoke exercises the cache contract end to end over real HTTP: the
// same job submitted twice must answer miss then hit with
// byte-identical bodies, and the drain must complete cleanly.
func runSmoke(cfg server.Config) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := server.New(cfg)
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)

	base := "http://" + ln.Addr().String()
	job := `{"kind":"bench","bench":"allreduce","ranks":64,"trace":true}`
	post := func() ([]byte, string, error) {
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(job)))
		if err != nil {
			return nil, "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, "", err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, "", fmt.Errorf("status %d: %s", resp.StatusCode, body)
		}
		return body, resp.Header.Get("X-Bgpsimd-Cache"), nil
	}
	first, src1, err := post()
	if err != nil {
		return fmt.Errorf("first submit: %v", err)
	}
	if src1 != "miss" {
		return fmt.Errorf("first submit: cache %q, want miss", src1)
	}
	second, src2, err := post()
	if err != nil {
		return fmt.Errorf("second submit: %v", err)
	}
	if src2 != "hit" {
		return fmt.Errorf("second submit: cache %q, want hit", src2)
	}
	if !bytes.Equal(first, second) {
		return fmt.Errorf("cache hit body differs from miss body (%d vs %d bytes)", len(first), len(second))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return fmt.Errorf("drain: %v", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %v", err)
	}
	fmt.Printf("bgpsimd: smoke: %d-byte result, miss then hit, byte-identical, drained\n", len(first))
	return nil
}
