// Command benchdiff compares two kernel benchmark recordings (the
// test2json streams written by `make bench`) and fails when a
// benchmark regressed by more than the allowed percentage. It guards
// the simulator's hot paths: `make benchdiff` runs a fresh benchmark
// pass and diffs it against the committed BENCH_kernel.json.
//
// Usage:
//
//	benchdiff -old BENCH_kernel.json -new bench_fresh.json \
//	          -max-regress 10 -require KernelAllreduce512,KernelBcast512
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches `BenchmarkName-8   50   123456 ns/op ...` after
// test2json Output fields are concatenated back into a text stream.
var benchLine = regexp.MustCompile(`(?m)^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// readBench extracts benchmark name -> ns/op from a test2json file.
func readBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct{ Output string }
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			// Allow plain `go test -bench` text output too.
			text.WriteString(sc.Text())
			text.WriteByte('\n')
			continue
		}
		text.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, m := range benchLine.FindAllStringSubmatch(text.String(), -1) {
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad ns/op in %q", path, m[0])
		}
		out[strings.TrimPrefix(m[1], "Benchmark")] = ns
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return out, nil
}

func main() {
	oldPath := flag.String("old", "BENCH_kernel.json", "baseline benchmark recording")
	newPath := flag.String("new", "", "fresh benchmark recording to compare")
	maxRegress := flag.Float64("max-regress", 10, "allowed ns/op regression in percent")
	require := flag.String("require", "", "comma-separated benchmarks that must be present in both files; "+
		"only these gate the exit status (sub-microsecond benchmarks are too noisy to gate), "+
		"or every benchmark when empty")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(2)
	}

	oldB, err := readBench(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newB, err := readBench(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	failed := false
	gated := make(map[string]bool)
	for _, name := range strings.Split(*require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		gated[name] = true
		if _, ok := oldB[name]; !ok {
			fmt.Fprintf(os.Stderr, "benchdiff: required %s missing from %s\n", name, *oldPath)
			failed = true
		}
		if _, ok := newB[name]; !ok {
			fmt.Fprintf(os.Stderr, "benchdiff: required %s missing from %s\n", name, *newPath)
			failed = true
		}
	}

	names := make([]string, 0, len(oldB))
	for name := range oldB {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		nv, ok := newB[name]
		if !ok {
			fmt.Printf("%-28s %12.0f ns/op -> (missing)\n", name, oldB[name])
			continue
		}
		delta := (nv - oldB[name]) / oldB[name] * 100
		verdict := "ok"
		if delta > *maxRegress {
			if len(gated) == 0 || gated[name] {
				verdict = fmt.Sprintf("REGRESSED (> %.0f%%)", *maxRegress)
				failed = true
			} else {
				verdict = "slower (not gated)"
			}
		}
		fmt.Printf("%-28s %12.0f ns/op -> %12.0f ns/op  %+6.1f%%  %s\n",
			name, oldB[name], nv, delta, verdict)
	}
	if failed {
		os.Exit(1)
	}
}
