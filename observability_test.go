package bgpsim_test

// Observability contract tests: dropped trace events are surfaced, the
// Chrome trace export of a pinned run is byte-stable, and probed runs
// on the worker pool render identical profile tables at any -j (the
// test matters most under -race, where it also proves recorders on
// different sweep points share no state).

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bgpsim"
	"bgpsim/internal/fault"
	"bgpsim/internal/halo"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/runner"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

func TestTraceBufferOverflowSurfaced(t *testing.T) {
	const cap = 4
	tb := bgpsim.NewTraceBuffer(cap)
	cfg := bgpsim.NewSystem(bgpsim.BGP, bgpsim.VN, 16, bgpsim.WithTrace(tb))
	res, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
		right := (r.ID() + 1) % r.Size()
		left := (r.ID() - 1 + r.Size()) % r.Size()
		for k := 0; k < 4; k++ {
			r.Sendrecv(right, 1024, k, left, k)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != cap {
		t.Errorf("buffer holds %d events, want the cap %d", tb.Len(), cap)
	}
	if tb.Dropped() == 0 {
		t.Error("no dropped events counted on an overflowing buffer")
	}
	if res.DroppedEvents() != tb.Dropped() {
		t.Errorf("Result surfaces %d dropped events, buffer counted %d",
			res.DroppedEvents(), tb.Dropped())
	}

	// A large enough buffer drops nothing, and the Result says so.
	tb2 := bgpsim.NewTraceBuffer(1 << 16)
	cfg2 := bgpsim.NewSystem(bgpsim.BGP, bgpsim.VN, 16, bgpsim.WithTrace(tb2))
	res2, err := bgpsim.Run(cfg2, func(r *bgpsim.Rank) { r.World().Barrier(r) })
	if err != nil {
		t.Fatal(err)
	}
	if res2.DroppedEvents() != 0 {
		t.Errorf("dropped = %d on an unconstrained buffer", res2.DroppedEvents())
	}
}

// pinnedHalo runs the golden observability workload: an 8-rank HALO
// exchange on BG/P with a fresh recorder attached.
func pinnedHalo() (*bgpsim.Recorder, error) {
	rec := bgpsim.NewRecorder()
	_, _, err := halo.RunResult(halo.Options{
		Machine: machine.BGP, Mode: machine.VN,
		GridX: 4, GridY: 2,
		Mapping: topology.MapTXYZ, Protocol: halo.IsendIrecv,
		Words: 2048, Iterations: 2,
		Probe: rec,
	})
	return rec, err
}

func TestChromeTraceGolden(t *testing.T) {
	rec, err := pinnedHalo()
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := rec.WriteChromeTrace(&got); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "halo8.trace.json")
	if *updateGolden {
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run ChromeTraceGolden -update .` to create it)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("Chrome trace drifted from %s (%d vs %d bytes); if the change is intended, regenerate with -update",
			path, got.Len(), len(want))
	}
}

// profileTables runs `n` independent probed halo simulations on the
// runner pool at the given worker count and renders each one's profile
// table and critical-path summary.
func profileTables(t *testing.T, n, workers int) []string {
	t.Helper()
	defer runner.SetWorkers(0)
	runner.SetWorkers(workers)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	out, err := runner.Sweep(idx, func(i int) (string, error) {
		rec, err := pinnedHalo()
		if err != nil {
			return "", err
		}
		var b strings.Builder
		if err := rec.Profile().WriteTable(&b); err != nil {
			return "", err
		}
		if err := rec.CriticalPath().WriteSummary(&b); err != nil {
			return "", err
		}
		return b.String(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// pinnedHaloFault is pinnedHalo with node 1 (ranks 4-7 in VN mode)
// killed mid-run and no recovery enabled: the run aborts with
// *mpi.RankFailure, and the recorder keeps everything observed up to
// the abort.
func pinnedHaloFault() (*bgpsim.Recorder, error) {
	plan := fault.NewPlan(7)
	plan.KillNode(1, sim.Time(40*sim.Microsecond))
	rec := bgpsim.NewRecorder()
	_, _, err := halo.RunResult(halo.Options{
		Machine: machine.BGP, Mode: machine.VN,
		GridX: 4, GridY: 2,
		Mapping: topology.MapTXYZ, Protocol: halo.IsendIrecv,
		Words: 2048, Iterations: 2,
		Faults: plan,
		Probe:  rec,
	})
	return rec, err
}

// TestFaultTraceGolden pins the observability output of an aborted
// run: the Chrome trace of the pinned HALO workload with an injected
// node loss is byte-stable, the abort surfaces as *mpi.RankFailure,
// and the critical-path buckets still tile the truncated run exactly.
func TestFaultTraceGolden(t *testing.T) {
	rec, err := pinnedHaloFault()
	var rf *mpi.RankFailure
	if !errors.As(err, &rf) {
		t.Fatalf("err = %v (%T), want *mpi.RankFailure", err, err)
	}
	var got bytes.Buffer
	if err := rec.WriteChromeTrace(&got); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "halo8_fault.trace.json")
	if *updateGolden {
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run FaultTraceGolden -update .` to create it)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("fault trace drifted from %s (%d vs %d bytes); if the change is intended, regenerate with -update",
			path, got.Len(), len(want))
	}

	cp := rec.CriticalPath()
	if cp.Total <= 0 {
		t.Fatal("critical path of the aborted run is empty")
	}
	if sum := cp.Compute + cp.P2PWait + cp.CollWait + cp.Other; sum != cp.Total {
		t.Errorf("critical-path buckets sum to %v, want %v (must tile exactly)", sum, cp.Total)
	}
}

func TestProfileTablesWorkerInvariance(t *testing.T) {
	serial := profileTables(t, 4, 1)
	parallel := profileTables(t, 4, 4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("probed run %d renders differently at -j 1 and -j 4:\n-- j1 --\n%s\n-- j4 --\n%s",
				i, serial[i], parallel[i])
		}
		if i > 0 && serial[i] != serial[0] {
			t.Fatalf("identical probed runs %d and 0 differ:\n%s\nvs\n%s", i, serial[i], serial[0])
		}
	}
}
