package bgpsim_test

// Observability contract tests: dropped trace events are surfaced, the
// Chrome trace export of a pinned run is byte-stable, and probed runs
// on the worker pool render identical profile tables at any -j (the
// test matters most under -race, where it also proves recorders on
// different sweep points share no state).

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bgpsim"
	"bgpsim/internal/halo"
	"bgpsim/internal/machine"
	"bgpsim/internal/runner"
	"bgpsim/internal/topology"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

func TestTraceBufferOverflowSurfaced(t *testing.T) {
	const cap = 4
	tb := bgpsim.NewTraceBuffer(cap)
	cfg := bgpsim.NewSystem(bgpsim.BGP, bgpsim.VN, 16, bgpsim.WithTrace(tb))
	res, err := bgpsim.Run(cfg, func(r *bgpsim.Rank) {
		right := (r.ID() + 1) % r.Size()
		left := (r.ID() - 1 + r.Size()) % r.Size()
		for k := 0; k < 4; k++ {
			r.Sendrecv(right, 1024, k, left, k)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != cap {
		t.Errorf("buffer holds %d events, want the cap %d", tb.Len(), cap)
	}
	if tb.Dropped() == 0 {
		t.Error("no dropped events counted on an overflowing buffer")
	}
	if res.DroppedEvents() != tb.Dropped() {
		t.Errorf("Result surfaces %d dropped events, buffer counted %d",
			res.DroppedEvents(), tb.Dropped())
	}

	// A large enough buffer drops nothing, and the Result says so.
	tb2 := bgpsim.NewTraceBuffer(1 << 16)
	cfg2 := bgpsim.NewSystem(bgpsim.BGP, bgpsim.VN, 16, bgpsim.WithTrace(tb2))
	res2, err := bgpsim.Run(cfg2, func(r *bgpsim.Rank) { r.World().Barrier(r) })
	if err != nil {
		t.Fatal(err)
	}
	if res2.DroppedEvents() != 0 {
		t.Errorf("dropped = %d on an unconstrained buffer", res2.DroppedEvents())
	}
}

// pinnedHalo runs the golden observability workload: an 8-rank HALO
// exchange on BG/P with a fresh recorder attached.
func pinnedHalo() (*bgpsim.Recorder, error) {
	rec := bgpsim.NewRecorder()
	_, _, err := halo.RunResult(halo.Options{
		Machine: machine.BGP, Mode: machine.VN,
		GridX: 4, GridY: 2,
		Mapping: topology.MapTXYZ, Protocol: halo.IsendIrecv,
		Words: 2048, Iterations: 2,
		Probe: rec,
	})
	return rec, err
}

func TestChromeTraceGolden(t *testing.T) {
	rec, err := pinnedHalo()
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := rec.WriteChromeTrace(&got); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "halo8.trace.json")
	if *updateGolden {
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run ChromeTraceGolden -update .` to create it)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("Chrome trace drifted from %s (%d vs %d bytes); if the change is intended, regenerate with -update",
			path, got.Len(), len(want))
	}
}

// profileTables runs `n` independent probed halo simulations on the
// runner pool at the given worker count and renders each one's profile
// table and critical-path summary.
func profileTables(t *testing.T, n, workers int) []string {
	t.Helper()
	defer runner.SetWorkers(0)
	runner.SetWorkers(workers)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	out, err := runner.Sweep(idx, func(i int) (string, error) {
		rec, err := pinnedHalo()
		if err != nil {
			return "", err
		}
		var b strings.Builder
		if err := rec.Profile().WriteTable(&b); err != nil {
			return "", err
		}
		if err := rec.CriticalPath().WriteSummary(&b); err != nil {
			return "", err
		}
		return b.String(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestProfileTablesWorkerInvariance(t *testing.T) {
	serial := profileTables(t, 4, 1)
	parallel := profileTables(t, 4, 4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("probed run %d renders differently at -j 1 and -j 4:\n-- j1 --\n%s\n-- j4 --\n%s",
				i, serial[i], parallel[i])
		}
		if i > 0 && serial[i] != serial[0] {
			t.Fatalf("identical probed runs %d and 0 differ:\n%s\nvs\n%s", i, serial[i], serial[0])
		}
	}
}
