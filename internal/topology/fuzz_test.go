package topology

import (
	"errors"
	"testing"
)

// FuzzTorusRoute asserts the fault-routing contract: for any torus
// shape, any node pair, and any single failed link, AppendRouteAvoid
// either returns a valid route that avoids the failed link or returns
// a typed *LinkDownError — it never hangs, panics, or produces a
// discontinuous or absurdly long route. The network layer relies on
// exactly this to keep the simulator's error paths deterministic under
// fault injection.
func FuzzTorusRoute(f *testing.F) {
	f.Add(uint8(4), uint8(4), uint8(2), uint16(0), uint16(12), uint32(7))
	f.Add(uint8(8), uint8(8), uint8(8), uint16(0), uint16(511), uint32(0))
	f.Add(uint8(1), uint8(1), uint8(2), uint16(0), uint16(1), uint32(5))
	f.Add(uint8(2), uint8(2), uint8(2), uint16(3), uint16(4), uint32(40))
	f.Add(uint8(5), uint8(3), uint8(1), uint16(14), uint16(2), uint32(33))
	f.Add(uint8(7), uint8(7), uint8(7), uint16(100), uint16(300), uint32(999))
	f.Fuzz(func(t *testing.T, dx, dy, dz uint8, rawA, rawB uint16, rawFail uint32) {
		dims := Dims{int(dx%8) + 1, int(dy%8) + 1, int(dz%8) + 1}
		tor := NewTorus(dims)
		n := dims.Nodes()
		a := int(rawA) % n
		b := int(rawB) % n
		failIdx := int(rawFail) % tor.NumLinks()
		blocked := func(l Link) bool { return tor.LinkIndex(l) == failIdx }

		route, err := tor.AppendRouteAvoid(nil, a, b, blocked)
		if err != nil {
			var lde *LinkDownError
			if !errors.As(err, &lde) {
				t.Fatalf("err = %v (%T), want *LinkDownError", err, err)
			}
			return
		}
		cur := a
		for i, l := range route {
			if l.Node != cur {
				t.Fatalf("route %d->%d hop %d starts at %d, expected %d", a, b, i, l.Node, cur)
			}
			if tor.LinkIndex(l) == failIdx {
				t.Fatalf("route %d->%d uses the failed link %v", a, b, l)
			}
			cur = tor.Neighbor(l.Node, l.Dim, l.Positive)
		}
		if cur != b {
			t.Fatalf("route %d->%d ends at node %d", a, b, cur)
		}
		// A shortest surviving detour around one failed link never
		// needs more than a bounded number of extra hops.
		if len(route) > tor.Diameter()+6 {
			t.Fatalf("route %d->%d takes %d hops (diameter %d)", a, b, len(route), tor.Diameter())
		}
		// When the failed link is off the dimension-ordered route, the
		// result must be exactly the dimension-ordered route.
		direct := tor.Route(a, b)
		onDirect := false
		for _, l := range direct {
			if tor.LinkIndex(l) == failIdx {
				onDirect = true
				break
			}
		}
		if !onDirect && len(route) != len(direct) {
			t.Fatalf("failed link off-route but route length %d != direct %d", len(route), len(direct))
		}
	})
}
