// Package topology models the interconnect geometry of the evaluated
// machines: 3-D torus coordinates and dimension-ordered routing, the
// predefined BlueGene process-to-processor mappings (XYZT, TXYZ, ...),
// and the collective tree used by the BlueGene global collective
// network.
package topology

import "fmt"

// Dims are the X, Y, Z extents of a 3-D torus.
type Dims [3]int

// Nodes returns the node count of the torus.
func (d Dims) Nodes() int { return d[0] * d[1] * d[2] }

// String formats the dims as "XxYxZ".
func (d Dims) String() string { return fmt.Sprintf("%dx%dx%d", d[0], d[1], d[2]) }

// Coord is a node location in the torus.
type Coord [3]int

// Torus is a 3-D wrap-around mesh.
type Torus struct {
	Dims Dims
}

// NewTorus returns a torus of the given dimensions. All extents must
// be positive.
func NewTorus(d Dims) *Torus {
	for i, v := range d {
		if v <= 0 {
			panic(fmt.Sprintf("topology: dimension %d is %d", i, v))
		}
	}
	return &Torus{Dims: d}
}

// NodeAt returns the linear node index of a coordinate (x fastest).
func (t *Torus) NodeAt(c Coord) int {
	return c[0] + t.Dims[0]*(c[1]+t.Dims[1]*c[2])
}

// CoordOf returns the coordinate of a linear node index.
func (t *Torus) CoordOf(node int) Coord {
	x := node % t.Dims[0]
	node /= t.Dims[0]
	y := node % t.Dims[1]
	z := node / t.Dims[1]
	return Coord{x, y, z}
}

// hopDist returns the signed shortest wrap-around step count from a to
// b along a dimension of extent n: the result is in (-n/2, n/2].
func hopDist(a, b, n int) int {
	d := (b - a) % n
	if d < 0 {
		d += n
	}
	if d > n/2 {
		d -= n
	}
	return d
}

// Hops returns the minimal hop count between two nodes.
func (t *Torus) Hops(a, b int) int {
	ca, cb := t.CoordOf(a), t.CoordOf(b)
	h := 0
	for i := 0; i < 3; i++ {
		d := hopDist(ca[i], cb[i], t.Dims[i])
		if d < 0 {
			d = -d
		}
		h += d
	}
	return h
}

// Diameter returns the maximum minimal hop count between any node pair.
func (t *Torus) Diameter() int {
	return t.Dims[0]/2 + t.Dims[1]/2 + t.Dims[2]/2
}

// Link identifies a directed torus link: the link leaving node Node in
// dimension Dim (0..2) toward Positive or negative neighbours.
type Link struct {
	Node     int
	Dim      int
	Positive bool
}

// LinkIndex returns a dense index for the link, in [0, 6*Nodes).
func (t *Torus) LinkIndex(l Link) int {
	dir := 0
	if l.Positive {
		dir = 1
	}
	return l.Node*6 + l.Dim*2 + dir
}

// NumLinks returns the number of directed links in the torus.
func (t *Torus) NumLinks() int { return 6 * t.Dims.Nodes() }

// Route returns the dimension-ordered (X then Y then Z) shortest-wrap
// route from node a to node b as a sequence of directed links. The
// route is empty when a == b.
func (t *Torus) Route(a, b int) []Link {
	return t.AppendRoute(nil, a, b)
}

// AppendRoute appends the route from a to b to buf and returns it —
// the allocation-free form for hot loops (the network model routes
// every message).
func (t *Torus) AppendRoute(buf []Link, a, b int) []Link {
	if a == b {
		return buf
	}
	cur := t.CoordOf(a)
	dst := t.CoordOf(b)
	for dim := 0; dim < 3; dim++ {
		d := hopDist(cur[dim], dst[dim], t.Dims[dim])
		step := 1
		if d < 0 {
			step = -1
			d = -d
		}
		for i := 0; i < d; i++ {
			buf = append(buf, Link{Node: t.NodeAt(cur), Dim: dim, Positive: step > 0})
			cur[dim] = ((cur[dim]+step)%t.Dims[dim] + t.Dims[dim]) % t.Dims[dim]
		}
	}
	return buf
}

// BisectionLinks returns the number of directed links crossing the
// bisection of the torus cut perpendicular to its longest dimension.
// For a wrap-around torus the cut crosses each of the two halves'
// boundaries, so the count is 2 * (area of cross-section) * 2
// directions.
func (t *Torus) BisectionLinks() int {
	longest := 0
	for i := 1; i < 3; i++ {
		if t.Dims[i] > t.Dims[longest] {
			longest = i
		}
	}
	area := t.Dims.Nodes() / t.Dims[longest]
	wrap := 2
	if t.Dims[longest] <= 2 {
		wrap = 1 // degenerate: wrap link coincides with direct link
	}
	return area * wrap * 2
}

// knownDims maps standard BlueGene/P partition sizes (in nodes) to
// their torus dimensions, following the rack layout described in the
// paper (1 rack = 1024 nodes = 8x8x16).
var knownDims = map[int]Dims{
	32:    {4, 4, 2},
	64:    {4, 4, 4},
	128:   {4, 4, 8},
	256:   {8, 4, 8},
	512:   {8, 8, 8},    // one midplane
	1024:  {8, 8, 16},   // one rack
	2048:  {8, 8, 32},   // two racks (ORNL "Eugene")
	4096:  {8, 16, 32},  // four racks
	8192:  {16, 16, 32}, // eight racks
	10240: {16, 20, 32},
	16384: {16, 32, 32},
	24576: {24, 32, 32},
	32768: {32, 32, 32},
	40960: {32, 32, 40}, // forty racks (ANL "Intrepid")
}

// DimsForNodes returns torus dimensions for a node count: the standard
// BlueGene partition shape when the count is a known partition size,
// otherwise the most-cubic three-factor decomposition. It panics if
// nodes is not positive.
func DimsForNodes(nodes int) Dims {
	if nodes <= 0 {
		panic(fmt.Sprintf("topology: bad node count %d", nodes))
	}
	if d, ok := knownDims[nodes]; ok {
		return d
	}
	best := Dims{1, 1, nodes}
	bestScore := scoreDims(best)
	for x := 1; x*x*x <= nodes; x++ {
		if nodes%x != 0 {
			continue
		}
		rem := nodes / x
		for y := x; y*y <= rem; y++ {
			if rem%y != 0 {
				continue
			}
			d := Dims{x, y, rem / y}
			if s := scoreDims(d); s < bestScore {
				best, bestScore = d, s
			}
		}
	}
	return best
}

// scoreDims prefers near-cubic shapes (smaller surface area).
func scoreDims(d Dims) int {
	return d[0]*d[1] + d[1]*d[2] + d[0]*d[2]
}
