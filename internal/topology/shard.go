package topology

// ShardOfNode returns the shard owning the given node under contiguous
// slab partitioning: node indices are split into shards blocks of
// near-equal size. Node indices vary fastest along X, so contiguous
// index slabs are planes stacked along the slowest dimension — a
// torus-aware blocking that keeps each shard's nodes physically
// adjacent and puts at least one torus hop between ranks of different
// shards (which is what grounds the sharded kernel's lookahead).
// shards may exceed nodes; high shards then own no nodes.
func ShardOfNode(node, nodes, shards int) int {
	if shards <= 1 || nodes <= 0 {
		return 0
	}
	s := int(int64(node) * int64(shards) / int64(nodes))
	if s >= shards {
		s = shards - 1
	}
	return s
}
