package topology

import (
	"testing"
	"testing/quick"
)

func TestNodeCoordRoundTrip(t *testing.T) {
	tor := NewTorus(Dims{8, 8, 16})
	for n := 0; n < tor.Dims.Nodes(); n++ {
		if got := tor.NodeAt(tor.CoordOf(n)); got != n {
			t.Fatalf("round trip %d -> %v -> %d", n, tor.CoordOf(n), got)
		}
	}
}

func TestHopDist(t *testing.T) {
	cases := []struct{ a, b, n, want int }{
		{0, 1, 8, 1},
		{1, 0, 8, -1},
		{0, 7, 8, -1}, // wrap is shorter
		{0, 4, 8, 4},  // exactly half: positive by convention
		{7, 0, 8, 1},
		{2, 2, 8, 0},
		{0, 3, 5, -2}, // odd extent wrap
	}
	for _, c := range cases {
		if got := hopDist(c.a, c.b, c.n); got != c.want {
			t.Errorf("hopDist(%d,%d,%d) = %d, want %d", c.a, c.b, c.n, got, c.want)
		}
	}
}

func TestHopsSymmetric(t *testing.T) {
	tor := NewTorus(Dims{4, 6, 8})
	f := func(a, b uint16) bool {
		x := int(a) % tor.Dims.Nodes()
		y := int(b) % tor.Dims.Nodes()
		return tor.Hops(x, y) == tor.Hops(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHopsTriangleInequality(t *testing.T) {
	tor := NewTorus(Dims{4, 4, 4})
	f := func(a, b, c uint16) bool {
		x := int(a) % 64
		y := int(b) % 64
		z := int(c) % 64
		return tor.Hops(x, z) <= tor.Hops(x, y)+tor.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRouteLengthMatchesHops(t *testing.T) {
	tor := NewTorus(Dims{8, 8, 16})
	f := func(a, b uint16) bool {
		x := int(a) % tor.Dims.Nodes()
		y := int(b) % tor.Dims.Nodes()
		return len(tor.Route(x, y)) == tor.Hops(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRouteEndsAtDestination(t *testing.T) {
	tor := NewTorus(Dims{8, 8, 16})
	// Walk the route and verify it terminates at the destination.
	walk := func(a, b int) int {
		cur := tor.CoordOf(a)
		for _, l := range tor.Route(a, b) {
			if tor.NodeAt(cur) != l.Node {
				t.Fatalf("route link %v does not start at current node %d", l, tor.NodeAt(cur))
			}
			step := -1
			if l.Positive {
				step = 1
			}
			d := l.Dim
			cur[d] = ((cur[d]+step)%tor.Dims[d] + tor.Dims[d]) % tor.Dims[d]
		}
		return tor.NodeAt(cur)
	}
	rng := []int{0, 1, 63, 511, 1023, 500, 777}
	for _, a := range rng {
		for _, b := range rng {
			if got := walk(a, b); got != b {
				t.Errorf("route from %d to %d ends at %d", a, b, got)
			}
		}
	}
}

func TestRouteSelfEmpty(t *testing.T) {
	tor := NewTorus(Dims{4, 4, 4})
	if r := tor.Route(17, 17); len(r) != 0 {
		t.Errorf("self route has %d links", len(r))
	}
}

func TestLinkIndexDense(t *testing.T) {
	tor := NewTorus(Dims{4, 4, 2})
	seen := make(map[int]bool)
	for n := 0; n < tor.Dims.Nodes(); n++ {
		for d := 0; d < 3; d++ {
			for _, pos := range []bool{false, true} {
				idx := tor.LinkIndex(Link{Node: n, Dim: d, Positive: pos})
				if idx < 0 || idx >= tor.NumLinks() {
					t.Fatalf("link index %d out of range", idx)
				}
				if seen[idx] {
					t.Fatalf("duplicate link index %d", idx)
				}
				seen[idx] = true
			}
		}
	}
	if len(seen) != tor.NumLinks() {
		t.Errorf("indexed %d links, want %d", len(seen), tor.NumLinks())
	}
}

func TestDiameter(t *testing.T) {
	tor := NewTorus(Dims{8, 8, 16})
	want := 4 + 4 + 8
	if got := tor.Diameter(); got != want {
		t.Errorf("diameter = %d, want %d", got, want)
	}
	// No pair exceeds the diameter.
	for _, a := range []int{0, 100, 500} {
		for _, b := range []int{3, 700, 1023} {
			if h := tor.Hops(a, b); h > want {
				t.Errorf("hops(%d,%d) = %d exceeds diameter %d", a, b, h, want)
			}
		}
	}
}

func TestDimsForNodesKnown(t *testing.T) {
	cases := map[int]Dims{
		512:   {8, 8, 8},
		1024:  {8, 8, 16},
		2048:  {8, 8, 32},
		8192:  {16, 16, 32},
		40960: {32, 32, 40},
	}
	for n, want := range cases {
		if got := DimsForNodes(n); got != want {
			t.Errorf("DimsForNodes(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestDimsForNodesGeneric(t *testing.T) {
	for _, n := range []int{1, 2, 6, 30, 100, 1000, 12000, 7} {
		d := DimsForNodes(n)
		if d.Nodes() != n {
			t.Errorf("DimsForNodes(%d) = %v with %d nodes", n, d, d.Nodes())
		}
	}
	// 1000 should be cubic.
	if d := DimsForNodes(1000); d != (Dims{10, 10, 10}) {
		t.Errorf("DimsForNodes(1000) = %v, want 10x10x10", d)
	}
}

func TestDimsForNodesBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero nodes")
		}
	}()
	DimsForNodes(0)
}

func TestMappingValid(t *testing.T) {
	for _, m := range append(append([]Mapping{}, NodeFirstMappings...), CoreFirstMappings...) {
		if !m.Valid() {
			t.Errorf("%q should be valid", m)
		}
	}
	for _, m := range []Mapping{"", "XY", "XXYZ", "XYZW", "XYZTT"} {
		if m.Valid() {
			t.Errorf("%q should be invalid", m)
		}
	}
}

func TestMapperXYZTAssignsNodesFirst(t *testing.T) {
	tor := NewTorus(Dims{4, 4, 4})
	mp := NewMapper(tor, 4, MapXYZT)
	// First 64 ranks land on 64 distinct nodes, core 0.
	seen := map[int]bool{}
	for r := 0; r < 64; r++ {
		p := mp.Place(r)
		if p.Core != 0 {
			t.Fatalf("rank %d on core %d, want 0", r, p.Core)
		}
		if seen[p.Node] {
			t.Fatalf("rank %d reuses node %d", r, p.Node)
		}
		seen[p.Node] = true
	}
	// Rank 64 wraps to core 1 of node 0.
	if p := mp.Place(64); p.Node != 0 || p.Core != 1 {
		t.Errorf("rank 64 at %+v, want node 0 core 1", p)
	}
}

func TestMapperTXYZFillsCoresFirst(t *testing.T) {
	tor := NewTorus(Dims{4, 4, 4})
	mp := NewMapper(tor, 4, MapTXYZ)
	for r := 0; r < 4; r++ {
		p := mp.Place(r)
		if p.Node != 0 || p.Core != r {
			t.Fatalf("rank %d at %+v, want node 0 core %d", r, p, r)
		}
	}
	// Ranks 4-7 on the next node in X.
	p := mp.Place(4)
	if p.Core != 0 {
		t.Errorf("rank 4 core = %d, want 0", p.Core)
	}
	if c := tor.CoordOf(p.Node); c != (Coord{1, 0, 0}) {
		t.Errorf("rank 4 node coord = %v, want {1,0,0}", c)
	}
}

func TestMapperXYZTEqualsTXYZInSMP(t *testing.T) {
	// The paper: "In SMP mode, the XYZT and TXYZ orderings are identical."
	tor := NewTorus(Dims{8, 8, 16})
	a := NewMapper(tor, 1, MapXYZT)
	b := NewMapper(tor, 1, MapTXYZ)
	for r := 0; r < tor.Dims.Nodes(); r++ {
		if a.Place(r) != b.Place(r) {
			t.Fatalf("rank %d differs: %+v vs %+v", r, a.Place(r), b.Place(r))
		}
	}
}

func TestMapperBijective(t *testing.T) {
	tor := NewTorus(Dims{4, 2, 8})
	for _, m := range PaperHALOMappings {
		mp := NewMapper(tor, 4, m)
		seen := map[Placement]bool{}
		for r := 0; r < mp.MaxRanks(); r++ {
			p := mp.Place(r)
			if seen[p] {
				t.Fatalf("%s: placement %+v reused", m, p)
			}
			seen[p] = true
		}
		if len(seen) != mp.MaxRanks() {
			t.Fatalf("%s: %d placements for %d ranks", m, len(seen), mp.MaxRanks())
		}
	}
}

func TestMapperOutOfRangePanics(t *testing.T) {
	tor := NewTorus(Dims{2, 2, 2})
	mp := NewMapper(tor, 1, MapXYZT)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range rank")
		}
	}()
	mp.Place(8)
}

func TestAvgHops(t *testing.T) {
	tor := NewTorus(Dims{8, 8, 8})
	mp := NewMapper(tor, 1, MapXYZT)
	// Neighbouring ranks in X are one hop apart under XYZT.
	pairs := [][2]int{{0, 1}, {1, 2}, {2, 3}}
	if got := mp.AvgHops(pairs); got != 1 {
		t.Errorf("avg hops = %g, want 1", got)
	}
	if got := mp.AvgHops(nil); got != 0 {
		t.Errorf("avg hops of empty = %g", got)
	}
}

func TestBisectionLinks(t *testing.T) {
	tor := NewTorus(Dims{8, 8, 16})
	// Cut perpendicular to Z: 8*8 cross-section, wrap doubles, 2 directions.
	if got := tor.BisectionLinks(); got != 8*8*2*2 {
		t.Errorf("bisection links = %d, want %d", got, 8*8*2*2)
	}
}

func TestCollectiveTree(t *testing.T) {
	tr := NewCollectiveTree(1024, 3)
	if tr.Depth < 6 || tr.Depth > 8 {
		t.Errorf("arity-3 tree over 1024 nodes depth = %d, want ~7", tr.Depth)
	}
	if NewCollectiveTree(1, 3).Depth != 0 {
		t.Error("single-node tree should have depth 0")
	}
	if NewCollectiveTree(0, 0).Nodes != 1 {
		t.Error("degenerate tree should clamp to one node")
	}
}

func TestBinomialRounds(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := BinomialRounds(n); got != want {
			t.Errorf("BinomialRounds(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestNewMapperValidation(t *testing.T) {
	tor := NewTorus(Dims{2, 2, 2})
	for _, bad := range []func(){
		func() { NewMapper(tor, 1, "ABCD") },
		func() { NewMapper(tor, 0, MapXYZT) },
		func() { NewTorus(Dims{0, 1, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestAppendRouteMatchesRoute(t *testing.T) {
	tor := NewTorus(Dims{8, 8, 16})
	buf := make([]Link, 0, tor.Diameter())
	for _, a := range []int{0, 17, 512, 1023} {
		for _, b := range []int{3, 700, 1023, 0} {
			want := tor.Route(a, b)
			got := tor.AppendRoute(buf[:0], a, b)
			if len(got) != len(want) {
				t.Fatalf("route %d->%d: lengths %d vs %d", a, b, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("route %d->%d differs at %d", a, b, i)
				}
			}
		}
	}
}
