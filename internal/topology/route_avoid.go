package topology

import "fmt"

// LinkDownError reports that no route between two nodes survives the
// failed links: the fault set has partitioned the torus. The MPI layer
// surfaces it (wrapped) when a message cannot be delivered.
type LinkDownError struct {
	Src, Dst int // torus node indices
}

func (e *LinkDownError) Error() string {
	return fmt.Sprintf("topology: no route from node %d to node %d avoids the failed links (torus partitioned)",
		e.Src, e.Dst)
}

// Neighbor returns the node reached by one hop from node along
// dimension dim in the positive or negative direction (with wrap).
func (t *Torus) Neighbor(node, dim int, positive bool) int {
	c := t.CoordOf(node)
	step := 1
	if !positive {
		step = -1
	}
	c[dim] = ((c[dim]+step)%t.Dims[dim] + t.Dims[dim]) % t.Dims[dim]
	return t.NodeAt(c)
}

// LinkFromIndex is the inverse of LinkIndex: it reconstructs the
// directed link with the given dense index in [0, NumLinks).
func (t *Torus) LinkFromIndex(i int) Link {
	if i < 0 || i >= t.NumLinks() {
		panic(fmt.Sprintf("topology: link index %d out of range [0, %d)", i, t.NumLinks()))
	}
	return Link{Node: i / 6, Dim: (i % 6) / 2, Positive: i%2 == 1}
}

// AppendRouteAvoid appends a route from a to b that uses no link for
// which blocked reports true, and returns the extended buffer. It
// first tries the ordinary dimension-ordered route — when no failed
// link lies on it, the result (and cost) is identical to AppendRoute.
// Otherwise it falls back to a breadth-first detour search over the
// surviving links: the shortest surviving path, with ties broken
// deterministically by dimension order (X before Y before Z, positive
// before negative), so the same fault set always yields the same
// detour. When b is unreachable it returns a *LinkDownError.
func (t *Torus) AppendRouteAvoid(buf []Link, a, b int, blocked func(Link) bool) ([]Link, error) {
	if a == b {
		return buf, nil
	}
	mark := len(buf)
	buf = t.AppendRoute(buf, a, b)
	clean := true
	for _, l := range buf[mark:] {
		if blocked(l) {
			clean = false
			break
		}
	}
	if clean {
		return buf, nil
	}
	buf = buf[:mark]

	// BFS from a over surviving links. prev[n] is the link that first
	// reached node n; the FIFO frontier makes the first arrival a
	// shortest surviving path.
	n := t.Dims.Nodes()
	prev := make([]Link, n)
	seen := make([]bool, n)
	queue := make([]int, 0, n)
	seen[a] = true
	queue = append(queue, a)
	found := false
search:
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		for dim := 0; dim < 3; dim++ {
			if t.Dims[dim] == 1 {
				continue // a self-loop, never part of a route
			}
			for _, pos := range [2]bool{true, false} {
				l := Link{Node: cur, Dim: dim, Positive: pos}
				if blocked(l) {
					continue
				}
				nb := t.Neighbor(cur, dim, pos)
				if seen[nb] {
					continue
				}
				seen[nb] = true
				prev[nb] = l
				if nb == b {
					found = true
					break search
				}
				queue = append(queue, nb)
			}
		}
	}
	if !found {
		return buf, &LinkDownError{Src: a, Dst: b}
	}

	// Reconstruct a->b by walking prev backwards, then reverse in place.
	for node := b; node != a; {
		l := prev[node]
		buf = append(buf, l)
		node = l.Node
	}
	for i, j := mark, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return buf, nil
}
