package topology

import (
	"math/rand"
	"testing"
)

// reachableOracle is an independent reachability check used to verify
// AppendRouteAvoid's partition verdicts: a depth-first search visiting
// dimensions in the opposite order from the router's BFS, so the two
// implementations share no traversal structure.
func reachableOracle(t *Torus, a, b int, blocked func(Link) bool) bool {
	if a == b {
		return true
	}
	seen := make([]bool, t.Dims.Nodes())
	stack := []int{a}
	seen[a] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for dim := 2; dim >= 0; dim-- {
			if t.Dims[dim] == 1 {
				continue
			}
			for _, pos := range [2]bool{false, true} {
				l := Link{Node: cur, Dim: dim, Positive: pos}
				if blocked(l) {
					continue
				}
				nb := t.Neighbor(cur, dim, pos)
				if nb == b {
					return true
				}
				if !seen[nb] {
					seen[nb] = true
					stack = append(stack, nb)
				}
			}
		}
	}
	return false
}

// TestAppendRouteAvoidProperties drives the fault-aware router with
// random link-fault sets of increasing severity and checks, for random
// node pairs:
//
//   - a returned route never traverses a failed link;
//   - the route is a valid walk: it starts at the source, each link
//     leaves the node the previous one arrived at, and it ends at the
//     destination;
//   - the route is never shorter than the healthy shortest path;
//   - *LinkDownError is returned exactly when an independent
//     reachability oracle says the pair is truly partitioned;
//   - the same fault set and pair always produce the same route.
func TestAppendRouteAvoidProperties(t *testing.T) {
	shapes := []Dims{{4, 4, 4}, {4, 2, 2}, {8, 4, 2}, {2, 2, 2}}
	for _, dims := range shapes {
		tor := NewTorus(dims)
		rng := rand.New(rand.NewSource(int64(dims.Nodes())))
		for _, frac := range []float64{0.05, 0.2, 0.5} {
			failed := make(map[Link]bool)
			for i := 0; i < tor.NumLinks(); i++ {
				if rng.Float64() < frac {
					failed[tor.LinkFromIndex(i)] = true
				}
			}
			blocked := func(l Link) bool { return failed[l] }
			for trial := 0; trial < 40; trial++ {
				a := rng.Intn(dims.Nodes())
				b := rng.Intn(dims.Nodes())
				route, err := tor.AppendRouteAvoid(nil, a, b, blocked)
				reachable := reachableOracle(tor, a, b, blocked)
				if err != nil {
					lde, ok := err.(*LinkDownError)
					if !ok {
						t.Fatalf("%v frac=%.2f %d->%d: err %T, want *LinkDownError", dims, frac, a, b, err)
					}
					if lde.Src != a || lde.Dst != b {
						t.Errorf("%v %d->%d: LinkDownError names %d->%d", dims, a, b, lde.Src, lde.Dst)
					}
					if reachable {
						t.Errorf("%v frac=%.2f: router says %d->%d partitioned, oracle finds a surviving path",
							dims, frac, a, b)
					}
					continue
				}
				if !reachable {
					t.Errorf("%v frac=%.2f: router routed %d->%d, oracle says partitioned", dims, frac, a, b)
				}
				cur := a
				for i, l := range route {
					if failed[l] {
						t.Fatalf("%v frac=%.2f %d->%d: hop %d traverses failed link %+v", dims, frac, a, b, i, l)
					}
					if l.Node != cur {
						t.Fatalf("%v %d->%d: hop %d leaves node %d, expected %d", dims, a, b, i, l.Node, cur)
					}
					cur = tor.Neighbor(l.Node, l.Dim, l.Positive)
				}
				if cur != b {
					t.Fatalf("%v %d->%d: route ends at node %d", dims, a, b, cur)
				}
				if len(route) < tor.Hops(a, b) {
					t.Errorf("%v %d->%d: surviving route (%d hops) beats the healthy shortest path (%d)",
						dims, a, b, len(route), tor.Hops(a, b))
				}
				again, err2 := tor.AppendRouteAvoid(nil, a, b, blocked)
				if err2 != nil || len(again) != len(route) {
					t.Fatalf("%v %d->%d: nondeterministic reroute: %v/%v vs %v", dims, a, b, route, err, again)
				}
				for i := range route {
					if route[i] != again[i] {
						t.Fatalf("%v %d->%d: nondeterministic reroute at hop %d", dims, a, b, i)
					}
				}
			}
		}
	}
}
