package topology

import (
	"errors"
	"testing"
)

// routeLinks validates that route is a contiguous link sequence from a
// to b and returns the end node actually reached.
func followRoute(t *testing.T, tor *Torus, a int, route []Link) int {
	t.Helper()
	cur := a
	for i, l := range route {
		if l.Node != cur {
			t.Fatalf("route hop %d starts at node %d, expected %d", i, l.Node, cur)
		}
		cur = tor.Neighbor(l.Node, l.Dim, l.Positive)
	}
	return cur
}

func TestAppendRouteAvoidHealthyMatchesAppendRoute(t *testing.T) {
	tor := NewTorus(Dims{4, 4, 2})
	none := func(Link) bool { return false }
	for a := 0; a < tor.Dims.Nodes(); a += 7 {
		for b := 0; b < tor.Dims.Nodes(); b += 5 {
			want := tor.Route(a, b)
			got, err := tor.AppendRouteAvoid(nil, a, b, none)
			if err != nil {
				t.Fatalf("route %d->%d: %v", a, b, err)
			}
			if len(got) != len(want) {
				t.Fatalf("route %d->%d: %d links, want %d", a, b, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("route %d->%d link %d = %v, want %v", a, b, i, got[i], want[i])
				}
			}
		}
	}
}

func TestAppendRouteAvoidDetoursAroundFailedLink(t *testing.T) {
	tor := NewTorus(Dims{4, 4, 4})
	a, b := 0, 3 // 0 -> 3 along X: wrap route is one hop in -X
	direct := tor.Route(a, b)
	failed := direct[0]
	blocked := func(l Link) bool { return l == failed }
	route, err := tor.AppendRouteAvoid(nil, a, b, blocked)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range route {
		if l == failed {
			t.Fatalf("detour route uses the failed link %v", l)
		}
	}
	if end := followRoute(t, tor, a, route); end != b {
		t.Fatalf("detour ends at node %d, want %d", end, b)
	}
	if len(route) < len(direct) {
		t.Fatalf("detour (%d hops) shorter than the direct route (%d hops)", len(route), len(direct))
	}
}

func TestAppendRouteAvoidPartitioned(t *testing.T) {
	tor := NewTorus(Dims{4, 4, 2})
	victim := 5
	// Fail every link into the victim: the torus is partitioned for
	// any traffic addressed to it.
	blocked := func(l Link) bool {
		return tor.Neighbor(l.Node, l.Dim, l.Positive) == victim
	}
	_, err := tor.AppendRouteAvoid(nil, 0, victim, blocked)
	var lde *LinkDownError
	if !errors.As(err, &lde) {
		t.Fatalf("err = %v, want *LinkDownError", err)
	}
	if lde.Src != 0 || lde.Dst != victim {
		t.Errorf("LinkDownError = %+v, want Src=0 Dst=%d", lde, victim)
	}
	// Traffic between two healthy nodes still routes.
	if _, err := tor.AppendRouteAvoid(nil, 0, 9, blocked); err != nil {
		t.Errorf("healthy pair blocked: %v", err)
	}
}

func TestLinkFromIndexRoundTrip(t *testing.T) {
	tor := NewTorus(Dims{3, 4, 5})
	for i := 0; i < tor.NumLinks(); i++ {
		l := tor.LinkFromIndex(i)
		if got := tor.LinkIndex(l); got != i {
			t.Fatalf("LinkIndex(LinkFromIndex(%d)) = %d", i, got)
		}
	}
}
