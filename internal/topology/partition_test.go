package topology

import (
	"math"
	"testing"
)

func TestPrismPartitionEnumeration(t *testing.T) {
	tor := NewTorus(Dims{4, 4, 4})
	p, err := NewPrismPartition(tor, Coord{2, 0, 0}, Dims{2, 2, 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 8 || !p.Rect() || p.ViewDims() != (Dims{2, 2, 2}) {
		t.Fatalf("prism: size=%d rect=%v view=%v", p.Size(), p.Rect(), p.ViewDims())
	}
	// Local order must be x-fastest within the prism, matching the
	// linearization of the view torus.
	view := NewTorus(p.ViewDims())
	for local, parent := range p.Nodes {
		c := view.CoordOf(local)
		want := tor.NodeAt(Coord{2 + c[0], c[1], c[2]})
		if parent != want {
			t.Errorf("local %d = parent %d, want %d", local, parent, want)
		}
		if got, ok := p.LocalOf(parent); !ok || got != local {
			t.Errorf("LocalOf(%d) = %d,%v, want %d", parent, got, ok, local)
		}
		if p.ParentOf(local) != parent {
			t.Errorf("ParentOf(%d) = %d, want %d", local, p.ParentOf(local), parent)
		}
	}
	if p.ExternalRouteShare() != 0 {
		t.Errorf("isolated prism external share = %g, want 0", p.ExternalRouteShare())
	}
	if p.LinkShare() != 1 {
		t.Errorf("isolated prism link share = %g, want 1", p.LinkShare())
	}
}

func TestPrismPartitionBounds(t *testing.T) {
	tor := NewTorus(Dims{4, 4, 4})
	if _, err := NewPrismPartition(tor, Coord{3, 0, 0}, Dims{2, 2, 2}, true); err == nil {
		t.Error("prism overflowing the torus should fail")
	}
	if _, err := NewPrismPartition(tor, Coord{0, 0, 0}, Dims{0, 2, 2}, true); err == nil {
		t.Error("empty prism should fail")
	}
}

func TestScatteredPartitionValidation(t *testing.T) {
	tor := NewTorus(Dims{4, 4, 4})
	if _, err := NewScatteredPartition(tor, nil); err == nil {
		t.Error("empty node set should fail")
	}
	if _, err := NewScatteredPartition(tor, []int{1, 64}); err == nil {
		t.Error("out-of-range node should fail")
	}
	if _, err := NewScatteredPartition(tor, []int{1, 1}); err == nil {
		t.Error("duplicate node should fail")
	}
}

func TestScatteredPartitionShare(t *testing.T) {
	tor := NewTorus(Dims{8, 8, 8})
	// Two far-apart clumps: routes between them leave the node set.
	nodes := []int{0, 1, 2, 3}
	far := tor.NodeAt(Coord{4, 4, 4})
	nodes = append(nodes, far, far+1, far+2, far+3)
	p, err := NewScatteredPartition(tor, nodes)
	if err != nil {
		t.Fatal(err)
	}
	e := p.ExternalRouteShare()
	if e <= 0 || e >= 1 {
		t.Fatalf("scattered share = %g, want in (0,1)", e)
	}
	f := p.LinkShare()
	if want := 1 / (1 + e); math.Abs(f-want) > 1e-12 {
		t.Errorf("LinkShare = %g, want %g", f, want)
	}
	// A compact contiguous run is all-internal along X.
	comp, err := NewScatteredPartition(tor, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if e := comp.ExternalRouteShare(); e != 0 {
		t.Errorf("contiguous X run external share = %g, want 0", e)
	}
	if comp.ViewDims().Nodes() != 4 {
		t.Errorf("view dims %v hold %d nodes, want 4", comp.ViewDims(), comp.ViewDims().Nodes())
	}
}

func TestPartitionIntersect(t *testing.T) {
	tor := NewTorus(Dims{4, 4, 4})
	p, err := NewScatteredPartition(tor, []int{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	got := p.Intersect([]int{5, 30, 10, 40})
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Intersect = %v, want [0 2]", got)
	}
	if p.Contains(20) != true || p.Contains(21) != false {
		t.Error("Contains misreports membership")
	}
}
