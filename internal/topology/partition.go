package topology

import (
	"fmt"
	"sort"
)

// Partition is a job-visible view of a subset of a machine torus: the
// contract between the facility layer (which carves a shared machine
// into per-job allocations) and the simulation stack (which runs one
// job on the view). The paper's §II.A.3 contrast is exactly the two
// shapes a Partition can take:
//
//   - BlueGene partitions are electrically isolated rectangular
//     sub-tori: Prism is set, Isolated is true, and the job's traffic
//     never shares a link with another job.
//   - Cray XT allocations are whatever nodes a linear scan found free:
//     the node set is scattered, routes between member nodes pass
//     through non-member nodes, and the links there carry other jobs'
//     traffic too (ExternalRouteShare / LinkShare quantify the cost).
type Partition struct {
	// Parent is the machine torus the partition was carved from.
	Parent *Torus
	// Nodes lists the member nodes as parent indices, in
	// partition-local order: local node i of the job's view is
	// Nodes[i]. For prism partitions the order is x-fastest within the
	// prism, matching Torus linearization of the view.
	Nodes []int
	// Prism is the view shape when the members form a contiguous
	// rectangular prism (zero otherwise).
	Prism Dims
	// Origin is the prism's corner in parent coordinates (valid only
	// when Prism is set).
	Origin Coord
	// Isolated marks an electrically isolated partition: routes stay
	// inside and no link is shared with other jobs.
	Isolated bool

	local map[int]int // parent node -> local index
}

// NewPrismPartition carves the rectangular prism of the given shape at
// origin out of the parent torus. The prism must fit without wrapping.
// Isolated partitions model BlueGene's electrically partitioned
// sub-tori.
func NewPrismPartition(parent *Torus, origin Coord, shape Dims, isolated bool) (*Partition, error) {
	if shape.Nodes() <= 0 {
		return nil, fmt.Errorf("topology: empty prism shape %v", shape)
	}
	for i := 0; i < 3; i++ {
		if origin[i] < 0 || shape[i] <= 0 || origin[i]+shape[i] > parent.Dims[i] {
			return nil, fmt.Errorf("topology: prism %v at %v does not fit torus %v", shape, origin, parent.Dims)
		}
	}
	p := &Partition{Parent: parent, Prism: shape, Origin: origin, Isolated: isolated}
	p.Nodes = make([]int, 0, shape.Nodes())
	for z := 0; z < shape[2]; z++ {
		for y := 0; y < shape[1]; y++ {
			for x := 0; x < shape[0]; x++ {
				p.Nodes = append(p.Nodes, parent.NodeAt(Coord{origin[0] + x, origin[1] + y, origin[2] + z}))
			}
		}
	}
	p.buildLocal()
	return p, nil
}

// NewScatteredPartition wraps an arbitrary node set (XT-style
// fragmented allocation). The node order is preserved as the local
// order; nodes must be distinct and in range.
func NewScatteredPartition(parent *Torus, nodes []int) (*Partition, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("topology: empty partition")
	}
	p := &Partition{Parent: parent, Nodes: append([]int(nil), nodes...)}
	seen := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		if n < 0 || n >= parent.Dims.Nodes() {
			return nil, fmt.Errorf("topology: partition node %d out of range (torus has %d nodes)", n, parent.Dims.Nodes())
		}
		if seen[n] {
			return nil, fmt.Errorf("topology: partition node %d listed twice", n)
		}
		seen[n] = true
	}
	p.buildLocal()
	return p, nil
}

func (p *Partition) buildLocal() {
	p.local = make(map[int]int, len(p.Nodes))
	for i, n := range p.Nodes {
		p.local[n] = i
	}
}

// Size returns the number of member nodes.
func (p *Partition) Size() int { return len(p.Nodes) }

// Rect reports whether the partition is a contiguous rectangular
// prism.
func (p *Partition) Rect() bool { return p.Prism.Nodes() > 0 }

// ViewDims returns the torus shape the job sees: the prism shape for
// rectangular partitions, otherwise the most-cubic shape of the same
// node count (a fragmented allocation has no geometric shape of its
// own; the compact view plus the LinkShare derate is the model).
func (p *Partition) ViewDims() Dims {
	if p.Rect() {
		return p.Prism
	}
	return DimsForNodes(len(p.Nodes))
}

// LocalOf returns the partition-local index of a parent node, or
// (-1, false) when the node is not a member.
func (p *Partition) LocalOf(parent int) (int, bool) {
	i, ok := p.local[parent]
	if !ok {
		return -1, false
	}
	return i, true
}

// ParentOf returns the parent node index of a local node. It panics on
// an out-of-range local index.
func (p *Partition) ParentOf(local int) int { return p.Nodes[local] }

// Contains reports whether the parent node belongs to the partition.
func (p *Partition) Contains(parent int) bool {
	_, ok := p.local[parent]
	return ok
}

// Intersect returns the partition-local indices of the given parent
// nodes that belong to the partition, sorted ascending.
func (p *Partition) Intersect(parents []int) []int {
	var locals []int
	for _, n := range parents {
		if i, ok := p.local[n]; ok {
			locals = append(locals, i)
		}
	}
	sort.Ints(locals)
	return locals
}

// sampleStride returns the deterministic stride used to subsample
// node pairs in the placement metrics (all pairs is O(n^2 * diameter)).
func sampleStride(n int) int {
	if n > 150 {
		return n / 64
	}
	return 1
}

// ExternalRouteShare returns the fraction of hops on routes between
// member nodes that pass through NON-member nodes. Isolated partitions
// score zero by definition: BlueGene rewires an isolated block as a
// private torus with its own wrap links, so no route ever touches
// another job's links. Fragmented allocations score higher the more
// they scatter, and the links on those external hops are shared with
// other jobs' traffic.
func (p *Partition) ExternalRouteShare() float64 {
	if p.Isolated {
		return 0
	}
	total, external := 0, 0
	stride := sampleStride(len(p.Nodes))
	for i := 0; i < len(p.Nodes); i += stride {
		for j := 0; j < len(p.Nodes); j += stride {
			if i == j {
				continue
			}
			for _, l := range p.Parent.Route(p.Nodes[i], p.Nodes[j]) {
				total++
				if _, ok := p.local[l.Node]; !ok {
					external++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(external) / float64(total)
}

// MeanPairHops returns the mean pairwise hop distance between member
// nodes on the parent torus (strided sampling for large partitions).
func (p *Partition) MeanPairHops() float64 {
	stride := sampleStride(len(p.Nodes))
	total, count := 0, 0
	for i := 0; i < len(p.Nodes); i += stride {
		for j := 0; j < len(p.Nodes); j += stride {
			if i == j {
				continue
			}
			total += p.Parent.Hops(p.Nodes[i], p.Nodes[j])
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return float64(total) / float64(count)
}

// LinkShare returns the effective link-bandwidth factor the job
// should simulate with, in (0, 1]: 1 for isolated partitions, lower
// when routes leave the partition. The model assumes each external hop
// carries on average one other job's flow, so a fraction e of shared
// hops stretches serialization by (1 + e) — the factor is 1/(1+e).
// This is the per-job, facility-driven refinement of the machine
// catalog's static BisectionDerate.
func (p *Partition) LinkShare() float64 {
	e := p.ExternalRouteShare()
	if e <= 0 {
		return 1
	}
	return 1 / (1 + e)
}

// String describes the partition.
func (p *Partition) String() string {
	if p.Rect() {
		iso := "shared"
		if p.Isolated {
			iso = "isolated"
		}
		return fmt.Sprintf("prism %v at %v (%s, %d nodes)", p.Prism, p.Origin, iso, len(p.Nodes))
	}
	return fmt.Sprintf("scattered %d nodes on %v", len(p.Nodes), p.Parent.Dims)
}
