package topology

// Tree describes the BlueGene global collective network spanning a
// partition: a balanced tree of the partition's nodes. The collective
// network model (internal/network) uses only the depth and node count;
// the tree itself is arity-3 on real hardware (each node has three
// links).
type Tree struct {
	Nodes int
	Arity int
	Depth int
}

// NewCollectiveTree returns the collective-network tree spanning n
// nodes with the given arity (BlueGene hardware uses 3; arity < 2 is
// treated as 2).
func NewCollectiveTree(n, arity int) *Tree {
	if n < 1 {
		n = 1
	}
	if arity < 2 {
		arity = 2
	}
	depth := 0
	reach := 1 // nodes reachable at current depth
	total := 1
	for total < n {
		depth++
		reach *= arity
		total += reach
	}
	return &Tree{Nodes: n, Arity: arity, Depth: depth}
}

// BinomialRounds returns ceil(log2(n)): the number of rounds for a
// binomial software tree over n participants.
func BinomialRounds(n int) int {
	r := 0
	for p := 1; p < n; p *= 2 {
		r++
	}
	return r
}
