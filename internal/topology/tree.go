package topology

// Tree describes the BlueGene global collective network spanning a
// partition: a balanced tree of the partition's nodes. The collective
// network model (internal/network) uses only the depth and node count;
// the tree itself is arity-3 on real hardware (each node has three
// links).
type Tree struct {
	Nodes int
	Arity int
	Depth int
}

// NewCollectiveTree returns the collective-network tree spanning n
// nodes with the given arity (BlueGene hardware uses 3; arity < 2 is
// treated as 2).
func NewCollectiveTree(n, arity int) *Tree {
	if n < 1 {
		n = 1
	}
	if arity < 2 {
		arity = 2
	}
	depth := 0
	reach := 1 // nodes reachable at current depth
	total := 1
	for total < n {
		depth++
		reach *= arity
		total += reach
	}
	return &Tree{Nodes: n, Arity: arity, Depth: depth}
}

// Interior reports whether tree node i (breadth-first layout: node i's
// children are i*Arity+1 .. i*Arity+Arity) has at least one child. An
// interior node forwards and combines traffic for its subtree, so
// losing one severs the tree; a leaf only contributes its own data.
func (t *Tree) Interior(i int) bool {
	return i >= 0 && i < t.Nodes && i*t.Arity+1 < t.Nodes
}

// Leaf reports whether tree node i is a leaf (in range and childless).
func (t *Tree) Leaf(i int) bool {
	return i >= 0 && i < t.Nodes && !t.Interior(i)
}

// Recoverable reports whether the collective tree survives the loss of
// the given nodes: the hardware can reprogram its class routes around
// dead leaves (they simply stop contributing), but a dead interior
// node takes its whole subtree's path to the root with it, and the
// remaining hardware cannot rebuild a spanning tree.
func (t *Tree) Recoverable(dead []int) bool {
	for _, n := range dead {
		if t.Interior(n) {
			return false
		}
	}
	return true
}

// BinomialRounds returns ceil(log2(n)): the number of rounds for a
// binomial software tree over n participants.
func BinomialRounds(n int) int {
	r := 0
	for p := 1; p < n; p *= 2 {
		r++
	}
	return r
}
