package topology

import (
	"fmt"
	"strings"
)

// Mapping is a BlueGene process-to-processor mapping, written as a
// permutation of the letters X, Y, Z and T. The first letter varies
// fastest as ranks are assigned: XYZT assigns one process to each node
// walking the X dimension first and returns for second cores last,
// while TXYZ fills all cores of a node (T) before moving in X.
type Mapping string

// Predefined mappings from the paper (§I.A and §II.B).
const (
	MapXYZT Mapping = "XYZT"
	MapXZYT Mapping = "XZYT"
	MapYXZT Mapping = "YXZT"
	MapYZXT Mapping = "YZXT"
	MapZXYT Mapping = "ZXYT"
	MapZYXT Mapping = "ZYXT"
	MapTXYZ Mapping = "TXYZ"
	MapTXZY Mapping = "TXZY"
	MapTYXZ Mapping = "TYXZ"
	MapTYZX Mapping = "TYZX"
	MapTZXY Mapping = "TZXY"
	MapTZYX Mapping = "TZYX"
)

// NodeFirstMappings are the predefined mappings that place consecutive
// ranks on distinct nodes.
var NodeFirstMappings = []Mapping{MapXYZT, MapXZYT, MapYXZT, MapYZXT, MapZXYT, MapZYXT}

// CoreFirstMappings are the predefined mappings that fill a node's
// cores before moving to the next node.
var CoreFirstMappings = []Mapping{MapTXYZ, MapTXZY, MapTYXZ, MapTYZX, MapTZXY, MapTZYX}

// PaperHALOMappings are the eight mappings compared in the paper's
// Figure 2(c) and (d).
var PaperHALOMappings = []Mapping{MapTXYZ, MapTYXZ, MapTZXY, MapTZYX, MapXYZT, MapYXZT, MapZXYT, MapZYXT}

// Valid reports whether the mapping is a permutation of X, Y, Z, T.
func (m Mapping) Valid() bool {
	if len(m) != 4 {
		return false
	}
	s := strings.ToUpper(string(m))
	seen := map[byte]bool{}
	for i := 0; i < 4; i++ {
		c := s[i]
		if c != 'X' && c != 'Y' && c != 'Z' && c != 'T' {
			return false
		}
		if seen[c] {
			return false
		}
		seen[c] = true
	}
	return true
}

// Placement locates one rank on the machine.
type Placement struct {
	Node int // linear node index in the torus
	Core int // core slot within the node (the T coordinate)
}

// Mapper converts MPI ranks to placements for a torus of given
// dimensions with ranksPerNode tasks per node.
type Mapper struct {
	torus        *Torus
	ranksPerNode int
	order        [4]int // extent-order: dimension index per mapping letter position
	extents      [4]int
}

// NewMapper builds a mapper. The mapping must be valid and
// ranksPerNode positive.
func NewMapper(t *Torus, ranksPerNode int, m Mapping) *Mapper {
	if !m.Valid() {
		panic(fmt.Sprintf("topology: invalid mapping %q", m))
	}
	if ranksPerNode <= 0 {
		panic("topology: ranksPerNode must be positive")
	}
	mp := &Mapper{torus: t, ranksPerNode: ranksPerNode}
	s := strings.ToUpper(string(m))
	for i := 0; i < 4; i++ {
		switch s[i] {
		case 'X':
			mp.order[i] = 0
			mp.extents[i] = t.Dims[0]
		case 'Y':
			mp.order[i] = 1
			mp.extents[i] = t.Dims[1]
		case 'Z':
			mp.order[i] = 2
			mp.extents[i] = t.Dims[2]
		case 'T':
			mp.order[i] = 3
			mp.extents[i] = ranksPerNode
		}
	}
	return mp
}

// MaxRanks returns the number of placements available.
func (mp *Mapper) MaxRanks() int {
	return mp.torus.Dims.Nodes() * mp.ranksPerNode
}

// Place returns the placement of rank r. Ranks at or beyond MaxRanks
// panic.
func (mp *Mapper) Place(r int) Placement {
	if r < 0 || r >= mp.MaxRanks() {
		panic(fmt.Sprintf("topology: rank %d out of range [0,%d)", r, mp.MaxRanks()))
	}
	var coords [4]int // indexed by dimension id: 0=x,1=y,2=z,3=t
	for i := 0; i < 4; i++ {
		coords[mp.order[i]] = r % mp.extents[i]
		r /= mp.extents[i]
	}
	node := mp.torus.NodeAt(Coord{coords[0], coords[1], coords[2]})
	return Placement{Node: node, Core: coords[3]}
}

// AvgHops returns the mean torus hop count over a set of communicating
// rank pairs under this mapping — a cheap figure of merit for mapping
// quality.
func (mp *Mapper) AvgHops(pairs [][2]int) float64 {
	if len(pairs) == 0 {
		return 0
	}
	total := 0
	for _, pr := range pairs {
		a, b := mp.Place(pr[0]), mp.Place(pr[1])
		total += mp.torus.Hops(a.Node, b.Node)
	}
	return float64(total) / float64(len(pairs))
}
