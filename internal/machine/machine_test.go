package machine

import "testing"

func TestPeakRates(t *testing.T) {
	cases := []struct {
		id     ID
		coreGF float64
		nodeGF float64
	}{
		{BGP, 3.4, 13.6},
		{BGL, 2.8, 5.6},
		{XT3, 5.2, 10.4},
		{XT4DC, 5.2, 10.4},
		{XT4QC, 8.4, 33.6},
	}
	for _, c := range cases {
		m := Get(c.id)
		if got := m.PeakFlopsCore() / 1e9; !close(got, c.coreGF, 1e-9) {
			t.Errorf("%s core peak = %g GF, want %g", c.id, got, c.coreGF)
		}
		if got := m.PeakFlopsNode() / 1e9; !close(got, c.nodeGF, 1e-9) {
			t.Errorf("%s node peak = %g GF, want %g", c.id, got, c.nodeGF)
		}
	}
}

func close(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestRanksPerNode(t *testing.T) {
	bgp := Get(BGP)
	if bgp.RanksPerNode(SMP) != 1 || bgp.RanksPerNode(DUAL) != 2 || bgp.RanksPerNode(VN) != 4 {
		t.Errorf("BG/P ranks per node: SMP=%d DUAL=%d VN=%d",
			bgp.RanksPerNode(SMP), bgp.RanksPerNode(DUAL), bgp.RanksPerNode(VN))
	}
	xt3 := Get(XT3)
	if xt3.RanksPerNode(SMP) != 1 || xt3.RanksPerNode(VN) != 2 {
		t.Errorf("XT3 ranks per node: SMP=%d VN=%d", xt3.RanksPerNode(SMP), xt3.RanksPerNode(VN))
	}
}

func TestThreadsPerRank(t *testing.T) {
	bgp := Get(BGP)
	if bgp.ThreadsPerRank(SMP) != 4 {
		t.Errorf("SMP threads = %d, want 4", bgp.ThreadsPerRank(SMP))
	}
	if bgp.ThreadsPerRank(DUAL) != 2 {
		t.Errorf("DUAL threads = %d, want 2", bgp.ThreadsPerRank(DUAL))
	}
	if bgp.ThreadsPerRank(VN) != 1 {
		t.Errorf("VN threads = %d, want 1", bgp.ThreadsPerRank(VN))
	}
}

func TestSupportsMode(t *testing.T) {
	if !Get(BGP).SupportsMode(DUAL) {
		t.Error("BG/P should support DUAL")
	}
	if Get(XT3).SupportsMode(DUAL) {
		t.Error("dual-core XT3 should not support DUAL")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	a := Get(BGP)
	a.ClockHz = 1
	b := Get(BGP)
	if b.ClockHz == 1 {
		t.Error("Get returned a shared pointer; catalog was mutated")
	}
}

func TestGetUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown machine")
		}
	}()
	Get("nonsense")
}

func TestCatalogSanity(t *testing.T) {
	for _, id := range All() {
		m := Get(id)
		if m.CoresPerNode <= 0 || m.ClockHz <= 0 || m.FlopsPerCycle <= 0 {
			t.Errorf("%s: bad node arch", id)
		}
		if m.MemBWPerNode <= 0 || m.CoreMemBW <= 0 {
			t.Errorf("%s: bad memory bandwidth", id)
		}
		if m.CoreMemBW > m.MemBWPerNode {
			t.Errorf("%s: core BW %g exceeds node BW %g", id, m.CoreMemBW, m.MemBWPerNode)
		}
		if m.TorusLinkBW <= 0 || m.NICInjectBW <= 0 || m.SWLatency <= 0 {
			t.Errorf("%s: bad network params", id)
		}
		if m.HasTree && (m.TreeBW <= 0 || m.TreeLat <= 0) {
			t.Errorf("%s: tree declared but unparameterized", id)
		}
		for c := KernelClass(0); c < numClasses; c++ {
			if m.Eff[c] <= 0 || m.Eff[c] > 1 {
				t.Errorf("%s: efficiency for %v = %g out of (0,1]", id, c, m.Eff[c])
			}
		}
		if m.WattsPerCoreHPL <= 0 || m.WattsPerCoreApp <= 0 {
			t.Errorf("%s: bad power params", id)
		}
		if m.WattsPerCoreApp > m.WattsPerCoreHPL {
			t.Errorf("%s: app power exceeds HPL power", id)
		}
	}
}

func TestBlueGeneLowPower(t *testing.T) {
	// The design premise: BlueGene watts/core is far below the XT's.
	bgp, xt := Get(BGP), Get(XT4QC)
	if ratio := xt.WattsPerCoreHPL / bgp.WattsPerCoreHPL; ratio < 5 || ratio > 8 {
		t.Errorf("XT/BGP power ratio = %.1f, want ~6.6 (paper)", ratio)
	}
}

func TestModeString(t *testing.T) {
	if SMP.String() != "SMP" || DUAL.String() != "DUAL" || VN.String() != "VN" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should still format")
	}
}

func TestKernelClassString(t *testing.T) {
	names := map[KernelClass]string{
		ClassDGEMM: "dgemm", ClassFFT: "fft", ClassStream: "stream",
		ClassStencil: "stencil", ClassScalar: "scalar", ClassUpdate: "update",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}
