package machine

// Collective-algorithm selection tables. Each machine carries a
// CollTable mapping a collective op ("bcast", "allreduce", ...) to an
// ordered rule list; the MPI layer walks the rules and runs the first
// registered, eligible algorithm whose size/rank bounds match the
// call. The stock tables below reproduce the historical hardwired
// dispatch: BlueGene routes eligible full-COMM_WORLD barrier, bcast,
// allreduce and reduce to the collective tree / global interrupt
// networks and falls back to the MPICH-style software switch points;
// the Cray XT picks purely among torus algorithms.

// CollRule is one row of a selection table. Zero bounds are open:
// MaxBytes 0 accepts any size, MinProcs/MaxProcs 0 accept any
// communicator size. Bounds are inclusive. Algo names an algorithm
// registered for the op in internal/mpi; a rule naming an algorithm
// that is unregistered or ineligible for a given call is skipped, so
// hardware rules are safe to leave in a table used on machines
// without the hardware.
type CollRule struct {
	MaxBytes int    // inclusive upper bound on the call's byte size (0 = unbounded)
	MinProcs int    // inclusive lower bound on communicator size (0 = none)
	MaxProcs int    // inclusive upper bound on communicator size (0 = unbounded)
	Algo     string // algorithm name, e.g. "binomial", "ring", "tree-offload"
}

// Matches reports whether the rule covers a call of the given shape.
func (r CollRule) Matches(bytes, procs int) bool {
	if r.MaxBytes > 0 && bytes > r.MaxBytes {
		return false
	}
	if r.MinProcs > 0 && procs < r.MinProcs {
		return false
	}
	if r.MaxProcs > 0 && procs > r.MaxProcs {
		return false
	}
	return true
}

// CollTable maps a collective op name to its selection rules, walked
// in order.
type CollTable map[string][]CollRule

// Clone returns a deep copy of the table.
func (t CollTable) Clone() CollTable {
	if t == nil {
		return nil
	}
	cp := make(CollTable, len(t))
	for op, rules := range t {
		cp[op] = append([]CollRule(nil), rules...)
	}
	return cp
}

// Software switch points shared by the stock tables, chosen to mirror
// common MPICH-style defaults (and matching the closed-form models in
// internal/mpi/analytic.go).
const (
	collAllreduceRDMax = 2048  // recursive doubling below, Rabenseifner above
	collBcastShortMax  = 12288 // unsegmented binomial below, pipelined above
)

// treeCollTable is the stock table for machines with a hardware
// collective tree and global interrupt network (BlueGene): hardware
// offload first — eligibility in the MPI layer restricts it to
// full-COMM_WORLD calls (and, for reductions, double-precision
// operands) — then the software switch points.
func treeCollTable() CollTable {
	return CollTable{
		"barrier": {
			{Algo: "hw-gi"},
			{Algo: "dissemination"},
		},
		"bcast": {
			{Algo: "tree-offload"},
			{MaxBytes: collBcastShortMax, Algo: "binomial"},
			{Algo: "binomial-pipelined"},
		},
		"allreduce": {
			{Algo: "tree-offload"},
			{MaxBytes: collAllreduceRDMax, Algo: "recdbl"},
			{Algo: "rabenseifner"},
		},
		"reduce": {
			{Algo: "tree-offload"},
			{Algo: "binomial"},
		},
		"allgather":     {{Algo: "ring"}},
		"alltoall":      {{Algo: "pairwise"}},
		"gather":        {{Algo: "binomial"}},
		"scatter":       {{Algo: "binomial"}},
		"scan":          {{Algo: "logstep"}},
		"reducescatter": {{Algo: "rechalving"}},
	}
}

// torusCollTable is the stock table for machines with no collective
// hardware (the Cray XT line): the same software switch points.
func torusCollTable() CollTable {
	t := treeCollTable()
	t["barrier"] = t["barrier"][1:]
	t["bcast"] = t["bcast"][1:]
	t["allreduce"] = t["allreduce"][1:]
	t["reduce"] = t["reduce"][1:]
	return t
}

// DefaultCollTable returns the selection table used when a Machine
// carries none (hand-built values, ablation copies): the tree-machine
// table, whose hardware rules filter themselves out by eligibility on
// machines without the networks.
func DefaultCollTable() CollTable {
	return treeCollTable()
}
