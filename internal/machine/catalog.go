package machine

import "fmt"

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
	gb = int64(1) << 30
)

// catalog holds the machine models. Values marked [T1] come from the
// paper's Table 1 or its system-description text; values marked [cal]
// are modelling parameters calibrated so the simulator reproduces the
// paper's measured micro-benchmark behaviour (see DESIGN.md §1 and
// EXPERIMENTS.md for the calibration rationale).
var catalog = map[ID]*Machine{
	BGP: {
		ID:            BGP,
		Name:          "BlueGene/P",
		CoresPerNode:  4,       // [T1]
		ClockHz:       850e6,   // [T1]
		FlopsPerCycle: 4,       // [T1] double hummer: two FMAs/cycle
		L1Bytes:       32 * kb, // [T1]
		L2Bytes:       0,       // [T1] stream-prefetch engine only
		L3Bytes:       8 * mb,  // [T1] shared eDRAM
		MemPerNode:    2 * gb,  // [T1]
		MemBWPerNode:  13.6e9,  // [T1]
		CoreMemBW:     4.2e9,   // [cal] single-core STREAM triad
		CacheCoherent: true,    // [T1]

		TorusLinkBW:      425e6,  // [T1] per link per direction
		TorusHopLat:      75e-9,  // [cal] per-hop router transit
		NICInjectBW:      2.55e9, // [T1] 6 links x 425 MB/s per direction
		BisectionDerate:  1.0,
		SWLatency:        1.35e-6, // [cal] per-side MPI overhead (~2.7us 0-byte ping)
		EagerLimit:       1200,    // [cal] BG/P MPI default eager limit
		RendezvousRTT:    2.7e-6,  // [cal] RTS/CTS handshake
		CollNoisePerRank: 0.02e-9, // [cal]

		HasTree:       true,   // [T1] global collective network
		TreeBW:        850e6,  // [T1] per direction
		TreeLat:       250e-9, // [cal] per tree stage
		TreeHWReduce:  true,   // integer and double-precision tree ALU
		HasBarrierNet: true,   // [T1] global interrupt network
		BarrierLat:    1.3e-6, // [cal]

		ShmLatency: 0.5e-6, // [cal] on-node MPI via shared memory
		ShmBW:      3.0e9,  // [cal]

		NoisePeriodS: 0, // CNK: no timer ticks, no daemons [paper §II]
		NoiseDurS:    0,

		Coll: treeCollTable(),

		Eff: [numClasses]float64{
			ClassDGEMM:   0.87,  // [cal] ESSL DGEMM ~2.96 of 3.4 GF/s
			ClassFFT:     0.09,  // [cal] stock HPCC FFT
			ClassStream:  0.76,  // [cal] aggregate STREAM fraction of peak BW
			ClassStencil: 0.085, // [cal] structured-grid apps
			ClassScalar:  0.055, // [cal]
			ClassUpdate:  0.02,  // [cal]
		},
		OMPEff: 0.90, // [cal] XL OpenMP on 4 cores

		WattsPerCoreHPL: 7.7,  // [Table 3]
		WattsPerCoreApp: 7.3,  // [Table 3]
		CoresPerRack:    4096, // [paper intro]

		NodesPerCard:     32,   // [T1] 32 compute nodes per node card
		NodesPerMidplane: 512,  // [T1] 16 node cards per midplane
		NodesPerRack:     1024, // [T1] two midplanes per rack
	},

	BGL: {
		ID:            BGL,
		Name:          "BlueGene/L",
		CoresPerNode:  2,       // [T1]
		ClockHz:       700e6,   // [T1]
		FlopsPerCycle: 4,       // [T1] double hummer
		L1Bytes:       32 * kb, // [T1]
		L2Bytes:       0,
		L3Bytes:       4 * mb,   // [T1]
		MemPerNode:    512 * mb, // [T1] 0.5-1 GB configs; ORNL had 512 MB
		MemBWPerNode:  5.6e9,    // [T1]
		CoreMemBW:     3.0e9,    // [cal]
		CacheCoherent: false,    // [T1] software-managed coherence

		TorusLinkBW:      175e6,  // [T1] 2.1 GB/s injection over 6 links x 2 dir
		TorusHopLat:      100e-9, // [cal]
		NICInjectBW:      1.05e9, // [T1]
		BisectionDerate:  1.0,
		SWLatency:        1.6e-6,  // [cal]
		EagerLimit:       1000,    // [cal]
		RendezvousRTT:    3.4e-6,  // [cal]
		CollNoisePerRank: 0.02e-9, // [cal]

		HasTree:       true,
		TreeBW:        350e6,  // [T1] 700 MB/s bidirectional
		TreeLat:       300e-9, // [cal]
		TreeHWReduce:  true,
		HasBarrierNet: true,
		BarrierLat:    1.5e-6, // [cal]

		ShmLatency: 0.8e-6, // [cal]
		ShmBW:      2.0e9,  // [cal]

		NoisePeriodS: 0, // CNK lineage: noiseless
		NoiseDurS:    0,

		Coll: treeCollTable(),

		Eff: [numClasses]float64{
			ClassDGEMM:   0.85,
			ClassFFT:     0.08,
			ClassStream:  0.75,
			ClassStencil: 0.08,
			ClassScalar:  0.05,
			ClassUpdate:  0.02,
		},
		OMPEff: 0, // BG/L compute-node kernel has no thread support

		WattsPerCoreHPL: 12.0, // [cal] from BG/L Green500-era numbers
		WattsPerCoreApp: 11.4, // [cal]
		CoresPerRack:    2048,

		NodesPerCard:     32, // same packaging ladder as BG/P
		NodesPerMidplane: 512,
		NodesPerRack:     1024,
	},

	XT3: {
		ID:            XT3,
		Name:          "Cray XT3",
		CoresPerNode:  2,       // [T1]
		ClockHz:       2.6e9,   // [T1]
		FlopsPerCycle: 2,       // Opteron: one add + one multiply per cycle
		L1Bytes:       64 * kb, // [T1]
		L2Bytes:       1 * mb,  // [T1]
		L3Bytes:       0,
		MemPerNode:    4 * gb, // [T1]
		MemBWPerNode:  6.4e9,  // [T1]
		CoreMemBW:     4.8e9,  // [cal]
		CacheCoherent: true,

		TorusLinkBW:      3.0e9,  // [cal] SeaStar sustained per direction
		TorusHopLat:      180e-9, // [cal]
		NICInjectBW:      1.1e9,  // [cal] SeaStar injection
		BisectionDerate:  0.25,
		SWLatency:        3.3e-6,  // [cal] ~6.8us 0-byte ping (Catamount)
		EagerLimit:       16384,   // [cal] Portals eager limit
		RendezvousRTT:    6.8e-6,  // [cal]
		CollNoisePerRank: 0.15e-9, // [cal] Catamount-era jitter

		HasTree:       false,
		HasBarrierNet: false,

		ShmLatency: 2.0e-6, // [cal] loopback through NIC
		ShmBW:      1.4e9,  // [cal]

		NoisePeriodS: 10e-3, // [cal] Catamount: rare housekeeping ticks
		NoiseDurS:    15e-6, // [cal]

		Coll: torusCollTable(),

		Eff: [numClasses]float64{
			ClassDGEMM:   0.90, // ACML
			ClassFFT:     0.11,
			ClassStream:  0.70,
			ClassStencil: 0.20, // [cal] Opteron cache hierarchy favours stencils
			ClassScalar:  0.10,
			ClassUpdate:  0.02,
		},
		OMPEff: 0.85,

		WattsPerCoreHPL: 46.0, // [cal] dual-core Opteron node + SeaStar share
		WattsPerCoreApp: 44.0, // [cal]
		CoresPerRack:    192,  // [paper intro]

		NodesPerCard:     4,  // blade: 4 nodes share a mezzanine
		NodesPerMidplane: 32, // cage (chassis): 8 blades
		NodesPerRack:     96, // cabinet: 3 cages
	},

	XT4DC: {
		ID:            XT4DC,
		Name:          "Cray XT4 (dual-core)",
		CoresPerNode:  2,     // [T1]
		ClockHz:       2.6e9, // [T1]
		FlopsPerCycle: 2,
		L1Bytes:       64 * kb,
		L2Bytes:       1 * mb,
		L3Bytes:       0,
		MemPerNode:    4 * gb,
		MemBWPerNode:  10.6e9, // [T1] DDR2-667
		CoreMemBW:     5.2e9,  // [cal]
		CacheCoherent: true,

		TorusLinkBW:      3.8e9,  // [cal] SeaStar2
		TorusHopLat:      140e-9, // [cal]
		NICInjectBW:      2.1e9,  // [cal]
		BisectionDerate:  0.25,
		SWLatency:        2.9e-6, // [cal]
		EagerLimit:       16384,
		RendezvousRTT:    6.0e-6,
		CollNoisePerRank: 0.15e-9, // [cal] Catamount-era jitter

		HasTree:       false,
		HasBarrierNet: false,

		ShmLatency: 1.2e-6,
		ShmBW:      2.5e9,

		NoisePeriodS: 10e-3, // [cal] Catamount
		NoiseDurS:    15e-6, // [cal]

		Coll: torusCollTable(),

		Eff: [numClasses]float64{
			ClassDGEMM:   0.90,
			ClassFFT:     0.12,
			ClassStream:  0.66,
			ClassStencil: 0.25, // [cal] POP sustains ~1.3 GF/s/core on XT4 (paper Fig 4c ratio)
			ClassScalar:  0.10,
			ClassUpdate:  0.02,
		},
		OMPEff: 0.85,

		WattsPerCoreHPL: 50.0, // [cal]
		WattsPerCoreApp: 47.5, // [cal]
		CoresPerRack:    192,

		NodesPerCard:     4,  // blade
		NodesPerMidplane: 32, // cage
		NodesPerRack:     96, // cabinet
	},

	XT4QC: {
		ID:            XT4QC,
		Name:          "Cray XT4 (quad-core)",
		CoresPerNode:  4,        // [T1]
		ClockHz:       2.1e9,    // [T1]
		FlopsPerCycle: 4,        // Barcelona: 128-bit SSE, 4 DP flops/cycle
		L1Bytes:       64 * kb,  // [T1]
		L2Bytes:       512 * kb, // [T1]
		L3Bytes:       2 * mb,   // [T1] shared
		MemPerNode:    8 * gb,   // [T1]
		MemBWPerNode:  10.6e9,   // [T1] sustained of 12.8 peak
		CoreMemBW:     4.0e9,    // [cal] single-core STREAM triad
		CacheCoherent: true,

		TorusLinkBW:      3.8e9,  // [cal] SeaStar2
		TorusHopLat:      120e-9, // [cal]
		NICInjectBW:      2.1e9,  // [cal]
		BisectionDerate:  0.25,
		SWLatency:        2.7e-6, // [cal] ~5.6us 0-byte ping (CNL)
		EagerLimit:       16384,
		RendezvousRTT:    5.6e-6,
		CollNoisePerRank: 0.3e-9, // [cal] CNL jitter

		HasTree:       false,
		HasBarrierNet: false,

		ShmLatency: 1.0e-6, // [cal] CNL on-node shared memory
		ShmBW:      2.8e9,  // [cal]

		NoisePeriodS: 1e-3, // [cal] CNL: Linux 1 kHz timer tick
		NoiseDurS:    5e-6, // [cal] tick + deferred daemon work

		Coll: torusCollTable(),

		Eff: [numClasses]float64{
			ClassDGEMM:   0.89, // ACML ~7.5 of 8.4 GF/s
			ClassFFT:     0.13,
			ClassStream:  0.64, // [cal] NUMA/contention losses in EP STREAM
			ClassStencil: 0.17, // [cal] quad-core sharing trims per-core stencil rate
			ClassScalar:  0.10,
			ClassUpdate:  0.02,
		},
		OMPEff: 0.85,

		WattsPerCoreHPL: 51.0, // [Table 3]
		WattsPerCoreApp: 48.4, // [Table 3]
		CoresPerRack:    384,  // [paper intro]

		NodesPerCard:     4,  // blade
		NodesPerMidplane: 32, // cage
		NodesPerRack:     96, // cabinet
	},
}

// Get returns a copy of the catalog entry for id, so callers may
// modify parameters (for ablation studies) without affecting others.
// It panics on an unknown id; code handling external input (command
// lines, config files) should use Lookup instead.
func Get(id ID) *Machine {
	m, err := Lookup(id)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// Lookup returns a copy of the catalog entry for id, or an error
// naming the valid identifiers when id is unknown.
func Lookup(id ID) (*Machine, error) {
	m, ok := catalog[id]
	if !ok {
		return nil, fmt.Errorf("machine: unknown id %q (valid: %v)", id, All())
	}
	return m.Clone(), nil
}

// All returns the catalog identifiers in the paper's Table 1 order.
func All() []ID {
	return []ID{BGL, BGP, XT3, XT4DC, XT4QC}
}
