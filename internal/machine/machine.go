// Package machine describes the supercomputers evaluated in the paper:
// IBM BlueGene/P and BlueGene/L, and the Cray XT3 and XT4 (dual- and
// quad-core). Each description collects the first-order hardware
// parameters that drive the paper's comparisons — clock rate, flops per
// cycle, memory bandwidth, interconnect link bandwidths and latencies,
// and power per core — plus modelling parameters (kernel efficiency
// classes) documented in DESIGN.md.
package machine

import "fmt"

// ID names a machine model in the catalog.
type ID string

// Catalog identifiers.
const (
	BGP   ID = "BG/P"   // IBM BlueGene/P (quad-core PowerPC 450, 850 MHz)
	BGL   ID = "BG/L"   // IBM BlueGene/L (dual-core PowerPC 440, 700 MHz)
	XT3   ID = "XT3"    // Cray XT3 (dual-core Opteron, 2.6 GHz, SeaStar)
	XT4DC ID = "XT4/DC" // Cray XT4 dual-core (2.6 GHz, SeaStar2)
	XT4QC ID = "XT4/QC" // Cray XT4 quad-core (2.1 GHz Barcelona, SeaStar2)
)

// Mode is a node execution mode. On BlueGene/P: SMP (one MPI task per
// node, up to 4 threads), DUAL (two tasks, two threads each), VN
// (virtual node: one task per core). The Cray XT dual-core systems'
// SN mode maps to SMP and their VN mode to VN.
type Mode int

// Execution modes.
const (
	SMP Mode = iota
	DUAL
	VN
)

// String returns the paper's name for the mode.
func (m Mode) String() string {
	switch m {
	case SMP:
		return "SMP"
	case DUAL:
		return "DUAL"
	case VN:
		return "VN"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// KernelClass categorizes computational kernels by the fraction of
// peak floating-point rate they sustain and by how memory-bound they
// are. The compute model (internal/cpu) picks efficiency and bandwidth
// parameters by class.
type KernelClass int

// Kernel classes.
const (
	ClassDGEMM   KernelClass = iota // dense matrix multiply: near-peak
	ClassFFT                        // fast Fourier transform: cache-unfriendly strides
	ClassStream                     // pure streaming: memory-bandwidth bound
	ClassStencil                    // structured-grid stencils: mixed
	ClassScalar                     // irregular scalar code: small fraction of peak
	ClassUpdate                     // tiny random updates (RandomAccess)
	numClasses
)

// String names the kernel class.
func (c KernelClass) String() string {
	switch c {
	case ClassDGEMM:
		return "dgemm"
	case ClassFFT:
		return "fft"
	case ClassStream:
		return "stream"
	case ClassStencil:
		return "stencil"
	case ClassScalar:
		return "scalar"
	case ClassUpdate:
		return "update"
	}
	return fmt.Sprintf("KernelClass(%d)", int(c))
}

// Machine is a full machine description. Bandwidths are bytes/second,
// latencies seconds, sizes bytes, power watts.
type Machine struct {
	ID   ID
	Name string

	// Node architecture.
	CoresPerNode  int
	ClockHz       float64
	FlopsPerCycle int     // double-precision flops per cycle per core
	L1Bytes       int64   // private per core
	L2Bytes       int64   // private per core (0 = stream prefetcher only)
	L3Bytes       int64   // shared per node
	MemPerNode    int64   // main memory per node
	MemBWPerNode  float64 // aggregate sustainable main-memory bandwidth
	CoreMemBW     float64 // bandwidth one core can sustain alone
	CacheCoherent bool

	// Torus interconnect.
	TorusLinkBW   float64 // per link per direction
	TorusHopLat   float64 // per-hop router latency
	NICInjectBW   float64 // node injection bandwidth (shared by cores)
	SWLatency     float64 // MPI software overhead per message (one side)
	EagerLimit    int     // eager/rendezvous protocol switch, bytes
	RendezvousRTT float64 // extra handshake cost for rendezvous messages

	// BisectionDerate scales the torus bisection bandwidth actually
	// delivered to a job. BlueGene allocates electrically isolated
	// rectangular partitions (factor 1); the Cray XT allocator hands
	// out fragmented node sets that share links with other jobs (the
	// paper attributes the XT's PTRANS variability to exactly this),
	// so its jobs see a fraction of the nominal bisection.
	BisectionDerate float64

	// Collective tree network (BlueGene only).
	// CollNoisePerRank is the additional per-round skew of software
	// collectives, in seconds per participating rank: OS interference
	// and desynchronization make large software collectives cost far
	// more than the LogP model predicts. BlueGene's noiseless compute
	// kernel keeps this near zero; it is the second reason (after the
	// tree network) that the paper's Figure 4(d) shows the XT
	// barotropic phase stalling beyond 8000 processes.
	CollNoisePerRank float64

	HasTree       bool
	TreeBW        float64 // per direction
	TreeLat       float64 // end-to-end traversal latency contribution per stage
	TreeHWReduce  bool    // hardware arithmetic on the tree (integer + double)
	HasBarrierNet bool
	BarrierLat    float64 // global interrupt network barrier latency

	// On-node shared-memory messaging.
	ShmLatency float64
	ShmBW      float64

	// OS-noise profile: once per NoisePeriodS seconds the compute-node
	// OS steals NoiseDurS seconds from the running core (daemon
	// wakeups, timer ticks). Zero/zero means a noiseless kernel — the
	// BlueGene CNK, which runs exactly one process with no timer
	// decrementer interference, is the paper's reference point. The
	// fault layer (internal/fault) turns this profile into
	// deterministic compute-time perturbations.
	NoisePeriodS float64
	NoiseDurS    float64

	// Coll is the machine's collective-algorithm selection table (see
	// colltable.go). Empty falls back to DefaultCollTable in the MPI
	// layer.
	Coll CollTable

	// Per-class sustained fraction of peak flop rate.
	Eff [numClasses]float64

	// OpenMP parallel efficiency when using in-node threads (fraction
	// of ideal speedup retained per added thread).
	OMPEff float64

	// Power.
	WattsPerCoreHPL float64 // measured aggregate power per core under HPL
	WattsPerCoreApp float64 // measured aggregate power per core under applications
	CoresPerRack    int

	// Physical packaging hierarchy, in nodes per unit: the shared-fate
	// domains of correlated failures (a blown DC-DC converter takes a
	// node card, a failed link chip a midplane, a power-supply fault a
	// rack). On BlueGene the units are node card / midplane / rack; on
	// the Cray XT the analogues are blade / cage (chassis) / cabinet.
	// internal/fault keys its blast-radius model on these.
	NodesPerCard     int
	NodesPerMidplane int
	NodesPerRack     int
}

// Hierarchy is the machine's physical packaging ladder for
// correlated-failure domains, smallest unit first.
type Hierarchy struct {
	Card     int // nodes per node card (BG) or blade (XT)
	Midplane int // nodes per midplane (BG) or cage (XT)
	Rack     int // nodes per rack (BG) or cabinet (XT)
}

// Hierarchy returns the machine's packaging hierarchy. Machines built
// by hand without packaging fields fall back to a single-level
// hierarchy where every unit is one node (a blast then degenerates to
// an independent node failure).
func (m *Machine) Hierarchy() Hierarchy {
	h := Hierarchy{Card: m.NodesPerCard, Midplane: m.NodesPerMidplane, Rack: m.NodesPerRack}
	if h.Card <= 0 {
		h.Card = 1
	}
	if h.Midplane < h.Card {
		h.Midplane = h.Card
	}
	if h.Rack < h.Midplane {
		h.Rack = h.Midplane
	}
	return h
}

// PeakFlopsCore returns the peak double-precision flop rate of one core.
func (m *Machine) PeakFlopsCore() float64 {
	return m.ClockHz * float64(m.FlopsPerCycle)
}

// PeakFlopsNode returns the peak flop rate of one node.
func (m *Machine) PeakFlopsNode() float64 {
	return m.PeakFlopsCore() * float64(m.CoresPerNode)
}

// RanksPerNode returns the MPI tasks per node in the given mode.
func (m *Machine) RanksPerNode(mode Mode) int {
	switch mode {
	case SMP:
		return 1
	case DUAL:
		if m.CoresPerNode < 2 {
			return 1
		}
		return 2
	case VN:
		return m.CoresPerNode
	}
	return 1
}

// ThreadsPerRank returns the compute threads each MPI task may use in
// the given mode (cores divided evenly among tasks).
func (m *Machine) ThreadsPerRank(mode Mode) int {
	return m.CoresPerNode / m.RanksPerNode(mode)
}

// SupportsMode reports whether the machine supports the mode. DUAL
// mode exists only on quad-core nodes (it is new with BG/P; on
// dual-core XTs the analogous assignment is just VN).
func (m *Machine) SupportsMode(mode Mode) bool {
	if mode == DUAL {
		return m.CoresPerNode >= 4
	}
	return true
}

// Noiseless reports whether the machine's compute-node OS injects no
// periodic noise (the BlueGene CNK).
func (m *Machine) Noiseless() bool {
	return m.NoisePeriodS <= 0 || m.NoiseDurS <= 0
}

// Clone returns a deep copy of the machine — the collective table's
// rule slices included — so callers (parameter searches, ablation
// studies) can mutate model parameters without aliasing the original.
func (m *Machine) Clone() *Machine {
	cp := *m
	cp.Coll = m.Coll.Clone()
	return &cp
}

// String returns the machine name.
func (m *Machine) String() string { return m.Name }
