package alloc

import (
	"testing"

	"bgpsim/internal/topology"
)

// FuzzPrismShapes asserts the shape-enumeration contract the BG
// allocator and its Frag probe lean on: every enumerated shape has the
// requested volume, power-of-two sides, fits the torus, and the list is
// sorted most-cubic first with no duplicates. A bad shape would let
// tryPrism walk out of bounds or hand out wrong-sized partitions.
func FuzzPrismShapes(f *testing.F) {
	f.Add(uint16(64), uint8(8), uint8(8), uint8(16))
	f.Add(uint16(1), uint8(1), uint8(1), uint8(1))
	f.Add(uint16(512), uint8(8), uint8(8), uint8(8))
	f.Add(uint16(1024), uint8(8), uint8(8), uint8(32))
	f.Add(uint16(7), uint8(4), uint8(4), uint8(4))
	f.Add(uint16(256), uint8(2), uint8(16), uint8(8))
	f.Fuzz(func(t *testing.T, rawSize uint16, dx, dy, dz uint8) {
		// Alloc always rounds the request up to a power of two before
		// calling prismShapes — that rounding is part of the contract
		// (non-pow2 volumes would yield non-pow2 z sides).
		size := 1
		for size < int(rawSize)%2048+1 {
			size *= 2
		}
		dims := topology.Dims{int(dx)%32 + 1, int(dy)%32 + 1, int(dz)%32 + 1}
		shapes := prismShapes(size, dims)
		seen := make(map[topology.Dims]bool)
		prev := -1
		for _, s := range shapes {
			if s.Nodes() != size {
				t.Fatalf("shape %v has volume %d, want %d", s, s.Nodes(), size)
			}
			for i := 0; i < 3; i++ {
				if s[i] < 1 || s[i] > dims[i] {
					t.Fatalf("shape %v does not fit torus %v", s, dims)
				}
				if s[i]&(s[i]-1) != 0 {
					t.Fatalf("shape %v side %d not a power of two", s, s[i])
				}
			}
			if seen[s] {
				t.Fatalf("shape %v enumerated twice", s)
			}
			seen[s] = true
			if sc := score(s); prev >= 0 && sc < prev {
				t.Fatalf("shapes not sorted most-cubic first: %v after score %d", s, prev)
			} else {
				prev = sc
			}
		}
		// If the machine dims are powers of two and the size fits the
		// machine volume, at least one shape must exist.
		dimsPow2 := true
		for i := 0; i < 3; i++ {
			if dims[i]&(dims[i]-1) != 0 {
				dimsPow2 = false
			}
		}
		if dimsPow2 && size <= dims.Nodes() && len(shapes) == 0 {
			t.Fatalf("no shape for pow2 size %d on pow2 torus %v", size, dims)
		}
	})
}
