package alloc

import (
	"testing"

	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

func torus() *topology.Torus {
	return topology.NewTorus(topology.Dims{8, 8, 16}) // one BG/P rack
}

func TestBGAllocCompact(t *testing.T) {
	tor := torus()
	a := NewBGAllocator(tor)
	j, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Nodes) != 64 {
		t.Fatalf("got %d nodes", len(j.Nodes))
	}
	if s := Spread(tor, j); s > 1.01 {
		t.Errorf("fresh BG partition spread = %.3f, want 1.0", s)
	}
	if f := ExternalRouteFraction(tor, j); f != 0 {
		t.Errorf("BG partition external fraction = %.3f, want 0", f)
	}
}

func TestBGAllocRoundsToPowerOfTwo(t *testing.T) {
	a := NewBGAllocator(torus())
	j, err := a.Alloc(33)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Nodes) != 64 {
		t.Errorf("33-node request got %d nodes, want 64", len(j.Nodes))
	}
}

func TestBGAllocExhaustion(t *testing.T) {
	a := NewBGAllocator(torus())
	if _, err := a.Alloc(512); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(512); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(512); err == nil {
		t.Error("third 512 should fail on a 1024-node torus")
	}
	if a.FreeNodes() != 0 {
		t.Errorf("free nodes = %d, want 0", a.FreeNodes())
	}
}

func TestBGFreeAndReuse(t *testing.T) {
	a := NewBGAllocator(torus())
	j, _ := a.Alloc(1024)
	a.Free(j)
	if a.FreeNodes() != 1024 {
		t.Error("free did not return nodes")
	}
	if _, err := a.Alloc(1024); err != nil {
		t.Errorf("reallocation failed: %v", err)
	}
}

func TestXTAllocTakesFirstFree(t *testing.T) {
	tor := torus()
	a := NewXTAllocator(tor)
	j, err := a.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range j.Nodes {
		if id != i {
			t.Fatalf("nodes = %v, want 0..9", j.Nodes)
		}
	}
	if _, err := a.Alloc(2000); err == nil {
		t.Error("oversized alloc should fail")
	}
}

func TestChurnFragmentsXTButNotBG(t *testing.T) {
	tor := torus()

	xt, err := Churn(NewXTAllocator(tor), tor, 12345, 300, 128)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := Churn(NewBGAllocator(tor), tor, 12345, 300, 128)
	if err != nil {
		t.Fatal(err)
	}

	xtSpread := Spread(tor, xt)
	bgSpread := Spread(tor, bg)
	if bgSpread > 1.01 {
		t.Errorf("BG probe spread after churn = %.3f, want 1.0 (isolation)", bgSpread)
	}
	if xtSpread < 1.2 {
		t.Errorf("XT probe spread after churn = %.3f, want fragmentation (>1.2)", xtSpread)
	}

	xtExt := ExternalRouteFraction(tor, xt)
	if ExternalRouteFraction(tor, bg) != 0 {
		t.Error("BG partition routes should stay internal")
	}
	if xtExt < 0.15 {
		t.Errorf("XT external route fraction = %.3f, want substantial (>0.15)", xtExt)
	}
	t.Logf("calibration support: XT spread %.2f, external fraction %.2f (BisectionDerate 0.25)",
		xtSpread, xtExt)
}

func TestChurnDeterministic(t *testing.T) {
	tor := torus()
	a, err := Churn(NewXTAllocator(tor), tor, 9, 200, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Churn(NewXTAllocator(tor), tor, 9, 200, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatal("nondeterministic churn")
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatal("nondeterministic churn")
		}
	}
}

func TestBadSizes(t *testing.T) {
	if _, err := NewBGAllocator(torus()).Alloc(0); err == nil {
		t.Error("zero alloc should fail")
	}
	if _, err := NewXTAllocator(torus()).Alloc(-1); err == nil {
		t.Error("negative alloc should fail")
	}
}

func TestSpreadSingleNode(t *testing.T) {
	tor := torus()
	if Spread(tor, &Job{Nodes: []int{5}}) != 1 {
		t.Error("single node spread should be 1")
	}
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s should panic", what)
		}
	}()
	f()
}

func TestDoubleFreeGuard(t *testing.T) {
	for name, a := range map[string]Allocator{
		"bg": NewBGAllocator(torus()),
		"xt": NewXTAllocator(torus()),
	} {
		j, err := a.Alloc(32)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a.Free(j)
		mustPanic(t, name+" double free", func() { a.Free(j) })
	}
}

func TestForeignFreeGuard(t *testing.T) {
	a := NewXTAllocator(torus())
	j, err := a.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	// A job claiming nodes owned by someone else must be rejected.
	mustPanic(t, "foreign free", func() {
		a.Free(&Job{ID: 99, Nodes: append([]int(nil), j.Nodes...)})
	})
	a.Free(j) // the rightful owner still can
}

func TestAllocFreeRoundTrip(t *testing.T) {
	// Property: any deterministic alloc/free mix returns the allocator
	// to a state where every node is free, the full machine is again
	// allocatable, and no node was ever double-owned.
	for name, mk := range map[string]func() Allocator{
		"bg": func() Allocator { return NewBGAllocator(torus()) },
		"xt": func() Allocator { return NewXTAllocator(torus()) },
	} {
		a := mk()
		rng := sim.NewRNG(4242)
		var live []*Job
		owned := make(map[int]int) // node -> job ID
		for step := 0; step < 500; step++ {
			if rng.Float64() < 0.6 || len(live) == 0 {
				size := 8 << rng.Intn(6)
				j, err := a.Alloc(size)
				if err != nil {
					continue
				}
				for _, id := range j.Nodes {
					if prev, dup := owned[id]; dup {
						t.Fatalf("%s: node %d handed to job %d while owned by %d", name, id, j.ID, prev)
					}
					owned[id] = j.ID
				}
				live = append(live, j)
			} else {
				k := rng.Intn(len(live))
				for _, id := range live[k].Nodes {
					delete(owned, id)
				}
				a.Free(live[k])
				live = append(live[:k], live[k+1:]...)
			}
		}
		for _, j := range live {
			for _, id := range j.Nodes {
				delete(owned, id)
			}
			a.Free(j)
		}
		if len(owned) != 0 {
			t.Fatalf("%s: %d nodes still tracked after freeing all", name, len(owned))
		}
		if a.FreeNodes() != 1024 {
			t.Fatalf("%s: %d free after round trip, want 1024", name, a.FreeNodes())
		}
		if j, err := a.Alloc(1024); err != nil {
			t.Fatalf("%s: full-machine realloc after round trip: %v", name, err)
		} else if len(j.Nodes) != 1024 {
			t.Fatalf("%s: full-machine realloc got %d nodes", name, len(j.Nodes))
		}
	}
}

func TestReserve(t *testing.T) {
	a := NewXTAllocator(torus())
	if err := a.Reserve([]int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if a.FreeNodes() != 1021 {
		t.Errorf("free after reserve = %d, want 1021", a.FreeNodes())
	}
	j, err := a.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range j.Nodes {
		if id < 3 {
			t.Errorf("alloc handed out reserved node %d", id)
		}
	}
	if err := a.Reserve(j.Nodes[:1]); err == nil {
		t.Error("reserving a busy node should fail")
	}
	if err := a.Reserve([]int{0}); err != nil {
		t.Errorf("re-reserving a reserved node should be a no-op, got %v", err)
	}
	if err := a.Reserve([]int{-1}); err == nil {
		t.Error("reserving an out-of-range node should fail")
	}

	bg := NewBGAllocator(torus())
	if err := bg.Reserve([]int{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := bg.Alloc(1024); err == nil {
		t.Error("full-machine partition should not fit around a reserved node")
	}
	p, err := bg.Alloc(512)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range p.Nodes {
		if id == 0 {
			t.Error("BG partition includes the reserved node")
		}
	}
}

func TestFragGolden(t *testing.T) {
	// Pin the fragmentation metric on a hand-built state: nodes 0..9
	// free, 10 busy, 11..1023 free.
	a := NewXTAllocator(torus())
	full, err := a.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	a.Free(full)
	if got := a.Frag(); got != 0 {
		t.Errorf("empty-machine Frag = %g, want 0", got)
	}
	hole, err := a.Alloc(11)
	if err != nil {
		t.Fatal(err)
	}
	// Free all but node 10 by carving the job: free the whole job, then
	// re-reserve nothing — instead allocate node-by-node. Simpler: keep
	// the 11-node job, free it, and reserve node 10.
	a.Free(hole)
	if err := a.Reserve([]int{10}); err != nil {
		t.Fatal(err)
	}
	// Free nodes: 0..9 (run of 10) and 11..1023 (run of 1013) = 1023.
	if got, want := a.Frag(), 1-float64(1013)/float64(1023); got != want {
		t.Errorf("split free list Frag = %g, want %g", got, want)
	}

	// BG: a full rack minus one reserved node leaves 1023 free but the
	// largest placeable power-of-two partition is 512.
	bg := NewBGAllocator(torus())
	if err := bg.Reserve([]int{0}); err != nil {
		t.Fatal(err)
	}
	if got, want := bg.Frag(), 1-float64(512)/float64(1023); got != want {
		t.Errorf("BG one-dead-node Frag = %g, want %g", got, want)
	}
	if got := NewBGAllocator(torus()).Frag(); got != 0 {
		t.Errorf("empty BG machine Frag = %g, want 0", got)
	}
}

func TestBGJobPrismMetadata(t *testing.T) {
	tor := torus()
	a := NewBGAllocator(tor)
	j, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Rect || j.Shape.Nodes() != 64 {
		t.Fatalf("BG job rect=%v shape=%v", j.Rect, j.Shape)
	}
	p, err := j.Partition(tor, true)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Isolated || p.Size() != 64 {
		t.Fatalf("partition isolated=%v size=%d", p.Isolated, p.Size())
	}
	// The partition's local order must equal the job's node order.
	for i, id := range j.Nodes {
		if p.ParentOf(i) != id {
			t.Fatalf("partition local %d = parent %d, job has %d", i, p.ParentOf(i), id)
		}
	}

	xt := NewXTAllocator(tor)
	xj, err := xt.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	if xj.Rect {
		t.Error("XT job should not claim a prism")
	}
	xp, err := xj.Partition(tor, false)
	if err != nil {
		t.Fatal(err)
	}
	if xp.Isolated || xp.Rect() {
		t.Errorf("XT partition isolated=%v rect=%v, want shared scattered", xp.Isolated, xp.Rect())
	}
}
