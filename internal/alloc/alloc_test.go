package alloc

import (
	"testing"

	"bgpsim/internal/topology"
)

func torus() *topology.Torus {
	return topology.NewTorus(topology.Dims{8, 8, 16}) // one BG/P rack
}

func TestBGAllocCompact(t *testing.T) {
	tor := torus()
	a := NewBGAllocator(tor)
	j, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Nodes) != 64 {
		t.Fatalf("got %d nodes", len(j.Nodes))
	}
	if s := Spread(tor, j); s > 1.01 {
		t.Errorf("fresh BG partition spread = %.3f, want 1.0", s)
	}
	if f := ExternalRouteFraction(tor, j); f != 0 {
		t.Errorf("BG partition external fraction = %.3f, want 0", f)
	}
}

func TestBGAllocRoundsToPowerOfTwo(t *testing.T) {
	a := NewBGAllocator(torus())
	j, err := a.Alloc(33)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Nodes) != 64 {
		t.Errorf("33-node request got %d nodes, want 64", len(j.Nodes))
	}
}

func TestBGAllocExhaustion(t *testing.T) {
	a := NewBGAllocator(torus())
	if _, err := a.Alloc(512); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(512); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(512); err == nil {
		t.Error("third 512 should fail on a 1024-node torus")
	}
	if a.FreeNodes() != 0 {
		t.Errorf("free nodes = %d, want 0", a.FreeNodes())
	}
}

func TestBGFreeAndReuse(t *testing.T) {
	a := NewBGAllocator(torus())
	j, _ := a.Alloc(1024)
	a.Free(j)
	if a.FreeNodes() != 1024 {
		t.Error("free did not return nodes")
	}
	if _, err := a.Alloc(1024); err != nil {
		t.Errorf("reallocation failed: %v", err)
	}
}

func TestXTAllocTakesFirstFree(t *testing.T) {
	tor := torus()
	a := NewXTAllocator(tor)
	j, err := a.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range j.Nodes {
		if id != i {
			t.Fatalf("nodes = %v, want 0..9", j.Nodes)
		}
	}
	if _, err := a.Alloc(2000); err == nil {
		t.Error("oversized alloc should fail")
	}
}

func TestChurnFragmentsXTButNotBG(t *testing.T) {
	tor := torus()

	xt, err := Churn(NewXTAllocator(tor), tor, 12345, 300, 128)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := Churn(NewBGAllocator(tor), tor, 12345, 300, 128)
	if err != nil {
		t.Fatal(err)
	}

	xtSpread := Spread(tor, xt)
	bgSpread := Spread(tor, bg)
	if bgSpread > 1.01 {
		t.Errorf("BG probe spread after churn = %.3f, want 1.0 (isolation)", bgSpread)
	}
	if xtSpread < 1.2 {
		t.Errorf("XT probe spread after churn = %.3f, want fragmentation (>1.2)", xtSpread)
	}

	xtExt := ExternalRouteFraction(tor, xt)
	if ExternalRouteFraction(tor, bg) != 0 {
		t.Error("BG partition routes should stay internal")
	}
	if xtExt < 0.15 {
		t.Errorf("XT external route fraction = %.3f, want substantial (>0.15)", xtExt)
	}
	t.Logf("calibration support: XT spread %.2f, external fraction %.2f (BisectionDerate 0.25)",
		xtSpread, xtExt)
}

func TestChurnDeterministic(t *testing.T) {
	tor := torus()
	a, err := Churn(NewXTAllocator(tor), tor, 9, 200, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Churn(NewXTAllocator(tor), tor, 9, 200, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatal("nondeterministic churn")
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatal("nondeterministic churn")
		}
	}
}

func TestBadSizes(t *testing.T) {
	if _, err := NewBGAllocator(torus()).Alloc(0); err == nil {
		t.Error("zero alloc should fail")
	}
	if _, err := NewXTAllocator(torus()).Alloc(-1); err == nil {
		t.Error("negative alloc should fail")
	}
}

func TestSpreadSingleNode(t *testing.T) {
	tor := torus()
	if Spread(tor, &Job{Nodes: []int{5}}) != 1 {
		t.Error("single node spread should be 1")
	}
}
