// Package alloc models the two job-placement policies the paper
// contrasts when explaining the XT's PTRANS variability (§II.A.3):
//
//   - BlueGene partitions: jobs receive electrically isolated,
//     rectangular sub-tori at midplane granularity — every job sees a
//     compact private network.
//   - Cray XT allocation: jobs receive whatever nodes are free in a
//     linear scan of the machine, so after scheduling churn a job's
//     nodes are scattered and its traffic shares links with other
//     jobs ("the resource allocation approach on the XT is more
//     susceptible to fragmentation").
//
// The Spread and ExternalRouteFraction metrics quantify the effect and
// back the machine catalog's BisectionDerate calibration.
package alloc

import (
	"fmt"

	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

// Job is an allocated node set.
type Job struct {
	ID    int
	Nodes []int
}

// Allocator places jobs on a torus.
type Allocator interface {
	// Alloc returns a job of n nodes, or an error if it cannot fit.
	Alloc(n int) (*Job, error)
	// Free returns a job's nodes.
	Free(*Job)
	// FreeNodes reports how many nodes are idle.
	FreeNodes() int
}

// --- BlueGene-style partition allocator ---

// BGAllocator hands out compact rectangular prisms, mimicking the
// BlueGene control system's partition blocks. Requests are rounded up
// to the next power of two.
type BGAllocator struct {
	torus *topology.Torus
	busy  []bool
	next  int
}

// NewBGAllocator builds a partition allocator over a torus.
func NewBGAllocator(t *topology.Torus) *BGAllocator {
	return &BGAllocator{torus: t, busy: make([]bool, t.Dims.Nodes())}
}

// FreeNodes reports idle nodes.
func (a *BGAllocator) FreeNodes() int {
	n := 0
	for _, b := range a.busy {
		if !b {
			n++
		}
	}
	return n
}

// Alloc finds a free rectangular prism of at least n nodes (rounded to
// a power of two) aligned to its own size — the partition blocks real
// BlueGene control systems carve.
func (a *BGAllocator) Alloc(n int) (*Job, error) {
	if n <= 0 {
		return nil, fmt.Errorf("alloc: bad size %d", n)
	}
	size := 1
	for size < n {
		size *= 2
	}
	dims := a.torus.Dims
	// Candidate prism shapes with power-of-two sides.
	for _, shape := range prismShapes(size, dims) {
		for z := 0; z+shape[2] <= dims[2]; z += shape[2] {
			for y := 0; y+shape[1] <= dims[1]; y += shape[1] {
				for x := 0; x+shape[0] <= dims[0]; x += shape[0] {
					if job := a.tryPrism(x, y, z, shape); job != nil {
						a.next++
						job.ID = a.next
						return job, nil
					}
				}
			}
		}
	}
	return nil, fmt.Errorf("alloc: no free %d-node partition", size)
}

func (a *BGAllocator) tryPrism(x0, y0, z0 int, s topology.Dims) *Job {
	var nodes []int
	for z := z0; z < z0+s[2]; z++ {
		for y := y0; y < y0+s[1]; y++ {
			for x := x0; x < x0+s[0]; x++ {
				id := a.torus.NodeAt(topology.Coord{x, y, z})
				if a.busy[id] {
					return nil
				}
				nodes = append(nodes, id)
			}
		}
	}
	for _, id := range nodes {
		a.busy[id] = true
	}
	return &Job{Nodes: nodes}
}

// prismShapes enumerates power-of-two prisms of the given volume that
// fit the torus, most-cubic first.
func prismShapes(size int, dims topology.Dims) []topology.Dims {
	var shapes []topology.Dims
	for x := 1; x <= size && x <= dims[0]; x *= 2 {
		for y := 1; x*y <= size && y <= dims[1]; y *= 2 {
			z := size / (x * y)
			if x*y*z != size || z > dims[2] {
				continue
			}
			shapes = append(shapes, topology.Dims{x, y, z})
		}
	}
	// Most-cubic first: smaller surface-to-volume.
	for i := 1; i < len(shapes); i++ {
		for j := i; j > 0; j-- {
			if score(shapes[j]) < score(shapes[j-1]) {
				shapes[j], shapes[j-1] = shapes[j-1], shapes[j]
			}
		}
	}
	return shapes
}

func score(d topology.Dims) int { return d[0]*d[1] + d[1]*d[2] + d[0]*d[2] }

// --- XT-style free-list allocator ---

// XTAllocator hands out the first free nodes in node-id order,
// regardless of locality — the behaviour that fragments jobs after
// scheduling churn.
type XTAllocator struct {
	torus *topology.Torus
	busy  []bool
	next  int
}

// NewXTAllocator builds a free-list allocator over a torus.
func NewXTAllocator(t *topology.Torus) *XTAllocator {
	return &XTAllocator{torus: t, busy: make([]bool, t.Dims.Nodes())}
}

// FreeNodes reports idle nodes.
func (a *XTAllocator) FreeNodes() int {
	n := 0
	for _, b := range a.busy {
		if !b {
			n++
		}
	}
	return n
}

// Alloc takes the first n free nodes.
func (a *XTAllocator) Alloc(n int) (*Job, error) {
	if n <= 0 {
		return nil, fmt.Errorf("alloc: bad size %d", n)
	}
	var nodes []int
	for id := 0; id < len(a.busy) && len(nodes) < n; id++ {
		if !a.busy[id] {
			nodes = append(nodes, id)
		}
	}
	if len(nodes) < n {
		return nil, fmt.Errorf("alloc: only %d of %d nodes free", len(nodes), n)
	}
	for _, id := range nodes {
		a.busy[id] = true
	}
	a.next++
	return &Job{ID: a.next, Nodes: nodes}, nil
}

// Free releases a job (shared by both allocators via the busy slice).
func (a *XTAllocator) Free(j *Job) { freeNodes(a.busy, j) }

// Free releases a partition.
func (a *BGAllocator) Free(j *Job) { freeNodes(a.busy, j) }

func freeNodes(busy []bool, j *Job) {
	for _, id := range j.Nodes {
		busy[id] = false
	}
	j.Nodes = nil
}

// --- Placement-quality metrics ---

// Spread returns the job's mean pairwise hop distance divided by that
// of a compact prism of the same size on the same torus: 1.0 means
// perfectly compact, larger means fragmented.
func Spread(t *topology.Torus, job *Job) float64 {
	if len(job.Nodes) < 2 {
		return 1
	}
	actual := meanPairHops(t, job.Nodes)
	compact := meanPairHops(t, compactPrism(t, len(job.Nodes)))
	if compact == 0 {
		return 1
	}
	return actual / compact
}

// ExternalRouteFraction returns the fraction of hops on the job's
// internal routes that pass through nodes NOT belonging to the job —
// links there are shared with other jobs' traffic.
func ExternalRouteFraction(t *topology.Torus, job *Job) float64 {
	member := make(map[int]bool, len(job.Nodes))
	for _, id := range job.Nodes {
		member[id] = true
	}
	total, external := 0, 0
	// Sample pairs: all pairs is O(n^2 * diameter); use a strided
	// deterministic sample for large jobs.
	stride := 1
	if len(job.Nodes) > 150 {
		stride = len(job.Nodes) / 64
	}
	for i := 0; i < len(job.Nodes); i += stride {
		for j := 0; j < len(job.Nodes); j += stride {
			if i == j {
				continue
			}
			for _, l := range t.Route(job.Nodes[i], job.Nodes[j]) {
				total++
				if !member[l.Node] {
					external++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(external) / float64(total)
}

func meanPairHops(t *topology.Torus, nodes []int) float64 {
	stride := 1
	if len(nodes) > 150 {
		stride = len(nodes) / 64
	}
	total, count := 0, 0
	for i := 0; i < len(nodes); i += stride {
		for j := 0; j < len(nodes); j += stride {
			if i == j {
				continue
			}
			total += t.Hops(nodes[i], nodes[j])
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return float64(total) / float64(count)
}

// compactPrism returns the best-connected rectangular block of n
// nodes: for power-of-two sizes it evaluates every candidate prism
// shape (a side that spans a full torus dimension wraps around and is
// better-connected than surface area alone suggests) and keeps the one
// with minimal mean pairwise hops.
func compactPrism(t *topology.Torus, n int) []int {
	if n&(n-1) == 0 {
		var best []int
		bestHops := 0.0
		for _, shape := range prismShapes(n, t.Dims) {
			nodes := prismAt(t, shape)
			h := meanPairHops(t, nodes)
			if best == nil || h < bestHops {
				best, bestHops = nodes, h
			}
		}
		if best != nil {
			return best
		}
	}
	return prismAt(t, topology.DimsForNodes(n))
}

// prismAt lists the nodes of a shape-sized block at the origin.
func prismAt(t *topology.Torus, d topology.Dims) []int {
	n := d.Nodes()
	var nodes []int
	for z := 0; z < d[2] && z < t.Dims[2]; z++ {
		for y := 0; y < d[1] && y < t.Dims[1]; y++ {
			for x := 0; x < d[0] && x < t.Dims[0]; x++ {
				if len(nodes) < n {
					nodes = append(nodes, t.NodeAt(topology.Coord{x % t.Dims[0], y % t.Dims[1], z % t.Dims[2]}))
				}
			}
		}
	}
	return nodes
}

// Churn drives an allocator through a deterministic arrival/departure
// mix (sizes 16..256, ~50% machine load) and then allocates a probe
// job, returning it for metric inspection. It is how the
// BisectionDerate calibration experiment is run.
func Churn(a Allocator, t *topology.Torus, seed uint64, steps, probeSize int) (*Job, error) {
	rng := sim.NewRNG(seed)
	var live []*Job
	for s := 0; s < steps; s++ {
		if rng.Float64() < 0.55 || len(live) == 0 {
			size := 16 << rng.Intn(5)
			if j, err := a.Alloc(size); err == nil {
				live = append(live, j)
			} else if len(live) > 0 {
				k := rng.Intn(len(live))
				a.Free(live[k])
				live = append(live[:k], live[k+1:]...)
			}
		} else {
			k := rng.Intn(len(live))
			a.Free(live[k])
			live = append(live[:k], live[k+1:]...)
		}
	}
	return a.Alloc(probeSize)
}
