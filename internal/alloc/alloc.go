// Package alloc models the two job-placement policies the paper
// contrasts when explaining the XT's PTRANS variability (§II.A.3):
//
//   - BlueGene partitions: jobs receive electrically isolated,
//     rectangular sub-tori at midplane granularity — every job sees a
//     compact private network.
//   - Cray XT allocation: jobs receive whatever nodes are free in a
//     linear scan of the machine, so after scheduling churn a job's
//     nodes are scattered and its traffic shares links with other
//     jobs ("the resource allocation approach on the XT is more
//     susceptible to fragmentation").
//
// The Spread and ExternalRouteFraction metrics quantify the effect and
// back the machine catalog's BisectionDerate calibration. The facility
// layer (internal/facility) drives these allocators as the placement
// stage of its batch scheduler and converts the resulting Jobs into
// topology.Partition views for per-job simulation.
package alloc

import (
	"fmt"

	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

// Job is an allocated node set. BG jobs additionally record the prism
// they occupy so they can be re-exposed as isolated sub-torus views.
type Job struct {
	ID    int
	Nodes []int
	// Rect marks a contiguous rectangular allocation; Origin and Shape
	// describe the prism (BGAllocator sets them, XTAllocator never
	// does).
	Rect   bool
	Origin topology.Coord
	Shape  topology.Dims
}

// Partition exposes the job's node set as a topology.Partition view on
// its torus: rectangular jobs become prism partitions (isolated when
// requested — the BlueGene electrical-partition model), scattered jobs
// become shared scattered partitions whose LinkShare prices the
// external-route interference.
func (j *Job) Partition(t *topology.Torus, isolated bool) (*topology.Partition, error) {
	if j.Rect {
		return topology.NewPrismPartition(t, j.Origin, j.Shape, isolated)
	}
	return topology.NewScatteredPartition(t, j.Nodes)
}

// Allocator places jobs on a torus.
type Allocator interface {
	// Alloc returns a job of n nodes, or an error if it cannot fit.
	Alloc(n int) (*Job, error)
	// Free returns a job's nodes. It panics on a double free or on a
	// job that does not own its nodes — allocator state corruption is
	// a programming error, not a recoverable condition.
	Free(*Job)
	// FreeNodes reports how many nodes are idle.
	FreeNodes() int
	// Reserve permanently removes idle nodes from circulation (dead
	// hardware after a blast). Reserving a node owned by a live job is
	// an error; reserving an already-reserved node is a no-op.
	Reserve(nodes []int) error
	// Frag reports free-space fragmentation in [0, 1): the fraction of
	// idle nodes NOT reachable by the largest single allocation the
	// policy could place right now. 0 means one job could take every
	// idle node.
	Frag() float64
}

// Node-ownership states shared by both allocators: the owner slice
// holds ownerFree, ownerReserved, or the owning job's positive ID.
const (
	ownerFree     = 0
	ownerReserved = -1
)

func countFree(owner []int) int {
	n := 0
	for _, o := range owner {
		if o == ownerFree {
			n++
		}
	}
	return n
}

func markOwned(owner []int, j *Job) {
	for _, id := range j.Nodes {
		owner[id] = j.ID
	}
}

// freeJob releases a job's nodes, panicking on double frees and on
// nodes the job does not own.
func freeJob(owner []int, j *Job) {
	if len(j.Nodes) == 0 {
		panic(fmt.Sprintf("alloc: double free of job %d", j.ID))
	}
	for _, id := range j.Nodes {
		if owner[id] != j.ID {
			panic(fmt.Sprintf("alloc: job %d frees node %d owned by %d", j.ID, id, owner[id]))
		}
	}
	for _, id := range j.Nodes {
		owner[id] = ownerFree
	}
	j.Nodes = nil
}

func reserveNodes(owner []int, nodes []int) error {
	for _, id := range nodes {
		if id < 0 || id >= len(owner) {
			return fmt.Errorf("alloc: reserve node %d out of range", id)
		}
		if owner[id] > 0 {
			return fmt.Errorf("alloc: reserve node %d still owned by job %d", id, owner[id])
		}
	}
	for _, id := range nodes {
		owner[id] = ownerReserved
	}
	return nil
}

// --- BlueGene-style partition allocator ---

// BGAllocator hands out compact rectangular prisms, mimicking the
// BlueGene control system's partition blocks. Requests are rounded up
// to the next power of two.
type BGAllocator struct {
	torus *topology.Torus
	owner []int
	next  int
}

// NewBGAllocator builds a partition allocator over a torus.
func NewBGAllocator(t *topology.Torus) *BGAllocator {
	return &BGAllocator{torus: t, owner: make([]int, t.Dims.Nodes())}
}

// FreeNodes reports idle nodes.
func (a *BGAllocator) FreeNodes() int { return countFree(a.owner) }

// Reserve removes idle nodes from circulation (dead hardware).
func (a *BGAllocator) Reserve(nodes []int) error { return reserveNodes(a.owner, nodes) }

// Alloc finds a free rectangular prism of at least n nodes (rounded to
// a power of two) aligned to its own size — the partition blocks real
// BlueGene control systems carve.
func (a *BGAllocator) Alloc(n int) (*Job, error) {
	if n <= 0 {
		return nil, fmt.Errorf("alloc: bad size %d", n)
	}
	size := 1
	for size < n {
		size *= 2
	}
	dims := a.torus.Dims
	// Candidate prism shapes with power-of-two sides.
	for _, shape := range prismShapes(size, dims) {
		for z := 0; z+shape[2] <= dims[2]; z += shape[2] {
			for y := 0; y+shape[1] <= dims[1]; y += shape[1] {
				for x := 0; x+shape[0] <= dims[0]; x += shape[0] {
					if job := a.tryPrism(x, y, z, shape); job != nil {
						a.next++
						job.ID = a.next
						markOwned(a.owner, job)
						return job, nil
					}
				}
			}
		}
	}
	return nil, fmt.Errorf("alloc: no free %d-node partition", size)
}

func (a *BGAllocator) tryPrism(x0, y0, z0 int, s topology.Dims) *Job {
	var nodes []int
	for z := z0; z < z0+s[2]; z++ {
		for y := y0; y < y0+s[1]; y++ {
			for x := x0; x < x0+s[0]; x++ {
				id := a.torus.NodeAt(topology.Coord{x, y, z})
				if a.owner[id] != ownerFree {
					return nil
				}
				nodes = append(nodes, id)
			}
		}
	}
	return &Job{Nodes: nodes, Rect: true, Origin: topology.Coord{x0, y0, z0}, Shape: s}
}

// Free releases a partition.
func (a *BGAllocator) Free(j *Job) { freeJob(a.owner, j) }

// Frag reports the fraction of idle nodes outside the largest
// power-of-two partition the allocator could still place: BlueGene
// fragmentation is spatial — plenty of free nodes can coexist with no
// free aligned prism of useful size.
func (a *BGAllocator) Frag() float64 {
	free := a.FreeNodes()
	if free == 0 {
		return 0
	}
	size := 1
	for size*2 <= free {
		size *= 2
	}
	dims := a.torus.Dims
	for ; size >= 1; size /= 2 {
		for _, shape := range prismShapes(size, dims) {
			for z := 0; z+shape[2] <= dims[2]; z += shape[2] {
				for y := 0; y+shape[1] <= dims[1]; y += shape[1] {
					for x := 0; x+shape[0] <= dims[0]; x += shape[0] {
						if a.prismFree(x, y, z, shape) {
							return 1 - float64(size)/float64(free)
						}
					}
				}
			}
		}
	}
	return 1
}

func (a *BGAllocator) prismFree(x0, y0, z0 int, s topology.Dims) bool {
	for z := z0; z < z0+s[2]; z++ {
		for y := y0; y < y0+s[1]; y++ {
			for x := x0; x < x0+s[0]; x++ {
				if a.owner[a.torus.NodeAt(topology.Coord{x, y, z})] != ownerFree {
					return false
				}
			}
		}
	}
	return true
}

// prismShapes enumerates power-of-two prisms of the given volume that
// fit the torus, most-cubic first.
func prismShapes(size int, dims topology.Dims) []topology.Dims {
	var shapes []topology.Dims
	for x := 1; x <= size && x <= dims[0]; x *= 2 {
		for y := 1; x*y <= size && y <= dims[1]; y *= 2 {
			z := size / (x * y)
			if x*y*z != size || z > dims[2] {
				continue
			}
			shapes = append(shapes, topology.Dims{x, y, z})
		}
	}
	// Most-cubic first: smaller surface-to-volume.
	for i := 1; i < len(shapes); i++ {
		for j := i; j > 0; j-- {
			if score(shapes[j]) < score(shapes[j-1]) {
				shapes[j], shapes[j-1] = shapes[j-1], shapes[j]
			}
		}
	}
	return shapes
}

func score(d topology.Dims) int { return d[0]*d[1] + d[1]*d[2] + d[0]*d[2] }

// --- XT-style free-list allocator ---

// XTAllocator hands out the first free nodes in node-id order,
// regardless of locality — the behaviour that fragments jobs after
// scheduling churn.
type XTAllocator struct {
	torus *topology.Torus
	owner []int
	next  int
}

// NewXTAllocator builds a free-list allocator over a torus.
func NewXTAllocator(t *topology.Torus) *XTAllocator {
	return &XTAllocator{torus: t, owner: make([]int, t.Dims.Nodes())}
}

// FreeNodes reports idle nodes.
func (a *XTAllocator) FreeNodes() int { return countFree(a.owner) }

// Reserve removes idle nodes from circulation (dead hardware).
func (a *XTAllocator) Reserve(nodes []int) error { return reserveNodes(a.owner, nodes) }

// Alloc takes the first n free nodes.
func (a *XTAllocator) Alloc(n int) (*Job, error) {
	if n <= 0 {
		return nil, fmt.Errorf("alloc: bad size %d", n)
	}
	var nodes []int
	for id := 0; id < len(a.owner) && len(nodes) < n; id++ {
		if a.owner[id] == ownerFree {
			nodes = append(nodes, id)
		}
	}
	if len(nodes) < n {
		return nil, fmt.Errorf("alloc: only %d of %d nodes free", len(nodes), n)
	}
	a.next++
	job := &Job{ID: a.next, Nodes: nodes}
	markOwned(a.owner, job)
	return job, nil
}

// Free releases a job.
func (a *XTAllocator) Free(j *Job) { freeJob(a.owner, j) }

// Frag reports the fraction of idle nodes outside the longest
// contiguous free run in node-id order: the linear-scan policy's
// fragmentation is exactly how broken-up its free list is.
func (a *XTAllocator) Frag() float64 {
	free, run, best := 0, 0, 0
	for _, o := range a.owner {
		if o == ownerFree {
			free++
			run++
			if run > best {
				best = run
			}
		} else {
			run = 0
		}
	}
	if free == 0 {
		return 0
	}
	return 1 - float64(best)/float64(free)
}

// --- Placement-quality metrics ---

// Spread returns the job's mean pairwise hop distance divided by that
// of a compact prism of the same size on the same torus: 1.0 means
// perfectly compact, larger means fragmented.
func Spread(t *topology.Torus, job *Job) float64 {
	if len(job.Nodes) < 2 {
		return 1
	}
	actual := meanPairHops(t, job.Nodes)
	compact := meanPairHops(t, compactPrism(t, len(job.Nodes)))
	if compact == 0 {
		return 1
	}
	return actual / compact
}

// ExternalRouteFraction returns the fraction of hops on the job's
// internal routes that pass through nodes NOT belonging to the job —
// links there are shared with other jobs' traffic. It is the same
// metric as topology.(*Partition).ExternalRouteShare on a shared
// scattered view of the job's nodes.
func ExternalRouteFraction(t *topology.Torus, job *Job) float64 {
	if len(job.Nodes) == 0 {
		return 0
	}
	p, err := topology.NewScatteredPartition(t, job.Nodes)
	if err != nil {
		return 0
	}
	return p.ExternalRouteShare()
}

func meanPairHops(t *topology.Torus, nodes []int) float64 {
	stride := 1
	if len(nodes) > 150 {
		stride = len(nodes) / 64
	}
	total, count := 0, 0
	for i := 0; i < len(nodes); i += stride {
		for j := 0; j < len(nodes); j += stride {
			if i == j {
				continue
			}
			total += t.Hops(nodes[i], nodes[j])
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return float64(total) / float64(count)
}

// compactPrism returns the best-connected rectangular block of n
// nodes: for power-of-two sizes it evaluates every candidate prism
// shape (a side that spans a full torus dimension wraps around and is
// better-connected than surface area alone suggests) and keeps the one
// with minimal mean pairwise hops.
func compactPrism(t *topology.Torus, n int) []int {
	if n&(n-1) == 0 {
		var best []int
		bestHops := 0.0
		for _, shape := range prismShapes(n, t.Dims) {
			nodes := prismAt(t, shape)
			h := meanPairHops(t, nodes)
			if best == nil || h < bestHops {
				best, bestHops = nodes, h
			}
		}
		if best != nil {
			return best
		}
	}
	return prismAt(t, topology.DimsForNodes(n))
}

// prismAt lists the nodes of a shape-sized block at the origin.
func prismAt(t *topology.Torus, d topology.Dims) []int {
	n := d.Nodes()
	var nodes []int
	for z := 0; z < d[2] && z < t.Dims[2]; z++ {
		for y := 0; y < d[1] && y < t.Dims[1]; y++ {
			for x := 0; x < d[0] && x < t.Dims[0]; x++ {
				if len(nodes) < n {
					nodes = append(nodes, t.NodeAt(topology.Coord{x % t.Dims[0], y % t.Dims[1], z % t.Dims[2]}))
				}
			}
		}
	}
	return nodes
}

// Churn drives an allocator through a deterministic arrival/departure
// mix (sizes 16..256, ~50% machine load) and then allocates a probe
// job, returning it for metric inspection. It is how the
// BisectionDerate calibration experiment is run.
func Churn(a Allocator, t *topology.Torus, seed uint64, steps, probeSize int) (*Job, error) {
	rng := sim.NewRNG(seed)
	var live []*Job
	for s := 0; s < steps; s++ {
		if rng.Float64() < 0.55 || len(live) == 0 {
			size := 16 << rng.Intn(5)
			if j, err := a.Alloc(size); err == nil {
				live = append(live, j)
			} else if len(live) > 0 {
				k := rng.Intn(len(live))
				a.Free(live[k])
				live = append(live[:k], live[k+1:]...)
			}
		} else {
			k := rng.Intn(len(live))
			a.Free(live[k])
			live = append(live[:k], live[k+1:]...)
		}
	}
	return a.Alloc(probeSize)
}
