package obs

import (
	"strings"

	"bgpsim/internal/sim"
)

// DefaultBucket is the link-telemetry bucket width used when a
// Recorder is built with NewRecorder.
const DefaultBucket = 100 * sim.Microsecond

// Recorder is the standard Probe implementation: it accumulates the
// probe stream into per-rank timelines, per-link utilization buckets,
// injection-queue telemetry, and the dependency records the
// critical-path walk consumes. A Recorder belongs to one run; it is
// driven from that run's single-threaded kernel and must not be shared
// between concurrent simulations (give each sweep point its own).
type Recorder struct {
	bucket sim.Duration

	// maxSegs, when positive, caps the total retained timeline
	// segments and collective spans across all ranks; the overflow is
	// counted, never silently discarded.
	maxSegs     int
	segsHeld    int
	droppedSegs int64

	ranks  map[int]*rankState
	links  map[int]*linkState
	inject map[int]*injectState
	faults []FaultEvent

	// collEnters tracks, per collective key, the member that entered
	// last — the rank the critical path blames for the collective's
	// synchronization cost.
	collEnters map[string]collEnter

	lastT sim.Time // latest timestamp seen (the run's extent)
}

// FaultEvent is one recorded fault activation.
type FaultEvent struct {
	T      sim.Time
	Kind   string
	Detail string
}

type rankState struct {
	id    int
	segs  []Segment
	colls []CollSpan

	// Open block, if any.
	blocked    bool
	blockStart sim.Time
	blockKind  SegKind
	blockKey   string

	collDepth int

	// Last receive match, for attributing the wait that it released.
	matchOK    bool
	matchT     sim.Time
	matchPeer  int
	matchSendT sim.Time

	compute  sim.Duration
	noise    sim.Duration
	p2pWait  sim.Duration
	collWait sim.Duration

	sends     int64
	sentBytes int64
	collOps   int64

	done   sim.Time
	doneOK bool
}

type linkState struct {
	busy    sim.Duration
	bytes   int64
	msgs    int64
	buckets []sim.Duration // busy time per bucket
}

type injectState struct {
	msgs    int64
	bytes   int64
	waited  int64 // messages that queued at all
	wait    sim.Duration
	maxWait sim.Duration
}

type collEnter struct {
	lastRank int
	lastT    sim.Time
	members  int
}

// NewRecorder returns a recorder with the default link-telemetry
// bucket width and no segment cap.
func NewRecorder() *Recorder {
	return NewRecorderWith(DefaultBucket, 0)
}

// NewRecorderWith returns a recorder with an explicit bucket width
// (DefaultBucket if bucket <= 0) and a cap on retained timeline
// segments and collective spans (unbounded if maxSegs <= 0). Beyond
// the cap, segments are dropped and counted — totals and the profile
// stay exact, only the timeline views lose detail.
func NewRecorderWith(bucket sim.Duration, maxSegs int) *Recorder {
	if bucket <= 0 {
		bucket = DefaultBucket
	}
	return &Recorder{
		bucket:     bucket,
		maxSegs:    maxSegs,
		ranks:      make(map[int]*rankState),
		links:      make(map[int]*linkState),
		inject:     make(map[int]*injectState),
		collEnters: make(map[string]collEnter),
	}
}

// Bucket returns the link-telemetry bucket width.
func (rec *Recorder) Bucket() sim.Duration { return rec.bucket }

// DroppedSegments returns how many timeline segments and collective
// spans were discarded by the segment cap.
func (rec *Recorder) DroppedSegments() int64 { return rec.droppedSegs }

// Faults returns the recorded fault activations in order.
func (rec *Recorder) Faults() []FaultEvent { return rec.faults }

func (rec *Recorder) rank(id int) *rankState {
	rs, ok := rec.ranks[id]
	if !ok {
		rs = &rankState{id: id, matchPeer: -1}
		rec.ranks[id] = rs
	}
	return rs
}

func (rec *Recorder) see(t sim.Time) {
	if t > rec.lastT {
		rec.lastT = t
	}
}

// keepSeg reports whether another segment may be retained, counting
// the drop otherwise.
func (rec *Recorder) keepSeg() bool {
	if rec.maxSegs > 0 && rec.segsHeld >= rec.maxSegs {
		rec.droppedSegs++
		return false
	}
	rec.segsHeld++
	return true
}

// ProcBlock implements Probe: a rank suspended. Classification: a gate
// wait carries the "collective " reason with the key as detail; a p2p
// wait issued between CollEnter and CollExit belongs to the enclosing
// collective (a software algorithm's internal traffic); anything else
// is application-level p2p wait.
func (rec *Recorder) ProcBlock(rank int, reason, detail string, t sim.Time) {
	if rank < 0 {
		return
	}
	rec.see(t)
	rs := rec.rank(rank)
	rs.blocked = true
	rs.blockStart = t
	rs.blockKey = ""
	switch {
	case strings.HasPrefix(reason, "collective"):
		rs.blockKind = SegCollWait
		rs.blockKey = detail
	case rs.collDepth > 0:
		rs.blockKind = SegCollWait
	default:
		rs.blockKind = SegP2PWait
	}
}

// ProcUnblock implements Probe: a blocked rank resumed, closing the
// open wait segment.
func (rec *Recorder) ProcUnblock(rank int, t sim.Time) {
	if rank < 0 {
		return
	}
	rec.see(t)
	rs := rec.rank(rank)
	if !rs.blocked {
		return
	}
	rs.blocked = false
	d := t.Sub(rs.blockStart)
	seg := Segment{Kind: rs.blockKind, Start: rs.blockStart, End: t, Peer: -1, Key: rs.blockKey}
	switch rs.blockKind {
	case SegCollWait:
		rs.collWait += d
	default:
		rs.p2pWait += d
	}
	// Attribute the release to the message matched during the wait, if
	// any — the edge the critical path follows off this rank.
	if rs.matchOK && rs.matchT >= rs.blockStart && rs.matchT <= t {
		seg.Peer = rs.matchPeer
		seg.SendT = rs.matchSendT
	}
	if d > 0 && rec.keepSeg() {
		rs.segs = append(rs.segs, seg)
	}
}

// Compute implements Probe.
func (rec *Recorder) Compute(rank int, start sim.Time, d, noise sim.Duration) {
	if rank < 0 || d <= 0 {
		return
	}
	end := start.Add(d)
	rec.see(end)
	rs := rec.rank(rank)
	rs.compute += d - noise
	rs.noise += noise
	if rec.keepSeg() {
		rs.segs = append(rs.segs, Segment{Kind: SegCompute, Start: start, End: end, Peer: -1})
	}
}

// Send implements Probe.
func (rec *Recorder) Send(rank int, t sim.Time, peer, bytes, tag int, coll bool) {
	if rank < 0 {
		return
	}
	rec.see(t)
	rs := rec.rank(rank)
	rs.sends++
	rs.sentBytes += int64(bytes)
}

// Match implements Probe.
func (rec *Recorder) Match(rank int, t sim.Time, peer int, sendT sim.Time, bytes int, coll bool) {
	if rank < 0 {
		return
	}
	rec.see(t)
	rs := rec.rank(rank)
	rs.matchOK = true
	rs.matchT = t
	rs.matchPeer = peer
	rs.matchSendT = sendT
}

// CollEnter implements Probe.
func (rec *Recorder) CollEnter(rank int, t sim.Time, key, algo string) {
	if rank < 0 {
		return
	}
	rec.see(t)
	rs := rec.rank(rank)
	rs.collDepth++
	rs.collOps++
	if rec.keepSeg() {
		rs.colls = append(rs.colls, CollSpan{Key: key, Algo: algo, Enter: t, Exit: -1})
	}
	e := rec.collEnters[key]
	e.members++
	if e.members == 1 || t >= e.lastT {
		e.lastRank, e.lastT = rank, t
	}
	rec.collEnters[key] = e
}

// CollExit implements Probe.
func (rec *Recorder) CollExit(rank int, t sim.Time, key, algo string) {
	if rank < 0 {
		return
	}
	rec.see(t)
	rs := rec.rank(rank)
	if rs.collDepth > 0 {
		rs.collDepth--
	}
	// Close the innermost open span with this key (spans nest).
	for i := len(rs.colls) - 1; i >= 0; i-- {
		if rs.colls[i].Key == key && rs.colls[i].Exit < 0 {
			rs.colls[i].Exit = t
			break
		}
	}
}

// LinkBusy implements Probe: accumulate the reservation into the
// link's total and its time buckets.
func (rec *Recorder) LinkBusy(link int, start sim.Time, busy sim.Duration, bytes int) {
	if busy <= 0 {
		return
	}
	end := start.Add(busy)
	rec.see(end)
	ls, ok := rec.links[link]
	if !ok {
		ls = &linkState{}
		rec.links[link] = ls
	}
	ls.busy += busy
	ls.bytes += int64(bytes)
	ls.msgs++
	// Spread the busy interval over the buckets it overlaps.
	b0 := int(sim.Duration(start) / rec.bucket)
	b1 := int(sim.Duration(end-1) / rec.bucket)
	for len(ls.buckets) <= b1 {
		ls.buckets = append(ls.buckets, 0)
	}
	for b := b0; b <= b1; b++ {
		lo := sim.Time(sim.Duration(b) * rec.bucket)
		hi := lo.Add(rec.bucket)
		s, e := start, end
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		ls.buckets[b] += e.Sub(s)
	}
}

// Inject implements Probe.
func (rec *Recorder) Inject(node int, t sim.Time, wait sim.Duration, bytes int) {
	rec.see(t)
	is, ok := rec.inject[node]
	if !ok {
		is = &injectState{}
		rec.inject[node] = is
	}
	is.msgs++
	is.bytes += int64(bytes)
	if wait > 0 {
		is.waited++
		is.wait += wait
		if wait > is.maxWait {
			is.maxWait = wait
		}
	}
}

// Fault implements Probe.
func (rec *Recorder) Fault(t sim.Time, kind, detail string) {
	rec.see(t)
	rec.faults = append(rec.faults, FaultEvent{T: t, Kind: kind, Detail: detail})
}

// RankDone implements Probe.
func (rec *Recorder) RankDone(rank int, t sim.Time) {
	if rank < 0 {
		return
	}
	rec.see(t)
	rs := rec.rank(rank)
	rs.done = t
	rs.doneOK = true
}

// NumRanks returns the number of ranks observed.
func (rec *Recorder) NumRanks() int { return len(rec.ranks) }

// Segments returns one rank's timeline segments in time order (nil for
// an unobserved rank). The slice is the recorder's own; callers must
// not mutate it.
func (rec *Recorder) Segments(rank int) []Segment {
	if rs, ok := rec.ranks[rank]; ok {
		return rs.segs
	}
	return nil
}

// CollSpans returns one rank's collective spans in entry order.
func (rec *Recorder) CollSpans(rank int) []CollSpan {
	if rs, ok := rec.ranks[rank]; ok {
		return rs.colls
	}
	return nil
}

// Extent returns the latest timestamp the recorder observed.
func (rec *Recorder) Extent() sim.Time { return rec.lastT }

// Observed reports whether the recorder saw any probe event at all. A
// run that aborts before its first event (a kill at t=0, a config that
// spawns no ranks) leaves the recorder empty; exporters mark their
// output as intentionally empty in that case, so a blank artifact is
// distinguishable from a lost one.
func (rec *Recorder) Observed() bool {
	return len(rec.ranks) > 0 || len(rec.links) > 0 ||
		len(rec.inject) > 0 || len(rec.faults) > 0 || rec.lastT > 0
}
