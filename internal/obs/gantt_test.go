package obs

import (
	"strings"
	"testing"
)

// TestGanttRender pins the fixed-width rendering: scaling to the
// latest end, later spans overwriting earlier ones, minimum one cell
// per span, and the axis line.
func TestGanttRender(t *testing.T) {
	rows := []GanttRow{
		{Name: "job 1", Spans: []Span{
			{Label: "q", Start: 0, End: 5},
			{Label: "h", Start: 5, End: 20},
		}},
		{Name: "job 22", Spans: []Span{
			{Label: "h", Start: 10, End: 20},
			{Label: "x", Start: 10, End: 15}, // abort overwrites the run's head
		}},
		{Name: "idle", Spans: nil},
	}
	got := Gantt(rows, 20)
	want := strings.Join([]string{
		"job 1  |qqqqqhhhhhhhhhhhhhhh|",
		"job 22 |..........xxxxxhhhhh|",
		"idle   |....................|",
		"        0                  20",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("gantt render:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestGanttShortSpanVisible: a span far shorter than one cell still
// paints one cell.
func TestGanttShortSpanVisible(t *testing.T) {
	rows := []GanttRow{{Name: "r", Spans: []Span{
		{Label: "b", Start: 0, End: 100},
		{Label: "s", Start: 50, End: 50.001},
	}}}
	got := Gantt(rows, 10)
	if !strings.Contains(got, "s") {
		t.Fatalf("sub-cell span invisible:\n%s", got)
	}
}

// TestGanttDefaults: non-positive width falls back to 64 and an
// all-empty chart still renders an axis.
func TestGanttDefaults(t *testing.T) {
	got := Gantt([]GanttRow{{Name: "a"}}, 0)
	line := strings.SplitN(got, "\n", 2)[0]
	if want := "a |" + strings.Repeat(".", 64) + "|"; line != want {
		t.Fatalf("default-width row %q, want %q", line, want)
	}
	if !strings.Contains(got, "0") {
		t.Fatalf("missing axis:\n%s", got)
	}
}

// TestGanttReversedSpanIgnored: End < Start is skipped rather than
// painted or panicking.
func TestGanttReversedSpanIgnored(t *testing.T) {
	got := Gantt([]GanttRow{{Name: "r", Spans: []Span{
		{Label: "z", Start: 9, End: 3},
		{Label: "k", Start: 0, End: 10},
	}}}, 10)
	if strings.Contains(got, "z") {
		t.Fatalf("reversed span painted:\n%s", got)
	}
	if !strings.Contains(got, "kkkkkkkkkk") {
		t.Fatalf("valid span missing:\n%s", got)
	}
}
