package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"bgpsim/internal/sim"
)

// us is a convenient microsecond literal for synthetic streams.
const usT = sim.Microsecond

// feedTwoRanks drives a recorder with a minimal two-rank exchange:
// rank 1 computes 50us then sends; rank 0 blocks at 10us and is
// released by the match at 60us, then both finish at 80us.
func feedTwoRanks(rec *Recorder) {
	rec.Compute(1, 0, 50*usT, 0)
	rec.ProcBlock(0, "MPI_Recv", "src 1", sim.Time(10*usT))
	rec.Send(1, sim.Time(50*usT), 0, 1024, 7, false)
	rec.Match(0, sim.Time(60*usT), 1, sim.Time(50*usT), 1024, false)
	rec.ProcUnblock(0, sim.Time(60*usT))
	rec.Compute(0, sim.Time(60*usT), 20*usT, 0)
	rec.Compute(1, sim.Time(50*usT), 30*usT, 0)
	rec.RankDone(0, sim.Time(80*usT))
	rec.RankDone(1, sim.Time(80*usT))
}

func TestRecorderSegmentsAndClassification(t *testing.T) {
	rec := NewRecorder()
	feedTwoRanks(rec)

	segs := rec.Segments(0)
	if len(segs) != 2 {
		t.Fatalf("rank 0: %d segments, want 2", len(segs))
	}
	w := segs[0]
	if w.Kind != SegP2PWait || w.Start != sim.Time(10*usT) || w.End != sim.Time(60*usT) {
		t.Errorf("wait segment: %+v", w)
	}
	if w.Peer != 1 || w.SendT != sim.Time(50*usT) {
		t.Errorf("release attribution: peer=%d sendT=%d, want 1/%d", w.Peer, w.SendT, 50*usT)
	}
	if segs[1].Kind != SegCompute {
		t.Errorf("second segment kind = %v, want compute", segs[1].Kind)
	}

	// A block with the "collective" reason, or any block inside
	// CollEnter..CollExit, classifies as collective wait.
	rec2 := NewRecorder()
	rec2.ProcBlock(0, "collective", "bar:1", sim.Time(0))
	rec2.ProcUnblock(0, sim.Time(5*usT))
	rec2.CollEnter(1, sim.Time(0), "ar:1", "allreduce/ring")
	rec2.ProcBlock(1, "MPI_Recv", "", sim.Time(1*usT))
	rec2.ProcUnblock(1, sim.Time(4*usT))
	rec2.CollExit(1, sim.Time(5*usT), "ar:1", "allreduce/ring")
	if got := rec2.Segments(0)[0]; got.Kind != SegCollWait || got.Key != "bar:1" {
		t.Errorf("gate wait: %+v", got)
	}
	if got := rec2.Segments(1)[0]; got.Kind != SegCollWait {
		t.Errorf("in-collective p2p wait classified as %v, want coll-wait", got.Kind)
	}
	spans := rec2.CollSpans(1)
	if len(spans) != 1 || spans[0].Exit != sim.Time(5*usT) || spans[0].Algo != "allreduce/ring" {
		t.Errorf("coll spans: %+v", spans)
	}
}

func TestProfileTotalsAndNoise(t *testing.T) {
	rec := NewRecorder()
	feedTwoRanks(rec)
	rec.Inject(3, sim.Time(55*usT), 2*usT, 1024)
	rec.Inject(3, sim.Time(56*usT), 0, 512)

	p := rec.Profile()
	if len(p.Ranks) != 2 {
		t.Fatalf("%d rank profiles, want 2", len(p.Ranks))
	}
	r0, r1 := p.Ranks[0], p.Ranks[1]
	if r0.Rank != 0 || r1.Rank != 1 {
		t.Fatalf("rank order: %d, %d", r0.Rank, r1.Rank)
	}
	if r0.Compute != 20*usT || r0.P2PWait != 50*usT || r0.Total != 80*usT {
		t.Errorf("rank 0 profile: %+v", r0)
	}
	if r1.Compute != 80*usT || r1.Sends != 1 || r1.SentBytes != 1024 {
		t.Errorf("rank 1 profile: %+v", r1)
	}
	if r0.Other != 80*usT-20*usT-50*usT {
		t.Errorf("rank 0 other = %v", r0.Other)
	}
	if p.InjectMsgs != 2 || p.InjectQueued != 1 || p.InjectMaxWait != 2*usT {
		t.Errorf("injection telemetry: %+v", p)
	}
	if p.Elapsed() != 80*usT {
		t.Errorf("elapsed = %v", p.Elapsed())
	}

	// Noise is split out of the compute bucket.
	rec2 := NewRecorder()
	rec2.Compute(0, 0, 10*usT, 3*usT)
	rec2.RankDone(0, sim.Time(10*usT))
	rp := rec2.Profile().Ranks[0]
	if rp.Compute != 7*usT || rp.Noise != 3*usT {
		t.Errorf("noise split: compute=%v noise=%v", rp.Compute, rp.Noise)
	}
}

func TestSegmentCapCountsDrops(t *testing.T) {
	rec := NewRecorderWith(0, 3)
	for i := 0; i < 10; i++ {
		rec.Compute(0, sim.Time(i*10)*sim.Time(usT), 5*usT, 0)
	}
	rec.RankDone(0, sim.Time(100*usT))
	if got := len(rec.Segments(0)); got != 3 {
		t.Errorf("%d segments retained, want 3", got)
	}
	if rec.DroppedSegments() != 7 {
		t.Errorf("dropped = %d, want 7", rec.DroppedSegments())
	}
	// Totals stay exact despite the drops.
	if p := rec.Profile(); p.Ranks[0].Compute != 50*usT || p.DroppedSegments != 7 {
		t.Errorf("profile after drops: %+v", p.Ranks[0])
	}
}

func TestCriticalPathWalksAcrossRanks(t *testing.T) {
	rec := NewRecorder()
	feedTwoRanks(rec)
	cp := rec.CriticalPath()
	// Both ranks finish at 80us; the tie keeps the lowest rank.
	if cp.EndRank != 0 || cp.Total != 80*usT {
		t.Fatalf("end=%d total=%v", cp.EndRank, cp.Total)
	}
	if cp.Hops != 1 {
		t.Errorf("hops = %d, want 1 (wait released by rank 1)", cp.Hops)
	}
	// Buckets tile the whole path: no overlap, no gap.
	if sum := cp.Compute + cp.P2PWait + cp.CollWait + cp.Other; sum != cp.Total {
		t.Errorf("buckets sum to %v, want %v", sum, cp.Total)
	}
	// The chain: rank 0's tail compute (20us) + transfer since the send
	// (10us) + rank 1's compute up to the send (50us).
	if cp.Compute != 70*usT || cp.P2PWait != 10*usT {
		t.Errorf("compute=%v p2p=%v, want 70us/10us", cp.Compute, cp.P2PWait)
	}
	if len(cp.ByRank) != 2 || cp.ByRank[0].Rank != 1 || cp.ByRank[0].Time != 50*usT {
		t.Errorf("rank shares: %+v", cp.ByRank)
	}
	var sum sim.Duration
	for _, s := range cp.ByRank {
		sum += s.Time
	}
	if sum != cp.Total {
		t.Errorf("rank shares sum to %v, want %v", sum, cp.Total)
	}
}

func TestCriticalPathCollectiveHop(t *testing.T) {
	rec := NewRecorder()
	// Rank 1 computes 40us and enters the collective last; rank 0
	// enters at 5us and gates until 45us.
	rec.CollEnter(0, sim.Time(5*usT), "bar:1", "barrier/tree")
	rec.ProcBlock(0, "collective", "bar:1", sim.Time(5*usT))
	rec.Compute(1, 0, 40*usT, 0)
	rec.CollEnter(1, sim.Time(40*usT), "bar:1", "barrier/tree")
	rec.ProcUnblock(0, sim.Time(45*usT))
	rec.CollExit(0, sim.Time(45*usT), "bar:1", "barrier/tree")
	rec.CollExit(1, sim.Time(45*usT), "bar:1", "barrier/tree")
	rec.RankDone(0, sim.Time(46*usT))
	rec.RankDone(1, sim.Time(45*usT))

	cp := rec.CriticalPath()
	if cp.EndRank != 0 || cp.Hops != 1 {
		t.Fatalf("end=%d hops=%d, want rank 0 with one hop to the last enterer", cp.EndRank, cp.Hops)
	}
	// 40us of rank 1 compute + 5us of gate sync + 1us tail.
	if cp.Compute != 40*usT || cp.CollWait != 5*usT {
		t.Errorf("compute=%v collWait=%v", cp.Compute, cp.CollWait)
	}
	if cp.ByRank[0].Rank != 1 || cp.ByRank[0].Time != 40*usT {
		t.Errorf("top share: %+v", cp.ByRank[0])
	}
}

func TestChromeTraceValidAndDeterministic(t *testing.T) {
	feed := func() *Recorder {
		rec := NewRecorder()
		feedTwoRanks(rec)
		rec.CollEnter(0, sim.Time(70*usT), `k"ey`, "allreduce/ring")
		rec.CollExit(0, sim.Time(75*usT), `k"ey`, "allreduce/ring")
		rec.Fault(sim.Time(30*usT), "link-down", "n3.x+ until 1ms")
		return rec
	}
	var a, b bytes.Buffer
	if err := feed().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := feed().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical recordings serialized differently")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	kinds := map[string]int{}
	for _, e := range doc.TraceEvents {
		kinds[e["ph"].(string)]++
	}
	if kinds["M"] != 2 || kinds["i"] != 1 || kinds["X"] < 4 {
		t.Errorf("event mix: %v", kinds)
	}
}

func TestLinkTelemetryAndCSV(t *testing.T) {
	rec := NewRecorderWith(10*usT, 0)
	// One reservation spanning two buckets, one inside a single bucket.
	rec.LinkBusy(7, sim.Time(5*usT), 10*usT, 4096)
	rec.LinkBusy(3, sim.Time(12*usT), 2*usT, 512)
	if rec.LinkCount() != 2 {
		t.Fatalf("link count = %d", rec.LinkCount())
	}
	top := rec.BusiestLinks(1)
	if len(top) != 1 || top[0].Link != 7 || top[0].Busy != 10*usT {
		t.Errorf("busiest: %+v", top)
	}
	var b strings.Builder
	if err := rec.WriteLinkCSV(&b, TorusLinkName); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV lines: %d\n%s", len(lines), out)
	}
	// Link 3 = node 0, dim 1, positive; link 7 = node 1, dim 0, positive.
	if !strings.HasPrefix(lines[2], "n0.y+,") || !strings.HasPrefix(lines[3], "n1.x+,") {
		t.Errorf("row labels:\n%s", out)
	}
	// Link 7's 10us reservation splits 5us/5us over buckets 0 and 1.
	if !strings.Contains(lines[3], ",0.5000,0.5000") {
		t.Errorf("bucket split: %s", lines[3])
	}
}

func TestTorusLinkName(t *testing.T) {
	cases := map[int]string{
		0:   "n0.x-",
		1:   "n0.x+",
		4:   "n0.z-",
		11:  "n1.z+",
		252: "n42.x-",
	}
	for idx, want := range cases {
		if got := TorusLinkName(idx); got != want {
			t.Errorf("TorusLinkName(%d) = %q, want %q", idx, got, want)
		}
	}
}

// TestEmptyRecorderExports: a recorder that observed nothing still
// exports well-formed artifacts that say so explicitly — a run that
// produced no events must be distinguishable from a lost artifact.
func TestEmptyRecorderExports(t *testing.T) {
	rec := NewRecorder()
	if rec.Observed() {
		t.Error("fresh recorder claims observations")
	}
	var trace bytes.Buffer
	if err := rec.WriteChromeTrace(&trace); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		Events []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%s", err, trace.Bytes())
	}
	found := false
	for _, ev := range doc.Events {
		if ev["name"] == "no events recorded" {
			found = true
		}
	}
	if !found {
		t.Errorf("empty trace lacks the no-events marker: %s", trace.Bytes())
	}

	var csv bytes.Buffer
	if err := rec.WriteLinkCSV(&csv, nil); err != nil {
		t.Fatalf("WriteLinkCSV: %v", err)
	}
	if !strings.Contains(csv.String(), "# no link traffic recorded") {
		t.Errorf("empty link CSV lacks the no-traffic marker:\n%s", csv.String())
	}
	if !strings.Contains(csv.String(), "link,busy_us,bytes,msgs") {
		t.Errorf("empty link CSV lost its header:\n%s", csv.String())
	}

	// Any observation flips Observed, and the markers disappear.
	rec.Compute(0, 0, 10*usT, 0)
	rec.RankDone(0, sim.Time(10*usT))
	if !rec.Observed() {
		t.Error("recorder with a rank segment claims no observations")
	}
	trace.Reset()
	if err := rec.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(trace.String(), "no events recorded") {
		t.Error("non-empty trace still carries the empty marker")
	}
}
