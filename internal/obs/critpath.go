package obs

import (
	"fmt"
	"io"
	"sort"

	"bgpsim/internal/sim"
)

// CritPath is the result of a critical-path walk: a backward traversal
// from the last-finishing rank through the recorded dependency graph —
// compute segments stay on the rank, a released p2p wait jumps to the
// sender at its send time, a collective gate jumps to the member that
// entered last — attributing every span of end-to-end time to a
// bucket and to the rank that spent it.
type CritPath struct {
	EndRank int          // the rank that finished last (the walk's start)
	Total   sim.Duration // end-to-end time the walk covers

	Compute  sim.Duration
	P2PWait  sim.Duration
	CollWait sim.Duration
	Other    sim.Duration // gaps: software overheads, fixed advances

	Hops  int // rank-to-rank jumps along the path
	Steps int // segments visited

	// ByRank attributes path time to the rank on which it was spent,
	// in descending share order.
	ByRank []RankShare

	// Truncated is set if the walk hit its safety cap before reaching
	// time zero (pathological recordings only).
	Truncated bool
}

// RankShare is one rank's share of the critical path.
type RankShare struct {
	Rank int
	Time sim.Duration
}

// critPathMaxSteps bounds the walk; a simulation records far fewer
// segments than this unless something is wrong.
const critPathMaxSteps = 1 << 24

// CriticalPath walks the dependency graph backwards from the
// last-finishing rank. It needs the per-rank timelines, so run it on a
// recorder whose segment cap did not drop (see DroppedSegments); with
// drops the attribution is a lower bound.
func (rec *Recorder) CriticalPath() *CritPath {
	cp := &CritPath{EndRank: -1}
	var endT sim.Time
	ids := make([]int, 0, len(rec.ranks))
	for id := range rec.ranks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		rs := rec.ranks[id]
		t := rs.done
		if !rs.doneOK {
			t = rec.lastT
		}
		if cp.EndRank < 0 || t > endT {
			cp.EndRank, endT = id, t
		}
	}
	if cp.EndRank < 0 {
		return cp
	}
	cp.Total = sim.Duration(endT)

	byRank := map[int]sim.Duration{}
	cur, t := cp.EndRank, endT
	for t > 0 {
		if cp.Steps >= critPathMaxSteps {
			cp.Truncated = true
			break
		}
		cp.Steps++
		seg, ok := rec.segmentBefore(cur, t)
		if !ok {
			// No recorded activity before t on this rank: startup or
			// untracked time.
			cp.Other += sim.Duration(t)
			byRank[cur] += sim.Duration(t)
			break
		}
		if seg.End < t {
			// Gap between segments: overheads, advances.
			gap := t.Sub(seg.End)
			cp.Other += gap
			byRank[cur] += gap
			t = seg.End
			continue
		}
		// The walk resumes at `next`, and exactly [next, t) is
		// attributed to this segment — resuming anywhere else would
		// either re-count the overlap on both ranks (a send posted
		// after the receiver already blocked) or leave a gap.
		next := seg.Start
		nextRank := cur
		switch seg.Kind {
		case SegP2PWait:
			if seg.Peer >= 0 && seg.SendT < t {
				nextRank, next = seg.Peer, seg.SendT
				cp.Hops++
			}
		case SegCollWait:
			if e, ok := rec.collEnters[seg.Key]; ok && seg.Key != "" && e.lastT < t && e.lastRank != cur {
				nextRank, next = e.lastRank, e.lastT
				cp.Hops++
			}
		}
		span := t.Sub(next)
		byRank[cur] += span
		switch seg.Kind {
		case SegCompute:
			cp.Compute += span
		case SegP2PWait:
			cp.P2PWait += span
		case SegCollWait:
			cp.CollWait += span
		}
		if nextRank != cur {
			cur, t = nextRank, next
		} else {
			t = next
		}
	}
	for r, d := range byRank {
		cp.ByRank = append(cp.ByRank, RankShare{Rank: r, Time: d})
	}
	sort.Slice(cp.ByRank, func(i, j int) bool {
		if cp.ByRank[i].Time != cp.ByRank[j].Time {
			return cp.ByRank[i].Time > cp.ByRank[j].Time
		}
		return cp.ByRank[i].Rank < cp.ByRank[j].Rank
	})
	return cp
}

// segmentBefore returns the last segment of rank whose start is before
// t (the segment containing t, or the nearest one ending at or before
// it). Per-rank segments are recorded in ascending start order.
func (rec *Recorder) segmentBefore(rank int, t sim.Time) (Segment, bool) {
	rs, ok := rec.ranks[rank]
	if !ok || len(rs.segs) == 0 {
		return Segment{}, false
	}
	// First segment with Start >= t; the one before it is the answer.
	i := sort.Search(len(rs.segs), func(i int) bool { return rs.segs[i].Start >= t })
	if i == 0 {
		return Segment{}, false
	}
	return rs.segs[i-1], true
}

// WriteSummary renders the walk as a short text block.
func (cp *CritPath) WriteSummary(w io.Writer) error {
	if cp.EndRank < 0 {
		_, err := fmt.Fprintln(w, "critical path: no ranks observed")
		return err
	}
	if _, err := fmt.Fprintf(w,
		"critical path: %.1f us ending on rank %d (%d segments, %d rank hops)\n",
		cp.Total.Microseconds(), cp.EndRank, cp.Steps, cp.Hops); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  compute %.1f us (%s), p2p-wait %.1f us (%s), coll-wait %.1f us (%s), other %.1f us (%s)\n",
		cp.Compute.Microseconds(), pct(cp.Compute, cp.Total),
		cp.P2PWait.Microseconds(), pct(cp.P2PWait, cp.Total),
		cp.CollWait.Microseconds(), pct(cp.CollWait, cp.Total),
		cp.Other.Microseconds(), pct(cp.Other, cp.Total)); err != nil {
		return err
	}
	top := cp.ByRank
	if len(top) > 5 {
		top = top[:5]
	}
	for _, s := range top {
		if _, err := fmt.Fprintf(w, "  rank %-5d carries %.1f us (%s)\n",
			s.Rank, s.Time.Microseconds(), pct(s.Time, cp.Total)); err != nil {
			return err
		}
	}
	if cp.Truncated {
		if _, err := fmt.Fprintln(w, "  (walk truncated at step cap)"); err != nil {
			return err
		}
	}
	return nil
}
