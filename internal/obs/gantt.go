package obs

import (
	"fmt"
	"strings"
)

// Span is one labelled interval on a Gantt row. Start and End are in
// arbitrary (but consistent) units; Label's first rune fills the span's
// cells in the rendered chart.
type Span struct {
	Label string
	Start float64
	End   float64
}

// GanttRow is one resource (a job, a rank, a machine slice) and its
// occupancy spans.
type GanttRow struct {
	Name  string
	Spans []Span
}

// Gantt renders rows as a fixed-width text chart: one line per row,
// name column on the left, time axis scaled so the latest End lands in
// the last of width cells. Overlapping spans within a row overwrite
// left to right (later spans in the slice win), which reads naturally
// for retry timelines where an abort span is appended after the run
// span it truncates. Empty cells render as '.'.
func Gantt(rows []GanttRow, width int) string {
	if width <= 0 {
		width = 64
	}
	var maxEnd float64
	nameW := 0
	for _, r := range rows {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
		for _, s := range r.Spans {
			if s.End > maxEnd {
				maxEnd = s.End
			}
		}
	}
	if maxEnd <= 0 {
		maxEnd = 1
	}
	scale := float64(width) / maxEnd
	var b strings.Builder
	for _, r := range rows {
		cells := make([]byte, width)
		for i := range cells {
			cells[i] = '.'
		}
		for _, s := range r.Spans {
			if s.End < s.Start {
				continue
			}
			fill := byte('#')
			if s.Label != "" {
				fill = s.Label[0]
			}
			lo := int(s.Start * scale)
			hi := int(s.End * scale)
			if hi <= lo {
				hi = lo + 1 // every span is visible, however short
			}
			if hi > width {
				hi = width
			}
			for i := lo; i < hi && i >= 0; i++ {
				cells[i] = fill
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, r.Name, cells)
	}
	fmt.Fprintf(&b, "%-*s  0%*s\n", nameW, "", width, fmt.Sprintf("%.3g", maxEnd))
	return b.String()
}
