package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"bgpsim/internal/sim"
)

// WriteLinkCSV writes the per-link telemetry as CSV: one row per link
// that carried traffic, with total busy time, bytes, messages, and the
// link's utilization fraction in each time bucket (bucket width =
// Bucket()) — a heatmap with links as rows and time as columns. The
// optional name function labels links (dense link index otherwise).
// Rows are emitted in ascending link order, so output is
// deterministic.
func (rec *Recorder) WriteLinkCSV(w io.Writer, name func(link int) string) error {
	bw := bufio.NewWriter(w)
	maxBuckets := 0
	for _, ls := range rec.links {
		if len(ls.buckets) > maxBuckets {
			maxBuckets = len(ls.buckets)
		}
	}
	if _, err := fmt.Fprintf(bw, "# bucket width: %v\n", rec.bucket); err != nil {
		return err
	}
	if len(rec.links) == 0 {
		// State the emptiness explicitly (no traffic observed — e.g.
		// shared-memory-only runs, or a run aborted before any message)
		// so a header-only CSV is distinguishable from a lost artifact.
		bw.WriteString("# no link traffic recorded\n")
	}
	bw.WriteString("link,busy_us,bytes,msgs")
	for b := 0; b < maxBuckets; b++ {
		fmt.Fprintf(bw, ",u%d", b)
	}
	bw.WriteByte('\n')
	for _, link := range sortedKeys(rec.links) {
		ls := rec.links[link]
		label := fmt.Sprintf("%d", link)
		if name != nil {
			label = name(link)
		}
		fmt.Fprintf(bw, "%s,%.3f,%d,%d", label, ls.busy.Microseconds(), ls.bytes, ls.msgs)
		for b := 0; b < maxBuckets; b++ {
			u := 0.0
			if b < len(ls.buckets) {
				u = float64(ls.buckets[b]) / float64(rec.bucket)
			}
			fmt.Fprintf(bw, ",%.4f", u)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// LinkCount returns how many distinct links carried traffic.
func (rec *Recorder) LinkCount() int { return len(rec.links) }

// BusiestLinks returns the n links with the most busy time, descending
// (ties broken by ascending link index).
func (rec *Recorder) BusiestLinks(n int) []LinkLoad {
	out := make([]LinkLoad, 0, len(rec.links))
	for _, link := range sortedKeys(rec.links) {
		ls := rec.links[link]
		out = append(out, LinkLoad{Link: link, Busy: ls.busy, Bytes: ls.bytes, Msgs: ls.msgs})
	}
	// sortedKeys gives ascending link order; the stable sort by busy
	// time preserves it on ties, so the result is deterministic.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Busy > out[j].Busy })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// LinkLoad is one link's aggregate traffic.
type LinkLoad struct {
	Link  int
	Busy  sim.Duration
	Bytes int64
	Msgs  int64
}

// TorusLinkName names a dense torus link index using the network
// layer's encoding (node*6 + dim*2 + direction): "n42.y+" is the link
// leaving node 42 in the positive Y direction. Pass it to WriteLinkCSV
// for readable row labels.
func TorusLinkName(idx int) string {
	node := idx / 6
	dim := (idx % 6) / 2
	dir := byte('-')
	if idx%2 == 1 {
		dir = '+'
	}
	return "n" + strconv.Itoa(node) + "." + string("xyz"[dim]) + string(dir)
}
