package obs

import (
	"fmt"
	"io"
	"sort"

	"bgpsim/internal/sim"
)

// RankProfile is one rank's time decomposition.
type RankProfile struct {
	Rank  int
	Total sim.Duration // when the rank's program returned

	Compute  sim.Duration
	P2PWait  sim.Duration
	CollWait sim.Duration
	Noise    sim.Duration
	// Other is the unattributed remainder: software overheads,
	// fixed-cost Advance sleeps, rendezvous handshakes.
	Other sim.Duration

	Sends     int64
	SentBytes int64
	CollOps   int64
}

// Profile is the per-rank time decomposition of one run.
type Profile struct {
	Ranks []RankProfile // ascending rank order

	// Injection-queue telemetry, aggregated over nodes.
	InjectMsgs    int64
	InjectQueued  int64 // messages that waited at all
	InjectWait    sim.Duration
	InjectMaxWait sim.Duration

	DroppedSegments int64

	// PeakRankStateBytes is the modeled peak per-rank simulator state
	// (rank record plus queued unmatched messages and posted receives)
	// of the run, filled in by the mpi layer. Zero when unavailable.
	PeakRankStateBytes int64
}

// Profile builds the per-rank time decomposition from the recorded
// stream. Ranks that never finished (aborted runs) use their last
// observed event as the total.
func (rec *Recorder) Profile() *Profile {
	p := &Profile{DroppedSegments: rec.droppedSegs}
	ids := make([]int, 0, len(rec.ranks))
	for id := range rec.ranks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		rs := rec.ranks[id]
		total := rs.done
		if !rs.doneOK {
			total = rec.lastT
		}
		rp := RankProfile{
			Rank: id, Total: sim.Duration(total),
			Compute: rs.compute, P2PWait: rs.p2pWait, CollWait: rs.collWait,
			Noise: rs.noise,
			Sends: rs.sends, SentBytes: rs.sentBytes, CollOps: rs.collOps,
		}
		if other := rp.Total - rp.Compute - rp.P2PWait - rp.CollWait - rp.Noise; other > 0 {
			rp.Other = other
		}
		p.Ranks = append(p.Ranks, rp)
	}
	for _, node := range sortedKeys(rec.inject) {
		is := rec.inject[node]
		p.InjectMsgs += is.msgs
		p.InjectQueued += is.waited
		p.InjectWait += is.wait
		if is.maxWait > p.InjectMaxWait {
			p.InjectMaxWait = is.maxWait
		}
	}
	return p
}

func sortedKeys[V any](m map[int]V) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// Elapsed returns the latest rank finish time.
func (p *Profile) Elapsed() sim.Duration {
	var max sim.Duration
	for _, r := range p.Ranks {
		if r.Total > max {
			max = r.Total
		}
	}
	return max
}

// pct formats d as a percentage of total.
func pct(d, total sim.Duration) string {
	if total <= 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(d)/float64(total))
}

// maxRankRows is the largest rank count printed rank-by-rank; bigger
// runs print the summary rows only.
const maxRankRows = 32

// WriteTable renders the profile as an aligned text table: one row per
// rank (up to maxRankRows), then min / mean / max summary rows and the
// injection-queue telemetry.
func (p *Profile) WriteTable(w io.Writer) error {
	if len(p.Ranks) == 0 {
		_, err := fmt.Fprintln(w, "profile: no ranks observed")
		return err
	}
	elapsed := p.Elapsed()
	if _, err := fmt.Fprintf(w, "%-6s %12s %9s %12s %9s %12s %9s %12s %12s\n",
		"rank", "compute", "", "p2p-wait", "", "coll-wait", "", "noise", "other"); err != nil {
		return err
	}
	row := func(name string, r RankProfile) error {
		_, err := fmt.Fprintf(w, "%-6s %12.1f %9s %12.1f %9s %12.1f %9s %12.1f %12.1f\n",
			name,
			r.Compute.Microseconds(), pct(r.Compute, r.Total),
			r.P2PWait.Microseconds(), pct(r.P2PWait, r.Total),
			r.CollWait.Microseconds(), pct(r.CollWait, r.Total),
			r.Noise.Microseconds(), r.Other.Microseconds())
		return err
	}
	if len(p.Ranks) <= maxRankRows {
		for _, r := range p.Ranks {
			if err := row(fmt.Sprintf("%d", r.Rank), r); err != nil {
				return err
			}
		}
	}
	min, max, mean := p.summary()
	if err := row("min", min); err != nil {
		return err
	}
	if err := row("mean", mean); err != nil {
		return err
	}
	if err := row("max", max); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "elapsed %.1f us over %d ranks (percentages of each rank's own total)\n",
		elapsed.Microseconds(), len(p.Ranks)); err != nil {
		return err
	}
	if p.InjectMsgs > 0 {
		meanWait := sim.Duration(0)
		if p.InjectQueued > 0 {
			meanWait = p.InjectWait / sim.Duration(p.InjectQueued)
		}
		if _, err := fmt.Fprintf(w, "injection: %d msgs, %d queued, mean queue %.2f us, max %.2f us\n",
			p.InjectMsgs, p.InjectQueued, meanWait.Microseconds(), p.InjectMaxWait.Microseconds()); err != nil {
			return err
		}
	}
	if p.PeakRankStateBytes > 0 {
		if _, err := fmt.Fprintf(w, "peak rank state: %d bytes\n", p.PeakRankStateBytes); err != nil {
			return err
		}
	}
	if p.DroppedSegments > 0 {
		if _, err := fmt.Fprintf(w, "warning: %d timeline segments dropped (raise the recorder cap)\n",
			p.DroppedSegments); err != nil {
			return err
		}
	}
	return nil
}

// summary returns the field-wise min, max, and mean rank profiles.
func (p *Profile) summary() (min, max, mean RankProfile) {
	min, max = p.Ranks[0], p.Ranks[0]
	var n = sim.Duration(len(p.Ranks))
	for _, r := range p.Ranks {
		mean.Total += r.Total
		mean.Compute += r.Compute
		mean.P2PWait += r.P2PWait
		mean.CollWait += r.CollWait
		mean.Noise += r.Noise
		mean.Other += r.Other
		minD := func(a *sim.Duration, b sim.Duration) {
			if b < *a {
				*a = b
			}
		}
		maxD := func(a *sim.Duration, b sim.Duration) {
			if b > *a {
				*a = b
			}
		}
		minD(&min.Total, r.Total)
		minD(&min.Compute, r.Compute)
		minD(&min.P2PWait, r.P2PWait)
		minD(&min.CollWait, r.CollWait)
		minD(&min.Noise, r.Noise)
		minD(&min.Other, r.Other)
		maxD(&max.Total, r.Total)
		maxD(&max.Compute, r.Compute)
		maxD(&max.P2PWait, r.P2PWait)
		maxD(&max.CollWait, r.CollWait)
		maxD(&max.Noise, r.Noise)
		maxD(&max.Other, r.Other)
	}
	mean.Total /= n
	mean.Compute /= n
	mean.P2PWait /= n
	mean.CollWait /= n
	mean.Noise /= n
	mean.Other /= n
	return min, max, mean
}
