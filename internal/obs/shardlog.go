package obs

import (
	"sort"

	"bgpsim/internal/sim"
)

// probeKind discriminates the recorded hook of one shardEntry.
type probeKind uint8

const (
	pkProcBlock probeKind = iota
	pkProcUnblock
	pkCompute
	pkSend
	pkMatch
	pkCollEnter
	pkCollExit
	pkLinkBusy
	pkInject
	pkFault
	pkRankDone
)

// shardEntry is one recorded probe call. A single struct covers every
// hook; unused fields stay zero.
type shardEntry struct {
	kind probeKind
	t    sim.Time
	rank int // world rank; also carries link/node for LinkBusy/Inject

	peer  int
	bytes int
	tag   int
	coll  bool

	d     sim.Duration // Compute d, LinkBusy busy, Inject wait
	noise sim.Duration
	sendT sim.Time

	s1 string // reason / key / fault kind
	s2 string // detail / algo / fault detail
}

// ShardLog buffers the probe stream of one shard kernel so a sharded
// run can observe through per-shard recorders and merge them into the
// user's probe deterministically after the run. It implements Probe
// (and therefore sim.Probe). A ShardLog is used from a single shard
// goroutine at a time and needs no locking.
type ShardLog struct {
	entries []shardEntry
}

// NewShardLog returns an empty log.
func NewShardLog() *ShardLog { return &ShardLog{} }

func (l *ShardLog) add(e shardEntry) { l.entries = append(l.entries, e) }

// ProcBlock implements Probe.
func (l *ShardLog) ProcBlock(rank int, reason, detail string, t sim.Time) {
	l.add(shardEntry{kind: pkProcBlock, t: t, rank: rank, s1: reason, s2: detail})
}

// ProcUnblock implements Probe.
func (l *ShardLog) ProcUnblock(rank int, t sim.Time) {
	l.add(shardEntry{kind: pkProcUnblock, t: t, rank: rank})
}

// Compute implements Probe.
func (l *ShardLog) Compute(rank int, start sim.Time, d, noise sim.Duration) {
	l.add(shardEntry{kind: pkCompute, t: start, rank: rank, d: d, noise: noise})
}

// Send implements Probe.
func (l *ShardLog) Send(rank int, t sim.Time, peer, bytes, tag int, coll bool) {
	l.add(shardEntry{kind: pkSend, t: t, rank: rank, peer: peer, bytes: bytes, tag: tag, coll: coll})
}

// Match implements Probe.
func (l *ShardLog) Match(rank int, t sim.Time, peer int, sendT sim.Time, bytes int, coll bool) {
	l.add(shardEntry{kind: pkMatch, t: t, rank: rank, peer: peer, sendT: sendT, bytes: bytes, coll: coll})
}

// CollEnter implements Probe.
func (l *ShardLog) CollEnter(rank int, t sim.Time, key, algo string) {
	l.add(shardEntry{kind: pkCollEnter, t: t, rank: rank, s1: key, s2: algo})
}

// CollExit implements Probe.
func (l *ShardLog) CollExit(rank int, t sim.Time, key, algo string) {
	l.add(shardEntry{kind: pkCollExit, t: t, rank: rank, s1: key, s2: algo})
}

// LinkBusy implements Probe. (Shardable fidelities never reserve
// links, but the coordinator's own net may.)
func (l *ShardLog) LinkBusy(link int, start sim.Time, busy sim.Duration, bytes int) {
	l.add(shardEntry{kind: pkLinkBusy, t: start, rank: link, d: busy, bytes: bytes})
}

// Inject implements Probe.
func (l *ShardLog) Inject(node int, t sim.Time, wait sim.Duration, bytes int) {
	l.add(shardEntry{kind: pkInject, t: t, rank: node, d: wait, bytes: bytes})
}

// Fault implements Probe.
func (l *ShardLog) Fault(t sim.Time, kind, detail string) {
	l.add(shardEntry{kind: pkFault, t: t, rank: -1, s1: kind, s2: detail})
}

// RankDone implements Probe.
func (l *ShardLog) RankDone(rank int, t sim.Time) {
	l.add(shardEntry{kind: pkRankDone, t: t, rank: rank})
}

// Len returns the number of buffered entries.
func (l *ShardLog) Len() int { return len(l.entries) }

// replay plays one entry into dst.
func (e *shardEntry) replay(dst Probe) {
	switch e.kind {
	case pkProcBlock:
		dst.ProcBlock(e.rank, e.s1, e.s2, e.t)
	case pkProcUnblock:
		dst.ProcUnblock(e.rank, e.t)
	case pkCompute:
		dst.Compute(e.rank, e.t, e.d, e.noise)
	case pkSend:
		dst.Send(e.rank, e.t, e.peer, e.bytes, e.tag, e.coll)
	case pkMatch:
		dst.Match(e.rank, e.t, e.peer, e.sendT, e.bytes, e.coll)
	case pkCollEnter:
		dst.CollEnter(e.rank, e.t, e.s1, e.s2)
	case pkCollExit:
		dst.CollExit(e.rank, e.t, e.s1, e.s2)
	case pkLinkBusy:
		dst.LinkBusy(e.rank, e.t, e.d, e.bytes)
	case pkInject:
		dst.Inject(e.rank, e.t, e.d, e.bytes)
	case pkFault:
		dst.Fault(e.t, e.s1, e.s2)
	case pkRankDone:
		dst.RankDone(e.rank, e.t)
	}
}

// MergeShardLogs replays the coordinator's and every shard's buffered
// probe stream into dst in the deterministic merge order of the
// sharded kernel: ascending timestamp; at equal timestamps coordinator
// entries (fault processing, recovery charges) first — they correspond
// to serial events scheduled before any same-time rank event — then
// ascending world rank, then each source's own call order. Shard rank
// sets are disjoint, so the rank key totally orders cross-shard
// entries.
func MergeShardLogs(dst Probe, coord *ShardLog, shards []*ShardLog) {
	if dst == nil {
		return
	}
	type tagged struct {
		e     *shardEntry
		coord bool
		idx   int // call order within its source log
	}
	var n int
	if coord != nil {
		n += len(coord.entries)
	}
	for _, l := range shards {
		if l != nil {
			n += len(l.entries)
		}
	}
	all := make([]tagged, 0, n)
	if coord != nil {
		for i := range coord.entries {
			all = append(all, tagged{e: &coord.entries[i], coord: true, idx: i})
		}
	}
	for _, l := range shards {
		if l == nil {
			continue
		}
		for i := range l.entries {
			all = append(all, tagged{e: &l.entries[i], idx: i})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.e.t != b.e.t {
			return a.e.t < b.e.t
		}
		if a.coord != b.coord {
			return a.coord
		}
		if a.e.rank != b.e.rank {
			return a.e.rank < b.e.rank
		}
		return a.idx < b.idx
	})
	for _, t := range all {
		t.e.replay(dst)
	}
}
