// Package obs is the simulator's observability layer: a probe
// interface the simulation layers (sim, network, mpi, fault) call
// through a single pre-resolved hook, a Recorder that turns the probe
// stream into derived views — per-rank timelines with compute /
// p2p-wait / collective-wait / noise buckets, time-bucketed link
// utilization and injection-queue telemetry, and a critical-path walk
// over the matched message and collective dependency graph — and
// exporters for those views: Chrome trace_event JSON (loadable in
// chrome://tracing or Perfetto), plain-text profile tables, and CSV
// link heatmaps.
//
// Overhead policy: a nil probe is the contract. Every call site in the
// hot path guards with a single pointer nil-check and calls through a
// non-inlined helper, so a run with no probe attached executes the
// pre-observability instruction stream — goldens stay byte-identical
// and the kernel benchmarks stay flat. With a probe attached the
// recording cost is paid in host time only; probe hooks never advance
// virtual time, so an instrumented run produces exactly the timings of
// an uninstrumented one.
package obs

import (
	"bgpsim/internal/sim"
)

// Probe receives simulation events as they happen. All hooks are
// called from the simulation kernel's single-threaded event loop, in
// deterministic order; implementations need no locking but must not
// block. The rank argument is the world rank id, or negative for
// processes that are not MPI ranks.
//
// Probe is a superset of sim.Probe: any Probe can be installed as the
// kernel's process-block hook directly.
type Probe interface {
	// ProcBlock fires when a rank suspends waiting on a condition.
	// reason+detail name the wait ("MPI_Wait(recv)", "collective
	// <key>"); they arrive unjoined so the hot path never concatenates.
	ProcBlock(rank int, reason, detail string, t sim.Time)
	// ProcUnblock fires when a blocked rank resumes.
	ProcUnblock(rank int, t sim.Time)

	// Compute fires at the start of a compute block: the block spans
	// [start, start+d), of which noise was added by OS-noise injection
	// (zero on quiet machines).
	Compute(rank int, start sim.Time, d, noise sim.Duration)

	// Send fires when a rank injects a message (after the sender-side
	// software overhead). coll marks collective-internal traffic.
	Send(rank int, t sim.Time, peer, bytes, tag int, coll bool)
	// Match fires when a receive pairs with a message from peer that
	// was sent at sendT.
	Match(rank int, t sim.Time, peer int, sendT sim.Time, bytes int, coll bool)

	// CollEnter/CollExit bracket one rank's participation in one
	// collective operation; key is the operation's matching key and
	// algo the selected algorithm ("allreduce/ring").
	CollEnter(rank int, t sim.Time, key, algo string)
	CollExit(rank int, t sim.Time, key, algo string)

	// LinkBusy fires when the network reserves a torus link: the link
	// serializes this message's bytes over [start, start+busy).
	LinkBusy(link int, start sim.Time, busy sim.Duration, bytes int)
	// Inject fires when a node's injection channel accepts a message
	// after queueing for wait.
	Inject(node int, t sim.Time, wait sim.Duration, bytes int)

	// Fault fires when an injected fault becomes visible. Kinds in
	// use: "link-degraded"/"link-down" (a link-fault window opens),
	// "node-kill" (a node dies — fail-stop abort, or rank loss under
	// recovery), and "coll-recover" (a communicator rebuilt its
	// collective machinery around dead ranks, with the tree-rebuild /
	// HW-demotion detail and the charged recovery time).
	Fault(t sim.Time, kind, detail string)

	// RankDone fires when a rank's program function returns.
	RankDone(rank int, t sim.Time)
}

// SegKind classifies a timeline segment.
type SegKind uint8

// Timeline segment kinds.
const (
	// SegCompute is modelled computation (including injected
	// slowdown; the OS-noise share is tracked separately).
	SegCompute SegKind = iota
	// SegP2PWait is time blocked in point-to-point completion outside
	// any collective.
	SegP2PWait
	// SegCollWait is time blocked inside a collective: the gate sync
	// of a hardware offload or the internal sends/receives of a
	// software algorithm.
	SegCollWait
)

// String names the segment kind as the exporters print it.
func (k SegKind) String() string {
	switch k {
	case SegCompute:
		return "compute"
	case SegP2PWait:
		return "p2p-wait"
	case SegCollWait:
		return "coll-wait"
	}
	return "segment?"
}

// Segment is one interval of a rank's timeline.
type Segment struct {
	Kind  SegKind
	Start sim.Time
	End   sim.Time

	// Peer is the world rank whose message released a p2p wait (-1
	// when unknown), and SendT when that message was sent — the edge
	// the critical-path walk follows.
	Peer  int
	SendT sim.Time

	// Key is the collective matching key for gate waits.
	Key string
}

// CollSpan is one rank's participation in one collective.
type CollSpan struct {
	Key   string
	Algo  string
	Enter sim.Time
	Exit  sim.Time
}
