package obs

import (
	"fmt"
	"testing"

	"bgpsim/internal/sim"
)

// replayProbe records every replayed hook as one formatted line so the
// merge order — and every field of every entry — can be asserted.
type replayProbe struct{ lines []string }

func (p *replayProbe) add(format string, args ...any) {
	p.lines = append(p.lines, fmt.Sprintf(format, args...))
}
func (p *replayProbe) ProcBlock(rank int, reason, detail string, t sim.Time) {
	p.add("block %d %s|%s %d", rank, reason, detail, t)
}
func (p *replayProbe) ProcUnblock(rank int, t sim.Time) { p.add("unblock %d %d", rank, t) }
func (p *replayProbe) Compute(rank int, start sim.Time, d, noise sim.Duration) {
	p.add("compute %d %d %d %d", rank, start, d, noise)
}
func (p *replayProbe) Send(rank int, t sim.Time, peer, bytes, tag int, coll bool) {
	p.add("send %d %d %d %d %d %v", rank, t, peer, bytes, tag, coll)
}
func (p *replayProbe) Match(rank int, t sim.Time, peer int, sendT sim.Time, bytes int, coll bool) {
	p.add("match %d %d %d %d %d %v", rank, t, peer, sendT, bytes, coll)
}
func (p *replayProbe) CollEnter(rank int, t sim.Time, key, algo string) {
	p.add("collenter %d %d %s|%s", rank, t, key, algo)
}
func (p *replayProbe) CollExit(rank int, t sim.Time, key, algo string) {
	p.add("collexit %d %d %s|%s", rank, t, key, algo)
}
func (p *replayProbe) LinkBusy(link int, start sim.Time, busy sim.Duration, bytes int) {
	p.add("linkbusy %d %d %d %d", link, start, busy, bytes)
}
func (p *replayProbe) Inject(node int, t sim.Time, wait sim.Duration, bytes int) {
	p.add("inject %d %d %d %d", node, t, wait, bytes)
}
func (p *replayProbe) Fault(t sim.Time, kind, detail string) {
	p.add("fault %d %s|%s", t, kind, detail)
}
func (p *replayProbe) RankDone(rank int, t sim.Time) { p.add("done %d %d", rank, t) }

// TestShardLogReplayAllHooks buffers one call of every Probe hook and
// checks each replays into the destination with all fields intact.
func TestShardLogReplayAllHooks(t *testing.T) {
	l := NewShardLog()
	l.ProcBlock(3, "recv", " tag 9", 10)
	l.ProcUnblock(3, 11)
	l.Compute(2, 12, 100, 7)
	l.Send(1, 13, 4, 512, 9, false)
	l.Match(4, 14, 1, 13, 512, true)
	l.CollEnter(0, 15, "allreduce", "ring")
	l.CollExit(0, 16, "allreduce", "ring")
	l.LinkBusy(27, 17, 55, 4096)
	l.Inject(6, 18, 3, 256)
	l.Fault(19, "node-kill", "node 5")
	l.RankDone(7, 20)
	if l.Len() != 11 {
		t.Fatalf("Len = %d, want 11", l.Len())
	}

	var got replayProbe
	MergeShardLogs(&got, nil, []*ShardLog{l})
	want := []string{
		"block 3 recv| tag 9 10",
		"unblock 3 11",
		"compute 2 12 100 7",
		"send 1 13 4 512 9 false",
		"match 4 14 1 13 512 true",
		"collenter 0 15 allreduce|ring",
		"collexit 0 16 allreduce|ring",
		"linkbusy 27 17 55 4096",
		"inject 6 18 3 256",
		"fault 19 node-kill|node 5",
		"done 7 20",
	}
	if len(got.lines) != len(want) {
		t.Fatalf("replayed %d lines, want %d:\n%v", len(got.lines), len(want), got.lines)
	}
	for i := range want {
		if got.lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, got.lines[i], want[i])
		}
	}
}

// TestMergeShardLogsOrder checks the deterministic merge rule:
// ascending time; at equal times coordinator entries first, then
// ascending rank, then per-source call order.
func TestMergeShardLogsOrder(t *testing.T) {
	coord := NewShardLog()
	coord.Fault(20, "node-kill", "node 3") // same t as rank entries below

	s0 := NewShardLog()
	s0.ProcUnblock(0, 20)
	s0.ProcUnblock(0, 30) // later time, logged early in its source
	s1 := NewShardLog()
	s1.ProcUnblock(5, 10) // earliest time overall
	s1.ProcUnblock(5, 20)
	s1.ProcUnblock(6, 20) // same (t); higher rank than the rank-5 entry

	var got replayProbe
	MergeShardLogs(&got, coord, []*ShardLog{s0, s1})
	want := []string{
		"unblock 5 10",
		"fault 20 node-kill|node 3", // coord first at t=20 (rank -1 anyway)
		"unblock 0 20",
		"unblock 5 20",
		"unblock 6 20",
		"unblock 0 30",
	}
	if len(got.lines) != len(want) {
		t.Fatalf("merged %d lines, want %d:\n%v", len(got.lines), len(want), got.lines)
	}
	for i := range want {
		if got.lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, got.lines[i], want[i])
		}
	}

	// nil destination and nil sources must be no-ops, not panics.
	MergeShardLogs(nil, coord, []*ShardLog{s0})
	var again replayProbe
	MergeShardLogs(&again, nil, []*ShardLog{nil, s1})
	if len(again.lines) != 3 {
		t.Errorf("nil-tolerant merge replayed %d lines, want 3", len(again.lines))
	}
}
