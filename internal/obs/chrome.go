package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"bgpsim/internal/sim"
)

// WriteChromeTrace writes the recorded timelines as Chrome trace_event
// JSON ("JSON object format"), loadable in chrome://tracing and
// Perfetto. Each rank is a thread of process 0: compute and wait
// segments are complete ("X") events, collective spans are nested "X"
// events named after their algorithm, and fault activations are global
// instant events. Timestamps are microseconds with picosecond
// precision preserved in the fraction. Output is deterministic:
// identical recordings serialize to identical bytes.
func (rec *Recorder) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}

	ids := make([]int, 0, len(rec.ranks))
	for id := range rec.ranks {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	for _, id := range ids {
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"rank %d"}}`, id, id))
	}
	for _, id := range ids {
		rs := rec.ranks[id]
		// Collective spans first: they enclose the wait segments
		// recorded inside them, and trace viewers nest "X" events by
		// containment regardless of file order.
		for _, cs := range rs.colls {
			exit := cs.Exit
			if exit < 0 {
				exit = rec.lastT // never exited (aborted run)
			}
			emit(fmt.Sprintf(`{"name":%s,"cat":"collective","ph":"X","pid":0,"tid":%d,"ts":%s,"dur":%s,"args":{"key":%s}}`,
				jsonString(cs.Algo), id, us(cs.Enter), usd(exit.Sub(cs.Enter)), jsonString(cs.Key)))
		}
		for _, seg := range rs.segs {
			switch seg.Kind {
			case SegCompute:
				emit(fmt.Sprintf(`{"name":"compute","cat":"compute","ph":"X","pid":0,"tid":%d,"ts":%s,"dur":%s}`,
					id, us(seg.Start), usd(seg.End.Sub(seg.Start))))
			default:
				args := ""
				if seg.Peer >= 0 {
					args = fmt.Sprintf(`,"args":{"released_by":%d}`, seg.Peer)
				}
				emit(fmt.Sprintf(`{"name":"%s","cat":"wait","ph":"X","pid":0,"tid":%d,"ts":%s,"dur":%s%s}`,
					seg.Kind, id, us(seg.Start), usd(seg.End.Sub(seg.Start)), args))
			}
		}
	}
	for _, f := range rec.faults {
		emit(fmt.Sprintf(`{"name":%s,"cat":"fault","ph":"i","s":"g","pid":0,"tid":0,"ts":%s,"args":{"detail":%s}}`,
			jsonString(f.Kind), us(f.T), jsonString(f.Detail)))
	}
	if !rec.Observed() {
		// The run ended before any probe event fired. Emit one marker
		// event so the empty timeline states so explicitly — a silent
		// "traceEvents":[] reads as a lost artifact. Recordings with any
		// content are unaffected.
		emit(`{"name":"no events recorded","cat":"meta","ph":"i","s":"g","pid":0,"tid":0,"ts":0.000000,"args":{"detail":"the run produced no observable events before it ended"}}`)
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// us formats a virtual time as Chrome microseconds (picoseconds are
// the fractional digits).
func us(t sim.Time) string { return usd(sim.Duration(t)) }

// usd formats a duration as Chrome microseconds.
func usd(d sim.Duration) string {
	return strconv.FormatFloat(float64(d)/1e6, 'f', 6, 64)
}

// jsonString quotes s as a JSON string.
func jsonString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}
