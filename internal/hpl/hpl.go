// Package hpl is a distributed-memory dense LU solver that runs ON the
// simulator with real matrix data: panels travel between ranks as
// message payloads, every rank performs the actual floating-point
// updates on its local columns, and the result is verified against the
// HPL residual test. It demonstrates that the simulator executes real
// message-passing programs (not just cost skeletons) and ties the
// timing model to genuine operation counts.
//
// The layout is one-dimensional block-cyclic by column blocks, with
// partial pivoting inside each panel (the panel owner holds entire
// columns, so pivot search is local) — the textbook ancestor of HPL's
// 2-D algorithm.
package hpl

import (
	"fmt"
	"math"

	"bgpsim/internal/core"
	"bgpsim/internal/kernels"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
)

// Config describes a distributed LU run.
type Config struct {
	Machine machine.ID
	Mode    machine.Mode
	Procs   int
	N       int // matrix dimension
	NB      int // column block width
	Seed    uint64
}

// Result reports the run.
type Result struct {
	// VirtualSeconds is the simulated wall-clock of the factorization
	// plus solve.
	VirtualSeconds float64
	// GFlops is the HPL-credited rate at the simulated time.
	GFlops float64
	// X is the computed solution of A x = b.
	X []float64
	// Residual is the HPL scaled residual (< 16 passes).
	Residual float64
}

// Element returns the deterministic test matrix entry A[i][j] for a
// seed — both the distributed solver and the verifier use it.
func Element(seed uint64, i, j, n int) float64 {
	h := seed ^ (uint64(i)*0x9e3779b97f4a7c15 + uint64(j)*0xc2b2ae3d27d4eb4f)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	v := float64(h>>11) / float64(1<<53) // [0,1)
	if i == j {
		v += float64(n) // diagonal dominance keeps the test well-conditioned
	}
	return v
}

// RHS returns the deterministic right-hand side b[i].
func RHS(seed uint64, i int) float64 {
	return Element(seed^0xabcdef, i, 0, 0)
}

// panelMsg is the broadcast payload: a factored panel and its pivots.
type panelMsg struct {
	cols [][]float64 // nb columns, rows j0..n-1 (post-factorization)
	ipiv []int       // pivot row (global index) chosen for each panel column
}

// Run factors and solves the system, returning the solution and the
// simulated time. The matrix never exists in one place: each rank
// generates and updates only its own column blocks.
func Run(cfg Config) (*Result, error) {
	if cfg.N <= 0 || cfg.NB <= 0 || cfg.Procs <= 0 {
		return nil, fmt.Errorf("hpl: bad config %+v", cfg)
	}
	if cfg.N%cfg.NB != 0 {
		return nil, fmt.Errorf("hpl: N=%d not a multiple of NB=%d", cfg.N, cfg.NB)
	}
	n, nb, p := cfg.N, cfg.NB, cfg.Procs
	nblocks := n / nb

	mcfg := core.PartitionConfig(cfg.Machine, cfg.Mode, p)
	var out Result
	res, err := mpi.Execute(mcfg, func(r *mpi.Rank) {
		me := r.ID()
		// Local storage: the column blocks this rank owns, full height.
		local := map[int][][]float64{} // block index -> nb columns
		for b := me; b < nblocks; b += p {
			cols := make([][]float64, nb)
			for c := range cols {
				j := b*nb + c
				col := make([]float64, n)
				for i := 0; i < n; i++ {
					col[i] = Element(cfg.Seed, i, j, n)
				}
				cols[c] = col
			}
			local[b] = cols
		}

		// Rank 0 carries the right-hand side through the forward
		// elimination as the panels stream past (the classic LINPACK
		// dgesl structure), so no global permutation bookkeeping is
		// needed.
		var bvec []float64
		if me == 0 {
			bvec = make([]float64, n)
			for i := range bvec {
				bvec[i] = RHS(cfg.Seed, i)
			}
		}

		for kb := 0; kb < nblocks; kb++ {
			owner := kb % p
			j0 := kb * nb
			var msg *panelMsg
			if me == owner {
				msg = factorPanel(local[kb], j0, n)
				// Panel factorization cost: ~ nb^2 * rows flops.
				rows := float64(n - j0)
				r.Compute(float64(nb)*float64(nb)*rows, 8*float64(nb)*rows, machine.ClassDGEMM)
			}
			msg = r.World().BcastPayload(r, owner, (n-j0)*nb*8, msg).(*panelMsg)

			// Apply pivots everywhere (including the finished blocks,
			// whose L multipliers must follow the row interchanges)
			// and run the triangular/GEMM update on trailing blocks.
			// Blocks are visited in index order so the simulation is
			// deterministic.
			trailing := 0
			for b := me; b < nblocks; b += p {
				cols := local[b]
				if b == kb && me == owner {
					continue // the panel itself is done
				}
				for _, col := range cols {
					applyPivots(col, msg.ipiv, j0)
					if b >= kb {
						triangularUpdate(col, msg, j0, nb, n)
					}
				}
				if b > kb {
					trailing++
				}
			}
			if me == 0 {
				applyPivots(bvec, msg.ipiv, j0)
				forwardEliminate(bvec, msg, j0, nb, n)
			}
			// Update cost: GEMM of (n-j0-nb) x nb per trailing column.
			mrem := float64(n - j0 - nb)
			if mrem > 0 && trailing > 0 {
				cols := float64(trailing * nb)
				r.Compute(2*mrem*float64(nb)*cols, 8*mrem*cols, machine.ClassDGEMM)
			}
		}

		// Gather the factored blocks at rank 0 and back-substitute
		// there (validation path; HPL proper does a distributed
		// solve, which costs O(N^2) — negligible against the O(N^3)
		// factorization).
		if me != 0 {
			for b := me; b < nblocks; b += p {
				r.SendPayload(0, n*nb*8, 1000+b, local[b])
			}
			return
		}
		full := make([][][]float64, nblocks) // block -> columns
		for b := 0; b < nblocks; b++ {
			if b%p == 0 {
				full[b] = local[b]
				continue
			}
			_, payload := r.RecvPayload(b%p, 1000+b)
			full[b] = payload.([][]float64)
		}
		out.X = backSubstitute(full, bvec, n, nb)
	})
	if err != nil {
		return nil, err
	}
	out.VirtualSeconds = res.Elapsed.Seconds()
	out.GFlops = kernels.HPLFlops(n) / out.VirtualSeconds / 1e9
	out.Residual = residual(cfg.Seed, n, out.X)
	return &out, nil
}

// factorPanel performs in-place partial-pivoting LU on the owner's
// panel over rows j0..n-1 and returns the broadcast payload.
func factorPanel(cols [][]float64, j0, n int) *panelMsg {
	nb := len(cols)
	ipiv := make([]int, nb)
	for c := 0; c < nb; c++ {
		j := j0 + c
		// Pivot search in column c over rows j..n-1.
		pRow := j
		max := math.Abs(cols[c][j])
		for i := j + 1; i < n; i++ {
			if v := math.Abs(cols[c][i]); v > max {
				max, pRow = v, i
			}
		}
		ipiv[c] = pRow
		if pRow != j {
			for cc := 0; cc < nb; cc++ {
				cols[cc][j], cols[cc][pRow] = cols[cc][pRow], cols[cc][j]
			}
		}
		piv := cols[c][j]
		for i := j + 1; i < n; i++ {
			cols[c][i] /= piv
			l := cols[c][i]
			for cc := c + 1; cc < nb; cc++ {
				cols[cc][i] -= l * cols[cc][j]
			}
		}
	}
	// Ship rows j0..n-1 of the panel.
	ship := make([][]float64, nb)
	for c := range ship {
		ship[c] = cols[c][j0:]
	}
	return &panelMsg{cols: ship, ipiv: ipiv}
}

// applyPivots applies the panel's row interchanges to a column.
func applyPivots(col []float64, ipiv []int, j0 int) {
	for c, pRow := range ipiv {
		j := j0 + c
		if pRow != j {
			col[j], col[pRow] = col[pRow], col[j]
		}
	}
}

// triangularUpdate computes the U block row (unit-lower solve against
// the panel) and the trailing GEMM update for one column.
func triangularUpdate(col []float64, msg *panelMsg, j0, nb, n int) {
	// Forward solve: u[c] = a[j0+c] - sum_{k<c} L[c][k] u[k].
	for c := 0; c < nb; c++ {
		s := col[j0+c]
		for k := 0; k < c; k++ {
			s -= msg.cols[k][c] * col[j0+k]
		}
		col[j0+c] = s
	}
	// Trailing update: a[i] -= L[i][k] * u[k].
	for i := j0 + nb; i < n; i++ {
		s := col[i]
		for k := 0; k < nb; k++ {
			s -= msg.cols[k][i-j0] * col[j0+k]
		}
		col[i] = s
	}
}

// forwardEliminate advances the right-hand side through one panel's
// columns of the unit-lower factor: y[i] -= L[i][j] * y[j].
func forwardEliminate(bvec []float64, msg *panelMsg, j0, nb, n int) {
	for c := 0; c < nb; c++ {
		j := j0 + c
		yj := bvec[j]
		col := msg.cols[c]
		for i := j + 1; i < n; i++ {
			bvec[i] -= col[i-j0] * yj
		}
	}
}

// backSubstitute solves U x = y on the gathered upper factor.
func backSubstitute(full [][][]float64, y []float64, n, nb int) []float64 {
	a := make([][]float64, n) // a[j] = column j
	for b, cols := range full {
		for c, col := range cols {
			a[b*nb+c] = col
		}
	}
	x := make([]float64, n)
	for j := n - 1; j >= 0; j-- {
		x[j] = y[j] / a[j][j]
		for i := 0; i < j; i++ {
			y[i] -= a[j][i] * x[j]
		}
	}
	return x
}

// residual computes the HPL scaled residual of the solution against
// the regenerated system.
func residual(seed uint64, n int, x []float64) float64 {
	if x == nil {
		return math.Inf(1)
	}
	a := kernels.NewMatrix(n, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		b[i] = RHS(seed, i)
		for j := 0; j < n; j++ {
			a.Set(i, j, Element(seed, i, j, n))
		}
	}
	return kernels.HPLResidual(a, x, b)
}
