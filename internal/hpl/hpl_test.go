package hpl

import (
	"math"
	"testing"

	"bgpsim/internal/kernels"
	"bgpsim/internal/machine"
)

func TestDistributedLUSolves(t *testing.T) {
	for _, c := range []struct {
		procs, n, nb int
	}{
		{1, 64, 16},
		{2, 64, 16},
		{4, 128, 16},
		{8, 128, 16},
		{3, 96, 16}, // non-power-of-two ranks, odd block ownership
	} {
		res, err := Run(Config{
			Machine: machine.BGP, Mode: machine.VN,
			Procs: c.procs, N: c.n, NB: c.nb, Seed: 42,
		})
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if res.Residual > 16 {
			t.Errorf("%+v: HPL residual %g exceeds threshold", c, res.Residual)
		}
		if res.VirtualSeconds <= 0 || res.GFlops <= 0 {
			t.Errorf("%+v: no timing (%gs, %g GF)", c, res.VirtualSeconds, res.GFlops)
		}
	}
}

func TestDistributedMatchesReferenceSolution(t *testing.T) {
	const n, nb, seed = 96, 16, 7
	res, err := Run(Config{Machine: machine.XT4QC, Mode: machine.VN, Procs: 4, N: n, NB: nb, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: factor the same deterministic matrix serially.
	a := kernels.NewMatrix(n, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		b[i] = RHS(seed, i)
		for j := 0; j < n; j++ {
			a.Set(i, j, Element(seed, i, j, n))
		}
	}
	f, err := kernels.Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	ref := f.Solve(b)
	for i := range ref {
		if math.Abs(ref[i]-res.X[i]) > 1e-8 {
			t.Fatalf("x[%d]: distributed %g vs reference %g", i, res.X[i], ref[i])
		}
	}
}

func TestMorePanelsMoreTimeNotWorseResult(t *testing.T) {
	a, err := Run(Config{Machine: machine.BGP, Mode: machine.VN, Procs: 4, N: 128, NB: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Machine: machine.BGP, Mode: machine.VN, Procs: 4, N: 128, NB: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Residual > 16 || b.Residual > 16 {
		t.Error("residuals out of spec")
	}
	// Smaller blocks mean more panels and broadcasts: more virtual
	// communication time per flop.
	if b.VirtualSeconds <= a.VirtualSeconds {
		t.Errorf("NB=8 (%gs) should be slower than NB=32 (%gs)", b.VirtualSeconds, a.VirtualSeconds)
	}
}

func TestScalingReducesTime(t *testing.T) {
	// Large enough that compute dominates the panel broadcasts.
	one, err := Run(Config{Machine: machine.XT4QC, Mode: machine.VN, Procs: 1, N: 768, NB: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(Config{Machine: machine.XT4QC, Mode: machine.VN, Procs: 4, N: 768, NB: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if four.VirtualSeconds >= one.VirtualSeconds {
		t.Errorf("4 ranks (%gs) should beat 1 rank (%gs)", four.VirtualSeconds, one.VirtualSeconds)
	}
	if one.Residual > 16 || four.Residual > 16 {
		t.Error("residuals out of spec")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Machine: machine.BGP, Mode: machine.VN, Procs: 2, N: 100, NB: 16}); err == nil {
		t.Error("N not multiple of NB should fail")
	}
	if _, err := Run(Config{Machine: machine.BGP, Mode: machine.VN, Procs: 0, N: 64, NB: 16}); err == nil {
		t.Error("zero procs should fail")
	}
}

func TestElementDeterministic(t *testing.T) {
	if Element(1, 3, 4, 64) != Element(1, 3, 4, 64) {
		t.Error("Element not deterministic")
	}
	if Element(1, 3, 4, 64) == Element(2, 3, 4, 64) {
		t.Error("seed should change the matrix")
	}
	if Element(1, 5, 5, 64) < 64 {
		t.Error("diagonal should be dominant")
	}
}
