// Package iosys models the storage path the paper describes for the
// ORNL BlueGene/P ("Eugene", §I.B): compute nodes have no direct
// external connectivity — their I/O travels over the collective
// network to dedicated I/O nodes (one per 64 compute nodes), from
// there over 10 Gigabit Ethernet through a Myricom switch to GPFS file
// servers backed by DDN disk arrays. The Cray XT path is modelled as
// direct Lustre-style striping over its service nodes.
//
// The paper notes that the CAM scaling experiments "exposed ... a
// system I/O performance issue on the BG/P"; this package makes the
// structural reason visible: the 1:64 forwarding ratio concentrates
// bursts onto few I/O nodes.
package iosys

import (
	"fmt"
	"math"

	"bgpsim/internal/machine"
)

// Storage describes one machine's I/O subsystem.
type Storage struct {
	Machine machine.ID
	// ComputePerIONode is the forwarding ratio (64 on the BG/P racks
	// at ORNL and ANL). Zero means compute nodes reach storage
	// directly (the XT).
	ComputePerIONode int
	// ForwardBW is the per-compute-node bandwidth into the forwarding
	// layer (the collective-network link on BlueGene).
	ForwardBW float64
	// IONodeBW is each I/O (or service) node's external bandwidth
	// (10 GbE on the BG/P: ~1.1 GB/s effective).
	IONodeBW float64
	// Servers is the number of file servers and ServerBW each one's
	// sustained disk bandwidth.
	Servers  int
	ServerBW float64
	// MetadataLatency is the per-operation metadata cost (opens,
	// creates).
	MetadataLatency float64
}

// ORNLEugene returns the paper's BG/P storage description: 16 I/O
// nodes per rack (1:64), 10 GbE through a 256-port Myricom switch,
// GPFS with 8 file servers over DDN arrays (~70 TB scratch).
func ORNLEugene() *Storage {
	m := machine.Get(machine.BGP)
	return &Storage{
		Machine:          machine.BGP,
		ComputePerIONode: 64,       // [paper §I.B]
		ForwardBW:        m.TreeBW, // collective network link
		IONodeBW:         1.1e9,    // [cal] 10 GbE effective
		Servers:          8,        // [paper §I.B]
		ServerBW:         1.5e9,    // [cal] DDN 8+2 LUN streams
		MetadataLatency:  1.5e-3,   // [cal] 2 metadata servers
	}
}

// ORNLJaguar returns the XT's direct-attached path (Lustre-style).
func ORNLJaguar() *Storage {
	return &Storage{
		Machine:         machine.XT4QC,
		IONodeBW:        1.6e9, // [cal] per OSS
		Servers:         72,    // [cal] Jaguar-era OSS count
		ServerBW:        1.2e9, // [cal]
		MetadataLatency: 0.8e-3,
	}
}

// WriteTime returns the wall-clock seconds for `nodes` compute nodes
// to collectively write totalBytes (spread evenly), including metadata
// cost for `files` files. It is a contention model: the slowest of the
// forwarding links, the I/O-node uplinks, and the file servers governs.
func (s *Storage) WriteTime(nodes int, totalBytes float64, files int) (float64, error) {
	if nodes <= 0 || totalBytes < 0 || files < 0 {
		return 0, fmt.Errorf("iosys: bad write request nodes=%d bytes=%g files=%d", nodes, totalBytes, files)
	}
	perNode := totalBytes / float64(nodes)

	// Stage 1: compute node into the forwarding layer.
	stage1 := 0.0
	if s.ComputePerIONode > 0 {
		stage1 = perNode / s.ForwardBW
	}

	// Stage 2: I/O-node (or service-node) external links.
	ioNodes := s.ioNodesFor(nodes)
	stage2 := totalBytes / (float64(ioNodes) * s.IONodeBW)

	// Stage 3: the file servers.
	stage3 := totalBytes / (float64(s.Servers) * s.ServerBW)

	// The pipeline is limited by its slowest stage; metadata adds a
	// serial term.
	t := math.Max(stage1, math.Max(stage2, stage3))
	return t + float64(files)*s.MetadataLatency, nil
}

// ReadTime mirrors WriteTime (reads avoid some metadata cost).
func (s *Storage) ReadTime(nodes int, totalBytes float64) (float64, error) {
	return s.WriteTime(nodes, totalBytes, 0)
}

// ioNodesFor returns how many I/O (or service) nodes serve a
// partition.
func (s *Storage) ioNodesFor(nodes int) int {
	if s.ComputePerIONode <= 0 {
		// Direct path: every server is reachable.
		return s.Servers
	}
	n := (nodes + s.ComputePerIONode - 1) / s.ComputePerIONode
	if n < 1 {
		n = 1
	}
	return n
}

// EffectiveBW returns the sustained aggregate write bandwidth a
// partition of the given size can reach (bytes/second).
func (s *Storage) EffectiveBW(nodes int) float64 {
	const probe = 1e12 // large enough to be bandwidth-dominated
	t, err := s.WriteTime(nodes, probe, 0)
	if err != nil || t == 0 {
		return 0
	}
	return probe / t
}
