package iosys

import "testing"

func TestWriteTimeValidation(t *testing.T) {
	s := ORNLEugene()
	if _, err := s.WriteTime(0, 1e9, 1); err == nil {
		t.Error("zero nodes should fail")
	}
	if _, err := s.WriteTime(64, -1, 1); err == nil {
		t.Error("negative bytes should fail")
	}
}

func TestSmallPartitionIsIONodeLimited(t *testing.T) {
	// The paper's CAM I/O issue: a small BG/P partition funnels its
	// output through very few I/O nodes.
	s := ORNLEugene()
	small := s.EffectiveBW(64)   // one I/O node
	large := s.EffectiveBW(2048) // 32 I/O nodes
	if small >= large {
		t.Errorf("small partition BW %g should be below full machine %g", small, large)
	}
	// One I/O node: ~1.1 GB/s.
	if small < 0.5e9 || small > 1.5e9 {
		t.Errorf("64-node partition BW = %g, want ~1.1 GB/s", small)
	}
}

func TestFullMachineIsServerLimited(t *testing.T) {
	// 2048 nodes -> 32 I/O nodes x 1.1 GB/s = 35 GB/s uplink, but only
	// 8 servers x 1.5 GB/s = 12 GB/s of disk.
	s := ORNLEugene()
	bw := s.EffectiveBW(2048)
	want := 8 * 1.5e9
	if diff := bw/want - 1; diff > 0.01 || diff < -0.01 {
		t.Errorf("full-machine BW = %g, want server-limited %g", bw, want)
	}
}

func TestForwardLinkCanLimitPerNode(t *testing.T) {
	// A single node writing a large file alone is capped by its
	// collective-network link (850 MB/s), not the I/O node.
	s := ORNLEugene()
	tm, err := s.WriteTime(1, 8.5e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tm < 9.9 || tm > 10.3 {
		t.Errorf("single-node 8.5 GB write took %.2f s, want ~10 (850 MB/s link)", tm)
	}
}

func TestMetadataCost(t *testing.T) {
	s := ORNLEugene()
	noFiles, _ := s.WriteTime(64, 1e9, 0)
	manyFiles, _ := s.WriteTime(64, 1e9, 1000)
	if manyFiles-noFiles < 1.0 {
		t.Errorf("1000 file creates added only %.3f s", manyFiles-noFiles)
	}
}

func TestXTDirectPath(t *testing.T) {
	x := ORNLJaguar()
	// Direct path: bandwidth independent of partition size (always all
	// servers).
	if x.EffectiveBW(64) != x.EffectiveBW(4096) {
		t.Error("XT path should not depend on partition size")
	}
	// And the XT's Lustre aggregate beats Eugene's 8-server GPFS.
	if x.EffectiveBW(4096) <= ORNLEugene().EffectiveBW(2048) {
		t.Error("Jaguar storage should out-bandwidth Eugene's")
	}
}

func TestReadSkipsMetadata(t *testing.T) {
	s := ORNLEugene()
	r, _ := s.ReadTime(64, 1e9)
	w, _ := s.WriteTime(64, 1e9, 10)
	if r >= w {
		t.Error("read should be cheaper than write with metadata")
	}
}
