package iosys

import (
	"fmt"

	"bgpsim/internal/sim"
)

// Sim is the stateful, in-simulation sibling of the closed-form
// WriteTime model: per-node writes move through the same three stages
// (forwarding link, I/O-node uplink, file server) but contend on
// simulated busy-time state, so a checkpoint issued as per-rank writes
// inside an MPI program occupies the storage path over virtual time
// instead of being priced in one formula. Calls are serialized by the
// simulation kernel (one process runs at a time), so Sim needs no
// locking, and the completion times are a pure function of the call
// sequence — the PR-1 determinism contract.
type Sim struct {
	s       *Storage
	ioFree  []sim.Time // per-I/O-node uplink busy time
	srvFree []sim.Time // per-file-server busy time
}

// NewSim builds contention state for a partition of the given size.
func NewSim(s *Storage, nodes int) (*Sim, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("iosys: partition of %d nodes", nodes)
	}
	if s.Servers <= 0 || s.IONodeBW <= 0 || s.ServerBW <= 0 {
		return nil, fmt.Errorf("iosys: storage for %s lacks servers or bandwidths", s.Machine)
	}
	if s.ComputePerIONode > 0 && s.ForwardBW <= 0 {
		return nil, fmt.Errorf("iosys: storage for %s has a forwarding layer but no forward bandwidth", s.Machine)
	}
	return &Sim{
		s:       s,
		ioFree:  make([]sim.Time, s.ioNodesFor(nodes)),
		srvFree: make([]sim.Time, s.Servers),
	}, nil
}

// NodeWrite issues one compute node's write of bytes at time now and
// returns its completion time. The data crosses the node's forwarding
// link (uncontended — it is the node's own), then queues for the
// node's I/O-node uplink and a file server, store-and-forward at write
// granularity. files adds the serial metadata cost (opens/creates).
func (io *Sim) NodeWrite(now sim.Time, node int, bytes float64, files int) sim.Time {
	if bytes < 0 || files < 0 {
		panic(fmt.Sprintf("iosys: bad write node=%d bytes=%g files=%d", node, bytes, files))
	}
	t := now
	ion := 0
	if io.s.ComputePerIONode > 0 {
		t = t.Add(sim.Seconds(bytes / io.s.ForwardBW))
		ion = node / io.s.ComputePerIONode % len(io.ioFree)
	} else {
		ion = node % len(io.ioFree)
	}
	start := maxTime(t, io.ioFree[ion])
	end := start.Add(sim.Seconds(bytes / io.s.IONodeBW))
	io.ioFree[ion] = end

	srv := ion % len(io.srvFree)
	start = maxTime(end, io.srvFree[srv])
	end = start.Add(sim.Seconds(bytes / io.s.ServerBW))
	io.srvFree[srv] = end

	return end.Add(sim.Seconds(float64(files) * io.s.MetadataLatency))
}

// NodeRead mirrors NodeWrite without the metadata term, matching
// ReadTime's closed form.
func (io *Sim) NodeRead(now sim.Time, node int, bytes float64) sim.Time {
	return io.NodeWrite(now, node, bytes, 0)
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
