package iosys

import (
	"testing"

	"bgpsim/internal/sim"
)

// TestSimMatchesAnalyticWrite is a differential check: a collective
// write issued node by node through the stateful Sim must land near
// the closed-form WriteTime. The simulated path is store-and-forward
// (each stage waits for the previous), so it is a little slower than
// the pipelined closed form; tolerance [1.0, 1.5).
func TestSimMatchesAnalyticWrite(t *testing.T) {
	s := ORNLEugene()
	const nodes = 128
	const perNode = 1 << 20 // 1 MiB
	io, err := NewSim(s, nodes)
	if err != nil {
		t.Fatal(err)
	}
	var last sim.Time
	for n := 0; n < nodes; n++ {
		files := 0
		if n == 0 {
			files = 1
		}
		if end := io.NodeWrite(0, n, perNode, files); end > last {
			last = end
		}
	}
	analytic, err := s.WriteTime(nodes, float64(nodes)*perNode, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := sim.Duration(last).Seconds()
	if ratio := got / analytic; ratio < 1.0 || ratio >= 1.5 {
		t.Errorf("simulated collective write %.4gs vs analytic %.4gs (ratio %.3f, want [1.0, 1.5))",
			got, analytic, ratio)
	}
}

func TestSimSerializesUplink(t *testing.T) {
	s := ORNLEugene()
	io, err := NewSim(s, 64) // one I/O node
	if err != nil {
		t.Fatal(err)
	}
	const b = 1 << 20
	first := io.NodeWrite(0, 0, b, 0)
	second := io.NodeWrite(0, 1, b, 0)
	if second <= first {
		t.Errorf("two writes through one uplink finished at %v and %v; the second must queue", first, second)
	}
	// A later write starts after the uplink frees, not before.
	uplink := sim.Seconds(b / s.IONodeBW)
	if second-first < sim.Time(uplink)/2 {
		t.Errorf("second write gained only %v over the first; uplink serialization is %v", second-first, uplink)
	}
}

func TestSimDirectPath(t *testing.T) {
	s := ORNLJaguar()
	io, err := NewSim(s, 96)
	if err != nil {
		t.Fatal(err)
	}
	end := io.NodeWrite(sim.Time(sim.Second), 7, 1<<20, 0)
	if end <= sim.Time(sim.Second) {
		t.Errorf("write completed at %v, before it started", end)
	}
}

func TestSimRejectsBadStorage(t *testing.T) {
	if _, err := NewSim(&Storage{}, 8); err == nil {
		t.Error("NewSim accepted a storage with no servers")
	}
	if _, err := NewSim(ORNLEugene(), 0); err == nil {
		t.Error("NewSim accepted an empty partition")
	}
}
