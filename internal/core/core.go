// Package core is the top of the simulation stack: it ties the machine
// catalog, topology, network, CPU and MPI layers together behind site
// presets (the actual systems the paper measured) and run helpers. The
// public root package bgpsim re-exports this API.
package core

import (
	"fmt"

	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

// Program is an MPI program: the function every simulated rank runs.
type Program = func(*mpi.Rank)

// Site is a named installation of a machine, as evaluated in the paper.
type Site struct {
	Name    string
	Machine machine.ID
	Nodes   int
}

// The installations the paper measured.
var (
	// Eugene is ORNL's two-rack BlueGene/P (2048 nodes, 8192 cores).
	Eugene = Site{Name: "ORNL Eugene", Machine: machine.BGP, Nodes: 2048}
	// Intrepid is ANL's forty-rack BlueGene/P (40960 nodes).
	Intrepid = Site{Name: "ANL Intrepid", Machine: machine.BGP, Nodes: 40960}
	// JaguarQC is ORNL's quad-core Cray XT4 partition (30976 cores).
	JaguarQC = Site{Name: "ORNL Jaguar XT4/QC", Machine: machine.XT4QC, Nodes: 7744}
	// JaguarDC is the earlier dual-core XT4 configuration.
	JaguarDC = Site{Name: "ORNL Jaguar XT4/DC", Machine: machine.XT4DC, Nodes: 11508}
	// JaguarXT3 is the original XT3 configuration.
	JaguarXT3 = Site{Name: "ORNL Jaguar XT3", Machine: machine.XT3, Nodes: 5212}
)

// Config returns an mpi.Config for running `ranks` MPI tasks on the
// site in the given mode, using the minimal number of nodes. A ranks
// value of zero uses the whole site.
func (s Site) Config(mode machine.Mode, ranks int) mpi.Config {
	m := machine.Get(s.Machine)
	rpn := m.RanksPerNode(mode)
	nodes := s.Nodes
	if ranks > 0 {
		nodes = (ranks + rpn - 1) / rpn
		if nodes > s.Nodes {
			nodes = s.Nodes // oversubscription is caught by NewWorld
		}
	} else {
		ranks = nodes * rpn
	}
	return mpi.Config{
		Machine: m,
		Nodes:   nodes,
		Mode:    mode,
		Ranks:   ranks,
	}
}

// PartitionConfig returns an mpi.Config for a machine and an exact
// rank count, choosing a standard partition (node count) that fits.
func PartitionConfig(id machine.ID, mode machine.Mode, ranks int) mpi.Config {
	m := machine.Get(id)
	rpn := m.RanksPerNode(mode)
	nodes := (ranks + rpn - 1) / rpn
	return mpi.Config{Machine: m, Nodes: nodes, Mode: mode, Ranks: ranks}
}

// Run executes a program under a configuration: the main entry point.
func Run(cfg mpi.Config, prog Program) (*mpi.Result, error) {
	return mpi.Execute(cfg, prog)
}

// Report is a human-readable summary of one run.
type Report struct {
	Site     string
	Machine  string
	Mode     machine.Mode
	Ranks    int
	Cores    int
	Elapsed  sim.Duration
	Messages int64
	Bytes    int64
	Events   uint64
	// EnergyKWh is the estimated electrical energy of the run at the
	// machine's application operating point.
	EnergyKWh float64
}

// String formats the report.
func (r *Report) String() string {
	return fmt.Sprintf("%s (%s, %s, %d ranks): %v elapsed, %d msgs, %d bytes, %d events, %.3g kWh",
		r.Site, r.Machine, r.Mode, r.Ranks, r.Elapsed, r.Messages, r.Bytes, r.Events, r.EnergyKWh)
}

// RunReport runs a program and summarizes it.
func RunReport(site Site, mode machine.Mode, ranks int, prog Program) (*Report, *mpi.Result, error) {
	cfg := site.Config(mode, ranks)
	res, err := Run(cfg, prog)
	if err != nil {
		return nil, nil, err
	}
	cores := cfg.Nodes * cfg.Machine.CoresPerNode
	return &Report{
		Site:      site.Name,
		Machine:   cfg.Machine.Name,
		Mode:      mode,
		Ranks:     cfg.Ranks,
		Cores:     cores,
		Elapsed:   res.Elapsed,
		Messages:  res.Net.Messages,
		Bytes:     res.Net.Bytes,
		Events:    res.Events,
		EnergyKWh: cfg.Machine.WattsPerCoreApp * float64(cores) * res.Elapsed.Seconds() / 3600 / 1000,
	}, res, nil
}

// Convenience re-exports so downstream users need only this package
// (via the bgpsim root) for common configuration values.
const (
	SMP  = machine.SMP
	DUAL = machine.DUAL
	VN   = machine.VN
)

// Fidelity re-exports.
const (
	Analytic   = network.Analytic
	Contention = network.Contention
)

// DefaultMapping is the system default process mapping.
const DefaultMapping = topology.MapXYZT
