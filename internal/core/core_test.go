package core

import (
	"strings"
	"testing"

	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
)

func TestSiteConfigWholeSite(t *testing.T) {
	cfg := Eugene.Config(machine.VN, 0)
	if cfg.Nodes != 2048 || cfg.Ranks != 8192 {
		t.Errorf("Eugene VN: nodes=%d ranks=%d", cfg.Nodes, cfg.Ranks)
	}
}

func TestSiteConfigPartial(t *testing.T) {
	cfg := Eugene.Config(machine.VN, 100)
	if cfg.Ranks != 100 || cfg.Nodes != 25 {
		t.Errorf("partial: nodes=%d ranks=%d", cfg.Nodes, cfg.Ranks)
	}
	cfg = Eugene.Config(machine.SMP, 100)
	if cfg.Nodes != 100 {
		t.Errorf("SMP partial: nodes=%d", cfg.Nodes)
	}
}

func TestPartitionConfigRuns(t *testing.T) {
	cfg := PartitionConfig(machine.BGP, machine.VN, 64)
	res, err := Run(cfg, func(r *mpi.Rank) {
		r.World().Barrier(r)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
}

func TestRunReport(t *testing.T) {
	rep, res, err := RunReport(Eugene, machine.SMP, 16, func(r *mpi.Rank) {
		r.World().Allreduce(r, 8, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || rep.Ranks != 16 {
		t.Fatalf("report: %+v", rep)
	}
	s := rep.String()
	if !strings.Contains(s, "Eugene") || !strings.Contains(s, "16 ranks") {
		t.Errorf("report string: %s", s)
	}
}

func TestJaguarCoreCounts(t *testing.T) {
	// The paper's Table 3 uses 30976 XT4/QC cores.
	m := machine.Get(JaguarQC.Machine)
	if got := JaguarQC.Nodes * m.CoresPerNode; got != 30976 {
		t.Errorf("Jaguar QC cores = %d, want 30976", got)
	}
}

func TestReportEnergy(t *testing.T) {
	rep, _, err := RunReport(Eugene, machine.VN, 64, func(r *mpi.Rank) {
		r.Compute(1e9, 0, machine.ClassDGEMM)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EnergyKWh <= 0 || rep.Cores != 64 {
		t.Errorf("report energy/cores wrong: %+v", rep)
	}
	// Energy = W/core * cores * seconds.
	want := 7.3 * 64 * rep.Elapsed.Seconds() / 3600 / 1000
	if diff := rep.EnergyKWh/want - 1; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("energy = %g, want %g", rep.EnergyKWh, want)
	}
}
