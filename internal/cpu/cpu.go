// Package cpu models on-node computation time with a roofline: a
// compute block is characterized by its flop count, its main-memory
// traffic, and a kernel class that selects the sustained fraction of
// peak; the block's duration is the larger of the compute time and the
// memory time under the node resources available to one MPI rank in
// the current execution mode.
package cpu

import (
	"fmt"
	"math"

	"bgpsim/internal/machine"
	"bgpsim/internal/sim"
)

// Model computes execution times for one MPI rank of a machine running
// in a given execution mode.
type Model struct {
	mach *machine.Machine
	mode machine.Mode
}

// New returns a compute model. It panics if the machine does not
// support the mode.
func New(m *machine.Machine, mode machine.Mode) *Model {
	if !m.SupportsMode(mode) {
		panic(fmt.Sprintf("cpu: %s does not support %s mode", m.Name, mode))
	}
	return &Model{mach: m, mode: mode}
}

// Threads returns the compute threads available to the rank.
func (c *Model) Threads() int { return c.mach.ThreadsPerRank(c.mode) }

// effThreads is the effective thread count after OpenMP overheads:
// thread t contributes OMPEff of a core. A machine with OMPEff == 0
// (BG/L) cannot use extra threads at all.
func (c *Model) effThreads() float64 {
	t := c.Threads()
	if t <= 1 {
		return 1
	}
	return 1 + float64(t-1)*c.mach.OMPEff
}

// FlopRate returns the sustained flop rate (flops/second) of the rank
// for a kernel class, including its threads.
func (c *Model) FlopRate(class machine.KernelClass) float64 {
	return c.mach.PeakFlopsCore() * c.mach.Eff[class] * c.effThreads()
}

// MemBW returns the sustainable main-memory bandwidth (bytes/second)
// available to the rank: the node's aggregate sustained bandwidth
// divided among the ranks sharing the node, capped by what the rank's
// threads can generate.
func (c *Model) MemBW() float64 {
	perRank := c.mach.MemBWPerNode * c.mach.Eff[machine.ClassStream] / float64(c.mach.RanksPerNode(c.mode))
	gen := c.mach.CoreMemBW * c.effThreads()
	return math.Min(perRank, gen)
}

// Time returns the duration of a compute block with the given flop
// count and main-memory traffic for the kernel class: the roofline
// maximum of compute time and memory time. Zero-work blocks take zero
// time.
func (c *Model) Time(flops, bytes float64, class machine.KernelClass) sim.Duration {
	if flops < 0 || bytes < 0 {
		panic(fmt.Sprintf("cpu: negative work flops=%g bytes=%g", flops, bytes))
	}
	tc := flops / c.FlopRate(class)
	tm := bytes / c.MemBW()
	return sim.Seconds(math.Max(tc, tm))
}

// StreamTriadBW returns the STREAM triad bandwidth of a single process
// on the node. In the single-process case (the others idle) the
// process is limited only by what its threads can pull; in the
// embarrassingly-parallel case every core runs a copy and the node
// bandwidth is divided.
func (c *Model) StreamTriadBW(embarrassinglyParallel bool) float64 {
	if embarrassinglyParallel {
		return c.MemBW()
	}
	gen := c.mach.CoreMemBW * c.effThreads()
	return math.Min(gen, c.mach.MemBWPerNode*c.mach.Eff[machine.ClassStream])
}

// DGEMMRate returns the sustained DGEMM rate of the rank.
func (c *Model) DGEMMRate() float64 { return c.FlopRate(machine.ClassDGEMM) }

// OSNoise returns the machine's OS-noise profile as simulator
// durations: a noise event of the given duration recurs once per
// period on every compute node. Both are zero for a noiseless kernel
// (the BlueGene CNK).
func (c *Model) OSNoise() (period, duration sim.Duration) {
	if c.mach.Noiseless() {
		return 0, 0
	}
	return sim.Seconds(c.mach.NoisePeriodS), sim.Seconds(c.mach.NoiseDurS)
}

// Machine returns the modelled machine.
func (c *Model) Machine() *machine.Machine { return c.mach }

// Mode returns the execution mode.
func (c *Model) Mode() machine.Mode { return c.mode }
