package cpu

import (
	"testing"

	"bgpsim/internal/machine"
	"bgpsim/internal/sim"
)

func TestFlopRateVN(t *testing.T) {
	m := machine.Get(machine.BGP)
	c := New(m, machine.VN)
	// VN mode: one thread; DGEMM rate = 3.4 GF * 0.87.
	want := 3.4e9 * m.Eff[machine.ClassDGEMM]
	if got := c.FlopRate(machine.ClassDGEMM); got != want {
		t.Errorf("VN DGEMM rate = %g, want %g", got, want)
	}
}

func TestFlopRateSMPUsesThreads(t *testing.T) {
	m := machine.Get(machine.BGP)
	vn := New(m, machine.VN)
	smp := New(m, machine.SMP)
	ratio := smp.FlopRate(machine.ClassStencil) / vn.FlopRate(machine.ClassStencil)
	// 4 threads at 90% OpenMP efficiency: 1 + 3*0.9 = 3.7.
	if ratio < 3.69 || ratio > 3.71 {
		t.Errorf("SMP/VN rate ratio = %g, want 3.7", ratio)
	}
}

func TestBGLNoThreadScaling(t *testing.T) {
	m := machine.Get(machine.BGL)
	smp := New(m, machine.SMP)
	vn := New(m, machine.VN)
	if smp.FlopRate(machine.ClassStencil) != vn.FlopRate(machine.ClassStencil) {
		t.Error("BG/L (OMPEff=0) should get no speedup from SMP threads")
	}
}

func TestMemBWSharing(t *testing.T) {
	m := machine.Get(machine.BGP)
	vn := New(m, machine.VN)
	// VN: node stream bandwidth divided by 4 ranks.
	want := m.MemBWPerNode * m.Eff[machine.ClassStream] / 4
	if got := vn.MemBW(); got != want {
		t.Errorf("VN MemBW = %g, want %g", got, want)
	}
	smp := New(m, machine.SMP)
	if smp.MemBW() <= vn.MemBW() {
		t.Error("SMP rank should see more memory bandwidth than a VN rank")
	}
}

func TestTimeRoofline(t *testing.T) {
	c := New(machine.Get(machine.BGP), machine.VN)
	// Pure compute: 3.4e9*0.87 flops should take ~1 s.
	d := c.Time(c.FlopRate(machine.ClassDGEMM), 0, machine.ClassDGEMM)
	if d != sim.Second {
		t.Errorf("compute-bound time = %v, want 1s", d)
	}
	// Pure memory: MemBW bytes should take 1 s.
	d = c.Time(0, c.MemBW(), machine.ClassStream)
	if d != sim.Second {
		t.Errorf("memory-bound time = %v, want 1s", d)
	}
	// Max, not sum.
	d = c.Time(c.FlopRate(machine.ClassDGEMM), c.MemBW(), machine.ClassDGEMM)
	if d != sim.Second {
		t.Errorf("roofline time = %v, want 1s (max, not sum)", d)
	}
}

func TestZeroWorkZeroTime(t *testing.T) {
	c := New(machine.Get(machine.XT4QC), machine.VN)
	if d := c.Time(0, 0, machine.ClassScalar); d != 0 {
		t.Errorf("zero work took %v", d)
	}
}

func TestNegativeWorkPanics(t *testing.T) {
	c := New(machine.Get(machine.BGP), machine.VN)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c.Time(-1, 0, machine.ClassScalar)
}

func TestUnsupportedModePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic: XT3 has no DUAL mode")
		}
	}()
	New(machine.Get(machine.XT3), machine.DUAL)
}

func TestStreamSPvsEP(t *testing.T) {
	// Paper Table 2 claim: BG/P declines less from single-process to
	// embarrassingly-parallel STREAM than the XT4/QC.
	declineOf := func(id machine.ID) float64 {
		c := New(machine.Get(id), machine.VN)
		sp := c.StreamTriadBW(false)
		ep := c.StreamTriadBW(true)
		return (sp - ep) / sp
	}
	bgp, xt := declineOf(machine.BGP), declineOf(machine.XT4QC)
	if bgp >= xt {
		t.Errorf("BG/P STREAM decline %.2f should be below XT %.2f", bgp, xt)
	}
}

func TestBGPHigherAbsoluteStream(t *testing.T) {
	// Paper: BG/P exhibited higher absolute STREAM bandwidth.
	bgp := New(machine.Get(machine.BGP), machine.VN).StreamTriadBW(false)
	xt := New(machine.Get(machine.XT4QC), machine.VN).StreamTriadBW(false)
	if bgp <= xt {
		t.Errorf("BG/P SP STREAM %g <= XT %g, paper says higher", bgp, xt)
	}
}

func TestXTDGEMMFasterPerCore(t *testing.T) {
	// Paper: XT4/QC outruns BG/P on DGEMM due to clock rate.
	bgp := New(machine.Get(machine.BGP), machine.VN).DGEMMRate()
	xt := New(machine.Get(machine.XT4QC), machine.VN).DGEMMRate()
	ratio := xt / bgp
	if ratio < 2.0 || ratio > 3.0 {
		t.Errorf("XT/BGP DGEMM ratio = %.2f, want ~2.5 (clock ratio)", ratio)
	}
}

func TestAccessors(t *testing.T) {
	m := machine.Get(machine.BGP)
	c := New(m, machine.DUAL)
	if c.Machine().ID != machine.BGP || c.Mode() != machine.DUAL || c.Threads() != 2 {
		t.Error("accessors wrong")
	}
}
