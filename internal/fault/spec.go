package fault

import (
	"fmt"
	"strconv"
	"strings"

	"bgpsim/internal/machine"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

// Spec is a parsed fault-plan description, deferred until the torus and
// machine hierarchy are known (random placement and range checks need
// the partition). ParseSpec builds one from a command-line string.
type Spec struct {
	seed uint64
	ops  []specOp
}

type specOp struct {
	kind string // "recover", "log", "restart", "kill", "isolate", "faillinks", "degrade", "noise", "noisemachine", "blast"

	node  int
	at    sim.Time
	count int
	frac  float64 // degrade fraction
	fact  float64 // degrade factor
	noise NoiseProfile
	blast BlastSpec
}

// ParseSpec parses a fault-plan description: comma-separated directives,
// applied in order by Build.
//
//	seed=N                        plan seed for random placement (default 1)
//	recover                       transparent collective recovery instead of fail-stop
//	log=sender                    log outbound point-to-point envelopes at the
//	                              senders: traffic stranded on a killed rank is
//	                              cancelled (typed *mpi.PeerLostError) instead of
//	                              deadlocking; requires recover
//	restart=ckpt                  user-level restart: a killed node's ranks roll
//	                              back to their last checkpoint commit and logged
//	                              messages are replayed; requires log=sender
//	kill=NODE@TIME                node NODE dies at TIME
//	isolate=NODE                  fail every link touching NODE from time zero
//	faillinks=N                   fail N random directed links from time zero
//	degrade=FRAC:FACTOR           each link degraded to FACTOR bandwidth with probability FRAC
//	noise=machine                 OS noise from the machine model's own profile
//	noise=PERIOD/DURATION         explicit periodic OS noise
//	blast=TIME/ORIGIN/PC/PM/PR/D[/links]
//	                              correlated failure at TIME from node ORIGIN
//	                              ("*" = drawn from seed), escalating to the
//	                              node card / midplane / rack with probability
//	                              PC / PM / PR, killing domain nodes with
//	                              probability D; "/links" also fails the dead
//	                              nodes' torus links
//
// Times and durations take a unit suffix: ps, ns, us, ms, or s
// (e.g. "kill=5@2.5ms", "noise=1ms/50us").
func ParseSpec(s string) (*Spec, error) {
	spec := &Spec{seed: 1}
	for _, dir := range strings.Split(s, ",") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		key, val, hasVal := strings.Cut(dir, "=")
		op := specOp{kind: key}
		var err error
		switch key {
		case "recover":
			if hasVal {
				return nil, fmt.Errorf("fault: directive %q takes no value", dir)
			}
		case "log":
			if !hasVal || val != "sender" {
				return nil, fmt.Errorf("fault: log wants sender, got %q", dir)
			}
		case "restart":
			if !hasVal || val != "ckpt" {
				return nil, fmt.Errorf("fault: restart wants ckpt, got %q", dir)
			}
		case "seed":
			spec.seed, err = strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed in %q: %v", dir, err)
			}
			continue
		case "kill":
			nodeS, atS, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("fault: kill wants NODE@TIME, got %q", dir)
			}
			if op.node, err = parseNode(nodeS); err != nil {
				return nil, fmt.Errorf("fault: %v in %q", err, dir)
			}
			d, err := ParseDuration(atS)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("fault: bad kill time in %q", dir)
			}
			op.at = sim.Time(d)
		case "isolate":
			if op.node, err = parseNode(val); err != nil {
				return nil, fmt.Errorf("fault: %v in %q", err, dir)
			}
		case "faillinks":
			op.count, err = strconv.Atoi(val)
			if err != nil || op.count < 0 {
				return nil, fmt.Errorf("fault: bad link count in %q", dir)
			}
		case "degrade":
			fracS, factS, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("fault: degrade wants FRAC:FACTOR, got %q", dir)
			}
			if op.frac, err = parseUnitFloat(fracS); err != nil {
				return nil, fmt.Errorf("fault: %v in %q", err, dir)
			}
			if op.fact, err = parseUnitFloat(factS); err != nil {
				return nil, fmt.Errorf("fault: %v in %q", err, dir)
			}
			if op.fact >= 1 {
				return nil, fmt.Errorf("fault: degrade factor must be below 1 in %q", dir)
			}
		case "noise":
			if val == "machine" {
				op.kind = "noisemachine"
				break
			}
			perS, durS, ok := strings.Cut(val, "/")
			if !ok {
				return nil, fmt.Errorf("fault: noise wants machine or PERIOD/DURATION, got %q", dir)
			}
			if op.noise.Period, err = ParseDuration(perS); err != nil {
				return nil, fmt.Errorf("fault: %v in %q", err, dir)
			}
			if op.noise.Duration, err = ParseDuration(durS); err != nil {
				return nil, fmt.Errorf("fault: %v in %q", err, dir)
			}
			if err := op.noise.Valid(); err != nil {
				return nil, err
			}
		case "blast":
			if op.blast, err = parseBlast(val); err != nil {
				return nil, fmt.Errorf("fault: %v in %q", err, dir)
			}
		default:
			return nil, fmt.Errorf("fault: unknown directive %q", dir)
		}
		spec.ops = append(spec.ops, op)
	}
	return spec, nil
}

func parseNode(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad node %q", s)
	}
	return n, nil
}

func parseUnitFloat(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || f < 0 || f > 1 || f != f {
		return 0, fmt.Errorf("bad fraction %q (want [0, 1])", s)
	}
	return f, nil
}

// ParseBlastSpec parses the blast directive's value grammar —
// TIME/ORIGIN/PC/PM/PR/D with an optional trailing "/links" — outside a
// full fault spec. The facility layer's workload files embed blasts
// with this grammar (`blast=...`) to schedule machine-level correlated
// failures across a whole job mix.
func ParseBlastSpec(s string) (BlastSpec, error) { return parseBlast(s) }

// parseBlast parses TIME/ORIGIN/PC/PM/PR/D with an optional trailing
// "/links".
func parseBlast(s string) (BlastSpec, error) {
	parts := strings.Split(s, "/")
	b := BlastSpec{}
	if n := len(parts); n == 7 && parts[6] == "links" {
		b.FailLinks = true
	} else if n != 6 {
		return b, fmt.Errorf("blast wants TIME/ORIGIN/PC/PM/PR/D[/links], got %d fields", n)
	}
	d, err := ParseDuration(parts[0])
	if err != nil || d < 0 {
		return b, fmt.Errorf("bad blast time %q", parts[0])
	}
	b.At = sim.Time(d)
	if parts[1] == "*" {
		b.Origin = -1
	} else if b.Origin, err = parseNode(parts[1]); err != nil {
		return b, err
	}
	for i, dst := range [...]*float64{&b.PCard, &b.PMidplane, &b.PRack, &b.Density} {
		if *dst, err = parseUnitFloat(parts[2+i]); err != nil {
			return b, err
		}
	}
	return b, nil
}

// ParseDuration parses a simulated duration: a non-negative decimal
// number with a unit suffix ps, ns, us, ms, or s.
func ParseDuration(s string) (sim.Duration, error) {
	num, unit := s, sim.Duration(0)
	for _, u := range [...]struct {
		suffix string
		d      sim.Duration
	}{{"ps", sim.Picosecond}, {"ns", sim.Nanosecond}, {"us", sim.Microsecond}, {"ms", sim.Millisecond}, {"s", sim.Second}} {
		if strings.HasSuffix(s, u.suffix) {
			num, unit = strings.TrimSuffix(s, u.suffix), u.d
			break
		}
	}
	if unit == 0 {
		return 0, fmt.Errorf("duration %q needs a unit (ps, ns, us, ms, s)", s)
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil || f < 0 || f != f {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	d := sim.Seconds(f * unit.Seconds())
	if d < 0 {
		return 0, fmt.Errorf("duration %q overflows", s)
	}
	return d, nil
}

// Build applies the spec to a fresh plan for the given torus and
// packaging hierarchy, returning the plan and the result of each blast
// directive in order.
func (s *Spec) Build(t *topology.Torus, h machine.Hierarchy) (*Plan, []BlastResult, error) {
	p := NewPlan(s.seed)
	var blasts []BlastResult
	nodes := t.Dims.Nodes()
	for _, op := range s.ops {
		switch op.kind {
		case "recover":
			p.EnableRecovery()
		case "log":
			p.EnableSenderLogging()
		case "restart":
			p.EnableCkptRestart()
		case "kill":
			if op.node >= nodes {
				return nil, nil, fmt.Errorf("fault: kill node %d out of range (partition has %d nodes)", op.node, nodes)
			}
			p.KillNode(op.node, op.at)
		case "isolate":
			if op.node >= nodes {
				return nil, nil, fmt.Errorf("fault: isolate node %d out of range (partition has %d nodes)", op.node, nodes)
			}
			p.IsolateNode(t, op.node)
		case "faillinks":
			if _, err := p.FailRandomLinks(t, op.count); err != nil {
				return nil, nil, err
			}
		case "degrade":
			if _, err := p.DegradeRandomLinks(t, op.frac, op.fact); err != nil {
				return nil, nil, err
			}
		case "noise":
			if err := p.SetNoise(op.noise); err != nil {
				return nil, nil, err
			}
		case "noisemachine":
			p.UseMachineNoise()
		case "blast":
			res, err := p.InjectBlast(t, h, op.blast)
			if err != nil {
				return nil, nil, err
			}
			blasts = append(blasts, res)
		}
	}
	// Mode combinations are validated after the walk so directive order
	// within the spec string does not matter.
	if p.LogSender() && !p.Recover() {
		return nil, nil, fmt.Errorf("fault: log=sender requires recover (sender-based replay rides on transparent recovery)")
	}
	if p.RestartCkpt() && !p.LogSender() {
		return nil, nil, fmt.Errorf("fault: restart=ckpt requires log=sender (restart replays the sender logs)")
	}
	return p, blasts, nil
}

// BuildForPartition parses a fault spec and builds it against the torus
// a run on `nodes` nodes of machine `id` will use (the same default
// dimensions mpi.Execute picks). It is the command-line entry point: a
// `-faults` flag string in, a ready plan out.
func BuildForPartition(spec string, id machine.ID, nodes int) (*Plan, []BlastResult, error) {
	s, err := ParseSpec(spec)
	if err != nil {
		return nil, nil, err
	}
	m, err := machine.Lookup(id)
	if err != nil {
		return nil, nil, err
	}
	return s.Build(topology.NewTorus(topology.DimsForNodes(nodes)), m.Hierarchy())
}
