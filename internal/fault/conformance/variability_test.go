package conformance

import (
	"testing"

	"bgpsim/internal/fault"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/topology"
)

// computeRing mixes per-iteration compute blocks with neighbour
// exchanges so both variability channels are load-bearing: clock
// multipliers stretch the Compute calls, link factors stretch the
// message transfers.
func computeRing(iters, bytes int) func(*mpi.Rank) {
	return func(r *mpi.Rank) {
		right := (r.ID() + 1) % r.Size()
		left := (r.ID() - 1 + r.Size()) % r.Size()
		for k := 0; k < iters; k++ {
			r.Compute(1e6, 5e5, 0)
			r.Sendrecv(right, bytes, k, left, k)
		}
	}
}

func varPlan(t *testing.T, seed uint64, clockCV, linkCV float64) *fault.Plan {
	t.Helper()
	p := fault.NewPlan(seed)
	if err := p.SetVariability(fault.Variability{Seed: seed, ClockCV: clockCV, LinkCV: linkCV}); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestVariabilityNeverFaster pins the variability engine's core
// property: per-node performance variability is pure degradation.
// Clock multipliers are >= 1 and link factors are <= 1 by
// construction, so no seed and no CV combination may make a run
// complete sooner than the healthy run.
func TestVariabilityNeverFaster(t *testing.T) {
	const nodes = 64
	dims := topology.Dims{4, 4, 4}
	prog := computeRing(4, 64<<10)
	healthy, err := mpi.Execute(bgpConfig(t, nodes, dims, nil), prog)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name             string
		clockCV, linkCV  float64
		wantStrictlyOnce bool // at least one seed must actually move the clock
	}{
		{"clock only 3%", 0.03, 0, true},
		{"link only 8%", 0, 0.08, true},
		{"clock 2% link 5%", 0.02, 0.05, true},
	}
	for _, c := range cases {
		sawSlower := false
		for seed := uint64(1); seed <= 5; seed++ {
			p := varPlan(t, seed, c.clockCV, c.linkCV)
			res, err := mpi.Execute(bgpConfig(t, nodes, dims, p), prog)
			if err != nil {
				t.Fatalf("%s seed %d: %v", c.name, seed, err)
			}
			if res.Elapsed < healthy.Elapsed {
				t.Errorf("%s seed %d: noisy run %v beat healthy %v",
					c.name, seed, res.Elapsed, healthy.Elapsed)
			}
			if res.Elapsed > healthy.Elapsed {
				sawSlower = true
			}
		}
		if c.wantStrictlyOnce && !sawSlower {
			t.Errorf("%s: no seed slowed the run at all; the variability draws are not reaching the models", c.name)
		}
	}
}

// TestVariabilityComposesWithFaults: variability stacks on top of a
// degraded-link plan, and the combination is never faster than either
// ingredient alone.
func TestVariabilityComposesWithFaults(t *testing.T) {
	const nodes = 64
	dims := topology.Dims{4, 4, 4}
	prog := computeRing(4, 64<<10)

	degraded := func(withVar bool) *fault.Plan {
		p := fault.NewPlan(3)
		tor := topology.NewTorus(dims)
		if _, err := p.DegradeRandomLinks(tor, 0.2, 0.5); err != nil {
			t.Fatal(err)
		}
		if withVar {
			if err := p.SetVariability(fault.Variability{Seed: 3, ClockCV: 0.02, LinkCV: 0.05}); err != nil {
				t.Fatal(err)
			}
		}
		return p
	}
	faultsOnly, err := mpi.Execute(bgpConfig(t, nodes, dims, degraded(false)), prog)
	if err != nil {
		t.Fatal(err)
	}
	varOnly, err := mpi.Execute(bgpConfig(t, nodes, dims, varPlan(t, 3, 0.02, 0.05)), prog)
	if err != nil {
		t.Fatal(err)
	}
	both, err := mpi.Execute(bgpConfig(t, nodes, dims, degraded(true)), prog)
	if err != nil {
		t.Fatal(err)
	}
	if both.Elapsed < faultsOnly.Elapsed {
		t.Errorf("faults+variability %v beat faults alone %v", both.Elapsed, faultsOnly.Elapsed)
	}
	if both.Elapsed < varOnly.Elapsed {
		t.Errorf("faults+variability %v beat variability alone %v", both.Elapsed, varOnly.Elapsed)
	}
}

// TestVariabilityShardInvariance is the CRN guarantee at the kernel
// level: a variability-only plan keeps a job shard-eligible (it has no
// link faults), and the same seed produces byte-identical elapsed
// times and event counts on the serial kernel and at every shard
// count. Common-random-numbers comparisons across configurations
// depend on exactly this.
func TestVariabilityShardInvariance(t *testing.T) {
	const nodes = 64
	dims := topology.Dims{4, 4, 4}
	prog := computeRing(6, 32<<10)

	run := func(seed uint64, shards int) *mpi.Result {
		cfg := bgpConfig(t, nodes, dims, varPlan(t, seed, 0.02, 0.05))
		cfg.Fidelity = network.Analytic
		cfg.Shards = shards
		res, err := mpi.Execute(cfg, prog)
		if err != nil {
			t.Fatalf("seed %d shards %d: %v", seed, shards, err)
		}
		return res
	}
	for seed := uint64(1); seed <= 3; seed++ {
		serial := run(seed, 0)
		for _, shards := range []int{1, 2, 4} {
			res := run(seed, shards)
			if shards > 1 && res.Shards != shards {
				t.Fatalf("seed %d: requested %d shards, ran on %d — variability plan lost shard eligibility", seed, shards, res.Shards)
			}
			if res.Elapsed != serial.Elapsed {
				t.Errorf("seed %d shards %d: elapsed %v != serial %v", seed, shards, res.Elapsed, serial.Elapsed)
			}
			if res.Events != serial.Events {
				t.Errorf("seed %d shards %d: events %d != serial %d", seed, shards, res.Events, serial.Events)
			}
		}
	}
	// Different seeds must actually draw different noise, or the CRN
	// sweep would average one sample N times.
	if run(1, 0).Elapsed == run(2, 0).Elapsed && run(1, 0).Elapsed == run(3, 0).Elapsed {
		t.Error("seeds 1..3 produced identical elapsed times; variability seeding is inert")
	}
}
