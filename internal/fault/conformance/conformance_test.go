package conformance

import (
	"testing"

	"bgpsim/internal/fault"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

func bgpConfig(t *testing.T, nodes int, dims topology.Dims, plan *fault.Plan) mpi.Config {
	t.Helper()
	m, err := machine.Lookup("BG/P")
	if err != nil {
		t.Fatal(err)
	}
	return mpi.Config{
		Machine:  m,
		Nodes:    nodes,
		Dims:     dims,
		Mode:     machine.SMP,
		Fidelity: network.Contention,
		Faults:   plan,
	}
}

// ringExchange couples every rank to its torus neighbours, so link
// faults on used routes show up in the elapsed time.
func ringExchange(iters, bytes int) func(*mpi.Rank) {
	return func(r *mpi.Rank) {
		right := (r.ID() + 1) % r.Size()
		left := (r.ID() - 1 + r.Size()) % r.Size()
		for k := 0; k < iters; k++ {
			r.Sendrecv(right, bytes, k, left, k)
		}
	}
}

// barrierLoop couples ranks only through collectives, so node deaths
// are recoverable.
func barrierLoop(iters int) func(*mpi.Rank) {
	return func(r *mpi.Rank) {
		for i := 0; i < iters; i++ {
			r.Advance(10 * sim.Microsecond)
			r.World().Barrier(r)
		}
	}
}

// TestFaultyNeverFaster pins the harness's first property: no fault
// plan may make a run complete sooner than the healthy run. Degraded
// links, failed-and-rerouted links, forced noise, and recovered node
// deaths are each tried under several placement seeds.
func TestFaultyNeverFaster(t *testing.T) {
	const nodes = 64
	dims := topology.Dims{4, 4, 4}
	prog := ringExchange(4, 64<<10)
	healthy, err := mpi.Execute(bgpConfig(t, nodes, dims, nil), prog)
	if err != nil {
		t.Fatal(err)
	}

	plans := []struct {
		name  string
		build func(seed uint64) (*fault.Plan, error)
	}{
		{"degrade 20% to half bandwidth", func(seed uint64) (*fault.Plan, error) {
			p := fault.NewPlan(seed)
			tor := topology.NewTorus(dims)
			_, err := p.DegradeRandomLinks(tor, 0.2, 0.5)
			return p, err
		}},
		{"fail 3 links with rerouting", func(seed uint64) (*fault.Plan, error) {
			p := fault.NewPlan(seed)
			tor := topology.NewTorus(dims)
			_, err := p.FailRandomLinks(tor, 3)
			return p, err
		}},
		{"forced 50us/1ms noise", func(seed uint64) (*fault.Plan, error) {
			p := fault.NewPlan(seed)
			err := p.SetNoise(fault.NoiseProfile{Period: sim.Millisecond, Duration: 50 * sim.Microsecond})
			return p, err
		}},
	}
	for _, pl := range plans {
		for seed := uint64(1); seed <= 5; seed++ {
			p, err := pl.build(seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", pl.name, seed, err)
			}
			res, err := mpi.Execute(bgpConfig(t, nodes, dims, p), prog)
			if err != nil {
				t.Fatalf("%s seed %d: %v", pl.name, seed, err)
			}
			if res.Elapsed < healthy.Elapsed {
				t.Errorf("%s seed %d: faulty run %v beat healthy %v",
					pl.name, seed, res.Elapsed, healthy.Elapsed)
			}
		}
	}

	// Node death under transparent recovery, collective-only program.
	const recNodes = 8
	recDims := topology.Dims{2, 2, 2}
	recHealthy, err := mpi.Execute(bgpConfig(t, recNodes, recDims, nil), barrierLoop(6))
	if err != nil {
		t.Fatal(err)
	}
	for kill := 0; kill < recNodes; kill++ {
		p := fault.NewPlan(1)
		p.KillNode(kill, sim.Time(25*sim.Microsecond))
		p.EnableRecovery()
		res, err := mpi.Execute(bgpConfig(t, recNodes, recDims, p), barrierLoop(6))
		if err != nil {
			t.Fatalf("kill %d: %v", kill, err)
		}
		if res.Elapsed < recHealthy.Elapsed {
			t.Errorf("kill %d: recovered run %v beat healthy %v", kill, res.Elapsed, recHealthy.Elapsed)
		}
	}
}

// TestRecoverySemanticsMultiDeath kills two leaves of the collective
// tree at different times and checks that every survivor's final
// allreduce is the combination of exactly the survivors' values.
func TestRecoverySemanticsMultiDeath(t *testing.T) {
	const nodes = 16
	dims := topology.Dims{4, 2, 2}
	p := fault.NewPlan(1)
	p.KillNode(5, sim.Time(30*sim.Microsecond))
	p.KillNode(11, sim.Time(70*sim.Microsecond))
	p.EnableRecovery()
	got := make([]interface{}, nodes)
	res, err := mpi.Execute(bgpConfig(t, nodes, dims, p), func(r *mpi.Rank) {
		for i := 0; i < 5; i++ {
			r.Advance(20 * sim.Microsecond)
			got[r.ID()] = r.World().AllreducePayload(r, 8, 1<<uint(r.ID()),
				func(a, b interface{}) interface{} { return a.(int) + b.(int) })
		}
	})
	if err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
	if len(res.Lost) != 2 || res.Lost[0] != 5 || res.Lost[1] != 11 {
		t.Fatalf("Lost = %v, want [5 11]", res.Lost)
	}
	want := 0
	for id := 0; id < nodes; id++ {
		if id != 5 && id != 11 {
			want += 1 << uint(id)
		}
	}
	for id := 0; id < nodes; id++ {
		if id == 5 || id == 11 {
			continue
		}
		if got[id] != want {
			t.Errorf("rank %d final allreduce = %v, want %d (sum over survivors)", id, got[id], want)
		}
	}
}

// TestRecoveryDeterminism pins byte-identical replay: the same plan
// and program give identical elapsed time, loss list, and recovery
// accounting on every run.
func TestRecoveryDeterminism(t *testing.T) {
	run := func() *mpi.Result {
		p := fault.NewPlan(3)
		p.KillNode(2, sim.Time(35*sim.Microsecond))
		p.KillNode(9, sim.Time(90*sim.Microsecond))
		p.EnableRecovery()
		res, err := mpi.Execute(bgpConfig(t, 16, topology.Dims{4, 2, 2}, p), barrierLoop(8))
		if err != nil {
			t.Fatalf("recovery run failed: %v", err)
		}
		return res
	}
	first := run()
	for i := 0; i < 2; i++ {
		again := run()
		if again.Elapsed != first.Elapsed {
			t.Errorf("run %d: elapsed %v != %v", i+2, again.Elapsed, first.Elapsed)
		}
		if len(again.Lost) != len(first.Lost) {
			t.Errorf("run %d: lost %v != %v", i+2, again.Lost, first.Lost)
		}
		if again.Net.Recoveries != first.Net.Recoveries ||
			again.Net.TreeRebuilds != first.Net.TreeRebuilds ||
			again.Net.HWFallbacks != first.Net.HWFallbacks ||
			again.Net.RecoveryTime != first.Net.RecoveryTime {
			t.Errorf("run %d: recovery stats diverged: %+v vs %+v", i+2, again.Net, first.Net)
		}
	}
}

// TestRecoveryChargesLatency checks the accounting identity: in a
// collective-only program with a single leaf death, the elapsed-time
// penalty of the faulty run over the healthy run is the charged
// recovery latency. Tolerance: the penalty must be within [1x, 1.5x]
// of Stats.RecoveryTime (the upper slack absorbs algorithm-cost
// differences after the membership change).
func TestRecoveryChargesLatency(t *testing.T) {
	const nodes = 8
	dims := topology.Dims{2, 2, 2}
	healthy, err := mpi.Execute(bgpConfig(t, nodes, dims, nil), barrierLoop(6))
	if err != nil {
		t.Fatal(err)
	}
	p := fault.NewPlan(1)
	p.KillNode(7, sim.Time(25*sim.Microsecond)) // leaf: the HW tree survives
	p.EnableRecovery()
	faulty, err := mpi.Execute(bgpConfig(t, nodes, dims, p), barrierLoop(6))
	if err != nil {
		t.Fatal(err)
	}
	penalty := faulty.Elapsed - healthy.Elapsed
	charged := faulty.Net.RecoveryTime
	if charged <= 0 {
		t.Fatal("no recovery latency charged")
	}
	if penalty < charged || penalty > charged+charged/2 {
		t.Errorf("elapsed penalty %v vs charged recovery %v: want within [1x, 1.5x]", penalty, charged)
	}
}

// TestBlastRecovery drives the full stack through the spec language: a
// correlated blast escalating to a node card kills 32 of 64 nodes at
// once, recovery demotes the severed collective tree to torus
// algorithms, and the survivors still agree on a payload allreduce.
func TestBlastRecovery(t *testing.T) {
	const nodes = 64
	dims := topology.Dims{4, 4, 4}
	spec, err := fault.ParseSpec("seed=9,recover,blast=40us/7/1/0/0/1")
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.Lookup("BG/P")
	if err != nil {
		t.Fatal(err)
	}
	tor := topology.NewTorus(dims)
	plan, blasts, err := spec.Build(tor, m.Hierarchy())
	if err != nil {
		t.Fatal(err)
	}
	if len(blasts) != 1 || blasts[0].Level != fault.BlastCard {
		t.Fatalf("blast = %+v, want one card-level blast", blasts)
	}
	if len(blasts[0].Dead) != 32 {
		t.Fatalf("card blast killed %d nodes, want the whole 32-node card", len(blasts[0].Dead))
	}
	got := make([]interface{}, nodes)
	res, err := mpi.Execute(bgpConfig(t, nodes, dims, plan), func(r *mpi.Rank) {
		for i := 0; i < 4; i++ {
			r.Advance(20 * sim.Microsecond)
			got[r.ID()] = r.World().AllreducePayload(r, 8, 1,
				func(a, b interface{}) interface{} { return a.(int) + b.(int) })
		}
	})
	if err != nil {
		t.Fatalf("blast recovery run failed: %v", err)
	}
	if len(res.Lost) != 32 {
		t.Fatalf("Lost %d ranks, want 32: %v", len(res.Lost), res.Lost)
	}
	if res.Net.HWFallbacks == 0 {
		t.Error("losing interior tree nodes should demote HW collectives")
	}
	dead := make(map[int]bool, len(res.Lost))
	for _, id := range res.Lost {
		dead[id] = true
	}
	for id := 0; id < nodes; id++ {
		if dead[id] {
			continue
		}
		if got[id] != nodes-32 {
			t.Errorf("rank %d final allreduce = %v, want %d (count of survivors)", id, got[id], nodes-32)
		}
	}
}
