package conformance

import (
	"math"
	"testing"

	"bgpsim/internal/ckpt"
	"bgpsim/internal/fault"
	"bgpsim/internal/iosys"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/sim"
)

// analyticConfig is the sharding-eligible twin of bgpConfig: the
// analytic fidelity has no shared per-link state, so the same run can
// execute serial or at any shard count and must agree byte for byte.
func analyticConfig(t *testing.T, nodes, shards int, plan *fault.Plan) mpi.Config {
	t.Helper()
	m, err := machine.Lookup("BG/P")
	if err != nil {
		t.Fatal(err)
	}
	return mpi.Config{
		Machine:  m,
		Nodes:    nodes,
		Mode:     machine.SMP,
		Fidelity: network.Analytic,
		Shards:   shards,
		Faults:   plan,
	}
}

// pairExchange couples rank i to rank i^1 with plain sends and
// receives: pure point-to-point traffic, so a node kill strands
// exactly one partner unless sender logging cancels the orphans.
// Sizes alternate across BG/P's eager/rendezvous switch.
func pairExchange(iters int) func(*mpi.Rank) {
	return func(r *mpi.Rank) {
		p := r.ID() ^ 1
		if p >= r.Size() {
			return
		}
		for i := 0; i < iters; i++ {
			r.Advance(10 * sim.Microsecond)
			bytes := 512
			if i%2 == 1 {
				bytes = 50_000
			}
			if r.ID() < p {
				r.Send(p, bytes, i)
				r.Recv(p, i)
			} else {
				r.Recv(p, i)
				r.Send(p, bytes, i)
			}
		}
	}
}

func senderLogPlan(node int, restart bool) *fault.Plan {
	p := fault.NewPlan(1)
	p.KillNode(node, sim.Time(25*sim.Microsecond))
	p.EnableRecovery()
	p.EnableSenderLogging()
	if restart {
		p.EnableCkptRestart()
	}
	return p
}

// TestReplayedNeverFaster extends the harness's first property to the
// message-logging layer: neither orphan cancellation (log=sender) nor
// user-level restart (restart=ckpt) may let a run with a killed node
// beat the healthy run, whichever node dies.
func TestReplayedNeverFaster(t *testing.T) {
	const nodes = 8
	prog := pairExchange(6)
	healthy, err := mpi.Execute(analyticConfig(t, nodes, 0, nil), prog)
	if err != nil {
		t.Fatal(err)
	}
	for kill := 0; kill < nodes; kill++ {
		for _, restart := range []bool{false, true} {
			res, err := mpi.Execute(analyticConfig(t, nodes, 0, senderLogPlan(kill, restart)), prog)
			if err != nil {
				t.Fatalf("kill %d restart=%v: %v", kill, restart, err)
			}
			if res.Elapsed < healthy.Elapsed {
				t.Errorf("kill %d restart=%v: replayed run %v beat healthy %v",
					kill, restart, res.Elapsed, healthy.Elapsed)
			}
			if restart {
				if len(res.Lost) != 0 || len(res.PeerLost) != 0 {
					t.Errorf("kill %d: restart mode lost ranks: Lost=%v PeerLost=%v",
						kill, res.Lost, res.PeerLost)
				}
				// A restart is never free: reboot plus rework are charged.
				if res.Elapsed == healthy.Elapsed {
					t.Errorf("kill %d: restarted run matched healthy exactly; restart charged nothing", kill)
				}
			}
		}
	}
}

// killSchedule draws a deterministic exponential failure schedule at
// rate nodes/nodeMTBF and returns it as a fault plan with user-level
// restart. Same seed, same schedule: the interval sweep below compares
// checkpoint intervals on identical failure realizations (common
// random numbers), exactly like TestCheckpointOptimumDifferential.
func killSchedule(seed uint64, nodes int, nodeMTBF, horizon float64) *fault.Plan {
	p := fault.NewPlan(seed)
	p.EnableRecovery()
	p.EnableSenderLogging()
	p.EnableCkptRestart()
	m := nodeMTBF / float64(nodes)
	rng := sim.NewRNG(seed ^ 0x9e3779b97f4a7c15)
	t := 0.0
	for len(p.NodeFaults()) < 64 {
		t += -m * math.Log(1-rng.Float64())
		if t >= horizon {
			break
		}
		node := int(rng.Float64() * float64(nodes))
		if node >= nodes {
			node = nodes - 1
		}
		p.KillNode(node, sim.Time(sim.Seconds(t)))
	}
	return p
}

// TestRestartTTSDalyDifferential is the replay layer's differential
// check: failures injected at the MPI layer (node kills priced as
// user-level restarts — reboot, checkpoint read-back, rework since the
// last commit) must reproduce the analytic Daly expectation for the
// same checkpointing application, and sweeping the interval on common
// random numbers must keep the Young/Daly optimum competitive.
//
// Tolerances, stated: at the analytic optimum the mean simulated TTS
// over the seeds must be within [0.75, 1.7] of
// Checkpointer.ExpectedRuntime. The lower slack exists because the
// restart floor lets a restarted rank rejoin no earlier than restart
// completion but overlaps the charge with any segment still in flight,
// which under-prices kills early in a segment; the parameters below
// keep reboot+read on the order of the segment so the floor binds for
// most kills. The upper slack absorbs store-and-forward checkpoint
// writes (up to 1.5x the pipelined closed form) plus sampling noise.
func TestRestartTTSDalyDifferential(t *testing.T) {
	m, err := machine.Lookup("BG/P")
	if err != nil {
		t.Fatal(err)
	}
	const (
		nodes        = 16
		work         = 1500.0
		bytesPerNode = 4 << 20
		reboot       = 60.0
		nodeMTBF     = 1500.0 * nodes // system MTBF 1500s: failures matter
		seeds        = 6
	)
	storage := iosys.ORNLEugene()

	delta, err := fault.CheckpointWriteCost(storage, nodes, bytesPerNode)
	if err != nil {
		t.Fatal(err)
	}
	mtbf := fault.SystemMTBF(nodeMTBF, nodes)
	opt := fault.YoungDaly(delta, mtbf)
	if opt <= 0 || opt >= work {
		t.Fatalf("degenerate analytic optimum %.1fs for work %.0fs", opt, work)
	}

	factors := []float64{0.5, 1, 2}
	mean := make([]float64, len(factors))
	for i, f := range factors {
		for seed := uint64(1); seed <= seeds; seed++ {
			res, err := ckpt.Run(ckpt.Params{
				Machine:      m,
				Nodes:        nodes,
				Storage:      storage,
				Work:         work,
				Interval:     opt * f,
				BytesPerNode: bytesPerNode,
				Reboot:       reboot,
				// NodeMTBF stays zero: every failure arrives through the
				// MPI fault plan and is priced by the restart layer.
				Seed:   seed,
				Faults: killSchedule(seed, nodes, nodeMTBF, 4*work),
			})
			if err != nil {
				t.Fatalf("interval %.0fs seed %d: %v", opt*f, seed, err)
			}
			if res.TTS < work {
				t.Fatalf("interval %.0fs seed %d: TTS %.0fs below the failure-free work %.0fs",
					opt*f, seed, res.TTS, work)
			}
			mean[i] += res.TTS / seeds
		}
	}
	t.Logf("delta=%.2fs MTBF=%.0fs optimum=%.0fs; mean TTS by factor: %v -> %v",
		delta, mtbf, opt, factors, mean)

	c := fault.Checkpointer{Interval: opt, WriteCost: delta, RestartCost: reboot + delta, MTBF: mtbf}
	want, err := c.ExpectedRuntime(work)
	if err != nil {
		t.Fatal(err)
	}
	got := mean[1] // factor 1
	if ratio := got / want; ratio < 0.75 || ratio > 1.7 {
		t.Errorf("simulated mean TTS %.0fs vs Daly expectation %.0fs at the optimum (ratio %.3f, want [0.75, 1.7])",
			got, want, ratio)
	}
}

// TestReplaySerialShardEquivalence pins the replay layer's determinism
// contract at the conformance level: a kill cancelling orphans (or
// triggering a restart with log replay) must produce identical results
// serial and at shards 1, 2, 4, and 8.
func TestReplaySerialShardEquivalence(t *testing.T) {
	const nodes = 16
	progs := []struct {
		name    string
		restart bool
		prog    func(*mpi.Rank)
	}{
		{"cancel", false, pairExchange(6)},
		{"restart", true, func(r *mpi.Rank) {
			n := r.Size()
			for i := 0; i < 6; i++ {
				r.Advance(10 * sim.Microsecond)
				r.Sendrecv((r.ID()+1)%n, 1000+100*r.ID(), 1, (r.ID()+n-1)%n, 1)
				if i == 2 {
					r.CommitCheckpoint(1 << 20)
				}
			}
		}},
	}
	for _, pc := range progs {
		serial, err := mpi.Execute(analyticConfig(t, nodes, 0, senderLogPlan(5, pc.restart)), pc.prog)
		if err != nil {
			t.Fatalf("%s serial: %v", pc.name, err)
		}
		for _, shards := range []int{1, 2, 4, 8} {
			res, err := mpi.Execute(analyticConfig(t, nodes, shards, senderLogPlan(5, pc.restart)), pc.prog)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", pc.name, shards, err)
			}
			if res.Elapsed != serial.Elapsed || res.Events != serial.Events {
				t.Errorf("%s shards=%d: elapsed/events %v/%d != serial %v/%d",
					pc.name, shards, res.Elapsed, res.Events, serial.Elapsed, serial.Events)
			}
			if len(res.Lost) != len(serial.Lost) {
				t.Errorf("%s shards=%d: Lost %v != serial %v", pc.name, shards, res.Lost, serial.Lost)
			}
			if len(res.PeerLost) != len(serial.PeerLost) {
				t.Errorf("%s shards=%d: PeerLost %v != serial %v", pc.name, shards, res.PeerLost, serial.PeerLost)
			} else {
				for i, pl := range res.PeerLost {
					if *pl != *serial.PeerLost[i] {
						t.Errorf("%s shards=%d: PeerLost[%d] %+v != serial %+v",
							pc.name, shards, i, *pl, *serial.PeerLost[i])
					}
				}
			}
			if res.Net.Orphans != serial.Net.Orphans ||
				res.Net.Restarts != serial.Net.Restarts ||
				res.Net.Replays != serial.Net.Replays ||
				res.Net.ReplayBytes != serial.Net.ReplayBytes ||
				res.Net.ReplayTime != serial.Net.ReplayTime ||
				res.Net.RestartTime != serial.Net.RestartTime ||
				res.Net.Messages != serial.Net.Messages ||
				res.Net.Bytes != serial.Net.Bytes {
				t.Errorf("%s shards=%d: network stats diverged:\n%+v\nvs serial\n%+v",
					pc.name, shards, res.Net, serial.Net)
			}
		}
	}
}
