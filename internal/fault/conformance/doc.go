// Package conformance is the resilience layer's differential test
// harness. It holds no simulator code: every file is a property test,
// fuzz target, or differential check that pins the contracts the fault
// and recovery layers must keep:
//
//   - Faults never speed a run up: for any fault plan (degraded links,
//     failed-and-rerouted links, forced OS noise, node deaths under
//     recovery) the simulated elapsed time is at least the healthy
//     run's.
//   - Transparent recovery preserves collective semantics: after any
//     sequence of recoverable node deaths, payload collectives deliver
//     the combination of exactly the survivors' contributions, and
//     Result.Lost names exactly the dead ranks.
//   - Recovery is deterministic and charged: repeated runs of the same
//     plan are byte-identical, and the extra elapsed time of a faulty
//     run is accounted for by network.Stats.RecoveryTime.
//   - The simulated checkpoint/restart application (internal/ckpt),
//     whose checkpoints are real writes through the storage model,
//     agrees with the analytic Daly model (internal/fault): the
//     simulated optimal interval lands within a factor of two of
//     fault.YoungDaly, and the simulated time-to-solution tracks
//     Checkpointer.ExpectedRuntime.
//
// Tolerances are stated next to each check. The harness sits under
// internal/fault so `go test ./internal/fault/...` runs the whole
// resilience contract.
package conformance
