package conformance

import (
	"testing"

	"bgpsim/internal/fault"
	"bgpsim/internal/mpi"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

// FuzzTreeRecoverable differentially checks the collective tree's
// recoverability predicate against an independent formulation: the
// tree is unrecoverable exactly when some dead node is some tree
// node's parent. The implementation asks each dead node whether it has
// children; the oracle scans every child and asks whether its parent
// is dead.
func FuzzTreeRecoverable(f *testing.F) {
	f.Add(uint8(16), uint8(3), uint64(0))
	f.Add(uint8(16), uint8(3), uint64(1<<5|1<<11))
	f.Add(uint8(16), uint8(3), uint64(1))
	f.Add(uint8(64), uint8(3), uint64(1<<33))
	f.Add(uint8(2), uint8(2), uint64(3))
	f.Fuzz(func(t *testing.T, n, arity uint8, deadMask uint64) {
		nodes := int(n)
		if nodes < 1 {
			nodes = 1
		}
		tree := topology.NewCollectiveTree(nodes, int(arity))
		var dead []int
		deadSet := make(map[int]bool)
		for i := 0; i < nodes && i < 64; i++ {
			if deadMask&(1<<uint(i)) != 0 {
				dead = append(dead, i)
				deadSet[i] = true
			}
		}
		oracle := true
		for child := 1; child < nodes; child++ {
			if deadSet[(child-1)/tree.Arity] {
				oracle = false
				break
			}
		}
		if got := tree.Recoverable(dead); got != oracle {
			t.Errorf("Recoverable(n=%d arity=%d dead=%v) = %v, parent-scan oracle says %v",
				nodes, tree.Arity, dead, got, oracle)
		}
	})
}

// FuzzRecoverySmall drives transparent recovery with fuzzed kill
// configurations on a small partition and checks the harness's core
// properties on every input: the run completes (collective-only
// programs survive any single node death), is deterministic, loses
// exactly the killed rank, and is never faster than the healthy run.
func FuzzRecoverySmall(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(25), uint64(1))
	f.Add(uint8(1), uint8(7), uint8(25), uint64(1))
	f.Add(uint8(2), uint8(3), uint8(90), uint64(3))
	f.Add(uint8(2), uint8(0), uint8(1), uint64(9))
	f.Fuzz(func(t *testing.T, sizeSel, kill, atUs uint8, seed uint64) {
		shapes := []struct {
			nodes int
			dims  topology.Dims
		}{
			{4, topology.Dims{2, 2, 1}},
			{8, topology.Dims{2, 2, 2}},
			{16, topology.Dims{4, 2, 2}},
		}
		sh := shapes[int(sizeSel)%len(shapes)]
		victim := int(kill) % sh.nodes
		at := sim.Time(int64(atUs)+1) * sim.Time(sim.Microsecond)

		healthy, err := mpi.Execute(bgpConfig(t, sh.nodes, sh.dims, nil), barrierLoop(6))
		if err != nil {
			t.Fatal(err)
		}
		run := func() *mpi.Result {
			p := fault.NewPlan(seed)
			p.KillNode(victim, at)
			p.EnableRecovery()
			res, err := mpi.Execute(bgpConfig(t, sh.nodes, sh.dims, p), barrierLoop(6))
			if err != nil {
				t.Fatalf("nodes=%d kill=%d at=%v: %v", sh.nodes, victim, at, err)
			}
			return res
		}
		first := run()
		if len(first.Lost) != 1 || first.Lost[0] != victim {
			t.Errorf("Lost = %v, want [%d]", first.Lost, victim)
		}
		if first.Elapsed < healthy.Elapsed {
			t.Errorf("faulty run %v beat healthy %v", first.Elapsed, healthy.Elapsed)
		}
		again := run()
		if again.Elapsed != first.Elapsed || again.Net.RecoveryTime != first.Net.RecoveryTime {
			t.Errorf("nondeterministic recovery: %v/%v vs %v/%v",
				first.Elapsed, first.Net.RecoveryTime, again.Elapsed, again.Net.RecoveryTime)
		}
	})
}
