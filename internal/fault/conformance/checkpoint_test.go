package conformance

import (
	"testing"

	"bgpsim/internal/ckpt"
	"bgpsim/internal/fault"
	"bgpsim/internal/iosys"
	"bgpsim/internal/machine"
)

// TestCheckpointOptimumDifferential is the harness's headline
// differential check: the simulated checkpoint/restart application
// (internal/ckpt — checkpoints are real writes through the storage
// model, failures are seeded exponential arrivals) must agree with the
// analytic Daly model (internal/fault).
//
// Two assertions, with stated tolerances:
//
//  1. Sweeping the checkpoint interval over {1/4, 1/2, 1, 2, 4} times
//     fault.YoungDaly's optimum, the interval minimizing the mean
//     simulated time-to-solution lies within a factor of two of the
//     analytic optimum (Young/Daly is itself a first-order optimum,
//     and the cost curve is flat near it).
//  2. At the analytic optimum, the mean simulated time-to-solution is
//     within [0.9, 1.6] of Checkpointer.ExpectedRuntime: the simulated
//     writes are store-and-forward (up to 1.5x the pipelined closed
//     form) and ten seeds leave residual sampling noise.
//
// The same seeds are used at every interval (common random numbers),
// so the sweep compares intervals on identical failure realizations.
func TestCheckpointOptimumDifferential(t *testing.T) {
	m, err := machine.Lookup("BG/P")
	if err != nil {
		t.Fatal(err)
	}
	const (
		nodes        = 64
		work         = 2000.0
		bytesPerNode = 16 << 20
		reboot       = 60.0
		nodeMTBF     = 1800.0 * nodes // system MTBF 1800s: failures matter
		seeds        = 10
	)
	storage := iosys.ORNLEugene()

	delta, err := fault.CheckpointWriteCost(storage, nodes, bytesPerNode)
	if err != nil {
		t.Fatal(err)
	}
	mtbf := fault.SystemMTBF(nodeMTBF, nodes)
	opt := fault.YoungDaly(delta, mtbf)
	if opt <= 0 || opt >= work {
		t.Fatalf("degenerate analytic optimum %.1fs for work %.0fs", opt, work)
	}

	factors := []float64{0.25, 0.5, 1, 2, 4}
	mean := make([]float64, len(factors))
	for i, f := range factors {
		for seed := uint64(1); seed <= seeds; seed++ {
			res, err := ckpt.Run(ckpt.Params{
				Machine:      m,
				Nodes:        nodes,
				Storage:      storage,
				Work:         work,
				Interval:     opt * f,
				BytesPerNode: bytesPerNode,
				Reboot:       reboot,
				NodeMTBF:     nodeMTBF,
				Seed:         seed,
			})
			if err != nil {
				t.Fatalf("interval %.0fs seed %d: %v", opt*f, seed, err)
			}
			mean[i] += res.TTS / seeds
		}
	}

	best := 0
	for i := range mean {
		if mean[i] < mean[best] {
			best = i
		}
	}
	t.Logf("delta=%.2fs MTBF=%.0fs optimum=%.0fs; mean TTS by factor: %v -> %v", delta, mtbf, opt, factors, mean)
	if factors[best] < 0.5 || factors[best] > 2 {
		t.Errorf("simulated optimal interval %.2gx the Young/Daly optimum, want within a factor of 2", factors[best])
	}

	// Read-back of the checkpoint dominates the restart cost alongside
	// the reboot; the analytic model prices it like a write sans
	// metadata.
	c := fault.Checkpointer{Interval: opt, WriteCost: delta, RestartCost: reboot + delta, MTBF: mtbf}
	want, err := c.ExpectedRuntime(work)
	if err != nil {
		t.Fatal(err)
	}
	got := mean[2] // factor 1
	if ratio := got / want; ratio < 0.9 || ratio > 1.6 {
		t.Errorf("simulated mean TTS %.0fs vs Daly expectation %.0fs at the optimum (ratio %.3f, want [0.9, 1.6])",
			got, want, ratio)
	}
}
