package fault

import (
	"strings"
	"testing"

	"bgpsim/internal/machine"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want sim.Duration
		ok   bool
	}{
		{"5ps", 5 * sim.Picosecond, true},
		{"2.5ms", 2500 * sim.Microsecond, true},
		{"1s", sim.Second, true},
		{"50us", 50 * sim.Microsecond, true},
		{"3ns", 3 * sim.Nanosecond, true},
		{"0s", 0, true},
		{"5", 0, false}, // no unit
		{"-1ms", 0, false},
		{"xs", 0, false},
		{"", 0, false},
		{"1e400s", 0, false}, // float parse overflow
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseDuration(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseDuration(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseSpecBuild(t *testing.T) {
	spec, err := ParseSpec("seed=9, recover, log=sender, restart=ckpt, kill=5@2ms, faillinks=3, degrade=0.5:0.25, noise=1ms/50us")
	if err != nil {
		t.Fatal(err)
	}
	tor := topology.NewTorus(topology.Dims{4, 4, 4})
	p, blasts, err := spec.Build(tor, machine.Hierarchy{Card: 4, Midplane: 16, Rack: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(blasts) != 0 {
		t.Errorf("no blast directive but %d blast results", len(blasts))
	}
	if p.Seed() != 9 {
		t.Errorf("seed = %d, want 9", p.Seed())
	}
	if !p.Recover() {
		t.Error("recover directive not applied")
	}
	if !p.LogSender() {
		t.Error("log=sender directive not applied")
	}
	if !p.RestartCkpt() {
		t.Error("restart=ckpt directive not applied")
	}
	nf := p.NodeFaults()
	if len(nf) != 1 || nf[0].Node != 5 || nf[0].At != sim.Time(2*sim.Millisecond) {
		t.Errorf("NodeFaults = %v, want node 5 at 2ms", nf)
	}
	if !p.HasLinkFaults() {
		t.Error("faillinks/degrade directives scheduled no link faults")
	}
	np, ok := p.ResolveNoise(0, 0)
	if !ok || np.Period != sim.Millisecond || np.Duration != 50*sim.Microsecond {
		t.Errorf("ResolveNoise = %v, %v; want 1ms/50us", np, ok)
	}
}

func TestParseSpecBlast(t *testing.T) {
	spec, err := ParseSpec("blast=1ms/7/1/0/0/1/links")
	if err != nil {
		t.Fatal(err)
	}
	tor := topology.NewTorus(topology.Dims{4, 4, 4})
	_, blasts, err := spec.Build(tor, machine.Hierarchy{Card: 4, Midplane: 16, Rack: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(blasts) != 1 {
		t.Fatalf("got %d blast results, want 1", len(blasts))
	}
	b := blasts[0]
	if b.Origin != 7 || b.Level != BlastCard || len(b.Dead) != 4 {
		t.Errorf("blast = %+v, want card blast at origin 7 killing 4 nodes", b)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"bogus=1",
		"kill=5",      // missing @TIME
		"kill=x@1ms",  // bad node
		"kill=1@-2ms", // negative time
		"recover=yes", // takes no value
		"seed=-1",
		"degrade=0.5",         // missing factor
		"degrade=2:0.5",       // fraction out of range
		"degrade=0.5:1",       // factor must be < 1
		"noise=1ms",           // missing duration
		"noise=50us/1ms",      // duration > period
		"blast=1ms/0/1/1",     // too few fields
		"blast=1ms/0/2/0/0/0", // probability out of range
		"faillinks=-1",
		"log",          // missing value
		"log=bogus",    // only sender-based logging exists
		"restart",      // missing value
		"restart=now",  // only checkpoint restart exists
		"log=receiver", // receiver-based logging is not implemented
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted invalid spec", s)
		}
	}
}

func TestParseSpecComboErrors(t *testing.T) {
	// The replay directives only compose one way: log=sender rides on
	// recover, restart=ckpt rides on log=sender. Build rejects the
	// rest, whatever the directive order.
	tor := topology.NewTorus(topology.Dims{2, 2, 2})
	h := machine.Hierarchy{Card: 2, Midplane: 4, Rack: 8}
	for _, s := range []string{
		"log=sender",            // logging without recovery
		"log=sender,kill=1@1ms", // same, with a kill to replay
		"restart=ckpt",          // restart without logging
		"recover,restart=ckpt",  // same, even with recovery on
		"restart=ckpt,recover",  // order independence
		"kill=1@1ms,log=sender", // order independence
	} {
		spec, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		if _, _, err := spec.Build(tor, h); err == nil {
			t.Errorf("Build(%q) accepted an invalid directive combination", s)
		}
	}
	// And the valid stacks build.
	for _, s := range []string{
		"recover,log=sender,kill=1@1ms",
		"recover,log=sender,restart=ckpt,kill=1@1ms",
		"restart=ckpt,log=sender,recover", // order independence
	} {
		spec, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		if _, _, err := spec.Build(tor, h); err != nil {
			t.Errorf("Build(%q): %v", s, err)
		}
	}
}

func TestParseSpecBuildRangeErrors(t *testing.T) {
	tor := topology.NewTorus(topology.Dims{2, 2, 2})
	h := machine.Hierarchy{Card: 2, Midplane: 4, Rack: 8}
	for _, s := range []string{"kill=8@1ms", "isolate=99", "faillinks=9999", "blast=0s/64/0/0/0/0"} {
		spec, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		if _, _, err := spec.Build(tor, h); err == nil {
			t.Errorf("Build(%q) accepted out-of-range directive", s)
		}
	}
}

// FuzzParseFaultSpec checks the parser never panics and that accepted
// specs build deterministically: two Builds of the same parse produce
// plans with identical fault schedules.
func FuzzParseFaultSpec(f *testing.F) {
	f.Add("seed=9,recover,kill=5@2ms")
	f.Add("blast=1ms/*/0.5/0.25/0.1/0.8/links")
	f.Add("degrade=0.05:0.5,noise=machine")
	f.Add("faillinks=4,isolate=3")
	f.Add("noise=1ms/50us")
	f.Add(" , ,seed=0")
	f.Add("recover,log=sender,kill=3@1ms")
	f.Add("recover,log=sender,restart=ckpt,kill=3@1ms")
	f.Add("log=sender,restart=ckpt")
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			return
		}
		if strings.Count(s, ",") > 32 {
			return // keep Build cheap under the fuzzer
		}
		tor := topology.NewTorus(topology.Dims{4, 4, 4})
		h := machine.Hierarchy{Card: 4, Midplane: 16, Rack: 64}
		p1, b1, err1 := spec.Build(tor, h)
		p2, b2, err2 := spec.Build(tor, h)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic Build error: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if len(b1) != len(b2) {
			t.Fatalf("nondeterministic blast count: %d vs %d", len(b1), len(b2))
		}
		nf1, nf2 := p1.NodeFaults(), p2.NodeFaults()
		if len(nf1) != len(nf2) {
			t.Fatalf("nondeterministic node faults: %v vs %v", nf1, nf2)
		}
		for i := range nf1 {
			if nf1[i] != nf2[i] {
				t.Fatalf("nondeterministic node fault %d: %v vs %v", i, nf1[i], nf2[i])
			}
		}
		lf1, lf2 := p1.LinkFaults(), p2.LinkFaults()
		if len(lf1) != len(lf2) {
			t.Fatalf("nondeterministic link fault count: %d vs %d", len(lf1), len(lf2))
		}
		for i := range lf1 {
			if lf1[i] != lf2[i] {
				t.Fatalf("nondeterministic link fault %d: %v vs %v", i, lf1[i], lf2[i])
			}
		}
	})
}
