package fault

import (
	"fmt"
	"sort"

	"bgpsim/internal/machine"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

// BlastSpec configures one correlated-failure draw. Real machine
// failures are not independent: nodes share node-card DC-DC
// converters, midplane link chips and service cards, and rack bulk
// power supplies, so one physical fault often takes out a whole
// packaging unit. A blast starts at an origin node and escalates up
// the machine's packaging hierarchy (machine.Hierarchy) with the given
// probabilities; the nodes of the final shared-fate domain then die
// with probability Density each (the origin always dies).
type BlastSpec struct {
	// At is when the blast strikes.
	At sim.Time
	// Origin is the originating node, or -1 to draw it from the plan
	// seed.
	Origin int
	// PCard, PMidplane, PRack are the escalation probabilities: node to
	// node card (blade), card to midplane (cage), midplane to rack
	// (cabinet). Each must be in [0, 1].
	PCard, PMidplane, PRack float64
	// Density is the probability that each non-origin node of the final
	// domain dies with the origin. Zero confines the blast to the
	// origin; one takes the whole domain.
	Density float64
	// FailLinks additionally fails every torus link into and out of
	// each dead node at the blast time, so traffic must route around
	// the hole (dead switches forward nothing).
	FailLinks bool
}

// BlastLevel is how far a blast escalated.
type BlastLevel int

// Escalation levels, smallest domain first.
const (
	BlastNode BlastLevel = iota
	BlastCard
	BlastMidplane
	BlastRack
)

// String names the level ("node", "card", "midplane", "rack").
func (l BlastLevel) String() string {
	switch l {
	case BlastNode:
		return "node"
	case BlastCard:
		return "card"
	case BlastMidplane:
		return "midplane"
	case BlastRack:
		return "rack"
	}
	return fmt.Sprintf("BlastLevel(%d)", int(l))
}

// BlastResult describes one injected blast.
type BlastResult struct {
	Origin int
	Level  BlastLevel
	// First and Last bound the shared-fate domain [First, Last] in
	// node indices (clipped to the partition).
	First, Last int
	// Dead lists the killed nodes in increasing order.
	Dead []int
}

// InjectBlast draws one correlated failure and schedules the resulting
// node kills (and, with FailLinks, link failures) on the plan. The
// placement is a pure function of the plan seed and draw sequence, so
// repeated runs see the identical blast. The node-index-to-packaging
// mapping is positional: node card k holds nodes [k*Card, (k+1)*Card),
// and so on up the hierarchy — the allocator hands out contiguous
// physical units, so contiguous index ranges are shared-fate domains.
func (p *Plan) InjectBlast(t *topology.Torus, h machine.Hierarchy, spec BlastSpec) (BlastResult, error) {
	nodes := t.Dims.Nodes()
	if spec.Origin < -1 || spec.Origin >= nodes {
		return BlastResult{}, fmt.Errorf("fault: blast origin %d out of range (partition has %d nodes)", spec.Origin, nodes)
	}
	for _, pr := range [...]float64{spec.PCard, spec.PMidplane, spec.PRack, spec.Density} {
		if pr < 0 || pr > 1 {
			return BlastResult{}, fmt.Errorf("fault: blast probability %g must be in [0, 1]", pr)
		}
	}
	if h.Card < 1 || h.Midplane < h.Card || h.Rack < h.Midplane {
		return BlastResult{}, fmt.Errorf("fault: invalid hierarchy %+v", h)
	}
	rng := p.rng()

	res := BlastResult{Origin: spec.Origin, Level: BlastNode}
	if res.Origin < 0 {
		res.Origin = rng.Intn(nodes)
	}

	// Escalate up the packaging ladder. Every draw happens regardless
	// of the previous outcome so the stream consumption — and therefore
	// every later draw — is independent of the probabilities.
	escCard := rng.Float64() < spec.PCard
	escMid := rng.Float64() < spec.PMidplane
	escRack := rng.Float64() < spec.PRack
	unit := 1
	switch {
	case escCard && escMid && escRack:
		res.Level, unit = BlastRack, h.Rack
	case escCard && escMid:
		res.Level, unit = BlastMidplane, h.Midplane
	case escCard:
		res.Level, unit = BlastCard, h.Card
	}
	res.First = res.Origin / unit * unit
	res.Last = res.First + unit - 1
	if res.Last >= nodes {
		res.Last = nodes - 1
	}

	res.Dead = append(res.Dead, res.Origin)
	for n := res.First; n <= res.Last; n++ {
		if n != res.Origin && rng.Float64() < spec.Density {
			res.Dead = append(res.Dead, n)
		}
	}
	sort.Ints(res.Dead)

	for _, n := range res.Dead {
		p.KillNode(n, spec.At)
		if spec.FailLinks {
			p.failNodeLinks(t, n, spec.At)
		}
	}
	return res, nil
}

// failNodeLinks fails both directions of every torus link touching the
// node from time at onward (the windowed sibling of IsolateNode).
func (p *Plan) failNodeLinks(t *topology.Torus, node int, at sim.Time) {
	for dim := 0; dim < 3; dim++ {
		if t.Dims[dim] == 1 {
			continue
		}
		for _, pos := range [2]bool{true, false} {
			p.FailLink(topology.Link{Node: node, Dim: dim, Positive: pos}, at)
			nb := t.Neighbor(node, dim, pos)
			p.FailLink(topology.Link{Node: nb, Dim: dim, Positive: !pos}, at)
		}
	}
}
