// Package fault provides deterministic, seeded fault injection for the
// simulator: torus links that fail or lose bandwidth over simulated
// time, compute nodes that die, OS-noise profiles that perturb compute
// blocks, and coordinated checkpoint/restart cost models.
//
// The paper sells BlueGene/P partly on reliability and noise-freedom —
// low component count, ECC throughout, and a compute-node kernel (CNK)
// with essentially no OS interference. A fault layer lets the
// reproduction ask the off-nominal questions the paper could not:
// what does an Intrepid-scale run look like with a fraction of links
// degraded, what is time-to-solution under node loss with coordinated
// checkpointing, and how much do software collectives amplify OS noise.
//
// Everything is a pure function of (seed, schedule, virtual time): a
// nil *Plan means the healthy machine of the happy path, and with a
// Plan every run remains bit-for-bit reproducible at any worker count
// (the PR-1 determinism contract).
package fault

import (
	"fmt"
	"sort"

	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

// LinkFault marks one directed torus link failed or degraded over a
// window of simulated time.
type LinkFault struct {
	Link topology.Link
	From sim.Time // start of the window
	// Until is the end of the window; zero means the fault is
	// permanent.
	Until sim.Time
	// BWFactor is the remaining fraction of link bandwidth: 0 means
	// the link is down (traffic must route around it), values in
	// (0, 1) mean the link is degraded.
	BWFactor float64
}

// NodeFault kills a compute node at time At. Ranks placed on the node
// are lost; the MPI layer surfaces the loss as a typed RankFailure.
type NodeFault struct {
	Node int
	At   sim.Time
}

// NoiseProfile is a deterministic periodic OS-noise model: once every
// Period of virtual time the compute-node OS steals Duration from any
// compute block in progress (daemon wakeups, timer ticks). Noise
// events on different nodes are phase-shifted (see Plan.NoisePhase),
// which is exactly what desynchronizes software collectives at scale.
type NoiseProfile struct {
	Period   sim.Duration
	Duration sim.Duration
}

// Valid reports whether the profile is usable: positive period, and a
// per-event duration shorter than the period (an OS stealing more than
// its whole period never returns control).
func (np NoiseProfile) Valid() error {
	if np.Period <= 0 {
		return fmt.Errorf("fault: noise period %v must be positive", np.Period)
	}
	if np.Duration < 0 || np.Duration >= np.Period {
		return fmt.Errorf("fault: noise duration %v must be in [0, period %v)", np.Duration, np.Period)
	}
	return nil
}

// Extend returns the wall duration of a compute block of pure duration
// d starting at start, under noise events at phase + k*Period for
// k = 0, 1, 2, ...: every event inside the (stretched) block adds
// Duration. The walk terminates because Duration < Period. A zero
// profile or zero block passes through unchanged.
func (np NoiseProfile) Extend(start sim.Time, d sim.Duration, phase sim.Duration) sim.Duration {
	if np.Period <= 0 || np.Duration <= 0 || d <= 0 {
		return d
	}
	// First noise event at or after start.
	k := (int64(start) - int64(phase)) / int64(np.Period)
	if k < 0 {
		k = 0
	}
	ev := sim.Time(phase).Add(sim.Duration(k) * np.Period)
	for ev < start {
		ev = ev.Add(np.Period)
	}
	end := start.Add(d)
	for ev < end {
		end = end.Add(np.Duration)
		ev = ev.Add(np.Period)
	}
	return end.Sub(start)
}

// window is one active span of a link fault schedule.
type window struct {
	from, until sim.Time // until zero = forever
	factor      float64
}

// Plan is a deterministic fault schedule for one simulated run. The
// zero of every dimension is "healthy": a freshly built Plan injects
// nothing until faults are added, and a nil *Plan short-circuits every
// query.
type Plan struct {
	seed  uint64
	draws uint64 // counts random-draw calls so each gets a fresh stream

	links           map[topology.Link][]window
	nodes           []NodeFault
	noiseOverride   *NoiseProfile
	useMachineNoise bool
	recover         bool
	logSender       bool
	restartCkpt     bool
	vari            *Variability // per-node performance variability (variability.go)
}

// NewPlan returns an empty fault plan. All random fault placement
// (DegradeRandomLinks, FailRandomLinks, NoisePhase) derives from seed,
// so two plans with the same seed and the same sequence of calls
// schedule identical faults.
func NewPlan(seed uint64) *Plan {
	return &Plan{seed: seed, links: make(map[topology.Link][]window)}
}

// Seed returns the plan's seed.
func (p *Plan) Seed() uint64 { return p.seed }

// rng returns a fresh deterministic stream for the plan's next random
// draw. Streams are derived from (seed, draw index), so fault
// placement does not depend on call interleaving with other plans.
func (p *Plan) rng() *sim.RNG {
	p.draws++
	return sim.NewRNG(p.seed ^ p.draws*0x9e3779b97f4a7c15)
}

// AddLinkFault schedules one link fault. BWFactor must be in [0, 1): 0
// fails the link, a fraction degrades it; 1 would be a healthy link.
func (p *Plan) AddLinkFault(f LinkFault) error {
	if f.BWFactor < 0 || f.BWFactor >= 1 {
		return fmt.Errorf("fault: link bandwidth factor %g must be in [0, 1)", f.BWFactor)
	}
	if f.Until != 0 && f.Until <= f.From {
		return fmt.Errorf("fault: link fault window [%v, %v) is empty", f.From, f.Until)
	}
	p.links[f.Link] = append(p.links[f.Link], window{from: f.From, until: f.Until, factor: f.BWFactor})
	return nil
}

// FailLink marks the link down from time `from` onward.
func (p *Plan) FailLink(l topology.Link, from sim.Time) {
	// BWFactor 0 and a forever window are always valid.
	_ = p.AddLinkFault(LinkFault{Link: l, From: from})
}

// DegradeRandomLinks marks each directed link of the torus degraded to
// the given bandwidth factor, from time zero onward, with probability
// frac. It returns how many links were degraded. Placement is a pure
// function of the plan seed.
func (p *Plan) DegradeRandomLinks(t *topology.Torus, frac, factor float64) (int, error) {
	if frac < 0 || frac > 1 {
		return 0, fmt.Errorf("fault: degrade fraction %g must be in [0, 1]", frac)
	}
	rng := p.rng()
	degraded := 0
	for i := 0; i < t.NumLinks(); i++ {
		if rng.Float64() >= frac {
			continue
		}
		if err := p.AddLinkFault(LinkFault{Link: t.LinkFromIndex(i), BWFactor: factor}); err != nil {
			return degraded, err
		}
		degraded++
	}
	return degraded, nil
}

// FailRandomLinks fails `count` distinct directed links of the torus
// from time zero onward and returns them. Placement is a pure function
// of the plan seed.
func (p *Plan) FailRandomLinks(t *topology.Torus, count int) ([]topology.Link, error) {
	if count < 0 || count > t.NumLinks() {
		return nil, fmt.Errorf("fault: cannot fail %d of %d links", count, t.NumLinks())
	}
	rng := p.rng()
	chosen := make(map[int]bool, count)
	out := make([]topology.Link, 0, count)
	for len(out) < count {
		i := rng.Intn(t.NumLinks())
		if chosen[i] {
			continue
		}
		chosen[i] = true
		l := t.LinkFromIndex(i)
		p.FailLink(l, 0)
		out = append(out, l)
	}
	return out, nil
}

// IsolateNode fails every link into and out of the node from time
// zero: the smallest fault set that partitions the torus, used to
// exercise the LinkDownError path.
func (p *Plan) IsolateNode(t *topology.Torus, node int) {
	for dim := 0; dim < 3; dim++ {
		if t.Dims[dim] == 1 {
			continue
		}
		for _, pos := range [2]bool{true, false} {
			p.FailLink(topology.Link{Node: node, Dim: dim, Positive: pos}, 0)
			nb := t.Neighbor(node, dim, pos)
			p.FailLink(topology.Link{Node: nb, Dim: dim, Positive: !pos}, 0)
		}
	}
}

// HasLinkFaults reports whether any link fault is scheduled. The
// network layer skips fault bookkeeping entirely when false, keeping
// the healthy path byte-identical to a run without a plan.
func (p *Plan) HasLinkFaults() bool { return p != nil && len(p.links) > 0 }

// LinkFactor returns the bandwidth factor of link l at time t: 1 for a
// healthy link, 0 for a failed one, a fraction for a degraded one.
// When windows overlap, the most degraded one wins.
func (p *Plan) LinkFactor(l topology.Link, t sim.Time) float64 {
	if p == nil {
		return 1
	}
	f := 1.0
	for _, w := range p.links[l] {
		if t >= w.from && (w.until == 0 || t < w.until) && w.factor < f {
			f = w.factor
		}
	}
	return f
}

// KillNode schedules the node to die at time at.
func (p *Plan) KillNode(node int, at sim.Time) {
	p.nodes = append(p.nodes, NodeFault{Node: node, At: at})
}

// EnableRecovery switches the plan from fail-stop to transparent
// collective recovery: instead of aborting the run with a RankFailure,
// a node kill removes its ranks from the job, and subsequent
// collectives run over the surviving members — with the hardware
// collective tree rebuilt around dead leaves or, when a dead node was
// interior to the tree, demoted to a software algorithm on the torus.
// Recovery latency is charged to the model and surfaced through
// network.Stats and the obs layer. Point-to-point traffic addressed to
// a dead rank is NOT recovered by EnableRecovery alone (as in MPI,
// only ULFM-style collective semantics are repaired); a survivor
// waiting on a dead rank's message deadlocks and surfaces as
// *sim.DeadlockError naming the dead ranks. EnableSenderLogging adds
// the point-to-point side.
func (p *Plan) EnableRecovery() { p.recover = true }

// Recover reports whether transparent collective recovery is enabled.
func (p *Plan) Recover() bool { return p != nil && p.recover }

// EnableSenderLogging turns on sender-based message logging for
// point-to-point traffic (spec token "log=sender"): every rank keeps
// the envelopes of its outbound sends, and a node kill no longer
// strands survivors on dead-peer messages. Without EnableCkptRestart
// the orphans are cancelled — a blocked operation on a dead peer
// returns at the detection time with a typed *mpi.PeerLostError
// instead of deadlocking. Requires EnableRecovery (the MPI layer
// rejects a plan that logs without recovering).
func (p *Plan) EnableSenderLogging() { p.logSender = true }

// LogSender reports whether sender-based message logging is enabled.
func (p *Plan) LogSender() bool { return p != nil && p.logSender }

// EnableCkptRestart switches the sender-logging response from orphan
// cancellation to user-level restart (spec token "restart=ckpt"): a
// killed node's ranks roll back to their last committed checkpoint
// (mpi.Rank.CommitCheckpoint) and the logged messages addressed to
// them since that commit are replayed in canonical (creator rank,
// stamp) order. The ranks survive with a restart latency charge —
// detection, reboot, checkpoint read-back, redone work, and replay —
// instead of leaving the job. Requires EnableSenderLogging.
func (p *Plan) EnableCkptRestart() { p.restartCkpt = true }

// RestartCkpt reports whether checkpoint restart with replay is
// enabled.
func (p *Plan) RestartCkpt() bool { return p != nil && p.restartCkpt }

// NodeFaults returns the scheduled node faults sorted by time then
// node index.
func (p *Plan) NodeFaults() []NodeFault {
	if p == nil || len(p.nodes) == 0 {
		return nil
	}
	out := append([]NodeFault(nil), p.nodes...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// LinkFaults returns the scheduled link faults sorted by window start,
// then link, then window end — the order an observability layer should
// report them in. The slice is freshly allocated.
func (p *Plan) LinkFaults() []LinkFault {
	if p == nil || len(p.links) == 0 {
		return nil
	}
	var out []LinkFault
	for l, ws := range p.links {
		for _, w := range ws {
			out = append(out, LinkFault{Link: l, From: w.from, Until: w.until, BWFactor: w.factor})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.Link != b.Link {
			if a.Link.Node != b.Link.Node {
				return a.Link.Node < b.Link.Node
			}
			if a.Link.Dim != b.Link.Dim {
				return a.Link.Dim < b.Link.Dim
			}
			return !a.Link.Positive
		}
		return a.Until < b.Until
	})
	return out
}

// UseMachineNoise switches on OS-noise injection using the machine
// model's own profile (the BlueGene CNK profile is zero, so enabling
// noise on a BG partition is deliberately a no-op — that is the
// paper's point).
func (p *Plan) UseMachineNoise() { p.useMachineNoise = true }

// SetNoise switches on OS-noise injection with an explicit profile,
// overriding the machine model's (for noise-amplitude ablations).
func (p *Plan) SetNoise(np NoiseProfile) error {
	if err := np.Valid(); err != nil {
		return err
	}
	p.noiseOverride = &np
	return nil
}

// ResolveNoise returns the active noise profile given the machine
// model's profile, or ok=false when the plan injects no noise (no
// plan, noise not enabled, or the machine is noiseless and no override
// is set).
func (p *Plan) ResolveNoise(machinePeriod, machineDuration sim.Duration) (NoiseProfile, bool) {
	if p == nil {
		return NoiseProfile{}, false
	}
	if p.noiseOverride != nil {
		return *p.noiseOverride, true
	}
	if p.useMachineNoise && machinePeriod > 0 && machineDuration > 0 {
		return NoiseProfile{Period: machinePeriod, Duration: machineDuration}, true
	}
	return NoiseProfile{}, false
}

// NoisePhase returns the deterministic phase offset of the node's
// noise events in [0, period), derived from the plan seed, so nodes do
// not tick in lockstep (lockstep noise would hide the collective
// desynchronization the model exists to show).
func (p *Plan) NoisePhase(node int, period sim.Duration) sim.Duration {
	if period <= 0 {
		return 0
	}
	r := sim.NewRNG(p.seed ^ (uint64(node)+1)*0xd1342543de82ef95)
	return sim.Duration(r.Uint64() % uint64(period))
}
