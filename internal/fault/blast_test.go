package fault

import (
	"reflect"
	"testing"

	"bgpsim/internal/machine"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

func bgpHierarchy(t *testing.T) machine.Hierarchy {
	t.Helper()
	m, err := machine.Lookup("BG/P")
	if err != nil {
		t.Fatal(err)
	}
	return m.Hierarchy()
}

func TestBlastOriginOnly(t *testing.T) {
	tor := topology.NewTorus(topology.Dims{8, 8, 8})
	p := NewPlan(7)
	res, err := p.InjectBlast(tor, bgpHierarchy(t), BlastSpec{
		At: sim.Time(sim.Millisecond), Origin: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != BlastNode || !reflect.DeepEqual(res.Dead, []int{100}) {
		t.Fatalf("zero-probability blast = %+v, want node-level {100}", res)
	}
	nf := p.NodeFaults()
	if len(nf) != 1 || nf[0] != (NodeFault{Node: 100, At: sim.Time(sim.Millisecond)}) {
		t.Fatalf("NodeFaults = %v", nf)
	}
	if p.HasLinkFaults() {
		t.Error("blast without FailLinks scheduled link faults")
	}
}

func TestBlastCardTakesWholeCard(t *testing.T) {
	tor := topology.NewTorus(topology.Dims{8, 8, 8})
	h := bgpHierarchy(t)
	p := NewPlan(3)
	res, err := p.InjectBlast(tor, h, BlastSpec{
		Origin: 100, PCard: 1, Density: 1, FailLinks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != BlastCard {
		t.Fatalf("level = %v, want card", res.Level)
	}
	wantFirst := 100 / h.Card * h.Card
	if res.First != wantFirst || res.Last != wantFirst+h.Card-1 {
		t.Fatalf("domain [%d, %d], want [%d, %d]", res.First, res.Last, wantFirst, wantFirst+h.Card-1)
	}
	if len(res.Dead) != h.Card {
		t.Fatalf("density 1 killed %d of %d card nodes", len(res.Dead), h.Card)
	}
	for i, n := range res.Dead {
		if n != res.First+i {
			t.Fatalf("Dead[%d] = %d, want %d", i, n, res.First+i)
		}
	}
	if !p.HasLinkFaults() {
		t.Error("FailLinks blast scheduled no link faults")
	}
	// Every dead node's outgoing links are down at the blast time but
	// healthy just before it.
	l := topology.Link{Node: res.Dead[0], Dim: 0, Positive: true}
	if f := p.LinkFactor(l, 0); f != 0 {
		t.Errorf("link factor at blast = %g, want 0", f)
	}
}

func TestBlastRackClipsToPartition(t *testing.T) {
	tor := topology.NewTorus(topology.Dims{8, 8, 8}) // 512 < one rack
	p := NewPlan(9)
	res, err := p.InjectBlast(tor, bgpHierarchy(t), BlastSpec{
		Origin: 5, PCard: 1, PMidplane: 1, PRack: 1, Density: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != BlastRack || res.First != 0 || res.Last != 511 {
		t.Fatalf("rack blast on 512 nodes = %+v, want domain [0, 511]", res)
	}
	if len(res.Dead) != 512 {
		t.Fatalf("killed %d nodes, want all 512", len(res.Dead))
	}
}

func TestBlastDeterministic(t *testing.T) {
	tor := topology.NewTorus(topology.Dims{8, 8, 8})
	h := bgpHierarchy(t)
	spec := BlastSpec{At: sim.Time(sim.Second), Origin: -1, PCard: 0.7, PMidplane: 0.4, PRack: 0.2, Density: 0.5}
	a, err := NewPlan(42).InjectBlast(tor, h, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(42).InjectBlast(tor, h, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different blasts:\n%+v\n%+v", a, b)
	}
	c, err := NewPlan(43).InjectBlast(tor, h, spec)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Log("seeds 42 and 43 drew the same blast (possible but suspicious)")
	}
}

func TestBlastRejectsBadSpec(t *testing.T) {
	tor := topology.NewTorus(topology.Dims{4, 4, 4})
	h := bgpHierarchy(t)
	for _, spec := range []BlastSpec{
		{Origin: 64},
		{Origin: -2},
		{Density: 1.5},
		{PCard: -0.1},
	} {
		if _, err := NewPlan(1).InjectBlast(tor, h, spec); err == nil {
			t.Errorf("InjectBlast(%+v) accepted invalid spec", spec)
		}
	}
	if _, err := NewPlan(1).InjectBlast(tor, machine.Hierarchy{Card: 0}, BlastSpec{}); err == nil {
		t.Error("InjectBlast accepted invalid hierarchy")
	}
}

// FuzzBlastPlan checks the blast invariants for arbitrary specs: the
// same (seed, spec) always draws the identical blast, the origin is
// always dead, every dead node lies inside the reported domain, and the
// domain respects the escalation level's unit size.
func FuzzBlastPlan(f *testing.F) {
	f.Add(uint64(1), 0, 0.0, 0.0, 0.0, 0.0, false)
	f.Add(uint64(42), -1, 0.7, 0.4, 0.2, 0.5, true)
	f.Add(uint64(99), 511, 1.0, 1.0, 1.0, 1.0, false)
	f.Fuzz(func(t *testing.T, seed uint64, origin int, pc, pm, pr, density float64, links bool) {
		tor := topology.NewTorus(topology.Dims{8, 8, 8})
		h := machine.Hierarchy{Card: 32, Midplane: 512, Rack: 1024}
		spec := BlastSpec{Origin: origin, PCard: pc, PMidplane: pm, PRack: pr, Density: density, FailLinks: links}
		a, errA := NewPlan(seed).InjectBlast(tor, h, spec)
		b, errB := NewPlan(seed).InjectBlast(tor, h, spec)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("nondeterministic error: %v vs %v", errA, errB)
		}
		if errA != nil {
			return
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("nondeterministic blast:\n%+v\n%+v", a, b)
		}
		if a.First < 0 || a.Last >= tor.Dims.Nodes() || a.First > a.Last {
			t.Fatalf("domain [%d, %d] out of bounds", a.First, a.Last)
		}
		unit := [...]int{1, h.Card, h.Midplane, h.Rack}[a.Level]
		if a.First%unit != 0 {
			t.Fatalf("domain start %d not aligned to %v unit %d", a.First, a.Level, unit)
		}
		foundOrigin := false
		for _, n := range a.Dead {
			if n < a.First || n > a.Last {
				t.Fatalf("dead node %d outside domain [%d, %d]", n, a.First, a.Last)
			}
			if n == a.Origin {
				foundOrigin = true
			}
		}
		if !foundOrigin {
			t.Fatalf("origin %d not in dead set %v", a.Origin, a.Dead)
		}
	})
}
