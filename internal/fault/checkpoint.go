package fault

import (
	"fmt"
	"math"

	"bgpsim/internal/iosys"
)

// Checkpointer models coordinated checkpoint/restart for an
// application running under random node failures. All quantities are
// wall-clock seconds of the application run.
//
// The model is Daly's first-order expected-completion-time formula: an
// application with `work` seconds of failure-free compute checkpoints
// every Interval seconds at WriteCost seconds per checkpoint; a
// failure (exponential inter-arrival, mean MTBF) costs RestartCost
// plus the rework back to the last checkpoint.
type Checkpointer struct {
	// Interval is the compute time between checkpoints (τ).
	Interval float64
	// WriteCost is the time to write one checkpoint (δ).
	WriteCost float64
	// RestartCost is the time to rejoin after a failure (R): reboot,
	// re-launch, and read the last checkpoint back.
	RestartCost float64
	// MTBF is the whole-system mean time between failures (M). Zero or
	// negative means failure-free: the run pays only checkpoint
	// overhead.
	MTBF float64
}

// Valid reports whether the checkpointer's parameters make sense.
func (c Checkpointer) Valid() error {
	if c.Interval <= 0 {
		return fmt.Errorf("fault: checkpoint interval %g must be positive", c.Interval)
	}
	if c.WriteCost < 0 || c.RestartCost < 0 {
		return fmt.Errorf("fault: checkpoint write cost %g and restart cost %g must be non-negative",
			c.WriteCost, c.RestartCost)
	}
	return nil
}

// ExpectedRuntime returns the expected wall-clock time to complete
// `work` seconds of failure-free compute, using Daly's higher-order
// model:
//
//	T = M · e^{R/M} · (e^{(τ+δ)/M} − 1) · work/τ
//
// which accounts for checkpoint overhead, rework after failures, and
// failures that strike during restarts and rework. With MTBF ≤ 0 it
// degenerates to the failure-free cost work + (work/τ)·δ.
func (c Checkpointer) ExpectedRuntime(work float64) (float64, error) {
	if err := c.Valid(); err != nil {
		return 0, err
	}
	if work < 0 {
		return 0, fmt.Errorf("fault: negative work %g", work)
	}
	segments := work / c.Interval
	if c.MTBF <= 0 {
		return work + segments*c.WriteCost, nil
	}
	m := c.MTBF
	return m * math.Exp(c.RestartCost/m) * (math.Exp((c.Interval+c.WriteCost)/m) - 1) * segments, nil
}

// Overhead returns the fractional slowdown over the failure-free,
// checkpoint-free run: (T − work)/work.
func (c Checkpointer) Overhead(work float64) (float64, error) {
	if work <= 0 {
		return 0, fmt.Errorf("fault: non-positive work %g", work)
	}
	t, err := c.ExpectedRuntime(work)
	if err != nil {
		return 0, err
	}
	return (t - work) / work, nil
}

// YoungDaly returns the Young/Daly first-order optimal checkpoint
// interval sqrt(2·δ·M) for checkpoint cost δ under system MTBF M.
// Non-positive inputs yield 0 (checkpointing is pointless or free).
func YoungDaly(writeCost, mtbf float64) float64 {
	if writeCost <= 0 || mtbf <= 0 {
		return 0
	}
	return math.Sqrt(2 * writeCost * mtbf)
}

// SystemMTBF scales a per-node MTBF to a partition: failures of
// independent exponential nodes superpose, so the system MTBF is the
// node MTBF divided by the node count. The paper's reliability pitch
// is exactly this arithmetic: at tens of thousands of nodes only a
// very reliable node keeps the system MTBF above the checkpoint cost.
func SystemMTBF(nodeMTBF float64, nodes int) float64 {
	if nodeMTBF <= 0 || nodes <= 0 {
		return 0
	}
	return nodeMTBF / float64(nodes)
}

// CheckpointWriteCost returns the seconds a coordinated checkpoint of
// bytesPerNode from each of `nodes` nodes takes on the given storage
// system, writing one file per node (N-N checkpointing).
func CheckpointWriteCost(s *iosys.Storage, nodes int, bytesPerNode float64) (float64, error) {
	if bytesPerNode < 0 {
		return 0, fmt.Errorf("fault: negative checkpoint size %g", bytesPerNode)
	}
	return s.WriteTime(nodes, float64(nodes)*bytesPerNode, nodes)
}
