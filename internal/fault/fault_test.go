package fault

import (
	"testing"

	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

func TestNilPlanIsHealthy(t *testing.T) {
	var p *Plan
	if p.HasLinkFaults() {
		t.Error("nil plan reports link faults")
	}
	l := topology.Link{Node: 3, Dim: 1, Positive: true}
	if f := p.LinkFactor(l, sim.Time(5*sim.Second)); f != 1 {
		t.Errorf("nil plan LinkFactor = %g, want 1", f)
	}
	if nf := p.NodeFaults(); nf != nil {
		t.Errorf("nil plan NodeFaults = %v, want nil", nf)
	}
	if _, ok := p.ResolveNoise(10*sim.Millisecond, 15*sim.Microsecond); ok {
		t.Error("nil plan resolves a noise profile")
	}
}

func TestLinkFaultWindows(t *testing.T) {
	p := NewPlan(1)
	l := topology.Link{Node: 0, Dim: 0, Positive: true}
	if err := p.AddLinkFault(LinkFault{
		Link: l, From: sim.Time(sim.Second), Until: sim.Time(2 * sim.Second), BWFactor: 0.25,
	}); err != nil {
		t.Fatal(err)
	}
	p.FailLink(l, sim.Time(90*sim.Second))
	cases := []struct {
		at   sim.Time
		want float64
	}{
		{0, 1},                                   // before the window
		{sim.Time(sim.Second), 0.25},             // degraded window start (inclusive)
		{sim.Time(2 * sim.Second), 1},            // window end (exclusive)
		{sim.Time(90 * sim.Second), 0},           // permanent failure start
		{sim.Time(9000 * sim.Second), 0},         // permanent failure holds forever
		{sim.Time(1500 * sim.Millisecond), 0.25}, // inside the degraded window
	}
	for _, c := range cases {
		if got := p.LinkFactor(l, c.at); got != c.want {
			t.Errorf("LinkFactor(t=%v) = %g, want %g", c.at, got, c.want)
		}
	}
	// An unrelated link stays healthy.
	other := topology.Link{Node: 7, Dim: 2, Positive: false}
	if got := p.LinkFactor(other, sim.Time(90*sim.Second)); got != 1 {
		t.Errorf("unaffected link factor = %g, want 1", got)
	}
}

func TestAddLinkFaultValidation(t *testing.T) {
	p := NewPlan(1)
	l := topology.Link{}
	if err := p.AddLinkFault(LinkFault{Link: l, BWFactor: 1}); err == nil {
		t.Error("BWFactor 1 accepted; it must be rejected (healthy is not a fault)")
	}
	if err := p.AddLinkFault(LinkFault{Link: l, BWFactor: -0.1}); err == nil {
		t.Error("negative BWFactor accepted")
	}
	if err := p.AddLinkFault(LinkFault{Link: l, From: sim.Time(5), Until: sim.Time(5)}); err == nil {
		t.Error("empty fault window accepted")
	}
}

func TestFailRandomLinksDeterministic(t *testing.T) {
	tor := topology.NewTorus(topology.Dims{4, 4, 4})
	a, err := NewPlan(42).FailRandomLinks(tor, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(42).FailRandomLinks(tor, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("got %d and %d links, want 10", len(a), len(b))
	}
	seen := make(map[topology.Link]bool)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed chose different links: %v vs %v", a[i], b[i])
		}
		if seen[a[i]] {
			t.Fatalf("link %v failed twice", a[i])
		}
		seen[a[i]] = true
	}
	// A different seed picks a different set.
	c, err := NewPlan(43).FailRandomLinks(tor, 10)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 chose identical fault sets")
	}
	if _, err := NewPlan(1).FailRandomLinks(tor, tor.NumLinks()+1); err == nil {
		t.Error("failing more links than exist was accepted")
	}
}

func TestDegradeRandomLinksFraction(t *testing.T) {
	tor := topology.NewTorus(topology.Dims{8, 8, 8})
	p := NewPlan(7)
	n, err := p.DegradeRandomLinks(tor, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	total := tor.NumLinks()
	// 10% ± a loose tolerance of 3072 links.
	if n < total/20 || n > total/5 {
		t.Errorf("degraded %d of %d links, want roughly 10%%", n, total)
	}
	if !p.HasLinkFaults() {
		t.Error("plan with degraded links reports no link faults")
	}
	if _, err := p.DegradeRandomLinks(tor, 1.5, 0.5); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

func TestIsolateNodePartitionsTorus(t *testing.T) {
	tor := topology.NewTorus(topology.Dims{4, 4, 2})
	p := NewPlan(1)
	victim := 5
	p.IsolateNode(tor, victim)
	blocked := func(l topology.Link) bool { return p.LinkFactor(l, 0) == 0 }
	if _, err := tor.AppendRouteAvoid(nil, 0, victim, blocked); err == nil {
		t.Error("isolated node still reachable")
	}
	// The rest of the torus still routes.
	if _, err := tor.AppendRouteAvoid(nil, 0, 9, blocked); err != nil {
		t.Errorf("healthy pair cannot route around the isolated node: %v", err)
	}
}

func TestNodeFaultsSorted(t *testing.T) {
	p := NewPlan(1)
	p.KillNode(9, sim.Time(3*sim.Second))
	p.KillNode(2, sim.Time(sim.Second))
	p.KillNode(1, sim.Time(3*sim.Second))
	nf := p.NodeFaults()
	want := []NodeFault{
		{Node: 2, At: sim.Time(sim.Second)},
		{Node: 1, At: sim.Time(3 * sim.Second)},
		{Node: 9, At: sim.Time(3 * sim.Second)},
	}
	if len(nf) != len(want) {
		t.Fatalf("NodeFaults = %v, want %v", nf, want)
	}
	for i := range want {
		if nf[i] != want[i] {
			t.Fatalf("NodeFaults = %v, want %v", nf, want)
		}
	}
}

func TestNoiseProfileValid(t *testing.T) {
	if err := (NoiseProfile{Period: 10 * sim.Millisecond, Duration: 15 * sim.Microsecond}).Valid(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
	if err := (NoiseProfile{Period: 0, Duration: sim.Microsecond}).Valid(); err == nil {
		t.Error("zero period accepted")
	}
	if err := (NoiseProfile{Period: sim.Millisecond, Duration: sim.Millisecond}).Valid(); err == nil {
		t.Error("duration == period accepted (compute would never finish)")
	}
}

func TestNoiseExtend(t *testing.T) {
	np := NoiseProfile{Period: 10 * sim.Millisecond, Duration: 100 * sim.Microsecond}
	// A 5 ms block starting right after a noise event sees none.
	if got := np.Extend(sim.Time(sim.Millisecond), 5*sim.Millisecond, 0); got != 5*sim.Millisecond {
		t.Errorf("quiet block extended to %v", got)
	}
	// A 5 ms block straddling one event gains one duration.
	got := np.Extend(sim.Time(8*sim.Millisecond), 5*sim.Millisecond, 0)
	if want := 5*sim.Millisecond + 100*sim.Microsecond; got != want {
		t.Errorf("one-event block = %v, want %v", got, want)
	}
	// A 35 ms block spans events at 10, 20, 30 ms, and the stretching
	// pulls in the event at 40 ms too: 4 events.
	got = np.Extend(sim.Time(5*sim.Millisecond), 35*sim.Millisecond, 0)
	if want := 35*sim.Millisecond + 4*100*sim.Microsecond; got != want {
		t.Errorf("long block = %v, want %v", got, want)
	}
	// Phase shifts the event grid: a [7, 42) ms block sees events at
	// 10, 20, 30, 40 unphased (4 hits) but only 16, 26, 36 with a 6 ms
	// phase (3 hits — the stretch to 42.3 ms stays short of 46 ms).
	got = np.Extend(sim.Time(7*sim.Millisecond), 35*sim.Millisecond, 6*sim.Millisecond)
	if want := 35*sim.Millisecond + 3*100*sim.Microsecond; got != want {
		t.Errorf("phased block = %v, want %v", got, want)
	}
	// Zero-duration work passes through.
	if got := np.Extend(0, 0, 0); got != 0 {
		t.Errorf("zero block = %v", got)
	}
}

func TestNoisePhaseDeterministicAndBounded(t *testing.T) {
	p := NewPlan(99)
	period := 10 * sim.Millisecond
	seenDistinct := false
	first := p.NoisePhase(0, period)
	for node := 0; node < 64; node++ {
		ph := p.NoisePhase(node, period)
		if ph < 0 || ph >= period {
			t.Fatalf("phase(%d) = %v out of [0, %v)", node, ph, period)
		}
		if ph2 := p.NoisePhase(node, period); ph2 != ph {
			t.Fatalf("phase(%d) not deterministic: %v then %v", node, ph, ph2)
		}
		if ph != first {
			seenDistinct = true
		}
	}
	if !seenDistinct {
		t.Error("all 64 nodes share one noise phase; phases must differ")
	}
}

func TestResolveNoise(t *testing.T) {
	machP, machD := 10*sim.Millisecond, 15*sim.Microsecond

	// Noise not enabled: nothing resolves.
	p := NewPlan(1)
	if _, ok := p.ResolveNoise(machP, machD); ok {
		t.Error("noise resolved without being enabled")
	}

	// Machine noise on a noisy machine.
	p.UseMachineNoise()
	np, ok := p.ResolveNoise(machP, machD)
	if !ok || np.Period != machP || np.Duration != machD {
		t.Errorf("machine noise = %+v ok=%v, want the machine profile", np, ok)
	}

	// Machine noise on a noiseless machine (the CNK): no-op.
	if _, ok := p.ResolveNoise(0, 0); ok {
		t.Error("noiseless machine resolved a noise profile")
	}

	// Explicit override beats the machine profile.
	ov := NoiseProfile{Period: sim.Millisecond, Duration: 5 * sim.Microsecond}
	if err := p.SetNoise(ov); err != nil {
		t.Fatal(err)
	}
	np, ok = p.ResolveNoise(machP, machD)
	if !ok || np != ov {
		t.Errorf("override noise = %+v ok=%v, want %+v", np, ok, ov)
	}
	if err := p.SetNoise(NoiseProfile{Period: -1}); err == nil {
		t.Error("invalid noise profile accepted")
	}
}
