package fault

import (
	"math"
	"strings"
	"testing"
)

func TestParseVariabilitySpec(t *testing.T) {
	cases := []struct {
		spec string
		want Variability
	}{
		{"clock:2%", Variability{Seed: 1, ClockCV: 0.02}},
		{"var=clock:2%", Variability{Seed: 1, ClockCV: 0.02}},
		{"clock:2%,link:5%@7", Variability{Seed: 7, ClockCV: 0.02, LinkCV: 0.05}},
		{"link:5%,clock:2%@7", Variability{Seed: 7, ClockCV: 0.02, LinkCV: 0.05}},
		{"link:0.05@3", Variability{Seed: 3, LinkCV: 0.05}},
		{"var=clock:0.1,link:0.25@18446744073709551615", Variability{Seed: math.MaxUint64, ClockCV: 0.1, LinkCV: 0.25}},
	}
	for _, c := range cases {
		got, err := ParseVariabilitySpec(c.spec)
		if err != nil {
			t.Fatalf("ParseVariabilitySpec(%q): %v", c.spec, err)
		}
		if got != c.want {
			t.Errorf("ParseVariabilitySpec(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestParseVariabilitySpecErrors(t *testing.T) {
	bad := []string{
		"",                  // empty
		"@7",                // seed only
		"var=",              // prefix only
		"clock",             // no value
		"clock:2%,clock:3%", // duplicate
		"turbo:2%",          // unknown key
		"clock:150%",        // out of range
		"clock:-0.1",        // negative
		"clock:1",           // 1.0 is excluded
		"clock:nan",         // NaN
		"clock:2%@x",        // bad seed
		"clock:2%@-1",       // negative seed
		"clock:2%@1.5",      // fractional seed
		"clock:2%%",         // double percent
		"clock:2%,link",     // trailing bad part
		"clock:2%@1@2",      // only last @ is seed; "clock:2%@1" is then a bad value
	}
	for _, s := range bad {
		if _, err := ParseVariabilitySpec(s); err == nil {
			t.Errorf("ParseVariabilitySpec(%q): expected error, got nil", s)
		}
	}
}

func TestVariabilityStringRoundTrip(t *testing.T) {
	specs := []Variability{
		{Seed: 1, ClockCV: 0.02},
		{Seed: 7, ClockCV: 0.02, LinkCV: 0.05},
		{Seed: 3, LinkCV: 0.125},
		{Seed: 0},
	}
	for _, v := range specs {
		got, err := ParseVariabilitySpec(v.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", v.String(), err)
		}
		if got != v {
			t.Errorf("round trip %q: got %+v, want %+v", v.String(), got, v)
		}
	}
}

func TestVariabilityFactors(t *testing.T) {
	var nilV *Variability
	if f := nilV.ClockFactor(3); f != 1 {
		t.Errorf("nil ClockFactor = %g, want 1", f)
	}
	if f := nilV.LinkFactor(3); f != 1 {
		t.Errorf("nil LinkFactor = %g, want 1", f)
	}

	v := &Variability{Seed: 42, ClockCV: 0.05, LinkCV: 0.1}
	sawClockSpread, sawLinkSpread := false, false
	for node := 0; node < 256; node++ {
		cf := v.ClockFactor(node)
		lf := v.LinkFactor(node)
		if math.IsNaN(cf) || cf < 1 {
			t.Fatalf("node %d: ClockFactor %g < 1 (never-faster violated)", node, cf)
		}
		if math.IsNaN(lf) || lf <= 0 || lf > 1 {
			t.Fatalf("node %d: LinkFactor %g outside (0, 1]", node, lf)
		}
		if cf > 1.001 {
			sawClockSpread = true
		}
		if lf < 0.999 {
			sawLinkSpread = true
		}
		// Determinism: the draw is a pure function of (seed, node).
		if v.ClockFactor(node) != cf || v.LinkFactor(node) != lf {
			t.Fatalf("node %d: repeated draw differs", node)
		}
	}
	if !sawClockSpread || !sawLinkSpread {
		t.Errorf("expected nontrivial spread across 256 nodes (clock %v, link %v)", sawClockSpread, sawLinkSpread)
	}

	// Clock and link streams must be independent: disabling one must not
	// change the other's draws.
	clockOnly := &Variability{Seed: 42, ClockCV: 0.05}
	linkOnly := &Variability{Seed: 42, LinkCV: 0.1}
	for node := 0; node < 64; node++ {
		if clockOnly.ClockFactor(node) != v.ClockFactor(node) {
			t.Fatalf("node %d: clock draw depends on LinkCV", node)
		}
		if linkOnly.LinkFactor(node) != v.LinkFactor(node) {
			t.Fatalf("node %d: link draw depends on ClockCV", node)
		}
	}
}

func TestVariabilitySeedSensitivity(t *testing.T) {
	a := &Variability{Seed: 1, ClockCV: 0.05}
	b := &Variability{Seed: 2, ClockCV: 0.05}
	same := 0
	for node := 0; node < 128; node++ {
		if a.ClockFactor(node) == b.ClockFactor(node) {
			same++
		}
	}
	if same > 8 {
		t.Errorf("seeds 1 and 2 agree on %d/128 node draws; streams look correlated", same)
	}
}

func TestSetVariability(t *testing.T) {
	p := NewPlan(9)
	if p.Variability() != nil {
		t.Fatal("fresh plan has variability")
	}
	if err := p.SetVariability(Variability{Seed: 9, ClockCV: 1.5}); err == nil {
		t.Fatal("SetVariability accepted CV 1.5")
	}
	if p.Variability() != nil {
		t.Fatal("failed SetVariability still attached")
	}
	want := Variability{Seed: 9, ClockCV: 0.02, LinkCV: 0.05}
	if err := p.SetVariability(want); err != nil {
		t.Fatalf("SetVariability: %v", err)
	}
	if got := p.Variability(); got == nil || *got != want {
		t.Fatalf("Variability() = %+v, want %+v", got, want)
	}
	// Variability alone must not flip the link-fault predicate — that
	// would disqualify analytic runs from sharding.
	if p.HasLinkFaults() {
		t.Fatal("variability-only plan reports link faults")
	}
	var nilPlan *Plan
	if nilPlan.Variability() != nil {
		t.Fatal("nil plan variability not nil")
	}
}

func FuzzParseVariabilitySpec(f *testing.F) {
	for _, seed := range []string{
		"clock:2%",
		"var=clock:2%,link:5%@7",
		"link:0.05@3",
		"clock:0.1,link:25%",
		"clock:2%@18446744073709551615",
		"", "@", "clock", "clock:", "clock:%", "x:y", "clock:2%,clock:2%",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseVariabilitySpec(s)
		if err != nil {
			return
		}
		if err := v.Valid(); err != nil {
			t.Fatalf("parsed invalid variability %+v from %q: %v", v, s, err)
		}
		// Factors stay finite and bounded for any accepted spec.
		for _, node := range []int{0, 1, 17, 4095} {
			cf := v.ClockFactor(node)
			if math.IsNaN(cf) || math.IsInf(cf, 0) || cf < 1 {
				t.Fatalf("spec %q node %d: bad clock factor %g", s, node, cf)
			}
			lf := v.LinkFactor(node)
			if math.IsNaN(lf) || lf <= 0 || lf > 1 {
				t.Fatalf("spec %q node %d: bad link factor %g", s, node, lf)
			}
		}
		// String() must re-parse to the same model (canonical round trip).
		rt, err := ParseVariabilitySpec(v.String())
		if err != nil {
			t.Fatalf("String %q of accepted spec %q does not reparse: %v", v.String(), s, err)
		}
		if rt != v {
			t.Fatalf("round trip of %q: %+v -> %q -> %+v", s, v, v.String(), rt)
		}
		if strings.HasPrefix(v.String(), "var=") {
			t.Fatalf("String() %q keeps the optional prefix", v.String())
		}
	})
}
