package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"bgpsim/internal/sim"
)

// Variability is a seeded per-node performance-variability model: real
// machines are not uniform — nominally identical nodes differ in
// effective clock (manufacturing spread, thermal throttling, DVFS
// states) and in delivered link bandwidth (marginal SerDes lanes,
// retraining retries). Cornebize & Legrand (PAPERS.md) show this
// spread, not the mean, often decides MPI tuning conclusions, so the
// calibration engine reruns headline experiments under Variability
// draws to put confidence intervals on every point estimate.
//
// Every draw is a pure function of (Seed, node): two runs with the
// same spec see identical node multipliers at any worker count and any
// shard count, and the draws compose freely with the rest of a Plan
// (noise, blasts, kills, degraded links).
type Variability struct {
	// Seed drives the per-node draws.
	Seed uint64
	// ClockCV is the coefficient of variation of per-node compute
	// slowdown: each node's compute blocks stretch by a factor
	// 1 + ClockCV*|z| with z standard normal (half-normal, so the
	// catalog machine stays the best case and variability is
	// never-faster by construction). Zero disables clock draws.
	ClockCV float64
	// LinkCV is the coefficient of variation of per-node delivered
	// bandwidth: messages touching the node serialize at bandwidth
	// scaled by 1/(1 + LinkCV*|z|), again half-normal so a draw never
	// beats the catalog link. Zero disables link draws.
	LinkCV float64
}

// Valid reports whether the variability parameters are usable.
func (v Variability) Valid() error {
	if v.ClockCV < 0 || v.ClockCV >= 1 || math.IsNaN(v.ClockCV) {
		return fmt.Errorf("fault: clock variability %g must be in [0, 1)", v.ClockCV)
	}
	if v.LinkCV < 0 || v.LinkCV >= 1 || math.IsNaN(v.LinkCV) {
		return fmt.Errorf("fault: link variability %g must be in [0, 1)", v.LinkCV)
	}
	return nil
}

// Draw-stream salts: clock and link draws for the same node must be
// independent, and both independent of NoisePhase.
const (
	varClockSalt = 0xa24baed4963ee407
	varLinkSalt  = 0x3c79ac492ba7b653
)

// halfNormal returns |z| for a standard normal z, derived
// deterministically from (seed, node) via Box-Muller on the plan RNG.
func halfNormal(seed uint64, node int) float64 {
	r := sim.NewRNG(seed ^ (uint64(node)+1)*0xd1342543de82ef95)
	u1 := r.Float64()
	if u1 <= 0 {
		u1 = 1.0 / (1 << 53)
	}
	u2 := r.Float64()
	return math.Abs(math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2))
}

// ClockFactor returns the node's compute stretch factor, always >= 1.
// A nil receiver or zero ClockCV returns exactly 1 (the healthy path).
func (v *Variability) ClockFactor(node int) float64 {
	if v == nil || v.ClockCV <= 0 {
		return 1
	}
	return 1 + v.ClockCV*halfNormal(v.Seed^varClockSalt, node)
}

// LinkFactor returns the node's delivered-bandwidth factor in (0, 1]:
// message serializations touching the node divide their bandwidth by
// 1/LinkFactor. A nil receiver or zero LinkCV returns exactly 1.
func (v *Variability) LinkFactor(node int) float64 {
	if v == nil || v.LinkCV <= 0 {
		return 1
	}
	return 1 / (1 + v.LinkCV*halfNormal(v.Seed^varLinkSalt, node))
}

// String renders the variability back into its spec-grammar form.
func (v Variability) String() string {
	var parts []string
	if v.ClockCV > 0 {
		parts = append(parts, fmt.Sprintf("clock:%g%%", v.ClockCV*100))
	}
	if v.LinkCV > 0 {
		parts = append(parts, fmt.Sprintf("link:%g%%", v.LinkCV*100))
	}
	if len(parts) == 0 {
		parts = append(parts, "clock:0%")
	}
	return fmt.Sprintf("%s@%d", strings.Join(parts, ","), v.Seed)
}

// SetVariability attaches per-node performance variability to the
// plan. It composes with every other plan dimension and — because the
// draws add no entries to the link-fault schedule — never disqualifies
// an analytic run from sharding.
func (p *Plan) SetVariability(v Variability) error {
	if err := v.Valid(); err != nil {
		return err
	}
	p.vari = &v
	return nil
}

// Variability returns the plan's variability model, nil when none is
// set (including on a nil plan).
func (p *Plan) Variability() *Variability {
	if p == nil {
		return nil
	}
	return p.vari
}

// ParseVariabilitySpec parses the variability spec grammar:
//
//	[var=]clock:CV[,link:CV][@SEED]
//
// where each CV is either a percentage ("2%") or a fraction ("0.02")
// in [0, 1), parts may appear in either order but at most once each,
// and SEED is a decimal uint64 (default 1). Examples:
//
//	clock:2%
//	var=clock:2%,link:5%@7
//	link:0.05@3
func ParseVariabilitySpec(s string) (Variability, error) {
	v := Variability{Seed: 1}
	spec := strings.TrimSpace(s)
	spec = strings.TrimPrefix(spec, "var=")
	if at := strings.LastIndexByte(spec, '@'); at >= 0 {
		seedStr := spec[at+1:]
		seed, err := strconv.ParseUint(seedStr, 10, 64)
		if err != nil {
			return Variability{}, fmt.Errorf("fault: bad variability seed %q (want a decimal uint64)", seedStr)
		}
		v.Seed = seed
		spec = spec[:at]
	}
	if strings.TrimSpace(spec) == "" {
		return Variability{}, fmt.Errorf("fault: empty variability spec (want e.g. clock:2%%,link:5%%@seed)")
	}
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		key, val, ok := strings.Cut(part, ":")
		if !ok {
			return Variability{}, fmt.Errorf("fault: bad variability directive %q (want key:value)", part)
		}
		key = strings.TrimSpace(key)
		if seen[key] {
			return Variability{}, fmt.Errorf("fault: duplicate variability directive %q", key)
		}
		seen[key] = true
		cv, err := parseCV(strings.TrimSpace(val))
		if err != nil {
			return Variability{}, err
		}
		switch key {
		case "clock":
			v.ClockCV = cv
		case "link":
			v.LinkCV = cv
		default:
			return Variability{}, fmt.Errorf("fault: unknown variability directive %q (valid: clock, link)", key)
		}
	}
	if err := v.Valid(); err != nil {
		return Variability{}, err
	}
	return v, nil
}

// parseCV parses one coefficient of variation: "5%" or "0.05".
func parseCV(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	x, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil || math.IsNaN(x) || math.IsInf(x, 0) {
		return 0, fmt.Errorf("fault: bad variability value %q (want a percentage like 2%% or a fraction like 0.02)", s)
	}
	if pct {
		x /= 100
	}
	if x < 0 || x >= 1 {
		return 0, fmt.Errorf("fault: variability %g out of range [0, 1)", x)
	}
	return x, nil
}
