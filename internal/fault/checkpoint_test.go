package fault

import (
	"math"
	"testing"

	"bgpsim/internal/iosys"
)

func TestExpectedRuntimeFailureFree(t *testing.T) {
	c := Checkpointer{Interval: 3600, WriteCost: 120}
	got, err := c.ExpectedRuntime(36000) // 10 hours of work
	if err != nil {
		t.Fatal(err)
	}
	want := 36000 + 10.0*120 // 10 checkpoints
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("failure-free runtime = %g, want %g", got, want)
	}
}

func TestExpectedRuntimeDaly(t *testing.T) {
	// Against the closed form directly, with hand-picked numbers.
	c := Checkpointer{Interval: 3600, WriteCost: 120, RestartCost: 300, MTBF: 24 * 3600}
	work := 10 * 3600.0
	got, err := c.ExpectedRuntime(work)
	if err != nil {
		t.Fatal(err)
	}
	m := c.MTBF
	want := m * math.Exp(c.RestartCost/m) * (math.Exp((c.Interval+c.WriteCost)/m) - 1) * (work / c.Interval)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("Daly runtime = %g, want %g", got, want)
	}
	// Sanity: failures make the run longer than the failure-free one.
	ff, _ := Checkpointer{Interval: c.Interval, WriteCost: c.WriteCost}.ExpectedRuntime(work)
	if got <= ff {
		t.Errorf("runtime under failures %g not above failure-free %g", got, ff)
	}
}

func TestYoungDalyIsNearOptimal(t *testing.T) {
	writeCost, mtbf := 120.0, 6*3600.0
	opt := YoungDaly(writeCost, mtbf)
	if want := math.Sqrt(2 * writeCost * mtbf); math.Abs(opt-want) > 1e-9 {
		t.Fatalf("YoungDaly = %g, want %g", opt, want)
	}
	// The Young/Daly interval must beat intervals well off the optimum
	// on both sides under the Daly runtime model.
	work := 100 * 3600.0
	at := func(interval float64) float64 {
		c := Checkpointer{Interval: interval, WriteCost: writeCost, RestartCost: 300, MTBF: mtbf}
		v, err := c.ExpectedRuntime(work)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	best := at(opt)
	if lo := at(opt / 4); lo <= best {
		t.Errorf("checkpointing 4x too often (%g) beats Young/Daly (%g)", lo, best)
	}
	if hi := at(opt * 4); hi <= best {
		t.Errorf("checkpointing 4x too rarely (%g) beats Young/Daly (%g)", hi, best)
	}
	if YoungDaly(0, mtbf) != 0 || YoungDaly(writeCost, 0) != 0 {
		t.Error("degenerate YoungDaly inputs must yield 0")
	}
}

func TestSystemMTBF(t *testing.T) {
	// A 50-year node MTBF across 4096 nodes: about 4.5 days.
	nodeMTBF := 50 * 365.25 * 24 * 3600.0
	got := SystemMTBF(nodeMTBF, 4096)
	if want := nodeMTBF / 4096; math.Abs(got-want) > 1e-6 {
		t.Errorf("SystemMTBF = %g, want %g", got, want)
	}
	if SystemMTBF(0, 10) != 0 || SystemMTBF(nodeMTBF, 0) != 0 {
		t.Error("degenerate SystemMTBF inputs must yield 0")
	}
}

func TestCheckpointWriteCost(t *testing.T) {
	s := iosys.ORNLEugene()
	nodes, perNode := 2048, 512e6 // half the 2 GB B-node memory, paper §I
	got, err := CheckpointWriteCost(s, nodes, perNode)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := s.WriteTime(nodes, float64(nodes)*perNode, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if got != direct {
		t.Errorf("CheckpointWriteCost = %g, want WriteTime %g", got, direct)
	}
	if got <= 0 {
		t.Errorf("checkpoint of %d nodes costs %g s; must be positive", nodes, got)
	}
	if _, err := CheckpointWriteCost(s, nodes, -1); err == nil {
		t.Error("negative checkpoint size accepted")
	}
}

func TestCheckpointerValidation(t *testing.T) {
	if _, err := (Checkpointer{Interval: 0, WriteCost: 1}).ExpectedRuntime(10); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := (Checkpointer{Interval: 10, WriteCost: -1}).ExpectedRuntime(10); err == nil {
		t.Error("negative write cost accepted")
	}
	if _, err := (Checkpointer{Interval: 10}).ExpectedRuntime(-5); err == nil {
		t.Error("negative work accepted")
	}
	if _, err := (Checkpointer{Interval: 10, WriteCost: 1}).Overhead(0); err == nil {
		t.Error("zero-work overhead accepted")
	}
	ov, err := (Checkpointer{Interval: 100, WriteCost: 10}).Overhead(1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ov-0.1) > 1e-9 {
		t.Errorf("overhead = %g, want 0.1", ov)
	}
}
