// Package power models the paper's Section IV: aggregate electrical
// power of each system under load, flops-per-watt efficiency, and the
// science-driven fixed-throughput comparison (power needed to reach a
// target POP simulation rate).
package power

import (
	"fmt"
	"math"

	"bgpsim/internal/machine"
)

// Workload selects the measured per-core power operating point.
type Workload int

const (
	// HPL is the LINPACK stress-test operating point.
	HPL Workload = iota
	// Science is the "normal" operating point of mission applications
	// (POP, GYRO) — slightly lower than HPL.
	Science
)

// PerCoreWatts returns the aggregate power per core (including memory,
// interconnect, storage and peripherals) at the workload's operating
// point.
func PerCoreWatts(m *machine.Machine, w Workload) float64 {
	if w == HPL {
		return m.WattsPerCoreHPL
	}
	return m.WattsPerCoreApp
}

// AggregateKW returns the aggregate system power in kilowatts for the
// given active core count.
func AggregateKW(m *machine.Machine, cores int, w Workload) float64 {
	return PerCoreWatts(m, w) * float64(cores) / 1000
}

// MFlopsPerWatt returns the Green500 metric for a sustained rate.
func MFlopsPerWatt(m *machine.Machine, cores int, sustainedFlops float64, w Workload) float64 {
	watts := PerCoreWatts(m, w) * float64(cores)
	if watts == 0 {
		return 0
	}
	return sustainedFlops / 1e6 / watts
}

// EnergyKWh returns the energy of a run in kilowatt-hours.
func EnergyKWh(m *machine.Machine, cores int, seconds float64, w Workload) float64 {
	return AggregateKW(m, cores, w) * seconds / 3600
}

// CoresForThroughput inverts a throughput model: given a function
// mapping core count to a throughput metric (e.g. POP simulated years
// per day) that is monotone non-decreasing, it returns the smallest
// core count in [lo, hi] reaching the target, or an error if even hi
// falls short. The search is by bisection over the model.
func CoresForThroughput(target float64, lo, hi int, model func(cores int) float64) (int, error) {
	if lo < 1 || hi < lo {
		return 0, fmt.Errorf("power: bad search range [%d, %d]", lo, hi)
	}
	if model(hi) < target {
		return 0, fmt.Errorf("power: target %.3g unreachable with %d cores (max %.3g)",
			target, hi, model(hi))
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if model(mid) >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// FixedThroughput compares two systems at equal delivered throughput —
// the paper's Table 3 bottom block: it returns the aggregate power (kW)
// each needs to deliver the target.
type FixedThroughput struct {
	Target float64
	Cores  int
	KW     float64
}

// AtThroughput computes the fixed-throughput operating point for a
// machine given its throughput model.
func AtThroughput(m *machine.Machine, target float64, lo, hi int, model func(cores int) float64) (FixedThroughput, error) {
	cores, err := CoresForThroughput(target, lo, hi, model)
	if err != nil {
		return FixedThroughput{}, err
	}
	return FixedThroughput{
		Target: target,
		Cores:  cores,
		KW:     AggregateKW(m, cores, Science),
	}, nil
}

// RoundCores rounds a core count to a multiple of the machine's
// cores-per-node (allocations are whole nodes).
func RoundCores(m *machine.Machine, cores int) int {
	c := m.CoresPerNode
	return int(math.Ceil(float64(cores)/float64(c))) * c
}
