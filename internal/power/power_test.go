package power

import (
	"math"
	"testing"

	"bgpsim/internal/machine"
)

func TestPerCoreWatts(t *testing.T) {
	bgp := machine.Get(machine.BGP)
	if PerCoreWatts(bgp, HPL) != 7.7 || PerCoreWatts(bgp, Science) != 7.3 {
		t.Error("BG/P per-core watts wrong")
	}
}

func TestAggregateKWMatchesTable3(t *testing.T) {
	// Table 3: BG/P 8192 cores ~63 kW under HPL; XT 30976 cores ~1580 kW.
	bgp := machine.Get(machine.BGP)
	if kw := AggregateKW(bgp, 8192, HPL); math.Abs(kw-63.1) > 0.1 {
		t.Errorf("BG/P HPL power = %.1f kW, want ~63", kw)
	}
	xt := machine.Get(machine.XT4QC)
	if kw := AggregateKW(xt, 30976, HPL); math.Abs(kw-1579.8) > 0.1 {
		t.Errorf("XT HPL power = %.1f kW, want ~1580", kw)
	}
}

func TestMFlopsPerWatt(t *testing.T) {
	// Table 3: BG/P HPL Rmax 21.9 TF at 8192 cores -> ~348 MFlops/W.
	bgp := machine.Get(machine.BGP)
	got := MFlopsPerWatt(bgp, 8192, 21.9e12, HPL)
	if math.Abs(got-347.2) > 1.0 {
		t.Errorf("BG/P = %.1f MFlops/W, want ~347", got)
	}
	xt := machine.Get(machine.XT4QC)
	gotXT := MFlopsPerWatt(xt, 30976, 205.0e12, HPL)
	if math.Abs(gotXT-129.8) > 1.0 {
		t.Errorf("XT = %.1f MFlops/W, want ~130", gotXT)
	}
	// The headline ratio: ~2.7x.
	if ratio := got / gotXT; ratio < 2.4 || ratio > 3.0 {
		t.Errorf("efficiency ratio = %.2f, want ~2.68", ratio)
	}
}

func TestEnergyKWh(t *testing.T) {
	bgp := machine.Get(machine.BGP)
	// 1000 cores for one hour at science load: 7.3 kWh.
	if got := EnergyKWh(bgp, 1000, 3600, Science); math.Abs(got-7.3) > 1e-9 {
		t.Errorf("energy = %g kWh", got)
	}
}

func TestCoresForThroughput(t *testing.T) {
	model := func(cores int) float64 { return float64(cores) / 1000 }
	c, err := CoresForThroughput(12, 1, 100000, model)
	if err != nil {
		t.Fatal(err)
	}
	if c != 12000 {
		t.Errorf("cores = %d, want 12000", c)
	}
	if _, err := CoresForThroughput(1000, 1, 100, model); err == nil {
		t.Error("unreachable target should error")
	}
	if _, err := CoresForThroughput(1, 0, 100, model); err == nil {
		t.Error("bad range should error")
	}
}

func TestAtThroughput(t *testing.T) {
	bgp := machine.Get(machine.BGP)
	model := func(cores int) float64 { return float64(cores) / 40000 * 12 } // 12 SYD at 40000 cores
	ft, err := AtThroughput(bgp, 12, 1, 100000, model)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Cores != 40000 {
		t.Errorf("cores = %d, want 40000", ft.Cores)
	}
	if math.Abs(ft.KW-292) > 1 {
		t.Errorf("power = %.1f kW, want ~292 (Table 3 says 293)", ft.KW)
	}
}

func TestRoundCores(t *testing.T) {
	bgp := machine.Get(machine.BGP)
	if RoundCores(bgp, 7501) != 7504 {
		t.Errorf("RoundCores = %d", RoundCores(bgp, 7501))
	}
	if RoundCores(bgp, 8192) != 8192 {
		t.Error("exact multiple should be unchanged")
	}
}
