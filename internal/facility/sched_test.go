package facility

import (
	"testing"

	"bgpsim/internal/alloc"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

// xtAlloc builds an XT allocator over an n-node torus. The scheduler
// invariant tests use XT because its linear scan makes count-based
// reasoning exact: Alloc(n) succeeds iff n nodes are free, so the EASY
// shadow arithmetic can be checked without spatial-fragmentation noise.
func xtAlloc(t *testing.T, n int) alloc.Allocator {
	t.Helper()
	return alloc.NewXTAllocator(topology.NewTorus(topology.DimsForNodes(n)))
}

func queued(id, nodes int, est sim.Duration) *Queued {
	return &Queued{Spec: JobSpec{ID: id, Cohort: Cohort{Name: "halo", Nodes: nodes, Est: est}}}
}

// TestFCFSOrder: jobs pushed with equal arrival times start strictly in
// push order, and a blocked head blocks everything behind it even when
// later jobs would fit.
func TestFCFSOrder(t *testing.T) {
	a := xtAlloc(t, 16)
	s := &Scheduler{Policy: "fcfs"}
	s.Push(queued(1, 8, 10*sim.Second))
	s.Push(queued(2, 8, 10*sim.Second))
	s.Push(queued(3, 16, 10*sim.Second)) // cannot fit while 1 or 2 runs
	s.Push(queued(4, 2, 10*sim.Second))  // would fit, must not jump

	var started []int
	s.Schedule(0, a, nil, func(q *Queued, aj *alloc.Job) { started = append(started, q.Spec.ID) })
	if len(started) != 2 || started[0] != 1 || started[1] != 2 {
		t.Fatalf("FCFS started %v, want [1 2]", started)
	}
	if s.QueueLen() != 2 || s.Head().Spec.ID != 3 {
		t.Fatalf("queue head = %v, want job 3 blocking job 4", s.Head())
	}
	// Under FCFS job 4 stays queued behind the blocked head forever,
	// no matter how many times the scheduler runs.
	s.Schedule(sim.Time(5*sim.Second), a, []Running{{ID: 1, Nodes: 8, EstEnd: sim.Time(10 * sim.Second)}, {ID: 2, Nodes: 8, EstEnd: sim.Time(10 * sim.Second)}}, func(q *Queued, aj *alloc.Job) {
		t.Fatalf("FCFS backfilled job %d past a blocked head", q.Spec.ID)
	})
}

// TestEASYBackfillRules pins the two legal backfill paths and the
// illegal one on a hand-built scenario:
//
//	16-node machine, 8 nodes running until t=100, head wants 12.
//	Shadow = 100 (running job's estimated end), extra = 16-12 = 4.
//	- job 3 (4 nodes, est 200): outlives shadow but fits the 4 spare
//	  nodes -> backfills, consuming the whole spare budget.
//	- job 4 (2 nodes, est 200): outlives shadow, budget exhausted ->
//	  must stay queued even though nodes are free.
//	- job 5 (2 nodes, est 50): finishes by the shadow -> backfills.
func TestEASYBackfillRules(t *testing.T) {
	a := xtAlloc(t, 16)
	runningJob, err := a.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	running := []Running{{ID: 1, Nodes: 8, EstEnd: sim.Time(100 * sim.Second)}}
	_ = runningJob

	s := &Scheduler{Policy: "easy"}
	s.Push(queued(2, 12, 100*sim.Second)) // head: only 8 free, blocks
	s.Push(queued(3, 4, 200*sim.Second))
	s.Push(queued(4, 2, 200*sim.Second))
	s.Push(queued(5, 2, 50*sim.Second))

	var started []int
	allocs := map[int]*alloc.Job{}
	s.Schedule(0, a, running, func(q *Queued, aj *alloc.Job) {
		started = append(started, q.Spec.ID)
		allocs[q.Spec.ID] = aj
	})
	if len(started) != 2 || started[0] != 3 || started[1] != 5 {
		t.Fatalf("EASY started %v, want backfills [3 5]", started)
	}
	if s.Head().Spec.ID != 2 {
		t.Fatalf("head = job %d, want 2", s.Head().Spec.ID)
	}

	// The decision trace must show both backfills checked against the
	// head's reservation.
	var backfills []Decision
	for _, d := range s.Decisions {
		if d.Backfill {
			backfills = append(backfills, d)
		}
	}
	if len(backfills) != 2 {
		t.Fatalf("decision trace has %d backfills, want 2: %+v", len(backfills), s.Decisions)
	}
	shadow := sim.Time(100 * sim.Second)
	for _, d := range backfills {
		if d.Shadow != shadow {
			t.Errorf("backfill job %d recorded shadow %v, want %v", d.JobID, d.Shadow, shadow)
		}
	}
	if backfills[0].JobID != 3 || backfills[0].Extra != 0 {
		t.Errorf("job 3 backfill = %+v, want extra budget drained to 0", backfills[0])
	}

	// The head must not be delayed: at the shadow time the running job
	// and the window-fitting backfill (job 5, est 50 < shadow) have
	// drained, and the head's 12 nodes are free even though job 3 is
	// still running on the spares.
	a.Free(runningJob)
	a.Free(allocs[5])
	if free := a.FreeNodes(); free < 12 {
		t.Fatalf("at shadow, %d nodes free, head of 12 is delayed", free)
	}
	var headStart []int
	s.Schedule(shadow, a, []Running{{ID: 3, Nodes: 4, EstEnd: sim.Time(200 * sim.Second)}}, func(q *Queued, aj *alloc.Job) {
		headStart = append(headStart, q.Spec.ID)
	})
	if len(headStart) == 0 || headStart[0] != 2 {
		t.Fatalf("head did not start at its shadow time; started %v", headStart)
	}
}

// TestEASYNeverDelaysHead sweeps randomized queues on an XT machine and
// checks the invariant directly: the head's start time with EASY
// backfilling enabled is never later than the start it would get under
// plain FCFS with the same (accurate) estimates.
func TestEASYNeverDelaysHead(t *testing.T) {
	const nodes = 32
	rng := sim.NewRNG(99)
	for trial := 0; trial < 50; trial++ {
		var jobs []*Queued
		n := 3 + rng.Intn(6)
		for i := 0; i < n; i++ {
			jobs = append(jobs, queued(i+1, 1+rng.Intn(nodes), sim.Duration(1+rng.Intn(100))*sim.Second))
		}
		headStart := func(policy string) sim.Time {
			a := xtAlloc(t, nodes)
			s := &Scheduler{Policy: policy}
			for _, j := range jobs {
				s.Push(&Queued{Spec: j.Spec})
			}
			// Event-driven drain with durations equal to estimates.
			headID := -1
			if s.QueueLen() > 1 {
				headID = s.queue[1].Spec.ID // job that queues behind the first wave
			}
			type run struct {
				id  int
				end sim.Time
				aj  *alloc.Job
			}
			var running []run
			now := sim.Time(0)
			var hStart sim.Time = -1
			for iter := 0; iter < 1000; iter++ {
				var est []Running
				for _, r := range running {
					est = append(est, Running{ID: r.id, Nodes: len(r.aj.Nodes), EstEnd: r.end})
				}
				s.Schedule(now, a, est, func(q *Queued, aj *alloc.Job) {
					if q.Spec.ID == headID && hStart < 0 {
						hStart = now
					}
					running = append(running, run{id: q.Spec.ID, end: now.Add(q.Spec.Cohort.Est), aj: aj})
				})
				if s.QueueLen() == 0 || len(running) == 0 {
					break
				}
				// Advance to the earliest completion.
				next := running[0].end
				for _, r := range running {
					if r.end < next {
						next = r.end
					}
				}
				now = next
				var keep []run
				for _, r := range running {
					if r.end == now {
						a.Free(r.aj)
					} else {
						keep = append(keep, r)
					}
				}
				running = keep
			}
			return hStart
		}
		fcfs := headStart("fcfs")
		easy := headStart("easy")
		if easy > fcfs {
			t.Fatalf("trial %d: EASY delayed a queued job to %v (FCFS starts it at %v); jobs %+v", trial, easy, fcfs, jobs)
		}
	}
}
