package facility

import (
	"fmt"
	"io"
	"strings"

	"bgpsim/internal/obs"
	"bgpsim/internal/runner"
	"bgpsim/internal/stats"
)

// SummaryTable is the facility-level scoreboard: machine utilization,
// queue waits, and allocator fragmentation — the quantities the
// BG-vs-XT allocation contrast moves.
func (r *Result) SummaryTable() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("facility: %s alloc=%s sched=%s (%d nodes, %d jobs)",
			r.Workload.MachID, r.Workload.Alloc, r.Workload.Sched, r.Workload.Nodes, len(r.Jobs)),
		"metric", "value")
	t.AddRow("makespan (s)", stats.FormatG(r.Makespan.Seconds()))
	t.AddRow("utilization", stats.FormatG(r.Utilization))
	t.AddRow("mean wait (s)", stats.FormatG(r.MeanWait.Seconds()))
	t.AddRow("max wait (s)", stats.FormatG(r.MaxWait.Seconds()))
	t.AddRow("frag mean", stats.FormatG(r.FragMean))
	t.AddRow("frag max", stats.FormatG(r.FragMax))
	t.AddRow("backfills", fmt.Sprintf("%d", r.Backfills))
	return t
}

// JobTable lists every job's fate: queue wait, placement quality
// (spread, external-route share), and fault outcome.
func (r *Result) JobTable() *stats.Table {
	t := stats.NewTable("jobs",
		"job", "cohort", "nodes", "policy", "arrive(s)", "wait(s)", "end(s)",
		"status", "spread", "extshare", "lost", "peerlost", "restarts")
	for _, j := range r.Jobs {
		t.AddRow(
			fmt.Sprintf("%d", j.ID), j.Cohort, fmt.Sprintf("%d", j.Nodes), j.Policy,
			stats.FormatG(j.Arrival.Seconds()), stats.FormatG(j.Wait.Seconds()),
			stats.FormatG(j.End.Seconds()), j.Status,
			stats.FormatG(j.Spread), stats.FormatG(j.ExtFrac),
			fmt.Sprintf("%d", j.Lost), fmt.Sprintf("%d", j.PeerLost),
			fmt.Sprintf("%d", j.Restarts))
	}
	return t
}

// BlastTable lists every machine-level blast and its reach.
func (r *Result) BlastTable() *stats.Table {
	t := stats.NewTable("blasts",
		"at(s)", "origin", "level", "domain", "dead", "idle dead", "jobs hit")
	for _, b := range r.Blasts {
		hit := make([]string, len(b.Hits))
		for i, h := range b.Hits {
			hit[i] = fmt.Sprintf("%d", h.Job)
		}
		joined := strings.Join(hit, " ")
		if joined == "" {
			joined = "-"
		}
		t.AddRow(
			stats.FormatG(b.Spec.At.Seconds()),
			fmt.Sprintf("%d", b.Res.Origin),
			b.Res.Level.String(),
			fmt.Sprintf("[%d,%d]", b.Res.First, b.Res.Last),
			fmt.Sprintf("%d", len(b.Res.Dead)),
			fmt.Sprintf("%d", b.IdleDead),
			joined)
	}
	return t
}

// Gantt renders the job timeline: one row per job, 'q' spans for
// queued time, the cohort's initial for run attempts, 'x' for the
// aborted tail of a blast-killed attempt.
func (r *Result) Gantt(width int) string {
	rows := make([]obs.GanttRow, 0, len(r.Jobs))
	for _, j := range r.Jobs {
		row := obs.GanttRow{Name: fmt.Sprintf("job %d %s", j.ID, j.Cohort)}
		runLabel := j.Cohort[:1]
		prev := j.Arrival
		for i, start := range j.Starts {
			if start > prev {
				row.Spans = append(row.Spans, obs.Span{Label: "q", Start: prev.Seconds(), End: start.Seconds()})
			}
			// The final attempt runs to the job's end; earlier attempts
			// were blast-killed and render as 'x' up to their abort.
			if i == len(j.Starts)-1 {
				row.Spans = append(row.Spans, obs.Span{Label: runLabel, Start: start.Seconds(), End: j.End.Seconds()})
			} else {
				row.Spans = append(row.Spans, obs.Span{Label: "x", Start: start.Seconds(), End: j.Aborts[i].Seconds()})
				prev = j.Aborts[i]
			}
		}
		if len(j.Starts) == 0 {
			row.Spans = append(row.Spans, obs.Span{Label: "q", Start: j.Arrival.Seconds(), End: j.End.Seconds()})
		}
		rows = append(rows, row)
	}
	return obs.Gantt(rows, width)
}

// BlastNotes adds one runner note per blast naming the jobs it hit and
// each hit job's outcome — the facility extension of the single-job
// blast-domain reporting in cmd/halo.
func (r *Result) BlastNotes(notes *runner.Notes) {
	for i, b := range r.Blasts {
		if len(b.Hits) == 0 {
			notes.Add(i, "blast at %s: %s domain [%d,%d], %d nodes dead, no running jobs hit",
				fmtSec(b.Spec.At.Seconds()), b.Res.Level, b.Res.First, b.Res.Last, len(b.Res.Dead))
			continue
		}
		var outs []string
		for _, h := range b.Hits {
			j := r.Jobs[h.Job-1]
			switch h.Outcome {
			case StatusDegraded:
				outs = append(outs, fmt.Sprintf("job %d (%s/%s: degraded, lost %d, peer-lost %d)", h.Job, j.Cohort, j.Policy, j.Lost, j.PeerLost))
			case StatusRestarted:
				outs = append(outs, fmt.Sprintf("job %d (%s/%s: %d rank restarts)", h.Job, j.Cohort, j.Policy, j.Restarts))
			default:
				outs = append(outs, fmt.Sprintf("job %d (%s/%s: %s)", h.Job, j.Cohort, j.Policy, h.Outcome))
			}
		}
		notes.Add(i, "blast at %s: %s domain [%d,%d], %d nodes dead (%d idle), hit %s",
			fmtSec(b.Spec.At.Seconds()), b.Res.Level, b.Res.First, b.Res.Last,
			len(b.Res.Dead), b.IdleDead, strings.Join(outs, ", "))
	}
}

func fmtSec(s float64) string { return stats.FormatG(s) + "s" }

// Report writes the full facility report: summary, per-job table,
// blast table (when blasts fired), and the job Gantt.
func (r *Result) Report(w io.Writer) {
	io.WriteString(w, r.SummaryTable().String())
	io.WriteString(w, "\n")
	io.WriteString(w, r.JobTable().String())
	if len(r.Blasts) > 0 {
		io.WriteString(w, "\n")
		io.WriteString(w, r.BlastTable().String())
	}
	io.WriteString(w, "\n")
	io.WriteString(w, r.Gantt(72))
}
