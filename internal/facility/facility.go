package facility

import (
	"errors"
	"fmt"
	"sort"

	"bgpsim/internal/alloc"
	"bgpsim/internal/fault"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/runner"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

// Job completion statuses.
const (
	StatusDone          = "done"          // completed healthy
	StatusDegraded      = "degraded"      // completed minus dead ranks (cancel policy)
	StatusRestarted     = "restarted"     // completed via user-level restarts
	StatusRequeued      = "requeued"      // transient: aborted, back in queue
	StatusUnschedulable = "unschedulable" // abandoned: machine shrank below job size
)

// JobRecord is the facility's account of one job.
type JobRecord struct {
	ID     int
	Cohort string
	Policy string
	Nodes  int

	Arrival sim.Time
	Starts  []sim.Time   // one per attempt
	Aborts  []sim.Time   // blast-kill time of each non-final attempt
	End     sim.Time     // final completion (or abandonment)
	Wait    sim.Duration // total queued time across attempts

	Status   string
	Requeues int
	BlastHit bool

	// Placement quality of the final attempt.
	Spread   float64
	ExtFrac  float64
	Isolated bool

	// Fault outcome of the final attempt (zero for healthy runs).
	Lost     int
	PeerLost int
	Restarts int64
}

// BlastHit is one running job struck by a blast, with its immediate
// outcome (a fail-stop job later rerunning to "done" stays "requeued"
// here — this records what the blast did, not how the story ends).
type BlastHit struct {
	Job     int
	Outcome string // StatusRequeued, StatusDegraded, StatusRestarted, or StatusDone
}

// BlastEvent is one machine-level correlated failure as the facility
// saw it.
type BlastEvent struct {
	Spec     fault.BlastSpec
	Res      fault.BlastResult
	Hits     []BlastHit // running jobs that lost nodes, by job ID
	IdleDead int        // dead nodes that were idle (reserved immediately)
}

// HitJobs returns the IDs of the jobs the blast struck, ascending.
func (b *BlastEvent) HitJobs() []int {
	ids := make([]int, len(b.Hits))
	for i, h := range b.Hits {
		ids[i] = h.Job
	}
	return ids
}

// Result is one facility run.
type Result struct {
	Workload *Workload
	Jobs     []*JobRecord // by ID (index 0 = job 1)
	Blasts   []BlastEvent
	Makespan sim.Time

	Utilization float64 // busy node-time / (machine nodes x makespan)
	MeanWait    sim.Duration
	MaxWait     sim.Duration
	FragMean    float64 // allocator fragmentation sampled at schedule points
	FragMax     float64
	Backfills   int
	Decisions   []Decision
}

// Params configures a facility run.
type Params struct {
	Workload *Workload
	Shards   int // per-job simulation shard count (0/1 = serial)
}

// runningJob is one in-flight job.
type runningJob struct {
	rec   *JobRecord
	aj    *alloc.Job
	part  *topology.Partition
	nodes []int // parent node ids (aj.Nodes is nilled on Free)
	start sim.Time
	end   sim.Time // actual simulated end
	kills []nodeKill
}

type facility struct {
	p      Params
	w      *Workload
	torus  *topology.Torus
	alloc  alloc.Allocator
	sched  *Scheduler
	dead   map[int]bool // machine nodes lost to blasts
	record []*JobRecord

	running map[int]*runningJob

	// Utilization integral.
	lastT     sim.Time
	busyNodes int
	busyInt   float64 // node-seconds

	fragSum   float64
	fragMax   float64
	fragCount int
}

// Run executes the workload and returns the facility result. The run
// is deterministic: the event loop is serial, and every batch of job
// simulations fans out on the runner pool with results committed in
// job order, so the result is identical at any worker count; per-job
// simulations use the analytic fidelity and are therefore also
// byte-identical at any Params.Shards.
func Run(p Params) (*Result, error) {
	w := p.Workload
	if w == nil {
		return nil, fmt.Errorf("facility: no workload")
	}
	f := &facility{
		p:       p,
		w:       w,
		torus:   w.Torus(),
		sched:   &Scheduler{Policy: w.Sched},
		dead:    make(map[int]bool),
		running: make(map[int]*runningJob),
	}
	if f.torus.Dims.Nodes() != w.Nodes {
		return nil, fmt.Errorf("facility: no torus dims for %d nodes", w.Nodes)
	}
	if w.Alloc == "xt" {
		f.alloc = alloc.NewXTAllocator(f.torus)
	} else {
		f.alloc = alloc.NewBGAllocator(f.torus)
	}

	arrivals := w.Generate()
	f.record = make([]*JobRecord, len(arrivals))
	for i, js := range arrivals {
		f.record[i] = &JobRecord{
			ID:      js.ID,
			Cohort:  js.Cohort.Name,
			Policy:  js.Cohort.Policy,
			Nodes:   js.Cohort.Nodes,
			Arrival: js.Arrival,
			Status:  StatusRequeued,
		}
	}

	// Pre-draw every blast against the machine torus: the dead sets are
	// a pure function of the workload seed, independent of scheduling.
	blasts, err := f.drawBlasts()
	if err != nil {
		return nil, err
	}

	nextArrival, nextBlast := 0, 0
	for {
		now, ok := f.nextEventTime(arrivals, blasts, nextArrival, nextBlast)
		if !ok {
			if f.sched.QueueLen() > 0 {
				// Nothing running, nothing pending, jobs still queued:
				// the head can never be placed on what remains of the
				// machine. Abandon it and try the rest.
				q := f.sched.DropHead()
				rec := f.record[q.Spec.ID-1]
				rec.Status = StatusUnschedulable
				rec.End = f.lastT
				if err := f.schedule(f.lastT); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		f.advanceTo(now)

		// Deterministic same-time ordering: completions release nodes
		// first, then the blast strikes the machine, then new arrivals
		// join the queue, then the scheduler runs once.
		if err := f.completions(now); err != nil {
			return nil, err
		}
		for nextBlast < len(blasts) && blasts[nextBlast].Spec.At == now {
			if err := f.applyBlast(blasts[nextBlast]); err != nil {
				return nil, err
			}
			nextBlast++
		}
		for nextArrival < len(arrivals) && arrivals[nextArrival].Arrival == now {
			js := arrivals[nextArrival]
			f.sched.Push(&Queued{Spec: js, Enq: js.Arrival})
			nextArrival++
		}
		if err := f.schedule(now); err != nil {
			return nil, err
		}
	}

	res := &Result{
		Workload:  w,
		Jobs:      f.record,
		Makespan:  f.lastT,
		Decisions: f.sched.Decisions,
	}
	for _, b := range blasts {
		res.Blasts = append(res.Blasts, *b)
	}
	var waitSum sim.Duration
	for _, rec := range f.record {
		waitSum += rec.Wait
		if rec.Wait > res.MaxWait {
			res.MaxWait = rec.Wait
		}
	}
	if len(f.record) > 0 {
		res.MeanWait = waitSum / sim.Duration(len(f.record))
	}
	if s := f.lastT.Seconds() * float64(w.Nodes); s > 0 {
		res.Utilization = f.busyInt / s
	}
	if f.fragCount > 0 {
		res.FragMean = f.fragSum / float64(f.fragCount)
	}
	res.FragMax = f.fragMax
	for _, d := range f.sched.Decisions {
		if d.Backfill {
			res.Backfills++
		}
	}
	return res, nil
}

// drawBlasts rolls every blast's escalation and dead set up front on a
// facility-level plan (one draw stream, specs in time order).
func (f *facility) drawBlasts() ([]*BlastEvent, error) {
	if len(f.w.Blasts) == 0 {
		return nil, nil
	}
	plan := fault.NewPlan(f.w.Seed)
	h := f.w.Machine.Hierarchy()
	events := make([]*BlastEvent, 0, len(f.w.Blasts))
	for _, spec := range f.w.Blasts {
		res, err := plan.InjectBlast(f.torus, h, spec)
		if err != nil {
			return nil, fmt.Errorf("facility: %v", err)
		}
		events = append(events, &BlastEvent{Spec: spec, Res: res})
	}
	return events, nil
}

// nextEventTime finds the earliest pending event.
func (f *facility) nextEventTime(arrivals []JobSpec, blasts []*BlastEvent, nextArrival, nextBlast int) (sim.Time, bool) {
	var t sim.Time
	found := false
	consider := func(c sim.Time) {
		if !found || c < t {
			t, found = c, true
		}
	}
	if nextArrival < len(arrivals) {
		consider(arrivals[nextArrival].Arrival)
	}
	if nextBlast < len(blasts) {
		consider(blasts[nextBlast].Spec.At)
	}
	for _, r := range f.running {
		consider(r.end)
	}
	return t, found
}

// advanceTo integrates utilization up to now.
func (f *facility) advanceTo(now sim.Time) {
	f.busyInt += float64(f.busyNodes) * now.Sub(f.lastT).Seconds()
	f.lastT = now
}

// completions retires every running job whose simulated end is now, in
// job-ID order.
func (f *facility) completions(now sim.Time) error {
	var done []int
	for id, r := range f.running {
		if r.end == now {
			done = append(done, id)
		}
	}
	sort.Ints(done)
	for _, id := range done {
		r := f.running[id]
		delete(f.running, id)
		f.busyNodes -= len(r.nodes)
		r.rec.End = now
		f.release(r)
	}
	return nil
}

// release frees a finished job's nodes, re-reserving any that died
// while the job held them (dead hardware never returns to circulation).
func (f *facility) release(r *runningJob) {
	f.alloc.Free(r.aj)
	var dead []int
	for _, n := range r.nodes {
		if f.dead[n] {
			dead = append(dead, n)
		}
	}
	if len(dead) > 0 {
		// Free just returned them, so Reserve cannot fail.
		if err := f.alloc.Reserve(dead); err != nil {
			panic(fmt.Sprintf("facility: re-reserving dead nodes: %v", err))
		}
	}
}

// applyBlast kills the blast's machine nodes: idle victims are
// reserved out of the allocator immediately; victims inside running
// jobs become partition-local kills and the jobs re-simulate under
// their fault policies.
func (f *facility) applyBlast(b *BlastEvent) error {
	now := b.Spec.At
	newDead := make([]int, 0, len(b.Res.Dead))
	for _, n := range b.Res.Dead {
		if !f.dead[n] {
			f.dead[n] = true
			newDead = append(newDead, n)
		}
	}

	// Partition the dead between idle machine nodes and running jobs.
	inJob := make(map[int]int) // machine node -> job ID
	for id, r := range f.running {
		for _, n := range r.nodes {
			inJob[n] = id
		}
	}
	var idle []int
	hitSet := make(map[int]bool)
	for _, n := range newDead {
		if id, ok := inJob[n]; ok {
			hitSet[id] = true
		} else {
			idle = append(idle, n)
		}
	}
	if len(idle) > 0 {
		if err := f.alloc.Reserve(idle); err != nil {
			return fmt.Errorf("facility: reserving blast-dead nodes: %v", err)
		}
	}
	b.IdleDead = len(idle)
	var hitIDs []int
	for id := range hitSet {
		hitIDs = append(hitIDs, id)
	}
	sort.Ints(hitIDs)

	// Each hit job accumulates its local kills and re-simulates under
	// its policy: fail-stop jobs abort at the blast and requeue, the
	// others complete degraded or restarted with a new end time. The
	// re-simulations fan out together, committed in job order.
	var hit []*runningJob
	for _, id := range hitIDs {
		r := f.running[id]
		r.rec.BlastHit = true
		locals := r.part.Intersect(newDead)
		for _, l := range locals {
			r.kills = append(r.kills, nodeKill{local: l, at: sim.Time(now.Sub(r.start))})
		}
		hit = append(hit, r)
	}
	type resim struct {
		res     *mpi.Result
		aborted bool
	}
	outs, err := runner.Sweep(hit, func(r *runningJob) (resim, error) {
		res, err := f.simulate(r.rec, r.part, r.kills)
		if err != nil {
			var rf *mpi.RankFailure
			if r.rec.Policy == PolicyFailStop && errors.As(err, &rf) {
				return resim{aborted: true}, nil
			}
			return resim{}, err
		}
		return resim{res: res}, nil
	})
	if err != nil {
		return err
	}
	for i, r := range hit {
		out := outs[i]
		if out.aborted {
			// Fail-stop: the job dies at the blast and goes back to the
			// queue to start over on healthy nodes.
			delete(f.running, r.rec.ID)
			f.busyNodes -= len(r.nodes)
			r.rec.End = now
			r.rec.Aborts = append(r.rec.Aborts, now)
			r.rec.Requeues++
			r.rec.Status = StatusRequeued
			f.release(r)
			f.sched.Push(&Queued{
				Spec: JobSpec{ID: r.rec.ID, Cohort: f.cohortOf(r.rec), Arrival: r.rec.Arrival},
				Enq:  now,
			})
			b.Hits = append(b.Hits, BlastHit{Job: r.rec.ID, Outcome: StatusRequeued})
			continue
		}
		r.end = r.start.Add(out.res.Elapsed)
		if r.end < now {
			// A recovery cannot finish before the blast that caused it;
			// clamp pathological estimates.
			r.end = now
		}
		f.applyResult(r.rec, out.res)
		b.Hits = append(b.Hits, BlastHit{Job: r.rec.ID, Outcome: r.rec.Status})
	}
	return nil
}

// cohortOf rebuilds a job's cohort from its record (for requeues).
func (f *facility) cohortOf(rec *JobRecord) Cohort {
	for _, c := range f.w.Cohorts {
		if c.Name == rec.Cohort && c.Nodes == rec.Nodes && c.Policy == rec.Policy {
			return c
		}
	}
	panic(fmt.Sprintf("facility: job %d cohort %q not in workload", rec.ID, rec.Cohort))
}

// applyResult folds a simulation result into the job record.
func (f *facility) applyResult(rec *JobRecord, res *mpi.Result) {
	rec.Lost = len(res.Lost)
	rec.PeerLost = len(res.PeerLost)
	rec.Restarts = res.Net.Restarts
	switch {
	case rec.Restarts > 0:
		rec.Status = StatusRestarted
	case rec.Lost > 0 || rec.PeerLost > 0:
		rec.Status = StatusDegraded
	default:
		rec.Status = StatusDone
	}
}

// schedule runs the batch scheduler once at now, simulating every
// newly started job (healthy) to learn its true end time.
func (f *facility) schedule(now sim.Time) error {
	var est []Running
	for id, r := range f.running {
		est = append(est, Running{ID: id, Nodes: len(r.nodes), EstEnd: r.start.Add(f.estOf(r.rec))})
	}
	sort.Slice(est, func(i, j int) bool { return est[i].ID < est[j].ID })

	var started []*runningJob
	f.sched.Schedule(now, f.alloc, est, func(q *Queued, aj *alloc.Job) {
		rec := f.record[q.Spec.ID-1]
		rec.Starts = append(rec.Starts, now)
		rec.Wait += now.Sub(q.Enq)
		part, err := aj.Partition(f.torus, f.w.Alloc == "bg")
		if err != nil {
			panic(fmt.Sprintf("facility: job %d partition: %v", q.Spec.ID, err))
		}
		rec.Spread = alloc.Spread(f.torus, aj)
		rec.ExtFrac = part.ExternalRouteShare()
		rec.Isolated = part.Isolated
		r := &runningJob{
			rec:   rec,
			aj:    aj,
			part:  part,
			nodes: append([]int(nil), aj.Nodes...),
			start: now,
		}
		f.running[q.Spec.ID] = r
		f.busyNodes += len(r.nodes)
		started = append(started, r)
	})

	f.sampleFrag()
	if len(started) == 0 {
		return nil
	}
	// Learn every started job's healthy duration: independent
	// simulations, fanned out, committed in order.
	outs, err := runner.Sweep(started, func(r *runningJob) (*mpi.Result, error) {
		return f.simulate(r.rec, r.part, nil)
	})
	if err != nil {
		return err
	}
	for i, r := range started {
		r.end = r.start.Add(outs[i].Elapsed)
		f.applyResult(r.rec, outs[i])
	}
	return nil
}

func (f *facility) estOf(rec *JobRecord) sim.Duration { return f.cohortOf(rec).Est }

func (f *facility) sampleFrag() {
	fr := f.alloc.Frag()
	f.fragSum += fr
	f.fragCount++
	if fr > f.fragMax {
		f.fragMax = fr
	}
}

// simulate runs one job on its partition: healthy when kills is empty,
// otherwise under the job's fault policy with the accumulated
// partition-local kills.
func (f *facility) simulate(rec *JobRecord, part *topology.Partition, kills []nodeKill) (*mpi.Result, error) {
	var plan *fault.Plan
	if len(kills) > 0 {
		modes := policyModes(rec.Policy)
		if modes != "" {
			spec, err := fault.ParseSpec(fmt.Sprintf("seed=%d,%s", f.w.Seed, modes))
			if err != nil {
				return nil, err
			}
			if plan, _, err = spec.Build(topology.NewTorus(part.ViewDims()), f.w.Machine.Hierarchy()); err != nil {
				return nil, err
			}
		} else {
			plan = fault.NewPlan(f.w.Seed)
		}
		for _, k := range kills {
			plan.KillNode(k.local, k.at)
		}
	}
	cohort := f.cohortOf(rec)
	cfg := mpi.Config{
		Machine:   f.w.Machine,
		Mode:      machine.SMP,
		Fidelity:  network.Analytic,
		Partition: part,
		Seed:      f.w.Seed + uint64(rec.ID),
		Shards:    f.p.Shards,
		Faults:    plan,
	}
	return mpi.Execute(cfg, skeletons[cohort.Name](cohort))
}
