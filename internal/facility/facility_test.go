package facility

import (
	"bytes"
	"strings"
	"testing"

	"bgpsim/internal/runner"
)

func runReport(t *testing.T, spec string, shards int) (*Result, string) {
	t.Helper()
	w, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Params{Workload: w, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	res.Report(&b)
	return res, b.String()
}

// Long enough per-job runs (2000 halo iterations is ~15 simulated
// seconds on 8 BG/P nodes) that the 1s-mean arrival phase stacks all
// six jobs onto the machine before the first finishes, and the blast
// at t=8s lands while they run. 8-node jobs place as 2x2x2 prisms, so
// the card-level blast domain [0,31] (the z<2 half of the 4x4x4 torus)
// swallows the jobs packed there whole and leaves the z>=2 jobs
// untouched.
const blastSpecCancel = "seed=3,nodes=64,jobs=6,phase=0s:1s," +
	"cohort=halo:8:1:20s:2000:cancel,blast=8s/0/1/0/0/1"

// TestBlastHitsMultipleJobs: a card-level blast (nodes [0,31] on the
// 64-node machine) must land on at least two of the six concurrent
// 8-node jobs, and each hit job — running under the cancel policy —
// must complete degraded with dead ranks.
func TestBlastHitsMultipleJobs(t *testing.T) {
	res, _ := runReport(t, blastSpecCancel, 0)
	if len(res.Blasts) != 1 {
		t.Fatalf("got %d blasts, want 1", len(res.Blasts))
	}
	b := res.Blasts[0]
	if len(b.HitJobs()) < 2 {
		t.Fatalf("blast hit %v jobs, want >= 2 (dead=%d, level=%v)", b.HitJobs(), len(b.Res.Dead), b.Res.Level)
	}
	for _, id := range b.HitJobs() {
		j := res.Jobs[id-1]
		if !j.BlastHit {
			t.Errorf("job %d in HitJobs but not marked BlastHit", id)
		}
		if j.Status != StatusDegraded {
			t.Errorf("cancel-policy job %d status %q, want %q", id, j.Status, StatusDegraded)
		}
		if j.Lost == 0 {
			t.Errorf("degraded job %d lost no ranks", id)
		}
	}
	// Jobs outside the blast domain finish healthy.
	healthy := 0
	for _, j := range res.Jobs {
		if !j.BlastHit && j.Status == StatusDone {
			healthy++
		}
	}
	if healthy == 0 {
		t.Errorf("no job survived the blast healthy; want the far half of the machine untouched")
	}
}

// TestBlastFailStopRequeues: the same scenario under fail-stop — hit
// jobs abort at the blast, requeue, and restart on surviving nodes.
func TestBlastFailStopRequeues(t *testing.T) {
	spec := strings.ReplaceAll(blastSpecCancel, ":cancel", ":failstop")
	res, _ := runReport(t, spec, 0)
	if len(res.Blasts[0].HitJobs()) < 2 {
		t.Fatalf("blast hit %v jobs, want >= 2", res.Blasts[0].HitJobs())
	}
	for _, id := range res.Blasts[0].HitJobs() {
		j := res.Jobs[id-1]
		if j.Requeues == 0 || len(j.Starts) < 2 {
			t.Errorf("fail-stop job %d: requeues=%d starts=%v, want a restart", id, j.Requeues, j.Starts)
		}
		if j.Status != StatusDone {
			t.Errorf("fail-stop job %d final status %q, want %q (clean rerun)", id, j.Status, StatusDone)
		}
		if len(j.Aborts) != j.Requeues {
			t.Errorf("job %d has %d aborts for %d requeues", id, len(j.Aborts), j.Requeues)
		}
	}
	// The notes must name every hit job.
	var notes runner.Notes
	res.BlastNotes(&notes)
	var b bytes.Buffer
	notes.Flush(&b)
	for _, id := range res.Blasts[0].HitJobs() {
		if !strings.Contains(b.String(), "requeued") {
			t.Errorf("blast notes missing requeue outcome for job %d: %q", id, b.String())
		}
	}
}

// TestRestartPolicySurvives: restart=ckpt jobs complete whole (no lost
// ranks) with rank restarts on the books.
func TestRestartPolicySurvives(t *testing.T) {
	spec := strings.ReplaceAll(blastSpecCancel, ":cancel", ":restart")
	res, _ := runReport(t, spec, 0)
	if len(res.Blasts[0].HitJobs()) < 2 {
		t.Fatalf("blast hit %v jobs, want >= 2", res.Blasts[0].HitJobs())
	}
	for _, id := range res.Blasts[0].HitJobs() {
		j := res.Jobs[id-1]
		if j.Status != StatusRestarted || j.Restarts == 0 {
			t.Errorf("restart job %d: status=%q restarts=%d, want restarted > 0", id, j.Status, j.Restarts)
		}
	}
}

// TestFacilityDeterminism: the full report is byte-identical across
// runner worker counts and per-job shard counts — the facility analogue
// of the simulator's determinism contract.
func TestFacilityDeterminism(t *testing.T) {
	spec := "seed=11,nodes=64,jobs=6,phase=0s:2s," +
		"cohort=halo:16:2:20s:800:failstop,cohort=cg:8:1:10s:400:cancel," +
		"blast=6s/0/1/0/0/0.9"
	defer runner.SetWorkers(runner.Workers())
	runner.SetWorkers(1)
	_, serial := runReport(t, spec, 0)
	runner.SetWorkers(4)
	_, par := runReport(t, spec, 0)
	if serial != par {
		t.Fatalf("report differs between 1 and 4 workers:\n--- w1 ---\n%s\n--- w4 ---\n%s", serial, par)
	}
	_, sharded := runReport(t, spec, 4)
	if serial != sharded {
		t.Fatalf("report differs between shards=0 and shards=4:\n--- s0 ---\n%s\n--- s4 ---\n%s", serial, sharded)
	}
}

// TestUnschedulableAfterBlast: when a blast kills so much of the
// machine that a queued job can never fit again, the facility abandons
// it instead of looping forever.
func TestUnschedulableAfterBlast(t *testing.T) {
	// One running 16-node job; a full-machine blast at t=2s (density 1)
	// kills everything, so the remaining queued jobs can never start.
	spec := "seed=2,nodes=64,jobs=3,phase=0s:1s," +
		"cohort=halo:16:1:20s:2000:cancel,blast=2s/0/1/1/1/1"
	res, _ := runReport(t, spec, 0)
	unsched := 0
	for _, j := range res.Jobs {
		if j.Status == StatusUnschedulable {
			unsched++
		}
	}
	if unsched == 0 {
		t.Fatalf("no job marked unschedulable after a machine-killing blast; statuses: %v", statuses(res))
	}
}

func statuses(res *Result) []string {
	var out []string
	for _, j := range res.Jobs {
		out = append(out, j.Status)
	}
	return out
}

// TestUtilizationAccounting: utilization and waits are sane — inside
// (0, 1], and queue waits appear once the machine saturates.
func TestUtilizationAccounting(t *testing.T) {
	spec := "seed=4,nodes=64,jobs=8,phase=0s:500ms,cohort=halo:32:1:20s:1000:failstop,sched=fcfs"
	res, _ := runReport(t, spec, 0)
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Fatalf("utilization %v outside (0, 1]", res.Utilization)
	}
	if res.MaxWait == 0 {
		t.Fatalf("eight 32-node jobs on 64 nodes with 0.5s arrivals queued no one")
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan %v", res.Makespan)
	}
}
