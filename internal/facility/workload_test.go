package facility

import (
	"strings"
	"testing"

	"bgpsim/internal/sim"
)

func TestParseDefaults(t *testing.T) {
	w, err := Parse("cohort=halo:16:1")
	if err != nil {
		t.Fatal(err)
	}
	if w.Seed != 1 || w.Nodes != 512 || w.Alloc != "bg" || w.Sched != "easy" || w.NumJobs != 16 {
		t.Fatalf("defaults wrong: %+v", w)
	}
	if len(w.Phases) != 1 || w.Phases[0].Gap != 30*sim.Second {
		t.Fatalf("default phase wrong: %+v", w.Phases)
	}
	c := w.Cohorts[0]
	if c.Est != 60*sim.Second || c.Iters != 20 || c.Policy != PolicyFailStop {
		t.Fatalf("cohort defaults wrong: %+v", c)
	}
}

func TestParseFull(t *testing.T) {
	w, err := Parse("seed=9,nodes=2048,alloc=xt,sched=fcfs,jobs=24," +
		"phase=0s:10s,phase=300s:2s," +
		"cohort=halo:128:2:90s:400:restart,cohort=fft:64:1:45s:200:cancel," +
		"blast=120s/*/1/0.5/0.25/0.6")
	if err != nil {
		t.Fatal(err)
	}
	if w.Seed != 9 || w.Nodes != 2048 || w.Alloc != "xt" || w.Sched != "fcfs" || w.NumJobs != 24 {
		t.Fatalf("parse wrong: %+v", w)
	}
	if len(w.Phases) != 2 || w.Phases[1].Start != sim.Time(300*sim.Second) {
		t.Fatalf("phases wrong: %+v", w.Phases)
	}
	if len(w.Cohorts) != 2 || w.Cohorts[0].Policy != PolicyRestart || w.Cohorts[1].Iters != 200 {
		t.Fatalf("cohorts wrong: %+v", w.Cohorts)
	}
	if len(w.Blasts) != 1 || w.Blasts[0].Density != 0.6 {
		t.Fatalf("blasts wrong: %+v", w.Blasts)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"", "at least one cohort"},
		{"cohort=halo:16:1,alloc=cray", "alloc wants bg or xt"},
		{"cohort=halo:16:1,sched=sjf", "sched wants fcfs or easy"},
		{"cohort=nosuch:16:1", "unknown skeleton"},
		{"cohort=halo:16:1:5s:10:fancy", "unknown policy"},
		{"nodes=64,cohort=halo:128:1", "on a 64-node machine"},
		{"cohort=halo:16:1,blast=1s/0/1/1/1/1/links", "/links is not supported"},
		{"cohort=halo:16:1,bogus=1", "unknown directive"},
		{"cohort=halo:16:1,machine=NoSuch", ""},
		{"cohort=halo:0:1", "node count"},
		{"cohort=halo:16:0", "weight"},
		{"phase=1s", "START:GAP"},
	}
	for _, c := range cases {
		_, err := Parse(c.spec)
		if err == nil {
			t.Errorf("Parse(%q) accepted, want error", c.spec)
			continue
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %q, want containing %q", c.spec, err, c.want)
		}
	}
}

func TestGenerateDeterministicAndPhased(t *testing.T) {
	w, err := Parse("seed=5,jobs=40,phase=0s:100s,phase=1000s:1s,cohort=halo:16:3,cohort=cg:8:1")
	if err != nil {
		t.Fatal(err)
	}
	a, b := w.Generate(), w.Generate()
	if len(a) != 40 || len(b) != 40 {
		t.Fatalf("generated %d/%d jobs, want 40", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generation not deterministic at job %d: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && a[i].Arrival < a[i-1].Arrival {
			t.Fatalf("arrivals out of order at job %d", i)
		}
		if a[i].ID != i+1 {
			t.Fatalf("job %d has ID %d", i, a[i].ID)
		}
	}
	// The second phase's 1s mean gap must dominate once arrivals cross
	// its start: mean gap after 1000s should be far below the 100s mean
	// before it.
	var before, after []float64
	for i := 1; i < len(a); i++ {
		gap := a[i].Arrival.Sub(a[i-1].Arrival).Seconds()
		if a[i-1].Arrival.Seconds() < 1000 {
			before = append(before, gap)
		} else {
			after = append(after, gap)
		}
	}
	if len(after) < 5 {
		t.Fatalf("phase 2 saw only %d arrivals; tune the test workload", len(after))
	}
	if mean(after)*10 > mean(before) {
		t.Fatalf("phase gaps not respected: before=%v after=%v", mean(before), mean(after))
	}
	// Both cohorts must be drawn.
	seen := map[string]bool{}
	for _, js := range a {
		seen[js.Cohort.Name] = true
	}
	if !seen["halo"] || !seen["cg"] {
		t.Fatalf("cohort draw missing a cohort: %v", seen)
	}
}

func mean(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// FuzzParseWorkload: the parser must never panic, and any workload it
// accepts must satisfy the documented invariants (cohorts fit the
// machine, phases sorted, blasts sorted and link-fault-free, known
// skeletons, positive weights) and generate deterministically.
func FuzzParseWorkload(f *testing.F) {
	f.Add("cohort=halo:16:1")
	f.Add("seed=9,nodes=64,alloc=xt,sched=fcfs,jobs=4,cohort=cg:8:1:10s:5:cancel")
	f.Add("phase=0s:1s,phase=10s:100ms,cohort=fft:32:2:30s:12:restart,blast=5s/*/1/1/1/0.5")
	f.Add("cohort=halo:16:1,blast=1s/0/1/1/1/1/links")
	f.Add("nodes=0,cohort=halo:1:1")
	f.Add(",,,")
	f.Fuzz(func(t *testing.T, s string) {
		w, err := Parse(s)
		if err != nil {
			return
		}
		if len(w.Cohorts) == 0 {
			t.Fatalf("accepted workload with no cohorts: %q", s)
		}
		for _, c := range w.Cohorts {
			if c.Nodes <= 0 || c.Nodes > w.Nodes || c.Weight <= 0 || c.Iters <= 0 || c.Est <= 0 {
				t.Fatalf("accepted invalid cohort %+v from %q", c, s)
			}
			if _, ok := skeletons[c.Name]; !ok {
				t.Fatalf("accepted unknown skeleton %q from %q", c.Name, s)
			}
		}
		for i := 1; i < len(w.Phases); i++ {
			if w.Phases[i].Start < w.Phases[i-1].Start {
				t.Fatalf("phases unsorted from %q", s)
			}
		}
		for i, b := range w.Blasts {
			if b.FailLinks {
				t.Fatalf("accepted /links blast from %q", s)
			}
			if i > 0 && b.At < w.Blasts[i-1].At {
				t.Fatalf("blasts unsorted from %q", s)
			}
		}
		if w.NumJobs > 64 {
			return // keep the fuzz cheap
		}
		a, b := w.Generate(), w.Generate()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("nondeterministic generation from %q", s)
			}
		}
	})
}
