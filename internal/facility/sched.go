package facility

import (
	"math"
	"sort"

	"bgpsim/internal/alloc"
	"bgpsim/internal/sim"
)

// Queued is one job waiting for nodes.
type Queued struct {
	Spec JobSpec
	Enq  sim.Time // when the job (re)entered the queue
}

// Running describes an in-flight job to the scheduler: its node count
// and its *estimated* end (start + user estimate). EASY reservations
// are computed from estimates, exactly like a real batch system — the
// facility knows the true simulated end, the scheduler must not.
type Running struct {
	ID     int
	Nodes  int
	EstEnd sim.Time
}

// Decision records one placement for the invariant tests: when a job
// started, whether it backfilled past the queue head, and the head's
// reservation (shadow time and spare-node budget) that the backfill was
// checked against.
type Decision struct {
	JobID    int
	At       sim.Time
	Backfill bool
	Shadow   sim.Time // head's reserved start (backfill decisions only)
	Extra    int      // spare nodes at shadow after the head's claim
}

// neverTime marks "no reservation computable" (the head can never run
// on what remains of the machine; everything may backfill).
const neverTime = sim.Time(math.MaxInt64)

// Scheduler is a batch queue over an allocator: FCFS starts jobs
// strictly in queue order and head-of-line blocks; EASY backfilling
// also starts later jobs when doing so cannot delay the head's
// count-based reservation (the classic EASY rule: a backfill must
// either finish by the head's shadow time or fit in the nodes left
// over at it).
type Scheduler struct {
	Policy    string // "fcfs" or "easy"
	Decisions []Decision

	queue []*Queued
}

// Push appends a job to the queue tail.
func (s *Scheduler) Push(q *Queued) { s.queue = append(s.queue, q) }

// QueueLen reports how many jobs wait.
func (s *Scheduler) QueueLen() int { return len(s.queue) }

// Head returns the queue head (nil when empty).
func (s *Scheduler) Head() *Queued {
	if len(s.queue) == 0 {
		return nil
	}
	return s.queue[0]
}

// DropHead removes and returns the queue head (nil when empty) — the
// facility's way of abandoning a job that can never be placed again
// (the machine shrank below its size).
func (s *Scheduler) DropHead() *Queued {
	if len(s.queue) == 0 {
		return nil
	}
	q := s.queue[0]
	s.queue = s.queue[1:]
	return q
}

// Schedule starts every job the policy allows at time now, calling
// start for each (in decision order) with its fresh allocation.
// running must describe every in-flight job.
func (s *Scheduler) Schedule(now sim.Time, a alloc.Allocator, running []Running, start func(q *Queued, aj *alloc.Job)) {
	// Jobs start in queue order while the head fits. Allocation is the
	// fit test: on a BG machine a count that fits may still have no
	// free prism — exactly the spatial fragmentation the paper
	// describes.
	for len(s.queue) > 0 {
		head := s.queue[0]
		aj, err := a.Alloc(head.Spec.Cohort.Nodes)
		if err != nil {
			break
		}
		s.queue = s.queue[1:]
		s.Decisions = append(s.Decisions, Decision{JobID: head.Spec.ID, At: now})
		running = append(running, Running{ID: head.Spec.ID, Nodes: head.Spec.Cohort.Nodes, EstEnd: now.Add(head.Spec.Cohort.Est)})
		start(head, aj)
	}
	if s.Policy != "easy" || len(s.queue) <= 1 {
		return
	}

	// EASY: reserve the head's start from the running jobs' estimated
	// ends (count-based shadow), then let later jobs jump the queue if
	// they cannot push that reservation back.
	head := s.queue[0]
	shadow, extra := reservation(a.FreeNodes(), head.Spec.Cohort.Nodes, running)
	for i := 1; i < len(s.queue); i++ {
		q := s.queue[i]
		fitsWindow := now.Add(q.Spec.Cohort.Est) <= shadow
		fitsExtra := q.Spec.Cohort.Nodes <= extra
		if !fitsWindow && !fitsExtra {
			continue
		}
		aj, err := a.Alloc(q.Spec.Cohort.Nodes)
		if err != nil {
			continue
		}
		if !fitsWindow {
			// The backfill outlives the shadow: it consumes the spare
			// budget the head does not need.
			extra -= q.Spec.Cohort.Nodes
		}
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		i--
		s.Decisions = append(s.Decisions, Decision{JobID: q.Spec.ID, At: now, Backfill: true, Shadow: shadow, Extra: extra})
		running = append(running, Running{ID: q.Spec.ID, Nodes: q.Spec.Cohort.Nodes, EstEnd: now.Add(q.Spec.Cohort.Est)})
		start(q, aj)
	}
}

// reservation computes the head's count-based shadow time: walking the
// running jobs by estimated end, the first moment enough nodes have
// been returned to hold the head. extra is what remains free at that
// moment once the head has claimed its share. When even draining every
// running job cannot free enough nodes, there is no reservation
// (neverTime, unbounded extra): the head waits on something other than
// the schedule and backfilling cannot delay it.
func reservation(freeNow, need int, running []Running) (shadow sim.Time, extra int) {
	if freeNow >= need {
		// The head fit by count but not by shape (BG prism
		// fragmentation): its reservation is "now", so only
		// extra-node backfills are safe.
		return 0, freeNow - need
	}
	sorted := append([]Running(nil), running...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].EstEnd != sorted[j].EstEnd {
			return sorted[i].EstEnd < sorted[j].EstEnd
		}
		return sorted[i].ID < sorted[j].ID
	})
	avail := freeNow
	for _, r := range sorted {
		avail += r.Nodes
		if avail >= need {
			return r.EstEnd, avail - need
		}
	}
	return neverTime, int(^uint(0) >> 1)
}
