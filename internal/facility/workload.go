// Package facility simulates a shared machine running a queued mix of
// jobs — the layer the paper's §II.A.3 allocation contrast actually
// lives at. A seeded workload generator produces job arrivals (temporal
// phases, weighted cohorts of app skeletons), a batch scheduler (FCFS
// or EASY backfill) places them through internal/alloc on a machine
// torus, and every job runs as a real partition-scoped mpi simulation.
// Correlated failures (fault.InjectBlast) strike the *machine*, so one
// rack-level blast kills nodes across several concurrent jobs, each of
// which then fails, degrades, or restarts according to its own fault
// policy. The whole facility run is deterministic: byte-identical
// output at any runner worker count and any per-job shard count.
package facility

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"bgpsim/internal/fault"
	"bgpsim/internal/machine"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

// Job fault policies: what happens to a job whose nodes die mid-run.
const (
	// PolicyFailStop aborts the job at the kill (typed *mpi.RankFailure)
	// and requeues it to restart from scratch.
	PolicyFailStop = "failstop"
	// PolicyCancel runs the job under transparent recovery with
	// sender-based logging: dead ranks drop out, orphaned traffic is
	// cancelled, and the job completes degraded (Result.Lost/PeerLost).
	PolicyCancel = "cancel"
	// PolicyRestart adds user-level restart (restart=ckpt): killed
	// ranks roll back to their checkpoints and replay, and the job
	// completes whole, just later.
	PolicyRestart = "restart"
)

// Cohort is one class of jobs in the mix.
type Cohort struct {
	Name   string       // app skeleton: "halo", "cg", or "fft"
	Nodes  int          // nodes per job
	Weight float64      // relative draw weight
	Est    sim.Duration // user-supplied runtime estimate (EASY reservations)
	Iters  int          // skeleton iteration count
	Policy string       // fault policy (Policy* constants)
}

// Phase is one period of the arrival process: from Start onward,
// inter-arrival gaps are exponential with mean Gap (until the next
// phase takes over).
type Phase struct {
	Start sim.Time
	Gap   sim.Duration
}

// Workload is a parsed facility workload description.
type Workload struct {
	Seed    uint64
	MachID  machine.ID
	Machine *machine.Machine
	Nodes   int    // machine size in nodes
	Alloc   string // "bg" (isolated prisms) or "xt" (linear scan)
	Sched   string // "fcfs" or "easy"
	NumJobs int
	Phases  []Phase
	Cohorts []Cohort
	Blasts  []fault.BlastSpec
}

// JobSpec is one generated job: a cohort instance with an arrival time.
type JobSpec struct {
	ID      int
	Cohort  Cohort
	Arrival sim.Time
}

// Parse reads a workload description: comma-separated directives.
//
//	seed=N                       workload seed (default 1)
//	machine=ID                   machine catalog id (default BG/P)
//	nodes=N                      machine size in nodes (default 512)
//	alloc=bg|xt                  placement policy (default bg)
//	sched=fcfs|easy              batch scheduler (default easy)
//	jobs=N                       number of jobs to generate (default 16)
//	phase=START:GAP              arrival phase: from START, exponential
//	                             inter-arrival gaps with mean GAP; later
//	                             phases override earlier ones (default
//	                             one phase 0s:30s)
//	cohort=NAME:NODES:WEIGHT[:EST[:ITERS[:POLICY]]]
//	                             job class: skeleton NAME (halo, cg,
//	                             fft), NODES per job, draw WEIGHT,
//	                             runtime estimate EST (default 60s),
//	                             ITERS iterations (default 20), fault
//	                             POLICY (failstop, cancel, restart;
//	                             default failstop)
//	blast=TIME/ORIGIN/PC/PM/PR/D machine-level correlated failure
//	                             (fault blast grammar; "/links" is
//	                             rejected — per-job partitions reroute
//	                             no machine links)
//
// Times and durations take the fault-spec unit suffixes (ps..s).
func Parse(s string) (*Workload, error) {
	w := &Workload{
		Seed:    1,
		MachID:  machine.BGP,
		Nodes:   512,
		Alloc:   "bg",
		Sched:   "easy",
		NumJobs: 16,
	}
	for _, dir := range strings.Split(s, ",") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		key, val, hasVal := strings.Cut(dir, "=")
		if !hasVal {
			return nil, fmt.Errorf("facility: directive %q wants key=value", dir)
		}
		var err error
		switch key {
		case "seed":
			if w.Seed, err = strconv.ParseUint(val, 10, 64); err != nil {
				return nil, fmt.Errorf("facility: bad seed in %q: %v", dir, err)
			}
		case "machine":
			w.MachID = machine.ID(val)
		case "nodes":
			if w.Nodes, err = strconv.Atoi(val); err != nil || w.Nodes <= 0 {
				return nil, fmt.Errorf("facility: bad node count in %q", dir)
			}
		case "alloc":
			if val != "bg" && val != "xt" {
				return nil, fmt.Errorf("facility: alloc wants bg or xt, got %q", dir)
			}
			w.Alloc = val
		case "sched":
			if val != "fcfs" && val != "easy" {
				return nil, fmt.Errorf("facility: sched wants fcfs or easy, got %q", dir)
			}
			w.Sched = val
		case "jobs":
			if w.NumJobs, err = strconv.Atoi(val); err != nil || w.NumJobs < 0 {
				return nil, fmt.Errorf("facility: bad job count in %q", dir)
			}
		case "phase":
			p, err := parsePhase(val)
			if err != nil {
				return nil, fmt.Errorf("facility: %v in %q", err, dir)
			}
			w.Phases = append(w.Phases, p)
		case "cohort":
			c, err := parseCohort(val)
			if err != nil {
				return nil, fmt.Errorf("facility: %v in %q", err, dir)
			}
			w.Cohorts = append(w.Cohorts, c)
		case "blast":
			b, err := fault.ParseBlastSpec(val)
			if err != nil {
				return nil, fmt.Errorf("facility: %v in %q", err, dir)
			}
			if b.FailLinks {
				return nil, fmt.Errorf("facility: blast /links is not supported at facility scale (jobs never route over dead machine links) in %q", dir)
			}
			w.Blasts = append(w.Blasts, b)
		default:
			return nil, fmt.Errorf("facility: unknown directive %q", dir)
		}
	}
	var err error
	if w.Machine, err = machine.Lookup(w.MachID); err != nil {
		return nil, fmt.Errorf("facility: %v", err)
	}
	if len(w.Phases) == 0 {
		w.Phases = []Phase{{Start: 0, Gap: 30 * sim.Second}}
	}
	sort.SliceStable(w.Phases, func(i, j int) bool { return w.Phases[i].Start < w.Phases[j].Start })
	if len(w.Cohorts) == 0 {
		return nil, fmt.Errorf("facility: workload needs at least one cohort")
	}
	for _, c := range w.Cohorts {
		if c.Nodes > w.Nodes {
			return nil, fmt.Errorf("facility: cohort %q wants %d nodes on a %d-node machine", c.Name, c.Nodes, w.Nodes)
		}
	}
	sort.SliceStable(w.Blasts, func(i, j int) bool { return w.Blasts[i].At < w.Blasts[j].At })
	return w, nil
}

func parsePhase(s string) (Phase, error) {
	startS, gapS, ok := strings.Cut(s, ":")
	if !ok {
		return Phase{}, fmt.Errorf("phase wants START:GAP")
	}
	start, err := fault.ParseDuration(startS)
	if err != nil {
		return Phase{}, err
	}
	gap, err := fault.ParseDuration(gapS)
	if err != nil {
		return Phase{}, err
	}
	if gap <= 0 {
		return Phase{}, fmt.Errorf("phase gap must be positive")
	}
	return Phase{Start: sim.Time(start), Gap: gap}, nil
}

func parseCohort(s string) (Cohort, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 3 || len(parts) > 6 {
		return Cohort{}, fmt.Errorf("cohort wants NAME:NODES:WEIGHT[:EST[:ITERS[:POLICY]]]")
	}
	c := Cohort{Name: parts[0], Est: 60 * sim.Second, Iters: 20, Policy: PolicyFailStop}
	if _, ok := skeletons[c.Name]; !ok {
		return Cohort{}, fmt.Errorf("unknown skeleton %q (valid: %s)", c.Name, strings.Join(skeletonNames(), ", "))
	}
	var err error
	if c.Nodes, err = strconv.Atoi(parts[1]); err != nil || c.Nodes <= 0 {
		return Cohort{}, fmt.Errorf("bad cohort node count %q", parts[1])
	}
	if c.Weight, err = strconv.ParseFloat(parts[2], 64); err != nil || c.Weight <= 0 {
		return Cohort{}, fmt.Errorf("bad cohort weight %q", parts[2])
	}
	if len(parts) > 3 {
		d, err := fault.ParseDuration(parts[3])
		if err != nil || d <= 0 {
			return Cohort{}, fmt.Errorf("bad cohort estimate %q", parts[3])
		}
		c.Est = d
	}
	if len(parts) > 4 {
		if c.Iters, err = strconv.Atoi(parts[4]); err != nil || c.Iters <= 0 {
			return Cohort{}, fmt.Errorf("bad cohort iterations %q", parts[4])
		}
	}
	if len(parts) > 5 {
		switch parts[5] {
		case PolicyFailStop, PolicyCancel, PolicyRestart:
			c.Policy = parts[5]
		default:
			return Cohort{}, fmt.Errorf("unknown policy %q (valid: failstop, cancel, restart)", parts[5])
		}
	}
	return c, nil
}

// Torus returns the machine torus the workload runs on.
func (w *Workload) Torus() *topology.Torus {
	return topology.NewTorus(topology.DimsForNodes(w.Nodes))
}

// Generate draws the workload's job list: arrival times from the
// phased exponential process, cohorts by weighted draw. The list is a
// pure function of the workload (seeded), ordered by arrival time.
func (w *Workload) Generate() []JobSpec {
	rng := sim.NewRNG(w.Seed)
	var total float64
	for _, c := range w.Cohorts {
		total += c.Weight
	}
	jobs := make([]JobSpec, 0, w.NumJobs)
	t := w.Phases[0].Start
	for i := 0; i < w.NumJobs; i++ {
		// The governing phase is the last one that has started.
		gap := w.Phases[0].Gap
		for _, p := range w.Phases {
			if p.Start <= t {
				gap = p.Gap
			}
		}
		t = t.Add(sim.Seconds(rng.ExpFloat64() * gap.Seconds()))
		pick := rng.Float64() * total
		c := w.Cohorts[len(w.Cohorts)-1]
		for _, cand := range w.Cohorts {
			if pick < cand.Weight {
				c = cand
				break
			}
			pick -= cand.Weight
		}
		jobs = append(jobs, JobSpec{ID: i + 1, Cohort: c, Arrival: t})
	}
	return jobs
}

// faultSpec returns the fault-spec mode directives for a policy
// ("" for fail-stop: a bare plan with kills only).
func policyModes(policy string) string {
	switch policy {
	case PolicyCancel:
		return "recover,log=sender"
	case PolicyRestart:
		return "recover,log=sender,restart=ckpt"
	}
	return ""
}
