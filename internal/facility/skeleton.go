package facility

import (
	"sort"

	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/sim"
)

// skeletons maps cohort names to app-skeleton program builders. Each
// skeleton is a compact stand-in for one communication pattern the
// paper measures: "halo" is a nearest-neighbour ring exchange (HALO /
// stencil apps), "cg" is a compute + small-allreduce solver loop
// (CG-style), and "fft" is a transpose-dominated alltoall loop
// (FFT / PTRANS). All skeletons commit a checkpoint every eight
// iterations so the restart=ckpt policy has rollback points.
var skeletons = map[string]func(c Cohort) func(*mpi.Rank){
	"halo": func(c Cohort) func(*mpi.Rank) {
		return func(r *mpi.Rank) {
			right := (r.ID() + 1) % r.Size()
			left := (r.ID() - 1 + r.Size()) % r.Size()
			// Peer loss is handled, not fatal: under the cancel policy a
			// dead neighbour turns the ring into a chain (the survivor
			// treats the break as a domain boundary) instead of
			// cascading the stall around the ring. Under fail-stop and
			// restart=ckpt RecvErr never returns an error, so the same
			// program serves all three policies.
			haveLeft := true
			for k := 0; k < c.Iters; k++ {
				r.Compute(8e6, 8e6, machine.ClassStencil)
				q := r.Isend(right, 32<<10, k)
				if haveLeft {
					if _, err := r.RecvErr(left, k); err != nil {
						haveLeft = false
					}
				}
				r.WaitErr(q) // orphaned sends complete silently

				if k%8 == 7 {
					r.CommitCheckpoint(4 << 20)
				}
			}
		}
	},
	"cg": func(c Cohort) func(*mpi.Rank) {
		return func(r *mpi.Rank) {
			for k := 0; k < c.Iters; k++ {
				r.Compute(1.5e7, 1.5e7, machine.ClassStream)
				r.World().Allreduce(r, 8, true)
				if k%8 == 7 {
					r.CommitCheckpoint(2 << 20)
				}
			}
		}
	},
	"fft": func(c Cohort) func(*mpi.Rank) {
		return func(r *mpi.Rank) {
			for k := 0; k < c.Iters; k++ {
				r.Compute(4e6, 4e6, machine.ClassFFT)
				r.World().Alltoall(r, 2<<10)
				if k%8 == 7 {
					r.CommitCheckpoint(2 << 20)
				}
			}
		}
	},
}

func skeletonNames() []string {
	names := make([]string, 0, len(skeletons))
	for n := range skeletons {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// nodeKill is one dead node of a running job, in partition-local
// coordinates at job-relative time.
type nodeKill struct {
	local int
	at    sim.Time
}
