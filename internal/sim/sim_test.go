package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		d    Duration
		secs float64
	}{
		{Second, 1},
		{Millisecond, 1e-3},
		{Microsecond, 1e-6},
		{Nanosecond, 1e-9},
		{Picosecond, 1e-12},
		{0, 0},
	}
	for _, c := range cases {
		if got := c.d.Seconds(); got != c.secs {
			t.Errorf("%v.Seconds() = %g, want %g", c.d, got, c.secs)
		}
		if got := Seconds(c.secs); got != c.d {
			t.Errorf("Seconds(%g) = %v, want %v", c.secs, got, c.d)
		}
	}
}

func TestSecondsSaturates(t *testing.T) {
	if got := Seconds(1e100); got != MaxDuration {
		t.Errorf("Seconds(1e100) = %v, want MaxDuration", got)
	}
}

func TestMicrosecondsNanoseconds(t *testing.T) {
	if got := Microseconds(2.5); got != 2500*Nanosecond {
		t.Errorf("Microseconds(2.5) = %v, want 2500ns", got)
	}
	if got := Nanoseconds(3); got != 3*Nanosecond {
		t.Errorf("Nanoseconds(3) = %v, want 3ns", got)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{2 * Second, "2s"},
		{3 * Millisecond, "3ms"},
		{4 * Microsecond, "4us"},
		{5 * Nanosecond, "5ns"},
		{7 * Picosecond, "7ps"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeAddSub(t *testing.T) {
	a := Time(0).Add(5 * Second)
	b := a.Add(3 * Microsecond)
	if d := b.Sub(a); d != 3*Microsecond {
		t.Errorf("Sub = %v, want 3us", d)
	}
}

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(Time(20), func() { order = append(order, 2) })
	k.At(Time(10), func() { order = append(order, 1) })
	k.At(Time(30), func() { order = append(order, 3) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if k.Now() != Time(30) {
		t.Errorf("final time = %v, want 30ps", k.Now())
	}
}

func TestSameTimestampFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(Time(5), func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("FIFO violated: order = %v", order)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(Time(100), func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		k.At(Time(50), func() {})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcSleep(t *testing.T) {
	k := NewKernel()
	var end Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		p.Sleep(3 * Microsecond)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != Time(8*Microsecond) {
		t.Errorf("end = %v, want 8us", end)
	}
}

func TestProcZeroSleep(t *testing.T) {
	k := NewKernel()
	ran := false
	k.Spawn("z", func(p *Proc) {
		p.Sleep(0)
		ran = true
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("process did not run")
	}
}

func TestProcInterleaving(t *testing.T) {
	// Two processes sleeping different amounts interleave in time order.
	k := NewKernel()
	var order []string
	k.Spawn("a", func(p *Proc) {
		p.Sleep(10 * Nanosecond)
		order = append(order, "a10")
		p.Sleep(20 * Nanosecond) // wakes at 30
		order = append(order, "a30")
	})
	k.Spawn("b", func(p *Proc) {
		p.Sleep(20 * Nanosecond)
		order = append(order, "b20")
		p.Sleep(20 * Nanosecond) // wakes at 40
		order = append(order, "b40")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a10", "b20", "a30", "b40"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestBlockWake(t *testing.T) {
	k := NewKernel()
	var consumer *Proc
	var got Time
	ready := false
	consumer = k.Spawn("consumer", func(p *Proc) {
		if !ready {
			p.Block("waiting for producer")
		}
		got = p.Now()
	})
	k.Spawn("producer", func(p *Proc) {
		p.Sleep(7 * Microsecond)
		ready = true
		consumer.Wake()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != Time(7*Microsecond) {
		t.Errorf("consumer resumed at %v, want 7us", got)
	}
}

func TestWakeAt(t *testing.T) {
	k := NewKernel()
	var p1 *Proc
	var got Time
	p1 = k.Spawn("w", func(p *Proc) {
		p.Block("future wake")
		got = p.Now()
	})
	k.Spawn("waker", func(p *Proc) {
		p1.WakeAt(Time(42 * Nanosecond))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != Time(42*Nanosecond) {
		t.Errorf("resumed at %v, want 42ns", got)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel()
	k.Spawn("stuck", func(p *Proc) {
		p.Block("recv with no sender")
	})
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked = %v, want 1 entry", de.Blocked)
	}
	want := BlockedProc{Name: "stuck", Reason: "recv with no sender", Since: 0}
	if de.Blocked[0] != want {
		t.Errorf("blocked[0] = %+v, want %+v", de.Blocked[0], want)
	}
}

func TestEventLimit(t *testing.T) {
	k := NewKernel()
	k.EventLimit = 100
	var tick func()
	tick = func() { k.After(Nanosecond, tick) }
	k.After(Nanosecond, tick)
	if err := k.Run(); err == nil {
		t.Fatal("expected event limit error")
	}
}

func TestRunTwiceFails(t *testing.T) {
	k := NewKernel()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err == nil {
		t.Error("second Run should fail")
	}
}

func TestManyProcsDeterminism(t *testing.T) {
	run := func() []int {
		k := NewKernel()
		var order []int
		for i := 0; i < 200; i++ {
			i := i
			k.Spawn("p", func(p *Proc) {
				rng := NewRNG(uint64(i))
				for j := 0; j < 10; j++ {
					p.Sleep(Duration(rng.Intn(1000)+1) * Nanosecond)
				}
				order = append(order, i)
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic completion order at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	k := NewKernel()
	k.Spawn("neg", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on negative sleep")
			}
		}()
		p.Sleep(-1)
	})
	// The panic is recovered inside the proc body, so Run completes.
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(12345), NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(12346)
	same := 0
	for i := 0; i < 1000; i++ {
		if b.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds coincided %d times", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 0.47 || mean > 0.53 {
		t.Errorf("mean = %g, want ~0.5", mean)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced zero stream")
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(7)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential sample %g", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 0.9 || mean > 1.1 {
		t.Errorf("exp mean = %g, want ~1", mean)
	}
}
