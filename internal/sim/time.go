// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances an integer virtual clock (picosecond resolution)
// through a priority queue of events. Logical processes are backed by
// goroutines but execute strictly one at a time under kernel control, so
// model code never needs locks and every run of a given model is
// bit-for-bit reproducible.
package sim

import (
	"fmt"
	"math"
)

// Time is an absolute point in virtual time, in integer picoseconds.
// The zero Time is the start of the simulation. The picosecond
// resolution leaves headroom for sub-nanosecond hardware events (a
// single flit on a 425 MB/s BlueGene torus link lasts a few
// nanoseconds) while still representing over 100 days of virtual time
// in an int64.
type Time int64

// Duration is a span of virtual time in integer picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxDuration is the largest representable Duration.
const MaxDuration Duration = math.MaxInt64

// Seconds converts a floating-point second count to a Duration,
// saturating at MaxDuration for values that would overflow.
func Seconds(s float64) Duration {
	ps := s * 1e12
	if ps >= math.MaxInt64 {
		return MaxDuration
	}
	if ps <= math.MinInt64 {
		return Duration(math.MinInt64)
	}
	return Duration(math.Round(ps))
}

// Microseconds converts a floating-point microsecond count to a Duration.
func Microseconds(us float64) Duration { return Seconds(us * 1e-6) }

// Nanoseconds converts a floating-point nanosecond count to a Duration.
func Nanoseconds(ns float64) Duration { return Seconds(ns * 1e-9) }

// Seconds reports the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e12 }

// Microseconds reports the duration as floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / 1e6 }

// String formats the duration with a unit chosen by magnitude.
func (d Duration) String() string {
	abs := d
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= Second:
		return fmt.Sprintf("%.6gs", d.Seconds())
	case abs >= Millisecond:
		return fmt.Sprintf("%.6gms", float64(d)/float64(Millisecond))
	case abs >= Microsecond:
		return fmt.Sprintf("%.6gus", float64(d)/float64(Microsecond))
	case abs >= Nanosecond:
		return fmt.Sprintf("%.6gns", float64(d)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(d))
	}
}

// Seconds reports the time as floating-point seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / 1e12 }

// Add returns the time advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the time as seconds.
func (t Time) String() string { return fmt.Sprintf("t=%.9fs", t.Seconds()) }
