package sim

import "math"

// RNG is a small deterministic pseudo-random generator (splitmix64
// seeded xorshift64*) used by workload generators. It is independent
// of math/rand so that simulated workloads are reproducible across Go
// releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded from seed via splitmix64, so that
// nearby seeds give uncorrelated streams.
func NewRNG(seed uint64) *RNG {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x853c49e6748fea9b
	}
	return &RNG{state: z}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1,
// computed by inversion for determinism.
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = 1e-300
	}
	return -math.Log(1 - u)
}
