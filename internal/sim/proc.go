package sim

import (
	"fmt"
	"runtime/debug"
)

// Proc is a logical process: a goroutine whose execution is serialized
// by the kernel. Model code inside a process body may freely read and
// mutate shared model state without locks, because the kernel
// guarantees only one process (or event callback) runs at a time, with
// channel handoffs establishing happens-before edges.
type Proc struct {
	k      *Kernel
	id     int
	name   string
	resume chan struct{}

	done          bool
	resumePending bool   // a resume event is scheduled and undelivered
	blocked       string // non-empty while waiting on a condition (diagnostics)
	blockedDetail string // optional reason suffix (BlockWith)
	blockedSince  Time   // when the current Block began (diagnostics)

	tag int // probe identity (rank id); -1 when untagged

	// stampCtr numbers the events this process creates, in program
	// order. On keyed kernels (Kernel.Keyed) the pair (tag, stampCtr)
	// is the canonical same-timestamp ordering key: it depends only on
	// the process's own execution, never on how ranks are sharded.
	stampCtr uint64
}

// NextStamp draws the next canonical-ordering stamp from the process's
// counter — the same counter the kernel uses for the process's own
// resume events, so stamps stay unique per tag. Model code passes it
// to Kernel.AtTagged when it schedules an event on this process's
// behalf from outside the process body.
func (p *Proc) NextStamp() uint64 {
	p.stampCtr++
	return p.stampCtr
}

// SetTag labels the process for probe callbacks; the MPI layer uses
// the rank id. Untagged processes report -1.
func (p *Proc) SetTag(tag int) { p.tag = tag }

// Spawn creates a process executing fn, starting at the current
// virtual time. The name is used in deadlock diagnostics.
//
// A panic inside fn does not crash the program: the wrapper recovers
// it, aborts the kernel with a *PanicError (or, for Fail, the carried
// error itself), and Run returns that error.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.SpawnTagged(name, -1, fn)
}

// SpawnTagged is Spawn with the probe tag set before the start event
// is scheduled. Keyed kernels need the tag at spawn time: the start
// event's canonical key is drawn from the process's own counter, and
// an untagged process would fall back to the kernel-local sequence,
// which is not stable across shard counts.
func (k *Kernel) SpawnTagged(name string, tag int, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, id: len(k.procs), name: name, resume: make(chan struct{}), tag: tag}
	k.procs = append(k.procs, p)
	k.live++
	go func() {
		<-p.resume // wait for the kernel to start us
		defer func() {
			if r := recover(); r != nil {
				if fp, ok := r.(failPanic); ok {
					p.k.Abort(fp.err)
				} else {
					p.k.Abort(&PanicError{Proc: p.name, Value: r, Stack: debug.Stack()})
				}
			}
			p.done = true
			p.k.live--
			p.k.yieldCh <- struct{}{}
		}()
		fn(p)
	}()
	k.atResume(k.now, p)
	return p
}

// Kernel returns the kernel this process runs under.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// yield suspends the process and returns control to the event loop.
// The process resumes when something sends on p.resume (via
// Kernel.runProc from a scheduled event).
func (p *Proc) yield() {
	p.k.yieldCh <- struct{}{}
	<-p.resume
}

// Sleep advances the process's virtual time by d. Negative d panics.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	if d == 0 {
		return
	}
	p.k.atResume(p.k.now.Add(d), p)
	p.yield()
}

// SleepUntil advances the process's virtual time to t, which must not
// be in the past.
func (p *Proc) SleepUntil(t Time) {
	p.Sleep(t.Sub(p.k.now))
}

// Block suspends the process until another process or event callback
// calls Wake. The reason string appears in deadlock reports.
//
// Block and BlockWith MUST stay inlinable (like yield): they sit at
// the deepest point of every rank goroutine's stack, and outlining
// them adds a frame that tips thousands of fresh goroutine stacks
// into growth. That is why the ProcBlock/ProcUnblock probe hooks fire
// from Kernel.runProc — the event loop's side of the same channel
// handoff — instead of here: even one extra call would blow the
// inlining budget, and the kernel observes the identical transitions
// in the identical order for free.
func (p *Proc) Block(reason string) {
	p.blocked = reason
	p.blockedSince = p.k.now
	p.yield()
	p.blocked = ""
}

// BlockWith is Block with the reason in two parts, joined only if a
// deadlock report asks for it: blocking is the innermost step of every
// communication call, and a string concatenation there allocates at
// the deepest point of the stack, growing it on every fresh goroutine.
func (p *Proc) BlockWith(prefix, detail string) {
	p.blocked, p.blockedDetail = prefix, detail
	p.blockedSince = p.k.now
	p.yield()
	p.blocked, p.blockedDetail = "", ""
}

// Blocked reports whether the process is currently suspended in Block
// or BlockWith (as opposed to running, sleeping on a timed resume, or
// finished). Only a blocked process may safely be woken by a third
// party: waking a sleeping process would race its already-scheduled
// timed resume. The fault-recovery layer uses this to decide whether a
// dead rank can be unwound immediately or must unwind at its next
// scheduling point.
func (p *Proc) Blocked() bool { return !p.done && p.blocked != "" }

// Wake schedules the blocked process p to resume at the current
// virtual time. It must be called for a process that is blocked (or
// about to block: a wake scheduled in the same timestamp before the
// block takes effect is delivered after the block, because events are
// FIFO within a timestamp and the blocking process holds control until
// it yields).
func (p *Proc) Wake() {
	p.k.atResume(p.k.now, p)
}

// WakeAt schedules the blocked process p to resume at time t.
func (p *Proc) WakeAt(t Time) {
	p.k.atResume(t, p)
}

func (p *Proc) blockedInfo() BlockedProc {
	r := p.blocked + p.blockedDetail
	if r == "" {
		r = "runnable?"
	}
	return BlockedProc{Name: p.name, Reason: r, Since: p.blockedSince}
}
