package sim_test

// Kernel hot-path benchmarks, run by `make bench` into
// BENCH_kernel.json so the performance trajectory is tracked across
// PRs. BenchmarkKernelChurn includes a container/heap baseline that
// replicates the seed kernel's boxed event queue, so the fast path's
// alloc/op and ns/op advantage stays measurable long after the seed
// implementation is gone.

import (
	"container/heap"
	"fmt"
	"testing"

	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/sim"
)

// boxedEvent/boxedHeap replicate the seed kernel's event queue:
// container/heap over an interface type, one boxing allocation per
// push.
type boxedEvent struct {
	t    sim.Time
	seq  uint64
	fire func()
}

type boxedHeap []boxedEvent

func (h boxedHeap) Len() int { return len(h) }
func (h boxedHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h boxedHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *boxedHeap) Push(x interface{}) { *h = append(*h, x.(boxedEvent)) }
func (h *boxedHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = boxedEvent{}
	*h = old[:n-1]
	return e
}

// churnWidth is the standing event population during queue churn.
const churnWidth = 256

// BenchmarkKernelChurn measures schedule/fire throughput: a standing
// population of events where every fired event schedules a successor
// at a pseudo-random future offset. The fastpath case drives the real
// kernel; the containerheap case drives the seed queue replica with an
// identical workload.
func BenchmarkKernelChurn(b *testing.B) {
	b.Run("fastpath", func(b *testing.B) {
		b.ReportAllocs()
		k := sim.NewKernel()
		rng := sim.NewRNG(1)
		remaining := b.N
		var tick func()
		tick = func() {
			if remaining <= 0 {
				return
			}
			remaining--
			k.After(sim.Duration(rng.Intn(1000)+1)*sim.Nanosecond, tick)
		}
		for i := 0; i < churnWidth && i < b.N; i++ {
			remaining--
			k.After(sim.Duration(rng.Intn(1000)+1)*sim.Nanosecond, tick)
		}
		b.ResetTimer()
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("containerheap", func(b *testing.B) {
		b.ReportAllocs()
		var h boxedHeap
		var now sim.Time
		var seq uint64
		rng := sim.NewRNG(1)
		remaining := b.N
		var tick func()
		push := func() {
			seq++
			heap.Push(&h, boxedEvent{
				t:    now.Add(sim.Duration(rng.Intn(1000)+1) * sim.Nanosecond),
				seq:  seq,
				fire: tick,
			})
		}
		tick = func() {
			if remaining <= 0 {
				return
			}
			remaining--
			push()
		}
		for i := 0; i < churnWidth && i < b.N; i++ {
			remaining--
			push()
		}
		b.ResetTimer()
		for h.Len() > 0 {
			e := heap.Pop(&h).(boxedEvent)
			now = e.t
			e.fire()
		}
	})
}

// BenchmarkKernelPingPong measures the Spawn/Block/Wake resume path:
// two processes waking each other at the same timestamp, the pattern
// behind every eager-message handoff. Each iteration is one
// wake+block round trip per side.
func BenchmarkKernelPingPong(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	n := b.N
	var ping, pong *sim.Proc
	ping = k.Spawn("ping", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			pong.Wake()
			p.Block("await pong")
		}
	})
	pong = k.Spawn("pong", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Block("await ping")
			ping.Wake()
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernelSleepFanout measures timed resumes through the heap:
// many processes sleeping pseudo-random durations, the pattern behind
// link-latency and compute-block modelling.
func BenchmarkKernelSleepFanout(b *testing.B) {
	b.ReportAllocs()
	const procs = 64
	k := sim.NewKernel()
	per := b.N/procs + 1
	for i := 0; i < procs; i++ {
		i := i
		k.Spawn("sleeper", func(p *sim.Proc) {
			rng := sim.NewRNG(uint64(i + 1))
			for j := 0; j < per; j++ {
				p.Sleep(sim.Duration(rng.Intn(1000)+1) * sim.Nanosecond)
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernelAllreduce512 is the end-to-end hot path: a 512-rank
// double-precision allreduce on BG/P (128 VN nodes), the collective
// the paper's Figure 3 sweeps. Allocations here cover the whole
// simulator stack, not just the queue.
func BenchmarkKernelAllreduce512(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := mpi.Execute(mpi.Config{Machine: machine.Get(machine.BGP), Nodes: 128, Mode: machine.VN},
			func(r *mpi.Rank) { r.World().Allreduce(r, 8, true) })
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkKernelSharded measures the conservative-PDES kernel on a
// 4096-rank HALO step (64x64 virtual grid, 1024 BG/P VN nodes, analytic
// fidelity) at 1/2/4/8 shards. The shards=1 case is the sharded
// coordinator with a single domain — its gap to Allreduce512-style
// serial runs is the protocol overhead, and the higher counts show the
// scaling headroom (bounded above by the host's core count; see
// docs/PERFORMANCE.md).
func BenchmarkKernelSharded(b *testing.B) {
	const gx, gy = 64, 64 // 4096 ranks
	prog := func(r *mpi.Rank) {
		me := r.ID()
		x, y := me%gx, me/gx
		wrap := func(v, m int) int { return ((v % m) + m) % m }
		at := func(x, y int) int { return wrap(y, gy)*gx + wrap(x, gx) }
		r.Sendrecv(at(x, y-1), 4096, 1, at(x, y+1), 1)
		r.Sendrecv(at(x-1, y), 4096, 2, at(x+1, y), 2)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			var elapsed sim.Duration
			for i := 0; i < b.N; i++ {
				res, err := mpi.Execute(mpi.Config{
					Machine: machine.Get(machine.BGP), Nodes: 1024, Mode: machine.VN,
					Fidelity: network.Analytic, Shards: shards,
				}, prog)
				if err != nil {
					b.Fatal(err)
				}
				if res.Shards != shards {
					b.Fatalf("ran on %d shards, want %d", res.Shards, shards)
				}
				if elapsed == 0 {
					elapsed = res.Elapsed
				} else if elapsed != res.Elapsed {
					b.Fatalf("nondeterministic elapsed: %d then %d", elapsed, res.Elapsed)
				}
				events += res.Events
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkKernelBcast512 exercises the software collective path: a
// 512-rank 4KB binomial broadcast on the XT4/QC torus (no collective
// hardware), covering the per-round keyed send/recv machinery the
// algorithm registry dispatches into.
func BenchmarkKernelBcast512(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := mpi.Execute(mpi.Config{Machine: machine.Get(machine.XT4QC), Nodes: 128, Mode: machine.VN},
			func(r *mpi.Rank) { r.World().Bcast(r, 0, 4096) })
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}
