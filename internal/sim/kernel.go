package sim

import (
	"fmt"
	"sort"
	"strings"
)

// event is a scheduled callback. Events with equal timestamps fire in
// the order they were scheduled (FIFO via seq), which makes runs
// deterministic.
//
// Exactly one of proc and fn is set. Process resumes (Sleep, Wake,
// Spawn) are the hottest scheduling path, so they store the process
// pointer directly instead of capturing it in a closure: that saves
// one heap allocation per event.
type event struct {
	t    Time
	seq  uint64
	proc *Proc
	fn   func()
}

// less orders events by (timestamp, schedule order).
func (e *event) less(o *event) bool {
	if e.t != o.t {
		return e.t < o.t
	}
	return e.seq < o.seq
}

// eventQueue is a 4-ary min-heap over a concrete event slice. Relative
// to container/heap over an interface type it avoids boxing on push,
// type assertions on pop, and the indirect Less/Swap calls; the wider
// fan-out halves the tree depth, trading a few extra comparisons per
// sift-down for far fewer swaps on the mostly-sorted queues a
// simulation produces.
type eventQueue []event

func (q *eventQueue) push(e event) {
	h := append(*q, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !h[i].less(&h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	*q = h
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // drop fn/proc references so the GC can reclaim them
	h = h[:n]
	*q = h
	i := 0
	for {
		min := i
		c := i*4 + 1
		end := c + 4
		if end > n {
			end = n
		}
		for ; c < end; c++ {
			if h[c].less(&h[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// Kernel is a discrete-event simulation engine. A Kernel is not safe
// for concurrent use; all interaction must happen from the goroutine
// that calls Run or from process bodies (which the kernel serializes).
// Distinct Kernels share no state, so independent simulations may run
// concurrently on separate goroutines (see internal/runner).
type Kernel struct {
	now   Time
	seq   uint64
	fired uint64

	events eventQueue

	// runq is the same-timestamp fast path: events scheduled at the
	// current time (Wake, Sleep(0)-style resumes, Spawn) are appended
	// here in FIFO order instead of paying a heap push and pop. Because
	// events cannot be scheduled in the past and the run loop always
	// fires the globally minimal (t, seq), every pending runq entry has
	// t == now and seq above any same-time heap entry, so a plain
	// head-indexed slice preserves the exact seed ordering.
	runq     []event
	runqHead int

	// yieldCh is signaled by the currently running process when it
	// stops running (blocks or terminates), handing control back to
	// the event loop. Exactly one process runs at any instant.
	yieldCh chan struct{}

	procs    []*Proc
	live     int // spawned processes that have not finished
	stopped  bool
	abortErr error // set by Abort; Run returns it after the current event

	// EventLimit, when nonzero, aborts Run with an error after this
	// many events have fired. It is a safety net against model bugs
	// that schedule unboundedly.
	EventLimit uint64

	// Probe, when non-nil, observes process block/unblock transitions.
	// It must be set before Run. A nil Probe costs one pointer compare
	// per process switch, all paid inside the event loop's own frame;
	// probe callbacks must not schedule events or otherwise advance
	// virtual time.
	Probe Probe
}

// Probe observes process scheduling. Higher layers (the obs package)
// implement a superset of this interface; the kernel only needs the
// block edges. The tag identifies the logical owner of the process —
// the MPI layer sets it to the rank id — and is -1 for untagged
// processes.
type Probe interface {
	ProcBlock(tag int, reason, detail string, t Time)
	ProcUnblock(tag int, t Time)
}

// initialQueueCap pre-sizes the heap and run queue so steady-state
// scheduling in small and mid-size models never grows the backing
// arrays.
const initialQueueCap = 256

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{
		yieldCh: make(chan struct{}),
		events:  make(eventQueue, 0, initialQueueCap),
		runq:    make([]event, 0, initialQueueCap),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Events returns the number of events fired so far. (After a normal
// Run every scheduled event has fired, so this also equals the number
// scheduled; mid-run or after an EventLimit abort the two differ.)
func (k *Kernel) Events() uint64 { return k.fired }

// schedule enqueues an event at absolute time t carrying either a
// process resume or a callback. Scheduling in the past panics: it
// would break causality.
func (k *Kernel) schedule(t Time, p *Proc, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	e := event{t: t, seq: k.seq, proc: p, fn: fn}
	if t == k.now {
		k.runq = append(k.runq, e)
		return
	}
	k.events.push(e)
}

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it would break causality.
func (k *Kernel) At(t Time, fn func()) { k.schedule(t, nil, fn) }

// After schedules fn to run d from now. Negative d panics.
func (k *Kernel) After(d Duration, fn func()) { k.At(k.now.Add(d), fn) }

// atResume schedules process p to resume at time t without allocating
// a closure. A *blocked* process has at most one undelivered resume:
// the first scheduled wins and later calls are ignored until it is
// delivered. Every legitimate wait has exactly one waker, so the guard
// never changes a healthy run; it exists for the fault-recovery layer,
// where a node death may try to wake a rank whose gate release (or
// message completion) is already in flight — a second resume event
// would spuriously release the rank's next wait. A resume for a
// process that is not blocked is always queued: a wake may
// legitimately race the target's own Block — or even its Spawn — in
// the same timestamp, and must be delivered once the target blocks.
func (k *Kernel) atResume(t Time, p *Proc) {
	if p.resumePending && p.blocked != "" {
		return
	}
	p.resumePending = true
	k.schedule(t, p, nil)
}

// BlockedProc describes one blocked process of a deadlock report.
type BlockedProc struct {
	Name   string // process name given at Spawn
	Reason string // what the process is waiting on
	Since  Time   // when it blocked (when the stall began)
}

// String formats the process as "name (reason, blocked since t)".
func (b BlockedProc) String() string {
	return fmt.Sprintf("%s (%s, blocked since %v)", b.Name, b.Reason, b.Since)
}

// DeadlockError reports that the event queue drained while processes
// were still blocked — the simulated program can make no further
// progress (for example, an MPI receive with no matching send). Time
// is when the last event fired; each blocked process carries the
// timestamp at which it stalled, so the report distinguishes the
// process that has been stuck since the start from the one that
// blocked on the final event.
type DeadlockError struct {
	Time    Time // when the last event fired (the queue-drain time)
	Blocked []BlockedProc
}

func (e *DeadlockError) Error() string {
	descs := make([]string, len(e.Blocked))
	for i, b := range e.Blocked {
		descs[i] = b.String()
	}
	return fmt.Sprintf("sim: deadlock: last event at %v, %d process(es) blocked: %s",
		e.Time, len(e.Blocked), strings.Join(descs, "; "))
}

// PanicError reports a process body that panicked. The kernel recovers
// the panic, aborts the run, and returns this from Run instead of
// crashing the whole program — one sick simulation in a concurrent
// sweep must not take down its siblings.
type PanicError struct {
	Proc  string // name of the panicking process
	Value any    // the recovered panic value
	Stack []byte // goroutine stack at the panic site
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v\n%s", e.Proc, e.Value, e.Stack)
}

// failPanic carries a model error out of a process body to the spawn
// wrapper, which aborts the kernel with exactly that error (no
// PanicError wrapping, no stack dump).
type failPanic struct{ err error }

// Fail aborts the simulation with err from within a process body: the
// process unwinds, the kernel stops after the current event, and Run
// returns err. It is how model layers surface typed simulation errors
// (a failed rank, a partitioned torus) from code whose programming
// model has no error returns.
func Fail(err error) { panic(failPanic{err}) }

// Abort makes Run return err after the currently firing event
// completes. The first abort wins; a nil err is ignored. Safe to call
// from event callbacks and process bodies.
func (k *Kernel) Abort(err error) {
	if k.abortErr == nil && err != nil {
		k.abortErr = err
	}
}

// Live returns the number of spawned processes that have not finished.
func (k *Kernel) Live() int { return k.live }

// next dequeues the globally minimal pending event, preferring the
// run-queue head when it wins the (t, seq) comparison against the heap
// top. The second result is false when both queues are empty.
func (k *Kernel) next() (event, bool) {
	if k.runqHead < len(k.runq) {
		head := &k.runq[k.runqHead]
		if len(k.events) > 0 && k.events[0].less(head) {
			return k.events.pop(), true
		}
		e := *head
		*head = event{}
		k.runqHead++
		if k.runqHead == len(k.runq) {
			k.runq = k.runq[:0]
			k.runqHead = 0
		}
		return e, true
	}
	if len(k.events) > 0 {
		return k.events.pop(), true
	}
	return event{}, false
}

// Run fires events in timestamp order until the queue drains. It
// returns nil when every spawned process has finished, and a
// *DeadlockError when the queue drains with processes still blocked.
// The goroutines of deadlocked processes are abandoned.
func (k *Kernel) Run() error {
	if k.stopped {
		return fmt.Errorf("sim: kernel already ran")
	}
	for {
		e, ok := k.next()
		if !ok {
			break
		}
		k.now = e.t
		if e.proc != nil {
			k.runProc(e.proc)
		} else {
			e.fn()
		}
		k.fired++
		if k.abortErr != nil {
			k.stopped = true
			return k.abortErr
		}
		if k.EventLimit > 0 && k.fired > k.EventLimit {
			k.stopped = true
			return fmt.Errorf("sim: event limit %d exceeded at %v", k.EventLimit, k.now)
		}
	}
	k.stopped = true
	if k.live > 0 {
		var blocked []BlockedProc
		for _, p := range k.procs {
			if !p.done {
				blocked = append(blocked, p.blockedInfo())
			}
		}
		sort.Slice(blocked, func(i, j int) bool {
			if blocked[i].Name != blocked[j].Name {
				return blocked[i].Name < blocked[j].Name
			}
			return blocked[i].Since < blocked[j].Since
		})
		return &DeadlockError{Time: k.now, Blocked: blocked}
	}
	return nil
}

// runProc transfers control to p and waits until p yields back.
//
// The block/unblock probe hooks fire here, on the event loop's side
// of the channel handoff, rather than inside Proc.Block: Block must
// stay inlinable (see its comment), and the loop observes the same
// transitions — a resumed process with a non-empty blocked reason is
// waking from Block; a yield that leaves the reason set is a Block
// taking effect (Sleep and process exit clear or never set it). The
// observed event order is identical to in-Block hooks because nothing
// runs between a process's yield and this loop, or between the resume
// send and the process continuing.
func (k *Kernel) runProc(p *Proc) {
	p.resumePending = false
	if p.done {
		// The process unwound (a dead rank under fault recovery) while
		// this resume was in flight; there is no goroutine to hand
		// control to.
		return
	}
	if k.Probe != nil && p.blocked != "" {
		k.Probe.ProcUnblock(p.tag, k.now)
	}
	p.resume <- struct{}{}
	<-k.yieldCh
	if k.Probe != nil && p.blocked != "" {
		k.Probe.ProcBlock(p.tag, p.blocked, p.blockedDetail, k.now)
	}
}
