package sim

import (
	"fmt"
	"sort"
	"strings"
)

// event is a scheduled callback. Events with equal timestamps fire in
// the order they were scheduled (FIFO via seq), which makes runs
// deterministic.
//
// Exactly one of proc and fn is set. Process resumes (Sleep, Wake,
// Spawn) are the hottest scheduling path, so they store the process
// pointer directly instead of capturing it in a closure: that saves
// one heap allocation per event.
type event struct {
	t    Time
	seq  uint64
	proc *Proc
	fn   func()
}

// less orders events by (timestamp, schedule order).
func (e *event) less(o *event) bool {
	if e.t != o.t {
		return e.t < o.t
	}
	return e.seq < o.seq
}

// eventQueue is a 4-ary min-heap over a concrete event slice. Relative
// to container/heap over an interface type it avoids boxing on push,
// type assertions on pop, and the indirect Less/Swap calls; the wider
// fan-out halves the tree depth, trading a few extra comparisons per
// sift-down for far fewer swaps on the mostly-sorted queues a
// simulation produces.
type eventQueue []event

func (q *eventQueue) push(e event) {
	h := append(*q, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !h[i].less(&h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	*q = h
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // drop fn/proc references so the GC can reclaim them
	h = h[:n]
	*q = h
	i := 0
	for {
		min := i
		c := i*4 + 1
		end := c + 4
		if end > n {
			end = n
		}
		for ; c < end; c++ {
			if h[c].less(&h[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// Kernel is a discrete-event simulation engine. A Kernel is not safe
// for concurrent use; all interaction must happen from the goroutine
// that calls Run or from process bodies (which the kernel serializes).
// Distinct Kernels share no state, so independent simulations may run
// concurrently on separate goroutines (see internal/runner).
type Kernel struct {
	now   Time
	seq   uint64
	fired uint64

	events eventQueue

	// runq is the same-timestamp fast path: events scheduled at the
	// current time (Wake, Sleep(0)-style resumes, Spawn) are appended
	// here in FIFO order instead of paying a heap push and pop. Because
	// events cannot be scheduled in the past and the run loop always
	// fires the globally minimal (t, seq), every pending runq entry has
	// t == now and seq above any same-time heap entry, so a plain
	// head-indexed slice preserves the exact seed ordering.
	runq     []event
	runqHead int

	// yieldCh is signaled by the currently running process when it
	// stops running (blocks or terminates), handing control back to
	// the event loop. Exactly one process runs at any instant.
	yieldCh chan struct{}

	procs    []*Proc
	live     int // spawned processes that have not finished
	stopped  bool
	abortErr error // set by Abort; Run returns it after the current event

	// winLimit bounds RunWindow: events at or beyond it stay queued.
	// LimitWindow may lower it while a window is executing (the sharded
	// kernel caps a shard the moment a rank enters a collective gate).
	winLimit Time

	// uncounted tracks fired events that exist only as cross-shard
	// plumbing (a rendezvous sender-completion executed on the sender's
	// shard, which the serial kernel performs inside the receiver's
	// completion event). CountedEvents subtracts them so Result.Events
	// is byte-identical at any shard count.
	uncounted uint64

	// keyed switches same-timestamp ordering from creation order (seq)
	// to a canonical key derived from the event's creator: the packed
	// (creator tag, per-creator stamp) pair. Creation order depends on
	// how ranks are partitioned across shard kernels — a message
	// delivery scheduled through the inter-shard mailbox gets its seq at
	// barrier time, not at send time — but each creator's own stamp
	// sequence is a function of that rank's execution alone, so keyed
	// ordering is identical at every shard count. Sharded runs enable it
	// on every shard kernel; the serial kernel keeps seq order and its
	// seed-pinned outputs.
	keyed bool

	// EventLimit, when nonzero, aborts Run with an error after this
	// many events have fired. It is a safety net against model bugs
	// that schedule unboundedly.
	EventLimit uint64

	// Probe, when non-nil, observes process block/unblock transitions.
	// It must be set before Run. A nil Probe costs one pointer compare
	// per process switch, all paid inside the event loop's own frame;
	// probe callbacks must not schedule events or otherwise advance
	// virtual time.
	Probe Probe
}

// Probe observes process scheduling. Higher layers (the obs package)
// implement a superset of this interface; the kernel only needs the
// block edges. The tag identifies the logical owner of the process —
// the MPI layer sets it to the rank id — and is -1 for untagged
// processes.
type Probe interface {
	ProcBlock(tag int, reason, detail string, t Time)
	ProcUnblock(tag int, t Time)
}

// initialQueueCap pre-sizes the heap and run queue so steady-state
// scheduling in small and mid-size models never grows the backing
// arrays.
const initialQueueCap = 256

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{
		yieldCh: make(chan struct{}),
		events:  make(eventQueue, 0, initialQueueCap),
		runq:    make([]event, 0, initialQueueCap),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Events returns the number of events fired so far. (After a normal
// Run every scheduled event has fired, so this also equals the number
// scheduled; mid-run or after an EventLimit abort the two differ.)
func (k *Kernel) Events() uint64 { return k.fired }

// keyStampBits is the width of the per-creator stamp in a packed
// canonical key; the creator tag occupies the bits above it. 2^40
// stamps per rank and 2^23 ranks are both far beyond any modeled run.
const keyStampBits = 40

// packKey builds the canonical same-timestamp ordering key for keyed
// kernels. Tags are global rank ids; untagged creators (-1) pack to
// the lowest band so coordinator-owned events sort first.
func packKey(tag int, stamp uint64) uint64 {
	return uint64(tag+1)<<keyStampBits | (stamp & (1<<keyStampBits - 1))
}

// keyFor allocates the canonical key for an event created on behalf of
// process p (nil or untagged creators fall back to the kernel's own
// counter, which sharded runs never exercise on rank-visible paths).
func (k *Kernel) keyFor(p *Proc) uint64 {
	if p != nil && p.tag >= 0 {
		p.stampCtr++
		return packKey(p.tag, p.stampCtr)
	}
	k.seq++
	return packKey(-1, k.seq)
}

// schedule enqueues an event at absolute time t carrying either a
// process resume or a callback. Scheduling in the past panics: it
// would break causality.
func (k *Kernel) schedule(t Time, p *Proc, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	var key uint64
	if k.keyed {
		// Canonical keys are not monotone in creation order, so the runq
		// FIFO fast path would misorder same-timestamp events: keyed
		// kernels always pay the heap.
		key = k.keyFor(p)
	} else {
		k.seq++
		key = k.seq
		if t == k.now {
			k.runq = append(k.runq, event{t: t, seq: key, proc: p, fn: fn})
			return
		}
	}
	k.events.push(event{t: t, seq: key, proc: p, fn: fn})
}

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it would break causality.
func (k *Kernel) At(t Time, fn func()) { k.schedule(t, nil, fn) }

// AtTagged schedules fn at time t under an explicit canonical key:
// the creator's rank tag and a stamp drawn from that creator's counter
// (Proc.NextStamp). The MPI layer uses it for events whose creator is
// not the kernel's running process — a message delivery created by the
// sender but fired on the receiver's kernel — so the event sorts at
// the same canonical position whether it was scheduled locally or
// through the inter-shard mailbox. On a non-keyed kernel it is plain
// At.
func (k *Kernel) AtTagged(t Time, tag int, stamp uint64, fn func()) {
	if !k.keyed {
		k.At(t, fn)
		return
	}
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.events.push(event{t: t, seq: packKey(tag, stamp), fn: fn})
}

// Keyed switches the kernel to canonical same-timestamp ordering (see
// the keyed field). It must be called before any event is scheduled:
// mixing seq-keyed and canonically-keyed events in one queue would
// interleave them arbitrarily.
func (k *Kernel) Keyed() {
	if k.fired > 0 || k.seq > 0 || len(k.events) > 0 {
		panic("sim: Keyed must be called on a fresh kernel")
	}
	k.keyed = true
}

// After schedules fn to run d from now. Negative d panics.
func (k *Kernel) After(d Duration, fn func()) { k.At(k.now.Add(d), fn) }

// atResume schedules process p to resume at time t without allocating
// a closure. A *blocked* process has at most one undelivered resume:
// the first scheduled wins and later calls are ignored until it is
// delivered. Every legitimate wait has exactly one waker, so the guard
// never changes a healthy run; it exists for the fault-recovery layer,
// where a node death may try to wake a rank whose gate release (or
// message completion) is already in flight — a second resume event
// would spuriously release the rank's next wait. A resume for a
// process that is not blocked is always queued: a wake may
// legitimately race the target's own Block — or even its Spawn — in
// the same timestamp, and must be delivered once the target blocks.
func (k *Kernel) atResume(t Time, p *Proc) {
	if p.resumePending && p.blocked != "" {
		return
	}
	p.resumePending = true
	k.schedule(t, p, nil)
}

// BlockedProc describes one blocked process of a deadlock report.
type BlockedProc struct {
	Name   string // process name given at Spawn
	Reason string // what the process is waiting on
	Since  Time   // when it blocked (when the stall began)
}

// String formats the process as "name (reason, blocked since t)".
func (b BlockedProc) String() string {
	return fmt.Sprintf("%s (%s, blocked since %v)", b.Name, b.Reason, b.Since)
}

// DeadlockError reports that the event queue drained while processes
// were still blocked — the simulated program can make no further
// progress (for example, an MPI receive with no matching send). Time
// is when the last event fired; each blocked process carries the
// timestamp at which it stalled, so the report distinguishes the
// process that has been stuck since the start from the one that
// blocked on the final event.
type DeadlockError struct {
	Time    Time // when the last event fired (the queue-drain time)
	Blocked []BlockedProc
	// Note is optional context a higher layer appends to the report —
	// the MPI fault layer uses it to name the dead ranks the blocked
	// processes are most likely waiting on. Empty when no layer had
	// anything to add.
	Note string
}

func (e *DeadlockError) Error() string {
	descs := make([]string, len(e.Blocked))
	for i, b := range e.Blocked {
		descs[i] = b.String()
	}
	s := fmt.Sprintf("sim: deadlock: last event at %v, %d process(es) blocked: %s",
		e.Time, len(e.Blocked), strings.Join(descs, "; "))
	if e.Note != "" {
		s += " [" + e.Note + "]"
	}
	return s
}

// PanicError reports a process body that panicked. The kernel recovers
// the panic, aborts the run, and returns this from Run instead of
// crashing the whole program — one sick simulation in a concurrent
// sweep must not take down its siblings.
type PanicError struct {
	Proc  string // name of the panicking process
	Value any    // the recovered panic value
	Stack []byte // goroutine stack at the panic site
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v\n%s", e.Proc, e.Value, e.Stack)
}

// failPanic carries a model error out of a process body to the spawn
// wrapper, which aborts the kernel with exactly that error (no
// PanicError wrapping, no stack dump).
type failPanic struct{ err error }

// Fail aborts the simulation with err from within a process body: the
// process unwinds, the kernel stops after the current event, and Run
// returns err. It is how model layers surface typed simulation errors
// (a failed rank, a partitioned torus) from code whose programming
// model has no error returns.
func Fail(err error) { panic(failPanic{err}) }

// Abort makes Run return err after the currently firing event
// completes. The first abort wins; a nil err is ignored. Safe to call
// from event callbacks and process bodies.
func (k *Kernel) Abort(err error) {
	if k.abortErr == nil && err != nil {
		k.abortErr = err
	}
}

// Live returns the number of spawned processes that have not finished.
func (k *Kernel) Live() int { return k.live }

// next dequeues the globally minimal pending event, preferring the
// run-queue head when it wins the (t, seq) comparison against the heap
// top. The second result is false when both queues are empty.
func (k *Kernel) next() (event, bool) {
	if k.runqHead < len(k.runq) {
		head := &k.runq[k.runqHead]
		if len(k.events) > 0 && k.events[0].less(head) {
			return k.events.pop(), true
		}
		e := *head
		*head = event{}
		k.runqHead++
		if k.runqHead == len(k.runq) {
			k.runq = k.runq[:0]
			k.runqHead = 0
		}
		return e, true
	}
	if len(k.events) > 0 {
		return k.events.pop(), true
	}
	return event{}, false
}

// Run fires events in timestamp order until the queue drains. It
// returns nil when every spawned process has finished, and a
// *DeadlockError when the queue drains with processes still blocked.
// The goroutines of deadlocked processes are abandoned.
func (k *Kernel) Run() error {
	if k.stopped {
		return fmt.Errorf("sim: kernel already ran")
	}
	for {
		e, ok := k.next()
		if !ok {
			break
		}
		k.now = e.t
		if e.proc != nil {
			k.runProc(e.proc)
		} else {
			e.fn()
		}
		k.fired++
		if k.abortErr != nil {
			k.stopped = true
			return k.abortErr
		}
		if k.EventLimit > 0 && k.fired > k.EventLimit {
			k.stopped = true
			return fmt.Errorf("sim: event limit %d exceeded at %v", k.EventLimit, k.now)
		}
	}
	k.stopped = true
	if k.live > 0 {
		var blocked []BlockedProc
		for _, p := range k.procs {
			if !p.done {
				blocked = append(blocked, p.blockedInfo())
			}
		}
		sort.Slice(blocked, func(i, j int) bool {
			if blocked[i].Name != blocked[j].Name {
				return blocked[i].Name < blocked[j].Name
			}
			return blocked[i].Since < blocked[j].Since
		})
		return &DeadlockError{Time: k.now, Blocked: blocked}
	}
	return nil
}

// PeekTime returns the timestamp of the earliest pending event without
// dequeuing it. The second result is false when no event is pending.
func (k *Kernel) PeekTime() (Time, bool) {
	if k.runqHead < len(k.runq) {
		head := &k.runq[k.runqHead]
		if len(k.events) > 0 && k.events[0].less(head) {
			return k.events[0].t, true
		}
		return head.t, true
	}
	if len(k.events) > 0 {
		return k.events[0].t, true
	}
	return 0, false
}

// PeekKey returns the timestamp and ordering key of the earliest
// pending event without dequeuing it. The sharded coordinator compares
// (time, key) across shard kernels to pick the globally canonical next
// event when every shard is gated. The third result is false when no
// event is pending.
func (k *Kernel) PeekKey() (Time, uint64, bool) {
	if k.runqHead < len(k.runq) {
		head := &k.runq[k.runqHead]
		if len(k.events) > 0 && k.events[0].less(head) {
			return k.events[0].t, k.events[0].seq, true
		}
		return head.t, head.seq, true
	}
	if len(k.events) > 0 {
		return k.events[0].t, k.events[0].seq, true
	}
	return 0, 0, false
}

// fire executes one dequeued event and applies the abort and
// event-limit checks shared by Run, RunWindow, and StepOne. It returns
// a non-nil error when the run must end now.
func (k *Kernel) fire(e event) error {
	k.now = e.t
	if e.proc != nil {
		k.runProc(e.proc)
	} else {
		e.fn()
	}
	k.fired++
	if k.abortErr != nil {
		k.stopped = true
		return k.abortErr
	}
	if k.EventLimit > 0 && k.fired > k.EventLimit {
		k.stopped = true
		return fmt.Errorf("sim: event limit %d exceeded at %v", k.EventLimit, k.now)
	}
	return nil
}

// RunWindow fires pending events with timestamps strictly below limit,
// then returns nil with the kernel paused (not stopped): further
// windows, StepOne calls, or externally scheduled events may follow.
// The limit is live — an event body may lower it through LimitWindow
// and the loop honors the new bound immediately. Errors (abort, event
// limit) end the run exactly as in Run.
func (k *Kernel) RunWindow(limit Time) error {
	if k.stopped {
		return fmt.Errorf("sim: kernel already ran")
	}
	k.winLimit = limit
	for {
		t, ok := k.PeekTime()
		if !ok || t >= k.winLimit {
			return nil
		}
		e, _ := k.next()
		if err := k.fire(e); err != nil {
			return err
		}
	}
}

// LimitWindow lowers the current window bound so that no further event
// at or beyond t fires in this window. Raising the bound is not
// allowed — the caller owns the upper limit. Safe to call from event
// bodies during RunWindow.
func (k *Kernel) LimitWindow(t Time) {
	if t < k.winLimit {
		k.winLimit = t
	}
}

// StepOne fires exactly one pending event, ignoring any window bound.
// It returns (false, nil) when no event is pending. The sharded
// coordinator uses it to execute the globally minimal event when every
// shard is gated — the conservative-window equivalent of the serial
// kernel taking its next step.
func (k *Kernel) StepOne() (bool, error) {
	if k.stopped {
		return false, fmt.Errorf("sim: kernel already ran")
	}
	e, ok := k.next()
	if !ok {
		return false, nil
	}
	return true, k.fire(e)
}

// Uncount marks the currently firing event as bookkeeping-only: it is
// excluded from CountedEvents. Cross-shard plumbing events that have no
// serial-kernel counterpart call it so event totals stay identical at
// any shard count.
func (k *Kernel) Uncount() { k.uncounted++ }

// CountedEvents returns the fired-event count minus events marked with
// Uncount.
func (k *Kernel) CountedEvents() uint64 { return k.fired - k.uncounted }

// BlockedProcs returns the blocked-process reports of all unfinished
// processes, unsorted. The sharded coordinator merges these across
// shard kernels into one DeadlockError.
func (k *Kernel) BlockedProcs() []BlockedProc {
	var blocked []BlockedProc
	for _, p := range k.procs {
		if !p.done {
			blocked = append(blocked, p.blockedInfo())
		}
	}
	return blocked
}

// Drained reports whether no events are pending.
func (k *Kernel) Drained() bool {
	_, ok := k.PeekTime()
	return !ok
}

// runProc transfers control to p and waits until p yields back.
//
// The block/unblock probe hooks fire here, on the event loop's side
// of the channel handoff, rather than inside Proc.Block: Block must
// stay inlinable (see its comment), and the loop observes the same
// transitions — a resumed process with a non-empty blocked reason is
// waking from Block; a yield that leaves the reason set is a Block
// taking effect (Sleep and process exit clear or never set it). The
// observed event order is identical to in-Block hooks because nothing
// runs between a process's yield and this loop, or between the resume
// send and the process continuing.
func (k *Kernel) runProc(p *Proc) {
	p.resumePending = false
	if p.done {
		// The process unwound (a dead rank under fault recovery) while
		// this resume was in flight; there is no goroutine to hand
		// control to.
		return
	}
	if k.Probe != nil && p.blocked != "" {
		k.Probe.ProcUnblock(p.tag, k.now)
	}
	p.resume <- struct{}{}
	<-k.yieldCh
	if k.Probe != nil && p.blocked != "" {
		k.Probe.ProcBlock(p.tag, p.blocked, p.blockedDetail, k.now)
	}
}
