package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// event is a scheduled callback. Events with equal timestamps fire in
// the order they were scheduled (FIFO via seq), which makes runs
// deterministic.
type event struct {
	t    Time
	seq  uint64
	fire func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation engine. A Kernel is not safe
// for concurrent use; all interaction must happen from the goroutine
// that calls Run or from process bodies (which the kernel serializes).
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap

	// yieldCh is signaled by the currently running process when it
	// stops running (blocks or terminates), handing control back to
	// the event loop. Exactly one process runs at any instant.
	yieldCh chan struct{}

	procs   []*Proc
	live    int // spawned processes that have not finished
	stopped bool

	// EventLimit, when nonzero, aborts Run with an error after this
	// many events. It is a safety net against model bugs that
	// schedule unboundedly.
	EventLimit uint64
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{yieldCh: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Events returns the number of events fired so far.
func (k *Kernel) Events() uint64 { return k.seq }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it would break causality.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	heap.Push(&k.events, event{t: t, seq: k.seq, fire: fn})
}

// After schedules fn to run d from now. Negative d panics.
func (k *Kernel) After(d Duration, fn func()) { k.At(k.now.Add(d), fn) }

// DeadlockError reports that the event queue drained while processes
// were still blocked — the simulated program can make no further
// progress (for example, an MPI receive with no matching send).
type DeadlockError struct {
	Time    Time
	Blocked []string // descriptions of the blocked processes
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d process(es) blocked: %s",
		e.Time, len(e.Blocked), strings.Join(e.Blocked, "; "))
}

// Run fires events in timestamp order until the queue drains. It
// returns nil when every spawned process has finished, and a
// *DeadlockError when the queue drains with processes still blocked.
// The goroutines of deadlocked processes are abandoned.
func (k *Kernel) Run() error {
	if k.stopped {
		return fmt.Errorf("sim: kernel already ran")
	}
	fired := uint64(0)
	for k.events.Len() > 0 {
		e := heap.Pop(&k.events).(event)
		k.now = e.t
		e.fire()
		fired++
		if k.EventLimit > 0 && fired > k.EventLimit {
			k.stopped = true
			return fmt.Errorf("sim: event limit %d exceeded at %v", k.EventLimit, k.now)
		}
	}
	k.stopped = true
	if k.live > 0 {
		var blocked []string
		for _, p := range k.procs {
			if !p.done {
				blocked = append(blocked, p.describe())
			}
		}
		sort.Strings(blocked)
		return &DeadlockError{Time: k.now, Blocked: blocked}
	}
	return nil
}

// runProc transfers control to p and waits until p yields back.
func (k *Kernel) runProc(p *Proc) {
	p.resume <- struct{}{}
	<-k.yieldCh
}
