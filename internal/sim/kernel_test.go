package sim

import (
	"fmt"
	"strings"
	"testing"
)

// TestDeadlockBlockedOrdering pins the determinism of deadlock
// reports: the Blocked list is sorted, not in spawn or block order, so
// the same model failure always produces the same error string.
func TestDeadlockBlockedOrdering(t *testing.T) {
	k := NewKernel()
	// Spawn in an order unrelated to the sorted result, with block
	// times scrambled so block order differs from spawn order too.
	k.Spawn("zeta", func(p *Proc) {
		p.Block("waiting on zeta-dep")
	})
	k.Spawn("alpha", func(p *Proc) {
		p.Sleep(3 * Nanosecond)
		p.Block("waiting on alpha-dep")
	})
	k.Spawn("mid", func(p *Proc) {
		p.Sleep(Nanosecond)
		p.Block("waiting on mid-dep")
	})
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	want := []BlockedProc{
		{Name: "alpha", Reason: "waiting on alpha-dep", Since: Time(3 * Nanosecond)},
		{Name: "mid", Reason: "waiting on mid-dep", Since: Time(Nanosecond)},
		{Name: "zeta", Reason: "waiting on zeta-dep", Since: 0},
	}
	if len(de.Blocked) != len(want) {
		t.Fatalf("Blocked = %v, want %v", de.Blocked, want)
	}
	for i := range want {
		if de.Blocked[i] != want[i] {
			t.Fatalf("Blocked = %v, want %v", de.Blocked, want)
		}
	}
	if !strings.Contains(de.Error(), "3 process(es) blocked") {
		t.Errorf("Error() = %q, want blocked count", de.Error())
	}
	// The report carries when each process stalled and the time of the
	// last event, so a reader can tell the long-stuck process from the
	// one that blocked at the end.
	if de.Time != Time(3*Nanosecond) {
		t.Errorf("Time = %v, want last event at 3ns", de.Time)
	}
	msg := de.Error()
	for _, frag := range []string{
		"last event at t=0.000000003s",
		"alpha (waiting on alpha-dep, blocked since t=0.000000003s)",
		"mid (waiting on mid-dep, blocked since t=0.000000001s)",
		"zeta (waiting on zeta-dep, blocked since t=0.000000000s)",
	} {
		if !strings.Contains(msg, frag) {
			t.Errorf("Error() = %q, missing %q", msg, frag)
		}
	}
}

// TestProcPanicRecovered checks the hardened error path: a panic in a
// process body aborts the run with a *PanicError carrying the process
// name and a stack trace, instead of crashing the whole program.
func TestProcPanicRecovered(t *testing.T) {
	k := NewKernel()
	k.Spawn("healthy", func(p *Proc) { p.Sleep(Nanosecond) })
	k.Spawn("sick", func(p *Proc) {
		p.Sleep(Nanosecond)
		panic("model bug")
	})
	err := k.Run()
	pe, ok := err.(*PanicError)
	if !ok {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Proc != "sick" || pe.Value != "model bug" {
		t.Errorf("PanicError = %q/%v, want sick/model bug", pe.Proc, pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "kernel_test") {
		t.Errorf("stack trace missing panic site:\n%s", pe.Stack)
	}
}

// TestFailAbortsWithTypedError checks that sim.Fail surfaces the
// carried error itself from Run, unwrapped, so callers can errors.As
// on model-defined fault types.
func TestFailAbortsWithTypedError(t *testing.T) {
	k := NewKernel()
	sentinel := fmt.Errorf("link down")
	k.Spawn("failer", func(p *Proc) {
		p.Sleep(Nanosecond)
		Fail(sentinel)
	})
	if err := k.Run(); err != sentinel {
		t.Fatalf("err = %v, want the sentinel error itself", err)
	}
}

// TestAbortStopsAfterCurrentEvent checks that Abort from an event
// callback stops the run promptly and that the first abort wins.
func TestAbortStopsAfterCurrentEvent(t *testing.T) {
	k := NewKernel()
	first := fmt.Errorf("first")
	fired := 0
	k.After(Nanosecond, func() {
		fired++
		k.Abort(first)
		k.Abort(fmt.Errorf("second"))
	})
	k.After(2*Nanosecond, func() { fired++ })
	if err := k.Run(); err != first {
		t.Fatalf("err = %v, want first abort error", err)
	}
	if fired != 1 {
		t.Errorf("fired = %d events after abort, want 1", fired)
	}
}

// TestEventLimitAbort checks the abort path: the limit counts events
// *fired*, the error names the limit, the kernel refuses to run again,
// and Events() reports how many events actually fired.
func TestEventLimitAbort(t *testing.T) {
	k := NewKernel()
	k.EventLimit = 100
	fired := 0
	var tick func()
	tick = func() {
		fired++
		k.After(Nanosecond, tick)
	}
	k.After(Nanosecond, tick)
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "event limit 100 exceeded") {
		t.Fatalf("err = %v, want event limit error", err)
	}
	if fired != 101 {
		t.Errorf("fired %d callbacks, want 101 (limit checked after firing)", fired)
	}
	if k.Events() != 101 {
		t.Errorf("Events() = %d, want 101", k.Events())
	}
	if err := k.Run(); err == nil || !strings.Contains(err.Error(), "already ran") {
		t.Errorf("Run after abort = %v, want already-ran error", err)
	}
}

// TestEventLimitCountsFiredNotScheduled: a burst of scheduled-but-
// unfired events must not trip the limit. The seed kernel tracked
// scheduled events (seq) in Events(); the limit and the counter now
// both follow fired events.
func TestEventLimitCountsFiredNotScheduled(t *testing.T) {
	k := NewKernel()
	k.EventLimit = 60
	// Schedule 50 events; each schedules nothing further. 50 fired
	// < 60, so Run must succeed even though intermediate scheduling
	// bursts exist.
	for i := 0; i < 50; i++ {
		k.At(Time(i), func() {})
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v (limit must count fired events, not scheduled)", err)
	}
	if k.Events() != 50 {
		t.Errorf("Events() = %d, want 50 fired", k.Events())
	}
}

// TestEventsCountsFiredDuringRun observes the counter mid-run: inside
// the i-th callback, i events have completed. Under the seed kernel
// this read 5 (the scheduled count) in every callback.
func TestEventsCountsFiredDuringRun(t *testing.T) {
	k := NewKernel()
	var seen []uint64
	for i := 0; i < 5; i++ {
		k.At(Time(i*10), func() { seen = append(seen, k.Events()) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, got := range seen {
		if got != uint64(i) {
			t.Errorf("callback %d saw Events() = %d, want %d", i, got, i)
		}
	}
	if k.Events() != 5 {
		t.Errorf("final Events() = %d, want 5", k.Events())
	}
}

// TestRunTwiceAfterSuccess: the re-entry guard on a kernel that
// completed normally.
func TestRunTwiceAfterSuccess(t *testing.T) {
	k := NewKernel()
	k.At(Time(1), func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "already ran") {
		t.Errorf("second Run = %v, want already-ran error", err)
	}
}

// TestRunQueueHeapInterleaving pins FIFO-within-timestamp across the
// two queues of the fast path: events scheduled *before* time T lands
// sit in the heap; events scheduled at T while the clock is at T take
// the run-queue. Both kinds at the same timestamp must still fire in
// schedule (seq) order.
func TestRunQueueHeapInterleaving(t *testing.T) {
	k := NewKernel()
	var order []string
	k.At(Time(10), func() {
		order = append(order, "A")
		// now == 10: these land on the run queue, behind the heap
		// event B also at t=10 but scheduled earlier.
		k.At(Time(10), func() {
			order = append(order, "C")
			k.At(Time(10), func() { order = append(order, "E") })
		})
		k.At(Time(10), func() { order = append(order, "D") })
		// A future event must wait for every t=10 event.
		k.At(Time(11), func() { order = append(order, "F") })
	})
	k.At(Time(10), func() { order = append(order, "B") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "A B C D E F"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
}

// TestWakeFIFOAcrossProcs: wakes issued at one timestamp resume
// processes in wake order, exercising the run-queue resume path.
func TestWakeFIFOAcrossProcs(t *testing.T) {
	k := NewKernel()
	var order []int
	var sleepers [4]*Proc
	for i := 0; i < 4; i++ {
		i := i
		sleepers[i] = k.Spawn("sleeper", func(p *Proc) {
			p.Block("waiting for wake")
			order = append(order, i)
		})
	}
	k.Spawn("waker", func(p *Proc) {
		p.Sleep(Nanosecond)
		// Wake out of spawn order; resume order must follow wake order.
		for _, i := range []int{2, 0, 3, 1} {
			sleepers[i].Wake()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{2, 0, 3, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("resume order = %v, want %v", order, want)
		}
	}
}
