package network

import "bgpsim/internal/sim"

// Lookahead returns the conservative-PDES lookahead of this
// interconnect: the minimum virtual latency of any message between two
// distinct nodes. Any cross-node send injected at time t arrives no
// earlier than t + Lookahead(), so a sharded kernel whose domains are
// node-disjoint may safely run each domain ahead by a window of this
// width. Under the analytic torus model the floor is one hop of
// latency (routes between distinct nodes have at least one hop and
// serialization only adds time). A machine whose hop latency rounds to
// zero picoseconds has no usable lookahead — a send could arrive in
// the very timestamp it was issued — and returns 0, which disqualifies
// the configuration from sharding (the world falls back to the serial
// kernel).
func (n *Net) Lookahead() sim.Duration {
	la := sim.Seconds(n.mach.TorusHopLat)
	if la < 0 {
		la = 0
	}
	return la
}

// ShardClone returns a Net for one shard of a sharded run. The clone
// shares the immutable machine, torus, tree, and fault plan, and —
// because ranks of a node are always owned by one shard — the per-node
// shared-memory channel state, but keeps private traffic counters and
// probe so shards can run on concurrent goroutines. Only the analytic
// fidelity is shardable: the contention and packet models share
// per-link state across all nodes.
func (n *Net) ShardClone() *Net {
	return &Net{
		mach:    n.mach,
		torus:   n.torus,
		tree:    n.tree,
		fid:     n.fid,
		faults:  n.faults,
		varFac:  n.varFac,
		shmFree: n.shmFree,
		linkBW:  n.linkBW,
		injBW:   n.injBW,
	}
}

// Add merges another shard's counters into s. Map iteration order does
// not matter: addition is commutative per key.
func (s *Stats) Add(o Stats) {
	s.Messages += o.Messages
	s.Bytes += o.Bytes
	s.ShmMsgs += o.ShmMsgs
	s.TreeOps += o.TreeOps
	s.BarrierOps += o.BarrierOps
	s.Recoveries += o.Recoveries
	s.TreeRebuilds += o.TreeRebuilds
	s.HWFallbacks += o.HWFallbacks
	s.RecoveryTime += o.RecoveryTime
	s.Orphans += o.Orphans
	s.Restarts += o.Restarts
	s.Replays += o.Replays
	s.ReplayBytes += o.ReplayBytes
	s.ReplayTime += o.ReplayTime
	s.RestartTime += o.RestartTime
	if len(o.Collectives) > 0 && s.Collectives == nil {
		s.Collectives = make(map[string]CollStats, len(o.Collectives))
	}
	for k, v := range o.Collectives {
		cs := s.Collectives[k]
		cs.Ops += v.Ops
		cs.Messages += v.Messages
		cs.Bytes += v.Bytes
		s.Collectives[k] = cs
	}
}
