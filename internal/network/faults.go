package network

import (
	"math"

	"bgpsim/internal/fault"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

// SetFaults attaches a fault plan to the network. A nil plan (or one
// with no link faults) leaves the healthy fast path untouched — every
// message takes exactly the code it would without a plan, so healthy
// runs stay byte-identical. Call before the simulation starts.
//
// When the plan carries per-node link variability (fault.Variability
// with a nonzero LinkCV), the per-node delivered-bandwidth factors are
// drawn here once — a pure function of (plan seed, node), so shard
// clones sharing the slice see identical draws at any shard count.
func (n *Net) SetFaults(p *fault.Plan) {
	n.faults = p
	n.varFac = nil
	if v := p.Variability(); v != nil && v.LinkCV > 0 {
		nodes := n.torus.Dims.Nodes()
		n.varFac = make([]float64, nodes)
		for node := 0; node < nodes; node++ {
			n.varFac[node] = v.LinkFactor(node)
		}
	}
}

// varFactor returns the delivered-bandwidth multiplier of a message
// between two nodes under per-node link variability: the worse of the
// two endpoint factors (the marginal NIC bounds the stream), 1 when
// variability is off.
func (n *Net) varFactor(srcNode, dstNode int) float64 {
	if n.varFac == nil {
		return 1
	}
	f := n.varFac[srcNode]
	if g := n.varFac[dstNode]; g < f {
		f = g
	}
	return f
}

// Faults returns the attached fault plan (nil when healthy).
func (n *Net) Faults() *fault.Plan { return n.faults }

// p2pFaulty is the link-fault twin of the healthy P2P paths: it routes
// around links that are down at injection time and stretches
// serialization over degraded ones. The three fidelities mirror their
// healthy counterparts exactly when every link on the route has factor
// 1.
func (n *Net) p2pFaulty(now sim.Time, srcNode, dstNode, bytes int) (sim.Time, error) {
	blocked := func(l topology.Link) bool { return n.faults.LinkFactor(l, now) == 0 }
	route, err := n.torus.AppendRouteAvoid(n.routeBuf[:0], srcNode, dstNode, blocked)
	if err != nil {
		return now, err
	}
	n.routeBuf = route

	// The bottleneck factor governs the streaming rate of the whole
	// message (wormhole/cut-through pipelines at the slowest stage).
	minF := 1.0
	for _, l := range route {
		if f := n.faults.LinkFactor(l, now); f < minF {
			minF = f
		}
	}

	q := n.varFactor(srcNode, dstNode)
	hopLat := sim.Seconds(n.mach.TorusHopLat * float64(len(route)))
	effBW := math.Min(n.linkBW*minF, n.injBW) * q
	wire := sim.Seconds(float64(bytes) / effBW)

	if n.fid == Analytic {
		return now.Add(hopLat + wire), nil
	}
	if n.fid == Packet {
		return n.packetOnRoute(now, srcNode, dstNode, bytes, route), nil
	}

	// Contention: as the healthy reservation loop, but each degraded
	// link stays busy longer (serialization divided by its factor).
	injSer := sim.Seconds(float64(bytes) / (n.injBW * q))
	depart := now
	if n.injFree[srcNode] > depart {
		depart = n.injFree[srcNode]
	}
	perHop := sim.Seconds(n.mach.TorusHopLat)
	for i, l := range route {
		off := sim.Duration(i) * perHop
		if need := n.linkFree[n.torus.LinkIndex(l)] - sim.Time(off); need > depart {
			depart = need
		}
	}
	if need := n.ejFree[dstNode] - sim.Time(hopLat); need > depart {
		depart = need
	}

	n.injFree[srcNode] = depart.Add(injSer)
	for i, l := range route {
		off := sim.Duration(i) * perHop
		f := n.faults.LinkFactor(l, now)
		linkSer := sim.Seconds(float64(bytes) / (n.linkBW * f * q))
		n.linkFree[n.torus.LinkIndex(l)] = depart.Add(off + linkSer)
	}
	arrival := depart.Add(hopLat + wire)
	n.ejFree[dstNode] = arrival
	if n.probe != nil {
		n.probeReserveFaulty(now, depart, srcNode, bytes, route, perHop)
	}
	return arrival, nil
}

// packetOnRoute is packetTransfer over an explicit (detour) route with
// per-link degradation: each packet serializes at the link's surviving
// bandwidth.
func (n *Net) packetOnRoute(now sim.Time, srcNode, dstNode, bytes int, route []topology.Link) sim.Time {
	packets := (bytes + packetBytes - 1) / packetBytes
	if packets == 0 {
		packets = 1
	}
	q := n.varFactor(srcNode, dstNode)
	perHop := sim.Seconds(n.mach.TorusHopLat)
	lastBytes := bytes - (packets-1)*packetBytes
	if lastBytes <= 0 {
		lastBytes = packetBytes
	}

	var arrival sim.Time
	for k := 0; k < packets; k++ {
		pb := packetBytes
		if k == packets-1 {
			pb = lastBytes
		}
		t := now
		if n.injFree[srcNode] > t {
			t = n.injFree[srcNode]
		}
		if n.probe != nil {
			n.probe.Inject(srcNode, t, t.Sub(now), pb)
		}
		t = t.Add(sim.Seconds(float64(pb) / (n.injBW * q)))
		n.injFree[srcNode] = t
		for _, l := range route {
			idx := n.torus.LinkIndex(l)
			if n.linkFree[idx] > t {
				t = n.linkFree[idx]
			}
			f := n.faults.LinkFactor(l, now)
			ser := sim.Seconds(float64(pb) / (n.linkBW * f * q))
			if n.probe != nil {
				n.probe.LinkBusy(idx, t, ser, pb)
			}
			t = t.Add(ser)
			n.linkFree[idx] = t
			t = t.Add(perHop)
		}
		if n.ejFree[dstNode] > t {
			t = n.ejFree[dstNode]
		}
		n.ejFree[dstNode] = t
		if t > arrival {
			arrival = t
		}
	}
	return arrival
}
