package network

import (
	"math"

	"bgpsim/internal/fault"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

// SetFaults attaches a fault plan to the network. A nil plan (or one
// with no link faults) leaves the healthy fast path untouched — every
// message takes exactly the code it would without a plan, so healthy
// runs stay byte-identical. Call before the simulation starts.
func (n *Net) SetFaults(p *fault.Plan) { n.faults = p }

// Faults returns the attached fault plan (nil when healthy).
func (n *Net) Faults() *fault.Plan { return n.faults }

// p2pFaulty is the link-fault twin of the healthy P2P paths: it routes
// around links that are down at injection time and stretches
// serialization over degraded ones. The three fidelities mirror their
// healthy counterparts exactly when every link on the route has factor
// 1.
func (n *Net) p2pFaulty(now sim.Time, srcNode, dstNode, bytes int) (sim.Time, error) {
	blocked := func(l topology.Link) bool { return n.faults.LinkFactor(l, now) == 0 }
	route, err := n.torus.AppendRouteAvoid(n.routeBuf[:0], srcNode, dstNode, blocked)
	if err != nil {
		return now, err
	}
	n.routeBuf = route

	// The bottleneck factor governs the streaming rate of the whole
	// message (wormhole/cut-through pipelines at the slowest stage).
	minF := 1.0
	for _, l := range route {
		if f := n.faults.LinkFactor(l, now); f < minF {
			minF = f
		}
	}

	hopLat := sim.Seconds(n.mach.TorusHopLat * float64(len(route)))
	effBW := math.Min(n.linkBW*minF, n.injBW)
	wire := sim.Seconds(float64(bytes) / effBW)

	if n.fid == Analytic {
		return now.Add(hopLat + wire), nil
	}
	if n.fid == Packet {
		return n.packetOnRoute(now, srcNode, dstNode, bytes, route), nil
	}

	// Contention: as the healthy reservation loop, but each degraded
	// link stays busy longer (serialization divided by its factor).
	injSer := sim.Seconds(float64(bytes) / n.injBW)
	depart := now
	if n.injFree[srcNode] > depart {
		depart = n.injFree[srcNode]
	}
	perHop := sim.Seconds(n.mach.TorusHopLat)
	for i, l := range route {
		off := sim.Duration(i) * perHop
		if need := n.linkFree[n.torus.LinkIndex(l)] - sim.Time(off); need > depart {
			depart = need
		}
	}
	if need := n.ejFree[dstNode] - sim.Time(hopLat); need > depart {
		depart = need
	}

	n.injFree[srcNode] = depart.Add(injSer)
	for i, l := range route {
		off := sim.Duration(i) * perHop
		f := n.faults.LinkFactor(l, now)
		linkSer := sim.Seconds(float64(bytes) / (n.linkBW * f))
		n.linkFree[n.torus.LinkIndex(l)] = depart.Add(off + linkSer)
	}
	arrival := depart.Add(hopLat + wire)
	n.ejFree[dstNode] = arrival
	if n.probe != nil {
		n.probeReserveFaulty(now, depart, srcNode, bytes, route, perHop)
	}
	return arrival, nil
}

// packetOnRoute is packetTransfer over an explicit (detour) route with
// per-link degradation: each packet serializes at the link's surviving
// bandwidth.
func (n *Net) packetOnRoute(now sim.Time, srcNode, dstNode, bytes int, route []topology.Link) sim.Time {
	packets := (bytes + packetBytes - 1) / packetBytes
	if packets == 0 {
		packets = 1
	}
	perHop := sim.Seconds(n.mach.TorusHopLat)
	lastBytes := bytes - (packets-1)*packetBytes
	if lastBytes <= 0 {
		lastBytes = packetBytes
	}

	var arrival sim.Time
	for k := 0; k < packets; k++ {
		pb := packetBytes
		if k == packets-1 {
			pb = lastBytes
		}
		t := now
		if n.injFree[srcNode] > t {
			t = n.injFree[srcNode]
		}
		if n.probe != nil {
			n.probe.Inject(srcNode, t, t.Sub(now), pb)
		}
		t = t.Add(sim.Seconds(float64(pb) / n.injBW))
		n.injFree[srcNode] = t
		for _, l := range route {
			idx := n.torus.LinkIndex(l)
			if n.linkFree[idx] > t {
				t = n.linkFree[idx]
			}
			f := n.faults.LinkFactor(l, now)
			ser := sim.Seconds(float64(pb) / (n.linkBW * f))
			if n.probe != nil {
				n.probe.LinkBusy(idx, t, ser, pb)
			}
			t = t.Add(ser)
			n.linkFree[idx] = t
			t = t.Add(perHop)
		}
		if n.ejFree[dstNode] > t {
			t = n.ejFree[dstNode]
		}
		n.ejFree[dstNode] = t
		if t > arrival {
			arrival = t
		}
	}
	return arrival
}
