// Package network models the interconnects of the evaluated machines:
// the 3-D torus (with optional per-link contention), the BlueGene
// global collective tree, the global barrier/interrupt network, and
// the on-node shared-memory path.
//
// The torus contention model is a wormhole approximation: a message
// reserves every directed link on its dimension-ordered route for the
// message's serialization time, offset by the per-hop latency of the
// links before it. Messages that share links therefore queue behind
// each other, which is what makes the paper's process-mapping studies
// (Figure 2c/d) come out: poor mappings produce longer routes that
// share more links.
package network

import (
	"fmt"
	"math"

	"bgpsim/internal/fault"
	"bgpsim/internal/machine"
	"bgpsim/internal/obs"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

// Fidelity selects the torus model.
type Fidelity int

const (
	// Analytic uses hop latency plus serialization time with no
	// shared state. It is fast and used for very large sweeps where
	// contention is not the object of study.
	Analytic Fidelity = iota
	// Contention tracks per-link busy times so that messages sharing
	// links queue. Use it for mapping and congestion studies.
	Contention
	// Packet simulates individual packets hopping link by link — the
	// highest-fidelity (and slowest) model; used to validate the
	// Contention approximation at small scale.
	Packet
)

// packetBytes is the torus packet size in Packet fidelity (the BG/P
// torus uses up to 256-byte packets).
const packetBytes = 256

// String names the fidelity.
func (f Fidelity) String() string {
	switch f {
	case Analytic:
		return "analytic"
	case Packet:
		return "packet"
	}
	return "contention"
}

// Stats accumulates traffic counters.
type Stats struct {
	Messages   int64
	Bytes      int64
	ShmMsgs    int64
	TreeOps    int64
	BarrierOps int64

	// Collective-recovery counters (zero on healthy runs). Recoveries
	// counts recovery epochs a communicator went through; TreeRebuilds
	// counts the subset where the hardware tree was reprogrammed around
	// dead leaves; HWFallbacks counts the subset where an interior-node
	// loss demoted hardware offloads to software torus algorithms.
	// RecoveryTime is the total simulated latency charged for recovery.
	Recoveries   int64
	TreeRebuilds int64
	HWFallbacks  int64
	RecoveryTime sim.Duration

	// Message-logging counters (zero unless the fault plan enables
	// log=sender). Orphans counts point-to-point operations cancelled
	// on a dead peer plus messages that became undeliverable with it.
	// Restarts counts user-level rank restarts (restart=ckpt);
	// Replays/ReplayBytes count logged messages re-delivered during
	// those restarts; ReplayTime is the simulated time spent
	// re-injecting them, a component of RestartTime, the total restart
	// latency charged (detection, reboot, checkpoint read-back, redone
	// work, replay).
	Orphans     int64
	Restarts    int64
	Replays     int64
	ReplayBytes int64
	ReplayTime  sim.Duration
	RestartTime sim.Duration

	// Collectives counts per-algorithm collective traffic, keyed by
	// the algorithm's full name ("allreduce/ring"). Ops counts
	// operation invocations; Messages/Bytes count the algorithm's
	// internal point-to-point traffic (zero for hardware offloads and
	// analytic collectives, which send no individual messages).
	Collectives map[string]CollStats
}

// CollStats is the traffic of one collective algorithm.
type CollStats struct {
	Ops      int64
	Messages int64
	Bytes    int64
}

// Net is the interconnect of one simulated machine partition.
type Net struct {
	mach   *machine.Machine
	torus  *topology.Torus
	tree   *topology.Tree
	fid    Fidelity
	faults *fault.Plan // nil or fault-free: the healthy fast path

	// Effective bandwidths, initialized from the machine catalog and
	// scaled down by SetLinkShare for jobs on fragmented (shared-link)
	// partitions. Every serialization in the package reads these, never
	// the machine fields directly.
	linkBW float64
	injBW  float64

	// varFac holds the per-node delivered-bandwidth factors of an
	// attached fault plan's link variability (SetFaults), nil when
	// variability is off. Immutable after SetFaults, so shard clones
	// share the slice.
	varFac []float64

	// Contention state, indexed by dense link index.
	linkFree []sim.Time
	injFree  []sim.Time      // per node injection channel
	ejFree   []sim.Time      // per node ejection channel
	shmFree  []sim.Time      // per node shared-memory channel
	routeBuf []topology.Link // scratch for routing (single-threaded kernel)

	probe obs.Probe // nil unless observability is on (SetProbe)

	stats Stats
}

// New builds the interconnect for a machine over a torus.
func New(m *machine.Machine, t *topology.Torus, fid Fidelity) *Net {
	n := &Net{mach: m, torus: t, fid: fid, linkBW: m.TorusLinkBW, injBW: m.NICInjectBW}
	if m.HasTree {
		n.tree = topology.NewCollectiveTree(t.Dims.Nodes(), 3)
	}
	nodes := t.Dims.Nodes()
	if fid == Contention || fid == Packet {
		n.linkFree = make([]sim.Time, t.NumLinks())
		n.injFree = make([]sim.Time, nodes)
		n.ejFree = make([]sim.Time, nodes)
	}
	n.shmFree = make([]sim.Time, nodes)
	return n
}

// Torus returns the underlying torus.
func (n *Net) Torus() *topology.Torus { return n.torus }

// SetLinkShare scales the effective torus link bandwidth by the given
// factor in (0, 1]. The facility layer calls it for jobs on fragmented
// XT-style partitions (topology.Partition.LinkShare): a fraction of the
// job's route hops cross links carrying other jobs' traffic, so link
// serialization stretches accordingly. The NIC injection channel is
// private to the node and is not scaled. Share 1 restores the
// machine-catalog bandwidth exactly; isolated BlueGene partitions never
// call it.
func (n *Net) SetLinkShare(share float64) {
	if share <= 0 || share > 1 {
		panic(fmt.Sprintf("network: link share %g outside (0, 1]", share))
	}
	n.linkBW = n.mach.TorusLinkBW * share
}

// Stats returns a copy of the traffic counters.
func (n *Net) Stats() Stats {
	s := n.stats
	if n.stats.Collectives != nil {
		s.Collectives = make(map[string]CollStats, len(n.stats.Collectives))
		for k, v := range n.stats.Collectives {
			s.Collectives[k] = v
		}
	}
	return s
}

// CollOp counts one invocation of the named collective algorithm
// (called once per operation by the MPI layer).
func (n *Net) CollOp(algo string) {
	if n.stats.Collectives == nil {
		n.stats.Collectives = make(map[string]CollStats)
	}
	cs := n.stats.Collectives[algo]
	cs.Ops++
	n.stats.Collectives[algo] = cs
}

// CollMessage attributes one collective-internal message to the named
// algorithm.
func (n *Net) CollMessage(algo string, bytes int) {
	if n.stats.Collectives == nil {
		n.stats.Collectives = make(map[string]CollStats)
	}
	cs := n.stats.Collectives[algo]
	cs.Messages++
	cs.Bytes += int64(bytes)
	n.stats.Collectives[algo] = cs
}

// RecordRecovery accounts one collective-recovery charge: the latency,
// whether the hardware tree was rebuilt around dead leaves, and whether
// hardware offloads were demoted to software torus algorithms (both
// false for a plain software membership agreement, e.g. on a
// sub-communicator or a machine without a tree).
func (n *Net) RecordRecovery(d sim.Duration, rebuilt, demoted bool) {
	n.stats.Recoveries++
	n.stats.RecoveryTime += d
	if rebuilt {
		n.stats.TreeRebuilds++
	}
	if demoted {
		n.stats.HWFallbacks++
	}
}

// RecordOrphan accounts one cancelled point-to-point operation or
// undeliverable message under sender-based logging without restart.
func (n *Net) RecordOrphan() { n.stats.Orphans++ }

// RecordRestart accounts one user-level rank restart: the total
// latency charged to the restarting rank, the replay component of it,
// and the logged messages replayed.
func (n *Net) RecordRestart(total, replay sim.Duration, msgs int, bytes int64) {
	n.stats.Restarts++
	n.stats.RestartTime += total
	n.stats.ReplayTime += replay
	n.stats.Replays += int64(msgs)
	n.stats.ReplayBytes += bytes
}

// ReplayCost prices re-injecting one logged message during a
// sender-based replay: the sender's software overhead plus the wire
// serialization at the effective injection bandwidth. Replay happens
// on an otherwise idle restarting node, so no contention applies at
// any fidelity — which also keeps the charge identical at every shard
// count.
func (n *Net) ReplayCost(bytes int) sim.Duration {
	effBW := math.Min(n.linkBW, n.injBW)
	return sim.Seconds(n.mach.SWLatency + float64(bytes)/effBW)
}

// TreeRecoverable reports whether the collective tree survives losing
// the given nodes (all dead nodes are leaves of the class-route tree).
// False when the partition has no tree, or when a dead node is interior
// and takes its subtree's path to the root with it.
func (n *Net) TreeRecoverable(dead []int) bool {
	return n.tree != nil && n.tree.Recoverable(dead)
}

// treeReprogramS is the control-system cost of rewriting one node's
// class-route registers during a tree rebuild (a service-card RAS
// action, far slower than the tree's own latency).
const treeReprogramS = 25e-6

// TreeRebuildCost returns the simulated latency of reprogramming the
// collective-tree class routes around the given number of newly dead
// nodes: a full-depth route flush plus a per-node register rewrite.
func (n *Net) TreeRebuildCost(dead int) sim.Duration {
	if n.tree == nil {
		return 0
	}
	return sim.Seconds(n.mach.TreeLat*float64(n.tree.Depth) + float64(dead)*treeReprogramS)
}

// Fidelity returns the active torus model.
func (n *Net) Fidelity() Fidelity { return n.fid }

// P2P computes the wire arrival time of a message of the given size
// injected at time now from srcNode to dstNode. MPI software overheads
// are NOT included here — the MPI layer adds them. Messages between
// placements on the same node use the shared-memory path.
//
// Under an active fault plan (SetFaults) the message routes around
// failed links and serializes slower over degraded ones; when the
// failed links partition src from dst, P2P returns a
// *topology.LinkDownError. Without a plan the error is always nil.
func (n *Net) P2P(now sim.Time, srcNode, dstNode, bytes int) (sim.Time, error) {
	if bytes < 0 {
		panic(fmt.Sprintf("network: negative message size %d", bytes))
	}
	n.stats.Messages++
	n.stats.Bytes += int64(bytes)
	if srcNode == dstNode {
		return n.shm(now, srcNode, bytes), nil
	}
	if n.faults.HasLinkFaults() {
		return n.p2pFaulty(now, srcNode, dstNode, bytes)
	}
	hops := n.torus.Hops(srcNode, dstNode)
	hopLat := sim.Seconds(n.mach.TorusHopLat * float64(hops))
	q := n.varFactor(srcNode, dstNode)
	effBW := math.Min(n.linkBW, n.injBW) * q
	wire := sim.Seconds(float64(bytes) / effBW)

	if n.fid == Analytic {
		return now.Add(hopLat + wire), nil
	}
	if n.fid == Packet {
		return n.packetTransfer(now, srcNode, dstNode, bytes), nil
	}

	n.routeBuf = n.torus.AppendRoute(n.routeBuf[:0], srcNode, dstNode)
	route := n.routeBuf
	injSer := sim.Seconds(float64(bytes) / (n.injBW * q))
	linkSer := sim.Seconds(float64(bytes) / (n.linkBW * q))

	// Find the earliest departure such that the injection channel,
	// every link (offset by the head latency to reach it), and the
	// ejection channel are all free.
	depart := now
	if n.injFree[srcNode] > depart {
		depart = n.injFree[srcNode]
	}
	perHop := sim.Seconds(n.mach.TorusHopLat)
	for i, l := range route {
		off := sim.Duration(i) * perHop
		if need := n.linkFree[n.torus.LinkIndex(l)] - sim.Time(off); need > depart {
			depart = need
		}
	}
	if need := n.ejFree[dstNode] - sim.Time(hopLat); need > depart {
		depart = need
	}

	// Reserve the resources.
	n.injFree[srcNode] = depart.Add(injSer)
	for i, l := range route {
		off := sim.Duration(i) * perHop
		n.linkFree[n.torus.LinkIndex(l)] = depart.Add(off + linkSer)
	}
	arrival := depart.Add(hopLat + wire)
	n.ejFree[dstNode] = arrival
	if n.probe != nil {
		n.probeReserve(now, depart, srcNode, bytes, route, perHop, linkSer)
	}
	return arrival, nil
}

// packetTransfer moves a message packet by packet along its
// dimension-ordered route: packet k enters link i when both the packet
// has cleared the previous link (virtual cut-through) and the link has
// finished the previous packet. This is exact per-link FIFO
// queueing — the reference against which the cheaper Contention
// approximation is validated.
func (n *Net) packetTransfer(now sim.Time, srcNode, dstNode, bytes int) sim.Time {
	n.routeBuf = n.torus.AppendRoute(n.routeBuf[:0], srcNode, dstNode)
	route := n.routeBuf
	packets := (bytes + packetBytes - 1) / packetBytes
	if packets == 0 {
		packets = 1 // a header-only packet still traverses the route
	}
	q := n.varFactor(srcNode, dstNode)
	perHop := sim.Seconds(n.mach.TorusHopLat)
	linkSer := sim.Seconds(float64(packetBytes) / (n.linkBW * q))
	injSer := sim.Seconds(float64(packetBytes) / (n.injBW * q))
	lastBytes := bytes - (packets-1)*packetBytes
	if lastBytes <= 0 {
		lastBytes = packetBytes
	}

	var arrival sim.Time
	for k := 0; k < packets; k++ {
		ser := linkSer
		inj := injSer
		if k == packets-1 {
			ser = sim.Seconds(float64(lastBytes) / (n.linkBW * q))
			inj = sim.Seconds(float64(lastBytes) / (n.injBW * q))
		}
		// Injection.
		t := now
		if n.injFree[srcNode] > t {
			t = n.injFree[srcNode]
		}
		if n.probe != nil {
			pb := packetBytes
			if k == packets-1 {
				pb = lastBytes
			}
			n.probe.Inject(srcNode, t, t.Sub(now), pb)
		}
		t = t.Add(inj)
		n.injFree[srcNode] = t
		// Hop through each link.
		for _, l := range route {
			idx := n.torus.LinkIndex(l)
			if n.linkFree[idx] > t {
				t = n.linkFree[idx]
			}
			if n.probe != nil {
				pb := packetBytes
				if k == packets-1 {
					pb = lastBytes
				}
				n.probe.LinkBusy(idx, t, ser, pb)
			}
			t = t.Add(ser)
			n.linkFree[idx] = t
			t = t.Add(perHop)
		}
		// Ejection.
		if n.ejFree[dstNode] > t {
			t = n.ejFree[dstNode]
		}
		n.ejFree[dstNode] = t
		if t > arrival {
			arrival = t
		}
	}
	return arrival
}

// shm transfers a message over the node's shared-memory channel.
func (n *Net) shm(now sim.Time, node, bytes int) sim.Time {
	n.stats.ShmMsgs++
	start := now
	if n.shmFree[node] > start {
		start = n.shmFree[node]
	}
	done := start.Add(sim.Seconds(n.mach.ShmLatency + float64(bytes)/n.mach.ShmBW))
	n.shmFree[node] = done
	return done
}

// HasTree reports whether the machine has a hardware collective tree.
func (n *Net) HasTree() bool { return n.mach.HasTree }

// TreeBcast returns the duration of a hardware-tree broadcast of the
// given payload across the partition: the pipeline fill (tree depth
// times per-stage latency) plus payload streaming at tree bandwidth.
func (n *Net) TreeBcast(bytes int) sim.Duration {
	if !n.mach.HasTree {
		panic("network: TreeBcast on machine without collective tree")
	}
	n.stats.TreeOps++
	fill := n.mach.TreeLat * float64(n.tree.Depth)
	return sim.Seconds(fill + float64(bytes)/n.mach.TreeBW)
}

// TreeAllreduce returns the duration of a hardware-tree allreduce:
// an up-reduction to the root followed by a down-broadcast, each a
// pipelined traversal. The hardware ALU reduces at link rate.
func (n *Net) TreeAllreduce(bytes int) sim.Duration {
	if !n.mach.HasTree {
		panic("network: TreeAllreduce on machine without collective tree")
	}
	n.stats.TreeOps++
	fill := 2 * n.mach.TreeLat * float64(n.tree.Depth)
	return sim.Seconds(fill + 2*float64(bytes)/n.mach.TreeBW)
}

// HWReduceSupported reports whether the tree can reduce the given
// operand kind in hardware. The BlueGene tree ALU handles integers
// and, on BG/P, double precision; single precision falls back to
// software (this asymmetry is visible in the paper's Figure 3a/b).
func (n *Net) HWReduceSupported(doublePrecision bool) bool {
	return n.mach.HasTree && n.mach.TreeHWReduce && doublePrecision
}

// HasBarrierNet reports whether the machine has a global barrier network.
func (n *Net) HasBarrierNet() bool { return n.mach.HasBarrierNet }

// HWBarrier returns the latency of the global interrupt network barrier.
func (n *Net) HWBarrier() sim.Duration {
	if !n.mach.HasBarrierNet {
		panic("network: HWBarrier on machine without barrier network")
	}
	n.stats.BarrierOps++
	return sim.Seconds(n.mach.BarrierLat)
}

// BisectionBW returns the aggregate bandwidth across the torus
// bisection actually delivered to a job in bytes/second — the
// first-order limit for PTRANS-like all-to-all transposes. The
// machine's BisectionDerate accounts for allocator fragmentation (1.0
// on BlueGene's isolated partitions, lower on the Cray XT).
func (n *Net) BisectionBW() float64 {
	return float64(n.torus.BisectionLinks()) * n.linkBW * n.mach.BisectionDerate
}
