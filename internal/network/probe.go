package network

import (
	"bgpsim/internal/obs"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

// SetProbe attaches an observability probe. The probe receives one
// Inject event per message (per packet in Packet fidelity) and one
// LinkBusy event per link reservation; both only exist in the
// Contention and Packet fidelities, because the Analytic model keeps
// no per-link state to observe. Call before the simulation starts; a
// nil probe costs one pointer compare per transfer.
func (n *Net) SetProbe(p obs.Probe) { n.probe = p }

// probeReserve reports one contention-model reservation: the injection
// wait and the uniform per-link serialization of the healthy path. It
// is kept out of line so the probe's interface-call spill slots stay
// off the P2P frame, which sits on every rank goroutine's stack.
//
//go:noinline
func (n *Net) probeReserve(now, depart sim.Time, srcNode, bytes int, route []topology.Link, perHop, linkSer sim.Duration) {
	n.probe.Inject(srcNode, depart, depart.Sub(now), bytes)
	for i, l := range route {
		off := sim.Duration(i) * perHop
		n.probe.LinkBusy(n.torus.LinkIndex(l), depart.Add(off), linkSer, bytes)
	}
}

// probeReserveFaulty is probeReserve for the faulty contention path,
// where each degraded link serializes at its own surviving bandwidth.
//
//go:noinline
func (n *Net) probeReserveFaulty(now, depart sim.Time, srcNode, bytes int, route []topology.Link, perHop sim.Duration) {
	n.probe.Inject(srcNode, depart, depart.Sub(now), bytes)
	for i, l := range route {
		off := sim.Duration(i) * perHop
		f := n.faults.LinkFactor(l, now)
		linkSer := sim.Seconds(float64(bytes) / (n.linkBW * f))
		n.probe.LinkBusy(n.torus.LinkIndex(l), depart.Add(off), linkSer, bytes)
	}
}
