package network

import (
	"math"
	"testing"

	"bgpsim/internal/machine"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

func newBGPNet(t *testing.T, nodes int, fid Fidelity) *Net {
	t.Helper()
	m := machine.Get(machine.BGP)
	tor := topology.NewTorus(topology.DimsForNodes(nodes))
	return New(m, tor, fid)
}

// mustP2P delivers a message that cannot fail (no fault plan, or one
// that leaves src and dst connected).
func mustP2P(t *testing.T, n *Net, now sim.Time, src, dst, bytes int) sim.Time {
	t.Helper()
	arr, err := n.P2P(now, src, dst, bytes)
	if err != nil {
		t.Fatalf("P2P %d->%d: %v", src, dst, err)
	}
	return arr
}

func TestAnalyticP2PTime(t *testing.T) {
	n := newBGPNet(t, 512, Analytic)
	m := machine.Get(machine.BGP)
	src, dst := 0, 1 // one hop in X
	bytes := 425000  // 1 ms at 425 MB/s
	arr := mustP2P(t, n, 0, src, dst, bytes)
	want := sim.Seconds(m.TorusHopLat + float64(bytes)/m.TorusLinkBW)
	if got := arr.Sub(0); got != want {
		t.Errorf("analytic P2P = %v, want %v", got, want)
	}
}

func TestAnalyticScalesWithHops(t *testing.T) {
	n := newBGPNet(t, 512, Analytic)
	tor := n.Torus()
	far := tor.NodeAt(topology.Coord{4, 4, 4}) // 12 hops in 8x8x8
	near := tor.NodeAt(topology.Coord{1, 0, 0})
	tFar := mustP2P(t, n, 0, 0, far, 0).Sub(0)
	tNear := mustP2P(t, n, 0, 0, near, 0).Sub(0)
	if tFar != 12*tNear {
		t.Errorf("12-hop zero-byte time %v != 12x one-hop %v", tFar, tNear)
	}
}

func TestContentionSerializesSharedLink(t *testing.T) {
	n := newBGPNet(t, 512, Contention)
	bytes := 425000 // 1ms serialization on the link
	// Two messages over the same first link at the same time: the
	// second must queue behind the first.
	a1 := mustP2P(t, n, 0, 0, 1, bytes)
	a2 := mustP2P(t, n, 0, 0, 1, bytes)
	if a2.Sub(a1) < sim.Seconds(float64(bytes)/machine.Get(machine.BGP).TorusLinkBW)/2 {
		t.Errorf("second message arrived %v after first; expected ~1ms of queuing", a2.Sub(a1))
	}
	if a2 <= a1 {
		t.Error("shared-link messages did not serialize")
	}
}

func TestContentionDisjointPathsDoNotInterfere(t *testing.T) {
	n := newBGPNet(t, 512, Contention)
	tor := n.Torus()
	bytes := 425000
	// Message 1: 0 -> +X neighbour. Message 2: between nodes far away.
	a := tor.NodeAt(topology.Coord{4, 4, 4})
	b := tor.NodeAt(topology.Coord{5, 4, 4})
	t1 := mustP2P(t, n, 0, 0, 1, bytes)
	t2 := mustP2P(t, n, 0, a, b, bytes)
	if t2.Sub(0) != t1.Sub(0) {
		t.Errorf("disjoint transfers differ: %v vs %v", t1.Sub(0), t2.Sub(0))
	}
}

func TestContentionInjectionShared(t *testing.T) {
	n := newBGPNet(t, 512, Contention)
	bytes := 1 << 20
	// Two messages from the same source to different directions share
	// the injection channel.
	t1 := mustP2P(t, n, 0, 0, 1, bytes)
	tor := n.Torus()
	up := tor.NodeAt(topology.Coord{0, 1, 0})
	t2 := mustP2P(t, n, 0, 0, up, bytes)
	if t2 <= t1 {
		t.Error("same-source messages did not share injection bandwidth")
	}
}

func TestShmPath(t *testing.T) {
	n := newBGPNet(t, 512, Contention)
	m := machine.Get(machine.BGP)
	bytes := 3000
	arr := mustP2P(t, n, 0, 7, 7, bytes)
	want := sim.Seconds(m.ShmLatency + float64(bytes)/m.ShmBW)
	if arr.Sub(0) != want {
		t.Errorf("shm transfer = %v, want %v", arr.Sub(0), want)
	}
	if n.Stats().ShmMsgs != 1 {
		t.Errorf("shm msgs = %d, want 1", n.Stats().ShmMsgs)
	}
}

func TestTreeBcastFasterThanTorusForLargePayloads(t *testing.T) {
	// The tree pipeline beats a multi-round software broadcast; just
	// check basic magnitudes: 32 KB over 850 MB/s is ~38us + fill.
	n := newBGPNet(t, 1024, Analytic)
	d := n.TreeBcast(32 << 10)
	if d < sim.Microseconds(38) || d > sim.Microseconds(60) {
		t.Errorf("tree bcast of 32KB = %v, want ~40-50us", d)
	}
}

func TestTreeAllreduceTwiceBcastCost(t *testing.T) {
	n := newBGPNet(t, 1024, Analytic)
	b := n.TreeBcast(8 << 10)
	ar := n.TreeAllreduce(8 << 10)
	if ar != 2*b {
		t.Errorf("allreduce %v != 2x bcast %v", ar, b)
	}
}

func TestHWReduceSupport(t *testing.T) {
	bgp := newBGPNet(t, 512, Analytic)
	if !bgp.HWReduceSupported(true) {
		t.Error("BG/P should reduce doubles in hardware")
	}
	if bgp.HWReduceSupported(false) {
		t.Error("BG/P should NOT reduce single precision in hardware")
	}
	xt := New(machine.Get(machine.XT4QC), topology.NewTorus(topology.DimsForNodes(512)), Analytic)
	if xt.HWReduceSupported(true) {
		t.Error("XT has no tree")
	}
	if xt.HasTree() || xt.HasBarrierNet() {
		t.Error("XT has no tree or barrier network")
	}
}

func TestHWBarrier(t *testing.T) {
	n := newBGPNet(t, 512, Analytic)
	if d := n.HWBarrier(); d != sim.Seconds(machine.Get(machine.BGP).BarrierLat) {
		t.Errorf("barrier = %v", d)
	}
}

func TestTreeOnXTPanics(t *testing.T) {
	xt := New(machine.Get(machine.XT3), topology.NewTorus(topology.DimsForNodes(64)), Analytic)
	defer func() {
		if recover() == nil {
			t.Error("expected panic using tree on XT3")
		}
	}()
	xt.TreeBcast(8)
}

func TestNegativeSizePanics(t *testing.T) {
	n := newBGPNet(t, 64, Analytic)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative size")
		}
	}()
	mustP2P(t, n, 0, 0, 1, -1)
}

func TestStatsAccumulate(t *testing.T) {
	n := newBGPNet(t, 64, Analytic)
	mustP2P(t, n, 0, 0, 1, 100)
	mustP2P(t, n, 0, 1, 2, 200)
	s := n.Stats()
	if s.Messages != 2 || s.Bytes != 300 {
		t.Errorf("stats = %+v", s)
	}
}

func TestBandwidthNeverExceedsLinkCapacity(t *testing.T) {
	// Property: k back-to-back messages over one link take at least
	// k * bytes / linkBW total.
	n := newBGPNet(t, 64, Contention)
	m := machine.Get(machine.BGP)
	const k = 20
	const bytes = 100000
	var last sim.Time
	for i := 0; i < k; i++ {
		last = mustP2P(t, n, 0, 0, 1, bytes)
	}
	minTotal := sim.Seconds(float64(k*bytes) / m.TorusLinkBW)
	if last.Sub(0) < minTotal {
		t.Errorf("%d msgs finished in %v, below serialization floor %v", k, last.Sub(0), minTotal)
	}
}

func TestContentionMatchesAnalyticWhenUncontended(t *testing.T) {
	// With a single message in the network, the contention model's
	// arrival should be close to the analytic model (same latency,
	// bandwidth limited by min(link, NIC)).
	na := newBGPNet(t, 512, Analytic)
	for _, bytes := range []int{0, 64, 4096, 1 << 20} {
		nc := newBGPNet(t, 512, Contention)
		ta := mustP2P(t, na, 0, 0, 5, bytes).Sub(0)
		tc := mustP2P(t, nc, 0, 0, 5, bytes).Sub(0)
		if ta != tc {
			t.Errorf("bytes=%d: analytic %v != uncontended %v", bytes, ta, tc)
		}
	}
}

func TestBisectionBW(t *testing.T) {
	n := newBGPNet(t, 2048, Analytic) // 8x8x32
	m := machine.Get(machine.BGP)
	want := float64(8*8*2*2) * m.TorusLinkBW
	if got := n.BisectionBW(); got != want {
		t.Errorf("bisection BW = %g, want %g", got, want)
	}
}

func TestPacketModeUncontendedCloseToContention(t *testing.T) {
	// For a single large message, the packet model's arrival should be
	// within ~20% of the contention approximation (store-and-forward
	// granularity adds a little).
	for _, bytes := range []int{4096, 1 << 20} {
		nc := newBGPNet(t, 64, Contention)
		np := newBGPNet(t, 64, Packet)
		tc := mustP2P(t, nc, 0, 0, 5, bytes).Sub(0).Seconds()
		tp := mustP2P(t, np, 0, 0, 5, bytes).Sub(0).Seconds()
		ratio := tp / tc
		if ratio < 0.8 || ratio > 1.3 {
			t.Errorf("bytes=%d: packet %.3g s vs contention %.3g s: ratio %.3f", bytes, tp, tc, ratio)
		}
	}
}

func TestPacketModeSharesLinkFairly(t *testing.T) {
	// Two messages interleaving on the same link: the second finishes
	// roughly when 2x the data has been serialized.
	n := newBGPNet(t, 64, Packet)
	m := machine.Get(machine.BGP)
	bytes := 512 << 10
	mustP2P(t, n, 0, 0, 1, bytes)
	t2 := mustP2P(t, n, 0, 0, 1, bytes)
	floor := sim.Seconds(2 * float64(bytes) / m.TorusLinkBW)
	if t2.Sub(0) < floor {
		t.Errorf("two messages finished in %v, below serialization floor %v", t2.Sub(0), floor)
	}
}

func TestPacketZeroByteStillTraverses(t *testing.T) {
	n := newBGPNet(t, 64, Packet)
	if got := mustP2P(t, n, 0, 0, 1, 0).Sub(0); got <= 0 {
		t.Errorf("zero-byte packet transfer took %v", got)
	}
}

func TestFidelityStrings(t *testing.T) {
	if Analytic.String() != "analytic" || Contention.String() != "contention" || Packet.String() != "packet" {
		t.Error("fidelity names wrong")
	}
}

func TestSetLinkShare(t *testing.T) {
	m := machine.Get(machine.BGP)
	tor := topology.NewTorus(topology.Dims{4, 4, 4})
	bytes := 1 << 20

	healthy := New(m, tor, Analytic)
	a1, err := healthy.P2P(0, 0, 1, bytes)
	if err != nil {
		t.Fatal(err)
	}

	shared := New(m, tor, Analytic)
	shared.SetLinkShare(0.5)
	a2, err := shared.P2P(0, 0, 1, bytes)
	if err != nil {
		t.Fatal(err)
	}
	if a2 <= a1 {
		t.Errorf("half link share arrival %v not later than full share %v", a2, a1)
	}
	want := sim.Seconds(m.TorusHopLat + float64(bytes)/math.Min(m.TorusLinkBW*0.5, m.NICInjectBW))
	if got := sim.Duration(a2); got != want {
		t.Errorf("derated arrival = %v, want %v", got, want)
	}
	if healthy.BisectionBW() != 2*shared.BisectionBW() {
		t.Errorf("bisection %g vs derated %g, want exactly 2x", healthy.BisectionBW(), shared.BisectionBW())
	}
	// Share 1 must restore the exact catalog value (determinism
	// contract: default-path arithmetic is bitwise unchanged).
	shared.SetLinkShare(1)
	a3, err := shared.P2P(0, 0, 1, bytes)
	if err != nil {
		t.Fatal(err)
	}
	if a3 != a1 {
		t.Errorf("share reset: arrival %v, want the healthy %v", a3, a1)
	}

	defer func() {
		if recover() == nil {
			t.Error("share outside (0,1] should panic")
		}
	}()
	shared.SetLinkShare(0)
}
