package network

import (
	"errors"
	"testing"

	"bgpsim/internal/fault"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

// TestEmptyPlanIsByteIdentical pins the healthy-path contract: a plan
// with no link faults attached must not change any arrival time.
func TestEmptyPlanIsByteIdentical(t *testing.T) {
	for _, fid := range []Fidelity{Analytic, Contention, Packet} {
		clean := newBGPNet(t, 64, fid)
		planned := newBGPNet(t, 64, fid)
		planned.SetFaults(fault.NewPlan(1))
		for _, dst := range []int{1, 5, 33} {
			a := mustP2P(t, clean, 0, 0, dst, 40000)
			b := mustP2P(t, planned, 0, 0, dst, 40000)
			if a != b {
				t.Errorf("%v: empty plan changed arrival %v -> %v", fid, a, b)
			}
		}
	}
}

// TestDegradedLinkSlowsTransfer: traffic over a half-bandwidth link
// takes longer in every fidelity; the bottleneck link governs.
func TestDegradedLinkSlowsTransfer(t *testing.T) {
	bytes := 425000 // 1 ms at full link rate
	for _, fid := range []Fidelity{Analytic, Contention, Packet} {
		healthy := newBGPNet(t, 64, fid)
		hArr := mustP2P(t, healthy, 0, 0, 1, bytes)

		degraded := newBGPNet(t, 64, fid)
		plan := fault.NewPlan(1)
		route := degraded.Torus().Route(0, 1)
		if err := plan.AddLinkFault(fault.LinkFault{Link: route[0], BWFactor: 0.5}); err != nil {
			t.Fatal(err)
		}
		degraded.SetFaults(plan)
		dArr := mustP2P(t, degraded, 0, 0, 1, bytes)

		if dArr <= hArr {
			t.Errorf("%v: degraded-link arrival %v not after healthy %v", fid, dArr, hArr)
		}
		// At half bandwidth the serialization roughly doubles.
		ratio := dArr.Sub(0).Seconds() / hArr.Sub(0).Seconds()
		if ratio < 1.5 || ratio > 2.5 {
			t.Errorf("%v: degradation ratio %.2f, want ~2", fid, ratio)
		}
	}
}

// TestFailedLinkReroutes: with one link down, traffic detours and
// still arrives — later than the healthy direct route.
func TestFailedLinkReroutes(t *testing.T) {
	bytes := 40000
	for _, fid := range []Fidelity{Analytic, Contention, Packet} {
		healthy := newBGPNet(t, 64, fid)
		hArr := mustP2P(t, healthy, 0, 0, 1, bytes)

		broken := newBGPNet(t, 64, fid)
		plan := fault.NewPlan(1)
		plan.FailLink(broken.Torus().Route(0, 1)[0], 0)
		broken.SetFaults(plan)
		bArr, err := broken.P2P(0, 0, 1, bytes)
		if err != nil {
			t.Fatalf("%v: reroute failed: %v", fid, err)
		}
		if bArr <= hArr {
			t.Errorf("%v: detour arrival %v not after direct %v", fid, bArr, hArr)
		}
	}
}

// TestPartitionReturnsLinkDownError: isolating the destination node
// yields the typed error, not a hang or a bogus arrival.
func TestPartitionReturnsLinkDownError(t *testing.T) {
	n := newBGPNet(t, 64, Contention)
	plan := fault.NewPlan(1)
	plan.IsolateNode(n.Torus(), 5)
	n.SetFaults(plan)
	_, err := n.P2P(0, 0, 5, 100)
	var lde *topology.LinkDownError
	if !errors.As(err, &lde) {
		t.Fatalf("err = %v, want *topology.LinkDownError", err)
	}
	if lde.Src != 0 || lde.Dst != 5 {
		t.Errorf("LinkDownError = %+v, want Src=0 Dst=5", lde)
	}
	// Healthy pairs still communicate.
	if _, err := n.P2P(0, 0, 9, 100); err != nil {
		t.Errorf("healthy pair failed: %v", err)
	}
}

// TestFaultWindowExpires: a transient degradation affects messages
// inside its window only.
func TestFaultWindowExpires(t *testing.T) {
	mkNet := func() *Net { return newBGPNet(t, 64, Analytic) }
	bytes := 425000
	windowEnd := sim.Time(sim.Second)

	n := mkNet()
	plan := fault.NewPlan(1)
	if err := plan.AddLinkFault(fault.LinkFault{
		Link: n.Torus().Route(0, 1)[0], Until: windowEnd, BWFactor: 0.25,
	}); err != nil {
		t.Fatal(err)
	}
	n.SetFaults(plan)

	inside := mustP2P(t, n, 0, 0, 1, bytes).Sub(0)
	after := mustP2P(t, n, windowEnd, 0, 1, bytes).Sub(windowEnd)

	healthy := mustP2P(t, mkNet(), 0, 0, 1, bytes).Sub(0)
	if inside <= healthy {
		t.Errorf("in-window transfer %v not slower than healthy %v", inside, healthy)
	}
	if after != healthy {
		t.Errorf("post-window transfer %v != healthy %v", after, healthy)
	}
}
