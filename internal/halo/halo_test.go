package halo

import (
	"testing"

	"bgpsim/internal/machine"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

func opts(words int, p Protocol) Options {
	return Options{
		Machine:    machine.BGP,
		Mode:       machine.VN,
		GridX:      16,
		GridY:      8,
		Mapping:    topology.MapTXYZ,
		Protocol:   p,
		Words:      words,
		Iterations: 3,
	}
}

func TestRunBasic(t *testing.T) {
	d, err := Run(opts(100, IsendIrecv))
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("non-positive exchange time")
	}
	// An exchange is a handful of small messages: microseconds, not ms.
	if d > 5*sim.Millisecond {
		t.Errorf("exchange of 100 words took %v", d)
	}
}

func TestProtocolsAllComplete(t *testing.T) {
	for _, p := range []Protocol{IsendIrecv, SendRecv, IrecvSend} {
		if _, err := Run(opts(10, p)); err != nil {
			t.Errorf("%v: %v", p, err)
		}
	}
}

func TestSendRecvSlowerForSmallHalos(t *testing.T) {
	// The paper: MPI_SENDRECV is slower than the nonblocking variants
	// for certain halo sizes (it serializes the two directions).
	di, err := Run(opts(10, IsendIrecv))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Run(opts(10, SendRecv))
	if err != nil {
		t.Fatal(err)
	}
	if ds <= di {
		t.Errorf("SENDRECV %v should be slower than ISEND/IRECV %v for small halos", ds, di)
	}
}

func TestMappingMattersForLargeHalos(t *testing.T) {
	// Figure 2(c)/(d): mapping is unimportant for small halos but
	// matters for large ones on big grids.
	spread := func(words int) float64 {
		var lo, hi sim.Duration
		for _, m := range topology.PaperHALOMappings {
			o := opts(words, IsendIrecv)
			o.GridX, o.GridY = 32, 16 // 512 ranks
			o.Mapping = m
			d, err := Run(o)
			if err != nil {
				t.Fatal(err)
			}
			if lo == 0 || d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		return hi.Seconds() / lo.Seconds()
	}
	small := spread(8)
	large := spread(20000)
	if large <= small {
		t.Errorf("mapping spread should grow with halo size: small %.3f, large %.3f", small, large)
	}
	if large < 1.15 {
		t.Errorf("large-halo mapping spread = %.3f, want noticeable (>1.15)", large)
	}
}

func TestProtocolString(t *testing.T) {
	if IsendIrecv.String() != "MPI_ISEND/IRECV" || SendRecv.String() != "MPI_SENDRECV" {
		t.Error("protocol names wrong")
	}
	if Protocol(99).String() == "" {
		t.Error("unknown protocol should format")
	}
}

func TestBadGrid(t *testing.T) {
	o := opts(10, IsendIrecv)
	o.GridX = 0
	if _, err := Run(o); err == nil {
		t.Error("expected error for bad grid")
	}
}

func TestBestMapping(t *testing.T) {
	o := opts(5000, IsendIrecv)
	m, d, err := BestMapping(o, []topology.Mapping{topology.MapTXYZ, topology.MapZYXT})
	if err != nil {
		t.Fatal(err)
	}
	if m == "" || d <= 0 {
		t.Errorf("best = %q %v", m, d)
	}
}

func TestSMPModeRuns(t *testing.T) {
	o := Options{
		Machine: machine.BGP, Mode: machine.SMP,
		GridX: 8, GridY: 4, Mapping: topology.MapXYZT,
		Protocol: IsendIrecv, Words: 200, Iterations: 2,
	}
	if _, err := Run(o); err != nil {
		t.Fatal(err)
	}
}

func TestCostGrowsWithWords(t *testing.T) {
	small, err := Run(opts(10, IsendIrecv))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(opts(50000, IsendIrecv))
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Errorf("cost should grow with halo size: %v vs %v", small, big)
	}
}

func TestPersistentProtocol(t *testing.T) {
	d, err := Run(opts(100, Persistent))
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("no exchange time")
	}
	// Persistent channels pay reduced software overhead: fastest of
	// the protocols for latency-bound halos.
	di, err := Run(opts(100, IsendIrecv))
	if err != nil {
		t.Fatal(err)
	}
	if d >= di {
		t.Errorf("persistent %v should beat isend/irecv %v for small halos", d, di)
	}
	if Persistent.String() != "MPI persistent" {
		t.Error("name wrong")
	}
}
