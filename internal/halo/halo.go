// Package halo implements the Wallcraft HALO benchmark the paper uses
// in Figure 2: a 2-D virtual process grid exchanging a 1-2 row/column
// halo (N words north/west, 2N words south/east) under different MPI
// protocols, process mappings, and grid shapes.
package halo

import (
	"fmt"

	"bgpsim/internal/core"
	"bgpsim/internal/fault"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/obs"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
	"bgpsim/internal/trace"
)

// Protocol selects the messaging implementation of the exchange.
type Protocol int

// The protocols compared in Figure 2(a)/(b).
const (
	// IsendIrecv posts all receives and sends, then waits on all.
	IsendIrecv Protocol = iota
	// SendRecv uses two MPI_SENDRECV calls per phase.
	SendRecv
	// IrecvSend posts receives first, then blocking sends.
	IrecvSend
	// Persistent uses MPI_Send_init/Recv_init channels set up once.
	Persistent
)

// String names the protocol as the paper does.
func (p Protocol) String() string {
	switch p {
	case IsendIrecv:
		return "MPI_ISEND/IRECV"
	case SendRecv:
		return "MPI_SENDRECV"
	case IrecvSend:
		return "MPI_IRECV/SEND"
	case Persistent:
		return "MPI persistent"
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// Options configures one HALO run.
type Options struct {
	Machine    machine.ID
	Mode       machine.Mode
	GridX      int // virtual process grid columns
	GridY      int // virtual process grid rows
	Mapping    topology.Mapping
	Protocol   Protocol
	Words      int // halo size: N 32-bit words
	Iterations int // exchange repetitions (default 10)

	// Coll optionally forces collective algorithms (the benchmark's
	// own barriers and any collective protocol variants); see
	// mpi.ParseCollSpec.
	Coll map[string]string

	// Faults optionally injects a deterministic fault plan
	// (internal/fault): link degradations and failures perturb the
	// exchange, node kills abort the run with *mpi.RankFailure — or,
	// with recovery enabled, drop the dead ranks from the benchmark's
	// collectives.
	Faults *fault.Plan

	// Trace, when non-nil, records message and collective events.
	Trace *trace.Buffer

	// Probe, when non-nil, streams observability events (usually into
	// an *obs.Recorder) for timelines, profiles and link telemetry.
	Probe obs.Probe

	// Analytic runs the exchange under the analytic network model
	// instead of the default link-contention model. The analytic model
	// loses the congestion effects the benchmark exists to show, but
	// it is the only fidelity the sharded kernel accepts, so it is the
	// mode for full-machine-scale capacity runs.
	Analytic bool

	// Shards, when >= 1, partitions the ranks into that many
	// torus-contiguous domains simulated by the conservative parallel
	// kernel (see mpi.Config.Shards). Requires Analytic; otherwise the
	// run falls back to the serial kernel.
	Shards int
}

// wordBytes is the benchmark's 32-bit word.
const wordBytes = 4

// Run executes the benchmark and returns the mean time per complete
// halo exchange.
func Run(o Options) (sim.Duration, error) {
	d, _, err := RunResult(o)
	return d, err
}

// RunResult is Run returning the full simulation result as well, for
// callers that inspect traffic counters, dropped trace events, or the
// attached observability probe.
func RunResult(o Options) (sim.Duration, *mpi.Result, error) {
	cfg, program, total, err := build(o)
	if err != nil {
		return 0, nil, err
	}
	res, err := mpi.Execute(cfg, program)
	if err != nil {
		return 0, nil, err
	}
	return *total, res, nil
}

// Session is a HALO run in stepwise execution (see mpi.Running): the
// exchange can be advanced to chosen points in virtual time, paused,
// and finished, producing byte-for-byte the result a straight
// RunResult call returns. Sessions always run on the serial kernel —
// Options.Shards is ignored (the sharded coordinator cannot pause at
// an arbitrary time); output is identical either way by the sharded
// kernel's determinism contract.
type Session struct {
	run   *mpi.Running
	total *sim.Duration
}

// Start begins a stepwise HALO run without firing any event.
func Start(o Options) (*Session, error) {
	o.Shards = 0
	cfg, program, total, err := build(o)
	if err != nil {
		return nil, err
	}
	run, err := mpi.Begin(cfg, program)
	if err != nil {
		return nil, err
	}
	return &Session{run: run, total: total}, nil
}

// StepTo fires every pending event with a timestamp strictly below t,
// then pauses (see mpi.Running.StepTo).
func (s *Session) StepTo(t sim.Time) error { return s.run.StepTo(t) }

// Now returns the paused run's current virtual time.
func (s *Session) Now() sim.Time { return s.run.Now() }

// Events returns the number of simulation events fired so far.
func (s *Session) Events() uint64 { return s.run.Events() }

// Done reports whether the run has completed.
func (s *Session) Done() bool { return s.run.Done() }

// Finish runs the exchange to completion and returns the mean time per
// exchange plus the full result, exactly as RunResult would have.
func (s *Session) Finish() (sim.Duration, *mpi.Result, error) {
	res, err := s.run.Finish()
	if err != nil {
		return 0, nil, err
	}
	return *s.total, res, nil
}

// build constructs the run's config and rank program. The returned
// duration pointer receives rank 0's mean time per exchange when the
// program completes.
func build(o Options) (mpi.Config, func(*mpi.Rank), *sim.Duration, error) {
	if o.GridX <= 0 || o.GridY <= 0 {
		return mpi.Config{}, nil, nil, fmt.Errorf("halo: bad grid %dx%d", o.GridX, o.GridY)
	}
	iters := o.Iterations
	if iters <= 0 {
		iters = 10
	}
	ranks := o.GridX * o.GridY
	cfg := core.PartitionConfig(o.Machine, o.Mode, ranks)
	cfg.Mapping = o.Mapping
	cfg.Fidelity = network.Contention
	if o.Analytic {
		cfg.Fidelity = network.Analytic
	}
	cfg.Shards = o.Shards
	cfg.Coll = o.Coll
	cfg.Faults = o.Faults
	cfg.Trace = o.Trace
	cfg.Probe = o.Probe

	n := o.Words * wordBytes
	nx, ny := o.GridX, o.GridY
	total := new(sim.Duration)
	program := func(r *mpi.Rank) {
		me := r.ID()
		x, y := me%nx, me/nx
		wrap := func(v, m int) int { return ((v % m) + m) % m }
		at := func(x, y int) int { return wrap(y, ny)*nx + wrap(x, nx) }
		north := at(x, y-1)
		south := at(x, y+1)
		west := at(x-1, y)
		east := at(x+1, y)

		if o.Protocol == Persistent {
			// Channels are established once, before timing begins.
			ns := []*mpi.PersistentRequest{
				r.RecvInit(south, 1), r.RecvInit(north, 2),
				r.SendInit(north, n, 1), r.SendInit(south, 2*n, 2),
			}
			we := []*mpi.PersistentRequest{
				r.RecvInit(east, 3), r.RecvInit(west, 4),
				r.SendInit(west, n, 3), r.SendInit(east, 2*n, 4),
			}
			r.World().Barrier(r)
			t0 := r.Now()
			for it := 0; it < iters; it++ {
				mpi.StartAll(ns...)
				mpi.WaitAllPersistent(ns...)
				mpi.StartAll(we...)
				mpi.WaitAllPersistent(we...)
			}
			if me == 0 {
				*total = r.Now().Sub(t0) / sim.Duration(iters)
			}
			return
		}

		r.World().Barrier(r)
		t0 := r.Now()
		for it := 0; it < iters; it++ {
			exchangePhase(r, o.Protocol, north, n, south, 2*n, 10+it*4)
			exchangePhase(r, o.Protocol, west, n, east, 2*n, 12+it*4)
		}
		if me == 0 {
			*total = r.Now().Sub(t0) / sim.Duration(iters)
		}
	}
	return cfg, program, total, nil
}

// exchangePhase sends small to the `less` neighbour and large to the
// `more` neighbour, receiving the mirror amounts, and completes before
// returning (the benchmark's two-phase structure).
func exchangePhase(r *mpi.Rank, p Protocol, less, smallBytes, more, largeBytes, tag int) {
	switch p {
	case IsendIrecv:
		r1 := r.Irecv(more, tag)
		r2 := r.Irecv(less, tag+1)
		s1 := r.Isend(less, smallBytes, tag)
		s2 := r.Isend(more, largeBytes, tag+1)
		r.Waitall(r1, r2, s1, s2)
	case SendRecv:
		r.Sendrecv(less, smallBytes, tag, more, tag)
		r.Sendrecv(more, largeBytes, tag+1, less, tag+1)
	case IrecvSend:
		r1 := r.Irecv(more, tag)
		r2 := r.Irecv(less, tag+1)
		r.Send(less, smallBytes, tag)
		r.Send(more, largeBytes, tag+1)
		r.Waitall(r1, r2)
	default:
		panic(fmt.Sprintf("halo: unknown protocol %d", p))
	}
}

// BestMapping runs the benchmark under each candidate mapping and
// returns the fastest one with its time.
func BestMapping(o Options, candidates []topology.Mapping) (topology.Mapping, sim.Duration, error) {
	var best topology.Mapping
	var bestT sim.Duration
	for _, m := range candidates {
		o.Mapping = m
		t, err := Run(o)
		if err != nil {
			return "", 0, err
		}
		if best == "" || t < bestT {
			best, bestT = m, t
		}
	}
	return best, bestT, nil
}
