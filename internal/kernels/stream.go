package kernels

import "fmt"

// StreamTriadBytes returns the main-memory traffic of one STREAM triad
// pass a = b + s*c over n elements: three 8-byte streams.
func StreamTriadBytes(n int) float64 {
	return 24 * float64(n)
}

// StreamTriadFlops returns the flop count of one triad pass: a
// multiply and an add per element.
func StreamTriadFlops(n int) float64 {
	return 2 * float64(n)
}

// StreamTriad performs a = b + scalar*c.
func StreamTriad(a, b, c []float64, scalar float64) {
	if len(a) != len(b) || len(b) != len(c) {
		panic(fmt.Sprintf("kernels: triad length mismatch %d/%d/%d", len(a), len(b), len(c)))
	}
	for i := range a {
		a[i] = b[i] + scalar*c[i]
	}
}

// PTRANSBytes returns the memory traffic of A = A^T + beta*A for an
// n x n matrix: read and write of both operands.
func PTRANSBytes(n int) float64 {
	return 3 * 8 * float64(n) * float64(n)
}

// Transpose writes the transpose of a into dst (both n x m / m x n),
// with cache blocking.
func Transpose(dst, a *Matrix) {
	if dst.Rows != a.Cols || dst.Cols != a.Rows {
		panic(fmt.Sprintf("kernels: transpose shape mismatch %dx%d -> %dx%d",
			a.Rows, a.Cols, dst.Rows, dst.Cols))
	}
	const blk = 32
	for ii := 0; ii < a.Rows; ii += blk {
		im := min(ii+blk, a.Rows)
		for jj := 0; jj < a.Cols; jj += blk {
			jm := min(jj+blk, a.Cols)
			for i := ii; i < im; i++ {
				for j := jj; j < jm; j++ {
					dst.Set(j, i, a.At(i, j))
				}
			}
		}
	}
}

// RandomAccessUpdates returns the update count the HPCC RandomAccess
// benchmark performs on a table of 2^logSize words: 4x the table size.
func RandomAccessUpdates(logSize int) int64 {
	return 4 << uint(logSize)
}

// RandomAccess runs the GUPS update loop on a table of 2^logSize
// 64-bit words for the given number of updates, using the benchmark's
// LCG-style random stream, and returns the table (for verification).
func RandomAccess(logSize int, updates int64) []uint64 {
	size := 1 << uint(logSize)
	table := make([]uint64, size)
	for i := range table {
		table[i] = uint64(i)
	}
	mask := uint64(size - 1)
	ran := uint64(1)
	for i := int64(0); i < updates; i++ {
		// HPCC's polynomial random stream: shift with conditional XOR.
		ran = (ran << 1) ^ (uint64(int64(ran)>>63) & 0x7)
		table[ran&mask] ^= ran
	}
	return table
}
