package kernels

import (
	"fmt"
	"math"
)

// SparseMatrix is a square matrix in compressed sparse row form, used
// by the conjugate-gradient solvers that model POP's barotropic phase.
type SparseMatrix struct {
	N      int
	RowPtr []int
	ColIdx []int
	Values []float64
}

// MatVec computes y = A x.
func (a *SparseMatrix) MatVec(y, x []float64) {
	if len(x) != a.N || len(y) != a.N {
		panic(fmt.Sprintf("kernels: matvec size mismatch n=%d x=%d y=%d", a.N, len(x), len(y)))
	}
	for i := 0; i < a.N; i++ {
		s := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Values[k] * x[a.ColIdx[k]]
		}
		y[i] = s
	}
}

// Laplacian2D builds the standard 5-point Laplacian on an nx x ny grid
// with Dirichlet boundaries — a symmetric positive-definite system of
// the same family as POP's barotropic operator.
func Laplacian2D(nx, ny int) *SparseMatrix {
	n := nx * ny
	a := &SparseMatrix{N: n, RowPtr: make([]int, 1, n+1)}
	idx := func(i, j int) int { return i*ny + j }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			add := func(col int, v float64) {
				a.ColIdx = append(a.ColIdx, col)
				a.Values = append(a.Values, v)
			}
			add(idx(i, j), 4)
			if i > 0 {
				add(idx(i-1, j), -1)
			}
			if i < nx-1 {
				add(idx(i+1, j), -1)
			}
			if j > 0 {
				add(idx(i, j-1), -1)
			}
			if j < ny-1 {
				add(idx(i, j+1), -1)
			}
			a.RowPtr = append(a.RowPtr, len(a.ColIdx))
		}
	}
	return a
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func axpy(y []float64, alpha float64, x []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// CGResult reports a conjugate-gradient solve.
type CGResult struct {
	X          []float64
	Iterations int
	Residual   float64
	// Reductions counts the global dot products the algorithm needed —
	// the latency-critical operations in POP's barotropic phase.
	Reductions int
}

// CG solves A x = b with the standard conjugate-gradient iteration.
// The standard formulation needs two separate global reductions per
// iteration.
func CG(a *SparseMatrix, b []float64, tol float64, maxIter int) *CGResult {
	n := a.N
	x := make([]float64, n)
	r := make([]float64, n)
	copy(r, b)
	p := make([]float64, n)
	copy(p, b)
	ap := make([]float64, n)
	rr := dot(r, r)
	reductions := 1
	bnorm := math.Sqrt(rr)
	if bnorm == 0 {
		return &CGResult{X: x, Residual: 0, Reductions: reductions}
	}
	for it := 1; it <= maxIter; it++ {
		a.MatVec(ap, p)
		pap := dot(p, ap)
		reductions++
		alpha := rr / pap
		axpy(x, alpha, p)
		axpy(r, -alpha, ap)
		rrNew := dot(r, r)
		reductions++
		if math.Sqrt(rrNew)/bnorm < tol {
			return &CGResult{X: x, Iterations: it, Residual: math.Sqrt(rrNew) / bnorm, Reductions: reductions}
		}
		beta := rrNew / rr
		rr = rrNew
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
	return &CGResult{X: x, Iterations: maxIter, Residual: math.Sqrt(rr) / bnorm, Reductions: reductions}
}

// CGChronopoulosGear solves A x = b with the Chronopoulos-Gear s-step
// variant used by POP (Figure 4's "C-G" solver): it restructures the
// recurrences so each iteration needs a single combined global
// reduction instead of two, halving the latency-bound collective count
// at the cost of one extra vector update.
func CGChronopoulosGear(a *SparseMatrix, b []float64, tol float64, maxIter int) *CGResult {
	n := a.N
	x := make([]float64, n)
	r := make([]float64, n)
	copy(r, b)
	u := make([]float64, n) // u = A r
	p := make([]float64, n)
	s := make([]float64, n)
	bnorm := math.Sqrt(dot(b, b))
	reductions := 1
	if bnorm == 0 {
		return &CGResult{X: x, Residual: 0, Reductions: reductions}
	}
	a.MatVec(u, r)
	// Combined reduction: gamma = (r,r) and delta = (r, Ar) together.
	gamma := dot(r, r)
	delta := dot(r, u)
	reductions++ // one combined MPI_Allreduce carries both scalars
	alpha := gamma / delta
	beta := 0.0
	for it := 1; it <= maxIter; it++ {
		for i := range p {
			p[i] = r[i] + beta*p[i]
			s[i] = u[i] + beta*s[i]
		}
		axpy(x, alpha, p)
		axpy(r, -alpha, s)
		a.MatVec(u, r)
		gammaNew := dot(r, r)
		deltaNew := dot(r, u)
		reductions++ // the single fused reduction per iteration
		if math.Sqrt(gammaNew)/bnorm < tol {
			return &CGResult{X: x, Iterations: it, Residual: math.Sqrt(gammaNew) / bnorm, Reductions: reductions}
		}
		beta = gammaNew / gamma
		gamma = gammaNew
		delta = deltaNew
		alpha = gamma / (delta - beta*gamma/alpha)
	}
	return &CGResult{X: x, Iterations: maxIter, Residual: math.Sqrt(gamma) / bnorm, Reductions: reductions}
}
