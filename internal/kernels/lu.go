package kernels

import (
	"fmt"
	"math"
)

// HPLFlops returns the operation count credited by the HPL benchmark
// for solving a dense n x n system: 2/3 n^3 + 3/2 n^2.
func HPLFlops(n int) float64 {
	fn := float64(n)
	return 2.0/3.0*fn*fn*fn + 1.5*fn*fn
}

// LU holds an in-place LU factorization with partial pivoting:
// PA = LU, with L unit-lower-triangular and U upper-triangular packed
// into LU, and Piv recording the row interchanges.
type LU struct {
	LU  *Matrix
	Piv []int
}

// Factorize computes the LU factorization of a (overwriting a copy)
// using right-looking blocked elimination with partial pivoting — the
// same algorithm family as HPL. It returns an error for singular
// matrices.
func Factorize(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("kernels: LU of non-square %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	m := a.Clone()
	piv := make([]int, n)
	for k := 0; k < n; k++ {
		// Partial pivot: largest magnitude in column k at or below k.
		p := k
		max := math.Abs(m.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(m.At(i, k)); v > max {
				max, p = v, i
			}
		}
		piv[k] = p
		if max == 0 {
			return nil, fmt.Errorf("kernels: matrix is singular at column %d", k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				m.Data[k*n+j], m.Data[p*n+j] = m.Data[p*n+j], m.Data[k*n+j]
			}
		}
		pivot := m.At(k, k)
		for i := k + 1; i < n; i++ {
			l := m.At(i, k) / pivot
			m.Set(i, k, l)
			row := m.Data[i*n:]
			krow := m.Data[k*n:]
			for j := k + 1; j < n; j++ {
				row[j] -= l * krow[j]
			}
		}
	}
	return &LU{LU: m, Piv: piv}, nil
}

// Solve solves A x = b using the factorization. b is not modified.
func (f *LU) Solve(b []float64) []float64 {
	n := f.LU.Rows
	if len(b) != n {
		panic(fmt.Sprintf("kernels: rhs length %d != %d", len(b), n))
	}
	x := make([]float64, n)
	copy(x, b)
	// Apply row interchanges.
	for k := 0; k < n; k++ {
		if p := f.Piv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution with unit L.
	for i := 1; i < n; i++ {
		s := x[i]
		row := f.LU.Data[i*n:]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := f.LU.Data[i*n:]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// HPLResidual returns the scaled residual the HPL benchmark checks:
// ||Ax-b||_inf / (eps * (||A||_inf ||x||_inf + ||b||_inf) * n).
func HPLResidual(a *Matrix, x, b []float64) float64 {
	n := a.Rows
	rmax := 0.0
	for i := 0; i < n; i++ {
		s := -b[i]
		row := a.Data[i*n:]
		for j := 0; j < n; j++ {
			s += row[j] * x[j]
		}
		if v := math.Abs(s); v > rmax {
			rmax = v
		}
	}
	anorm := 0.0
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += math.Abs(a.At(i, j))
		}
		if s > anorm {
			anorm = s
		}
	}
	xnorm, bnorm := 0.0, 0.0
	for i := 0; i < n; i++ {
		if v := math.Abs(x[i]); v > xnorm {
			xnorm = v
		}
		if v := math.Abs(b[i]); v > bnorm {
			bnorm = v
		}
	}
	eps := math.Nextafter(1, 2) - 1
	den := eps * (anorm*xnorm + bnorm) * float64(n)
	if den == 0 {
		return 0
	}
	return rmax / den
}
