// Package kernels contains native Go implementations of the
// computational kernels behind the paper's benchmarks — DGEMM, LU
// factorization (the HPL core), FFT, STREAM triad, PTRANS,
// RandomAccess, and conjugate-gradient solvers. They serve two
// purposes: they are the executable ground truth validating the
// simulator's operation-count formulas, and they make the benchmark
// drivers runnable end-to-end rather than purely analytic.
package kernels

import "fmt"

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("kernels: bad matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// DGEMMFlops returns the floating-point operation count of
// C = alpha*A*B + beta*C for A (m x k) and B (k x n): the standard
// 2*m*n*k accounting.
func DGEMMFlops(m, n, k int) float64 {
	return 2 * float64(m) * float64(n) * float64(k)
}

// DGEMM computes C = alpha*A*B + beta*C with cache blocking. Shapes
// must conform: A is m x k, B is k x n, C is m x n.
func DGEMM(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("kernels: dgemm shape mismatch %dx%d * %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	const blk = 64
	m, n, k := a.Rows, b.Cols, a.Cols
	if beta != 1 {
		for i := range c.Data {
			c.Data[i] *= beta
		}
	}
	for ii := 0; ii < m; ii += blk {
		im := min(ii+blk, m)
		for kk := 0; kk < k; kk += blk {
			km := min(kk+blk, k)
			for jj := 0; jj < n; jj += blk {
				jm := min(jj+blk, n)
				for i := ii; i < im; i++ {
					arow := a.Data[i*k:]
					crow := c.Data[i*n:]
					for l := kk; l < km; l++ {
						av := alpha * arow[l]
						brow := b.Data[l*n:]
						for j := jj; j < jm; j++ {
							crow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
}

// dgemmNaive is the triple-loop reference used by tests.
func dgemmNaive(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	m, n, k := a.Rows, b.Cols, a.Cols
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += a.At(i, l) * b.At(l, j)
			}
			c.Set(i, j, alpha*s+beta*c.At(i, j))
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
