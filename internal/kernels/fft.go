package kernels

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFTFlops returns the operation count the HPCC benchmark credits a
// complex FFT of length n: 5 n log2(n).
func FFTFlops(n int) float64 {
	return 5 * float64(n) * math.Log2(float64(n))
}

// FFT computes the in-place iterative radix-2 decimation-in-time
// discrete Fourier transform of x. The length must be a power of two.
func FFT(x []complex128) {
	fftDirected(x, false)
}

// IFFT computes the inverse transform (including the 1/n scaling).
func IFFT(x []complex128) {
	fftDirected(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func fftDirected(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("kernels: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length / 2
			for j := 0; j < half; j++ {
				u := x[i+j]
				v := x[i+j+half] * w
				x[i+j] = u + v
				x[i+j+half] = u - v
				w *= wl
			}
		}
	}
}
