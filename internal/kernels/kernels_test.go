package kernels

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"bgpsim/internal/sim"
)

func randMatrix(rng *sim.RNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func TestDGEMMMatchesNaive(t *testing.T) {
	rng := sim.NewRNG(1)
	for _, shape := range [][3]int{{5, 7, 9}, {64, 64, 64}, {100, 3, 50}, {1, 1, 1}, {130, 70, 65}} {
		m, n, k := shape[0], shape[1], shape[2]
		a := randMatrix(rng, m, k)
		b := randMatrix(rng, k, n)
		c1 := randMatrix(rng, m, n)
		c2 := c1.Clone()
		DGEMM(1.5, a, b, 0.5, c1)
		dgemmNaive(1.5, a, b, 0.5, c2)
		if d := maxAbsDiff(c1.Data, c2.Data); d > 1e-10*float64(k) {
			t.Errorf("%v: blocked vs naive diff %g", shape, d)
		}
	}
}

func TestDGEMMShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	DGEMM(1, NewMatrix(2, 3), NewMatrix(4, 5), 0, NewMatrix(2, 5))
}

func TestDGEMMFlops(t *testing.T) {
	if got := DGEMMFlops(10, 20, 30); got != 12000 {
		t.Errorf("DGEMMFlops = %g", got)
	}
}

func TestLUFactorizeSolve(t *testing.T) {
	rng := sim.NewRNG(2)
	for _, n := range []int{1, 2, 5, 17, 64, 100} {
		a := randMatrix(rng, n, n)
		// Diagonal dominance for stability.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()
		}
		f, err := Factorize(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := f.Solve(b)
		if res := HPLResidual(a, x, b); res > 16 {
			t.Errorf("n=%d: HPL residual %g exceeds threshold 16", n, res)
		}
	}
}

func TestLUReconstructsPA(t *testing.T) {
	rng := sim.NewRNG(3)
	n := 20
	a := randMatrix(rng, n, n)
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	// Build P*A by applying recorded pivots to a copy of A.
	pa := a.Clone()
	for k := 0; k < n; k++ {
		if p := f.Piv[k]; p != k {
			for j := 0; j < n; j++ {
				pa.Data[k*n+j], pa.Data[p*n+j] = pa.Data[p*n+j], pa.Data[k*n+j]
			}
		}
	}
	// Multiply L*U.
	lu := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k <= i && k <= j; k++ {
				l := f.LU.At(i, k)
				if k == i {
					l = 1
				}
				if k <= j {
					s += l * f.LU.At(k, j)
				}
			}
			lu.Set(i, j, s)
		}
	}
	if d := maxAbsDiff(pa.Data, lu.Data); d > 1e-10 {
		t.Errorf("PA vs LU diff %g", d)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrix(3, 3) // all zeros
	if _, err := Factorize(a); err == nil {
		t.Error("expected singular error")
	}
}

func TestHPLFlops(t *testing.T) {
	if got, want := HPLFlops(3), 2.0/3*27+1.5*9; math.Abs(got-want) > 1e-12 {
		t.Errorf("HPLFlops(3) = %g, want %g", got, want)
	}
}

func TestFFTInvertsIFFT(t *testing.T) {
	rng := sim.NewRNG(4)
	for _, n := range []int{1, 2, 8, 64, 1024} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Float64(), rng.Float64())
			orig[i] = x[i]
		}
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d: round trip diverged at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	// The DFT of a unit impulse is all ones.
	n := 16
	x := make([]complex128, n)
	x[0] = 1
	FFT(x)
	for i := range x {
		if cmplx.Abs(x[i]-1) > 1e-12 {
			t.Fatalf("impulse FFT[%d] = %v", i, x[i])
		}
	}
}

func TestFFTParseval(t *testing.T) {
	// Energy conservation: sum|x|^2 = (1/n) sum|X|^2.
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		n := 128
		x := make([]complex128, n)
		e1 := 0.0
		for i := range x {
			x[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
			e1 += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		FFT(x)
		e2 := 0.0
		for i := range x {
			e2 += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		return math.Abs(e1-e2/float64(n)) < 1e-9*e1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFFTNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	FFT(make([]complex128, 12))
}

func TestStreamTriad(t *testing.T) {
	n := 100
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range b {
		b[i] = float64(i)
		c[i] = 2
	}
	StreamTriad(a, b, c, 3)
	for i := range a {
		if a[i] != float64(i)+6 {
			t.Fatalf("triad[%d] = %g", i, a[i])
		}
	}
	if StreamTriadBytes(n) != 2400 || StreamTriadFlops(n) != 200 {
		t.Error("triad accounting wrong")
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	rng := sim.NewRNG(5)
	a := randMatrix(rng, 45, 70)
	at := NewMatrix(70, 45)
	Transpose(at, a)
	back := NewMatrix(45, 70)
	Transpose(back, at)
	if d := maxAbsDiff(a.Data, back.Data); d != 0 {
		t.Errorf("double transpose diff %g", d)
	}
	if at.At(3, 7) != a.At(7, 3) {
		t.Error("transpose element wrong")
	}
}

func TestRandomAccessVerification(t *testing.T) {
	// The HPCC verification property: running the same update stream
	// twice XORs each touched location back to its initial value.
	logSize := 10
	updates := RandomAccessUpdates(logSize)
	t1 := RandomAccess(logSize, updates)
	// Apply the same stream again on the produced table.
	size := 1 << uint(logSize)
	mask := uint64(size - 1)
	ran := uint64(1)
	for i := int64(0); i < updates; i++ {
		ran = (ran << 1) ^ (uint64(int64(ran)>>63) & 0x7)
		t1[ran&mask] ^= ran
	}
	errors := 0
	for i, v := range t1 {
		if v != uint64(i) {
			errors++
		}
	}
	if errors != 0 {
		t.Errorf("%d table entries failed verification", errors)
	}
}

func TestCGSolvesLaplacian(t *testing.T) {
	a := Laplacian2D(12, 12)
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}
	res := CG(a, b, 1e-10, 1000)
	if res.Residual > 1e-10 {
		t.Fatalf("CG residual %g", res.Residual)
	}
	// Verify: A x = b.
	ax := make([]float64, a.N)
	a.MatVec(ax, res.X)
	if d := maxAbsDiff(ax, b); d > 1e-8 {
		t.Errorf("CG solution residual %g", d)
	}
}

func TestChronopoulosGearMatchesCG(t *testing.T) {
	a := Laplacian2D(10, 15)
	b := make([]float64, a.N)
	rng := sim.NewRNG(6)
	for i := range b {
		b[i] = rng.Float64()
	}
	std := CG(a, b, 1e-11, 2000)
	cg := CGChronopoulosGear(a, b, 1e-11, 2000)
	if d := maxAbsDiff(std.X, cg.X); d > 1e-7 {
		t.Errorf("solutions differ by %g", d)
	}
	// Similar iteration counts...
	if absInt(std.Iterations-cg.Iterations) > std.Iterations/4+2 {
		t.Errorf("iterations: std %d vs C-G %d", std.Iterations, cg.Iterations)
	}
	// ...but roughly half the global reductions: that is the point of
	// the variant (paper §III.A).
	ratio := float64(std.Reductions) / float64(cg.Reductions)
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("reduction ratio = %.2f (std %d, C-G %d), want ~2",
			ratio, std.Reductions, cg.Reductions)
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestCGZeroRHS(t *testing.T) {
	a := Laplacian2D(4, 4)
	res := CG(a, make([]float64, a.N), 1e-10, 100)
	for _, v := range res.X {
		if v != 0 {
			t.Fatal("zero rhs should give zero solution")
		}
	}
	res2 := CGChronopoulosGear(a, make([]float64, a.N), 1e-10, 100)
	for _, v := range res2.X {
		if v != 0 {
			t.Fatal("zero rhs should give zero solution (C-G)")
		}
	}
}

func TestLaplacianSymmetric(t *testing.T) {
	a := Laplacian2D(6, 9)
	// Check symmetry via (x, Ay) == (Ax, y) for random vectors.
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		x := make([]float64, a.N)
		y := make([]float64, a.N)
		for i := range x {
			x[i] = rng.Float64() - 0.5
			y[i] = rng.Float64() - 0.5
		}
		ax := make([]float64, a.N)
		ay := make([]float64, a.N)
		a.MatVec(ax, x)
		a.MatVec(ay, y)
		return math.Abs(dot(x, ay)-dot(ax, y)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFFTFlopsFormula(t *testing.T) {
	if got := FFTFlops(1024); got != 5*1024*10 {
		t.Errorf("FFTFlops(1024) = %g", got)
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Error("Set/At broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone shares storage")
	}
}

func FuzzFFTRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(6))
	f.Add(uint64(42), uint8(8))
	f.Fuzz(func(t *testing.T, seed uint64, logN uint8) {
		n := 1 << (logN%10 + 1)
		rng := sim.NewRNG(seed)
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
			orig[i] = x[i]
		}
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-8 {
				t.Fatalf("round trip diverged at %d", i)
			}
		}
	})
}

func FuzzLUSolve(f *testing.F) {
	f.Add(uint64(7), uint8(12))
	f.Add(uint64(99), uint8(30))
	f.Fuzz(func(t *testing.T, seed uint64, size uint8) {
		n := int(size%40) + 2
		rng := sim.NewRNG(seed)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.Float64()*2 - 1
		}
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()
		}
		lu, err := Factorize(a)
		if err != nil {
			t.Fatal(err)
		}
		x := lu.Solve(b)
		if res := HPLResidual(a, x, b); res > 16 {
			t.Fatalf("residual %g", res)
		}
	})
}
