package kernels

import (
	"fmt"
	"math"

	"bgpsim/internal/sim"
)

// This file implements the executable kernel behind the MD models
// (Figure 8): truncated-and-shifted Lennard-Jones forces with
// minimum-image periodic boundaries and velocity-Verlet integration.
// The NVE energy-conservation test grounds the per-atom cost model.

// Vec3 is a 3-vector.
type Vec3 [3]float64

// MDSystem is a small molecular-dynamics system in a cubic periodic
// box (reduced Lennard-Jones units).
type MDSystem struct {
	N      int
	Box    float64
	Cutoff float64
	Pos    []Vec3
	Vel    []Vec3
	Force  []Vec3
	eShift float64 // potential shift so U(cutoff) = 0
}

// NewLattice places n^3 atoms on a cubic lattice with the given
// spacing and small random velocities (zeroed net momentum).
func NewLattice(nPerSide int, spacing, cutoff float64, seed uint64) *MDSystem {
	if nPerSide < 2 || spacing <= 0 || cutoff <= 0 {
		panic(fmt.Sprintf("kernels: bad MD setup n=%d spacing=%g cutoff=%g", nPerSide, spacing, cutoff))
	}
	n := nPerSide * nPerSide * nPerSide
	s := &MDSystem{
		N: n, Box: float64(nPerSide) * spacing, Cutoff: cutoff,
		Pos: make([]Vec3, n), Vel: make([]Vec3, n), Force: make([]Vec3, n),
	}
	sr6 := math.Pow(1/cutoff, 6)
	s.eShift = 4 * (sr6*sr6 - sr6)
	rng := sim.NewRNG(seed)
	idx := 0
	var mom Vec3
	for x := 0; x < nPerSide; x++ {
		for y := 0; y < nPerSide; y++ {
			for z := 0; z < nPerSide; z++ {
				s.Pos[idx] = Vec3{float64(x) * spacing, float64(y) * spacing, float64(z) * spacing}
				v := Vec3{rng.Float64() - 0.5, rng.Float64() - 0.5, rng.Float64() - 0.5}
				for d := 0; d < 3; d++ {
					v[d] *= 0.1
					mom[d] += v[d]
				}
				s.Vel[idx] = v
				idx++
			}
		}
	}
	for i := range s.Vel {
		for d := 0; d < 3; d++ {
			s.Vel[i][d] -= mom[d] / float64(n)
		}
	}
	return s
}

// minImage wraps a displacement into [-Box/2, Box/2).
func (s *MDSystem) minImage(d float64) float64 {
	for d >= s.Box/2 {
		d -= s.Box
	}
	for d < -s.Box/2 {
		d += s.Box
	}
	return d
}

// ComputeForces fills Force and returns the potential energy
// (truncated-shifted LJ, all pairs within the cutoff).
func (s *MDSystem) ComputeForces() float64 {
	for i := range s.Force {
		s.Force[i] = Vec3{}
	}
	rc2 := s.Cutoff * s.Cutoff
	pot := 0.0
	for i := 0; i < s.N; i++ {
		for j := i + 1; j < s.N; j++ {
			var dr Vec3
			r2 := 0.0
			for d := 0; d < 3; d++ {
				dr[d] = s.minImage(s.Pos[i][d] - s.Pos[j][d])
				r2 += dr[d] * dr[d]
			}
			if r2 >= rc2 || r2 == 0 {
				continue
			}
			inv2 := 1 / r2
			inv6 := inv2 * inv2 * inv2
			// U = 4 (r^-12 - r^-6) - shift;  F = 24 (2 r^-12 - r^-6) / r^2 * dr
			pot += 4*(inv6*inv6-inv6) - s.eShift
			f := 24 * (2*inv6*inv6 - inv6) * inv2
			for d := 0; d < 3; d++ {
				s.Force[i][d] += f * dr[d]
				s.Force[j][d] -= f * dr[d]
			}
		}
	}
	return pot
}

// Kinetic returns the kinetic energy (unit mass).
func (s *MDSystem) Kinetic() float64 {
	k := 0.0
	for _, v := range s.Vel {
		k += (v[0]*v[0] + v[1]*v[1] + v[2]*v[2]) / 2
	}
	return k
}

// Step advances one velocity-Verlet timestep and returns the potential
// energy at the new positions. Forces must be current on entry (call
// ComputeForces once before the first step).
func (s *MDSystem) Step(dt float64) float64 {
	// Half kick + drift.
	for i := range s.Pos {
		for d := 0; d < 3; d++ {
			s.Vel[i][d] += s.Force[i][d] * dt / 2
			s.Pos[i][d] += s.Vel[i][d] * dt
			// Wrap into the box.
			if s.Pos[i][d] >= s.Box {
				s.Pos[i][d] -= s.Box
			} else if s.Pos[i][d] < 0 {
				s.Pos[i][d] += s.Box
			}
		}
	}
	pot := s.ComputeForces()
	// Second half kick.
	for i := range s.Vel {
		for d := 0; d < 3; d++ {
			s.Vel[i][d] += s.Force[i][d] * dt / 2
		}
	}
	return pot
}

// LJFlopsPerPair is the approximate flop count of one pair
// interaction, used by the MD cost model.
const LJFlopsPerPair = 45.0
