package kernels

import (
	"math"
	"testing"
)

func TestDeriv8Polynomial(t *testing.T) {
	// An 8th-order scheme differentiates sin exactly to high accuracy
	// on a fine periodic grid.
	n := 128
	l := 2 * math.Pi
	dx := l / float64(n)
	f := make([]float64, n)
	for i := range f {
		f[i] = math.Sin(float64(i) * dx)
	}
	out := make([]float64, n)
	Deriv8(out, f, dx)
	for i := range out {
		want := math.Cos(float64(i) * dx)
		if math.Abs(out[i]-want) > 1e-9 {
			t.Fatalf("deriv8 at %d: %g, want %g", i, out[i], want)
		}
	}
}

func TestDeriv8LengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Deriv8(make([]float64, 3), make([]float64, 4), 1)
}

func TestPressureWaveMatchesDAlembert(t *testing.T) {
	// The paper's S3D test: a Gaussian pressure pulse splits into two
	// travelling waves. Advance until they have moved a quarter domain
	// and compare against the exact solution.
	n := 512
	l, c, sigma := 1.0, 1.0, 0.05
	w := NewAcousticWave(n, l, c, sigma)
	dx := l / float64(n)
	dt := 0.4 * dx / c
	steps := int(0.25 * l / c / dt)
	for s := 0; s < steps; s++ {
		w.Step(dt)
	}
	tEnd := float64(steps) * dt
	maxErr := 0.0
	for i := 0; i < n; i++ {
		if e := math.Abs(w.P[i] - w.Analytic(i, tEnd, sigma)); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-4 {
		t.Errorf("wave solution max error %g, want < 1e-4", maxErr)
	}
}

func TestWaveEnergyConserved(t *testing.T) {
	w := NewAcousticWave(256, 1, 1, 0.05)
	e0 := w.Energy()
	dt := 0.4 / 256.0
	for s := 0; s < 400; s++ {
		w.Step(dt)
	}
	if drift := math.Abs(w.Energy()-e0) / e0; drift > 1e-6 {
		t.Errorf("energy drift %g over 400 steps", drift)
	}
}

func TestWaveConvergesWithResolution(t *testing.T) {
	errAt := func(n int) float64 {
		l, c, sigma := 1.0, 1.0, 0.08
		w := NewAcousticWave(n, l, c, sigma)
		dx := l / float64(n)
		dt := 0.2 * dx / c
		steps := int(0.1 / dt)
		for s := 0; s < steps; s++ {
			w.Step(dt)
		}
		tEnd := float64(steps) * dt
		max := 0.0
		for i := 0; i < n; i++ {
			if e := math.Abs(w.P[i] - w.Analytic(i, tEnd, sigma)); e > max {
				max = e
			}
		}
		return max
	}
	coarse, fine := errAt(64), errAt(128)
	if fine >= coarse/4 {
		t.Errorf("error did not converge: %g at 64 -> %g at 128", coarse, fine)
	}
}

func TestWaveFlops(t *testing.T) {
	if WaveFlopsPerPointStep() <= 0 {
		t.Error("flop model broken")
	}
}

func TestMDEnergyConservation(t *testing.T) {
	// NVE: total energy drift stays small under velocity Verlet.
	s := NewLattice(4, 1.2, 2.5, 7) // 64 atoms, moderate density
	pot := s.ComputeForces()
	e0 := pot + s.Kinetic()
	var pots []float64
	for step := 0; step < 200; step++ {
		pots = append(pots, s.Step(0.002))
	}
	e1 := pots[len(pots)-1] + s.Kinetic()
	denom := math.Max(math.Abs(e0), 1)
	if drift := math.Abs(e1-e0) / denom; drift > 2e-4 {
		t.Errorf("energy drift %.3g over 200 steps (E0=%.4f, E1=%.4f)", drift, e0, e1)
	}
}

func TestMDMomentumConserved(t *testing.T) {
	s := NewLattice(3, 1.3, 2.0, 9)
	s.ComputeForces()
	for step := 0; step < 50; step++ {
		s.Step(0.002)
	}
	var mom Vec3
	for _, v := range s.Vel {
		for d := 0; d < 3; d++ {
			mom[d] += v[d]
		}
	}
	for d := 0; d < 3; d++ {
		if math.Abs(mom[d]) > 1e-9 {
			t.Errorf("net momentum[%d] = %g", d, mom[d])
		}
	}
}

func TestMDForcesNewtonThirdLaw(t *testing.T) {
	s := NewLattice(3, 1.1, 2.5, 3)
	s.ComputeForces()
	var sum Vec3
	for _, f := range s.Force {
		for d := 0; d < 3; d++ {
			sum[d] += f[d]
		}
	}
	for d := 0; d < 3; d++ {
		if math.Abs(sum[d]) > 1e-9 {
			t.Errorf("net force[%d] = %g, want 0", d, sum[d])
		}
	}
}

func TestMinImage(t *testing.T) {
	s := &MDSystem{Box: 10}
	if s.minImage(7) != -3 || s.minImage(-7) != 3 || s.minImage(2) != 2 {
		t.Error("minimum image wrong")
	}
}
