package kernels

import (
	"fmt"
	"math"
)

// This file implements the numerical heart of the paper's S3D test
// problem — "the propagation of a small amplitude pressure wave
// through the domain" — as an executable kernel: linear acoustics on a
// periodic grid, discretized with the eighth-order centered
// differences S3D uses and advanced with a low-storage Runge-Kutta
// scheme of the Kennedy-Carpenter-Lewis family (the paper's reference
// [13]).

// eighth-order central first-derivative coefficients for offsets 1..4.
var d8 = [4]float64{4.0 / 5.0, -1.0 / 5.0, 4.0 / 105.0, -1.0 / 280.0}

// Deriv8 computes the eighth-order centered first derivative of f on a
// periodic grid with spacing dx, writing into out.
func Deriv8(out, f []float64, dx float64) {
	n := len(f)
	if len(out) != n {
		panic(fmt.Sprintf("kernels: deriv8 length mismatch %d/%d", len(out), n))
	}
	for i := 0; i < n; i++ {
		s := 0.0
		for k := 1; k <= 4; k++ {
			s += d8[k-1] * (f[(i+k)%n] - f[(i-k+n)%n])
		}
		out[i] = s / dx
	}
}

// Carpenter-Kennedy five-stage fourth-order low-storage Runge-Kutta
// coefficients (the 2N-storage scheme S3D's solver family uses).
var (
	rkA = [5]float64{
		0,
		-567301805773.0 / 1357537059087.0,
		-2404267990393.0 / 2016746695238.0,
		-3550918686646.0 / 2091501179385.0,
		-1275806237668.0 / 842570457699.0,
	}
	rkB = [5]float64{
		1432997174477.0 / 9575080441755.0,
		5161836677717.0 / 13612068292357.0,
		1720146321549.0 / 2090206949498.0,
		3134564353537.0 / 4481467310338.0,
		2277821191437.0 / 14882151754819.0,
	}
)

// RKStages is the stage count of the low-storage scheme.
const RKStages = 5

// AcousticWave is a 1-D linear acoustics system on a periodic domain:
// dp/dt = -c du/dx, du/dt = -c dp/dx (unit impedance), the linearized
// model of S3D's pressure-wave benchmark.
type AcousticWave struct {
	N     int
	L     float64 // domain length
	C     float64 // sound speed
	P, U  []float64
	dp    []float64 // RK residual registers
	du    []float64
	scrtc []float64
}

// NewAcousticWave builds the system with a Gaussian pressure pulse of
// the given width centered mid-domain and zero velocity — exactly the
// paper's initial condition shape.
func NewAcousticWave(n int, l, c, sigma float64) *AcousticWave {
	if n < 16 || l <= 0 || c <= 0 || sigma <= 0 {
		panic(fmt.Sprintf("kernels: bad wave setup n=%d l=%g c=%g sigma=%g", n, l, c, sigma))
	}
	w := &AcousticWave{
		N: n, L: l, C: c,
		P: make([]float64, n), U: make([]float64, n),
		dp: make([]float64, n), du: make([]float64, n),
		scrtc: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		x := float64(i) * l / float64(n)
		w.P[i] = gaussianPeriodic(x-l/2, sigma, l)
	}
	return w
}

// gaussianPeriodic sums the Gaussian over periodic images (three
// suffice for sigma << L).
func gaussianPeriodic(d, sigma, l float64) float64 {
	s := 0.0
	for k := -1; k <= 1; k++ {
		v := d + float64(k)*l
		s += math.Exp(-v * v / (sigma * sigma))
	}
	return s
}

// Step advances one timestep of size dt with the low-storage RK.
func (w *AcousticWave) Step(dt float64) {
	dx := w.L / float64(w.N)
	for s := 0; s < RKStages; s++ {
		// Residuals: rp = -c du/dx, ru = -c dp/dx.
		Deriv8(w.scrtc, w.U, dx)
		for i := range w.dp {
			w.dp[i] = rkA[s]*w.dp[i] - w.C*w.scrtc[i]*dt
		}
		Deriv8(w.scrtc, w.P, dx)
		for i := range w.du {
			w.du[i] = rkA[s]*w.du[i] - w.C*w.scrtc[i]*dt
		}
		for i := range w.P {
			w.P[i] += rkB[s] * w.dp[i]
			w.U[i] += rkB[s] * w.du[i]
		}
	}
}

// Analytic returns the exact pressure at grid point i and time t: the
// initial pulse splits into two half-amplitude waves travelling in
// opposite directions (d'Alembert).
func (w *AcousticWave) Analytic(i int, t, sigma float64) float64 {
	x := float64(i) * w.L / float64(w.N)
	d1 := math.Mod(x-w.C*t-w.L/2+10*w.L, w.L) // wrapped offsets
	d2 := math.Mod(x+w.C*t-w.L/2+10*w.L, w.L)
	center := func(d float64) float64 {
		if d > w.L/2 {
			d -= w.L
		}
		return gaussianPeriodic(d, sigma, w.L)
	}
	return 0.5 * (center(d1) + center(d2))
}

// Energy returns the acoustic energy integral (p^2 + u^2)/2 dx, which
// the non-dissipative scheme conserves.
func (w *AcousticWave) Energy() float64 {
	dx := w.L / float64(w.N)
	s := 0.0
	for i := range w.P {
		s += (w.P[i]*w.P[i] + w.U[i]*w.U[i]) / 2 * dx
	}
	return s
}

// WaveFlopsPerPointStep returns the flop count per grid point per
// timestep: two 8th-order derivatives (9-point stencils) and the
// register updates, times the RK stages.
func WaveFlopsPerPointStep() float64 {
	const perStage = 2*(4*3+1) + 8 // two derivatives + axpy updates
	return RKStages * perStage
}

// RKA exposes the low-storage scheme's A coefficient for stage s.
func RKA(s int) float64 { return rkA[s] }

// RKB exposes the low-storage scheme's B coefficient for stage s.
func RKB(s int) float64 { return rkB[s] }
