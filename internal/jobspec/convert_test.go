package jobspec

import (
	"strings"
	"testing"

	"bgpsim/internal/halo"
	"bgpsim/internal/machine"
	"bgpsim/internal/network"
)

func TestParseMode(t *testing.T) {
	cases := []struct {
		in      string
		want    machine.Mode
		wantErr bool
	}{
		{in: "SMP", want: machine.SMP},
		{in: "DUAL", want: machine.DUAL},
		{in: "VN", want: machine.VN},
		{in: "dual", wantErr: true},
		{in: "vn", wantErr: true},
		{in: "CO", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, tc := range cases {
		got, err := parseMode(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseMode(%q) = %v, want error", tc.in, got)
			} else if !strings.Contains(err.Error(), "SMP, DUAL, VN") {
				t.Errorf("parseMode(%q) error %q should name the valid modes", tc.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseMode(%q): %v", tc.in, err)
		} else if got != tc.want {
			t.Errorf("parseMode(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseFidelity(t *testing.T) {
	cases := []struct {
		in      string
		want    network.Fidelity
		wantErr bool
	}{
		{in: "analytic", want: network.Analytic},
		{in: "contention", want: network.Contention},
		{in: "packet", want: network.Packet},
		{in: "Packet", wantErr: true},
		{in: "flit", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, tc := range cases {
		got, err := parseFidelity(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseFidelity(%q) = %v, want error", tc.in, got)
			} else if !strings.Contains(err.Error(), "analytic, contention, packet") {
				t.Errorf("parseFidelity(%q) error %q should name the valid models", tc.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseFidelity(%q): %v", tc.in, err)
		} else if got != tc.want {
			t.Errorf("parseFidelity(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseProtocol(t *testing.T) {
	cases := []struct {
		in      string
		want    halo.Protocol
		wantErr bool
	}{
		{in: "isend", want: halo.IsendIrecv},
		{in: "sendrecv", want: halo.SendRecv},
		{in: "irecvsend", want: halo.IrecvSend},
		{in: "persistent", want: halo.Persistent},
		{in: "Isend", wantErr: true},
		{in: "rdma", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, tc := range cases {
		got, err := parseProtocol(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseProtocol(%q) = %v, want error", tc.in, got)
			} else if !strings.Contains(err.Error(), "isend, sendrecv, irecvsend, persistent") {
				t.Errorf("parseProtocol(%q) error %q should name the valid protocols", tc.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseProtocol(%q): %v", tc.in, err)
		} else if got != tc.want {
			t.Errorf("parseProtocol(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
