// Package jobspec defines the canonical, versioned, JSON-serializable
// description of one simulation job — the single struct behind every
// entry point: the four CLIs (cmd/bgpsim, cmd/halo, cmd/hpcc,
// cmd/facility) parse their flags into a Spec and run it through Run;
// the bgpsimd job server accepts a Spec over HTTP, hashes its
// canonical form, and caches results (identical deterministic jobs are
// free); the public bgpsim package converts a Spec into a Config with
// NewSystemFromSpec.
//
// The contract that makes the hash load-bearing: the simulator is
// deterministic — a Spec's output (stdout bytes, artifact bytes) is a
// pure function of its canonical form, at any worker count and any
// shard count. Canonical() materializes defaults and drops fields
// foreign to the job's kind, so two specs that mean the same job hash
// identically; Hash() additionally zeroes Shards, because the sharded
// kernel is byte-identical to the serial one (the PR-6 determinism
// contract) and a cache hit across shard counts is therefore sound.
package jobspec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"bgpsim/internal/calib"
	"bgpsim/internal/facility"
	"bgpsim/internal/fault"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/topology"
)

// Version is the current spec schema version. Decode accepts specs at
// or below it (0 means "current"); future versions are an error, not a
// silent reinterpretation.
const Version = 1

// Job kinds: which workload family the spec describes. The kind names
// double as the owning CLI's program name in diagnostics.
const (
	// KindBench is a single micro-benchmark (cmd/bgpsim).
	KindBench = "bench"
	// KindHalo is the Wallcraft HALO exchange (cmd/halo), including
	// its sweep and mapping-comparison modes.
	KindHalo = "halo"
	// KindHPCC is the HPC Challenge suite (cmd/hpcc).
	KindHPCC = "hpcc"
	// KindFacility is a multi-job facility workload (cmd/facility).
	KindFacility = "facility"
	// KindCalib is a calibration fit report: the seeded parameter
	// search of internal/calib run for one machine model.
	KindCalib = "calib"
)

// Spec is the canonical description of one simulation job. Exactly one
// Kind is set; fields foreign to the kind are ignored and erased by
// Canonical(). The zero value of every field means "default" — a Spec
// built from a partial JSON document and one built from full CLI flags
// canonicalize (and therefore hash) identically when they mean the
// same job.
//
// The worker count (-j) is deliberately absent: it never changes any
// output byte, so it is an execution resource, not part of the job.
type Spec struct {
	// Version is the schema version (Version; 0 means current).
	Version int `json:"version,omitempty"`
	// Kind selects the workload family: bench, halo, hpcc, facility.
	Kind string `json:"kind"`

	// Machine is the machine-catalog id (BG/P, BG/L, XT3, XT4/DC,
	// XT4/QC). Unused by facility jobs (the workload names its own).
	Machine string `json:"machine,omitempty"`
	// Mode is the node execution mode: SMP, DUAL, or VN.
	Mode string `json:"mode,omitempty"`
	// Ranks is the MPI task count (bench jobs).
	Ranks int `json:"ranks,omitempty"`
	// RankList is the process-count sweep of an hpcc job.
	RankList []int `json:"rank_list,omitempty"`

	// Bench names the micro-benchmark of a bench job: allreduce,
	// bcast, barrier, alltoall, pingpong.
	Bench string `json:"bench,omitempty"`
	// Bytes is the bench payload size. Nil means the default (8);
	// an explicit 0 is preserved (a zero-byte pingpong is the latency
	// benchmark, not an unset field).
	Bytes *int `json:"bytes,omitempty"`
	// Double selects double-precision operands (bench allreduce).
	// Nil means the default (true).
	Double *bool `json:"double,omitempty"`

	// GridX/GridY shape the halo job's virtual process grid.
	GridX int `json:"grid_x,omitempty"`
	GridY int `json:"grid_y,omitempty"`
	// Words is the halo size in 32-bit words.
	Words int `json:"words,omitempty"`
	// Iterations is the halo exchange repetition count.
	Iterations int `json:"iterations,omitempty"`
	// Protocol is the halo messaging protocol: isend, sendrecv,
	// irecvsend, persistent.
	Protocol string `json:"protocol,omitempty"`
	// Sweep runs the halo size sweep instead of a single exchange.
	Sweep bool `json:"sweep,omitempty"`
	// Mappings compares the paper's process mappings instead of a
	// single exchange.
	Mappings bool `json:"mappings,omitempty"`

	// Workload is the facility job's workload grammar string (see
	// facility.Parse).
	Workload string `json:"workload,omitempty"`

	// Mapping is the process-to-processor mapping (XYZT, TXYZ, ...).
	Mapping string `json:"mapping,omitempty"`
	// Fidelity selects the torus network model: analytic, contention,
	// packet. Kinds have different defaults (bench/halo: contention).
	Fidelity string `json:"fidelity,omitempty"`
	// Coll forces collective algorithms per op, e.g.
	// {"allreduce": "ring"}. See mpi.ParseCollSpec for the names.
	Coll map[string]string `json:"coll,omitempty"`
	// Faults is a deterministic fault-plan spec string, e.g.
	// "seed=3,recover,kill=5@40us" (see fault.ParseSpec).
	Faults string `json:"faults,omitempty"`
	// Var is a per-node performance-variability spec string, e.g.
	// "clock:2%,link:5%@7" (see fault.ParseVariabilitySpec). It
	// composes with Faults and, unlike link faults, never disqualifies
	// an analytic job from sharding.
	Var string `json:"var,omitempty"`
	// Shards partitions each simulation across N parallel kernel
	// shards. Output bytes are identical at any value (the PR-6
	// determinism contract), so Hash() ignores it.
	Shards int `json:"shards,omitempty"`

	// Events dumps the first N trace events to stdout (bench jobs).
	Events int `json:"events,omitempty"`
	// Trace captures a Chrome trace_event JSON artifact.
	Trace bool `json:"trace,omitempty"`
	// Profile prints the per-rank time decomposition and critical
	// path.
	Profile bool `json:"profile,omitempty"`
	// Links captures a per-link utilization CSV artifact.
	Links bool `json:"links,omitempty"`
}

// progname maps a kind to the CLI program name used in diagnostics, so
// jobspec-produced stderr lines are byte-identical to the historical
// per-CLI output.
func progname(kind string) string {
	if kind == KindBench {
		return "bgpsim"
	}
	return kind
}

// Canonical returns the spec with defaults materialized, the version
// stamped, and every field foreign to its kind erased. Two specs
// canonicalize equal exactly when they describe the same job, so
// Canonical is the basis of Hash and of the server's result cache.
// Canonical does not validate; an invalid spec canonicalizes to an
// invalid spec.
func (s Spec) Canonical() Spec {
	c := Spec{Version: Version, Kind: s.Kind}
	switch s.Kind {
	case KindBench:
		c.Machine = defStr(s.Machine, "BG/P")
		c.Mode = defStr(s.Mode, "VN")
		c.Ranks = defInt(s.Ranks, 256)
		c.Bench = defStr(s.Bench, "allreduce")
		b := 8
		if s.Bytes != nil {
			b = *s.Bytes
		}
		c.Bytes = &b
		d := s.Double == nil || *s.Double
		c.Double = &d
		c.Mapping = defStr(s.Mapping, "XYZT")
		c.Fidelity = defStr(s.Fidelity, "contention")
		c.Faults = s.Faults
		c.Var = s.Var
		c.Shards = s.Shards
		c.Events = s.Events
		c.Trace = s.Trace
		c.Profile = s.Profile
		c.Links = s.Links
	case KindHalo:
		c.Machine = defStr(s.Machine, "BG/P")
		c.Mode = defStr(s.Mode, "VN")
		c.GridX = defInt(s.GridX, 16)
		c.GridY = defInt(s.GridY, 8)
		c.Words = defInt(s.Words, 1000)
		c.Iterations = defInt(s.Iterations, 5)
		c.Protocol = defStr(s.Protocol, "isend")
		c.Mapping = defStr(s.Mapping, "TXYZ")
		c.Fidelity = defStr(s.Fidelity, "contention")
		c.Sweep = s.Sweep
		c.Mappings = s.Mappings
		c.Coll = copyColl(s.Coll)
		c.Faults = s.Faults
		c.Var = s.Var
		c.Shards = s.Shards
		c.Trace = s.Trace
		c.Profile = s.Profile
		c.Links = s.Links
	case KindHPCC:
		c.Machine = defStr(s.Machine, "BG/P")
		c.Mode = "VN" // the suite is defined at VN mode
		c.RankList = append([]int(nil), s.RankList...)
		if len(c.RankList) == 0 {
			c.RankList = []int{256}
		}
		c.Coll = copyColl(s.Coll)
		c.Faults = s.Faults
		c.Var = s.Var
		c.Shards = s.Shards
		c.Trace = s.Trace
		c.Profile = s.Profile
	case KindFacility:
		c.Workload = s.Workload
		c.Shards = s.Shards
	case KindCalib:
		c.Machine = defStr(s.Machine, "BG/P")
		c.Shards = s.Shards
	default:
		// Unknown kind: keep everything so Validate can report it
		// against the full submitted document.
		c = s
		c.Version = Version
	}
	return c
}

// CanonicalJSON returns the canonical spec as deterministic JSON:
// struct fields in declaration order, map keys sorted (encoding/json's
// documented behavior). Identical jobs serialize to identical bytes.
func (s Spec) CanonicalJSON() []byte {
	b, err := json.Marshal(s.Canonical())
	if err != nil {
		// A Spec contains only marshalable fields; this is unreachable.
		panic(fmt.Sprintf("jobspec: canonical marshal: %v", err))
	}
	return b
}

// Hash returns the job's content hash: the hex SHA-256 of the
// canonical JSON with Shards zeroed. Shards is excluded because output
// bytes are shard-count-invariant, so a result computed at any shard
// count answers the same job at every other — the determinism-for-
// reuse leverage the result cache is built on.
func (s Spec) Hash() string {
	c := s.Canonical()
	c.Shards = 0
	b, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("jobspec: canonical marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Decode parses a JSON document into a canonical, validated Spec.
func Decode(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("jobspec: %v", err)
	}
	if s.Version > Version {
		return Spec{}, fmt.Errorf("jobspec: spec version %d is newer than this build's %d", s.Version, Version)
	}
	c := s.Canonical()
	if err := c.Validate(); err != nil {
		return Spec{}, err
	}
	return c, nil
}

// Validate checks the spec's fields against the catalogs and grammars
// they name. It validates the canonical form, so defaults never fail.
func (s Spec) Validate() error {
	c := s.Canonical()
	switch c.Kind {
	case KindBench:
		if err := c.validateCommon(); err != nil {
			return err
		}
		if c.Ranks <= 0 {
			return fmt.Errorf("jobspec: rank count %d must be positive", c.Ranks)
		}
		switch c.Bench {
		case "allreduce", "bcast", "barrier", "alltoall", "pingpong":
		default:
			return fmt.Errorf("jobspec: unknown benchmark %q (valid: allreduce, bcast, barrier, alltoall, pingpong)", c.Bench)
		}
		if c.Bytes != nil && *c.Bytes < 0 {
			return fmt.Errorf("jobspec: payload size %d must be >= 0", *c.Bytes)
		}
		if c.Events < 0 {
			return fmt.Errorf("jobspec: events %d must be >= 0", c.Events)
		}
		if err := c.validateVar(); err != nil {
			return err
		}
		return c.validateFaults(c.Ranks)
	case KindHalo:
		if err := c.validateCommon(); err != nil {
			return err
		}
		if c.GridX <= 0 || c.GridY <= 0 {
			return fmt.Errorf("jobspec: process grid %dx%d: dimensions must be positive", c.GridX, c.GridY)
		}
		if c.Words <= 0 {
			return fmt.Errorf("jobspec: halo size %d words must be positive", c.Words)
		}
		if c.Iterations <= 0 {
			return fmt.Errorf("jobspec: iterations %d must be positive", c.Iterations)
		}
		if _, err := parseProtocol(c.Protocol); err != nil {
			return err
		}
		if c.Sweep && c.Mappings {
			return fmt.Errorf("jobspec: sweep and mappings are mutually exclusive")
		}
		if (c.Trace || c.Profile || c.Links) && (c.Sweep || c.Mappings) {
			return fmt.Errorf("jobspec: trace/profile/links apply to single-run mode only, not sweep or mappings")
		}
		if err := c.validateColl(); err != nil {
			return err
		}
		if err := c.validateVar(); err != nil {
			return err
		}
		return c.validateFaults(c.GridX * c.GridY)
	case KindHPCC:
		if _, err := machine.Lookup(machine.ID(c.Machine)); err != nil {
			return err
		}
		if len(c.RankList) == 0 {
			return fmt.Errorf("jobspec: hpcc needs at least one rank count")
		}
		for _, r := range c.RankList {
			if r <= 0 {
				return fmt.Errorf("jobspec: bad rank count %d: process counts must be positive", r)
			}
		}
		if (c.Trace || c.Profile) && len(c.RankList) != 1 {
			return fmt.Errorf("jobspec: trace/profile need a single rank count")
		}
		if err := c.validateColl(); err != nil {
			return err
		}
		if err := c.validateVar(); err != nil {
			return err
		}
		return c.validateFaults(c.RankList[0])
	case KindFacility:
		if c.Workload == "" {
			return fmt.Errorf("jobspec: facility needs a workload spec")
		}
		if _, err := facility.Parse(c.Workload); err != nil {
			return err
		}
	case KindCalib:
		found := false
		for _, id := range calib.Machines() {
			if machine.ID(c.Machine) == id {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("jobspec: no calibration targets for machine %q (valid: %v)", c.Machine, calib.Machines())
		}
	default:
		return fmt.Errorf("jobspec: unknown kind %q (valid: bench, halo, hpcc, facility, calib)", c.Kind)
	}
	if c.Shards < 0 {
		return fmt.Errorf("jobspec: shard count %d must be >= 0", c.Shards)
	}
	return nil
}

// validateCommon checks the machine/mode/mapping/fidelity block shared
// by bench and halo jobs.
func (s Spec) validateCommon() error {
	if _, err := machine.Lookup(machine.ID(s.Machine)); err != nil {
		return err
	}
	if _, err := parseMode(s.Mode); err != nil {
		return err
	}
	if !topology.Mapping(s.Mapping).Valid() {
		return fmt.Errorf("jobspec: invalid mapping %q (want a permutation of X, Y, Z, T)", s.Mapping)
	}
	if s.Shards < 0 {
		return fmt.Errorf("jobspec: shard count %d must be >= 0", s.Shards)
	}
	_, err := parseFidelity(s.Fidelity)
	return err
}

// validateColl re-parses the coll override map through the registry.
func (s Spec) validateColl() error {
	_, err := mpi.ParseCollSpec(collString(s.Coll))
	return err
}

// validateVar parses the variability spec once to surface errors at
// submission time instead of mid-run.
func (s Spec) validateVar() error {
	if s.Var == "" {
		return nil
	}
	_, err := fault.ParseVariabilitySpec(s.Var)
	return err
}

// validateFaults builds the fault plan once to surface spec errors at
// submission time instead of mid-run.
func (s Spec) validateFaults(ranks int) error {
	if s.Faults == "" {
		return nil
	}
	mode, err := parseMode(defStr(s.Mode, "VN"))
	if err != nil {
		return err
	}
	nodes := nodesFor(machine.ID(s.Machine), mode, ranks)
	_, _, err = fault.BuildForPartition(s.Faults, machine.ID(s.Machine), nodes)
	return err
}

// collString renders a coll override map back into the CLI's
// "op=algo,op=algo" string form with sorted keys (for re-parsing and
// error messages).
func collString(coll map[string]string) string {
	if len(coll) == 0 {
		return ""
	}
	parts := make([]string, 0, len(coll))
	for _, op := range sortedStringKeys(coll) {
		parts = append(parts, op+"="+coll[op])
	}
	return strings.Join(parts, ",")
}

func sortedStringKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func defStr(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

func defInt(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

func copyColl(m map[string]string) map[string]string {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
