package jobspec

import (
	"fmt"

	"bgpsim/internal/core"
	"bgpsim/internal/fault"
	"bgpsim/internal/halo"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/topology"
)

// parseMode maps a mode name to an execution mode. Unknown names are
// an error, not a silent default.
func parseMode(s string) (machine.Mode, error) {
	switch s {
	case "SMP":
		return machine.SMP, nil
	case "DUAL":
		return machine.DUAL, nil
	case "VN":
		return machine.VN, nil
	}
	return 0, fmt.Errorf("unknown mode %q (valid: SMP, DUAL, VN)", s)
}

// parseFidelity maps a fidelity name to a network model.
func parseFidelity(s string) (network.Fidelity, error) {
	switch s {
	case "analytic":
		return network.Analytic, nil
	case "contention":
		return network.Contention, nil
	case "packet":
		return network.Packet, nil
	}
	return 0, fmt.Errorf("unknown fidelity %q (valid: analytic, contention, packet)", s)
}

// parseProtocol maps a protocol name to a halo exchange protocol.
func parseProtocol(s string) (halo.Protocol, error) {
	switch s {
	case "isend":
		return halo.IsendIrecv, nil
	case "sendrecv":
		return halo.SendRecv, nil
	case "irecvsend":
		return halo.IrecvSend, nil
	case "persistent":
		return halo.Persistent, nil
	}
	return 0, fmt.Errorf("unknown protocol %q (valid: isend, sendrecv, irecvsend, persistent)", s)
}

// ParseColl parses the CLI's "op=algo,op=algo" collective-override
// string into the Spec.Coll map form (empty string → nil map),
// validating op and algorithm names.
func ParseColl(s string) (map[string]string, error) {
	return mpi.ParseCollSpec(s)
}

// nodesFor returns the standard partition's node count for a rank
// count — the node space fault plans are ranged against.
func nodesFor(id machine.ID, mode machine.Mode, ranks int) int {
	return core.PartitionConfig(id, mode, ranks).Nodes
}

// applyVar attaches a Spec.Var variability model to a fault plan,
// creating a minimal plan when the job has no fault spec. An empty
// spec returns the plan untouched, so fault-only and fault-free jobs
// keep their historical configs byte for byte.
func applyVar(varSpec string, plan *fault.Plan) (*fault.Plan, error) {
	if varSpec == "" {
		return plan, nil
	}
	v, err := fault.ParseVariabilitySpec(varSpec)
	if err != nil {
		return nil, err
	}
	if plan == nil {
		plan = fault.NewPlan(v.Seed)
	}
	if err := plan.SetVariability(v); err != nil {
		return nil, err
	}
	return plan, nil
}

// BenchConfig converts a bench-kind spec into the mpi.Config the
// benchmark runs under — the same construction cmd/bgpsim has always
// used. The canonical spec is attached to the Config (and so to the
// Result) as its JobSpec. Fault plans are built fresh per call, so
// configs never share mutable plan state.
func (s Spec) BenchConfig() (mpi.Config, []fault.BlastResult, error) {
	c := s.Canonical()
	if c.Kind != KindBench {
		return mpi.Config{}, nil, fmt.Errorf("jobspec: BenchConfig needs a bench spec, got kind %q", c.Kind)
	}
	if err := c.Validate(); err != nil {
		return mpi.Config{}, nil, err
	}
	mode, _ := parseMode(c.Mode)
	fid, _ := parseFidelity(c.Fidelity)
	cfg := core.PartitionConfig(machine.ID(c.Machine), mode, c.Ranks)
	cfg.Mapping = topology.Mapping(c.Mapping)
	cfg.Fidelity = fid
	cfg.Shards = c.Shards
	cfg.JobSpec = c
	var blasts []fault.BlastResult
	if c.Faults != "" {
		plan, bl, err := fault.BuildForPartition(c.Faults, machine.ID(c.Machine), cfg.Nodes)
		if err != nil {
			return mpi.Config{}, nil, err
		}
		cfg.Faults = plan
		blasts = bl
	}
	plan, err := applyVar(c.Var, cfg.Faults)
	if err != nil {
		return mpi.Config{}, nil, err
	}
	cfg.Faults = plan
	return cfg, blasts, nil
}

// benchProgram builds the rank program of a bench spec against its
// config (pingpong picks its far peer from the node count).
func benchProgram(c Spec, cfg mpi.Config) func(*mpi.Rank) {
	double := c.Double == nil || *c.Double
	bytes := 8
	if c.Bytes != nil {
		bytes = *c.Bytes
	}
	switch c.Bench {
	case "allreduce":
		return func(r *mpi.Rank) { r.World().Allreduce(r, bytes, double) }
	case "bcast":
		return func(r *mpi.Rank) { r.World().Bcast(r, 0, bytes) }
	case "barrier":
		return func(r *mpi.Rank) { r.World().Barrier(r) }
	case "alltoall":
		return func(r *mpi.Rank) { r.World().Alltoall(r, bytes) }
	case "pingpong":
		far := cfg.Nodes / 2
		if far == 0 {
			far = cfg.Ranks - 1
		}
		return func(r *mpi.Rank) {
			switch r.ID() {
			case 0:
				r.Send(far, bytes, 1)
				r.Recv(far, 2)
			case far:
				r.Recv(0, 1)
				r.Send(0, bytes, 2)
			}
		}
	}
	// Validate rejected every other name.
	panic(fmt.Sprintf("jobspec: unknown benchmark %q", c.Bench))
}

// HaloOptions converts a halo-kind spec into halo.Options. The fault
// plan (if any) is built fresh per call, so repeated conversions of
// one spec never share plan state — the property the sweep runner
// depends on.
func (s Spec) HaloOptions() (halo.Options, []fault.BlastResult, error) {
	c := s.Canonical()
	if c.Kind != KindHalo {
		return halo.Options{}, nil, fmt.Errorf("jobspec: HaloOptions needs a halo spec, got kind %q", c.Kind)
	}
	if err := c.Validate(); err != nil {
		return halo.Options{}, nil, err
	}
	mode, _ := parseMode(c.Mode)
	proto, _ := parseProtocol(c.Protocol)
	coll, _ := mpi.ParseCollSpec(collString(c.Coll))
	o := halo.Options{
		Machine: machine.ID(c.Machine), Mode: mode,
		GridX: c.GridX, GridY: c.GridY,
		Mapping: topology.Mapping(c.Mapping), Protocol: proto,
		Words: c.Words, Iterations: c.Iterations, Coll: coll,
		Analytic: c.Fidelity == "analytic", Shards: c.Shards,
	}
	var blasts []fault.BlastResult
	if c.Faults != "" {
		nodes := nodesFor(o.Machine, mode, c.GridX*c.GridY)
		plan, bl, err := fault.BuildForPartition(c.Faults, o.Machine, nodes)
		if err != nil {
			return halo.Options{}, nil, err
		}
		o.Faults = plan
		blasts = bl
	}
	plan, err := applyVar(c.Var, o.Faults)
	if err != nil {
		return halo.Options{}, nil, err
	}
	o.Faults = plan
	return o, blasts, nil
}
