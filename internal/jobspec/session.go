package jobspec

import (
	"bytes"
	"fmt"
	"io"

	"bgpsim/internal/halo"
	"bgpsim/internal/mpi"
	"bgpsim/internal/obs"
	"bgpsim/internal/sim"
	"bgpsim/internal/trace"
)

// Session is one job in stepwise execution: started without firing any
// event, advanced to chosen points in virtual time, and finished into
// exactly the output a straight Run of the same spec produces — stdout
// bytes, stderr bytes, and artifacts all byte-identical. That
// equivalence holds by construction, not by luck: a session wraps the
// same serial kernel the straight path uses and StepTo only chooses
// where the event loop pauses, never what it fires. Sessions are the
// bgpsimd server's snapshot substrate (park a long run at virtual time
// T, inspect it, resume it, or fork a variant by deterministic
// replay).
//
// Only the kinds whose run is a single simulation support sessions:
// bench, and halo in single-exchange mode. Sweeps and multi-job
// workloads are collections of independent runs; snapshot those by
// snapshotting their parts. Sessions always execute serially — the
// spec's Shards request is ignored (output is byte-identical either
// way; the straight Run path honors it).
//
// A Session is not safe for concurrent use; callers serialize StepTo
// and Finish (the server holds one lock per snapshot).
type Session struct {
	spec Spec // canonical

	// bench state
	benchRun *mpi.Running
	benchCfg mpi.Config
	tb       *trace.Buffer

	// halo state
	haloSess *halo.Session
	haloOpts halo.Options

	rec *obs.Recorder
	// blasts holds the stderr blast-domain lines Run prints before the
	// simulation starts; Finish replays them so the stderr stream stays
	// byte-identical.
	blasts bytes.Buffer

	finished bool
	result   *RunResult
	err      error
}

// CanSession reports whether a spec's kind and mode support stepwise
// execution (see Session).
func CanSession(s Spec) bool {
	c := s.Canonical()
	switch c.Kind {
	case KindBench:
		return true
	case KindHalo:
		return !c.Sweep && !c.Mappings
	}
	return false
}

// StartSession validates the spec and begins its simulation without
// firing any event.
func StartSession(spec Spec) (*Session, error) {
	c := spec.Canonical()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if !CanSession(c) {
		return nil, fmt.Errorf("jobspec: kind %q does not support stepwise sessions (single-simulation jobs only)", c.Kind)
	}
	sess := &Session{spec: c}
	switch c.Kind {
	case KindBench:
		cfg, blasts, err := c.BenchConfig()
		if err != nil {
			return nil, err
		}
		cfg.Shards = 0
		for _, b := range blasts {
			fmt.Fprintf(&sess.blasts, "%s: blast from node %d: %s domain [%d, %d], %d nodes killed\n",
				progname(c.Kind), b.Origin, b.Level, b.First, b.Last, len(b.Dead))
		}
		if c.Events > 0 {
			sess.tb = trace.NewBuffer(c.Events)
			cfg.Trace = sess.tb
		}
		if c.Trace || c.Profile || c.Links {
			sess.rec = obs.NewRecorder()
			cfg.Probe = sess.rec
		}
		sess.benchCfg = cfg
		run, err := mpi.Begin(cfg, benchProgram(c, cfg))
		if err != nil {
			return nil, err
		}
		sess.benchRun = run
	case KindHalo:
		o, blasts, err := c.HaloOptions()
		if err != nil {
			return nil, err
		}
		for _, b := range blasts {
			fmt.Fprintf(&sess.blasts, "halo: blast from node %d: %s domain [%d, %d], %d nodes killed\n",
				b.Origin, b.Level, b.First, b.Last, len(b.Dead))
		}
		if c.Trace || c.Profile || c.Links {
			sess.rec = obs.NewRecorder()
			o.Probe = sess.rec
		}
		sess.haloOpts = o
		hs, err := halo.Start(o)
		if err != nil {
			return nil, err
		}
		sess.haloSess = hs
	}
	return sess, nil
}

// Spec returns the session's canonical spec.
func (s *Session) Spec() Spec { return s.spec }

// Hash returns the session's job hash (the result-cache identity).
func (s *Session) Hash() string { return s.spec.Hash() }

// StepTo fires every pending event with a timestamp strictly below t,
// then pauses. A run that ends inside the window stays parked until
// Finish; further steps are no-ops.
func (s *Session) StepTo(t sim.Time) error {
	if s.finished {
		return s.err
	}
	if s.benchRun != nil {
		return s.benchRun.StepTo(t)
	}
	return s.haloSess.StepTo(t)
}

// Now returns the paused run's current virtual time.
func (s *Session) Now() sim.Time {
	if s.benchRun != nil {
		return s.benchRun.Now()
	}
	return s.haloSess.Now()
}

// Events returns the number of simulation events fired so far.
func (s *Session) Events() uint64 {
	if s.benchRun != nil {
		return s.benchRun.Events()
	}
	return s.haloSess.Events()
}

// Done reports whether the underlying simulation has completed (the
// session may still await Finish for rendering).
func (s *Session) Done() bool {
	if s.finished {
		return true
	}
	if s.benchRun != nil {
		return s.benchRun.Done()
	}
	return s.haloSess.Done()
}

// Finish runs the simulation to completion and renders the job's
// report and artifacts — stdout, stderr, and artifact bytes all
// identical to Run(spec) however many StepTo pauses preceded it.
// Finish is idempotent; repeated calls replay the stored outcome
// without re-rendering to the writers.
func (s *Session) Finish(stdout, stderr io.Writer) (*RunResult, error) {
	if s.finished {
		return s.result, s.err
	}
	s.finished = true
	io.Copy(stderr, bytes.NewReader(s.blasts.Bytes()))
	rr := &RunResult{Spec: s.spec, Hash: s.spec.Hash()}
	c := s.spec
	if s.benchRun != nil {
		res, err := s.benchRun.Finish()
		if err != nil {
			s.result, s.err = rr, err
			return rr, err
		}
		if c.Shards > 1 && res.Shards < c.Shards {
			fmt.Fprintf(stderr, "%s: note: ran on the serial kernel (-shards %d needs -fidelity analytic and no link faults)\n", progname(c.Kind), c.Shards)
		}
		if err := renderBench(c, s.benchCfg, res, s.tb, stdout, stderr); err != nil {
			s.result, s.err = rr, err
			return rr, err
		}
		if s.rec != nil {
			if c.Profile {
				if err := writeProfile(res, stdout); err != nil {
					s.result, s.err = rr, err
					return rr, err
				}
			}
			if err := collect(c, rr, s.rec); err != nil {
				s.result, s.err = rr, err
				return rr, err
			}
		}
		s.result = rr
		return rr, nil
	}
	d, res, err := s.haloSess.Finish()
	if err != nil {
		// Mirror runHalo's abort contract: deliver the artifacts
		// recorded up to the abort alongside the error.
		if s.rec != nil {
			if cerr := collect(c, rr, s.rec); cerr != nil {
				s.result, s.err = rr, cerr
				return rr, cerr
			}
		}
		s.result, s.err = rr, err
		return rr, err
	}
	if err := renderHaloSingle(c, s.haloOpts, d, res, stdout, stderr); err != nil {
		s.result, s.err = rr, err
		return rr, err
	}
	if s.rec != nil {
		if c.Profile {
			if err := writeProfile(res, stdout); err != nil {
				s.result, s.err = rr, err
				return rr, err
			}
		}
		if err := collect(c, rr, s.rec); err != nil {
			s.result, s.err = rr, err
			return rr, err
		}
	}
	s.result = rr
	return rr, nil
}
