package jobspec

import (
	"bytes"
	"testing"

	"bgpsim/internal/sim"
)

// TestHashGolden pins the content hash of each kind's default job.
// These constants are the cache identities the bgpsimd server hands
// out; if this test fails, canonicalization changed and every stored
// result in the field silently invalidates. Change them knowingly and
// bump the spec Version when the format itself moves.
func TestHashGolden(t *testing.T) {
	golden := map[string]string{
		KindBench:    "bcf85b722a3892a08f6196d11a3e347f60de39d6fb47d4f2e4fdaff750078092",
		KindHalo:     "93281e10ee2c12d28ad66e395b1405015cf2e848275712a9818a44544b415e6c",
		KindHPCC:     "75397f5ca3b36581471a9a99c3f72e0340da4a1e7e9839dc9732cffdd755c702",
		KindFacility: "454a7e23948eb08199b917f5ced2323a6eafcdd834abcecaa8fc59d40f34c1e7",
		KindCalib:    "e6b7b0f0512707338a08088ab238c0237032a89b6ccf08fa5b2661539d2bce90",
	}
	for kind, want := range golden {
		if got := (Spec{Kind: kind}).Hash(); got != want {
			t.Errorf("%s: hash %s, want %s (canonical %s)", kind, got, want, Spec{Kind: kind}.CanonicalJSON())
		}
	}
}

// TestHashIgnoresExecutionKnobs: the hash names the job, not how it is
// executed — shard count must not perturb it, and the canonical form
// of an explicitly-defaulted spec must equal the blank spec's.
func TestHashIgnoresExecutionKnobs(t *testing.T) {
	base := Spec{Kind: KindBench}
	if h := (Spec{Kind: KindBench, Shards: 8}).Hash(); h != base.Hash() {
		t.Errorf("shards changed the hash: %s vs %s", h, base.Hash())
	}
	eight := 8
	explicit := Spec{Kind: KindBench, Machine: "BG/P", Mode: "VN", Ranks: 256,
		Bench: "allreduce", Bytes: &eight, Mapping: "XYZT", Fidelity: "contention"}
	if explicit.Hash() != base.Hash() {
		t.Errorf("explicit defaults changed the hash:\n%s\n%s", explicit.CanonicalJSON(), base.CanonicalJSON())
	}
	// Explicit zero bytes is a different job (zero-payload pingpong
	// measures pure latency), not a default.
	zero := 0
	if h := (Spec{Kind: KindBench, Bytes: &zero}).Hash(); h == base.Hash() {
		t.Error("explicit -bytes 0 hashed identically to the 8-byte default")
	}
}

// TestHashVariability: a variability spec changes the job's identity —
// a run under per-node noise is a different result than a healthy run
// and must not share a cache slot with it.
func TestHashVariability(t *testing.T) {
	for _, kind := range []string{KindBench, KindHalo, KindHPCC} {
		base := Spec{Kind: kind}
		noisy := Spec{Kind: kind, Var: "clock:2%,link:5%@7"}
		if noisy.Hash() == base.Hash() {
			t.Errorf("%s: variability spec did not change the hash (canonical %s)", kind, noisy.CanonicalJSON())
		}
		// Different seed, different draws, different job.
		other := Spec{Kind: kind, Var: "clock:2%,link:5%@8"}
		if other.Hash() == noisy.Hash() {
			t.Errorf("%s: variability seed did not change the hash", kind)
		}
	}
}

// TestDecodeRoundTrip: canonical JSON decodes back to a spec with the
// same canonical bytes, for every kind.
func TestDecodeRoundTrip(t *testing.T) {
	specs := []Spec{
		{Kind: KindBench, Bench: "pingpong", Faults: "kill=2@1ms,recover"},
		{Kind: KindHalo, Sweep: true, Coll: map[string]string{"allreduce": "ring"}},
		{Kind: KindHPCC, RankList: []int{64, 256}},
		{Kind: KindFacility, Workload: "seed=3,nodes=64,jobs=4,cohort=halo:4:1:10s:100:cancel"},
		{Kind: KindCalib, Machine: "XT4/QC"},
		{Kind: KindBench, Bench: "pingpong", Var: "clock:2%,link:5%@7"},
	}
	for _, s := range specs {
		cj := s.CanonicalJSON()
		got, err := Decode(cj)
		if err != nil {
			t.Fatalf("%s: decode canonical: %v", s.Kind, err)
		}
		if !bytes.Equal(got.CanonicalJSON(), cj) {
			t.Errorf("%s: round trip changed canonical form:\n in: %s\nout: %s", s.Kind, cj, got.CanonicalJSON())
		}
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := []string{
		`{"kind":"bench","bogus":1}`,                // unknown field
		`{"kind":"bench","version":99}`,             // future version
		`{"kind":"warp"}`,                           // unknown kind
		`{"kind":"bench","bench":"sort"}`,           // unknown benchmark
		`{"kind":"bench","bytes":-1}`,               // negative payload
		`{"kind":"halo","grid_x":-4}`,               // bad grid
		`{"kind":"bench","faults":"not-a-plan"}`,    // bad fault grammar
		`{"kind":"bench","machine":"Cray-3"}`,       // unknown machine
		`{"kind":"hpcc","rank_list":[0]}`,           // bad rank count
		`{"kind":"halo","coll":{"allreduce":"??"}}`, // bad algorithm
		`{"kind":"bench","var":"clock:120%"}`,       // variability CV out of range
		`{"kind":"halo","var":"bogus"}`,             // bad variability grammar
		`{"kind":"calib","machine":"BG/L"}`,         // machine without calibration targets
	}
	for _, c := range cases {
		if _, err := Decode([]byte(c)); err == nil {
			t.Errorf("Decode(%s) accepted, want error", c)
		}
	}
}

// TestRunDeterminism: two Runs of one spec produce byte-identical
// stdout, stderr, and artifacts — the property the server's result
// cache is built on.
func TestRunDeterminism(t *testing.T) {
	spec := Spec{Kind: KindBench, Ranks: 64, Bench: "alltoall",
		Trace: true, Links: true, Faults: "degrade=1:0.5"}
	run := func() (string, string, *RunResult) {
		var out, errw bytes.Buffer
		rr, err := Run(spec, &out, &errw)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return out.String(), errw.String(), rr
	}
	o1, e1, r1 := run()
	o2, e2, r2 := run()
	if o1 != o2 {
		t.Errorf("stdout differs between runs:\n%s\n---\n%s", o1, o2)
	}
	if e1 != e2 {
		t.Errorf("stderr differs between runs:\n%s\n---\n%s", e1, e2)
	}
	if len(r1.Artifacts) != 2 {
		t.Fatalf("got %d artifacts, want 2 (trace, links)", len(r1.Artifacts))
	}
	for i := range r1.Artifacts {
		a, b := r1.Artifacts[i], r2.Artifacts[i]
		if a.Name != b.Name || !bytes.Equal(a.Data, b.Data) {
			t.Errorf("artifact %s differs between runs", a.Name)
		}
	}
	if r1.Hash != spec.Hash() {
		t.Errorf("result hash %s, want %s", r1.Hash, spec.Hash())
	}
}

// sessionEquivalence runs a spec straight and as a paused-and-resumed
// session, asserting byte-identical stdout, stderr, and artifacts —
// the snapshot/restore ≡ straight-run guarantee.
func sessionEquivalence(t *testing.T, spec Spec, pauses []sim.Time) {
	t.Helper()
	var wantOut, wantErr bytes.Buffer
	want, err := Run(spec, &wantOut, &wantErr)
	if err != nil {
		t.Fatalf("straight Run: %v", err)
	}

	sess, err := StartSession(spec)
	if err != nil {
		t.Fatalf("StartSession: %v", err)
	}
	if sess.Hash() != spec.Hash() {
		t.Errorf("session hash %s, want %s", sess.Hash(), spec.Hash())
	}
	last := sim.Time(0)
	for _, p := range pauses {
		if err := sess.StepTo(p); err != nil {
			t.Fatalf("StepTo(%v): %v", p, err)
		}
		if now := sess.Now(); now < last {
			t.Errorf("Now went backwards: %v after %v", now, last)
		} else {
			last = now
		}
	}
	var gotOut, gotErr bytes.Buffer
	got, err := sess.Finish(&gotOut, &gotErr)
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if !sess.Done() {
		t.Error("session not Done after Finish")
	}
	if gotOut.String() != wantOut.String() {
		t.Errorf("session stdout differs from straight run:\n--- straight\n%s\n--- session\n%s", wantOut.String(), gotOut.String())
	}
	if gotErr.String() != wantErr.String() {
		t.Errorf("session stderr differs from straight run:\n--- straight\n%s\n--- session\n%s", wantErr.String(), gotErr.String())
	}
	if len(got.Artifacts) != len(want.Artifacts) {
		t.Fatalf("session produced %d artifacts, straight run %d", len(got.Artifacts), len(want.Artifacts))
	}
	for i := range want.Artifacts {
		w, g := want.Artifacts[i], got.Artifacts[i]
		if w.Name != g.Name || !bytes.Equal(w.Data, g.Data) {
			t.Errorf("artifact %s differs between session and straight run", w.Name)
		}
	}
}

func TestSessionEquivalenceBench(t *testing.T) {
	spec := Spec{Kind: KindBench, Ranks: 64, Bench: "allreduce",
		Trace: true, Links: true, Profile: true, Faults: "noise=1ms/50us"}
	sessionEquivalence(t, spec, []sim.Time{
		5 * sim.Time(sim.Microsecond),
		40 * sim.Time(sim.Microsecond),
		// Step far past the end: the run completes inside the window and
		// parks for Finish.
		sim.Time(sim.Second),
	})
}

func TestSessionEquivalenceHalo(t *testing.T) {
	spec := Spec{Kind: KindHalo, GridX: 8, GridY: 4, Words: 512,
		Trace: true, Links: true}
	sessionEquivalence(t, spec, []sim.Time{
		100 * sim.Time(sim.Nanosecond),
		50 * sim.Time(sim.Microsecond),
		300 * sim.Time(sim.Microsecond),
	})
}

// TestSessionRejectsMultiRunKinds: only single-simulation jobs can be
// parked.
func TestSessionRejectsMultiRunKinds(t *testing.T) {
	for _, spec := range []Spec{
		{Kind: KindHPCC},
		{Kind: KindFacility},
		{Kind: KindHalo, Sweep: true},
		{Kind: KindHalo, Mappings: true},
	} {
		if CanSession(spec) {
			t.Errorf("CanSession(%s sweep=%v mappings=%v) = true, want false", spec.Kind, spec.Sweep, spec.Mappings)
		}
		if _, err := StartSession(spec); err == nil {
			t.Errorf("StartSession(%s) accepted, want error", spec.Kind)
		}
	}
}

// TestSessionFinishIdempotent: repeated Finish replays the outcome
// without re-rendering.
func TestSessionFinishIdempotent(t *testing.T) {
	spec := Spec{Kind: KindBench, Ranks: 16, Bench: "barrier"}
	sess, err := StartSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	var out1, err1 bytes.Buffer
	r1, ferr := sess.Finish(&out1, &err1)
	if ferr != nil {
		t.Fatal(ferr)
	}
	var out2, err2 bytes.Buffer
	r2, ferr := sess.Finish(&out2, &err2)
	if ferr != nil {
		t.Fatal(ferr)
	}
	if r1 != r2 {
		t.Error("second Finish returned a different result object")
	}
	if out2.Len() != 0 || err2.Len() != 0 {
		t.Error("second Finish re-rendered output")
	}
}

// TestRunAllKinds smoke-runs every kind through the shared Run path
// and checks each is deterministic across two runs.
func TestRunAllKinds(t *testing.T) {
	specs := map[string]Spec{
		"hpcc":          {Kind: KindHPCC, RankList: []int{16}, Trace: true},
		"facility":      {Kind: KindFacility, Workload: "seed=3,nodes=64,jobs=4,cohort=halo:4:1:10s:100:cancel"},
		"halo-sweep":    {Kind: KindHalo, GridX: 2, GridY: 2, Sweep: true, Fidelity: "analytic"},
		"halo-mappings": {Kind: KindHalo, GridX: 4, GridY: 2, Mappings: true},
		"bench-pp":      {Kind: KindBench, Bench: "pingpong", Ranks: 2, Events: 64},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			run := func() (string, string) {
				var out, errw bytes.Buffer
				if _, err := Run(spec, &out, &errw); err != nil {
					t.Fatalf("Run: %v", err)
				}
				return out.String(), errw.String()
			}
			o1, e1 := run()
			o2, e2 := run()
			if o1 != o2 || e1 != e2 {
				t.Errorf("output differs between runs")
			}
			if o1 == "" {
				t.Error("empty report")
			}
		})
	}
}
