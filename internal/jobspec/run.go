package jobspec

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"bgpsim/internal/calib"
	"bgpsim/internal/facility"
	"bgpsim/internal/fault"
	"bgpsim/internal/halo"
	"bgpsim/internal/hpcc"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/obs"
	"bgpsim/internal/runner"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
	"bgpsim/internal/trace"
)

// Artifact is one named byte blob a job produced beyond its stdout:
// a Chrome trace timeline, a per-link CSV heatmap. Artifacts are
// rendered straight into memory through the obs layer's io.Writer
// exporters — no temp files — and their bytes are deterministic, so
// they participate in the result cache's byte-identical contract.
type Artifact struct {
	Name string
	Data []byte
}

// Standard artifact names.
const (
	ArtifactTrace = "trace.json"
	ArtifactLinks = "links.csv"
)

// RunResult is what a job run produced besides its stdout/stderr
// streams: the canonical spec that ran, its content hash, and the
// artifacts. A RunResult may accompany an error — an aborted run
// (fault injection killing a rank) still delivers the artifacts
// recorded up to the abort, truncated but loadable.
type RunResult struct {
	Spec      Spec
	Hash      string
	Artifacts []Artifact
}

// Artifact returns the named artifact's bytes, nil if absent.
func (r *RunResult) Artifact(name string) []byte {
	for _, a := range r.Artifacts {
		if a.Name == name {
			return a.Data
		}
	}
	return nil
}

// Run executes one job: the single execution path behind all four
// CLIs and the bgpsimd server. The human-readable report goes to
// stdout and diagnostics (blast domains, dropped-trace warnings,
// serial-fallback notes) to stderr, byte-identical to what the owning
// CLI has always printed; artifacts are collected in memory.
//
// On error the returned RunResult is still non-nil when artifacts
// were recorded before the abort (the truncated-trace contract); it is
// nil only when the job never started.
func Run(spec Spec, stdout, stderr io.Writer) (*RunResult, error) {
	c := spec.Canonical()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rr := &RunResult{Spec: c, Hash: c.Hash()}
	var err error
	switch c.Kind {
	case KindBench:
		err = runBench(c, rr, stdout, stderr)
	case KindHalo:
		err = runHalo(c, rr, stdout, stderr)
	case KindHPCC:
		err = runHPCC(c, rr, stdout, stderr)
	case KindFacility:
		err = runFacility(c, rr, stdout)
	case KindCalib:
		err = runCalib(c, stdout)
	default:
		return nil, fmt.Errorf("jobspec: unknown kind %q", c.Kind)
	}
	sort.Slice(rr.Artifacts, func(i, j int) bool { return rr.Artifacts[i].Name < rr.Artifacts[j].Name })
	if err != nil {
		return rr, err
	}
	return rr, nil
}

// collect renders the recorder's streaming exporters into the result's
// artifact list, sorted by name (trace and links, as the spec
// requested). Both Run and Session.Finish deliver artifacts through
// here, so their result ordering is identical by construction.
func collect(c Spec, rr *RunResult, rec *obs.Recorder) error {
	if rec == nil {
		return nil
	}
	defer func() {
		sort.Slice(rr.Artifacts, func(i, j int) bool { return rr.Artifacts[i].Name < rr.Artifacts[j].Name })
	}()
	if c.Trace {
		var b bytes.Buffer
		if err := rec.WriteChromeTrace(&b); err != nil {
			return err
		}
		rr.Artifacts = append(rr.Artifacts, Artifact{Name: ArtifactTrace, Data: b.Bytes()})
	}
	if c.Links {
		var b bytes.Buffer
		if err := rec.WriteLinkCSV(&b, obs.TorusLinkName); err != nil {
			return err
		}
		rr.Artifacts = append(rr.Artifacts, Artifact{Name: ArtifactLinks, Data: b.Bytes()})
	}
	return nil
}

// writeProfile prints the recorder-derived per-rank decomposition and
// critical path (the CLIs' -profile output).
func writeProfile(res *mpi.Result, stdout io.Writer) error {
	if err := res.Profile().WriteTable(stdout); err != nil {
		return err
	}
	return res.CriticalPath().WriteSummary(stdout)
}

// runBench executes a bench-kind spec (cmd/bgpsim's single
// micro-benchmark) and prints its report.
func runBench(c Spec, rr *RunResult, stdout, stderr io.Writer) error {
	cfg, blasts, err := c.BenchConfig()
	if err != nil {
		return err
	}
	prog := progname(c.Kind)
	for _, b := range blasts {
		fmt.Fprintf(stderr, "%s: blast from node %d: %s domain [%d, %d], %d nodes killed\n",
			prog, b.Origin, b.Level, b.First, b.Last, len(b.Dead))
	}
	var tb *trace.Buffer
	if c.Events > 0 {
		tb = trace.NewBuffer(c.Events)
		cfg.Trace = tb
	}
	var rec *obs.Recorder
	if c.Trace || c.Profile || c.Links {
		rec = obs.NewRecorder()
		cfg.Probe = rec
	}
	program := benchProgram(c, cfg)

	var res *mpi.Result
	if c.Shards > 0 {
		// An explicit shard request takes the sharded coordinator
		// (byte-identical output, parallel kernel); everything else
		// runs stepwise-capable serial — the same path snapshots use,
		// so cached results and snapshot resumes agree by construction.
		res, err = mpi.Execute(cfg, program)
	} else {
		var run *mpi.Running
		run, err = mpi.Begin(cfg, program)
		if err == nil {
			res, err = run.Finish()
		}
	}
	if err != nil {
		return err
	}
	if c.Shards > 1 && res.Shards < c.Shards {
		// The fallback is silent on stdout (results are identical
		// either way) but worth a note: the user asked for parallelism
		// the configuration cannot provide.
		fmt.Fprintf(stderr, "%s: note: ran on the serial kernel (-shards %d needs -fidelity analytic and no link faults)\n", prog, c.Shards)
	}
	if err := renderBench(c, cfg, res, tb, stdout, stderr); err != nil {
		return err
	}
	if rec != nil {
		if c.Profile {
			if err := writeProfile(res, stdout); err != nil {
				return err
			}
		}
		if err := collect(c, rr, rec); err != nil {
			return err
		}
	}
	return nil
}

// renderBench prints the bench report exactly as cmd/bgpsim always
// has.
func renderBench(c Spec, cfg mpi.Config, res *mpi.Result, tb *trace.Buffer, stdout, stderr io.Writer) error {
	mode, _ := parseMode(c.Mode)
	bytes := 8
	if c.Bytes != nil {
		bytes = *c.Bytes
	}
	fmt.Fprintf(stdout, "%s %s %d ranks (%d nodes), %s, %d bytes\n",
		c.Machine, mode, cfg.Ranks, cfg.Nodes, c.Bench, bytes)
	fmt.Fprintf(stdout, "  time:       %v\n", res.Elapsed)
	if c.Bench == "pingpong" {
		half := res.Elapsed / 2
		fmt.Fprintf(stdout, "  one-way:    %v\n", half)
		if bytes > 0 {
			fmt.Fprintf(stdout, "  bandwidth:  %.3f GB/s\n", float64(bytes)/half.Seconds()/1e9)
		}
	}
	fmt.Fprintf(stdout, "  messages:   %d (%d on shared memory)\n", res.Net.Messages, res.Net.ShmMsgs)
	fmt.Fprintf(stdout, "  tree ops:   %d, barrier-net ops: %d\n", res.Net.TreeOps, res.Net.BarrierOps)
	// Gated on the fault spec, not the plan: a variability-only plan
	// (Spec.Var) has no fault machinery to report, and the block's
	// absence keeps var-free output identical to the historical bytes.
	if c.Faults != "" {
		fmt.Fprintf(stdout, "  lost ranks: %v\n", res.Lost)
		fmt.Fprintf(stdout, "  recoveries: %d (tree rebuilds %d, HW fallbacks %d, %v charged)\n",
			res.Net.Recoveries, res.Net.TreeRebuilds, res.Net.HWFallbacks, res.Net.RecoveryTime)
		if cfg.Faults.LogSender() {
			fmt.Fprintf(stdout, "  peer-lost:  %d rank(s) had waits cancelled on a dead peer\n", len(res.PeerLost))
			fmt.Fprintf(stdout, "  msg log:    %d orphans cancelled, %d restarts (%d msgs / %d bytes replayed, %v replay, %v restart charged)\n",
				res.Net.Orphans, res.Net.Restarts, res.Net.Replays, res.Net.ReplayBytes,
				res.Net.ReplayTime, res.Net.RestartTime)
		}
	}
	fmt.Fprintf(stdout, "  sim events: %d\n", res.Events)
	if n := res.DroppedEvents(); n > 0 {
		fmt.Fprintf(stderr, "%s: warning: %d trace events dropped (raise -events)\n", progname(c.Kind), n)
	}
	if tb != nil {
		fmt.Fprintln(stdout, "trace:")
		if err := tb.Dump(stdout); err != nil {
			return err
		}
	}
	return nil
}

// runHPCC executes an hpcc-kind spec: the suite at each requested
// process count, concurrently on the runner pool, reported in list
// order.
func runHPCC(c Spec, rr *RunResult, stdout, stderr io.Writer) error {
	id := machine.ID(c.Machine)
	m, err := machine.Lookup(id)
	if err != nil {
		return err
	}
	coll, err := mpi.ParseCollSpec(collString(c.Coll))
	if err != nil {
		return err
	}
	var rec *obs.Recorder
	if c.Trace || c.Profile {
		rec = obs.NewRecorder()
	}

	// Per-job diagnostics (blast domains, dropped trace events, shard
	// fallbacks) are collected here and flushed in job order after the
	// sweep — including before an error exit, so an aborted run still
	// reports which nodes its blast took out. Printing from the worker
	// goroutines would interleave lines nondeterministically under -j.
	var notes runner.Notes
	reports, err := runner.Map(len(c.RankList), func(job int) (string, error) {
		ranks := c.RankList[job]
		// The micro-benchmarks see the variability model (per-node
		// bandwidth draws move the ping-pong numbers) but not the fault
		// plan — faults target the collective phase, as they always
		// have. A fresh plan per call keeps concurrent jobs unshared.
		epPlan, err := applyVar(c.Var, nil)
		if err != nil {
			return "", err
		}
		ep, err := hpcc.SingleAndEPFaultySharded(id, ranks, epPlan, c.Shards)
		if err != nil {
			return "", err
		}
		// The fault plan is built per rank count (blast domains and
		// range checks depend on the partition) and per job, so
		// concurrent simulations share nothing.
		var plan *fault.Plan
		if c.Faults != "" {
			nodes := nodesFor(id, machine.VN, ranks)
			var blasts []fault.BlastResult
			plan, blasts, err = fault.BuildForPartition(c.Faults, id, nodes)
			if err != nil {
				return "", err
			}
			for _, bl := range blasts {
				notes.Add(job, "hpcc: %d processes: blast from node %d: %s domain [%d, %d], %d nodes killed",
					ranks, bl.Origin, bl.Level, bl.First, bl.Last, len(bl.Dead))
			}
		}
		if plan, err = applyVar(c.Var, plan); err != nil {
			return "", err
		}
		// rec is only non-nil with a single rank count, so at most one
		// simulation ever drives it.
		cb, cres, err := hpcc.CollBenchFaultySharded(id, ranks, coll, plan, probeOrNil(rec), c.Shards)
		if cres != nil {
			if n := cres.DroppedEvents(); n > 0 {
				notes.Add(job, "hpcc: warning: %d processes: %d trace events dropped (buffer full)", ranks, n)
			}
			if c.Shards > 1 && cres.Shards < c.Shards {
				notes.Add(job, "hpcc: note: %d processes ran on the serial kernel (-shards %d needs the analytic fidelity and no link faults)",
					ranks, c.Shards)
			}
		}
		if err != nil {
			return "", err
		}
		n := hpcc.ProblemSizeN(m, machine.VN, ranks, 0.8)
		nb := hpcc.BlockingNB(id)
		hpl := hpcc.HPLAnalytic(id, machine.VN, ranks, n, nb)

		var b strings.Builder
		fmt.Fprintf(&b, "HPCC on %s, %d processes (VN mode), N=%d, NB=%d\n\n", m.Name, ranks, n, nb)
		fmt.Fprintf(&b, "Single-process / embarrassingly-parallel tests:\n")
		fmt.Fprintf(&b, "  DGEMM:             %8.2f GFlop/s per process\n", ep.DGEMMGF)
		fmt.Fprintf(&b, "  STREAM triad SP:   %8.2f GB/s\n", ep.StreamSPGB)
		fmt.Fprintf(&b, "  STREAM triad EP:   %8.2f GB/s per process\n", ep.StreamEPGB)
		fmt.Fprintf(&b, "  FFT EP:            %8.2f GFlop/s per process\n", ep.FFTEPGF)
		fmt.Fprintf(&b, "Communication tests:\n")
		fmt.Fprintf(&b, "  Ping-pong latency: %8.2f us\n", ep.PingPongLatUS)
		fmt.Fprintf(&b, "  Ping-pong BW:      %8.2f GB/s\n", ep.PingPongBWGBs)
		fmt.Fprintf(&b, "  Random ring lat:   %8.2f us\n", ep.RandRingLatUS)
		fmt.Fprintf(&b, "  Random ring BW:    %8.2f GB/s per process\n", ep.RandRingBWGBs)
		fmt.Fprintf(&b, "Collective tests (%d bytes):\n", hpcc.CollBytes)
		fmt.Fprintf(&b, "  Barrier:           %8.2f us  [%s]\n", cb.BarrierUS, cb.BarrierAlgo)
		fmt.Fprintf(&b, "  Bcast:             %8.2f us  [%s]\n", cb.BcastUS, cb.BcastAlgo)
		fmt.Fprintf(&b, "  Allreduce:         %8.2f us  [%s]\n", cb.AllreduceUS, cb.AllreduceAlgo)
		if c.Faults != "" {
			fmt.Fprintf(&b, "Injected faults (%s):\n", c.Faults)
			fmt.Fprintf(&b, "  lost ranks: %v\n", cres.Lost)
			fmt.Fprintf(&b, "  recoveries: %d (tree rebuilds %d, HW fallbacks %d, %v charged)\n",
				cres.Net.Recoveries, cres.Net.TreeRebuilds, cres.Net.HWFallbacks, cres.Net.RecoveryTime)
			if plan.LogSender() {
				fmt.Fprintf(&b, "  message log: %d orphans cancelled, %d restarts (%d msgs / %d bytes replayed, %v replay, %v restart charged)\n",
					cres.Net.Orphans, cres.Net.Restarts, cres.Net.Replays, cres.Net.ReplayBytes,
					cres.Net.ReplayTime, cres.Net.RestartTime)
			}
		}
		fmt.Fprintf(&b, "Parallel tests:\n")
		fmt.Fprintf(&b, "  HPL:               %8.1f GFlop/s (%.1f%% of peak)\n",
			hpl, hpl*1e9/(m.PeakFlopsCore()*float64(ranks))*100)
		fmt.Fprintf(&b, "  FFT:               %8.1f GFlop/s\n", hpcc.FFTAnalytic(id, machine.VN, ranks))
		fmt.Fprintf(&b, "  PTRANS:            %8.1f GB/s\n", hpcc.PTRANSAnalytic(id, machine.VN, ranks))
		fmt.Fprintf(&b, "  RandomAccess:      %8.3f GUPS\n", hpcc.RandomAccessGUPS(id, machine.VN, ranks))
		return b.String(), nil
	})
	notes.Flush(stderr)
	if err != nil {
		return err
	}
	for i, r := range reports {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		io.WriteString(stdout, r)
	}
	if rec != nil {
		if c.Profile {
			fmt.Fprintln(stdout)
			if err := rec.Profile().WriteTable(stdout); err != nil {
				return err
			}
			if err := rec.CriticalPath().WriteSummary(stdout); err != nil {
				return err
			}
		}
		if err := collect(c, rr, rec); err != nil {
			return err
		}
	}
	return nil
}

// probeOrNil converts a possibly-nil *obs.Recorder to an obs.Probe
// without producing a non-nil interface around a nil pointer.
func probeOrNil(rec *obs.Recorder) obs.Probe {
	if rec == nil {
		return nil
	}
	return rec
}

// runCalib executes a calib-kind spec: the standard perturb-and-
// recover calibration fit of one machine model, reported as the
// parameter-trajectory and residual tables. The fit is deterministic
// at any worker count, so calib jobs cache like every other kind.
func runCalib(c Spec, stdout io.Writer) error {
	res, err := calib.Fit(machine.ID(c.Machine), calib.DefaultFitOptions())
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, res.ParamTable().String())
	fmt.Fprintln(stdout, res.ResidualTable().String())
	return nil
}

// runFacility executes a facility-kind spec: the workload report plus
// the per-blast notes, all on stdout (the facility CLI's layout).
func runFacility(c Spec, rr *RunResult, stdout io.Writer) error {
	wl, err := facility.Parse(c.Workload)
	if err != nil {
		return err
	}
	res, err := facility.Run(facility.Params{Workload: wl, Shards: c.Shards})
	if err != nil {
		return err
	}
	res.Report(stdout)
	if len(res.Blasts) > 0 {
		io.WriteString(stdout, "\n")
		var notes runner.Notes
		res.BlastNotes(&notes)
		notes.Flush(stdout)
	}
	return nil
}

// haloSweepSizes is the halo size sweep (cmd/halo -sweep).
var haloSweepSizes = []int{2, 8, 32, 128, 512, 2048, 8192, 32768, 131072}

// runHalo executes a halo-kind spec in whichever of its three modes
// the spec selects.
func runHalo(c Spec, rr *RunResult, stdout, stderr io.Writer) error {
	base, blasts, err := c.HaloOptions()
	if err != nil {
		return err
	}
	for _, b := range blasts {
		fmt.Fprintf(stderr, "halo: blast from node %d: %s domain [%d, %d], %d nodes killed\n",
			b.Origin, b.Level, b.First, b.Last, len(b.Dead))
	}
	// Each sweep job gets its own freshly built plan, so nothing is
	// shared between concurrent simulations; Build is deterministic,
	// so every rebuild schedules identical faults.
	refresh := func(o *halo.Options) {
		if c.Faults == "" {
			return
		}
		fresh, _, err := c.HaloOptions()
		if err != nil {
			panic(err) // unreachable: the spec validated above
		}
		o.Faults = fresh.Faults
	}

	var rec *obs.Recorder
	if c.Trace || c.Profile || c.Links {
		rec = obs.NewRecorder()
		base.Probe = rec
	}
	warn := func(notes *runner.Notes, i int, res *mpi.Result) {
		if res == nil {
			return
		}
		if n := res.DroppedEvents(); n > 0 {
			notes.Add(i, "halo: warning: job %d: %d trace events dropped (buffer full)", i, n)
		}
		if c.Shards > 1 && res.Shards < c.Shards {
			notes.Add(i, "halo: note: job %d ran on the serial kernel (-shards %d needs -analytic and no link faults)", i, c.Shards)
		}
	}

	mode, _ := parseMode(c.Mode)
	switch {
	case c.Mappings:
		fmt.Fprintf(stdout, "HALO mapping comparison: %s %s %dx%d grid, %d words\n",
			c.Machine, mode, c.GridX, c.GridY, c.Words)
		var notes runner.Notes
		ds, err := runner.Map(len(topology.PaperHALOMappings), func(i int) (sim.Duration, error) {
			o := base
			o.Mapping = topology.PaperHALOMappings[i]
			refresh(&o)
			d, res, err := halo.RunResult(o)
			warn(&notes, i, res)
			return d, err
		})
		notes.Flush(stderr)
		if err != nil {
			return err
		}
		for i, m := range topology.PaperHALOMappings {
			fmt.Fprintf(stdout, "  %-5s %10.2f us\n", m, ds[i].Microseconds())
		}
	case c.Sweep:
		fmt.Fprintf(stdout, "HALO size sweep: %s %s %dx%d grid, %s, mapping %s\n",
			c.Machine, mode, c.GridX, c.GridY, base.Protocol, base.Mapping)
		var notes runner.Notes
		ds, err := runner.Map(len(haloSweepSizes), func(i int) (sim.Duration, error) {
			o := base
			o.Words = haloSweepSizes[i]
			refresh(&o)
			d, res, err := halo.RunResult(o)
			warn(&notes, i, res)
			return d, err
		})
		notes.Flush(stderr)
		if err != nil {
			return err
		}
		for i, w := range haloSweepSizes {
			fmt.Fprintf(stdout, "  %8d words %12.2f us\n", w, ds[i].Microseconds())
		}
	default:
		d, res, err := runHaloSingle(c, base)
		if err != nil {
			var rf *mpi.RankFailure
			if errors.As(err, &rf) && rec != nil {
				// An injected kill aborts the run, but the recorder
				// keeps everything observed up to the abort: deliver
				// the truncated artifacts alongside the error.
				if cerr := collect(c, rr, rec); cerr != nil {
					return cerr
				}
			}
			return err
		}
		if err := renderHaloSingle(c, base, d, res, stdout, stderr); err != nil {
			return err
		}
		if rec != nil {
			if c.Profile {
				if err := writeProfile(res, stdout); err != nil {
					return err
				}
			}
			if err := collect(c, rr, rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// runHaloSingle runs one halo exchange — stepwise serial when no
// shards are requested (the snapshot-capable path), sharded otherwise.
func runHaloSingle(c Spec, o halo.Options) (sim.Duration, *mpi.Result, error) {
	if c.Shards > 0 {
		return halo.RunResult(o)
	}
	sess, err := halo.Start(o)
	if err != nil {
		return 0, nil, err
	}
	return sess.Finish()
}

// renderHaloSingle prints the single-exchange report exactly as
// cmd/halo always has.
func renderHaloSingle(c Spec, o halo.Options, d sim.Duration, res *mpi.Result, stdout, stderr io.Writer) error {
	mode, _ := parseMode(c.Mode)
	fmt.Fprintf(stdout, "HALO %s %s %dx%d grid, %d words, %s, mapping %s: %v per exchange\n",
		c.Machine, mode, c.GridX, c.GridY, c.Words, o.Protocol, o.Mapping, d)
	if c.Faults != "" && res != nil {
		fmt.Fprintf(stdout, "  faults: lost ranks %v, recoveries %d (%v charged)\n",
			res.Lost, res.Net.Recoveries, res.Net.RecoveryTime)
		if o.Faults.LogSender() {
			fmt.Fprintf(stdout, "  msg log: %d orphans cancelled (%d peer-lost waits), %d restarts (%d msgs / %d bytes replayed, %v replay, %v restart charged)\n",
				res.Net.Orphans, len(res.PeerLost), res.Net.Restarts, res.Net.Replays,
				res.Net.ReplayBytes, res.Net.ReplayTime, res.Net.RestartTime)
		}
	}
	if n := res.DroppedEvents(); n > 0 {
		fmt.Fprintf(stderr, "halo: warning: %d trace events dropped (buffer full)\n", n)
	}
	if c.Shards > 1 && res.Shards < c.Shards {
		fmt.Fprintf(stderr, "halo: note: ran on the serial kernel (-shards %d needs -analytic and no link faults)\n", c.Shards)
	}
	return nil
}
