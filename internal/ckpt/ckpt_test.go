package ckpt

import (
	"math"
	"testing"

	"bgpsim/internal/iosys"
	"bgpsim/internal/machine"
)

func baseParams(t *testing.T) Params {
	t.Helper()
	m, err := machine.Lookup("BG/P")
	if err != nil {
		t.Fatal(err)
	}
	return Params{
		Machine:      m,
		Nodes:        64,
		Storage:      iosys.ORNLEugene(),
		Work:         3600,
		Interval:     450,
		BytesPerNode: 16 << 20,
		Reboot:       60,
		Seed:         7,
	}
}

func TestCkptFailureFree(t *testing.T) {
	p := baseParams(t)
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 || res.Rework != 0 {
		t.Fatalf("failure-free run reported failures: %+v", res)
	}
	if want := int(math.Ceil(p.Work / p.Interval)); res.Checkpoints != want {
		t.Errorf("Checkpoints = %d, want %d", res.Checkpoints, want)
	}
	// TTS = work + checkpoint overhead; the overhead is real but small.
	if res.TTS <= p.Work {
		t.Errorf("TTS %.1fs does not exceed the compute time %.1fs", res.TTS, p.Work)
	}
	if res.TTS > 1.2*p.Work {
		t.Errorf("TTS %.1fs implies absurd checkpoint overhead", res.TTS)
	}
}

func TestCkptDeterminism(t *testing.T) {
	p := baseParams(t)
	p.NodeMTBF = 600 * 64 // system MTBF 600s: several failures per run
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same params, different results:\n%+v\n%+v", a, b)
	}
}

func TestCkptFailuresCostTime(t *testing.T) {
	p := baseParams(t)
	healthy, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	p.NodeMTBF = 600 * 64
	faulty, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Failures == 0 {
		t.Fatal("system MTBF of 600s produced no failures over an hour of work")
	}
	if faulty.TTS <= healthy.TTS {
		t.Errorf("faulty TTS %.1fs not above failure-free %.1fs", faulty.TTS, healthy.TTS)
	}
	if faulty.Rework <= 0 {
		t.Error("failures caused no rework")
	}
}

func TestCkptRejectsBadParams(t *testing.T) {
	good := baseParams(t)
	for _, mut := range []func(*Params){
		func(p *Params) { p.Machine = nil },
		func(p *Params) { p.Storage = nil },
		func(p *Params) { p.Work = 0 },
		func(p *Params) { p.Interval = -1 },
		func(p *Params) { p.BytesPerNode = -1 },
		func(p *Params) { p.Reboot = -1 },
	} {
		p := good
		mut(&p)
		if _, err := Run(p); err == nil {
			t.Errorf("Run accepted bad params %+v", p)
		}
	}
}
