// Package ckpt runs coordinated checkpoint/restart as an actual
// simulated application: compute segments separated by barriers, with
// each rank writing its checkpoint through the stateful storage model
// (iosys.Sim) so checkpoints occupy the I/O path over virtual time
// instead of being priced by a closed-form formula. Failures arrive on
// a deterministic seeded exponential schedule; each one costs a reboot
// plus reading the last checkpoint back, and the work since that
// checkpoint is redone.
//
// The package is the simulation half of the differential check against
// fault.Checkpointer (Daly's expected-completion model) and
// fault.YoungDaly (the optimal-interval formula): sweeping Interval and
// minimizing the simulated time-to-solution must land near the
// analytic optimum (internal/fault/conformance).
package ckpt

import (
	"fmt"
	"math"

	"bgpsim/internal/fault"
	"bgpsim/internal/iosys"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
	"bgpsim/internal/network"
	"bgpsim/internal/sim"
)

// Params configures one checkpoint/restart run.
type Params struct {
	Machine *machine.Machine
	Nodes   int
	Storage *iosys.Storage

	// Work is the failure-free compute time to complete, in seconds.
	Work float64
	// Interval is the compute time between checkpoints (Daly's τ),
	// in seconds.
	Interval float64
	// BytesPerNode is each rank's checkpoint size (N-N checkpointing,
	// one file per node).
	BytesPerNode float64
	// Reboot is the time to reboot and relaunch after a failure, before
	// reading the checkpoint back, in seconds.
	Reboot float64
	// NodeMTBF is the per-node mean time between failures in seconds;
	// the system rate is Nodes times higher (fault.SystemMTBF). Zero
	// disables failures.
	NodeMTBF float64

	Seed uint64
	// MaxFailures caps the precomputed failure schedule (default 4096);
	// a run that survives past the last scheduled failure sees no more.
	MaxFailures int

	// Faults, when non-nil, additionally injects the plan's faults at
	// the MPI layer. A plan with restart=ckpt prices its node kills as
	// user-level restarts through the same storage model this package
	// writes checkpoints through (mpi.Config.RestartRead) and the same
	// Reboot charge, rolled back to each rank's last committed segment
	// (mpi.Rank.CommitCheckpoint).
	Faults *fault.Plan
}

// Result summarizes one run.
type Result struct {
	// TTS is the simulated wall-clock time to solution, in seconds.
	TTS float64
	// Checkpoints counts committed checkpoints; Failures counts
	// failures taken; Rework is the compute time redone after failures,
	// in seconds.
	Checkpoints int
	Failures    int
	Rework      float64
}

// Run executes the checkpoint/restart application and returns the
// simulated outcome. One rank runs per node (SMP mode). The run is a
// pure function of Params.
func Run(p Params) (Result, error) {
	if p.Machine == nil || p.Storage == nil {
		return Result{}, fmt.Errorf("ckpt: machine and storage required")
	}
	if p.Work <= 0 || p.Interval <= 0 || p.BytesPerNode < 0 || p.Reboot < 0 {
		return Result{}, fmt.Errorf("ckpt: bad parameters work=%g interval=%g bytes=%g reboot=%g",
			p.Work, p.Interval, p.BytesPerNode, p.Reboot)
	}
	maxFail := p.MaxFailures
	if maxFail <= 0 {
		maxFail = 4096
	}
	sched := failureSchedule(p, maxFail)

	io, err := iosys.NewSim(p.Storage, p.Nodes)
	if err != nil {
		return Result{}, err
	}
	var out Result
	res, err := mpi.Execute(mpi.Config{
		Machine:  p.Machine,
		Nodes:    p.Nodes,
		Mode:     machine.SMP,
		Fidelity: network.Contention,
		Seed:     p.Seed,
		Faults:   p.Faults,
		RestartRead: func(at sim.Time, node int, bytes float64) sim.Duration {
			return io.NodeRead(at, node, bytes).Sub(at)
		},
		RestartReboot: sim.Seconds(p.Reboot),
	}, func(r *Rank) { ckptProgram(r, p, sched, io, &out) })
	if err != nil {
		return Result{}, err
	}
	out.TTS = res.Elapsed.Seconds()
	return out, nil
}

// Rank aliases mpi.Rank so the program signature below reads plainly.
type Rank = mpi.Rank

// ckptProgram is the per-rank body. Every decision is taken at a
// barrier-aligned time (the hardware barrier releases all ranks at the
// same instant), so all ranks branch identically and the shared
// counters are written consistently; only rank 0 accumulates Result.
func ckptProgram(r *Rank, p Params, sched []float64, io *iosys.Sim, out *Result) {
	world := r.World()
	node := r.Node()
	done := 0.0
	fi := 0
	restart := func() {
		// Reboot, read the last checkpoint back, and re-align.
		r.Advance(sim.Seconds(p.Reboot))
		r.Advance(io.NodeRead(r.Now(), node, p.BytesPerNode).Sub(r.Now()))
		world.Barrier(r)
	}
	for done < p.Work {
		t := sim.Duration(r.Now()).Seconds()
		seg := math.Min(p.Interval, p.Work-done)
		if fi < len(sched) && sched[fi] < t+seg {
			// Failure strikes mid-segment (or during a restart already in
			// progress, when sched[fi] < t): the segment is lost.
			lost := math.Max(0, sched[fi]-t)
			r.Advance(sim.Seconds(lost))
			fi++
			if r.ID() == 0 {
				out.Failures++
				out.Rework += lost
			}
			restart()
			continue
		}
		r.Advance(sim.Seconds(seg))
		r.Advance(io.NodeWrite(r.Now(), node, p.BytesPerNode, 1).Sub(r.Now()))
		world.Barrier(r)
		if fi < len(sched) && sched[fi] < sim.Duration(r.Now()).Seconds() {
			// Failure struck while the checkpoint was being written: the
			// checkpoint may be torn, so the segment is redone from the
			// previous one.
			fi++
			if r.ID() == 0 {
				out.Failures++
				out.Rework += seg
			}
			restart()
			continue
		}
		done += seg
		r.CommitCheckpoint(p.BytesPerNode)
		if r.ID() == 0 {
			out.Checkpoints++
		}
	}
}

// failureSchedule draws the deterministic system-failure times:
// exponential inter-arrivals at rate Nodes/NodeMTBF, from the run
// seed.
func failureSchedule(p Params, maxFail int) []float64 {
	if p.NodeMTBF <= 0 {
		return nil
	}
	m := p.NodeMTBF / float64(p.Nodes)
	rng := sim.NewRNG(p.Seed ^ 0xc2b2ae3d27d4eb4f)
	sched := make([]float64, 0, 16)
	t := 0.0
	// The horizon is generous: a run needing more than maxFail failures
	// (or 100x the failure-free work) is pathological for the model.
	for len(sched) < maxFail && t < 100*p.Work {
		u := rng.Float64()
		t += -m * math.Log(1-u)
		sched = append(sched, t)
	}
	return sched
}
