package dfft

import (
	"math/cmplx"
	"testing"

	"bgpsim/internal/kernels"
	"bgpsim/internal/machine"
)

func reference(seed uint64, logN int) []complex128 {
	n := 1 << uint(logN)
	x := make([]complex128, n)
	for j := range x {
		x[j] = Input(seed, j)
	}
	kernels.FFT(x)
	return x
}

func TestDistributedFFTMatchesSerial(t *testing.T) {
	for _, c := range []struct {
		procs, logN int
	}{
		{1, 8},
		{2, 10},
		{4, 12},
		{8, 12},
	} {
		res, err := Run(Config{Machine: machine.BGP, Mode: machine.VN,
			Procs: c.procs, LogN: c.logN, Seed: 11})
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		ref := reference(11, c.logN)
		for k := range ref {
			if cmplx.Abs(res.X[k]-ref[k]) > 1e-9*float64(len(ref)) {
				t.Fatalf("%+v: X[%d] = %v, want %v", c, k, res.X[k], ref[k])
			}
		}
		if res.VirtualSeconds <= 0 || res.GFlops <= 0 {
			t.Errorf("%+v: no timing", c)
		}
	}
}

func TestDistributedFFTScales(t *testing.T) {
	one, err := Run(Config{Machine: machine.XT4QC, Mode: machine.VN, Procs: 1, LogN: 14, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Run(Config{Machine: machine.XT4QC, Mode: machine.VN, Procs: 8, LogN: 14, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if eight.VirtualSeconds >= one.VirtualSeconds {
		t.Errorf("8 ranks (%gs) should beat 1 rank (%gs)", eight.VirtualSeconds, one.VirtualSeconds)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Machine: machine.BGP, Mode: machine.VN, Procs: 3, LogN: 10}); err == nil {
		t.Error("3 ranks do not divide a 32x32 grid; expected error")
	}
	if _, err := Run(Config{Machine: machine.BGP, Mode: machine.VN, Procs: 0, LogN: 10}); err == nil {
		t.Error("zero procs should fail")
	}
}

func TestInputDeterministic(t *testing.T) {
	if Input(1, 7) != Input(1, 7) || Input(1, 7) == Input(2, 7) {
		t.Error("Input generator wrong")
	}
}
