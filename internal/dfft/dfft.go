// Package dfft is a distributed-memory 1-D complex FFT running ON the
// simulator with real data: Bailey's four-step algorithm with local
// row FFTs, a twiddle pass, a payload-carrying all-to-all transpose,
// and local column FFTs. The result is verified element-wise against
// the serial kernel, tying the HPCC FFT cost model (local work + three
// transposes) to an executable reference.
package dfft

import (
	"fmt"
	"math"
	"math/cmplx"

	"bgpsim/internal/core"
	"bgpsim/internal/kernels"
	"bgpsim/internal/machine"
	"bgpsim/internal/mpi"
)

// Config describes a distributed FFT run.
type Config struct {
	Machine machine.ID
	Mode    machine.Mode
	Procs   int
	LogN    int // transform length 2^LogN
	Seed    uint64
}

// Result reports the run.
type Result struct {
	VirtualSeconds float64
	GFlops         float64
	// X is the transform result in natural order (gathered at rank 0).
	X []complex128
}

// Input returns element j of the deterministic test signal.
func Input(seed uint64, j int) complex128 {
	h := seed ^ uint64(j)*0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	re := float64(h>>40)/float64(1<<24) - 0.5
	im := float64((h>>16)&0xffffff)/float64(1<<24) - 0.5
	return complex(re, im)
}

// Run computes the distributed FFT. The length must split into an
// n1 x n2 grid with n1 and n2 both multiples of Procs.
func Run(cfg Config) (*Result, error) {
	if cfg.LogN < 2 || cfg.Procs <= 0 {
		return nil, fmt.Errorf("dfft: bad config %+v", cfg)
	}
	n := 1 << uint(cfg.LogN)
	logN1 := cfg.LogN / 2
	n1 := 1 << uint(logN1) // rows (column-major first index)
	n2 := n / n1           // columns
	if n1%cfg.Procs != 0 || n2%cfg.Procs != 0 {
		return nil, fmt.Errorf("dfft: %d ranks do not divide the %dx%d grid", cfg.Procs, n1, n2)
	}
	p := cfg.Procs
	rowsPer := n1 / p // rows of A per rank (phase 1)
	colsPer := n2 / p // columns per rank (phase 2)

	mcfg := core.PartitionConfig(cfg.Machine, cfg.Mode, p)
	var out Result
	res, err := mpi.Execute(mcfg, func(r *mpi.Rank) {
		me := r.ID()
		// Phase 1 layout: rank holds rows [me*rowsPer, ...) of the
		// column-major matrix A[j1][j2] = x[j1 + j2*n1].
		rows := make([][]complex128, rowsPer)
		for i := range rows {
			j1 := me*rowsPer + i
			row := make([]complex128, n2)
			for j2 := 0; j2 < n2; j2++ {
				row[j2] = Input(cfg.Seed, j1+j2*n1)
			}
			rows[i] = row
		}

		// Step 1: n2-point FFT along each row.
		for _, row := range rows {
			kernels.FFT(row)
		}
		r.Compute(float64(rowsPer)*kernels.FFTFlops(n2), float64(rowsPer*n2*16),
			machine.ClassFFT)

		// Step 2: twiddle multiply A[j1][k2] *= w^(j1*k2).
		for i, row := range rows {
			j1 := me*rowsPer + i
			for k2 := 0; k2 < n2; k2++ {
				ang := -2 * math.Pi * float64(j1) * float64(k2) / float64(n)
				row[k2] *= cmplx.Exp(complex(0, ang))
			}
		}
		r.Compute(float64(rowsPer*n2)*8, float64(rowsPer*n2*16), machine.ClassFFT)

		// Step 3: transpose so each rank holds whole columns. Sends
		// are non-blocking (every rank sends to every rank, so a
		// blocking rendezvous would deadlock).
		var sends []*mpi.Request
		for q := 0; q < p; q++ {
			if q == me {
				continue
			}
			block := make([][]complex128, rowsPer)
			for i, row := range rows {
				block[i] = append([]complex128(nil), row[q*colsPer:(q+1)*colsPer]...)
			}
			sends = append(sends, r.IsendPayload(q, rowsPer*colsPer*16, 300+me, block))
		}
		// cols[c][j1] for my columns c in [me*colsPer, ...).
		cols := make([][]complex128, colsPer)
		for c := range cols {
			cols[c] = make([]complex128, n1)
		}
		place := func(srcRank int, block [][]complex128) {
			for i, row := range block {
				j1 := srcRank*rowsPer + i
				for c := 0; c < colsPer; c++ {
					cols[c][j1] = row[c]
				}
			}
		}
		place(me, extract(rows, me*colsPer, colsPer))
		for q := 0; q < p; q++ {
			if q == me {
				continue
			}
			_, payload := r.RecvPayload(q, 300+q)
			place(q, payload.([][]complex128))
		}
		r.Waitall(sends...)

		// Step 4: n1-point FFT along each column.
		for _, col := range cols {
			kernels.FFT(col)
		}
		r.Compute(float64(colsPer)*kernels.FFTFlops(n1), float64(colsPer*n1*16),
			machine.ClassFFT)

		// Gather the result at rank 0 in natural order:
		// X[k2 + k1*n2] = A[k1][k2].
		if me != 0 {
			r.SendPayload(0, colsPer*n1*16, 700+me, cols)
			return
		}
		x := make([]complex128, n)
		emit := func(srcRank int, blocks [][]complex128) {
			for c, col := range blocks {
				k2 := srcRank*colsPer + c
				for k1 := 0; k1 < n1; k1++ {
					x[k2+k1*n2] = col[k1]
				}
			}
		}
		emit(0, cols)
		for q := 1; q < p; q++ {
			_, payload := r.RecvPayload(q, 700+q)
			emit(q, payload.([][]complex128))
		}
		out.X = x
	})
	if err != nil {
		return nil, err
	}
	out.VirtualSeconds = res.Elapsed.Seconds()
	out.GFlops = kernels.FFTFlops(n) / out.VirtualSeconds / 1e9
	return &out, nil
}

// extract copies a column slice of the local rows.
func extract(rows [][]complex128, c0, count int) [][]complex128 {
	out := make([][]complex128, len(rows))
	for i, row := range rows {
		out[i] = row[c0 : c0+count]
	}
	return out
}
