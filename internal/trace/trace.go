// Package trace records simulation events — message sends, receive
// postings, matches, and collective entries/exits — into a bounded
// in-memory buffer for debugging and for verifying communication
// structure in tests. Tracing is off unless a Buffer is attached to
// the run configuration.
package trace

import (
	"fmt"
	"io"
	"sort"

	"bgpsim/internal/sim"
)

// Kind classifies a trace event.
type Kind int

// Event kinds.
const (
	Send Kind = iota
	RecvPost
	Match
	CollEnter
	CollExit
	// Fault marks a fault-layer action on a rank's timeline: a
	// user-level restart ("rank-restart"), one logged message replayed
	// into the restarting rank ("p2p-replay"), or a point-to-point
	// operation cancelled on a dead peer ("p2p-orphan"). Label names
	// the action; Peer and Bytes carry the peer rank and payload size
	// where applicable.
	Fault
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Send:
		return "send"
	case RecvPost:
		return "recv-post"
	case Match:
		return "match"
	case CollEnter:
		return "coll-enter"
	case CollExit:
		return "coll-exit"
	case Fault:
		return "fault"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one recorded occurrence.
type Event struct {
	T     sim.Time
	Rank  int
	Kind  Kind
	Peer  int // -1 when not applicable
	Bytes int
	Tag   int
	Label string // collective name, etc.
	Algo  string // collective algorithm ("bcast/binomial"); empty otherwise
}

// Buffer is a bounded event log. Events beyond the capacity are
// dropped (counted). The zero Buffer is unbounded; use NewBuffer to
// cap memory.
type Buffer struct {
	max     int
	events  []Event
	dropped int64

	// intern deduplicates Label/Algo strings. Collective keys are built
	// per rank per operation ("allreduce:17"), so a 160k-rank trace
	// would otherwise hold 160k copies of each; interning keeps one.
	intern map[string]string
}

// NewBuffer returns a buffer retaining at most max events (max <= 0
// means unbounded).
func NewBuffer(max int) *Buffer {
	return &Buffer{max: max}
}

// interned returns the canonical stored copy of s.
func (b *Buffer) interned(s string) string {
	if s == "" {
		return ""
	}
	if v, ok := b.intern[s]; ok {
		return v
	}
	if b.intern == nil {
		b.intern = make(map[string]string)
	}
	b.intern[s] = s
	return s
}

// Record appends an event, dropping it if the buffer is full.
func (b *Buffer) Record(e Event) {
	if b.max > 0 && len(b.events) >= b.max {
		b.dropped++
		return
	}
	e.Label = b.interned(e.Label)
	e.Algo = b.interned(e.Algo)
	b.events = append(b.events, e)
}

// Events returns the recorded events in order.
func (b *Buffer) Events() []Event { return b.events }

// Dropped returns how many events did not fit.
func (b *Buffer) Dropped() int64 { return b.dropped }

// Max returns the buffer's capacity (0 when unbounded).
func (b *Buffer) Max() int { return b.max }

// Len returns the number of retained events.
func (b *Buffer) Len() int { return len(b.events) }

// Filter returns the events satisfying keep.
func (b *Buffer) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range b.events {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// OfRank returns one rank's events.
func (b *Buffer) OfRank(rank int) []Event {
	return b.Filter(func(e Event) bool { return e.Rank == rank })
}

// OfKind returns events of one kind.
func (b *Buffer) OfKind(k Kind) []Event {
	return b.Filter(func(e Event) bool { return e.Kind == k })
}

// Merge fills dst (which must be empty) from per-shard buffers,
// ordering events by (timestamp, rank, per-shard order) — the sharded
// kernel's determinism-merge rule — and applying dst's capacity
// globally. Any event inside the global first-capacity prefix lies
// inside its own shard's first-capacity prefix (each shard buffer is
// capped at dst's capacity), so no retained event was lost to a
// per-shard cap; the dropped count is total recording attempts minus
// the retained events, exactly the serial buffer's count.
func Merge(dst *Buffer, shards []*Buffer) {
	type tagged struct {
		e   *Event
		idx int
	}
	var attempts int64
	var n int
	for _, b := range shards {
		if b == nil {
			continue
		}
		attempts += int64(len(b.events)) + b.dropped
		n += len(b.events)
	}
	all := make([]tagged, 0, n)
	for _, b := range shards {
		if b == nil {
			continue
		}
		for i := range b.events {
			all = append(all, tagged{e: &b.events[i], idx: i})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.e.T != b.e.T {
			return a.e.T < b.e.T
		}
		if a.e.Rank != b.e.Rank {
			return a.e.Rank < b.e.Rank
		}
		return a.idx < b.idx
	})
	for _, t := range all {
		dst.Record(*t.e)
	}
	dst.dropped = attempts - int64(len(dst.events))
}

// Dump writes a human-readable log.
func (b *Buffer) Dump(w io.Writer) error {
	for _, e := range b.events {
		var err error
		switch e.Kind {
		case Send:
			_, err = fmt.Fprintf(w, "%.9fs rank %d %s -> %d  %d bytes tag %d\n",
				e.T.Seconds(), e.Rank, e.Kind, e.Peer, e.Bytes, e.Tag)
		case RecvPost, Match:
			_, err = fmt.Fprintf(w, "%.9fs rank %d %s <- %d  tag %d\n",
				e.T.Seconds(), e.Rank, e.Kind, e.Peer, e.Tag)
		case Fault:
			_, err = fmt.Fprintf(w, "%.9fs rank %d %s %s peer %d  %d bytes\n",
				e.T.Seconds(), e.Rank, e.Kind, e.Label, e.Peer, e.Bytes)
		default:
			if e.Algo != "" {
				_, err = fmt.Fprintf(w, "%.9fs rank %d %s %s [%s]\n",
					e.T.Seconds(), e.Rank, e.Kind, e.Label, e.Algo)
			} else {
				_, err = fmt.Fprintf(w, "%.9fs rank %d %s %s\n",
					e.T.Seconds(), e.Rank, e.Kind, e.Label)
			}
		}
		if err != nil {
			return err
		}
	}
	if b.dropped > 0 {
		if _, err := fmt.Fprintf(w, "(%d events dropped)\n", b.dropped); err != nil {
			return err
		}
	}
	return nil
}
