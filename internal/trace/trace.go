// Package trace records simulation events — message sends, receive
// postings, matches, and collective entries/exits — into a bounded
// in-memory buffer for debugging and for verifying communication
// structure in tests. Tracing is off unless a Buffer is attached to
// the run configuration.
package trace

import (
	"fmt"
	"io"

	"bgpsim/internal/sim"
)

// Kind classifies a trace event.
type Kind int

// Event kinds.
const (
	Send Kind = iota
	RecvPost
	Match
	CollEnter
	CollExit
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Send:
		return "send"
	case RecvPost:
		return "recv-post"
	case Match:
		return "match"
	case CollEnter:
		return "coll-enter"
	case CollExit:
		return "coll-exit"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one recorded occurrence.
type Event struct {
	T     sim.Time
	Rank  int
	Kind  Kind
	Peer  int // -1 when not applicable
	Bytes int
	Tag   int
	Label string // collective name, etc.
	Algo  string // collective algorithm ("bcast/binomial"); empty otherwise
}

// Buffer is a bounded event log. Events beyond the capacity are
// dropped (counted). The zero Buffer is unbounded; use NewBuffer to
// cap memory.
type Buffer struct {
	max     int
	events  []Event
	dropped int64
}

// NewBuffer returns a buffer retaining at most max events (max <= 0
// means unbounded).
func NewBuffer(max int) *Buffer {
	return &Buffer{max: max}
}

// Record appends an event, dropping it if the buffer is full.
func (b *Buffer) Record(e Event) {
	if b.max > 0 && len(b.events) >= b.max {
		b.dropped++
		return
	}
	b.events = append(b.events, e)
}

// Events returns the recorded events in order.
func (b *Buffer) Events() []Event { return b.events }

// Dropped returns how many events did not fit.
func (b *Buffer) Dropped() int64 { return b.dropped }

// Len returns the number of retained events.
func (b *Buffer) Len() int { return len(b.events) }

// Filter returns the events satisfying keep.
func (b *Buffer) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range b.events {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// OfRank returns one rank's events.
func (b *Buffer) OfRank(rank int) []Event {
	return b.Filter(func(e Event) bool { return e.Rank == rank })
}

// OfKind returns events of one kind.
func (b *Buffer) OfKind(k Kind) []Event {
	return b.Filter(func(e Event) bool { return e.Kind == k })
}

// Dump writes a human-readable log.
func (b *Buffer) Dump(w io.Writer) error {
	for _, e := range b.events {
		var err error
		switch e.Kind {
		case Send:
			_, err = fmt.Fprintf(w, "%.9fs rank %d %s -> %d  %d bytes tag %d\n",
				e.T.Seconds(), e.Rank, e.Kind, e.Peer, e.Bytes, e.Tag)
		case RecvPost, Match:
			_, err = fmt.Fprintf(w, "%.9fs rank %d %s <- %d  tag %d\n",
				e.T.Seconds(), e.Rank, e.Kind, e.Peer, e.Tag)
		default:
			if e.Algo != "" {
				_, err = fmt.Fprintf(w, "%.9fs rank %d %s %s [%s]\n",
					e.T.Seconds(), e.Rank, e.Kind, e.Label, e.Algo)
			} else {
				_, err = fmt.Fprintf(w, "%.9fs rank %d %s %s\n",
					e.T.Seconds(), e.Rank, e.Kind, e.Label)
			}
		}
		if err != nil {
			return err
		}
	}
	if b.dropped > 0 {
		if _, err := fmt.Fprintf(w, "(%d events dropped)\n", b.dropped); err != nil {
			return err
		}
	}
	return nil
}
