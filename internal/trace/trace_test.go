package trace

import (
	"strings"
	"testing"

	"bgpsim/internal/sim"
)

func TestBufferBounded(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 5; i++ {
		b.Record(Event{T: sim.Time(i), Rank: i, Kind: Send})
	}
	if b.Len() != 3 || b.Dropped() != 2 {
		t.Errorf("len=%d dropped=%d", b.Len(), b.Dropped())
	}
}

func TestBufferUnbounded(t *testing.T) {
	var b Buffer
	for i := 0; i < 100; i++ {
		b.Record(Event{Rank: i})
	}
	if b.Len() != 100 || b.Dropped() != 0 {
		t.Error("zero buffer should be unbounded")
	}
}

func TestFilters(t *testing.T) {
	b := NewBuffer(0)
	b.Record(Event{Rank: 1, Kind: Send})
	b.Record(Event{Rank: 2, Kind: Match})
	b.Record(Event{Rank: 1, Kind: Match})
	if len(b.OfRank(1)) != 2 {
		t.Error("OfRank wrong")
	}
	if len(b.OfKind(Match)) != 2 {
		t.Error("OfKind wrong")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		Send: "send", RecvPost: "recv-post", Match: "match",
		CollEnter: "coll-enter", CollExit: "coll-exit",
	} {
		if k.String() != want {
			t.Errorf("%d = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind should format")
	}
}

func TestDump(t *testing.T) {
	b := NewBuffer(2)
	b.Record(Event{T: sim.Time(1000), Rank: 0, Kind: Send, Peer: 1, Bytes: 64, Tag: 7})
	b.Record(Event{T: sim.Time(2000), Rank: 1, Kind: CollEnter, Peer: -1, Label: "#0:barrier"})
	b.Record(Event{Rank: 2}) // dropped
	var sb strings.Builder
	if err := b.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"send -> 1", "64 bytes", "coll-enter #0:barrier", "1 events dropped"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}
