// Package mpi implements a message-passing programming model on top of
// the simulation kernel: ranks written as ordinary blocking Go
// functions, point-to-point operations with eager and rendezvous
// protocols, tag matching, communicators, and collective operations
// with per-machine algorithm selection (including the BlueGene
// hardware collective-tree offload).
package mpi

import (
	"fmt"

	"bgpsim/internal/cpu"
	"bgpsim/internal/fault"
	"bgpsim/internal/machine"
	"bgpsim/internal/network"
	"bgpsim/internal/obs"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
	"bgpsim/internal/trace"
)

// Config describes a simulated machine partition and run options.
type Config struct {
	Machine *machine.Machine
	Nodes   int // compute nodes in the partition
	Mode    machine.Mode
	Mapping topology.Mapping // defaults to XYZT
	Dims    topology.Dims    // optional torus shape override (zero = derive from Nodes)

	// Partition, when non-nil, scopes the world to a job-sized view of
	// a larger machine (the facility layer's allocation): Nodes and
	// Dims default to the partition's size and view shape (explicit
	// values must agree), and fragmented (non-isolated) partitions
	// derate the torus link bandwidth by the partition's LinkShare —
	// the XT shared-links effect. Node indices elsewhere in the config
	// (NodeSlowdown, fault plans) remain partition-local: local node i
	// is Partition.Nodes[i] on the parent machine.
	Partition *topology.Partition

	// Ranks optionally runs fewer MPI tasks than the partition's
	// capacity (Nodes * ranks-per-node). Zero means full capacity.
	Ranks int

	Fidelity network.Fidelity

	// AnalyticCollectives replaces message-by-message collective
	// simulation with closed-form durations. Use for very large rank
	// counts where per-message simulation is too slow and collective
	// internals are not the object of study.
	AnalyticCollectives bool

	// Coll overrides the machine's collective-algorithm selection table
	// per op, e.g. {"allreduce": "ring"}. An override that is
	// ineligible for a particular call (a hardware offload on a
	// sub-communicator, say) falls back to the table for that call.
	// See CollOps/CollAlgos for the valid names.
	Coll map[string]string

	Seed       uint64
	EventLimit uint64 // safety cap on simulation events (0 = none)

	// Shards splits the simulation across that many event loops running
	// on concurrent goroutines, synchronized by a conservative
	// time-window protocol (shard.go). Ranks are partitioned into
	// contiguous torus-node slabs; results are byte-identical to a
	// serial run. Only the analytic fidelity without link faults can
	// shard (the contention and packet models share per-link state);
	// other configurations silently run serial — Result.Shards reports
	// what actually ran. Zero or one means serial.
	Shards int

	// Trace, when non-nil, records message and collective events.
	Trace *trace.Buffer

	// Probe, when non-nil, streams observability events — per-rank
	// compute/wait transitions, send/match edges, collective spans,
	// link reservations, injection-queue waits, fault activations — to
	// the obs layer (usually an *obs.Recorder). A nil Probe runs the
	// uninstrumented fast path byte for byte; probes observe the run
	// and never advance virtual time.
	Probe obs.Probe

	// NodeSlowdown injects per-node compute derating (keyed by torus
	// node index): a factor of 0.1 makes every compute block on that
	// node 10% slower. It models OS interference, thermal throttling
	// or a sick node — the classic "one slow node stalls the
	// collective" experiment.
	NodeSlowdown map[int]float64

	// Faults, when non-nil, injects the plan's link faults (degraded
	// and failed links, rerouted or surfaced as errors), node kills
	// (surfaced as *RankFailure), and OS noise (deterministic
	// compute-block stretching). Nil reproduces the healthy machine
	// byte for byte.
	Faults *fault.Plan

	// RestartRead, when non-nil, prices reading a rank's last committed
	// checkpoint back during a user-level restart (fault plans with
	// restart=ckpt): it is called with the restart time, the restarting
	// torus node, and the committed byte count, and returns the read
	// duration. internal/ckpt wires its stateful I/O model in here; nil
	// charges a flat stream at a default bandwidth (replay.go).
	RestartRead func(at sim.Time, node int, bytes float64) sim.Duration

	// RestartReboot overrides the reboot-and-relaunch time charged per
	// user-level restart. Zero uses the built-in default (replay.go).
	RestartReboot sim.Duration

	// JobSpec is an opaque canonical job description attached by the
	// jobspec layer (internal/jobspec, bgpsim.NewSystemFromSpec). The
	// mpi layer never inspects it; it is carried unchanged to
	// Result.Spec so a run can report exactly which job produced it.
	JobSpec any
}

// World is a configured partition ready to execute one program.
type World struct {
	cfg    Config
	mach   *machine.Machine
	kernel *sim.Kernel
	torus  *topology.Torus
	mapper *topology.Mapper
	net    *network.Net
	cpu    *cpu.Model
	ranks  []*Rank
	world  *Comm

	noise   fault.NoiseProfile // active OS-noise profile
	noiseOn bool

	probe obs.Probe // nil unless observability is on

	// Pre-resolved collective dispatch tables (buildCollTables).
	collRules [numCollOps][]collRule
	collOver  [numCollOps]*CollAlgo

	// Collective-recovery state (recover.go). epoch counts failure
	// events; treeOK tracks whether the hardware collective tree is
	// still usable around the dead nodes.
	recovery  bool
	epoch     int
	treeOK    bool
	deadRank  map[int]bool
	deadNodes []int
	lost      []int // dead world ranks, sorted

	// Message-logging / replay state (replay.go). Exactly one of
	// cancelP2P and restartP2P can be set: log=sender alone cancels
	// orphaned point-to-point traffic at detection time; with
	// restart=ckpt, node kills become priced user-level restarts and no
	// rank leaves the job. deadAt (cancel mode) records each dead
	// rank's death time for the detection charge; restarts counts
	// restartNode invocations.
	cancelP2P  bool
	restartP2P bool
	deadAt     map[int]sim.Time
	restarts   int

	gates map[string]*gate
	ran   bool

	// Sharded-execution state (shard.go). sharded is true while
	// runSharded drives the coordinator loop; vnow is the coordinator's
	// virtual time (what w.now() reports during barrier-side work);
	// allComms registers every communicator so the coordinator can
	// refresh live-membership caches after a node failure before shards
	// run concurrently again.
	sharded     bool
	shards      []*shard
	vnow        sim.Time
	coordEvents uint64
	allComms    []*Comm
	coordLog    *obs.ShardLog
	userProbe   obs.Probe
}

// now returns the current virtual time: the kernel clock in serial
// runs, the coordinator's virtual time in sharded runs (where
// barrier-side work — gate completion, fault processing — happens
// between shard windows, off any kernel's clock).
func (w *World) now() sim.Time {
	if w.sharded {
		return w.vnow
	}
	return w.kernel.Now()
}

// registerComm records a communicator for the sharded coordinator's
// live-membership refresh. In sharded mode with failures already
// applied, the new comm's live cache is warmed immediately so rank-side
// reads never allocate it concurrently.
func (w *World) registerComm(c *Comm) {
	w.allComms = append(w.allComms, c)
	if w.sharded && w.epoch > 0 {
		c.liveComm()
	}
}

// NewWorld validates the configuration and builds the partition.
func NewWorld(cfg Config) (*World, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("mpi: no machine configured")
	}
	if p := cfg.Partition; p != nil {
		if cfg.Nodes == 0 {
			cfg.Nodes = p.Size()
		} else if cfg.Nodes != p.Size() {
			return nil, fmt.Errorf("mpi: config says %d nodes but partition holds %d", cfg.Nodes, p.Size())
		}
		if cfg.Dims.Nodes() == 0 || cfg.Dims[0] == 0 {
			cfg.Dims = p.ViewDims()
		}
	}
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("mpi: node count %d must be positive", cfg.Nodes)
	}
	if !cfg.Machine.SupportsMode(cfg.Mode) {
		return nil, fmt.Errorf("mpi: %s does not support %s mode", cfg.Machine.Name, cfg.Mode)
	}
	if cfg.Mapping == "" {
		cfg.Mapping = topology.MapXYZT
	}
	if !cfg.Mapping.Valid() {
		return nil, fmt.Errorf("mpi: invalid mapping %q", cfg.Mapping)
	}
	dims := cfg.Dims
	if dims.Nodes() == 0 || dims[0] == 0 {
		dims = topology.DimsForNodes(cfg.Nodes)
	}
	if dims.Nodes() != cfg.Nodes {
		return nil, fmt.Errorf("mpi: dims %v hold %d nodes, config says %d", dims, dims.Nodes(), cfg.Nodes)
	}
	for op, name := range cfg.Coll {
		if _, ok := opIndex(op); !ok {
			return nil, fmt.Errorf("mpi: collective override for unknown op %q (valid: %v)", op, CollOps())
		}
		if collRegistry[algoKey{op, name}] == nil {
			return nil, fmt.Errorf("mpi: unknown %s algorithm %q (valid: %v)", op, name, CollAlgos(op))
		}
	}
	rpn := cfg.Machine.RanksPerNode(cfg.Mode)
	capacity := cfg.Nodes * rpn
	nranks := cfg.Ranks
	if nranks == 0 {
		nranks = capacity
	}
	if nranks < 1 || nranks > capacity {
		return nil, fmt.Errorf("mpi: %d ranks exceed capacity %d (%d nodes x %d/node)",
			nranks, capacity, cfg.Nodes, rpn)
	}

	w := &World{
		cfg:    cfg,
		mach:   cfg.Machine,
		kernel: sim.NewKernel(),
		torus:  topology.NewTorus(dims),
		gates:  make(map[string]*gate),
	}
	w.kernel.EventLimit = cfg.EventLimit
	w.mapper = topology.NewMapper(w.torus, rpn, cfg.Mapping)
	w.net = network.New(cfg.Machine, w.torus, cfg.Fidelity)
	if p := cfg.Partition; p != nil && !p.Isolated {
		if share := p.LinkShare(); share < 1 {
			w.net.SetLinkShare(share)
		}
	}
	w.cpu = cpu.New(cfg.Machine, cfg.Mode)
	if cfg.Faults != nil {
		if err := w.validateFaults(cfg.Faults, cfg.Nodes); err != nil {
			return nil, err
		}
		w.net.SetFaults(cfg.Faults)
		if cfg.Faults.Recover() {
			w.recovery = true
			w.deadRank = make(map[int]bool)
			if cfg.Faults.LogSender() {
				if cfg.Faults.RestartCkpt() {
					w.restartP2P = true
				} else {
					w.cancelP2P = true
					w.deadAt = make(map[int]sim.Time)
				}
			}
		}
	}
	w.treeOK = true
	if cfg.Probe != nil {
		w.probe = cfg.Probe
		w.kernel.Probe = cfg.Probe // obs.Probe supersets sim.Probe
		w.net.SetProbe(cfg.Probe)
	}

	w.ranks = make([]*Rank, nranks)
	members := make([]int, nranks)
	for i := range w.ranks {
		w.ranks[i] = newRank(w, i, w.mapper.Place(i))
		members[i] = i
	}
	w.world = &Comm{w: w, members: members, isWorld: true}
	w.registerComm(w.world)
	w.buildCollTables()
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Net returns the interconnect (for inspection in tests and reports).
func (w *World) Net() *network.Net { return w.net }

// CPU returns the per-rank compute model.
func (w *World) CPU() *cpu.Model { return w.cpu }

// Machine returns the machine model.
func (w *World) Machine() *machine.Machine { return w.mach }

// Config returns the world's configuration.
func (w *World) Config() Config { return w.cfg }

// Result summarizes one program execution.
type Result struct {
	// Elapsed is the virtual time when the last rank finished.
	Elapsed sim.Duration
	// RankElapsed is each rank's finish time.
	RankElapsed []sim.Duration
	// Timers holds, per timer name, each rank's accumulated duration.
	Timers map[string][]sim.Duration
	// Net holds the interconnect traffic counters.
	Net network.Stats
	// Events is the number of simulation events fired.
	Events uint64
	// Dropped is the number of trace events the Config.Trace buffer
	// discarded because it filled (zero without a trace buffer).
	Dropped int64
	// Probe is the probe the run drove (nil when observability is
	// off). Use Recorder/Profile/CriticalPath for the standard views.
	Probe obs.Probe
	// Lost lists the world ranks killed by fault injection under
	// transparent recovery, sorted (empty on healthy or fail-stop
	// runs). A lost rank's RankElapsed entry is when it unwound.
	Lost []int
	// PeerLost lists, in rank order, the surviving ranks whose plain
	// (error-unaware) point-to-point waits were cancelled on a dead
	// peer under a fault plan with log=sender; each entry carries the
	// peer and the cancellation time. Programs using WaitErr/RecvErr
	// handle the error themselves and do not appear here.
	PeerLost []*PeerLostError
	// Shards is the number of event loops the run actually used: the
	// effective shard count after eligibility clamping (1 for serial
	// runs and for configurations that cannot shard).
	Shards int
	// PeakRankState is the modeled peak per-rank state footprint in
	// bytes: the fixed rank record plus the deepest simultaneous
	// unmatched-message and posted-receive queues any rank reached. It
	// is a deterministic model quantity (not a host heap measurement),
	// so it is identical at any shard count and pinnable in tests.
	PeakRankState int64

	// spec is the Config.JobSpec the run was built from (nil when no
	// spec was attached); see Spec.
	spec any
}

// Spec returns the canonical job description attached to the run's
// Config (Config.JobSpec), nil when the run was configured directly.
// Callers that built the config through the jobspec layer assert it
// back to a jobspec.Spec (bgpsim.JobSpec at the public surface).
func (r *Result) Spec() any { return r.spec }

// Stats returns the interconnect traffic counters (accessor form of
// the Net field).
func (r *Result) Stats() network.Stats { return r.Net }

// DroppedEvents returns how many trace events the run's trace buffer
// discarded for lack of capacity. A nonzero count means the trace is
// incomplete; raise the buffer's capacity.
func (r *Result) DroppedEvents() int64 { return r.Dropped }

// Recorder returns the run's probe as an *obs.Recorder when that is
// what the run was configured with, nil otherwise.
func (r *Result) Recorder() *obs.Recorder {
	rec, _ := r.Probe.(*obs.Recorder)
	return rec
}

// Profile returns the per-rank time decomposition when an
// *obs.Recorder probe was attached, nil otherwise.
func (r *Result) Profile() *obs.Profile {
	if rec := r.Recorder(); rec != nil {
		p := rec.Profile()
		if p != nil {
			p.PeakRankStateBytes = r.PeakRankState
		}
		return p
	}
	return nil
}

// CriticalPath returns the critical-path walk when an *obs.Recorder
// probe was attached, nil otherwise.
func (r *Result) CriticalPath() *obs.CritPath {
	if rec := r.Recorder(); rec != nil {
		return rec.CriticalPath()
	}
	return nil
}

// MaxTimer returns the maximum accumulated duration of the named timer
// across ranks (zero if the timer never ran).
func (r *Result) MaxTimer(name string) sim.Duration {
	var max sim.Duration
	for _, d := range r.Timers[name] {
		if d > max {
			max = d
		}
	}
	return max
}

// TimerOfRank returns the named timer of one rank (zero if absent).
func (r *Result) TimerOfRank(rank int, name string) sim.Duration {
	ds := r.Timers[name]
	if rank < 0 || rank >= len(ds) {
		return 0
	}
	return ds[rank]
}

// Run executes the program on every rank and returns the result. A
// World can run only once. An MPI deadlock in the program is returned
// as an error (wrapping *sim.DeadlockError).
func (w *World) Run(program func(*Rank)) (*Result, error) {
	if w.ran {
		return nil, fmt.Errorf("mpi: world already ran")
	}
	w.ran = true
	if s := w.effectiveShards(); s >= 1 {
		return w.runSharded(program, s)
	}
	if w.cfg.Faults != nil {
		w.scheduleNodeFaults(w.cfg.Faults)
		if w.probe != nil {
			reportLinkFaults(w.probe, w.cfg.Faults)
		}
	}
	finish := make([]sim.Duration, len(w.ranks))
	for _, r := range w.ranks {
		w.spawnRank(w.kernel, r, program, finish)
	}
	if err := w.kernel.Run(); err != nil {
		return nil, w.annotateDeadlock(err)
	}
	res := w.buildResult(finish)
	res.Net = w.net.Stats()
	res.Events = w.kernel.Events()
	res.Shards = 1
	if w.cfg.Trace != nil {
		res.Dropped = w.cfg.Trace.Dropped()
	}
	return res, nil
}

// effectiveShards decides the execution path: 0 means the serial
// kernel, n >= 1 means the sharded coordinator with n domains. Any
// explicitly requested shard count — including 1 — takes the sharded
// path, because sharded runs use the canonical same-timestamp event
// order (sim.Kernel.Keyed) and must be byte-identical at every
// requested count; -shards 1 is the baseline the others are compared
// against. Eligibility is count-independent for the same reason: a
// configuration that cannot shard (contention or packet fidelity,
// whose torus models mutate per-link state shared across all nodes;
// an active link-fault plan, which routes through that state; or zero
// lookahead) falls back to serial at every count.
func (w *World) effectiveShards() int {
	s := w.cfg.Shards
	if s <= 0 {
		return 0
	}
	if w.cfg.Fidelity != network.Analytic {
		return 0
	}
	if w.cfg.Faults.HasLinkFaults() {
		return 0
	}
	if w.net.Lookahead() <= 0 {
		// Zero lookahead: a message can arrive in the timestamp it was
		// sent, so no conservative window wider than a single event
		// exists. Run serial.
		return 0
	}
	return s
}

// spawnRank starts one rank's process on the given kernel with the
// standard kill-absorbing wrapper (shared by the serial and sharded
// paths).
func (w *World) spawnRank(k *sim.Kernel, r *Rank, program func(*Rank), finish []sim.Duration) {
	r.proc = k.SpawnTagged(fmt.Sprintf("rank %d", r.id), r.id, func(p *sim.Proc) {
		defer func() {
			// A rank killed under transparent recovery unwinds with
			// a rankKilledPanic; absorb it here (recording when the
			// rank died) so the kernel's wrapper never sees it. No
			// RankDone: the rank did not finish the program.
			if v := recover(); v != nil {
				if _, killed := v.(rankKilledPanic); killed {
					finish[r.id] = sim.Duration(p.Now())
					return
				}
				if _, cancelled := v.(peerLostPanic); cancelled {
					// A survivor whose plain blocking wait was cancelled
					// on a dead peer (log=sender): the error is already in
					// r.peerLost for Result.PeerLost. No RankDone — the
					// rank did not finish the program.
					finish[r.id] = sim.Duration(p.Now())
					return
				}
				panic(v)
			}
		}()
		program(r)
		finish[r.id] = sim.Duration(p.Now())
		if r.pb != nil {
			r.pb.RankDone(r.id, p.Now())
		}
	})
}

// Modeled per-rank state sizes for the PeakRankState telemetry: the
// fixed rank record and the cost of one queued unmatched message or
// posted receive. Fixed constants (not unsafe.Sizeof) so the reported
// value is identical across architectures and pinnable in tests.
const (
	rankStateBaseBytes = 320
	queuedMsgBytes     = 96
	postedReqBytes     = 64
)

// peakRankState returns the modeled peak per-rank state footprint.
func (w *World) peakRankState() int64 {
	var peak int64
	for _, r := range w.ranks {
		b := int64(rankStateBaseBytes) +
			int64(r.peakInbox)*queuedMsgBytes +
			int64(r.peakPosted)*postedReqBytes
		if b > peak {
			peak = b
		}
	}
	return peak
}

// buildResult assembles the kernel-independent parts of a Result:
// per-rank finish times, timers, losses, probe, and the memory
// telemetry. The caller fills Events, Net, Shards, and Dropped.
func (w *World) buildResult(finish []sim.Duration) *Result {
	res := &Result{
		RankElapsed:   finish,
		Timers:        make(map[string][]sim.Duration),
		Probe:         w.probe,
		Lost:          w.Lost(),
		PeakRankState: w.peakRankState(),
		spec:          w.cfg.JobSpec,
	}
	for _, d := range finish {
		if d > res.Elapsed {
			res.Elapsed = d
		}
	}
	for _, r := range w.ranks {
		if r.peerLost != nil {
			res.PeerLost = append(res.PeerLost, r.peerLost)
		}
	}
	for _, r := range w.ranks {
		for name, d := range r.timers {
			ds, ok := res.Timers[name]
			if !ok {
				ds = make([]sim.Duration, len(w.ranks))
				res.Timers[name] = ds
			}
			ds[r.id] = d
		}
	}
	return res
}

// Execute builds a world from cfg and runs the program: the common
// one-shot path.
func Execute(cfg Config, program func(*Rank)) (*Result, error) {
	w, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	return w.Run(program)
}
