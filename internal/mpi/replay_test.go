package mpi

import (
	"errors"
	"strings"
	"testing"

	"bgpsim/internal/fault"
	"bgpsim/internal/machine"
	"bgpsim/internal/sim"
)

// logPlan is a recovery plan with sender-based logging: node kills
// cancel orphaned point-to-point traffic instead of deadlocking.
func logPlan(node int, at sim.Time) *fault.Plan {
	p := fault.NewPlan(1)
	p.KillNode(node, at)
	p.EnableRecovery()
	p.EnableSenderLogging()
	return p
}

// restartPlan additionally turns node kills into priced user-level
// restarts (no rank leaves the job).
func restartPlan(node int, at sim.Time) *fault.Plan {
	p := logPlan(node, at)
	p.EnableCkptRestart()
	return p
}

// pairProg exchanges messages between ranks i and i^1: point-to-point
// traffic with no collectives, so killing one node strands exactly its
// partner.
func pairProg(iters, bytes int) func(*Rank) {
	return func(r *Rank) {
		p := r.ID() ^ 1
		if p >= r.Size() {
			return
		}
		for i := 0; i < iters; i++ {
			r.Advance(10 * sim.Microsecond)
			if r.ID() < p {
				r.Send(p, bytes, i)
				r.Recv(p, i)
			} else {
				r.Recv(p, i)
				r.Send(p, bytes, i)
			}
		}
	}
}

// ringProg is a nearest-neighbor ring exchange (every rank talks to the
// killed one's neighbors eventually), usable under restart=ckpt where
// nobody dies.
func ringProg(iters, bytes int) func(*Rank) {
	return func(r *Rank) {
		n := r.Size()
		for i := 0; i < iters; i++ {
			r.Advance(10 * sim.Microsecond)
			r.Sendrecv((r.ID()+1)%n, bytes, 1, (r.ID()+n-1)%n, 1)
		}
	}
}

const killT = sim.Time(25 * sim.Microsecond)

// cancelAtT is when cancellations land: death plus failure detection.
func cancelAtT() sim.Time { return killT.Add(sim.Seconds(recoveryDetectS)) }

func TestCancelEagerCompletes(t *testing.T) {
	res, err := Execute(recoverCfg(t, 8, logPlan(3, killT)), pairProg(5, 512))
	if err != nil {
		t.Fatalf("run with p2p traffic to a killed rank did not complete: %v", err)
	}
	if len(res.Lost) != 1 || res.Lost[0] != 3 {
		t.Fatalf("Lost = %v, want [3]", res.Lost)
	}
	if len(res.PeerLost) != 1 {
		t.Fatalf("PeerLost = %v, want exactly the dead rank's partner", res.PeerLost)
	}
	pl := res.PeerLost[0]
	if pl.Rank != 2 || pl.Peer != 3 || pl.Node != 3 {
		t.Errorf("PeerLost = %+v, want rank 2 / peer 3 / node 3", pl)
	}
	if pl.At != cancelAtT() {
		t.Errorf("cancellation at %v, want death + detection = %v", pl.At, cancelAtT())
	}
	if res.Net.Orphans == 0 {
		t.Error("no orphaned messages recorded")
	}
}

func TestCancelRendezvousCompletes(t *testing.T) {
	// 200 kB is far past BG/P's eager limit: the partner's send to the
	// dead rank takes the rendezvous NACK path.
	res, err := Execute(recoverCfg(t, 8, logPlan(3, killT)), pairProg(5, 200_000))
	if err != nil {
		t.Fatalf("rendezvous run with killed rank did not complete: %v", err)
	}
	if len(res.PeerLost) != 1 || res.PeerLost[0].Rank != 2 {
		t.Fatalf("PeerLost = %v, want rank 2", res.PeerLost)
	}
	if res.Net.Orphans == 0 {
		t.Error("no orphaned messages recorded")
	}
}

func TestCancelWakesBlockedReceiver(t *testing.T) {
	// Rank 2 is already blocked on the future victim when the node
	// dies: failNode's sweep must wake it at death + detection.
	prog := func(r *Rank) {
		switch r.ID() {
		case 2:
			r.Recv(3, 7)
		case 3:
			r.Advance(50 * sim.Microsecond) // dies mid-sleep, never sends
			r.Send(2, 64, 7)
		}
	}
	res, err := Execute(recoverCfg(t, 8, logPlan(3, killT)), prog)
	if err != nil {
		t.Fatalf("blocked receiver was not cancelled: %v", err)
	}
	if len(res.PeerLost) != 1 || res.PeerLost[0].Rank != 2 {
		t.Fatalf("PeerLost = %v, want rank 2", res.PeerLost)
	}
	if got := sim.Time(res.RankElapsed[2]); got != cancelAtT() {
		t.Errorf("rank 2 unwound at %v, want death + detection = %v", got, cancelAtT())
	}
}

func TestCancelCompletesBlockedSender(t *testing.T) {
	// Rank 2's rendezvous header sits in the victim's inbox when the
	// node dies: the sweep completes the sender silently (the buffer is
	// reusable, as after MPI_Cancel) at death + detection.
	prog := func(r *Rank) {
		switch r.ID() {
		case 2:
			r.Send(3, 200_000, 7) // rendezvous; 3 never posts the receive
		case 3:
			r.Advance(50 * sim.Microsecond)
		}
	}
	res, err := Execute(recoverCfg(t, 8, logPlan(3, killT)), prog)
	if err != nil {
		t.Fatalf("blocked sender was not completed: %v", err)
	}
	if len(res.PeerLost) != 0 {
		t.Fatalf("PeerLost = %v, want none (sends complete silently)", res.PeerLost)
	}
	if res.Net.Orphans == 0 {
		t.Error("no orphaned messages recorded")
	}
	if got := sim.Time(res.RankElapsed[2]); got != cancelAtT() {
		t.Errorf("rank 2 finished at %v, want death + detection = %v", got, cancelAtT())
	}
}

func TestRecvErrReturnsTypedError(t *testing.T) {
	// The error-aware API hands the cancellation to the program instead
	// of unwinding the rank.
	errs := make([]error, 8)
	prog := func(r *Rank) {
		switch r.ID() {
		case 2:
			_, errs[2] = r.RecvErr(3, 7)
		case 3:
			r.Advance(50 * sim.Microsecond)
			r.Send(2, 64, 7) // unwinds at the send boundary instead
		}
	}
	res, err := Execute(recoverCfg(t, 8, logPlan(3, killT)), prog)
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	var pl *PeerLostError
	if !errors.As(errs[2], &pl) {
		t.Fatalf("RecvErr returned %v, want *PeerLostError", errs[2])
	}
	if pl.Rank != 2 || pl.Peer != 3 || pl.Node != 3 || pl.At != cancelAtT() {
		t.Errorf("PeerLostError = %+v, want rank 2 / peer 3 / node 3 / at %v", pl, cancelAtT())
	}
	if len(res.PeerLost) != 0 {
		t.Errorf("PeerLost = %v, want none (the program handled the error)", res.PeerLost)
	}
}

func TestDeadlockNamesDeadRanks(t *testing.T) {
	// Recovery without log=sender: a survivor waiting on a dead rank
	// still deadlocks, and the error must name the dead ranks and the
	// fix instead of just listing blocked processes.
	plan := fault.NewPlan(1)
	plan.KillNode(3, killT)
	plan.EnableRecovery()
	prog := func(r *Rank) {
		switch r.ID() {
		case 2:
			r.Recv(3, 7)
		case 3:
			r.Advance(50 * sim.Microsecond)
			r.Send(2, 64, 7)
		}
	}
	_, err := Execute(recoverCfg(t, 8, plan), prog)
	if err == nil {
		t.Fatal("survivor waiting on a dead rank did not deadlock without log=sender")
	}
	var de *sim.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error is %T (%v), want *sim.DeadlockError", err, err)
	}
	if de.Note == "" {
		t.Fatal("deadlock error carries no note about the dead ranks")
	}
	for _, want := range []string{"rank(s) [3]", "node(s) [3]", "log=sender"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("deadlock error %q does not mention %q", err.Error(), want)
		}
	}
}

func TestDeadlockWildcardHint(t *testing.T) {
	// log=sender never cancels wildcard receives (a dead rank is
	// indistinguishable from a slow one); the deadlock note must say so.
	prog := func(r *Rank) {
		switch r.ID() {
		case 2:
			r.Recv(AnySource, 7)
		case 3:
			r.Advance(50 * sim.Microsecond)
			r.Send(2, 64, 7)
		}
	}
	_, err := Execute(recoverCfg(t, 8, logPlan(3, killT)), prog)
	if err == nil {
		t.Fatal("unmatched wildcard receive did not deadlock")
	}
	if !strings.Contains(err.Error(), "AnySource") {
		t.Errorf("deadlock error %q does not mention the wildcard limitation", err.Error())
	}
}

func TestRestartCompletes(t *testing.T) {
	healthy, err := Execute(recoverCfg(t, 8, nil), ringProg(5, 2048))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(recoverCfg(t, 8, restartPlan(3, killT)), ringProg(5, 2048))
	if err != nil {
		t.Fatalf("restart run did not complete: %v", err)
	}
	if len(res.Lost) != 0 || len(res.PeerLost) != 0 {
		t.Fatalf("restart mode lost ranks: Lost=%v PeerLost=%v", res.Lost, res.PeerLost)
	}
	if res.Net.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", res.Net.Restarts)
	}
	if res.Net.RestartTime <= 0 {
		t.Error("restart charged no time")
	}
	if res.Net.Replays == 0 || res.Net.ReplayBytes == 0 || res.Net.ReplayTime <= 0 {
		t.Errorf("no sender-log replay recorded: replays=%d bytes=%d time=%v",
			res.Net.Replays, res.Net.ReplayBytes, res.Net.ReplayTime)
	}
	// Replayed-never-faster: a run that restarts cannot beat the
	// healthy run.
	if res.Elapsed <= healthy.Elapsed {
		t.Errorf("restarted run (%v) not slower than healthy run (%v)", res.Elapsed, healthy.Elapsed)
	}
}

func TestRestartCommitShrinksCharge(t *testing.T) {
	// A checkpoint commit before the kill bounds the rework: the
	// committed run's restart must charge less than the uncommitted
	// one's (small checkpoint, so the read-back cannot mask the saved
	// rework).
	prog := func(commit bool) func(*Rank) {
		return func(r *Rank) {
			n := r.Size()
			for i := 0; i < 5; i++ {
				r.Advance(10 * sim.Microsecond)
				r.Sendrecv((r.ID()+1)%n, 2048, 1, (r.ID()+n-1)%n, 1)
				if commit && i == 0 {
					r.CommitCheckpoint(1000)
				}
			}
		}
	}
	plain, err := Execute(recoverCfg(t, 8, restartPlan(3, killT)), prog(false))
	if err != nil {
		t.Fatal(err)
	}
	committed, err := Execute(recoverCfg(t, 8, restartPlan(3, killT)), prog(true))
	if err != nil {
		t.Fatal(err)
	}
	if committed.Net.RestartTime >= plain.Net.RestartTime {
		t.Errorf("committed run charged %v, uncommitted %v: commit did not shrink the restart",
			committed.Net.RestartTime, plain.Net.RestartTime)
	}
}

func TestValidateFaultsCombos(t *testing.T) {
	// API-assembled plans must obey the same combination rules as
	// fault.ParseSpec's Build.
	bad := fault.NewPlan(1)
	bad.EnableSenderLogging() // no recovery
	if _, err := Execute(recoverCfg(t, 8, bad), func(*Rank) {}); err == nil {
		t.Error("log=sender without recovery was accepted")
	}
	bad2 := fault.NewPlan(1)
	bad2.EnableRecovery()
	bad2.EnableCkptRestart() // no sender logging
	if _, err := Execute(recoverCfg(t, 8, bad2), func(*Rank) {}); err == nil {
		t.Error("restart=ckpt without log=sender was accepted")
	}
}

// crossPairProg pairs rank i with rank (i + n/2) % n — partners always
// live in different shard slabs, so every exchange (and every orphan
// cancellation) crosses a shard boundary. Sizes alternate across the
// eager/rendezvous switch.
func crossPairProg(iters int) func(*Rank) {
	return func(r *Rank) {
		n := r.Size()
		p := (r.ID() + n/2) % n
		for i := 0; i < iters; i++ {
			r.Advance(10 * sim.Microsecond)
			bytes := 512
			if i%2 == 1 {
				bytes = 50_000
			}
			if r.ID() < p {
				r.Send(p, bytes, i)
				r.Recv(p, i)
			} else {
				r.Recv(p, i)
				r.Send(p, bytes, i)
			}
		}
	}
}

func TestShardEquivCancel(t *testing.T) {
	// Node kill mid-superstep with point-to-point traffic crossing the
	// shard boundary: cancellation must be byte-identical at shards
	// 1/2/4/8 and agree with the serial kernel on all run values.
	cfg := analyticConfig(16, machine.SMP)
	cfg.Faults = logPlan(5, killT)
	checkEquiv(t, cfg, crossPairProg(5), 2, 4, 8)
}

func TestShardEquivRestart(t *testing.T) {
	cfg := analyticConfig(16, machine.SMP)
	cfg.Faults = restartPlan(5, killT)
	prog := func(r *Rank) {
		n := r.Size()
		for i := 0; i < 5; i++ {
			r.Advance(10 * sim.Microsecond)
			bytes := 1000 + 100*r.ID() // distinct sizes: replay order observable
			r.Sendrecv((r.ID()+1)%n, bytes, 1, (r.ID()+n-1)%n, 1)
			if i == 2 {
				r.CommitCheckpoint(4096)
			}
		}
	}
	checkEquiv(t, cfg, prog, 2, 4, 8)
}

func TestReplayMutationGuardCaught(t *testing.T) {
	// The replay queue's canonical (creator rank, stamp) order must be
	// something the determinism snapshots can actually see: reversing
	// it (replayMutateOrder) has to change the observable streams, or
	// the ordering tests are theater. Two senders with different sizes
	// log messages to the victim, so the reversed queue re-times the
	// replay events.
	cfg := analyticConfig(16, machine.SMP)
	cfg.Faults = restartPlan(5, killT)
	prog := func(r *Rank) {
		switch r.ID() {
		case 2:
			r.Send(5, 1000, 1)
		case 13:
			r.Send(5, 3000, 1)
		case 5:
			r.Recv(2, 1)
			r.Recv(13, 1)
			r.Advance(50 * sim.Microsecond)
			r.Advance(10 * sim.Microsecond) // boundary after the kill: floor applies
		}
	}
	want := takeSnapshot(t, cfg, 1, prog)
	if want.err != "" {
		t.Fatalf("baseline: %v", want.err)
	}
	checkEquivSharded(t, cfg, prog, want, 4)
	if t.Failed() {
		t.Fatal("canonical replay already diverges; mutation guard is meaningless")
	}

	replayMutateOrder = true
	defer func() { replayMutateOrder = false }()
	mut := takeSnapshot(t, cfg, 1, prog)
	if mut.err != "" {
		t.Fatalf("mutated run failed outright: %v", mut.err)
	}
	if snapshotsEqual(want, mut) {
		t.Error("replay queue reversed, yet the run snapshot is unchanged: the determinism tests cannot catch replay-order bugs")
	}
}

func TestP2PLoggingOffNoExtraAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	// The sender-log append hides behind one bool: with logging off, a
	// recovery-enabled run must allocate exactly what a plain run does
	// on the p2p path.
	cfg := func(plan *fault.Plan) Config {
		return analyticConfig(8, machine.SMP).withFaults(plan)
	}
	prog := pairProg(50, 512)
	run := func(plan *fault.Plan) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, err := Execute(cfg(plan), prog); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := run(nil)
	rec := fault.NewPlan(1)
	rec.EnableRecovery()
	withRecovery := run(rec)
	// Recovery mode itself allocates fixed bookkeeping (dead-rank map);
	// the per-message budget must not move: allow only a tiny constant
	// delta, far below one alloc per message (500 sends in the run).
	if diff := withRecovery - base; diff > 16 {
		t.Errorf("recovery-without-logging run allocates %v more than plain (%v vs %v): the p2p hot path grew",
			diff, withRecovery, base)
	}
}

// withFaults returns a copy of the config with the plan installed.
func (c Config) withFaults(p *fault.Plan) Config {
	c.Faults = p
	return c
}

func BenchmarkP2PLoggingOff(b *testing.B) {
	cfg := analyticConfig(8, machine.SMP)
	prog := pairProg(50, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(cfg, prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkP2PLoggingOn(b *testing.B) {
	plan := fault.NewPlan(1)
	plan.EnableRecovery()
	plan.EnableSenderLogging()
	cfg := analyticConfig(8, machine.SMP)
	cfg.Faults = plan
	prog := pairProg(50, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(cfg, prog); err != nil {
			b.Fatal(err)
		}
	}
}
