package mpi

import (
	"strconv"

	"bgpsim/internal/machine"
)

// Helpers shared by every collective algorithm: the power-of-two
// fold/unfold mapping used by the reduction algorithms, and the
// per-round matching-key builder.

// foldIn maps the communicator onto a power-of-two subgroup: ranks
// below 2*rem pair up (evens hand their data to odds). Returns the
// rank's id in the power-of-two group, or -1 for folded-out ranks.
func foldIn(me, p, pof2 int) int {
	rem := p - pof2
	if me < 2*rem {
		if me%2 == 0 {
			return -1
		}
		return me / 2
	}
	return me - rem
}

// unfold maps a power-of-two group rank back to the communicator rank.
func unfold(newRank, p, pof2 int) int {
	rem := p - pof2
	if newRank < rem {
		return newRank*2 + 1
	}
	return newRank + rem
}

// pow2Floor returns the largest power of two not exceeding p.
func pow2Floor(p int) int {
	f := 1
	for f*2 <= p {
		f *= 2
	}
	return f
}

// roundKey builds the matching key of one algorithm round: the
// collective's key plus a suffix (".r", ".s", ".rs", ".ag", ...) and a
// round number. Built by hand rather than with fmt for the same reason
// as Comm.nextKey: this runs on every round of every software
// collective and fmt's deep call stack forces stack growth on fresh
// rank goroutines.
func roundKey(key, suffix string, k int) string {
	b := make([]byte, 0, len(key)+len(suffix)+4)
	b = append(b, key...)
	b = append(b, suffix...)
	b = strconv.AppendInt(b, int64(k), 10)
	return string(b)
}

// reduceFlops charges the local combination cost of a reduction over a
// buffer of the given size (one flop per 8-byte element, three
// streamed operands).
func (r *Rank) reduceFlops(bytes int) {
	if bytes == 0 {
		return
	}
	r.Compute(float64(bytes)/8, 3*float64(bytes), machine.ClassStream)
}
