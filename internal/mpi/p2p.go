package mpi

import (
	"fmt"

	"bgpsim/internal/sim"
	"bgpsim/internal/trace"
)

// message is an in-flight transfer. For eager sends it represents the
// data itself; for rendezvous sends it is the ready-to-send header and
// the data transfer starts when the receiver matches it.
type message struct {
	src, dst int // world rank ids
	tag      int
	collKey  string // non-empty for collective-internal traffic
	bytes    int
	payload  interface{}
	eager    bool
	sender   *Request // rendezvous: the sender's blocked request
	sentAt   sim.Time // send time, for probe match edges (probe runs only)
}

// Request is a handle for a non-blocking operation.
type Request struct {
	r       *Rank
	isRecv  bool
	src     int // matching source (receives)
	dst     int // destination rank (sends), for orphan cancellation
	tag     int
	collKey string
	done    bool
	waiting bool
	msg     *message // matched message (receives)
}

// Done reports whether the operation has completed.
func (q *Request) Done() bool { return q.done }

// Payload returns the received message's payload (nil until a receive
// completes).
func (q *Request) Payload() interface{} {
	if q.msg == nil {
		return nil
	}
	return q.msg.payload
}

// IsendPayload starts a non-blocking send carrying a value.
func (r *Rank) IsendPayload(dst, bytes, tag int, payload interface{}) *Request {
	return r.isendPayload(dst, bytes, tag, "", payload)
}

func (r *Rank) swOverhead() sim.Duration {
	return sim.Seconds(r.w.mach.SWLatency)
}

// Send transmits bytes to rank dst with the given tag and blocks until
// the send buffer is reusable: immediately after local processing for
// eager messages, after the full transfer for rendezvous messages.
func (r *Rank) Send(dst, bytes, tag int) { r.sendPayload(dst, bytes, tag, "", nil) }

// SendPayload is Send carrying an arbitrary value, used by tests and
// by programs that need to move model data between ranks.
func (r *Rank) SendPayload(dst, bytes, tag int, payload interface{}) {
	r.sendPayload(dst, bytes, tag, "", payload)
}

func (r *Rank) sendPayload(dst, bytes, tag int, collKey string, payload interface{}) {
	req := r.isendPayload(dst, bytes, tag, collKey, payload)
	r.waitNoOverhead(req)
}

// Isend starts a non-blocking send and returns its request.
func (r *Rank) Isend(dst, bytes, tag int) *Request {
	return r.isendPayload(dst, bytes, tag, "", nil)
}

func (r *Rank) isendPayload(dst, bytes, tag int, collKey string, payload interface{}) *Request {
	return r.isendFrac(dst, bytes, tag, collKey, payload, 1.0)
}

// isendFrac is isendPayload with a scaled sender-side software cost
// (persistent channels pay a reduced overhead).
func (r *Rank) isendFrac(dst, bytes, tag int, collKey string, payload interface{}, overheadFrac float64) *Request {
	if r.dead && r.collAlgo == "" {
		killRank()
	}
	if r.floor != 0 {
		r.applyFloor()
	}
	if dst < 0 || dst >= len(r.w.ranks) {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	if bytes < 0 {
		panic(fmt.Sprintf("mpi: negative send size %d", bytes))
	}
	r.proc.Sleep(sim.Duration(float64(r.swOverhead()) * overheadFrac)) // sender-side software cost
	if tb := r.tb; tb != nil {
		tb.Record(trace.Event{T: r.proc.Now(), Rank: r.id, Kind: trace.Send,
			Peer: dst, Bytes: bytes, Tag: tag})
	}
	if collKey != "" && r.collAlgo != "" {
		// Per-algorithm traffic attribution: one logical message with
		// its full payload, regardless of eager/rendezvous split.
		r.net.CollMessage(r.collAlgo, bytes)
	}
	dstRank := r.w.ranks[dst]
	req := &Request{r: r, dst: dst, tag: tag, collKey: collKey}
	msg := &message{src: r.id, dst: dst, tag: tag, collKey: collKey,
		bytes: bytes, payload: payload, sender: req}
	if r.pb != nil {
		msg.sentAt = r.proc.Now()
		probeSend(r, dst, bytes, tag, collKey != "")
	}
	wireBytes := bytes
	if bytes > r.w.mach.EagerLimit {
		// Rendezvous: only a small header travels now; the data moves
		// when the receiver matches it, and the request completes then.
		wireBytes = 0
	} else {
		msg.eager = true
		req.done = true // buffer reusable immediately
	}
	arrival, err := r.net.P2P(r.proc.Now(), r.place.Node, dstRank.place.Node, wireBytes)
	if err != nil {
		// The failed links partition the torus between the two ranks:
		// the program cannot proceed. Surface the typed topology error
		// from World.Run.
		sim.Fail(fmt.Errorf("mpi: rank %d send to rank %d: %w", r.id, dst, err))
	}
	// The delivery's canonical ordering key is the sender's: the stamp
	// is drawn here, at send time, so the delivery sorts at the same
	// same-timestamp position on the destination kernel whether it is
	// scheduled locally or carried through the inter-shard mailbox.
	stamp := r.proc.NextStamp()
	if r.logSend && collKey == "" {
		// Sender-based message logging: retain the envelope (not the
		// payload) so a later restart of the destination can replay the
		// message stream in canonical (creator rank, stamp) order. One
		// append behind one bool — the logging-off hot path is unchanged.
		r.sentLog = append(r.sentLog, logEnv{dst: dst, bytes: bytes, stamp: stamp, sentAt: r.proc.Now()})
	}
	if dstRank.sh != nil && dstRank.sh != r.sh {
		// Cross-shard: the arrival lies at least one torus-hop latency
		// (the lookahead) past now, so it is beyond the current window
		// and safe to insert at the next barrier.
		r.sh.mail(arrival, r.id, stamp, dstRank.sh, func() { dstRank.deliver(msg) }, false)
	} else {
		r.k.AtTagged(arrival, r.id, stamp, func() { dstRank.deliver(msg) })
	}
	return req
}

// Recv blocks until a message matching (src, tag) arrives and returns
// its size. Use AnySource and AnyTag as wildcards.
func (r *Rank) Recv(src, tag int) int {
	req := r.irecv(src, tag, "")
	r.Wait(req)
	return req.msg.bytes
}

// RecvPayload is Recv returning the carried payload as well.
func (r *Rank) RecvPayload(src, tag int) (int, interface{}) {
	req := r.irecv(src, tag, "")
	r.Wait(req)
	return req.msg.bytes, req.msg.payload
}

// Irecv posts a non-blocking receive for (src, tag).
func (r *Rank) Irecv(src, tag int) *Request {
	return r.irecv(src, tag, "")
}

func (r *Rank) irecv(src, tag int, collKey string) *Request {
	if r.dead && r.collAlgo == "" {
		killRank()
	}
	if r.floor != 0 {
		r.applyFloor()
	}
	req := &Request{r: r, isRecv: true, src: src, dst: -1, tag: tag, collKey: collKey}
	if tb := r.tb; tb != nil {
		tb.Record(trace.Event{T: r.proc.Now(), Rank: r.id, Kind: trace.RecvPost,
			Peer: src, Tag: tag})
	}
	// Try the inbox first (first matching arrival wins).
	for i, m := range r.inbox {
		if req.matches(m) {
			r.inbox = append(r.inbox[:i], r.inbox[i+1:]...)
			r.matched(req, m)
			return req
		}
	}
	r.posted = append(r.posted, req)
	if len(r.posted) > r.peakPosted {
		r.peakPosted = len(r.posted)
	}
	return req
}

// matches reports whether message m satisfies receive request q.
func (q *Request) matches(m *message) bool {
	if q.collKey != m.collKey {
		return false
	}
	if q.src != AnySource && q.src != m.src {
		return false
	}
	if q.tag != AnyTag && q.tag != m.tag {
		return false
	}
	return true
}

// deliver runs at a message's wire arrival time on the destination
// rank (eager data or rendezvous header).
func (r *Rank) deliver(m *message) {
	if r.dead && r.w.cancelP2P && m.collKey == "" {
		// Orphan cancellation: a user message arriving at a dead rank is
		// never matched; NACK a rendezvous sender so its wait completes.
		r.cancelDelivery(m)
		return
	}
	for i, q := range r.posted {
		if q.matches(m) {
			r.posted = append(r.posted[:i], r.posted[i+1:]...)
			r.matched(q, m)
			return
		}
	}
	r.inbox = append(r.inbox, m)
	if len(r.inbox) > r.peakInbox {
		r.peakInbox = len(r.inbox)
	}
}

// matched pairs receive request q with message m. Eager data is
// complete on the spot; a rendezvous match starts the bulk transfer.
func (r *Rank) matched(q *Request, m *message) {
	q.msg = m
	if tb := r.tb; tb != nil {
		tb.Record(trace.Event{T: r.k.Now(), Rank: r.id, Kind: trace.Match,
			Peer: m.src, Bytes: m.bytes, Tag: m.tag})
	}
	if r.pb != nil {
		probeMatch(r, m)
	}
	if m.eager {
		r.completeRecv(q)
		return
	}
	// Rendezvous: clear-to-send handshake, then the bulk transfer.
	now := r.k.Now()
	start := now.Add(sim.Seconds(r.w.mach.RendezvousRTT))
	srcRank := r.w.ranks[m.src]
	done, err := r.net.P2P(start, srcRank.place.Node, r.place.Node, m.bytes)
	if err != nil {
		// matched runs inside an event callback, not a rank process, so
		// abort the kernel directly instead of sim.Fail.
		r.k.Abort(fmt.Errorf("mpi: rank %d bulk transfer from rank %d: %w", r.id, m.src, err))
		return
	}
	// Both completion events are created on the receiver's behalf (this
	// runs inside the delivery callback, outside any process body), so
	// their canonical keys come from the receiver's counter.
	if srcRank.sh != nil && srcRank.sh != r.sh {
		// Cross-shard rendezvous: complete the receive locally, and mail
		// the sender-side completion to the sender's shard now. done is
		// at least one lookahead past the match time, so the mail is
		// insertable at the next barrier even if this shard stalls
		// before the local completion event fires. The mail is an
		// auxiliary event (serial completes both sides in one event), so
		// it is excluded from the event count.
		r.k.AtTagged(done, r.id, r.proc.NextStamp(), func() { r.completeRecv(q) })
		r.sh.mail(done, r.id, r.proc.NextStamp(), srcRank.sh, func() {
			sq := m.sender
			sq.done = true
			if sq.waiting {
				sq.r.proc.Wake()
			}
		}, true)
		return
	}
	r.k.AtTagged(done, r.id, r.proc.NextStamp(), func() {
		r.completeRecv(q)
		sq := m.sender
		sq.done = true
		if sq.waiting {
			sq.r.proc.Wake()
		}
	})
}

func (r *Rank) completeRecv(q *Request) {
	q.done = true
	if q.waiting {
		r.proc.Wake()
	}
}

// Wait blocks until the request completes. Completed receives charge
// the receiver-side software overhead.
func (r *Rank) Wait(q *Request) {
	r.waitNoOverhead(q)
	if q.isRecv {
		r.proc.Sleep(r.swOverhead())
	}
}

func (r *Rank) waitNoOverhead(q *Request) {
	if err := r.waitErrNoOverhead(q); err != nil {
		// The plain blocking API has no error channel: unwind the rank
		// (recovered in spawnRank, surfaced through Result.PeerLost).
		r.peerLostUnwind(err)
	}
}

// Waitall blocks until every request completes.
func (r *Rank) Waitall(qs ...*Request) {
	for _, q := range qs {
		r.Wait(q)
	}
}

// Sendrecv performs a combined send and receive (the halo-exchange
// staple) and returns the received byte count.
func (r *Rank) Sendrecv(dst, sendBytes, sendTag, src, recvTag int) int {
	sreq := r.isendPayload(dst, sendBytes, sendTag, "", nil)
	rreq := r.irecv(src, recvTag, "")
	r.Wait(rreq)
	r.waitNoOverhead(sreq)
	return rreq.msg.bytes
}

// probeSend and probeMatch keep the probe's interface-call spill slots
// off the isendFrac/matched frames, which sit on every rank
// goroutine's deepest communication path (same discipline as
// collTrace).
//
//go:noinline
func probeSend(r *Rank, dst, bytes, tag int, coll bool) {
	r.pb.Send(r.id, r.proc.Now(), dst, bytes, tag, coll)
}

//go:noinline
func probeMatch(r *Rank, m *message) {
	r.pb.Match(r.id, r.k.Now(), m.src, m.sentAt, m.bytes, m.collKey != "")
}

// sendColl / recvColl are the collective-internal variants keyed so
// collective traffic can never match user receives.
func (r *Rank) sendColl(dst, bytes int, key string) {
	r.sendPayload(dst, bytes, 0, key, nil)
}

func (r *Rank) recvColl(src int, key string) {
	q := r.irecv(src, AnyTag, key)
	r.Wait(q)
}

func (r *Rank) sendrecvColl(dst, bytes, src int, key string) {
	sreq := r.isendPayload(dst, bytes, 0, key, nil)
	rreq := r.irecv(src, AnyTag, key)
	r.Wait(rreq)
	r.waitNoOverhead(sreq)
}
