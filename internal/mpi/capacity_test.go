//go:build !race

package mpi

// Full-Intrepid-scale capacity test: the paper's headline machine is
// 40 BG/P racks — 40,960 nodes, 163,840 cores — and the sharded
// kernel exists so a job of that size can be simulated at all. The
// race detector multiplies memory several-fold, so the ceiling is only
// enforced in the normal build.

import (
	"runtime"
	"testing"

	"bgpsim/internal/machine"
	"bgpsim/internal/network"
)

// intrepidMemCeilingBytes is the enforced memory ceiling for the
// 163,840-rank run: total bytes obtained from the OS by the Go runtime
// over the whole test process. Documented in docs/PERFORMANCE.md; a
// regression that fattens per-rank state blows through it long before
// the host's RAM does.
const intrepidMemCeilingBytes = 8 << 30

func TestIntrepidScaleUnderMemoryCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("163,840-rank run takes tens of seconds; skipped with -short")
	}
	const nodes = 40960 // 40 racks; VN mode -> 163,840 ranks
	cfg := Config{
		Machine:  machine.Get(machine.BGP),
		Nodes:    nodes,
		Mode:     machine.VN,
		Fidelity: network.Analytic,
		Shards:   8,
	}
	res, err := Execute(cfg, func(r *Rank) {
		w := r.World()
		w.Barrier(r)
		w.Allreduce(r, 64, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 8 {
		t.Errorf("ran on %d shards, want 8", res.Shards)
	}
	if got := nodes * 4; len(res.RankElapsed) != got {
		t.Errorf("RankElapsed has %d ranks, want %d", len(res.RankElapsed), got)
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.Sys > intrepidMemCeilingBytes {
		t.Errorf("runtime.MemStats.Sys = %d bytes after the 163,840-rank run, ceiling is %d",
			ms.Sys, intrepidMemCeilingBytes)
	}
	t.Logf("163,840 ranks: elapsed=%v events=%d sys=%d MiB peak rank state=%d B",
		res.Elapsed, res.Events, ms.Sys>>20, res.PeakRankState)
}
