package mpi

import (
	"fmt"

	"bgpsim/internal/machine"
	"bgpsim/internal/network"
	"bgpsim/internal/obs"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
	"bgpsim/internal/trace"
)

// Wildcards for receive matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Rank is one MPI task of a simulated program. All methods must be
// called from within the rank's own program function.
type Rank struct {
	w     *World
	id    int
	place topology.Placement
	proc  *sim.Proc

	// Execution context. In a serial run these alias the World's
	// kernel, net, probe, and trace buffer; in a sharded run each rank
	// points at its shard's private copies, so the p2p and collective
	// hot paths never need to know which mode they run in.
	k   *sim.Kernel
	net *network.Net
	pb  obs.Probe
	tb  *trace.Buffer
	sh  *shard // nil in a serial run

	inbox  []*message // arrived eager data / rendezvous headers, unmatched
	posted []*Request // posted receives, unmatched

	// Peak lengths of inbox and posted, for the per-rank memory model.
	peakInbox  int
	peakPosted int

	// timers, timerStart, and collSeq are allocated on first write:
	// a rank that never times or enters a collective (common in huge
	// analytic runs) carries three nil words instead of three maps.
	timers      map[string]sim.Duration
	timerStart  map[string]sim.Time
	collSeq     map[string]int // per-communicator collective sequence numbers
	collAlgo    string         // active software collective ("op/name"), for traffic attribution
	dead        bool           // killed under transparent recovery; unwinds at next boundary
	gateDropped bool           // removed from an open collective gate by failNode
	gateResult  interface{}    // sharded-gate result handoff, set by completeGate
	rng         *sim.RNG
	noisePhase  sim.Duration // phase of this node's OS-noise events
	clockFac    float64      // per-node variability clock multiplier (0 = off)

	// Message-logging / replay state (replay.go). logSend gates the
	// sender log append in isendFrac (one bool on the hot path); floor,
	// when nonzero, is a pending user-level-restart charge applied at the
	// rank's next boundary (applyFloor).
	logSend         bool
	sentLog         []logEnv
	floor           sim.Time
	lastCommitAt    sim.Time
	lastCommitBytes float64
	peerLost        *PeerLostError // set when a p2p wait was cancelled on a dead peer
}

func newRank(w *World, id int, place topology.Placement) *Rank {
	r := &Rank{
		w:     w,
		id:    id,
		place: place,
		k:     w.kernel,
		net:   w.net,
		pb:    w.probe,
		tb:    w.cfg.Trace,
		rng:   sim.NewRNG(w.cfg.Seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15),
	}
	if w.noiseOn {
		r.noisePhase = w.cfg.Faults.NoisePhase(place.Node, w.noise.Period)
	}
	if v := w.cfg.Faults.Variability(); v != nil {
		if f := v.ClockFactor(place.Node); f > 1 {
			r.clockFac = f
		}
	}
	r.logSend = w.cfg.Faults.LogSender()
	return r
}

// ID returns the rank's number in the world communicator.
func (r *Rank) ID() int { return r.id }

// Size returns the world communicator size.
func (r *Rank) Size() int { return len(r.w.ranks) }

// Node returns the torus node index the rank runs on.
func (r *Rank) Node() int { return r.place.Node }

// Core returns the core slot within the node.
func (r *Rank) Core() int { return r.place.Core }

// World returns the world communicator.
func (r *Rank) World() *Comm { return r.w.world }

// Now returns the rank's current virtual time.
func (r *Rank) Now() sim.Time { return r.proc.Now() }

// Elapsed returns the virtual time since simulation start.
func (r *Rank) Elapsed() sim.Duration { return sim.Duration(r.proc.Now()) }

// RNG returns the rank's private deterministic random source.
func (r *Rank) RNG() *sim.RNG { return r.rng }

// Compute advances the rank's clock by the roofline time of a compute
// block (flops of the given kernel class touching bytes of memory),
// including any injected slowdown for the rank's node and, under an
// active fault plan with OS noise, the deterministic noise events that
// land inside the block.
func (r *Rank) Compute(flops, bytes float64, class machine.KernelClass) {
	if r.dead && r.collAlgo == "" {
		killRank()
	}
	if r.floor != 0 {
		r.applyFloor()
	}
	d := r.w.cpu.Time(flops, bytes, class)
	if s, ok := r.w.cfg.NodeSlowdown[r.place.Node]; ok && s > 0 {
		d = sim.Duration(float64(d) * (1 + s))
	}
	if r.clockFac > 1 {
		d = sim.Duration(float64(d) * r.clockFac)
	}
	base := d
	if r.w.noiseOn {
		d = r.w.noise.Extend(r.proc.Now(), d, r.noisePhase)
	}
	if r.pb != nil {
		probeCompute(r, d, d-base)
	}
	r.proc.Sleep(d)
}

// probeCompute is kept out of Compute so the probe's interface-call
// spill slots don't widen the frame of every compute block (the same
// stack discipline as collTrace).
//
//go:noinline
func probeCompute(r *Rank, d, noise sim.Duration) {
	r.pb.Compute(r.id, r.proc.Now(), d, noise)
}

// Advance moves the rank's clock forward by a fixed duration
// (pre-computed cost, e.g. from a closed-form model).
func (r *Rank) Advance(d sim.Duration) {
	if r.dead && r.collAlgo == "" {
		killRank()
	}
	if r.floor != 0 {
		r.applyFloor()
	}
	r.proc.Sleep(d)
}

// TimerStart begins (or resumes) the named per-rank timer.
func (r *Rank) TimerStart(name string) {
	if r.timerStart == nil {
		r.timerStart = make(map[string]sim.Time)
	}
	r.timerStart[name] = r.proc.Now()
}

// TimerStop stops the named timer and accumulates the elapsed span.
// Stopping a timer that is not running panics (it is a model bug).
func (r *Rank) TimerStop(name string) {
	start, ok := r.timerStart[name]
	if !ok {
		panic(fmt.Sprintf("mpi: timer %q stopped but not started", name))
	}
	delete(r.timerStart, name)
	if r.timers == nil {
		r.timers = make(map[string]sim.Duration)
	}
	r.timers[name] += r.proc.Now().Sub(start)
}
