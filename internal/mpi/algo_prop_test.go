package mpi

import (
	"testing"

	"bgpsim/internal/machine"
	"bgpsim/internal/network"
	"bgpsim/internal/sim"
)

// runCollOp issues one collective of the named op on the world
// communicator.
func runCollOp(r *Rank, op string, bytes int) {
	w := r.World()
	switch op {
	case "barrier":
		w.Barrier(r)
	case "bcast":
		w.Bcast(r, 0, bytes)
	case "allreduce":
		w.Allreduce(r, bytes, true)
	case "reduce":
		w.Reduce(r, 0, bytes, true)
	case "allgather":
		w.Allgather(r, bytes)
	case "alltoall":
		w.Alltoall(r, bytes)
	case "gather":
		w.Gather(r, 0, bytes)
	case "scatter":
		w.Scatter(r, 0, bytes)
	case "scan":
		w.Scan(r, bytes)
	case "reducescatter":
		w.ReduceScatter(r, bytes)
	default:
		panic("unknown op " + op)
	}
}

// TestCollAlgoCostMonotone is the registry-wide property test: for
// every registered algorithm, forced via the override, the simulated
// cost is positive and monotonically non-decreasing in message size —
// on a power-of-two BlueGene partition (hardware paths eligible) and
// on a non-power-of-two XT partition (fold/unfold and remainder
// paths).
func TestCollAlgoCostMonotone(t *testing.T) {
	sizes := []int{0, 64, 2048, 16384}
	partitions := []struct {
		mkcfg func() Config
		m     *machine.Machine
		ranks int
	}{
		{func() Config { return xtCollConfig(12) }, machine.Get(machine.XT4QC), 12},
		{func() Config { return bgpConfig(8, machine.VN) }, machine.Get(machine.BGP), 32},
	}
	for _, part := range partitions {
		for _, op := range CollOps() {
			szs := sizes
			if op == "barrier" {
				szs = []int{0} // barrier carries no payload
			}
			for _, algo := range CollAlgos(op) {
				prev := sim.Duration(-1)
				for _, b := range szs {
					if !AlgoEligible(part.m, op, algo, b, part.ranks, true, true) {
						prev = -1
						continue
					}
					op, algo, b := op, algo, b
					cfg := part.mkcfg()
					cfg.Coll = map[string]string{op: algo}
					res := mustRun(t, cfg, func(r *Rank) {
						runCollOp(r, op, b)
					})
					if res.Elapsed <= 0 {
						t.Errorf("%s: %s/%s at %dB: non-positive cost %v",
							part.m.Name, op, algo, b, res.Elapsed)
					}
					if prev >= 0 && res.Elapsed < prev {
						t.Errorf("%s: %s/%s: cost decreased with size: %v at %dB after %v",
							part.m.Name, op, algo, res.Elapsed, b, prev)
					}
					prev = res.Elapsed
				}
			}
		}
	}
}

// TestCollAnalyticCostMonotone checks the same property for the
// closed-form analytic collective models.
func TestCollAnalyticCostMonotone(t *testing.T) {
	sizes := []int{0, 64, 2048, 16384, 131072}
	for _, op := range CollOps() {
		szs := sizes
		if op == "barrier" {
			szs = []int{0}
		}
		prev := sim.Duration(-1)
		for _, b := range szs {
			op, b := op, b
			cfg := xtCollConfig(16)
			cfg.Fidelity = network.Analytic
			cfg.AnalyticCollectives = true
			res := mustRun(t, cfg, func(r *Rank) {
				runCollOp(r, op, b)
			})
			if res.Elapsed <= 0 {
				t.Errorf("analytic %s at %dB: non-positive cost %v", op, b, res.Elapsed)
			}
			if prev >= 0 && res.Elapsed < prev {
				t.Errorf("analytic %s: cost decreased with size: %v at %dB after %v",
					op, res.Elapsed, b, prev)
			}
			prev = res.Elapsed
		}
	}
}
