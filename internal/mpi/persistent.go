package mpi

import (
	"fmt"

	"bgpsim/internal/sim"
)

// PersistentRequest is a reusable communication request in the style
// of MPI_Send_init / MPI_Recv_init: the envelope is fixed once, Start
// activates one round, and Wait completes it. Persistent requests
// model the reduced per-message software cost of pre-established
// channels (the HALO benchmark's "persistent" variants).
type PersistentRequest struct {
	r      *Rank
	isRecv bool
	peer   int
	bytes  int
	tag    int
	active *Request
}

// persistentOverheadFrac is the fraction of the normal per-message
// software cost a persistent operation pays: matching state and
// envelope processing are set up once at init time. [cal]
const persistentOverheadFrac = 0.6

// SendInit creates a persistent send channel to dst.
func (r *Rank) SendInit(dst, bytes, tag int) *PersistentRequest {
	if dst < 0 || dst >= len(r.w.ranks) {
		panic(fmt.Sprintf("mpi: SendInit to invalid rank %d", dst))
	}
	return &PersistentRequest{r: r, peer: dst, bytes: bytes, tag: tag}
}

// RecvInit creates a persistent receive channel from src.
func (r *Rank) RecvInit(src, tag int) *PersistentRequest {
	return &PersistentRequest{r: r, isRecv: true, peer: src, tag: tag}
}

// Start activates the request for one round. Starting an already
// active request panics.
func (p *PersistentRequest) Start() {
	if p.active != nil {
		panic("mpi: persistent request started while active")
	}
	if p.isRecv {
		p.active = p.r.irecv(p.peer, p.tag, "")
		return
	}
	p.active = p.r.isendFrac(p.peer, p.bytes, p.tag, "", nil, persistentOverheadFrac)
}

// Wait completes the active round. Persistent receives pay the reduced
// receive-side software cost.
func (p *PersistentRequest) Wait() {
	if p.active == nil {
		panic("mpi: persistent request waited while inactive")
	}
	r := p.r
	r.waitNoOverhead(p.active)
	if p.isRecv {
		r.proc.Sleep(sim.Duration(float64(r.swOverhead()) * persistentOverheadFrac))
	}
	p.active = nil
}

// StartAll starts every request.
func StartAll(ps ...*PersistentRequest) {
	for _, p := range ps {
		p.Start()
	}
}

// WaitAllPersistent waits for every request.
func WaitAllPersistent(ps ...*PersistentRequest) {
	for _, p := range ps {
		p.Wait()
	}
}
