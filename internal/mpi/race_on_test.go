//go:build race

package mpi

// raceEnabled reports whether the race detector is compiled in.
// Allocation-count pins skip under -race: the instrumentation adds its
// own allocations, and the detector only needs the concurrent paths
// exercised, not the alloc accounting (the non-race run covers that).
const raceEnabled = true
