package mpi

import (
	"strings"
	"testing"

	"bgpsim/internal/machine"
	"bgpsim/internal/network"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

func bgpConfig(nodes int, mode machine.Mode) Config {
	return Config{
		Machine:  machine.Get(machine.BGP),
		Nodes:    nodes,
		Mode:     mode,
		Fidelity: network.Contention,
	}
}

func mustRun(t *testing.T, cfg Config, prog func(*Rank)) *Result {
	t.Helper()
	res, err := Execute(cfg, prog)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return res
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(Config{}); err == nil {
		t.Error("empty config should fail")
	}
	if _, err := NewWorld(Config{Machine: machine.Get(machine.BGP)}); err == nil {
		t.Error("zero nodes should fail")
	}
	cfg := bgpConfig(8, machine.VN)
	cfg.Ranks = 1000
	if _, err := NewWorld(cfg); err == nil {
		t.Error("over-capacity ranks should fail")
	}
	cfg = bgpConfig(8, machine.VN)
	cfg.Mapping = "QRST"
	if _, err := NewWorld(cfg); err == nil {
		t.Error("bad mapping should fail")
	}
	cfg = Config{Machine: machine.Get(machine.XT3), Nodes: 8, Mode: machine.DUAL}
	if _, err := NewWorld(cfg); err == nil {
		t.Error("XT3 DUAL should fail")
	}
	cfg = bgpConfig(8, machine.VN)
	cfg.Dims = topology.Dims{3, 3, 3}
	if _, err := NewWorld(cfg); err == nil {
		t.Error("dims/node mismatch should fail")
	}
}

func TestWorldSizeByMode(t *testing.T) {
	for _, c := range []struct {
		mode machine.Mode
		want int
	}{{machine.SMP, 8}, {machine.DUAL, 16}, {machine.VN, 32}} {
		w, err := NewWorld(bgpConfig(8, c.mode))
		if err != nil {
			t.Fatal(err)
		}
		if w.Size() != c.want {
			t.Errorf("%v: size = %d, want %d", c.mode, w.Size(), c.want)
		}
	}
}

func TestSendRecvPayload(t *testing.T) {
	cfg := bgpConfig(8, machine.VN)
	cfg.Ranks = 2
	mustRun(t, cfg, func(r *Rank) {
		if r.ID() == 0 {
			r.SendPayload(1, 100, 7, "hello")
		} else {
			n, v := r.RecvPayload(0, 7)
			if n != 100 || v.(string) != "hello" {
				t.Errorf("got (%d,%v)", n, v)
			}
		}
	})
}

func TestRecvWildcards(t *testing.T) {
	cfg := bgpConfig(8, machine.VN)
	cfg.Ranks = 3
	mustRun(t, cfg, func(r *Rank) {
		switch r.ID() {
		case 0:
			r.SendPayload(2, 8, 5, "from0")
		case 1:
			// Ensure rank 1's message leaves later so matching order
			// is deterministic for the test.
			r.Advance(sim.Millisecond)
			r.SendPayload(2, 8, 9, "from1")
		case 2:
			_, v := r.RecvPayload(AnySource, 5)
			if v.(string) != "from0" {
				t.Errorf("tag-5 recv got %v", v)
			}
			_, v = r.RecvPayload(1, AnyTag)
			if v.(string) != "from1" {
				t.Errorf("src-1 recv got %v", v)
			}
		}
	})
}

func TestTagSelectivity(t *testing.T) {
	cfg := bgpConfig(8, machine.VN)
	cfg.Ranks = 2
	mustRun(t, cfg, func(r *Rank) {
		if r.ID() == 0 {
			r.SendPayload(1, 4, 1, "a")
			r.SendPayload(1, 4, 2, "b")
		} else {
			// Receive tag 2 first even though tag 1 arrives first.
			_, v := r.RecvPayload(0, 2)
			if v.(string) != "b" {
				t.Errorf("tag-2 recv got %v", v)
			}
			_, v = r.RecvPayload(0, 1)
			if v.(string) != "a" {
				t.Errorf("tag-1 recv got %v", v)
			}
		}
	})
}

func TestEagerLatency(t *testing.T) {
	// A 0-byte nearest-neighbour ping should cost roughly
	// 2*SWLatency + hops*hop latency.
	cfg := bgpConfig(8, machine.SMP)
	m := cfg.Machine
	var got sim.Duration
	mustRun(t, cfg, func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 0, 0)
		case 1:
			r.Recv(0, 0)
			got = r.Elapsed()
		}
	})
	want := sim.Seconds(2*m.SWLatency + m.TorusHopLat)
	if got != want {
		t.Errorf("one-way 0-byte latency = %v, want %v", got, want)
	}
}

func TestRendezvousSlowerThanEagerPerByte(t *testing.T) {
	// Crossing the eager limit adds the rendezvous handshake.
	oneWay := func(bytes int) sim.Duration {
		cfg := bgpConfig(8, machine.SMP)
		var d sim.Duration
		mustRun(t, cfg, func(r *Rank) {
			switch r.ID() {
			case 0:
				r.Send(1, bytes, 0)
			case 1:
				r.Recv(0, 0)
				d = r.Elapsed()
			}
		})
		return d
	}
	m := machine.Get(machine.BGP)
	below := oneWay(m.EagerLimit)
	above := oneWay(m.EagerLimit + 1)
	if above-below < sim.Seconds(m.RendezvousRTT) {
		t.Errorf("rendezvous step = %v, want >= RTT %v", above-below, sim.Seconds(m.RendezvousRTT))
	}
}

func TestRendezvousBlocksSenderUntilTransfer(t *testing.T) {
	cfg := bgpConfig(8, machine.SMP)
	m := cfg.Machine
	bytes := 1 << 20
	var senderDone, recvDone sim.Duration
	mustRun(t, cfg, func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, bytes, 0)
			senderDone = r.Elapsed()
		case 1:
			r.Advance(10 * sim.Millisecond) // receiver late
			r.Recv(0, 0)
			recvDone = r.Elapsed()
		}
	})
	if senderDone < 10*sim.Millisecond {
		t.Errorf("rendezvous sender finished at %v, before receiver posted", senderDone)
	}
	minXfer := sim.Seconds(float64(bytes) / m.TorusLinkBW)
	if recvDone-10*sim.Millisecond < minXfer {
		t.Errorf("transfer took %v, below wire floor %v", recvDone-10*sim.Millisecond, minXfer)
	}
}

func TestIsendIrecvWaitall(t *testing.T) {
	cfg := bgpConfig(8, machine.VN)
	cfg.Ranks = 4
	mustRun(t, cfg, func(r *Rank) {
		// Everyone exchanges with everyone (small messages).
		var reqs []*Request
		for d := 0; d < 4; d++ {
			if d != r.ID() {
				reqs = append(reqs, r.Irecv(d, 3))
			}
		}
		for d := 0; d < 4; d++ {
			if d != r.ID() {
				reqs = append(reqs, r.Isend(d, 64, 3))
			}
		}
		r.Waitall(reqs...)
	})
}

func TestSendrecvExchange(t *testing.T) {
	cfg := bgpConfig(8, machine.VN)
	cfg.Ranks = 2
	mustRun(t, cfg, func(r *Rank) {
		other := 1 - r.ID()
		n := r.Sendrecv(other, 500, 1, other, 1)
		if n != 500 {
			t.Errorf("sendrecv returned %d", n)
		}
	})
}

func TestDeadlockReported(t *testing.T) {
	cfg := bgpConfig(8, machine.SMP)
	cfg.Ranks = 2
	_, err := Execute(cfg, func(r *Rank) {
		if r.ID() == 0 {
			r.Recv(1, 0) // never sent
		}
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestWaitOnForeignRequestPanics(t *testing.T) {
	cfg := bgpConfig(8, machine.SMP)
	cfg.Ranks = 2
	var req *Request
	mustRun(t, cfg, func(r *Rank) {
		if r.ID() == 0 {
			req = r.Isend(1, 1, 0)
		} else {
			r.Recv(0, 0)
			defer func() {
				if recover() == nil {
					t.Error("expected panic waiting on foreign request")
				}
			}()
			r.Wait(req)
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, analytic := range []bool{false, true} {
		cfg := bgpConfig(8, machine.VN)
		cfg.AnalyticCollectives = analytic
		var after [32]sim.Duration
		mustRun(t, cfg, func(r *Rank) {
			r.Advance(sim.Duration(r.ID()) * sim.Microsecond)
			r.World().Barrier(r)
			after[r.ID()] = r.Elapsed()
		})
		// Everyone leaves the barrier no earlier than the last enter.
		last := 31 * sim.Microsecond
		for i, d := range after {
			if d < last {
				t.Errorf("analytic=%v rank %d left barrier at %v, before last enter %v", analytic, i, d, last)
			}
		}
	}
}

func TestBGPBarrierUsesHardware(t *testing.T) {
	cfg := bgpConfig(8, machine.VN)
	res := mustRun(t, cfg, func(r *Rank) {
		r.World().Barrier(r)
	})
	if res.Net.BarrierOps == 0 {
		t.Error("BG/P world barrier should use the barrier network")
	}
	if res.Net.Messages != 0 {
		t.Error("hardware barrier should send no torus messages")
	}
}

func TestXTBarrierUsesSoftware(t *testing.T) {
	cfg := Config{Machine: machine.Get(machine.XT4QC), Nodes: 8, Mode: machine.VN}
	res := mustRun(t, cfg, func(r *Rank) {
		r.World().Barrier(r)
	})
	if res.Net.BarrierOps != 0 {
		t.Error("XT has no barrier network")
	}
	if res.Net.Messages == 0 {
		t.Error("software barrier should send messages")
	}
}

func TestBcastTreeOffloadOnBGP(t *testing.T) {
	cfg := bgpConfig(8, machine.VN)
	res := mustRun(t, cfg, func(r *Rank) {
		r.World().Bcast(r, 0, 32<<10)
	})
	if res.Net.TreeOps == 0 {
		t.Error("BG/P world bcast should ride the tree")
	}
	if res.Net.Messages != 0 {
		t.Error("tree bcast should not touch the torus")
	}
}

func TestBcastSoftwareOnXT(t *testing.T) {
	cfg := Config{Machine: machine.Get(machine.XT4QC), Nodes: 8, Mode: machine.VN}
	res := mustRun(t, cfg, func(r *Rank) {
		r.World().Bcast(r, 3, 1000)
	})
	if res.Net.TreeOps != 0 {
		t.Error("XT has no tree")
	}
	// Binomial over 32 ranks: 31 point-to-point transfers.
	if res.Net.Messages != 31 {
		t.Errorf("binomial bcast sent %d messages, want 31", res.Net.Messages)
	}
}

func TestBcastSegmentedLarge(t *testing.T) {
	cfg := Config{Machine: machine.Get(machine.XT4QC), Nodes: 4, Mode: machine.SMP}
	bytes := 100 << 10
	res := mustRun(t, cfg, func(r *Rank) {
		r.World().Bcast(r, 0, bytes)
	})
	// 4 ranks, 3 edges, ceil(100K/8K)=13 segments each.
	if res.Net.Messages != 3*13 {
		t.Errorf("segmented bcast sent %d messages, want 39", res.Net.Messages)
	}
}

func TestAllreduceDoubleUsesTreeOnBGP(t *testing.T) {
	run := func(double bool) network.Stats {
		cfg := bgpConfig(8, machine.VN)
		res := mustRun(t, cfg, func(r *Rank) {
			r.World().Allreduce(r, 32<<10, double)
		})
		return res.Net
	}
	d := run(true)
	if d.TreeOps == 0 || d.Messages != 0 {
		t.Errorf("double allreduce should use tree: %+v", d)
	}
	s := run(false)
	if s.TreeOps != 0 || s.Messages == 0 {
		t.Errorf("single-precision allreduce should fall back to software: %+v", s)
	}
}

func TestAllreduceDoubleFasterThanSingleOnBGP(t *testing.T) {
	// The paper's Figure 3 asymmetry.
	run := func(double bool) sim.Duration {
		cfg := bgpConfig(8, machine.VN)
		res := mustRun(t, cfg, func(r *Rank) {
			r.World().Allreduce(r, 32<<10, double)
		})
		return res.Elapsed
	}
	if dd, ss := run(true), run(false); dd >= ss {
		t.Errorf("BG/P double allreduce %v should beat single %v", dd, ss)
	}
}

func TestAllreduceNoAsymmetryOnXT(t *testing.T) {
	run := func(double bool) sim.Duration {
		cfg := Config{Machine: machine.Get(machine.XT4QC), Nodes: 8, Mode: machine.VN}
		res := mustRun(t, cfg, func(r *Rank) {
			r.World().Allreduce(r, 32<<10, double)
		})
		return res.Elapsed
	}
	if run(true) != run(false) {
		t.Error("XT allreduce should not depend on precision")
	}
}

func TestAllreduceNonPowerOfTwo(t *testing.T) {
	for _, ranks := range []int{3, 5, 6, 7, 12, 24} {
		for _, bytes := range []int{8, 64 << 10} {
			cfg := Config{Machine: machine.Get(machine.XT4QC), Nodes: 8, Mode: machine.VN, Ranks: ranks}
			res := mustRun(t, cfg, func(r *Rank) {
				r.World().Allreduce(r, bytes, true)
			})
			if res.Elapsed <= 0 {
				t.Errorf("ranks=%d bytes=%d: elapsed %v", ranks, bytes, res.Elapsed)
			}
		}
	}
}

func TestAlltoallMessageCount(t *testing.T) {
	cfg := Config{Machine: machine.Get(machine.XT4QC), Nodes: 4, Mode: machine.VN} // 16 ranks
	res := mustRun(t, cfg, func(r *Rank) {
		r.World().Alltoall(r, 256)
	})
	want := int64(16 * 15)
	if res.Net.Messages != want {
		t.Errorf("alltoall messages = %d, want %d", res.Net.Messages, want)
	}
}

func TestAlltoallNonPow2(t *testing.T) {
	cfg := Config{Machine: machine.Get(machine.XT4QC), Nodes: 8, Mode: machine.VN, Ranks: 11}
	res := mustRun(t, cfg, func(r *Rank) {
		r.World().Alltoall(r, 64)
	})
	if res.Net.Messages != 11*10 {
		t.Errorf("alltoall messages = %d, want 110", res.Net.Messages)
	}
}

func TestAllgatherRing(t *testing.T) {
	cfg := Config{Machine: machine.Get(machine.XT4QC), Nodes: 8, Mode: machine.SMP}
	res := mustRun(t, cfg, func(r *Rank) {
		r.World().Allgather(r, 128)
	})
	if res.Net.Messages != 8*7 {
		t.Errorf("ring allgather messages = %d, want 56", res.Net.Messages)
	}
}

func TestReduceAndGather(t *testing.T) {
	cfg := Config{Machine: machine.Get(machine.XT4QC), Nodes: 8, Mode: machine.VN, Ranks: 13}
	mustRun(t, cfg, func(r *Rank) {
		r.World().Reduce(r, 0, 4096, true)
		r.World().Gather(r, 2, 100)
	})
}

func TestSplitRowsAndColumns(t *testing.T) {
	cfg := bgpConfig(8, machine.VN) // 32 ranks
	mustRun(t, cfg, func(r *Rank) {
		row := r.ID() / 8
		col := r.ID() % 8
		rowComm := r.World().Split(r, row, col)
		if rowComm.Size() != 8 {
			t.Errorf("row comm size = %d, want 8", rowComm.Size())
		}
		if rowComm.Rank(r) != col {
			t.Errorf("row rank = %d, want %d", rowComm.Rank(r), col)
		}
		// Collectives work on the subcommunicator.
		rowComm.Allreduce(r, 64, true)
		colComm := r.World().Split(r, col, row)
		if colComm.Size() != 4 {
			t.Errorf("col comm size = %d, want 4", colComm.Size())
		}
		colComm.Barrier(r)
	})
}

func TestSplitUndefined(t *testing.T) {
	cfg := bgpConfig(8, machine.SMP)
	mustRun(t, cfg, func(r *Rank) {
		color := -1
		if r.ID() < 4 {
			color = 0
		}
		c := r.World().Split(r, color, 0)
		if r.ID() < 4 {
			if c == nil || c.Size() != 4 {
				t.Errorf("rank %d: comm %v", r.ID(), c)
			}
		} else if c != nil {
			t.Errorf("rank %d: expected nil comm", r.ID())
		}
	})
}

func TestSubcommAllreduceUsesSoftware(t *testing.T) {
	// Tree offload is world-only; a subcommunicator must use the torus.
	cfg := bgpConfig(8, machine.VN)
	res := mustRun(t, cfg, func(r *Rank) {
		c := r.World().Split(r, r.ID()%2, r.ID())
		c.Allreduce(r, 1024, true)
	})
	if res.Net.Messages == 0 {
		t.Error("subcomm allreduce should send torus messages")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() sim.Duration {
		cfg := bgpConfig(8, machine.VN)
		res := mustRun(t, cfg, func(r *Rank) {
			r.World().Allreduce(r, 100, false)
			right := (r.ID() + 1) % r.Size()
			left := (r.ID() - 1 + r.Size()) % r.Size()
			r.Sendrecv(right, 5000, 0, left, 0)
			r.World().Barrier(r)
		})
		return res.Elapsed
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}

func TestTimers(t *testing.T) {
	cfg := bgpConfig(8, machine.SMP)
	cfg.Ranks = 2
	res := mustRun(t, cfg, func(r *Rank) {
		r.TimerStart("phase")
		r.Advance(sim.Duration(r.ID()+1) * sim.Millisecond)
		r.TimerStop("phase")
	})
	if got := res.TimerOfRank(0, "phase"); got != sim.Millisecond {
		t.Errorf("rank 0 timer = %v", got)
	}
	if got := res.MaxTimer("phase"); got != 2*sim.Millisecond {
		t.Errorf("max timer = %v", got)
	}
	if got := res.TimerOfRank(5, "phase"); got != 0 {
		t.Errorf("absent rank timer = %v", got)
	}
}

func TestTimerStopWithoutStartPanics(t *testing.T) {
	cfg := bgpConfig(8, machine.SMP)
	cfg.Ranks = 1
	mustRun(t, cfg, func(r *Rank) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		r.TimerStop("never")
	})
}

func TestComputeAdvancesClock(t *testing.T) {
	cfg := bgpConfig(8, machine.VN)
	cfg.Ranks = 1
	res := mustRun(t, cfg, func(r *Rank) {
		rate := r.w.cpu.FlopRate(machine.ClassDGEMM)
		r.Compute(rate, 0, machine.ClassDGEMM) // exactly one second of DGEMM
	})
	if res.Elapsed != sim.Second {
		t.Errorf("elapsed = %v, want 1s", res.Elapsed)
	}
}

func TestWorldRunsOnce(t *testing.T) {
	w, err := NewWorld(bgpConfig(8, machine.SMP))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(func(*Rank) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(func(*Rank) {}); err == nil {
		t.Error("second Run should fail")
	}
}

func TestShmForSameNodeRanks(t *testing.T) {
	// VN mode with TXYZ: ranks 0-3 share node 0; their traffic uses
	// the shared-memory path.
	cfg := bgpConfig(8, machine.VN)
	cfg.Mapping = topology.MapTXYZ
	cfg.Ranks = 4
	res := mustRun(t, cfg, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 100, 0)
		} else if r.ID() == 1 {
			r.Recv(0, 0)
		}
	})
	if res.Net.ShmMsgs != 1 {
		t.Errorf("shm msgs = %d, want 1", res.Net.ShmMsgs)
	}
}

func TestAnalyticCollectivesMatchShape(t *testing.T) {
	// Analytic and simulated software allreduce should agree within a
	// small factor (same algorithm structure).
	elapsed := func(analytic bool) sim.Duration {
		cfg := Config{Machine: machine.Get(machine.XT4QC), Nodes: 16, Mode: machine.VN,
			AnalyticCollectives: analytic}
		res := mustRun(t, cfg, func(r *Rank) {
			r.World().Allreduce(r, 32<<10, true)
		})
		return res.Elapsed
	}
	a, s := elapsed(true), elapsed(false)
	ratio := a.Seconds() / s.Seconds()
	if ratio < 0.3 || ratio > 3 {
		t.Errorf("analytic %v vs simulated %v: ratio %.2f out of [0.3,3]", a, s, ratio)
	}
}

func TestEventCountReported(t *testing.T) {
	cfg := bgpConfig(8, machine.SMP)
	res := mustRun(t, cfg, func(r *Rank) {
		r.World().Barrier(r)
	})
	if res.Events == 0 {
		t.Error("no events recorded")
	}
}
