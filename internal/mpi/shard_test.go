package mpi

import (
	"fmt"
	"sort"
	"testing"

	"bgpsim/internal/fault"
	"bgpsim/internal/machine"
	"bgpsim/internal/network"
	"bgpsim/internal/obs"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
	"bgpsim/internal/trace"
)

// logProbe records every probe call as a formatted line, so two runs
// can be compared call for call.
type logProbe struct{ lines []string }

func (p *logProbe) add(format string, args ...interface{}) {
	p.lines = append(p.lines, fmt.Sprintf(format, args...))
}
func (p *logProbe) ProcBlock(rank int, reason, detail string, t sim.Time) {
	p.add("block %d %s%s %d", rank, reason, detail, t)
}
func (p *logProbe) ProcUnblock(rank int, t sim.Time) { p.add("unblock %d %d", rank, t) }
func (p *logProbe) Compute(rank int, start sim.Time, d, noise sim.Duration) {
	p.add("compute %d %d %d %d", rank, start, d, noise)
}
func (p *logProbe) Send(rank int, t sim.Time, peer, bytes, tag int, coll bool) {
	p.add("send %d %d %d %d %d %v", rank, t, peer, bytes, tag, coll)
}
func (p *logProbe) Match(rank int, t sim.Time, peer int, sendT sim.Time, bytes int, coll bool) {
	p.add("match %d %d %d %d %d %v", rank, t, peer, sendT, bytes, coll)
}
func (p *logProbe) CollEnter(rank int, t sim.Time, key, algo string) {
	p.add("collenter %d %d %s %s", rank, t, key, algo)
}
func (p *logProbe) CollExit(rank int, t sim.Time, key, algo string) {
	p.add("collexit %d %d %s %s", rank, t, key, algo)
}
func (p *logProbe) LinkBusy(link int, start sim.Time, busy sim.Duration, bytes int) {
	p.add("linkbusy %d %d %d %d", link, start, busy, bytes)
}
func (p *logProbe) Inject(node int, t sim.Time, wait sim.Duration, bytes int) {
	p.add("inject %d %d %d %d", node, t, wait, bytes)
}
func (p *logProbe) Fault(t sim.Time, kind, detail string) { p.add("fault %d %s %s", t, kind, detail) }
func (p *logProbe) RankDone(rank int, t sim.Time)         { p.add("done %d %d", rank, t) }

var _ obs.Probe = (*logProbe)(nil)

// snapshot is everything observable about one run, rendered to strings
// for exact comparison.
type snapshot struct {
	err    string
	result string
	ranks  string
	timers string
	net    string
	trace  []string
	probe  []string
	shards int
}

func statString(s network.Stats) string {
	keys := make([]string, 0, len(s.Collectives))
	for k := range s.Collectives {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := fmt.Sprintf("msgs=%d bytes=%d shm=%d tree=%d barrier=%d rec=%d rebuild=%d hwfb=%d rectime=%d orph=%d rst=%d rpl=%d rplb=%d rplt=%d rstt=%d",
		s.Messages, s.Bytes, s.ShmMsgs, s.TreeOps, s.BarrierOps,
		s.Recoveries, s.TreeRebuilds, s.HWFallbacks, s.RecoveryTime,
		s.Orphans, s.Restarts, s.Replays, s.ReplayBytes, s.ReplayTime, s.RestartTime)
	for _, k := range keys {
		c := s.Collectives[k]
		out += fmt.Sprintf(" %s{%d,%d,%d}", k, c.Ops, c.Messages, c.Bytes)
	}
	return out
}

// takeSnapshot runs cfg with the given shard count, a fresh trace
// buffer, and a fresh logProbe, and captures every observable output.
func takeSnapshot(t *testing.T, cfg Config, shards int, prog func(*Rank)) snapshot {
	t.Helper()
	pb := &logProbe{}
	tb := trace.NewBuffer(0)
	cfg.Shards = shards
	cfg.Probe = pb
	cfg.Trace = tb
	res, err := Execute(cfg, prog)
	var s snapshot
	if err != nil {
		s.err = err.Error()
	}
	s.probe = pb.lines
	for _, e := range tb.Events() {
		s.trace = append(s.trace, fmt.Sprintf("%d %d %v %d %d %d %s %s",
			e.T, e.Rank, e.Kind, e.Peer, e.Bytes, e.Tag, e.Label, e.Algo))
	}
	if res == nil {
		return s
	}
	s.shards = res.Shards
	s.result = fmt.Sprintf("elapsed=%d events=%d dropped=%d lost=%v peak=%d",
		res.Elapsed, res.Events, res.Dropped, res.Lost, res.PeakRankState)
	s.ranks = fmt.Sprintf("%v", res.RankElapsed)
	names := make([]string, 0, len(res.Timers))
	for n := range res.Timers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.timers += fmt.Sprintf("%s=%v;", n, res.Timers[n])
	}
	s.net = statString(res.Net)
	return s
}

func diffLines(t *testing.T, what string, base, got []string) {
	t.Helper()
	n := len(base)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if base[i] != got[i] {
			t.Errorf("%s diverges at line %d:\n  base: %s\n  got:  %s", what, i, base[i], got[i])
			return
		}
	}
	if len(base) != len(got) {
		t.Errorf("%s length: base %d lines, got %d lines", what, len(base), len(got))
	}
}

// checkEquiv asserts every sharded run is observably identical —
// including the full trace and probe streams — to the shards=1
// baseline, and that the serial kernel (Shards unset) agrees on all
// run values (result, per-rank times, timers, traffic stats). The
// serial kernel's streams legitimately interleave same-timestamp
// records of different ranks in creation order rather than canonical
// order, so stream equality is only required among sharded runs.
func checkEquiv(t *testing.T, cfg Config, prog func(*Rank), shards ...int) {
	t.Helper()
	want := takeSnapshot(t, cfg, 1, prog)
	if want.err == "" && want.shards != 1 {
		t.Fatalf("shards=1 run reports Shards=%d, want the sharded path", want.shards)
	}
	checkSerialValues(t, cfg, prog, want)
	checkEquivSharded(t, cfg, prog, want, shards...)
}

// checkEquivSharded is checkEquiv without the serial-vs-sharded value
// comparison, for workloads whose same-timestamp event ties contend
// for shared state (the node shm channel): the canonical order
// legitimately resolves such a tie differently than the serial
// kernel's creation order. Sharded runs still agree with each other
// exactly.
func checkEquivSharded(t *testing.T, cfg Config, prog func(*Rank), want snapshot, shards ...int) {
	t.Helper()
	for _, n := range shards {
		got := takeSnapshot(t, cfg, n, prog)
		if got.err != want.err {
			t.Errorf("shards=%d: err = %q, want %q", n, got.err, want.err)
			continue
		}
		if got.result != want.result {
			t.Errorf("shards=%d: result = %q, want %q", n, got.result, want.result)
		}
		if got.ranks != want.ranks {
			t.Errorf("shards=%d: rank elapsed mismatch\n got %s\nwant %s", n, got.ranks, want.ranks)
		}
		if got.timers != want.timers {
			t.Errorf("shards=%d: timers = %q, want %q", n, got.timers, want.timers)
		}
		if got.net != want.net {
			t.Errorf("shards=%d: net stats\n got %s\nwant %s", n, got.net, want.net)
		}
		diffLines(t, fmt.Sprintf("shards=%d trace", n), want.trace, got.trace)
		diffLines(t, fmt.Sprintf("shards=%d probe", n), want.probe, got.probe)
	}
}

// checkSerialValues compares the serial kernel's run values against
// the shards=1 baseline.
func checkSerialValues(t *testing.T, cfg Config, prog func(*Rank), want snapshot) {
	t.Helper()
	ser := takeSnapshot(t, cfg, 0, prog)
	if ser.err == "" && ser.shards != 1 {
		t.Fatalf("serial run reports Shards=%d, want 1", ser.shards)
	}
	if ser.err != want.err {
		t.Errorf("serial err = %q, sharded %q", ser.err, want.err)
		return
	}
	if ser.result != want.result {
		t.Errorf("serial result = %q, sharded %q", ser.result, want.result)
	}
	if ser.ranks != want.ranks {
		t.Errorf("serial rank elapsed\n serial  %s\n sharded %s", ser.ranks, want.ranks)
	}
	if ser.timers != want.timers {
		t.Errorf("serial timers = %q, sharded %q", ser.timers, want.timers)
	}
	if ser.net != want.net {
		t.Errorf("serial net stats\n serial  %s\n sharded %s", ser.net, want.net)
	}
}

func analyticConfig(nodes int, mode machine.Mode) Config {
	return Config{
		Machine:  machine.Get(machine.BGP),
		Nodes:    nodes,
		Mode:     mode,
		Fidelity: network.Analytic,
	}
}

func TestShardEquivHalo(t *testing.T) {
	cfg := analyticConfig(16, machine.VN) // 64 ranks
	checkEquiv(t, cfg, func(r *Rank) {
		n := r.Size()
		for it := 0; it < 4; it++ {
			r.Compute(2e5, 1e4, machine.ClassStencil)
			right := (r.ID() + 1) % n
			left := (r.ID() + n - 1) % n
			r.Sendrecv(right, 4096, 1, left, 1)
			r.Sendrecv(left, 4096, 2, right, 2)
		}
	}, 2, 3, 4, 8)
}

func TestShardEquivCollectives(t *testing.T) {
	cfg := analyticConfig(16, machine.DUAL) // 32 ranks
	checkEquiv(t, cfg, func(r *Rank) {
		w := r.World()
		r.TimerStart("main")
		for it := 0; it < 3; it++ {
			r.Compute(1e5, 0, machine.ClassDGEMM)
			w.Allreduce(r, 64, true)
			w.Bcast(r, 0, 1<<14)
			w.Barrier(r)
		}
		w.Alltoall(r, 256)
		r.TimerStop("main")
	}, 2, 4, 8)
}

func TestShardEquivAnalyticCollectives(t *testing.T) {
	cfg := analyticConfig(32, machine.SMP)
	cfg.AnalyticCollectives = true
	checkEquiv(t, cfg, func(r *Rank) {
		w := r.World()
		for it := 0; it < 3; it++ {
			r.Compute(5e4, 0, machine.ClassDGEMM)
			w.Allreduce(r, 1024, false)
			w.Allgather(r, 128)
		}
	}, 2, 4)
}

func TestShardEquivSplit(t *testing.T) {
	cfg := analyticConfig(16, machine.VN)
	prog := func(r *Rank) {
		w := r.World()
		sub := w.Split(r, r.ID()%4, r.ID())
		for it := 0; it < 2; it++ {
			sub.Allreduce(r, 512, false)
			r.Compute(1e5, 0, machine.ClassDGEMM)
		}
		sub.Barrier(r)
		w.Barrier(r)
	}
	// The sub-communicator allreduces drive same-node partner pairs into
	// the shm channel at tied timestamps, so the serial kernel's
	// creation-order tie-break and the canonical order resolve the
	// contention differently (the final elapsed time happens to agree;
	// the wake-event count does not). Sharded counts must still agree
	// with each other byte for byte.
	want := takeSnapshot(t, cfg, 1, prog)
	checkEquivSharded(t, cfg, prog, want, 2, 4, 8)
}

func TestShardEquivRendezvous(t *testing.T) {
	cfg := analyticConfig(16, machine.SMP)
	checkEquiv(t, cfg, func(r *Rank) {
		n := r.Size()
		// Large messages force the rendezvous path; partner ranks sit in
		// different shards at every tested shard count.
		partner := (r.ID() + n/2) % n
		if r.ID() < n/2 {
			r.Send(partner, 1<<21, 9)
			r.Recv(partner, 10)
		} else {
			r.Recv(partner, 9)
			r.Send(partner, 1<<21, 10)
		}
	}, 2, 4, 8)
}

func TestShardEquivAnySource(t *testing.T) {
	cfg := analyticConfig(16, machine.SMP)
	checkEquiv(t, cfg, func(r *Rank) {
		if r.ID() == 0 {
			for i := 1; i < r.Size(); i++ {
				r.Recv(AnySource, AnyTag)
			}
			for i := 1; i < r.Size(); i++ {
				r.Send(i, 64, 2)
			}
		} else {
			r.Compute(float64(r.ID())*1e4, 0, machine.ClassDGEMM)
			r.Send(0, 256, 1)
			r.Recv(0, 2)
		}
	}, 2, 4)
}

func TestShardEquivRecovery(t *testing.T) {
	plan := fault.NewPlan(7)
	plan.EnableRecovery()
	plan.KillNode(5, sim.Time(sim.Seconds(0.0004)))
	plan.KillNode(11, sim.Time(sim.Seconds(0.0009)))
	cfg := analyticConfig(16, machine.DUAL)
	cfg.Faults = plan
	checkEquiv(t, cfg, func(r *Rank) {
		w := r.World()
		for it := 0; it < 6; it++ {
			r.Compute(3e5, 0, machine.ClassDGEMM)
			w.Allreduce(r, 256, false)
		}
	}, 2, 4, 8)
}

func TestShardEquivFailStop(t *testing.T) {
	plan := fault.NewPlan(3)
	plan.KillNode(9, sim.Time(sim.Seconds(0.0005)))
	cfg := analyticConfig(16, machine.SMP)
	cfg.Faults = plan
	checkEquiv(t, cfg, func(r *Rank) {
		w := r.World()
		for it := 0; it < 20; it++ {
			r.Compute(1e5, 0, machine.ClassDGEMM)
			w.Allreduce(r, 128, false)
		}
	}, 2, 4)
}

func TestShardEquivDeadlock(t *testing.T) {
	cfg := analyticConfig(8, machine.SMP)
	checkEquiv(t, cfg, func(r *Rank) {
		if r.ID() == 3 {
			r.Recv(4, 99) // never sent
		}
	}, 2, 4)
}

func TestShardEquivEventLimit(t *testing.T) {
	cfg := analyticConfig(8, machine.SMP)
	cfg.EventLimit = 200
	// The limit error's timestamp legitimately differs (the serial
	// kernel stops mid-window), so compare occurrence, not text.
	pb1 := takeSnapshot(t, cfg, 1, func(r *Rank) {
		for it := 0; it < 100; it++ {
			r.World().Allreduce(r, 64, false)
		}
	})
	pb4 := takeSnapshot(t, cfg, 4, func(r *Rank) {
		for it := 0; it < 100; it++ {
			r.World().Allreduce(r, 64, false)
		}
	})
	if pb1.err == "" || pb4.err == "" {
		t.Fatalf("event limit not hit: serial %q, sharded %q", pb1.err, pb4.err)
	}
}

// TestShardFallback checks ineligible configurations run serial and
// report it.
func TestShardFallback(t *testing.T) {
	cfg := bgpConfig(8, machine.SMP) // Contention fidelity
	cfg.Shards = 4
	res := mustRun(t, cfg, func(r *Rank) {
		r.World().Barrier(r)
	})
	if res.Shards != 1 {
		t.Errorf("contention run reports Shards=%d, want 1", res.Shards)
	}
	lcfg := analyticConfig(8, machine.SMP)
	lcfg.Shards = 4
	plan := fault.NewPlan(1)
	plan.FailLink(topology.Link{}, 0)
	lcfg.Faults = plan
	res = mustRun(t, lcfg, func(r *Rank) { r.World().Barrier(r) })
	if res.Shards != 1 {
		t.Errorf("link-fault run reports Shards=%d, want serial fallback 1", res.Shards)
	}
}
