package mpi

// Transparent collective recovery (fault.Plan.EnableRecovery): instead
// of aborting the run, a node kill removes the node's ranks from the
// job and subsequent collectives run over the surviving members, in the
// spirit of ULFM. The moving parts:
//
//   - Dead ranks unwind their goroutines at recovery boundaries (the
//     next compute block, point-to-point call, or collective) via a
//     rankKilled panic recovered in World.Run's per-rank wrapper. A
//     rank that dies in the middle of a software collective keeps
//     participating until the collective's end (r.collAlgo guards the
//     checks) so that survivors' in-flight rounds complete.
//   - Every collective in recovery mode passes through an agreement
//     gate: the last arriver's finisher fixes the authoritative live
//     membership and algorithm, so ranks entering on either side of a
//     death cannot disagree. Open gates are repaired at death time
//     (failNode) in sorted-key order for determinism.
//   - The hardware collective tree is rebuilt around dead leaves
//     (topology.Tree.Recoverable); a dead interior node demotes the
//     world's hardware offloads to software torus algorithms from the
//     registry. Recovery latency — failure detection plus either the
//     class-route reprogramming or a software membership agreement —
//     is charged once per communicator per failure epoch and surfaced
//     through network.Stats and obs "coll-recover" fault events.
//   - Point-to-point traffic addressed to a dead rank is NOT repaired
//     by recovery alone: a survivor waiting on a dead rank's message
//     deadlocks and the run returns *sim.DeadlockError naming the dead
//     ranks in its note, as documented on EnableRecovery. Adding
//     log=sender (replay.go) closes that gap: orphaned point-to-point
//     operations are cancelled with a typed *PeerLostError, or — with
//     restart=ckpt — node kills become priced user-level restarts with
//     sender-log replay and no rank leaves the job at all.

import (
	"fmt"
	"sort"
	"strconv"

	"bgpsim/internal/fault"
	"bgpsim/internal/sim"
	"bgpsim/internal/trace"
)

// rankKilledPanic unwinds a dead rank's goroutine; World.Run's wrapper
// recovers it and records the rank as lost instead of failing the run.
type rankKilledPanic struct{}

// killRank unwinds the calling rank. Kept out of line so checkDead's
// callers only pay a two-field compare on the hot path.
//
//go:noinline
func killRank() { panic(rankKilledPanic{}) }

// checkDead unwinds the rank if it was killed and is at a recovery
// boundary (not inside a software collective, whose surviving peers
// need its remaining rounds).
func (r *Rank) checkDead() {
	if r.dead && r.collAlgo == "" {
		killRank()
	}
	if r.floor != 0 {
		r.applyFloor()
	}
}

// recoveryDetectS is the failure-detection latency charged at the start
// of every recovery epoch: the RAS heartbeat interval after which the
// control system declares a node dead and tells survivors.
const recoveryDetectS = 1e-3

// failNode is the recovery-mode counterpart of the fail-stop abort in
// scheduleNodeFaults: it marks the node's ranks dead, bumps the failure
// epoch, re-evaluates the hardware tree, repairs open collective gates,
// and unwinds victims that are safely unwindable right now. Victims
// that are running, sleeping, or inside a software collective unwind at
// their next recovery boundary (checkDead).
func (w *World) failNode(nf fault.NodeFault) {
	if w.restartP2P {
		// restart=ckpt: the kill is a priced user-level restart, not a
		// death — no epoch bump, no rank removal, no gate repair.
		w.restartNode(nf)
		return
	}
	var victims []*Rank
	for _, r := range w.ranks {
		if r.place.Node == nf.Node && !r.dead {
			victims = append(victims, r)
		}
	}
	if len(victims) == 0 {
		return
	}
	w.epoch++
	for _, v := range victims {
		v.dead = true
		w.deadRank[v.id] = true
		w.lost = append(w.lost, v.id)
		if w.cancelP2P {
			w.deadAt[v.id] = nf.At
		}
	}
	sort.Ints(w.lost)
	w.deadNodes = append(w.deadNodes, nf.Node)
	sort.Ints(w.deadNodes)
	w.treeOK = w.net.TreeRecoverable(w.deadNodes)
	if w.probe != nil {
		w.probe.Fault(nf.At, "node-kill", fmt.Sprintf(
			"node %d died, %d rank(s) lost, recovery epoch %d", nf.Node, len(victims), w.epoch))
	}

	// Repair open collective gates in deterministic order: drop dead
	// entrants (waking them so they unwind), shrink the entry quorum to
	// the comm's surviving membership, and complete any gate whose
	// survivors have all arrived.
	keys := make([]string, 0, len(w.gates))
	for k := range w.gates {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := w.gates[k]
		g.dropDead()
		g.need = g.c.liveSize()
		if len(g.ranks) >= g.need {
			if g.need > 0 {
				w.completeGate(k, g)
			} else {
				delete(w.gates, k)
			}
		}
	}

	// Unwind victims blocked outside software collectives (gate waits,
	// point-to-point waits). Waking is safe only for blocked processes;
	// atResume's first-wins guard makes a wake racing an already
	// scheduled gate release or message completion harmless. WakeAt is
	// pinned to the fault time: in a serial run that IS the kernel's
	// now, and in a sharded run the victim's shard kernel may still sit
	// before it.
	for _, v := range victims {
		if v.proc.Blocked() && v.collAlgo == "" {
			v.proc.WakeAt(w.now())
		}
	}

	if w.cancelP2P {
		w.cancelOrphans(victims, nf.At)
	}
}

// dropDead removes dead entrants from the gate, waking each so it
// unwinds out of its collective wait.
func (g *gate) dropDead() {
	kept := 0
	for i, r := range g.ranks {
		if r.dead {
			delete(g.indices, r.id)
			r.gateDropped = true
			if r.sh != nil {
				// The dropped entrant will never see completeGate; lift
				// its shard's window cap here.
				r.sh.blockedGates--
			}
			r.proc.WakeAt(g.c.w.now())
			continue
		}
		if kept != i {
			g.ranks[kept] = r
			g.times[kept] = g.times[i]
			g.vals[kept] = g.vals[i]
			g.indices[r.id] = kept
		}
		kept++
	}
	g.ranks = g.ranks[:kept]
	g.times = g.times[:kept]
	g.vals = g.vals[:kept]
}

// liveSize returns the number of surviving members.
func (c *Comm) liveSize() int {
	if c.w.epoch == 0 {
		return len(c.members)
	}
	return c.liveComm().Size()
}

// liveComm returns the communicator restricted to surviving members:
// the comm itself while everyone lives, otherwise a derived comm named
// "<name>!<epoch>" (its own collective-key namespace) shared by all
// survivors. Cached per failure epoch.
func (c *Comm) liveComm() *Comm {
	w := c.w
	if w.epoch == 0 {
		return c
	}
	if c.liveCache != nil && c.liveEpoch == w.epoch {
		return c.liveCache
	}
	members := make([]int, 0, len(c.members))
	for _, m := range c.members {
		if !w.deadRank[m] {
			members = append(members, m)
		}
	}
	lc := c
	if len(members) != len(c.members) {
		lc = &Comm{
			w:        w,
			name:     c.name + "!" + strconv.Itoa(w.epoch),
			members:  members,
			index:    make(map[int]int, len(members)),
			recEpoch: w.epoch,
		}
		for i, m := range members {
			lc.index[m] = i
		}
		w.registerComm(lc)
	}
	c.liveCache, c.liveEpoch = lc, w.epoch
	return lc
}

// collDecision is the authoritative outcome of a recovery-mode
// collective's agreement gate: the algorithm, the live communicator to
// run it on, and the remapped root.
type collDecision struct {
	algo     *CollAlgo
	lc       *Comm
	root     int
	software bool // run algo.Run after release (vs duration applied in the gate)
}

// chargeRecovery returns the recovery latency owed by the communicator
// for the current failure epoch (zero when already charged or no
// failure happened yet), recording it in the network stats and the obs
// fault stream. World-communicator recoveries on a surviving hardware
// tree pay the class-route rebuild; everything else pays a software
// membership agreement (two barriers). Both pay failure detection.
func (w *World) chargeRecovery(c *Comm, live int) sim.Duration {
	if c.recEpoch == w.epoch {
		return 0
	}
	c.recEpoch = w.epoch
	if w.epoch == 0 {
		return 0
	}
	d := sim.Seconds(recoveryDetectS)
	rebuilt := c.isWorld && w.treeOK && w.mach.HasTree
	demoted := c.isWorld && !w.treeOK && w.mach.HasTree
	if rebuilt {
		d += w.net.TreeRebuildCost(len(w.deadNodes))
	} else {
		d += 2 * w.analyticBarrier(live)
	}
	w.net.RecordRecovery(d, rebuilt, demoted)
	if w.probe != nil {
		what := "software membership agreement"
		if rebuilt {
			what = "hardware tree rebuild"
		} else if demoted {
			what = "software membership agreement (HW offload demoted)"
		}
		w.probe.Fault(w.now(), "coll-recover", fmt.Sprintf(
			"comm %q epoch %d: %s, %d survivor(s), +%v", c.name, w.epoch, what, live, d))
	}
	return d
}

// recoverFinisher builds the agreement-gate finisher for one
// recovery-mode collective: when the last surviving member arrives (or
// gate repair completes the quorum), it fixes the live membership and
// algorithm, charges any pending recovery latency, and either applies
// the whole duration in the release times (hardware offloads and
// analytic collectives) or releases everyone aligned to run the
// software algorithm's messages.
func (w *World) recoverFinisher(c *Comm, op opID, a CollArgs) finisher {
	return func(ranks []*Rank, times []sim.Time, _ []interface{}) ([]sim.Time, interface{}) {
		lc := c.liveComm()
		live := lc.Size()
		al := w.selectColl(op, c.isWorld && w.treeOK, live, a)
		dec := &collDecision{algo: al, lc: lc, root: remapRoot(c, lc, a.Root)}
		w.net.CollOp(al.full)
		d := w.chargeRecovery(c, live)
		switch {
		case al.HW:
			d += al.Dur(lc, a)
		case w.cfg.AnalyticCollectives:
			d += collAnalytic(lc, op, a)
		default:
			dec.software = true
		}
		var last sim.Time
		for _, t := range times {
			if t > last {
				last = t
			}
		}
		end := last.Add(d)
		release := make([]sim.Time, len(times))
		for i := range release {
			release[i] = end
		}
		return release, dec
	}
}

// remapRoot translates a rooted collective's root from c to lc. A dead
// root is replaced by live rank 0, which stands in (MPI itself leaves
// a collective with a failed root undefined; the stand-in keeps the
// simulated program runnable and is deterministic).
func remapRoot(c, lc *Comm, root int) int {
	if c == lc {
		return root
	}
	if root < 0 || root >= len(c.members) {
		return 0
	}
	if i, ok := lc.index[c.members[root]]; ok {
		return i
	}
	return 0
}

// runCollRecover is runColl's recovery-mode path: agreement gate, then
// (for software algorithms) the algorithm's messages over the agreed
// live membership. Trace and probe spans carry the entering rank's
// provisional algorithm selection; the authoritative selection (which
// can differ only when a death lands between the first and last
// entrant) drives execution and the traffic counters.
func (c *Comm) runCollRecover(r *Rank, op opID, a CollArgs) {
	r.checkDead()
	w := c.w
	key := c.nextKey(r, collOpNames[op])
	label := w.selectColl(op, c.isWorld && w.treeOK, c.liveSize(), a).full
	if r.tb != nil {
		collTrace(r.tb, r, trace.CollEnter, key, label)
	}
	if r.pb != nil {
		probeColl(r, key, label, true)
	}
	dec, _ := c.sync(r, key, nil, w.recoverFinisher(c, op, a)).(*collDecision)
	if dec != nil && dec.software {
		a2 := a
		a2.Root = dec.root
		key2 := dec.lc.nextKey(r, collOpNames[op])
		prev := r.collAlgo
		r.collAlgo = dec.algo.full
		dec.algo.Run(dec.lc, r, key2, a2)
		r.collAlgo = prev
	}
	if r.tb != nil {
		collTrace(r.tb, r, trace.CollExit, key, label)
	}
	if r.pb != nil {
		probeColl(r, key, label, false)
	}
	r.checkDead()
}

// agreeLive is the recovery-mode entry step for payload collectives:
// an agreement gate (same mechanism as runCollRecover) whose result is
// the live communicator to run on. Outside recovery mode it is free.
func (c *Comm) agreeLive(r *Rank, kind string) *Comm {
	if !c.w.recovery {
		return c
	}
	r.checkDead()
	key := c.nextKey(r, kind)
	w := c.w
	fin := func(ranks []*Rank, times []sim.Time, _ []interface{}) ([]sim.Time, interface{}) {
		lc := c.liveComm()
		d := w.chargeRecovery(c, lc.Size())
		var last sim.Time
		for _, t := range times {
			if t > last {
				last = t
			}
		}
		end := last.Add(d)
		release := make([]sim.Time, len(times))
		for i := range release {
			release[i] = end
		}
		return release, lc
	}
	lc, _ := c.sync(r, key, nil, fin).(*Comm)
	if lc == nil {
		lc = c.liveComm()
	}
	return lc
}

// Lost returns the world ranks that have been killed so far, sorted.
func (w *World) Lost() []int {
	return append([]int(nil), w.lost...)
}
