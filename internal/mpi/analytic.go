package mpi

import (
	"math"

	"bgpsim/internal/machine"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

// Closed-form collective costs, used when Config.AnalyticCollectives
// is set. They mirror the structure of the software algorithms in
// collective.go: alpha is the per-message cost (software overheads
// plus an average-distance torus traversal), beta the per-byte cost.

// alpha returns the average per-message latency on the torus.
func (w *World) alpha() float64 {
	d := w.torus.Dims
	avgHops := float64(d[0]+d[1]+d[2]) / 4
	return 2*w.mach.SWLatency + avgHops*w.mach.TorusHopLat
}

// alphaP returns the effective per-round cost of a software collective
// over p ranks: the base message latency plus the machine's OS-noise
// skew, which grows with the participant count (near zero on the
// noiseless BlueGene kernels, significant on the Cray XT at scale).
func (w *World) alphaP(p int) float64 {
	return w.alpha() + w.mach.CollNoisePerRank*float64(p)
}

// beta returns the per-byte transfer cost.
func (w *World) beta() float64 {
	return 1 / math.Min(w.mach.TorusLinkBW, w.mach.NICInjectBW)
}

// gammaReduce returns the per-byte local reduction cost.
func (w *World) gammaReduce() float64 {
	if w.cpu == nil {
		return 0
	}
	const n = 1 << 20
	return w.cpu.Time(n/8, 3*n, machine.ClassStream).Seconds() / n
}

func log2Ceil(p int) float64 {
	return float64(topology.BinomialRounds(p))
}

func (w *World) analyticBarrier(p int) sim.Duration {
	return sim.Seconds(log2Ceil(p) * w.alphaP(p))
}

func (w *World) analyticBcast(p, bytes int) sim.Duration {
	l := log2Ceil(p)
	b := float64(bytes)
	if bytes <= bcastBinomialMax {
		// Unsegmented binomial: every round moves the whole payload.
		return sim.Seconds(l * (w.alphaP(p) + b*w.beta()))
	}
	// Segmented/pipelined binomial: latency rounds plus one payload
	// transfer, with a fan-out factor for forwarding to two children.
	return sim.Seconds(l*w.alphaP(p) + 2*b*w.beta())
}

func (w *World) analyticAllreduce(p, bytes int) sim.Duration {
	l := log2Ceil(p)
	b := float64(bytes)
	if bytes <= allreduceRDLimit {
		// Recursive doubling.
		return sim.Seconds(l * (w.alphaP(p) + b*w.beta() + b*w.gammaReduce()))
	}
	// Rabenseifner: reduce-scatter + allgather.
	f := (math.Exp2(l) - 1) / math.Exp2(l) // (P-1)/P for the transfer volume
	return sim.Seconds(2*l*w.alphaP(p) + 2*b*f*w.beta() + b*f*w.gammaReduce())
}

func (w *World) analyticReduce(p, bytes int) sim.Duration {
	l := log2Ceil(p)
	b := float64(bytes)
	return sim.Seconds(l * (w.alphaP(p) + b*w.beta() + b*w.gammaReduce()))
}

func (w *World) analyticAllgather(p, bytesPerRank int) sim.Duration {
	// Ring: P-1 rounds of one chunk each.
	return sim.Seconds(float64(p-1) * (w.alpha() + float64(bytesPerRank)*w.beta()))
}

func (w *World) analyticGather(p, bytesPerRank int) sim.Duration {
	l := log2Ceil(p)
	// Root's last receive carries half the data; total serialized at
	// the root approximately P * chunk.
	return sim.Seconds(l*w.alpha() + float64(p)*float64(bytesPerRank)*w.beta())
}

func (w *World) analyticAlltoall(p, bytesPerPair int) sim.Duration {
	b := float64(bytesPerPair)
	// Pairwise exchange: P-1 rounds. The aggregate is also bounded by
	// the torus bisection; take the slower of the two views.
	perRank := float64(p-1) * (w.alpha() + b*w.beta())
	totalBytes := float64(p) * float64(p-1) * b
	bisection := totalBytes / 2 / w.net.BisectionBW()
	return sim.Seconds(math.Max(perRank, bisection))
}
