package mpi

import (
	"reflect"
	"testing"

	"bgpsim/internal/machine"
	"bgpsim/internal/network"
	"bgpsim/internal/sim"
)

// stepwiseCfg builds a small contention-mode config.
func stepwiseCfg() Config {
	m := machine.Get(machine.BGP)
	return Config{Machine: m, Nodes: 16, Mode: machine.VN, Fidelity: network.Contention}
}

func stepwiseProgram(r *Rank) {
	w := r.World()
	w.Barrier(r)
	r.Compute(1e5, 1e4, machine.ClassStencil)
	w.Alltoall(r, 512)
	w.Allreduce(r, 8, true)
}

// TestStepwiseEquivalence: Begin/StepTo.../Finish produces exactly the
// Result a straight Run does, at any choice of pause points — the
// contract that makes stepwise execution a sound snapshot substrate.
func TestStepwiseEquivalence(t *testing.T) {
	want, err := Execute(stepwiseCfg(), stepwiseProgram)
	if err != nil {
		t.Fatalf("straight run: %v", err)
	}

	pauseSets := [][]sim.Time{
		{},
		{sim.Time(want.Elapsed) / 2},
		{1, 2, 3, sim.Time(want.Elapsed) / 3, sim.Time(want.Elapsed), sim.Time(want.Elapsed) * 10},
	}
	for i, pauses := range pauseSets {
		run, err := Begin(stepwiseCfg(), stepwiseProgram)
		if err != nil {
			t.Fatalf("pauses %d: Begin: %v", i, err)
		}
		last := sim.Time(0)
		for _, p := range pauses {
			if err := run.StepTo(p); err != nil {
				t.Fatalf("pauses %d: StepTo(%v): %v", i, p, err)
			}
			if now := run.Now(); now < last {
				t.Errorf("pauses %d: Now went backwards (%v after %v)", i, now, last)
			} else {
				last = now
			}
		}
		got, err := run.Finish()
		if err != nil {
			t.Fatalf("pauses %d: Finish: %v", i, err)
		}
		if got.Elapsed != want.Elapsed {
			t.Errorf("pauses %d: elapsed %v, want %v", i, got.Elapsed, want.Elapsed)
		}
		if got.Events != want.Events {
			t.Errorf("pauses %d: events %d, want %d", i, got.Events, want.Events)
		}
		if !reflect.DeepEqual(got.Net, want.Net) {
			t.Errorf("pauses %d: network stats differ:\n got %+v\nwant %+v", i, got.Net, want.Net)
		}
		if !reflect.DeepEqual(got.RankElapsed, want.RankElapsed) {
			t.Errorf("pauses %d: per-rank finish times differ", i)
		}
		if !run.Done() {
			t.Errorf("pauses %d: not Done after Finish", i)
		}
	}
}

// TestStepwiseEarlyCompletion: a run that ends inside a StepTo window
// is finalized there; later steps are no-ops and Finish replays the
// stored result.
func TestStepwiseEarlyCompletion(t *testing.T) {
	run, err := Begin(stepwiseCfg(), stepwiseProgram)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.StepTo(sim.Time(sim.Second)); err != nil {
		t.Fatalf("StepTo past the end: %v", err)
	}
	if !run.Done() {
		t.Fatal("run not finalized after draining inside the window")
	}
	if err := run.StepTo(2 * sim.Time(sim.Second)); err != nil {
		t.Errorf("StepTo after completion: %v", err)
	}
	res, err := run.Finish()
	if err != nil || res == nil {
		t.Fatalf("Finish after early completion: %v", err)
	}
	res2, _ := run.Finish()
	if res2 != res {
		t.Error("second Finish returned a different result object")
	}
}

// TestStepwiseDeadlock: a deadlock surfacing mid-window seals the run
// with the same annotated error the straight path reports.
func TestStepwiseDeadlock(t *testing.T) {
	cfg := Config{Machine: machine.Get(machine.BGP), Nodes: 2, Mode: machine.SMP}
	run, err := Begin(cfg, func(r *Rank) {
		if r.ID() == 0 {
			r.Recv(1, 0) // rank 1 never sends
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.StepTo(sim.Time(sim.Second)); err == nil {
		t.Fatal("deadlock not reported by StepTo")
	}
	if _, err := run.Finish(); err == nil {
		t.Fatal("deadlock not replayed by Finish")
	}
}

// TestBeginConsumesWorld: a world can only be started once, by either
// path.
func TestBeginConsumesWorld(t *testing.T) {
	w, err := NewWorld(stepwiseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Begin(stepwiseProgram); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Begin(stepwiseProgram); err == nil {
		t.Error("second Begin on one world accepted")
	}
}
