package mpi

// Alternative software collective algorithms. None of these appear in
// the stock selection tables; they exist for the colltune experiment
// (cmd/paper -exp colltune) and the -coll override flags, which probe
// where each algorithm's cost crosses over the table default's.

func init() {
	registerCollAlgo(&CollAlgo{Op: "barrier", Name: "reduce-bcast", Run: barrierReduceBcast})
	registerCollAlgo(&CollAlgo{Op: "bcast", Name: "scatter-allgather", Run: bcastScatterAllgather})
	registerCollAlgo(&CollAlgo{Op: "allreduce", Name: "ring", Run: allreduceRing})
	registerCollAlgo(&CollAlgo{Op: "reduce", Name: "linear", Run: reduceLinear})
	registerCollAlgo(&CollAlgo{Op: "allgather", Name: "bruck", Run: allgatherBruck})
	registerCollAlgo(&CollAlgo{Op: "alltoall", Name: "bruck", Run: alltoallBruck})
	registerCollAlgo(&CollAlgo{Op: "gather", Name: "linear", Run: gatherLinear})
	registerCollAlgo(&CollAlgo{Op: "scatter", Name: "linear", Run: scatterLinear})
	registerCollAlgo(&CollAlgo{Op: "scan", Name: "linear", Run: scanLinear})
	registerCollAlgo(&CollAlgo{Op: "reducescatter", Name: "pairwise", Run: reduceScatterPairwise})
}

// barrierReduceBcast synchronizes by reducing a token to rank 0 along
// a binomial tree and broadcasting the release back down: 2*log2(P)
// critical-path latencies versus dissemination's log2(P), but only
// P-1 messages per phase instead of P per round.
func barrierReduceBcast(c *Comm, r *Rank, key string, _ CollArgs) {
	p := c.Size()
	if p == 1 {
		return
	}
	reduceBinomial(c, r, key+".up", CollArgs{Bytes: 1})
	bcastBinomialSegmented(c, r, key+".down", 0, 1, 1)
}

// bcastScatterAllgather is the van-de-Geijn long-message broadcast:
// binomial-scatter the payload into P chunks, then ring-allgather the
// chunks. Moves ~2*bytes per rank regardless of P, beating the
// pipelined binomial tree when bytes/P still amortizes the latency.
func bcastScatterAllgather(c *Comm, r *Rank, key string, a CollArgs) {
	p := c.Size()
	if p == 1 {
		return
	}
	chunk := a.Bytes / p
	if chunk < 1 && a.Bytes > 0 {
		chunk = 1
	}
	scatterBinomial(c, r, key+".sc", CollArgs{Root: a.Root, Bytes: chunk})
	allgatherRing(c, r, key+".ag", CollArgs{Bytes: chunk})
}

// allreduceRing: reduce-scatter around the ring (P-1 rounds of one
// chunk, combining as it passes), then allgather the reduced chunks
// (P-1 more rounds). Bandwidth-optimal like Rabenseifner but with P-1
// latencies, so it pays off only for very large payloads.
func allreduceRing(c *Comm, r *Rank, key string, a CollArgs) {
	p := c.Size()
	if p == 1 {
		return
	}
	chunk := a.Bytes / p
	if chunk < 1 && a.Bytes > 0 {
		chunk = 1
	}
	me := c.Rank(r)
	right := c.Member((me + 1) % p)
	left := c.Member((me - 1 + p) % p)
	for k := 0; k < p-1; k++ {
		r.sendrecvColl(right, chunk, left, roundKey(key, ".rs", k))
		r.reduceFlops(chunk)
	}
	for k := 0; k < p-1; k++ {
		r.sendrecvColl(right, chunk, left, roundKey(key, ".ag", k))
	}
}

// reduceLinear has every member send its full buffer straight to the
// root, which combines the P-1 contributions in rank order: one
// latency, but the root's links serialize all the data.
func reduceLinear(c *Comm, r *Rank, key string, a CollArgs) {
	p := c.Size()
	if p == 1 {
		return
	}
	me := c.Rank(r)
	if me == a.Root {
		for i := 0; i < p; i++ {
			if i == a.Root {
				continue
			}
			r.recvColl(c.Member(i), roundKey(key, ".r", i))
			r.reduceFlops(a.Bytes)
		}
	} else {
		r.sendColl(c.Member(a.Root), a.Bytes, roundKey(key, ".r", me))
	}
}

// allgatherBruck runs ceil(log2 P) rounds, doubling the block count
// each round: round k sends the min(2^k, P-2^k) blocks gathered so
// far to rank me-2^k and receives as many from me+2^k. Log latencies
// at any P (the ring needs P-1).
func allgatherBruck(c *Comm, r *Rank, key string, a CollArgs) {
	p := c.Size()
	if p == 1 {
		return
	}
	me := c.Rank(r)
	for k, dist := 0, 1; dist < p; k, dist = k+1, dist*2 {
		blocks := dist
		if p-dist < blocks {
			blocks = p - dist
		}
		dst := c.Member((me - dist + p) % p)
		src := c.Member((me + dist) % p)
		r.sendrecvColl(dst, blocks*a.Bytes, src, roundKey(key, ".r", k))
	}
}

// alltoallBruck runs ceil(log2 P) rounds: in round k each member
// bundles every block whose destination offset has bit k set and
// ships the bundle 2^k ranks away. log2(P) latencies instead of P-1,
// at the price of each byte travelling log2(P)/2 times on average.
func alltoallBruck(c *Comm, r *Rank, key string, a CollArgs) {
	p := c.Size()
	if p == 1 {
		return
	}
	me := c.Rank(r)
	for k, dist := 0, 1; dist < p; k, dist = k+1, dist*2 {
		blocks := 0
		for j := 1; j < p; j++ {
			if j/dist%2 == 1 {
				blocks++
			}
		}
		dst := c.Member((me + dist) % p)
		src := c.Member((me - dist + p) % p)
		r.sendrecvColl(dst, blocks*a.Bytes, src, roundKey(key, ".r", k))
	}
}

// gatherLinear has every member send its contribution straight to the
// root: one latency, serialized at the root's links.
func gatherLinear(c *Comm, r *Rank, key string, a CollArgs) {
	p := c.Size()
	if p == 1 {
		return
	}
	me := c.Rank(r)
	if me == a.Root {
		for i := 0; i < p; i++ {
			if i == a.Root {
				continue
			}
			r.recvColl(c.Member(i), roundKey(key, ".r", i))
		}
	} else {
		r.sendColl(c.Member(a.Root), a.Bytes, roundKey(key, ".r", me))
	}
}

// scatterLinear has the root send each member its chunk directly.
func scatterLinear(c *Comm, r *Rank, key string, a CollArgs) {
	p := c.Size()
	if p == 1 {
		return
	}
	me := c.Rank(r)
	if me == a.Root {
		for i := 0; i < p; i++ {
			if i == a.Root {
				continue
			}
			r.sendColl(c.Member(i), a.Bytes, roundKey(key, ".r", i))
		}
	} else {
		r.recvColl(c.Member(a.Root), roundKey(key, ".r", me))
	}
}

// scanLinear pipelines the prefix through the ranks: each member waits
// for its left neighbour's partial result, combines, and passes its
// own on. P-1 latencies on the critical path but only P-1 messages
// total (the log-step algorithm sends P*log2(P)).
func scanLinear(c *Comm, r *Rank, key string, a CollArgs) {
	p := c.Size()
	if p == 1 {
		return
	}
	me := c.Rank(r)
	if me > 0 {
		r.recvColl(c.Member(me-1), roundKey(key, ".r", me-1))
		r.reduceFlops(a.Bytes)
	}
	if me+1 < p {
		r.sendColl(c.Member(me+1), a.Bytes, roundKey(key, ".r", me))
	}
}

// reduceScatterPairwise exchanges directly with every other member:
// in round k, send the slice owned by rank me+k and receive my slice's
// contribution from rank me-k. P-1 rounds of one slice each, no fold
// step at non-power-of-two sizes.
func reduceScatterPairwise(c *Comm, r *Rank, key string, a CollArgs) {
	p := c.Size()
	if p == 1 {
		return
	}
	me := c.Rank(r)
	for k := 1; k < p; k++ {
		dst := c.Member((me + k) % p)
		src := c.Member((me - k + p) % p)
		r.sendrecvColl(dst, a.Bytes, src, roundKey(key, ".r", k))
		r.reduceFlops(a.Bytes)
	}
}
