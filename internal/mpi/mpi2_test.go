package mpi

import (
	"testing"

	"bgpsim/internal/machine"
	"bgpsim/internal/network"
	"bgpsim/internal/sim"
	"bgpsim/internal/trace"
)

func TestPersistentHaloExchange(t *testing.T) {
	cfg := bgpConfig(8, machine.SMP)
	mustRun(t, cfg, func(r *Rank) {
		p := r.Size()
		right := (r.ID() + 1) % p
		left := (r.ID() - 1 + p) % p
		sreq := r.SendInit(right, 4096, 7)
		rreq := r.RecvInit(left, 7)
		for it := 0; it < 5; it++ {
			StartAll(rreq, sreq)
			WaitAllPersistent(rreq, sreq)
		}
	})
}

func TestPersistentCheaperThanPlain(t *testing.T) {
	run := func(persistent bool) sim.Duration {
		cfg := bgpConfig(8, machine.SMP)
		cfg.Ranks = 2
		res := mustRun(t, cfg, func(r *Rank) {
			other := 1 - r.ID()
			if persistent {
				s := r.SendInit(other, 64, 1)
				q := r.RecvInit(other, 1)
				for i := 0; i < 20; i++ {
					StartAll(q, s)
					WaitAllPersistent(q, s)
				}
			} else {
				for i := 0; i < 20; i++ {
					s := r.Isend(other, 64, 1)
					q := r.Irecv(other, 1)
					r.Waitall(q, s)
				}
			}
		})
		return res.Elapsed
	}
	if pp, plain := run(true), run(false); pp >= plain {
		t.Errorf("persistent %v should beat plain %v", pp, plain)
	}
}

func TestPersistentMisusePanics(t *testing.T) {
	cfg := bgpConfig(8, machine.SMP)
	cfg.Ranks = 2
	mustRun(t, cfg, func(r *Rank) {
		if r.ID() == 1 {
			r.Recv(0, 1)
			return
		}
		s := r.SendInit(1, 8, 1)
		s.Start()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("double Start should panic")
				}
			}()
			s.Start()
		}()
		s.Wait()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Wait while inactive should panic")
				}
			}()
			s.Wait()
		}()
	})
}

func TestScatterMessageCount(t *testing.T) {
	cfg := Config{Machine: machine.Get(machine.XT4QC), Nodes: 4, Mode: machine.VN} // 16 ranks
	res := mustRun(t, cfg, func(r *Rank) {
		r.World().Scatter(r, 0, 256)
	})
	// Binomial scatter: 15 transfers.
	if res.Net.Messages != 15 {
		t.Errorf("scatter messages = %d, want 15", res.Net.Messages)
	}
}

func TestScatterNonPow2AndRootOffset(t *testing.T) {
	cfg := Config{Machine: machine.Get(machine.XT4QC), Nodes: 8, Mode: machine.VN, Ranks: 13}
	mustRun(t, cfg, func(r *Rank) {
		r.World().Scatter(r, 5, 100)
	})
}

func TestScanCompletes(t *testing.T) {
	for _, ranks := range []int{1, 2, 7, 16} {
		cfg := Config{Machine: machine.Get(machine.XT4QC), Nodes: 8, Mode: machine.VN, Ranks: ranks}
		res := mustRun(t, cfg, func(r *Rank) {
			r.World().Scan(r, 1024)
		})
		if ranks > 1 && res.Net.Messages == 0 {
			t.Errorf("ranks=%d: scan sent no messages", ranks)
		}
	}
}

func TestReduceScatterCompletes(t *testing.T) {
	for _, ranks := range []int{2, 8, 11} {
		cfg := Config{Machine: machine.Get(machine.XT4QC), Nodes: 8, Mode: machine.VN, Ranks: ranks}
		res := mustRun(t, cfg, func(r *Rank) {
			r.World().ReduceScatter(r, 512)
		})
		if res.Elapsed <= 0 {
			t.Errorf("ranks=%d: no time elapsed", ranks)
		}
	}
}

func TestAnalyticVariantsOfNewCollectives(t *testing.T) {
	cfg := Config{Machine: machine.Get(machine.XT4QC), Nodes: 16, Mode: machine.VN,
		AnalyticCollectives: true}
	res := mustRun(t, cfg, func(r *Rank) {
		r.World().Scatter(r, 0, 128)
		r.World().Scan(r, 128)
		r.World().ReduceScatter(r, 128)
	})
	if res.Elapsed <= 0 {
		t.Error("analytic collectives took no time")
	}
}

func TestCartCoordsRoundTrip(t *testing.T) {
	cfg := bgpConfig(8, machine.VN) // 32 ranks
	mustRun(t, cfg, func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		ct, err := NewCart(r.World(), []int{4, 8}, true)
		if err != nil {
			t.Fatal(err)
		}
		for rank := 0; rank < 32; rank++ {
			if got := ct.RankOf(ct.Coords(rank)); got != rank {
				t.Fatalf("round trip %d -> %v -> %d", rank, ct.Coords(rank), got)
			}
		}
		// MPI ordering: first dimension varies slowest.
		if c := ct.Coords(1); c[0] != 0 || c[1] != 1 {
			t.Errorf("Coords(1) = %v, want [0 1]", c)
		}
	})
}

func TestCartShift(t *testing.T) {
	cfg := bgpConfig(8, machine.VN)
	mustRun(t, cfg, func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		per, err := NewCart(r.World(), []int{4, 8}, true)
		if err != nil {
			t.Fatal(err)
		}
		src, dst := per.Shift(0, 1, 1)
		if dst != 1 || src != 7 { // wraps in the 8-extent dimension
			t.Errorf("periodic shift = (%d, %d), want (7, 1)", src, dst)
		}
		non, err := NewCart(r.World(), []int{4, 8}, false)
		if err != nil {
			t.Fatal(err)
		}
		src, dst = non.Shift(0, 0, -1)
		if dst != -1 { // off the edge
			t.Errorf("non-periodic edge shift dst = %d, want -1", dst)
		}
		_ = src
	})
}

func TestCartValidation(t *testing.T) {
	cfg := bgpConfig(8, machine.SMP)
	mustRun(t, cfg, func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		if _, err := NewCart(r.World(), []int{3, 3}, true); err == nil {
			t.Error("size mismatch should fail")
		}
		if _, err := NewCart(r.World(), []int{0, 8}, true); err == nil {
			t.Error("zero extent should fail")
		}
	})
}

func TestCartDrivesHalo(t *testing.T) {
	cfg := bgpConfig(8, machine.VN) // 32 ranks
	mustRun(t, cfg, func(r *Rank) {
		ct, err := NewCart(r.World(), []int{4, 8}, true)
		if err != nil {
			t.Fatal(err)
		}
		me := r.ID()
		for dim := 0; dim < 2; dim++ {
			src, dst := ct.Shift(me, dim, 1)
			r.Sendrecv(dst, 512, dim, src, dim)
		}
	})
}

func TestTraceRecordsMessageLifecycle(t *testing.T) {
	tb := trace.NewBuffer(0)
	cfg := bgpConfig(8, machine.SMP)
	cfg.Ranks = 2
	cfg.Trace = tb
	mustRun(t, cfg, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 128, 9)
		} else {
			r.Recv(0, 9)
		}
		r.World().Barrier(r)
	})
	sends := tb.OfKind(trace.Send)
	if len(sends) != 1 || sends[0].Peer != 1 || sends[0].Bytes != 128 || sends[0].Tag != 9 {
		t.Errorf("sends = %+v", sends)
	}
	if len(tb.OfKind(trace.RecvPost)) != 1 {
		t.Error("missing recv-post")
	}
	matches := tb.OfKind(trace.Match)
	if len(matches) != 1 || matches[0].Rank != 1 || matches[0].Peer != 0 {
		t.Errorf("matches = %+v", matches)
	}
	// Barrier on 2 ranks: 2 enters + 2 exits.
	if len(tb.OfKind(trace.CollEnter)) != 2 || len(tb.OfKind(trace.CollExit)) != 2 {
		t.Error("collective events missing")
	}
	// Causality: the match happens at or after the send.
	if matches[0].T < sends[0].T {
		t.Error("match precedes send")
	}
}

func TestTraceOffByDefault(t *testing.T) {
	cfg := bgpConfig(8, machine.SMP)
	cfg.Ranks = 2
	mustRun(t, cfg, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 8, 0)
		} else {
			r.Recv(0, 0)
		}
	})
	// Nothing to assert beyond "does not crash without a buffer".
}

func TestPacketFidelityEndToEnd(t *testing.T) {
	// The three network fidelities agree within a factor ~1.5 on an
	// uncongested ring exchange, and all complete deterministically.
	elapsed := map[network.Fidelity]sim.Duration{}
	for _, fid := range []network.Fidelity{network.Analytic, network.Contention, network.Packet} {
		cfg := bgpConfig(8, machine.SMP)
		cfg.Fidelity = fid
		res := mustRun(t, cfg, func(r *Rank) {
			right := (r.ID() + 1) % r.Size()
			left := (r.ID() - 1 + r.Size()) % r.Size()
			for k := 0; k < 4; k++ {
				r.Sendrecv(right, 32<<10, k, left, k)
			}
		})
		elapsed[fid] = res.Elapsed
	}
	base := elapsed[network.Contention].Seconds()
	for fid, d := range elapsed {
		if ratio := d.Seconds() / base; ratio < 0.6 || ratio > 1.6 {
			t.Errorf("%v elapsed %v vs contention %v: ratio %.2f", fid, d, elapsed[network.Contention], ratio)
		}
	}
}

func TestNodeSlowdownStallsCollectives(t *testing.T) {
	// The classic result: one slow node drags every bulk-synchronous
	// step down to its pace, because the collective waits for the
	// straggler.
	run := func(slow map[int]float64) sim.Duration {
		cfg := bgpConfig(64, machine.VN)
		cfg.NodeSlowdown = slow
		res := mustRun(t, cfg, func(r *Rank) {
			for step := 0; step < 4; step++ {
				r.Compute(1e8, 0, machine.ClassStencil)
				r.World().Allreduce(r, 8, true)
			}
		})
		return res.Elapsed
	}
	base := run(nil)
	oneSlow := run(map[int]float64{17: 0.25})
	inflate := oneSlow.Seconds()/base.Seconds() - 1
	// One slow node out of 64 inflates the whole run by ~its slowdown.
	if inflate < 0.2 || inflate > 0.3 {
		t.Errorf("one 25%%-slow node inflated the run by %.0f%%, want ~25%%", inflate*100)
	}
}

func TestBcastPayload(t *testing.T) {
	cfg := bgpConfig(8, machine.VN) // 32 ranks
	got := make([]string, 32)
	mustRun(t, cfg, func(r *Rank) {
		var v interface{}
		if r.ID() == 5 {
			v = "from-root"
		}
		out := r.World().BcastPayload(r, 5, 1024, v)
		got[r.ID()] = out.(string)
	})
	for i, v := range got {
		if v != "from-root" {
			t.Fatalf("rank %d got %q", i, v)
		}
	}
}

func TestGatherPayload(t *testing.T) {
	cfg := bgpConfig(8, machine.VN)
	cfg.Ranks = 9 // non-power-of-two
	var collected []interface{}
	mustRun(t, cfg, func(r *Rank) {
		out := r.World().GatherPayload(r, 3, 64, r.ID()*10)
		if r.ID() == 3 {
			collected = out
		} else if out != nil {
			t.Errorf("non-root rank %d got values", r.ID())
		}
	})
	if len(collected) != 9 {
		t.Fatalf("collected %d values", len(collected))
	}
	for i, v := range collected {
		if v.(int) != i*10 {
			t.Fatalf("slot %d = %v, want %d", i, v, i*10)
		}
	}
}

func TestPayloadCollectivesOnSubcomm(t *testing.T) {
	cfg := bgpConfig(8, machine.VN)
	mustRun(t, cfg, func(r *Rank) {
		c := r.World().Split(r, r.ID()%2, r.ID())
		v := r.World().BcastPayload(r, 0, 8, pick(r.ID() == 0, "x", nil))
		_ = v
		out := c.BcastPayload(r, 0, 8, pick(c.Rank(r) == 0, c, nil))
		if out == nil {
			t.Errorf("rank %d: no subcomm payload", r.ID())
		}
	})
}

func pick(cond bool, a, b interface{}) interface{} {
	if cond {
		return a
	}
	return b
}
