//go:build !race

package mpi

const raceEnabled = false
