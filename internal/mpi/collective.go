package mpi

import (
	"fmt"

	"bgpsim/internal/machine"
	"bgpsim/internal/sim"
)

// Collective algorithm thresholds (bytes), chosen to mirror common
// MPICH-style switch points. The machine selection tables carry the
// same values (machine.CollTable); these constants remain the
// reference for the closed-form models in analytic.go.
const (
	allreduceRDLimit = 2048  // recursive doubling below, Rabenseifner above
	bcastSegment     = 8192  // binomial segment size for large broadcasts
	bcastBinomialMax = 12288 // unsegmented binomial below this size
)

// Hardware-offload eligibility: the BlueGene collective tree and
// global interrupt network span the whole partition, so they serve
// only full-COMM_WORLD collectives; the tree ALU reduces integers and
// (on BG/P) doubles, so single-precision reductions fall back to the
// torus (the paper's Figure 3a/b asymmetry).

func treeEligible(m *machine.Machine, world bool, _ int, _ CollArgs) bool {
	return world && m.HasTree
}

func treeReduceEligible(m *machine.Machine, world bool, _ int, a CollArgs) bool {
	return world && m.HasTree && m.TreeHWReduce && a.Double
}

func barrierNetEligible(m *machine.Machine, world bool, _ int, _ CollArgs) bool {
	return world && m.HasBarrierNet
}

// Barrier synchronizes the communicator. On a BlueGene world
// communicator the stock table uses the global interrupt network;
// otherwise a dissemination barrier over the torus.
func (c *Comm) Barrier(r *Rank) {
	c.runColl(r, opBarrier, CollArgs{})
}

// Bcast broadcasts bytes from communicator rank root. On a BlueGene
// world communicator the stock table rides the hardware collective
// tree.
func (c *Comm) Bcast(r *Rank, root, bytes int) {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("mpi: bcast root %d out of range", root))
	}
	c.runColl(r, opBcast, CollArgs{Root: root, Bytes: bytes})
}

// Allreduce combines a buffer of the given byte size across the
// communicator and distributes the result. The doublePrecision flag
// selects the operand type: on BG/P the collective tree reduces double
// precision in hardware, while single precision falls back to the
// software algorithm on the torus (the paper's Figure 3a/b asymmetry).
func (c *Comm) Allreduce(r *Rank, bytes int, doublePrecision bool) {
	c.runColl(r, opAllreduce, CollArgs{Bytes: bytes, Double: doublePrecision})
}

// Reduce combines a buffer to communicator rank root (stock table: a
// binomial tree, or the hardware tree for eligible world reductions).
func (c *Comm) Reduce(r *Rank, root, bytes int, doublePrecision bool) {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("mpi: reduce root %d out of range", root))
	}
	c.runColl(r, opReduce, CollArgs{Root: root, Bytes: bytes, Double: doublePrecision})
}

// Allgather gathers bytesPerRank from every member to every member
// (stock table: the ring algorithm).
func (c *Comm) Allgather(r *Rank, bytesPerRank int) {
	c.runColl(r, opAllgather, CollArgs{Bytes: bytesPerRank})
}

// Alltoall exchanges bytesPerPair with every other member (stock
// table: pairwise exchange, XOR schedule at power-of-two sizes).
func (c *Comm) Alltoall(r *Rank, bytesPerPair int) {
	c.runColl(r, opAlltoall, CollArgs{Bytes: bytesPerPair})
}

// Gather collects bytesPerRank from every member at root (stock
// table: a binomial tree with subtree aggregation).
func (c *Comm) Gather(r *Rank, root, bytesPerRank int) {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("mpi: gather root %d out of range", root))
	}
	c.runColl(r, opGather, CollArgs{Root: root, Bytes: bytesPerRank})
}

func init() {
	registerCollAlgo(&CollAlgo{Op: "barrier", Name: "hw-gi", HW: true,
		Eligible: barrierNetEligible,
		Dur:      func(c *Comm, _ CollArgs) sim.Duration { return c.w.net.HWBarrier() }})
	registerCollAlgo(&CollAlgo{Op: "barrier", Name: "dissemination", Run: barrierDissemination})

	// The hardware tree broadcast: everyone is released when the
	// payload has streamed down the tree after the root (and all
	// receivers) arrived. The tree is a shared resource but a world
	// collective has no competing traffic.
	registerCollAlgo(&CollAlgo{Op: "bcast", Name: "tree-offload", HW: true,
		Eligible: treeEligible,
		Dur:      func(c *Comm, a CollArgs) sim.Duration { return c.w.net.TreeBcast(a.Bytes) }})
	registerCollAlgo(&CollAlgo{Op: "bcast", Name: "binomial", Run: bcastBinomial})
	registerCollAlgo(&CollAlgo{Op: "bcast", Name: "binomial-pipelined", Run: bcastBinomialPipelined})

	registerCollAlgo(&CollAlgo{Op: "allreduce", Name: "tree-offload", HW: true,
		Eligible: treeReduceEligible,
		Dur:      func(c *Comm, a CollArgs) sim.Duration { return c.w.net.TreeAllreduce(a.Bytes) }})
	registerCollAlgo(&CollAlgo{Op: "allreduce", Name: "recdbl", Run: allreduceRecDoubling})
	registerCollAlgo(&CollAlgo{Op: "allreduce", Name: "rabenseifner", Run: allreduceRabenseifner})

	// Hardware tree reduction: one upward traversal.
	registerCollAlgo(&CollAlgo{Op: "reduce", Name: "tree-offload", HW: true,
		Eligible: treeReduceEligible,
		Dur:      func(c *Comm, a CollArgs) sim.Duration { return c.w.net.TreeBcast(a.Bytes) }})
	registerCollAlgo(&CollAlgo{Op: "reduce", Name: "binomial", Run: reduceBinomial})

	registerCollAlgo(&CollAlgo{Op: "allgather", Name: "ring", Run: allgatherRing})
	registerCollAlgo(&CollAlgo{Op: "alltoall", Name: "pairwise", Run: alltoallPairwise})
	registerCollAlgo(&CollAlgo{Op: "gather", Name: "binomial", Run: gatherBinomial})
}

// barrierDissemination is the software barrier: ceil(log2 P) rounds,
// in round k exchanging a token with the ranks 2^k away.
func barrierDissemination(c *Comm, r *Rank, key string, _ CollArgs) {
	p := c.Size()
	if p == 1 {
		return
	}
	me := c.Rank(r)
	for k, dist := 0, 1; dist < p; k, dist = k+1, dist*2 {
		dst := c.Member((me + dist) % p)
		src := c.Member(((me-dist)%p + p) % p)
		r.sendrecvColl(dst, 1, src, roundKey(key, ".r", k))
	}
}

// bcastBinomial sends the whole payload down a binomial tree rooted at
// root in one unsegmented wave (the short-message algorithm).
func bcastBinomial(c *Comm, r *Rank, key string, a CollArgs) {
	bcastBinomialSegmented(c, r, key, a.Root, a.Bytes, a.Bytes)
}

// bcastBinomialPipelined segments large payloads so the binomial-tree
// forwarding pipelines (the long-message algorithm).
func bcastBinomialPipelined(c *Comm, r *Rank, key string, a CollArgs) {
	seg := bcastSegment
	if a.Bytes <= seg {
		seg = a.Bytes
	}
	bcastBinomialSegmented(c, r, key, a.Root, a.Bytes, seg)
}

// bcastBinomialSegmented is the common binomial broadcast body: the
// payload travels in ceil(bytes/seg) waves, each wave a full binomial
// tree keyed separately so consecutive waves overlap in the tree.
func bcastBinomialSegmented(c *Comm, r *Rank, key string, root, bytes, seg int) {
	p := c.Size()
	if p == 1 {
		return
	}
	nseg := 1
	if seg > 0 && bytes > seg {
		nseg = (bytes + seg - 1) / seg
	}
	me := c.Rank(r)
	rel := (me - root + p) % p
	for s := 0; s < nseg; s++ {
		sz := seg
		if s == nseg-1 && bytes > 0 {
			sz = bytes - (nseg-1)*seg
		}
		skey := key
		if nseg > 1 {
			skey = roundKey(key, ".s", s)
		}
		// Receive from parent (lowest set bit of rel).
		mask := 1
		for mask < p {
			if rel&mask != 0 {
				src := c.Member((rel - mask + root) % p)
				r.recvColl(src, skey)
				break
			}
			mask <<= 1
		}
		// Forward to children.
		for mask >>= 1; mask > 0; mask >>= 1 {
			if rel+mask < p {
				dst := c.Member((rel + mask + root) % p)
				r.sendColl(dst, sz, skey)
			}
		}
	}
}

// allreduceRecDoubling: fold to a power of two, then log2 rounds of
// pairwise exchange-and-combine, then unfold.
func allreduceRecDoubling(c *Comm, r *Rank, key string, a CollArgs) {
	p := c.Size()
	if p == 1 {
		return
	}
	bytes := a.Bytes
	me := c.Rank(r)
	pof2 := pow2Floor(p)
	rem := p - pof2

	if me < 2*rem {
		if me%2 == 0 {
			r.sendColl(c.Member(me+1), bytes, key+".fold")
		} else {
			r.recvColl(c.Member(me-1), key+".fold")
			r.reduceFlops(bytes)
		}
	}
	nr := foldIn(me, p, pof2)
	if nr >= 0 {
		for k, mask := 0, 1; mask < pof2; k, mask = k+1, mask*2 {
			partner := c.Member(unfold(nr^mask, p, pof2))
			r.sendrecvColl(partner, bytes, partner, roundKey(key, ".r", k))
			r.reduceFlops(bytes)
		}
	}
	if me < 2*rem {
		if me%2 == 0 {
			r.recvColl(c.Member(me+1), key+".unfold")
		} else {
			r.sendColl(c.Member(me-1), bytes, key+".unfold")
		}
	}
}

// allreduceRabenseifner: fold, reduce-scatter by recursive halving,
// allgather by recursive doubling, unfold. Moves 2*bytes*(pof2-1)/pof2
// per rank instead of log2(P)*bytes.
func allreduceRabenseifner(c *Comm, r *Rank, key string, a CollArgs) {
	p := c.Size()
	if p == 1 {
		return
	}
	bytes := a.Bytes
	me := c.Rank(r)
	pof2 := pow2Floor(p)
	rem := p - pof2

	if me < 2*rem {
		if me%2 == 0 {
			r.sendColl(c.Member(me+1), bytes, key+".fold")
		} else {
			r.recvColl(c.Member(me-1), key+".fold")
			r.reduceFlops(bytes)
		}
	}
	nr := foldIn(me, p, pof2)
	if nr >= 0 {
		// Reduce-scatter: halve the active buffer each round.
		chunk := bytes / 2
		for k, mask := 0, 1; mask < pof2; k, mask = k+1, mask*2 {
			partner := c.Member(unfold(nr^mask, p, pof2))
			r.sendrecvColl(partner, chunk, partner, roundKey(key, ".rs", k))
			r.reduceFlops(chunk)
			if chunk > 1 {
				chunk /= 2
			}
		}
		// Allgather: double the buffer each round.
		chunk = bytes / pof2
		if chunk < 1 {
			chunk = 1
		}
		for k, mask := 0, 1; mask < pof2; k, mask = k+1, mask*2 {
			partner := c.Member(unfold(nr^mask, p, pof2))
			r.sendrecvColl(partner, chunk, partner, roundKey(key, ".ag", k))
			chunk *= 2
		}
	}
	if me < 2*rem {
		if me%2 == 0 {
			r.recvColl(c.Member(me+1), key+".unfold")
		} else {
			r.sendColl(c.Member(me-1), bytes, key+".unfold")
		}
	}
}

// reduceBinomial combines a buffer to root via a binomial tree.
func reduceBinomial(c *Comm, r *Rank, key string, a CollArgs) {
	p := c.Size()
	if p == 1 {
		return
	}
	me := c.Rank(r)
	rel := (me - a.Root + p) % p
	for k, mask := 0, 1; mask < p; k, mask = k+1, mask*2 {
		rkey := roundKey(key, ".r", k)
		if rel&mask == 0 {
			src := rel | mask
			if src < p {
				r.recvColl(c.Member((src+a.Root)%p), rkey)
				r.reduceFlops(a.Bytes)
			}
		} else {
			dst := rel &^ mask
			r.sendColl(c.Member((dst+a.Root)%p), a.Bytes, rkey)
			break
		}
	}
}

// allgatherRing circulates each member's contribution around the ring:
// P-1 rounds of one chunk each.
func allgatherRing(c *Comm, r *Rank, key string, a CollArgs) {
	p := c.Size()
	if p == 1 {
		return
	}
	me := c.Rank(r)
	right := c.Member((me + 1) % p)
	left := c.Member((me - 1 + p) % p)
	for k := 0; k < p-1; k++ {
		r.sendrecvColl(right, a.Bytes, left, roundKey(key, ".r", k))
	}
}

// alltoallPairwise exchanges with every other member one at a time
// (XOR schedule when the size is a power of two).
func alltoallPairwise(c *Comm, r *Rank, key string, a CollArgs) {
	p := c.Size()
	if p == 1 {
		return
	}
	me := c.Rank(r)
	pow2 := p&(p-1) == 0
	for k := 1; k < p; k++ {
		var dst, src int
		if pow2 {
			dst = me ^ k
			src = dst
		} else {
			dst = (me + k) % p
			src = (me - k + p) % p
		}
		r.sendrecvColl(c.Member(dst), a.Bytes, c.Member(src), roundKey(key, ".r", k))
	}
}

// gatherBinomial collects bytesPerRank from every member at root via a
// binomial tree with subtree aggregation.
func gatherBinomial(c *Comm, r *Rank, key string, a CollArgs) {
	p := c.Size()
	if p == 1 {
		return
	}
	me := c.Rank(r)
	rel := (me - a.Root + p) % p
	have := 1 // subtree ranks aggregated so far
	for k, mask := 0, 1; mask < p; k, mask = k+1, mask*2 {
		rkey := roundKey(key, ".r", k)
		if rel&mask == 0 {
			src := rel | mask
			if src < p {
				sub := mask
				if rel+2*mask > p {
					sub = p - src // partial subtree at the edge
				}
				r.recvColl(c.Member((src+a.Root)%p), rkey)
				have += sub
			}
		} else {
			dst := rel &^ mask
			r.sendColl(c.Member((dst+a.Root)%p), have*a.Bytes, rkey)
			break
		}
	}
}
