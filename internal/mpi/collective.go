package mpi

import (
	"fmt"

	"bgpsim/internal/machine"
	"bgpsim/internal/sim"
)

// Collective algorithm thresholds (bytes), chosen to mirror common
// MPICH-style switch points.
const (
	allreduceRDLimit = 2048  // recursive doubling below, Rabenseifner above
	bcastSegment     = 8192  // binomial segment size for large broadcasts
	bcastBinomialMax = 12288 // unsegmented binomial below this size
)

// Barrier synchronizes the communicator. On a BlueGene world
// communicator it uses the global interrupt network; otherwise a
// dissemination barrier over the torus.
func (c *Comm) Barrier(r *Rank) {
	key := c.nextKey(r, "barrier")
	if c.isWorld && c.w.net.HasBarrierNet() {
		c.sync(r, key, nil, uniformFinisher(func() sim.Duration { return c.w.net.HWBarrier() }))
		return
	}
	if c.w.cfg.AnalyticCollectives {
		c.sync(r, key, nil, uniformFinisher(func() sim.Duration { return c.w.analyticBarrier(c.Size()) }))
		return
	}
	c.dissemination(r, key)
}

// dissemination is the software barrier: ceil(log2 P) rounds, in round
// k exchanging a token with the ranks 2^k away.
func (c *Comm) dissemination(r *Rank, key string) {
	p := c.Size()
	if p == 1 {
		return
	}
	me := c.Rank(r)
	for k, dist := 0, 1; dist < p; k, dist = k+1, dist*2 {
		dst := c.Member((me + dist) % p)
		src := c.Member(((me-dist)%p + p) % p)
		r.sendrecvColl(dst, 1, src, fmt.Sprintf("%s.r%d", key, k))
	}
}

// Bcast broadcasts bytes from communicator rank root. On a BlueGene
// world communicator it rides the hardware collective tree.
func (c *Comm) Bcast(r *Rank, root, bytes int) {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("mpi: bcast root %d out of range", root))
	}
	key := c.nextKey(r, "bcast")
	if c.isWorld && c.w.net.HasTree() {
		// The hardware tree broadcast: everyone is released when the
		// payload has streamed down the tree after the root (and all
		// receivers) arrived. The tree is a shared resource but a
		// world collective has no competing traffic.
		c.sync(r, key, nil, uniformFinisher(func() sim.Duration { return c.w.net.TreeBcast(bytes) }))
		return
	}
	if c.w.cfg.AnalyticCollectives {
		c.sync(r, key, nil, uniformFinisher(func() sim.Duration { return c.w.analyticBcast(c.Size(), bytes) }))
		return
	}
	c.binomialBcast(r, key, root, bytes)
}

// binomialBcast sends down a binomial tree rooted at root, segmenting
// large payloads so the tree pipeline overlaps.
func (c *Comm) binomialBcast(r *Rank, key string, root, bytes int) {
	p := c.Size()
	if p == 1 {
		return
	}
	seg := bytes
	nseg := 1
	if bytes > bcastBinomialMax {
		seg = bcastSegment
		nseg = (bytes + seg - 1) / seg
	}
	me := c.Rank(r)
	rel := (me - root + p) % p
	for s := 0; s < nseg; s++ {
		sz := seg
		if s == nseg-1 && bytes > 0 {
			sz = bytes - (nseg-1)*seg
		}
		skey := key
		if nseg > 1 {
			skey = fmt.Sprintf("%s.s%d", key, s)
		}
		// Receive from parent (lowest set bit of rel).
		mask := 1
		for mask < p {
			if rel&mask != 0 {
				src := c.Member(((rel - mask + root) % p))
				r.recvColl(src, skey)
				break
			}
			mask <<= 1
		}
		// Forward to children.
		for mask >>= 1; mask > 0; mask >>= 1 {
			if rel+mask < p {
				dst := c.Member((rel + mask + root) % p)
				r.sendColl(dst, sz, skey)
			}
		}
	}
}

// reduceFlops charges the local combination cost of a reduction over a
// buffer of the given size (one flop per 8-byte element, three
// streamed operands).
func (r *Rank) reduceFlops(bytes int) {
	if bytes == 0 {
		return
	}
	r.Compute(float64(bytes)/8, 3*float64(bytes), machine.ClassStream)
}

// Allreduce combines a buffer of the given byte size across the
// communicator and distributes the result. The doublePrecision flag
// selects the operand type: on BG/P the collective tree reduces double
// precision in hardware, while single precision falls back to the
// software algorithm on the torus (the paper's Figure 3a/b asymmetry).
func (c *Comm) Allreduce(r *Rank, bytes int, doublePrecision bool) {
	key := c.nextKey(r, "allreduce")
	if c.isWorld && c.w.net.HWReduceSupported(doublePrecision) {
		c.sync(r, key, nil, uniformFinisher(func() sim.Duration { return c.w.net.TreeAllreduce(bytes) }))
		return
	}
	if c.w.cfg.AnalyticCollectives {
		c.sync(r, key, nil, uniformFinisher(func() sim.Duration { return c.w.analyticAllreduce(c.Size(), bytes) }))
		return
	}
	p := c.Size()
	if p == 1 {
		return
	}
	if bytes <= allreduceRDLimit {
		c.allreduceRecDoubling(r, key, bytes)
	} else {
		c.allreduceRabenseifner(r, key, bytes)
	}
}

// fold maps the communicator onto a power-of-two subgroup: ranks below
// 2*rem pair up (evens hand their data to odds). Returns the rank's id
// in the power-of-two group, or -1 for folded-out ranks.
func foldIn(me, p, pof2 int) int {
	rem := p - pof2
	if me < 2*rem {
		if me%2 == 0 {
			return -1
		}
		return me / 2
	}
	return me - rem
}

// unfold maps a power-of-two group rank back to the communicator rank.
func unfold(newRank, p, pof2 int) int {
	rem := p - pof2
	if newRank < rem {
		return newRank*2 + 1
	}
	return newRank + rem
}

func pow2Floor(p int) int {
	f := 1
	for f*2 <= p {
		f *= 2
	}
	return f
}

// allreduceRecDoubling: fold to a power of two, then log2 rounds of
// pairwise exchange-and-combine, then unfold.
func (c *Comm) allreduceRecDoubling(r *Rank, key string, bytes int) {
	p := c.Size()
	me := c.Rank(r)
	pof2 := pow2Floor(p)
	rem := p - pof2

	if me < 2*rem {
		if me%2 == 0 {
			r.sendColl(c.Member(me+1), bytes, key+".fold")
		} else {
			r.recvColl(c.Member(me-1), key+".fold")
			r.reduceFlops(bytes)
		}
	}
	nr := foldIn(me, p, pof2)
	if nr >= 0 {
		for k, mask := 0, 1; mask < pof2; k, mask = k+1, mask*2 {
			partner := c.Member(unfold(nr^mask, p, pof2))
			r.sendrecvColl(partner, bytes, partner, fmt.Sprintf("%s.r%d", key, k))
			r.reduceFlops(bytes)
		}
	}
	if me < 2*rem {
		if me%2 == 0 {
			r.recvColl(c.Member(me+1), key+".unfold")
		} else {
			r.sendColl(c.Member(me-1), bytes, key+".unfold")
		}
	}
}

// allreduceRabenseifner: fold, reduce-scatter by recursive halving,
// allgather by recursive doubling, unfold. Moves 2*bytes*(pof2-1)/pof2
// per rank instead of log2(P)*bytes.
func (c *Comm) allreduceRabenseifner(r *Rank, key string, bytes int) {
	p := c.Size()
	me := c.Rank(r)
	pof2 := pow2Floor(p)
	rem := p - pof2

	if me < 2*rem {
		if me%2 == 0 {
			r.sendColl(c.Member(me+1), bytes, key+".fold")
		} else {
			r.recvColl(c.Member(me-1), key+".fold")
			r.reduceFlops(bytes)
		}
	}
	nr := foldIn(me, p, pof2)
	if nr >= 0 {
		// Reduce-scatter: halve the active buffer each round.
		chunk := bytes / 2
		for k, mask := 0, 1; mask < pof2; k, mask = k+1, mask*2 {
			partner := c.Member(unfold(nr^mask, p, pof2))
			r.sendrecvColl(partner, chunk, partner, fmt.Sprintf("%s.rs%d", key, k))
			r.reduceFlops(chunk)
			if chunk > 1 {
				chunk /= 2
			}
		}
		// Allgather: double the buffer each round.
		chunk = bytes / pof2
		if chunk < 1 {
			chunk = 1
		}
		for k, mask := 0, 1; mask < pof2; k, mask = k+1, mask*2 {
			partner := c.Member(unfold(nr^mask, p, pof2))
			r.sendrecvColl(partner, chunk, partner, fmt.Sprintf("%s.ag%d", key, k))
			chunk *= 2
		}
	}
	if me < 2*rem {
		if me%2 == 0 {
			r.recvColl(c.Member(me+1), key+".unfold")
		} else {
			r.sendColl(c.Member(me-1), bytes, key+".unfold")
		}
	}
}

// Reduce combines a buffer to communicator rank root via a binomial
// tree.
func (c *Comm) Reduce(r *Rank, root, bytes int, doublePrecision bool) {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("mpi: reduce root %d out of range", root))
	}
	key := c.nextKey(r, "reduce")
	if c.isWorld && c.w.net.HWReduceSupported(doublePrecision) {
		// Hardware tree reduction: one upward traversal.
		c.sync(r, key, nil, uniformFinisher(func() sim.Duration { return c.w.net.TreeBcast(bytes) }))
		return
	}
	if c.w.cfg.AnalyticCollectives {
		c.sync(r, key, nil, uniformFinisher(func() sim.Duration { return c.w.analyticReduce(c.Size(), bytes) }))
		return
	}
	p := c.Size()
	if p == 1 {
		return
	}
	me := c.Rank(r)
	rel := (me - root + p) % p
	for k, mask := 0, 1; mask < p; k, mask = k+1, mask*2 {
		rkey := fmt.Sprintf("%s.r%d", key, k)
		if rel&mask == 0 {
			src := rel | mask
			if src < p {
				r.recvColl(c.Member((src+root)%p), rkey)
				r.reduceFlops(bytes)
			}
		} else {
			dst := rel &^ mask
			r.sendColl(c.Member((dst+root)%p), bytes, rkey)
			break
		}
	}
}

// Allgather gathers bytesPerRank from every member to every member
// using the ring algorithm.
func (c *Comm) Allgather(r *Rank, bytesPerRank int) {
	key := c.nextKey(r, "allgather")
	if c.w.cfg.AnalyticCollectives {
		c.sync(r, key, nil, uniformFinisher(func() sim.Duration { return c.w.analyticAllgather(c.Size(), bytesPerRank) }))
		return
	}
	p := c.Size()
	if p == 1 {
		return
	}
	me := c.Rank(r)
	right := c.Member((me + 1) % p)
	left := c.Member((me - 1 + p) % p)
	for k := 0; k < p-1; k++ {
		r.sendrecvColl(right, bytesPerRank, left, fmt.Sprintf("%s.r%d", key, k))
	}
}

// Alltoall exchanges bytesPerPair with every other member using
// pairwise exchange (XOR schedule when the size is a power of two).
func (c *Comm) Alltoall(r *Rank, bytesPerPair int) {
	key := c.nextKey(r, "alltoall")
	if c.w.cfg.AnalyticCollectives {
		c.sync(r, key, nil, uniformFinisher(func() sim.Duration { return c.w.analyticAlltoall(c.Size(), bytesPerPair) }))
		return
	}
	p := c.Size()
	if p == 1 {
		return
	}
	me := c.Rank(r)
	pow2 := p&(p-1) == 0
	for k := 1; k < p; k++ {
		var dst, src int
		if pow2 {
			dst = me ^ k
			src = dst
		} else {
			dst = (me + k) % p
			src = (me - k + p) % p
		}
		r.sendrecvColl(c.Member(dst), bytesPerPair, c.Member(src), fmt.Sprintf("%s.r%d", key, k))
	}
}

// Gather collects bytesPerRank from every member at root via a
// binomial tree with subtree aggregation.
func (c *Comm) Gather(r *Rank, root, bytesPerRank int) {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("mpi: gather root %d out of range", root))
	}
	key := c.nextKey(r, "gather")
	if c.w.cfg.AnalyticCollectives {
		c.sync(r, key, nil, uniformFinisher(func() sim.Duration { return c.w.analyticGather(c.Size(), bytesPerRank) }))
		return
	}
	p := c.Size()
	if p == 1 {
		return
	}
	me := c.Rank(r)
	rel := (me - root + p) % p
	have := 1 // subtree ranks aggregated so far
	for k, mask := 0, 1; mask < p; k, mask = k+1, mask*2 {
		rkey := fmt.Sprintf("%s.r%d", key, k)
		if rel&mask == 0 {
			src := rel | mask
			if src < p {
				sub := mask
				if rel+2*mask > p {
					sub = p - src // partial subtree at the edge
				}
				r.recvColl(c.Member((src+root)%p), rkey)
				have += sub
			}
		} else {
			dst := rel &^ mask
			r.sendColl(c.Member((dst+root)%p), have*bytesPerRank, rkey)
			break
		}
	}
}
