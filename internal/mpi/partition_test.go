package mpi

import (
	"testing"

	"bgpsim/internal/machine"
	"bgpsim/internal/network"
	"bgpsim/internal/topology"
)

// partitionPair carves one isolated 64-node prism and one scattered
// 64-node allocation (two far clumps) out of an 8x8x16 machine torus.
func partitionPair(t *testing.T) (*topology.Partition, *topology.Partition) {
	t.Helper()
	mach := topology.NewTorus(topology.Dims{8, 8, 16})
	iso, err := topology.NewPrismPartition(mach, topology.Coord{0, 0, 0}, topology.Dims{4, 4, 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	var nodes []int
	for i := 0; i < 32; i++ {
		nodes = append(nodes, i)
	}
	far := mach.NodeAt(topology.Coord{0, 0, 12})
	for i := 0; i < 32; i++ {
		nodes = append(nodes, far+i)
	}
	frag, err := topology.NewScatteredPartition(mach, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return iso, frag
}

func TestPartitionScopedWorld(t *testing.T) {
	iso, frag := partitionPair(t)
	prog := func(r *Rank) {
		if r.ID()%2 == 0 {
			r.Send(r.ID()+1, 1<<20, 0)
		} else {
			r.Recv(r.ID()-1, 0)
		}
	}
	run := func(p *topology.Partition) *Result {
		return mustRun(t, Config{
			Machine:   machine.Get(machine.BGP),
			Mode:      machine.SMP,
			Fidelity:  network.Analytic,
			Partition: p,
		}, prog)
	}
	ri := run(iso)
	rf := run(frag)
	if ri.Elapsed <= 0 || rf.Elapsed <= 0 {
		t.Fatalf("elapsed iso=%v frag=%v", ri.Elapsed, rf.Elapsed)
	}
	// The fragmented partition shares links with other jobs' traffic:
	// the same program must run strictly slower there.
	if rf.Elapsed <= ri.Elapsed {
		t.Errorf("fragmented partition elapsed %v not slower than isolated %v", rf.Elapsed, ri.Elapsed)
	}

	// A whole-machine config of the same shape must match the isolated
	// partition byte for byte (the partition view adds nothing).
	rw := mustRun(t, Config{
		Machine:  machine.Get(machine.BGP),
		Nodes:    64,
		Dims:     topology.Dims{4, 4, 4},
		Mode:     machine.SMP,
		Fidelity: network.Analytic,
	}, prog)
	if rw.Elapsed != ri.Elapsed {
		t.Errorf("isolated partition elapsed %v != whole-machine %v", ri.Elapsed, rw.Elapsed)
	}
}

func TestPartitionConfigValidation(t *testing.T) {
	iso, _ := partitionPair(t)
	cfg := Config{
		Machine:   machine.Get(machine.BGP),
		Mode:      machine.SMP,
		Nodes:     32, // partition holds 64
		Partition: iso,
	}
	if _, err := NewWorld(cfg); err == nil {
		t.Error("node-count/partition mismatch should fail")
	}
	cfg.Nodes = 0
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.Config().Nodes != 64 || w.Config().Dims != (topology.Dims{4, 4, 4}) {
		t.Errorf("derived nodes=%d dims=%v, want 64 / 4x4x4", w.Config().Nodes, w.Config().Dims)
	}
}
