package mpi

// Sender-based message logging and replay (fault.Plan.EnableSenderLogging):
// the point-to-point half of the fault-tolerance story that recover.go's
// collective machinery leaves open. Every rank logs the envelopes of its
// outbound user point-to-point sends (logEnv; one append per send, gated
// by a single bool so the logging-off hot path is unchanged). A node kill
// then takes one of two shapes:
//
//   - Orphan cancellation (log=sender alone, World.cancelP2P): the
//     killed node's ranks leave the job exactly as under plain recovery,
//     and the stranded point-to-point traffic is cancelled at the
//     detection time instead of deadlocking the run. A survivor blocked
//     on a dead peer is woken at death + detection and its wait returns
//     a typed *PeerLostError: the error-aware API (WaitErr, RecvErr)
//     hands it to the program; the plain blocking API unwinds the rank
//     (peerLostPanic, absorbed in spawnRank and surfaced through
//     Result.PeerLost). Sends complete silently — an orphaned send
//     buffer is reusable, as after MPI_Cancel — and are counted in
//     network.Stats.Orphans. Wildcard (AnySource) receives are never
//     cancelled: a dead rank is indistinguishable from a slow one
//     there, so an unmatched wildcard still deadlocks, with the dead
//     ranks named in the error note (annotateDeadlock).
//
//   - User-level restart (log=sender,restart=ckpt, World.restartP2P):
//     no rank leaves the job. The killed node's ranks roll back to
//     their last CommitCheckpoint and the logged messages addressed to
//     them since that commit are replayed in canonical (creator rank,
//     stamp) key order — the sharded kernel's same-timestamp order, so
//     the replay schedule is identical at any shard count. The restart
//     is charged, not re-executed: each victim's clock is floored to
//     death + detection + reboot + checkpoint read-back + redone work
//     + replay serialization (restartNode), and the rank's live state
//     — which equals its post-replay state, since replayed messages
//     are exactly the ones it had already consumed — carries on. The
//     floor is applied at the rank's next boundary (applyFloor), so
//     in-flight interactions with survivors stay causal.
//
// Both shapes process the fault at a deterministic point — a kernel
// event in a serial run, the inter-window barrier in a sharded run —
// before any event past the fault time fires, so stdout stays
// byte-identical at any -j and any -shards N.

import (
	"errors"
	"fmt"
	"sort"

	"bgpsim/internal/fault"
	"bgpsim/internal/sim"
	"bgpsim/internal/trace"
)

// PeerLostError reports that a blocked point-to-point operation was
// cancelled because its peer rank died under a fault plan with
// log=sender. It surfaces from WaitErr/RecvErr, or — when the plain
// blocking API was used — from Result.PeerLost after the affected rank
// unwound.
type PeerLostError struct {
	Rank int      // the surviving rank whose operation was cancelled
	Peer int      // the dead peer rank
	Node int      // the torus node the peer died on
	At   sim.Time // when the cancellation was delivered (death + detection)
}

func (e *PeerLostError) Error() string {
	return fmt.Sprintf("mpi: rank %d: peer rank %d lost (node %d died) at %v",
		e.Rank, e.Peer, e.Node, e.At)
}

// peerLostPanic unwinds a rank whose plain (error-unaware) blocking
// call was cancelled on a dead peer; spawnRank's wrapper absorbs it and
// keeps the error for Result.PeerLost.
type peerLostPanic struct{ err *PeerLostError }

// peerLostUnwind records the cancellation and unwinds the rank. Out of
// line: it sits on the p2p wait path but only ever runs once per rank.
//
//go:noinline
func (r *Rank) peerLostUnwind(err *PeerLostError) {
	r.peerLost = err
	if tb := r.tb; tb != nil {
		tb.Record(trace.Event{T: r.proc.Now(), Rank: r.id, Kind: trace.Fault,
			Peer: err.Peer, Label: "p2p-orphan"})
	}
	panic(peerLostPanic{err: err})
}

// logEnv is one logged outbound point-to-point envelope: enough to
// reconstruct the replay schedule (who sends what to whom, in which
// canonical position) without retaining payloads.
type logEnv struct {
	dst    int
	bytes  int
	stamp  uint64 // the send's canonical same-timestamp key
	sentAt sim.Time
}

// replayMutateOrder discards the canonical (creator rank, stamp) order
// of the replay queue and replays it reversed instead — the ordering
// bug the determinism tests must be able to catch: reversed replay
// re-times every "p2p-replay" event, so a run's trace and probe
// streams diverge from the serial baseline. It exists only for the
// mutation guard in the tests; flipping it must make the replay
// determinism comparison fail.
var replayMutateOrder = false

const (
	// restartRebootS is the default reboot-and-relaunch time charged to
	// a restarting rank (restart=ckpt) when Config.RestartReboot is
	// zero: the control system power-cycles the compute node and
	// reloads CNK plus the application image before the checkpoint can
	// be read back.
	restartRebootS = 1.0
	// restartReadBWBps is the default checkpoint read-back bandwidth
	// when the run does not install Config.RestartRead: a flat
	// file-system stream, the simple stand-in for the stateful iosys
	// model internal/ckpt wires in.
	restartReadBWBps = 1e9
)

// WaitErr is Wait for programs that handle peer loss themselves: under
// a fault plan with log=sender (without restart=ckpt) it returns a
// *PeerLostError when the request's peer died, instead of unwinding
// the rank the way Wait does. On every other configuration and outcome
// it behaves exactly like Wait and returns nil.
func (r *Rank) WaitErr(q *Request) error {
	if err := r.waitErrNoOverhead(q); err != nil {
		return err
	}
	if q.isRecv {
		r.proc.Sleep(r.swOverhead())
	}
	return nil
}

// RecvErr is Recv with peer-loss reporting: it returns the received
// byte count, or a *PeerLostError when src died under a fault plan
// with log=sender before a matching message arrived.
func (r *Rank) RecvErr(src, tag int) (int, error) {
	q := r.irecv(src, tag, "")
	if err := r.WaitErr(q); err != nil {
		return 0, err
	}
	return q.msg.bytes, nil
}

// waitErrNoOverhead is the wait loop shared by Wait and WaitErr. The
// healthy path is one done-check and one Block, exactly the pre-logging
// wait; the loop only re-checks after a wake, which needs no spurious-
// wake tolerance beyond orphan cancellation (every other wake implies
// q.done). Under orphan cancellation it checks the peer at entry and
// after every wake, so both a wait entered after the death and a wait
// woken by failNode's sweep deliver the error at death + detection.
func (r *Rank) waitErrNoOverhead(q *Request) *PeerLostError {
	if q.r != r {
		panic("mpi: waiting on another rank's request")
	}
	for !q.done {
		if r.w.cancelP2P && q.collKey == "" {
			if err := r.orphanCheck(q); err != nil {
				return err
			}
			if q.done {
				break
			}
		}
		q.waiting = true
		kind := "MPI_Wait(send)"
		if q.isRecv {
			kind = "MPI_Wait(recv)"
		}
		r.proc.Block(kind)
		q.waiting = false
		if r.dead && r.collAlgo == "" {
			// Woken by failNode, not by completion: unwind the dead rank
			// out of its point-to-point wait.
			killRank()
		}
		if r.floor != 0 {
			r.applyFloor()
		}
	}
	return nil
}

// orphanCheck inspects one pending user request against the dead-rank
// set under orphan cancellation. A receive naming a dead source is
// cancelled: the detection latency is charged and the typed error
// returned (unless the message arrived during the detection sleep — a
// racing in-flight transfer still wins). A send to a dead destination
// completes silently after the same charge; its NACK or failNode sweep
// may already have done so.
func (r *Rank) orphanCheck(q *Request) *PeerLostError {
	w := r.w
	if q.isRecv {
		if q.src < 0 || !w.deadRank[q.src] {
			return nil
		}
		r.chargeDetect(q.src)
		if q.done {
			return nil
		}
		r.unpost(q)
		r.net.RecordOrphan()
		dr := w.ranks[q.src]
		return &PeerLostError{Rank: r.id, Peer: q.src, Node: dr.place.Node, At: r.proc.Now()}
	}
	if q.dst < 0 || !w.deadRank[q.dst] {
		return nil
	}
	r.chargeDetect(q.dst)
	if !q.done {
		q.done = true
		r.net.RecordOrphan()
	}
	return nil
}

// chargeDetect sleeps the rank to the peer's death + detection time —
// the earliest moment the control system could have told it the peer
// is gone. A rank arriving later pays nothing.
func (r *Rank) chargeDetect(peer int) {
	limit := r.w.deadAt[peer].Add(sim.Seconds(recoveryDetectS))
	if limit > r.proc.Now() {
		r.proc.SleepUntil(limit)
		if r.dead && r.collAlgo == "" {
			killRank()
		}
	}
}

// unpost removes a cancelled receive from the posted queue so a later
// message for the same (src, tag) cannot match a request the program
// already saw fail.
func (r *Rank) unpost(q *Request) {
	for i, p := range r.posted {
		if p == q {
			r.posted = append(r.posted[:i], r.posted[i+1:]...)
			return
		}
	}
}

// cancelDelivery handles a user point-to-point message arriving at a
// dead rank under orphan cancellation. Eager payloads die with the
// rank. A rendezvous header is answered with a zero-byte NACK to the
// sender — scheduled like any control message, so the sender's
// completion (cancellation) time is a network quantity, and carried
// cross-shard as counted mail (the serial kernel spends one event on
// it too, keeping event counts identical at any shard count).
func (r *Rank) cancelDelivery(m *message) {
	if m.eager {
		r.net.RecordOrphan()
		return
	}
	src := r.w.ranks[m.src]
	ack, err := r.net.P2P(r.k.Now(), r.place.Node, src.place.Node, 0)
	if err != nil {
		r.k.Abort(fmt.Errorf("mpi: rank %d orphan nack to rank %d: %w", r.id, m.src, err))
		return
	}
	sq := m.sender
	fn := func() {
		if sq.done {
			return
		}
		sq.done = true
		sq.r.net.RecordOrphan()
		if sq.waiting {
			sq.r.proc.Wake()
		}
	}
	stamp := r.proc.NextStamp()
	if src.sh != nil && src.sh != r.sh {
		r.sh.mail(ack, r.id, stamp, src.sh, fn, false)
	} else {
		r.k.AtTagged(ack, r.id, stamp, fn)
	}
}

// cancelOrphans is failNode's point-to-point sweep under orphan
// cancellation, run at death time with the shards quiescent. Undelivered
// user messages in dead inboxes are orphaned — blocked rendezvous
// senders complete at death + detection, eager payloads are simply
// dropped — and every survivor blocked on a receive from a dead source
// is woken at death + detection, where its wait loop delivers the
// *PeerLostError. Walk order (victims, then survivors, both in rank
// order) and the single wake time make the unwind deterministic.
func (w *World) cancelOrphans(victims []*Rank, at sim.Time) {
	cancelAt := at.Add(sim.Seconds(recoveryDetectS))
	orphaned := 0
	for _, v := range victims {
		kept := v.inbox[:0]
		for _, m := range v.inbox {
			if m.collKey != "" {
				// Collective-internal rounds complete under the gate
				// repair in failNode; never cancel them.
				kept = append(kept, m)
				continue
			}
			orphaned++
			v.net.RecordOrphan()
			if !m.eager && !m.sender.done {
				sq := m.sender
				sq.done = true
				if sq.waiting {
					sq.r.proc.WakeAt(cancelAt)
				}
			}
		}
		v.inbox = kept
	}
	woken := 0
	for _, s := range w.ranks {
		if s.dead || !s.proc.Blocked() {
			continue
		}
		for _, q := range s.posted {
			if q.waiting && q.collKey == "" && q.src >= 0 && w.deadRank[q.src] {
				s.proc.WakeAt(cancelAt)
				woken++
				break
			}
		}
	}
	if w.probe != nil {
		w.probe.Fault(at, "p2p-orphan", fmt.Sprintf(
			"node death orphaned %d queued message(s), woke %d blocked receiver(s); cancellations land at %v",
			orphaned, woken, cancelAt))
	}
}

// replayMsg is one logged envelope due for replay into a restarting
// rank.
type replayMsg struct {
	src   int
	stamp uint64
	bytes int
}

// replayQueue collects every logged envelope addressed to the victim
// since its last checkpoint commit, in canonical (creator rank, stamp)
// key order — the sharded kernel's same-timestamp order, so the replay
// schedule (and with it the restart charge and the "p2p-replay" event
// stream) is identical at any shard count. Messages sent at exactly
// the death time are included: in both the serial and sharded paths
// the fault is processed before any event past it, so a send stamped
// at the death time has already been logged everywhere.
func (w *World) replayQueue(v *Rank, at sim.Time) []replayMsg {
	var q []replayMsg
	for _, s := range w.ranks {
		for _, e := range s.sentLog {
			if e.dst == v.id && e.sentAt > v.lastCommitAt && e.sentAt <= at {
				q = append(q, replayMsg{src: s.id, stamp: e.stamp, bytes: e.bytes})
			}
		}
	}
	sort.Slice(q, func(i, j int) bool {
		if q[i].src != q[j].src {
			return q[i].src < q[j].src
		}
		return q[i].stamp < q[j].stamp
	})
	if replayMutateOrder {
		for i, j := 0, len(q)-1; i < j; i, j = i+1, j-1 {
			q[i], q[j] = q[j], q[i]
		}
	}
	return q
}

// restartNode is failNode's counterpart under restart=ckpt: no rank
// leaves the job. Each rank on the dead node is rolled back to its
// last CommitCheckpoint and charged the full user-level restart —
// detection, reboot, checkpoint read-back, the work since the commit
// done over, and the sender logs replayed in canonical order — as a
// clock floor applied at its next boundary. A rank that never
// committed restarts from the beginning (zero read-back, full rework).
// Like failNode, it runs as a kernel event in a serial run and at the
// inter-window barrier in a sharded one, before any event past the
// death time.
func (w *World) restartNode(nf fault.NodeFault) {
	var victims []*Rank
	for _, r := range w.ranks {
		if r.place.Node == nf.Node {
			victims = append(victims, r)
		}
	}
	if len(victims) == 0 {
		return
	}
	w.restarts++
	detect := sim.Seconds(recoveryDetectS)
	reboot := w.cfg.RestartReboot
	if reboot == 0 {
		reboot = sim.Seconds(restartRebootS)
	}
	// Every probe and trace event is stamped at the death time, whatever
	// wall the charge lands at (the detail text carries the landing
	// times): the serial path emits them live inside the fault event,
	// before any same-time rank event, and the sharded path's time-sorted
	// merges then reproduce that exact order at any shard count.
	for _, v := range victims {
		read := w.restartRead(nf.At, v)
		rework := nf.At.Sub(v.lastCommitAt)
		if rework < 0 {
			rework = 0
		}
		q := w.replayQueue(v, nf.At)
		if w.probe != nil {
			w.probe.Fault(nf.At, "rank-restart", fmt.Sprintf(
				"node %d died, rank %d restarts from commit at %v: detect %v, reboot %v, read %v, rework %v, %d message(s) to replay",
				nf.Node, v.id, v.lastCommitAt, detect, reboot, read, rework, len(q)))
		}
		if v.tb != nil {
			v.tb.Record(trace.Event{T: nf.At, Rank: v.id, Kind: trace.Fault,
				Peer: -1, Label: "rank-restart"})
		}
		t := nf.At.Add(detect + reboot + read + rework)
		var replayD sim.Duration
		var replayBytes int64
		for _, m := range q {
			c := w.net.ReplayCost(m.bytes)
			replayD += c
			replayBytes += int64(m.bytes)
			t = t.Add(c)
			if w.probe != nil {
				w.probe.Fault(nf.At, "p2p-replay", fmt.Sprintf(
					"rank %d <- rank %d: %d B replayed (stamp %d), lands %v", v.id, m.src, m.bytes, m.stamp, t))
			}
			if v.tb != nil {
				v.tb.Record(trace.Event{T: nf.At, Rank: v.id, Kind: trace.Fault,
					Peer: m.src, Bytes: m.bytes, Label: "p2p-replay"})
			}
		}
		if t > v.floor {
			v.floor = t
		}
		w.net.RecordRestart(detect+reboot+read+rework+replayD, replayD, len(q), replayBytes)
	}
}

// restartRead prices reading the victim's last committed checkpoint
// back: the installed Config.RestartRead hook (internal/ckpt wires its
// stateful storage model in), or a flat stream at restartReadBWBps.
func (w *World) restartRead(at sim.Time, v *Rank) sim.Duration {
	if v.lastCommitBytes <= 0 {
		return 0
	}
	if f := w.cfg.RestartRead; f != nil {
		return f(at, v.place.Node, v.lastCommitBytes)
	}
	return sim.Seconds(v.lastCommitBytes / restartReadBWBps)
}

// CommitCheckpoint records that the rank durably committed a
// checkpoint of the given size at the current time. Under a fault plan
// with restart=ckpt, a later kill of the rank's node rolls it back
// here: the restart charge re-does the work since this commit and
// replays the logged messages delivered after it. The I/O cost of
// writing the checkpoint is the program's to model (internal/ckpt
// writes through iosys); CommitCheckpoint itself is free.
func (r *Rank) CommitCheckpoint(bytes float64) {
	if r.dead && r.collAlgo == "" {
		killRank()
	}
	if r.floor != 0 {
		r.applyFloor()
	}
	r.lastCommitAt = r.proc.Now()
	r.lastCommitBytes = bytes
}

// applyFloor sleeps the rank through its pending restart window. Out
// of line so the boundary checks sprinkled on the hot paths cost one
// load-and-compare when no restart is pending (the overwhelmingly
// common case).
//
//go:noinline
func (r *Rank) applyFloor() {
	f := r.floor
	r.floor = 0
	if f > r.proc.Now() {
		r.proc.SleepUntil(f)
	}
}

// annotateDeadlock threads the killed-rank set into a deadlock report.
// A survivor blocked on a dead peer is the common way a recovery-mode
// run still deadlocks — point-to-point traffic is only repaired under
// log=sender, and wildcard receives not even then — and the bare
// blocked-process list does not say so.
func (w *World) annotateDeadlock(err error) error {
	if len(w.lost) == 0 {
		return err
	}
	var de *sim.DeadlockError
	if !errors.As(err, &de) || de.Note != "" {
		return err
	}
	hint := "point-to-point traffic to a dead rank needs a fault plan with log=sender"
	if w.cancelP2P {
		hint = "wildcard (AnySource) receives are not cancelled by log=sender"
	}
	de.Note = fmt.Sprintf("rank(s) %v killed on node(s) %v; %s", w.lost, w.deadNodes, hint)
	return err
}
