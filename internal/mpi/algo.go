package mpi

import (
	"fmt"
	"sort"
	"strings"

	"bgpsim/internal/machine"
	"bgpsim/internal/sim"
	"bgpsim/internal/trace"
)

// The collective layer is a dispatch registry: every collective body
// is a named CollAlgo, and each call picks one via (in order) the
// Config.Coll override, the machine's selection table
// (machine.CollTable), and a built-in fallback table. With the stock
// catalog tables the selection reproduces the historical hardwired
// behaviour byte for byte; overrides and edited tables expose the
// algorithm-choice knob the paper's collective results hinge on.

// CollArgs carries the size/shape parameters of one collective call.
// Bytes is the op's natural size parameter: the full payload for
// bcast/allreduce/reduce/scan, the per-rank contribution for
// allgather/gather/scatter/reducescatter, the per-pair exchange for
// alltoall, and zero for barrier.
type CollArgs struct {
	Root   int
	Bytes  int
	Double bool // double-precision operands (allreduce/reduce)
}

// CollAlgo is one registered collective algorithm.
type CollAlgo struct {
	Op   string // "bcast", "allreduce", ... (the nextKey kind)
	Name string // "binomial", "ring", "tree-offload", ...

	// HW marks a hardware offload (BlueGene collective tree or global
	// interrupt network). HW algorithms run even under
	// AnalyticCollectives, mirroring the historical dispatch order.
	HW bool

	// Eligible reports whether the algorithm can serve a call of this
	// shape on the machine (nil = always). world says the communicator
	// is COMM_WORLD — the hardware networks span the whole partition
	// and serve nothing smaller.
	Eligible func(m *machine.Machine, world bool, procs int, a CollArgs) bool

	// Run executes the algorithm; key is the collective's matching key.
	// Software algorithms only (HW algorithms supply Dur instead).
	Run func(c *Comm, r *Rank, key string, a CollArgs)

	// Dur computes a hardware offload's duration; runColl performs the
	// gate sync itself so the hot hardware path stays one call deep
	// (an extra frame there overflows the initial goroutine stack and
	// forces a stack copy on every fresh rank).
	Dur func(c *Comm, a CollArgs) sim.Duration

	full string // "op/name", set at registration
}

// FullName returns the "op/name" identifier carried by trace events
// and per-algorithm traffic counters.
func (al *CollAlgo) FullName() string { return al.full }

func (al *CollAlgo) eligible(m *machine.Machine, world bool, procs int, a CollArgs) bool {
	return al.Eligible == nil || al.Eligible(m, world, procs, a)
}

// opID indexes a collective op; the wrappers dispatch with these so
// the per-call path never hashes op names.
type opID int

// Collective op indices, in collOpNames order.
const (
	opBarrier opID = iota
	opBcast
	opAllreduce
	opReduce
	opAllgather
	opAlltoall
	opGather
	opScatter
	opScan
	opReduceScatter
	numCollOps
)

// collOpNames names the ops (the nextKey kinds), indexed by opID.
var collOpNames = [numCollOps]string{
	"barrier", "bcast", "allreduce", "reduce", "allgather",
	"alltoall", "gather", "scatter", "scan", "reducescatter",
}

// opIndex maps an op name to its index.
func opIndex(op string) (opID, bool) {
	for i, o := range collOpNames {
		if o == op {
			return opID(i), true
		}
	}
	return 0, false
}

// algoKey indexes the registry (registration and cold-path lookups
// only; the per-call dispatch uses the World's pre-resolved tables).
type algoKey struct{ op, name string }

var collRegistry = map[algoKey]*CollAlgo{}

// registerCollAlgo adds an algorithm to the registry (called from
// package init; duplicate or malformed registrations are bugs).
func registerCollAlgo(al *CollAlgo) {
	if _, ok := opIndex(al.Op); !ok {
		panic(fmt.Sprintf("mpi: registering algorithm for unknown collective %q", al.Op))
	}
	if al.Name == "" || (al.HW && al.Dur == nil) || (!al.HW && al.Run == nil) {
		panic(fmt.Sprintf("mpi: incomplete registration for %s/%s", al.Op, al.Name))
	}
	k := algoKey{al.Op, al.Name}
	if _, dup := collRegistry[k]; dup {
		panic(fmt.Sprintf("mpi: duplicate algorithm %s/%s", al.Op, al.Name))
	}
	al.full = al.Op + "/" + al.Name
	collRegistry[k] = al
}

// fallbackCollTable backstops machines whose description carries no
// selection table (hand-built Machine values, ablation copies): it is
// the stock tree-machine table, whose hardware rules filter themselves
// out via eligibility on machines without the networks, reproducing
// the pre-table hardwired behaviour.
var fallbackCollTable = machine.DefaultCollTable()

// collRule is one pre-resolved selection rule: the bounds of a
// machine.CollRule with the algorithm pointer already looked up.
type collRule struct {
	maxBytes, minProcs, maxProcs int
	al                           *CollAlgo
}

// resolveCollRules compiles one op's rules, dropping rules that name
// unregistered algorithms (documented as skipped).
func resolveCollRules(t machine.CollTable, op opID) []collRule {
	var out []collRule
	for _, ru := range t[collOpNames[op]] {
		if al := collRegistry[algoKey{collOpNames[op], ru.Algo}]; al != nil {
			out = append(out, collRule{ru.MaxBytes, ru.MinProcs, ru.MaxProcs, al})
		}
	}
	return out
}

// buildCollTables pre-resolves the world's dispatch tables: per op,
// the optional override algorithm and the machine rules with the
// fallback table appended. Done once at NewWorld so the per-collective
// dispatch is a bounds walk over a slice — no map lookups (hashing
// string keys forces a stack grow on every fresh rank goroutine).
func (w *World) buildCollTables() {
	for op := opID(0); op < numCollOps; op++ {
		w.collRules[op] = append(resolveCollRules(w.mach.Coll, op),
			resolveCollRules(fallbackCollTable, op)...)
		if name, ok := w.cfg.Coll[collOpNames[op]]; ok {
			w.collOver[op] = collRegistry[algoKey{collOpNames[op], name}]
		}
	}
}

// selectColl resolves the algorithm for one collective call: the
// config override when eligible, then the first matching eligible
// rule (machine table first, built-in fallback after).
func (w *World) selectColl(op opID, world bool, procs int, a CollArgs) *CollAlgo {
	if al := w.collOver[op]; al != nil && al.eligible(w.mach, world, procs, a) {
		return al
	}
	for i := range w.collRules[op] {
		ru := &w.collRules[op][i]
		if ru.maxBytes > 0 && a.Bytes > ru.maxBytes {
			continue
		}
		if ru.minProcs > 0 && procs < ru.minProcs {
			continue
		}
		if ru.maxProcs > 0 && procs > ru.maxProcs {
			continue
		}
		if ru.al.eligible(w.mach, world, procs, a) {
			return ru.al
		}
	}
	panic(fmt.Sprintf("mpi: no eligible algorithm for %s (%d ranks, %d bytes) on %s",
		collOpNames[op], procs, a.Bytes, w.mach.Name))
}

// runColl is the single dispatch point for every collective: it draws
// the collective's matching key, selects the algorithm, records the
// trace and traffic accounting, and runs the hardware offload, the
// closed-form analytic model, or the software algorithm.
func (c *Comm) runColl(r *Rank, op opID, a CollArgs) {
	if c.w.recovery {
		c.runCollRecover(r, op, a)
		return
	}
	key := c.nextKey(r, collOpNames[op])
	al := c.w.selectColl(op, c.isWorld, c.Size(), a)
	if r.tb != nil {
		collTrace(r.tb, r, trace.CollEnter, key, al.full)
	}
	if r.pb != nil {
		probeColl(r, key, al.full, true)
	}
	if c.Rank(r) == 0 {
		r.net.CollOp(al.full)
	}
	switch {
	case al.HW:
		c.sync(r, key, nil, uniformFinisher(func() sim.Duration { return al.Dur(c, a) }))
	case c.w.cfg.AnalyticCollectives:
		c.sync(r, key, nil, uniformFinisher(func() sim.Duration { return collAnalytic(c, op, a) }))
	default:
		prev := r.collAlgo
		r.collAlgo = al.full
		al.Run(c, r, key, a)
		r.collAlgo = prev
	}
	if r.tb != nil {
		collTrace(r.tb, r, trace.CollExit, key, al.full)
	}
	if r.pb != nil {
		probeColl(r, key, al.full, false)
	}
}

// collTrace records one collective trace event. Kept out of runColl
// so the Event temporaries don't widen the frame of every collective
// call (runColl sits on the stack of each rank's deepest path; a fat
// frame there grows the stack of every fresh rank goroutine).
//
//go:noinline
func collTrace(tb *trace.Buffer, r *Rank, kind trace.Kind, key, algo string) {
	tb.Record(trace.Event{T: r.proc.Now(), Rank: r.id, Kind: kind,
		Peer: -1, Label: key, Algo: algo})
}

// probeColl mirrors collTrace for the probe stream: same out-of-line
// stack discipline, one helper for both edges of the span.
//
//go:noinline
func probeColl(r *Rank, key, algo string, enter bool) {
	if enter {
		r.pb.CollEnter(r.id, r.proc.Now(), key, algo)
	} else {
		r.pb.CollExit(r.id, r.proc.Now(), key, algo)
	}
}

// collAnalytic returns the closed-form duration for op (analytic.go),
// mirroring the per-op models the pre-registry dispatch used.
func collAnalytic(c *Comm, op opID, a CollArgs) sim.Duration {
	p := c.Size()
	switch op {
	case opBarrier:
		return c.w.analyticBarrier(p)
	case opBcast:
		return c.w.analyticBcast(p, a.Bytes)
	case opAllreduce:
		return c.w.analyticAllreduce(p, a.Bytes)
	case opReduce:
		return c.w.analyticReduce(p, a.Bytes)
	case opAllgather:
		return c.w.analyticAllgather(p, a.Bytes)
	case opAlltoall:
		return c.w.analyticAlltoall(p, a.Bytes)
	case opGather, opScatter: // scatter mirrors gather
		return c.w.analyticGather(p, a.Bytes)
	case opScan:
		return c.w.analyticAllreduce(p, a.Bytes)
	case opReduceScatter: // half of a Rabenseifner allreduce
		return c.w.analyticAllreduce(p, a.Bytes*p) / 2
	}
	panic("mpi: no analytic model for collective " + collOpNames[op])
}

// CollOps returns the collective operation names in a fixed order.
func CollOps() []string {
	out := make([]string, numCollOps)
	copy(out, collOpNames[:])
	return out
}

// CollAlgos returns the registered algorithm names for op, sorted.
func CollAlgos(op string) []string {
	var out []string
	for k := range collRegistry {
		if k.op == op {
			out = append(out, k.name)
		}
	}
	sort.Strings(out)
	return out
}

// AlgoEligible reports whether the registered algorithm op/name could
// serve a call of the given shape on machine m.
func AlgoEligible(m *machine.Machine, op, name string, bytes, procs int, double, world bool) bool {
	al := collRegistry[algoKey{op, name}]
	return al != nil && al.eligible(m, world, procs, CollArgs{Bytes: bytes, Double: double})
}

// SelectCollAlgo returns the algorithm name m's selection table picks
// for a call of the given shape (with no override in force).
func SelectCollAlgo(m *machine.Machine, op string, bytes, procs int, double, world bool) string {
	i, ok := opIndex(op)
	if !ok {
		panic(fmt.Sprintf("mpi: unknown collective %q", op))
	}
	a := CollArgs{Bytes: bytes, Double: double}
	rules := append(resolveCollRules(m.Coll, i), resolveCollRules(fallbackCollTable, i)...)
	for _, ru := range rules {
		if ru.maxBytes > 0 && bytes > ru.maxBytes {
			continue
		}
		if ru.minProcs > 0 && procs < ru.minProcs {
			continue
		}
		if ru.maxProcs > 0 && procs > ru.maxProcs {
			continue
		}
		if ru.al.eligible(m, world, procs, a) {
			return ru.al.Name
		}
	}
	panic(fmt.Sprintf("mpi: no eligible algorithm for %s (%d ranks, %d bytes) on %s",
		op, procs, bytes, m.Name))
}

// ParseCollSpec parses a collective-override list of the form
// "allreduce=ring,bcast=binomial" into a Config.Coll map, validating
// every op and algorithm name. An empty spec returns nil.
func ParseCollSpec(s string) (map[string]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		op, name, ok := strings.Cut(f, "=")
		if !ok || op == "" || name == "" {
			return nil, fmt.Errorf("mpi: bad collective override %q (want op=algorithm, e.g. allreduce=ring)", f)
		}
		if _, ok := opIndex(op); !ok {
			return nil, fmt.Errorf("mpi: unknown collective %q (valid: %s)", op, strings.Join(CollOps(), ","))
		}
		if collRegistry[algoKey{op, name}] == nil {
			return nil, fmt.Errorf("mpi: unknown algorithm %q for %s (valid: %s)",
				name, op, strings.Join(CollAlgos(op), ","))
		}
		out[op] = name
	}
	return out, nil
}
