package mpi

import (
	"testing"
)

// Edge cases for the prefix-scan and reduce-scatter collectives:
// non-power-of-two communicator sizes exercise the remainder handling
// (fold/unfold, partial subtrees) and zero-byte calls must still
// synchronize rather than wedge or skip ranks.

func TestScanEdgeCases(t *testing.T) {
	for _, algo := range CollAlgos("scan") {
		for _, ranks := range []int{5, 9, 12} {
			for _, bytes := range []int{0, 1000} {
				algo, ranks, bytes := algo, ranks, bytes
				cfg := xtCollConfig(ranks)
				cfg.Coll = map[string]string{"scan": algo}
				calls := 0
				res := mustRun(t, cfg, func(r *Rank) {
					r.World().Scan(r, bytes)
					if r.ID() == 0 {
						calls++
					}
				})
				if calls != 1 {
					t.Fatalf("scan/%s p=%d b=%d: rank 0 ran %d times", algo, ranks, bytes, calls)
				}
				if res.Elapsed <= 0 {
					t.Errorf("scan/%s p=%d b=%d: elapsed %v", algo, ranks, bytes, res.Elapsed)
				}
			}
		}
	}
}

func TestReduceScatterEdgeCases(t *testing.T) {
	for _, algo := range CollAlgos("reducescatter") {
		for _, ranks := range []int{5, 9, 12} {
			for _, bytes := range []int{0, 1000} {
				algo, ranks, bytes := algo, ranks, bytes
				cfg := xtCollConfig(ranks)
				cfg.Coll = map[string]string{"reducescatter": algo}
				res := mustRun(t, cfg, func(r *Rank) {
					r.World().ReduceScatter(r, bytes)
				})
				if res.Elapsed <= 0 {
					t.Errorf("reducescatter/%s p=%d b=%d: elapsed %v", algo, ranks, bytes, res.Elapsed)
				}
			}
		}
	}
}

func TestScanReduceScatterDeterministic(t *testing.T) {
	run := func() *Result {
		return mustRun(t, xtCollConfig(9), func(r *Rank) {
			r.World().Scan(r, 777)
			r.World().ReduceScatter(r, 777)
		})
	}
	a, b := run(), run()
	if a.Elapsed != b.Elapsed || a.Events != b.Events {
		t.Errorf("runs differ: %v/%d vs %v/%d", a.Elapsed, a.Events, b.Elapsed, b.Events)
	}
}

func TestScanReduceScatterSingleRank(t *testing.T) {
	// p == 1: every algorithm must return immediately without messages.
	for _, op := range []string{"scan", "reducescatter"} {
		for _, algo := range CollAlgos(op) {
			op, algo := op, algo
			cfg := xtCollConfig(1)
			cfg.Coll = map[string]string{op: algo}
			res := mustRun(t, cfg, func(r *Rank) {
				runCollOp(r, op, 4096)
			})
			if res.Net.Messages != 0 {
				t.Errorf("%s/%s p=1 sent %d messages", op, algo, res.Net.Messages)
			}
		}
	}
}
