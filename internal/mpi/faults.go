package mpi

import (
	"fmt"

	"bgpsim/internal/fault"
	"bgpsim/internal/obs"
	"bgpsim/internal/sim"
)

// RankFailure reports that a scheduled node fault killed a rank while
// the program was still running. It surfaces from World.Run (use
// errors.As); the carried fields identify the first lost rank, its
// node, and the failure time.
type RankFailure struct {
	Rank int      // lowest world rank on the failed node
	Node int      // torus node index
	At   sim.Time // when the node died
}

func (e *RankFailure) Error() string {
	return fmt.Sprintf("mpi: rank %d lost: node %d failed at %v", e.Rank, e.Node, e.At)
}

// validateFaults checks a fault plan against the partition and
// resolves the active noise profile. Called from NewWorld before ranks
// are built.
func (w *World) validateFaults(plan *fault.Plan, nodes int) error {
	for _, nf := range plan.NodeFaults() {
		if nf.Node < 0 || nf.Node >= nodes {
			return fmt.Errorf("mpi: node fault on node %d, partition has %d nodes", nf.Node, nodes)
		}
	}
	// Mirror fault.ParseSpec's Build-time combination rules for plans
	// assembled directly through the API.
	if plan.LogSender() && !plan.Recover() {
		return fmt.Errorf("mpi: fault plan enables sender logging without recovery (sender-based replay rides on transparent recovery)")
	}
	if plan.RestartCkpt() && !plan.LogSender() {
		return fmt.Errorf("mpi: fault plan enables checkpoint restart without sender logging (restart replays the sender logs)")
	}
	np, on := plan.ResolveNoise(w.cpu.OSNoise())
	if on {
		if err := np.Valid(); err != nil {
			return fmt.Errorf("mpi: %w", err)
		}
		w.noise = np
		w.noiseOn = true
	}
	return nil
}

// scheduleNodeFaults arms the plan's node kills: at each fault time,
// if any rank is still running, the run aborts with a *RankFailure
// naming the lowest rank on the dead node. A fault scheduled after the
// program completes is harmless — the machine broke after the job.
// Faults on nodes that host no ranks (a partition larger than the
// job) are ignored.
func (w *World) scheduleNodeFaults(plan *fault.Plan) {
	if plan.Recover() {
		// Transparent recovery: kills remove ranks from the job instead
		// of aborting it (recover.go).
		for _, nf := range plan.NodeFaults() {
			nf := nf
			w.kernel.At(nf.At, func() { w.failNode(nf) })
		}
		return
	}
	for _, nf := range plan.NodeFaults() {
		victim := -1
		for _, r := range w.ranks {
			if r.place.Node == nf.Node {
				victim = r.id
				break
			}
		}
		if victim < 0 {
			continue
		}
		nf := nf
		rank := victim
		w.kernel.At(nf.At, func() {
			if w.kernel.Live() > 0 {
				if w.probe != nil {
					w.probe.Fault(nf.At, "node-kill",
						fmt.Sprintf("node %d died, rank %d lost", nf.Node, rank))
				}
				w.kernel.Abort(&RankFailure{Rank: rank, Node: nf.Node, At: nf.At})
			}
		})
	}
}

// reportLinkFaults streams the plan's link-fault schedule to the probe
// at run start. Link faults have no discrete activation event in the
// simulation (the network queries the plan per message), so the
// schedule itself is the observable record.
func reportLinkFaults(pb obs.Probe, plan *fault.Plan) {
	for _, lf := range plan.LinkFaults() {
		kind := "link-degraded"
		if lf.BWFactor == 0 {
			kind = "link-down"
		}
		until := "forever"
		if lf.Until != 0 {
			until = lf.Until.String()
		}
		pb.Fault(lf.From, kind, fmt.Sprintf("node %d dim %d positive=%v factor %g until %s",
			lf.Link.Node, lf.Link.Dim, lf.Link.Positive, lf.BWFactor, until))
	}
}
