package mpi

import "fmt"

// Combine folds two payload values into one; it must be associative
// and commutative (AllreducePayload folds in live-rank order).
type Combine func(a, b interface{}) interface{}

// BcastPayload broadcasts a value from communicator rank root along a
// binomial tree of payload-carrying point-to-point messages and
// returns it on every member. The byte count prices the transfer (the
// value itself travels by reference inside the simulator).
//
// This is the data-carrying sibling of Comm.Bcast: use Bcast to model
// a broadcast's cost when only timing matters, and BcastPayload when
// the program actually needs the value (see internal/hpl's panel
// broadcast for the pattern).
//
// Under transparent recovery (fault.Plan.EnableRecovery) the broadcast
// runs over the surviving members after an agreement gate; a dead root
// is replaced by the first surviving rank, which stands in with its
// own value.
func (c *Comm) BcastPayload(r *Rank, root, bytes int, value interface{}) interface{} {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("mpi: bcast root %d out of range", root))
	}
	lc := c.agreeLive(r, "bcastpayload!agree")
	if lc != c {
		root = remapRoot(c, lc, root)
	}
	prev := r.collAlgo
	if c.w.recovery {
		// Defer a mid-collective death to the end so the survivors'
		// in-flight rounds complete (same rule as software collectives).
		r.collAlgo = "payload/bcast"
	}
	value = lc.bcastPayload(r, root, bytes, value)
	if c.w.recovery {
		r.collAlgo = prev
		r.checkDead()
	}
	return value
}

func (c *Comm) bcastPayload(r *Rank, root, bytes int, value interface{}) interface{} {
	key := c.nextKey(r, "bcastpayload")
	p := c.Size()
	if p == 1 {
		return value
	}
	me := c.Rank(r)
	rel := (me - root + p) % p
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			src := c.Member((rel - mask + root) % p)
			q := r.irecv(src, AnyTag, key)
			r.Wait(q)
			value = q.Payload()
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < p {
			dst := c.Member((rel + mask + root) % p)
			r.isendPayload(dst, bytes, 0, key, value)
		}
	}
	return value
}

// GatherPayload collects every member's value at communicator rank
// root, which receives them indexed by communicator rank (others get
// nil). Transfers go directly to the root (the small-world pattern the
// verification paths use).
//
// Under transparent recovery the gather runs over the surviving
// members (indexed by live-communicator rank); a dead root is replaced
// by the first surviving rank.
func (c *Comm) GatherPayload(r *Rank, root, bytesPerRank int, value interface{}) []interface{} {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("mpi: gather root %d out of range", root))
	}
	lc := c.agreeLive(r, "gatherpayload!agree")
	if lc != c {
		root = remapRoot(c, lc, root)
	}
	prev := r.collAlgo
	if c.w.recovery {
		r.collAlgo = "payload/gather"
	}
	out := lc.gatherPayload(r, root, bytesPerRank, value)
	if c.w.recovery {
		r.collAlgo = prev
		r.checkDead()
	}
	return out
}

func (c *Comm) gatherPayload(r *Rank, root, bytesPerRank int, value interface{}) []interface{} {
	key := c.nextKey(r, "gatherpayload")
	p := c.Size()
	me := c.Rank(r)
	if me != root {
		r.sendPayload(c.Member(root), bytesPerRank, 0, key, value)
		return nil
	}
	out := make([]interface{}, p)
	out[me] = value
	for i := 0; i < p-1; i++ {
		q := r.irecv(AnySource, AnyTag, key)
		r.Wait(q)
		out[c.Rank(r.w.ranks[q.msg.src])] = q.Payload()
	}
	return out
}

// AllreducePayload combines every member's value with combine and
// returns the result on all members: a gather to the first rank, a
// fold in communicator-rank order, and a broadcast back. The byte
// count prices each transfer.
//
// Under transparent recovery the reduction runs over the surviving
// members after an agreement gate, so every survivor receives the
// combination of exactly the survivors' contributions — the semantic
// the fault conformance harness checks.
func (c *Comm) AllreducePayload(r *Rank, bytes int, value interface{}, combine Combine) interface{} {
	lc := c.agreeLive(r, "allreducepayload!agree")
	prev := r.collAlgo
	if c.w.recovery {
		r.collAlgo = "payload/allreduce"
	}
	vals := lc.gatherPayload(r, 0, bytes, value)
	if lc.Rank(r) == 0 {
		value = vals[0]
		for i := 1; i < len(vals); i++ {
			value = combine(value, vals[i])
		}
	}
	value = lc.bcastPayload(r, 0, bytes, value)
	if c.w.recovery {
		r.collAlgo = prev
		r.checkDead()
	}
	return value
}
