package mpi

import "fmt"

// BcastPayload broadcasts a value from communicator rank root along a
// binomial tree of payload-carrying point-to-point messages and
// returns it on every member. The byte count prices the transfer (the
// value itself travels by reference inside the simulator).
//
// This is the data-carrying sibling of Comm.Bcast: use Bcast to model
// a broadcast's cost when only timing matters, and BcastPayload when
// the program actually needs the value (see internal/hpl's panel
// broadcast for the pattern).
func (c *Comm) BcastPayload(r *Rank, root, bytes int, value interface{}) interface{} {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("mpi: bcast root %d out of range", root))
	}
	key := c.nextKey(r, "bcastpayload")
	p := c.Size()
	if p == 1 {
		return value
	}
	me := c.Rank(r)
	rel := (me - root + p) % p
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			src := c.Member((rel - mask + root) % p)
			q := r.irecv(src, AnyTag, key)
			r.Wait(q)
			value = q.Payload()
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < p {
			dst := c.Member((rel + mask + root) % p)
			r.isendPayload(dst, bytes, 0, key, value)
		}
	}
	return value
}

// GatherPayload collects every member's value at communicator rank
// root, which receives them indexed by communicator rank (others get
// nil). Transfers go directly to the root (the small-world pattern the
// verification paths use).
func (c *Comm) GatherPayload(r *Rank, root, bytesPerRank int, value interface{}) []interface{} {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("mpi: gather root %d out of range", root))
	}
	key := c.nextKey(r, "gatherpayload")
	p := c.Size()
	me := c.Rank(r)
	if me != root {
		r.sendPayload(c.Member(root), bytesPerRank, 0, key, value)
		return nil
	}
	out := make([]interface{}, p)
	out[me] = value
	for i := 0; i < p-1; i++ {
		q := r.irecv(AnySource, AnyTag, key)
		r.Wait(q)
		out[c.Rank(r.w.ranks[q.msg.src])] = q.Payload()
	}
	return out
}
