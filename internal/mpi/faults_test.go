package mpi

import (
	"errors"
	"testing"

	"bgpsim/internal/fault"
	"bgpsim/internal/machine"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

func faultCfg(t *testing.T, id machine.ID, nodes int, plan *fault.Plan) Config {
	t.Helper()
	return Config{
		Machine: machine.Get(id),
		Nodes:   nodes,
		Mode:    machine.SMP,
		Faults:  plan,
	}
}

// TestNodeKillSurfacesRankFailure: a node dying mid-run aborts with a
// typed *RankFailure naming the lost rank.
func TestNodeKillSurfacesRankFailure(t *testing.T) {
	plan := fault.NewPlan(1)
	killAt := sim.Time(5 * sim.Millisecond)
	plan.KillNode(3, killAt)
	_, err := Execute(faultCfg(t, machine.BGP, 16, plan), func(r *Rank) {
		for i := 0; i < 1000; i++ {
			r.World().Barrier(r)
			r.Advance(100 * sim.Microsecond)
		}
	})
	var rf *RankFailure
	if !errors.As(err, &rf) {
		t.Fatalf("err = %v, want *RankFailure", err)
	}
	if rf.Node != 3 || rf.At != killAt {
		t.Errorf("RankFailure = %+v, want Node=3 At=%v", rf, killAt)
	}
	if rf.Rank < 0 || rf.Rank >= 16 {
		t.Errorf("RankFailure.Rank = %d out of range", rf.Rank)
	}
}

// TestNodeKillAfterCompletionIsHarmless: a fault scheduled past the
// program's end must not fail the run.
func TestNodeKillAfterCompletionIsHarmless(t *testing.T) {
	plan := fault.NewPlan(1)
	plan.KillNode(0, sim.Time(3600*sim.Second))
	res, err := Execute(faultCfg(t, machine.BGP, 8, plan), func(r *Rank) {
		r.World().Barrier(r)
	})
	if err != nil {
		t.Fatalf("post-completion fault failed the run: %v", err)
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time recorded")
	}
}

// TestNodeFaultOutOfRangeRejected: NewWorld validates the plan against
// the partition.
func TestNodeFaultOutOfRangeRejected(t *testing.T) {
	plan := fault.NewPlan(1)
	plan.KillNode(99, 0)
	if _, err := NewWorld(faultCfg(t, machine.BGP, 8, plan)); err == nil {
		t.Fatal("node fault beyond the partition accepted")
	}
}

// TestPartitionSurfacesLinkDownError: isolating a node makes traffic
// to it fail with the typed topology error (wrapped by the MPI layer).
func TestPartitionSurfacesLinkDownError(t *testing.T) {
	cfg := faultCfg(t, machine.BGP, 16, nil)
	victimNode := -1
	{
		// Find the node of rank 5 with a throwaway world (same config,
		// same deterministic placement).
		w, err := NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		victimNode = w.ranks[5].place.Node
	}
	plan := fault.NewPlan(1)
	plan.IsolateNode(topology.NewTorus(topology.DimsForNodes(16)), victimNode)
	cfg.Faults = plan
	_, err := Execute(cfg, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(5, 100, 0)
		}
		if r.ID() == 5 {
			r.Recv(0, 0)
		}
	})
	var lde *topology.LinkDownError
	if !errors.As(err, &lde) {
		t.Fatalf("err = %v, want wrapped *topology.LinkDownError", err)
	}
}

// TestMachineNoiseStretchesCompute: on a noisy machine, enabling the
// machine noise profile makes compute-bound runs take longer; on the
// noiseless BG/P CNK it changes nothing — the paper's point.
func TestMachineNoiseStretchesCompute(t *testing.T) {
	run := func(id machine.ID, plan *fault.Plan) sim.Duration {
		res, err := Execute(faultCfg(t, id, 8, plan), func(r *Rank) {
			for i := 0; i < 50; i++ {
				r.Compute(1e7, 0, machine.ClassStencil)
				r.World().Allreduce(r, 8, true)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	noisy := func() *fault.Plan {
		p := fault.NewPlan(7)
		p.UseMachineNoise()
		return p
	}

	xtQuiet := run(machine.XT4QC, nil)
	xtNoisy := run(machine.XT4QC, noisy())
	if xtNoisy <= xtQuiet {
		t.Errorf("XT4/QC with machine noise %v not slower than quiet %v", xtNoisy, xtQuiet)
	}

	bgQuiet := run(machine.BGP, nil)
	bgNoisy := run(machine.BGP, noisy())
	if bgNoisy != bgQuiet {
		t.Errorf("BG/P machine noise changed elapsed %v -> %v; CNK must be noiseless", bgQuiet, bgNoisy)
	}
}

// TestNoiseOverrideDeterministic: the same seed and profile give the
// same elapsed time; a different seed shifts phases and (generally)
// the result.
func TestNoiseOverrideDeterministic(t *testing.T) {
	run := func(seed uint64) sim.Duration {
		p := fault.NewPlan(seed)
		if err := p.SetNoise(fault.NoiseProfile{
			Period:   500 * sim.Microsecond,
			Duration: 25 * sim.Microsecond,
		}); err != nil {
			t.Fatal(err)
		}
		res, err := Execute(faultCfg(t, machine.BGP, 8, p), func(r *Rank) {
			for i := 0; i < 20; i++ {
				r.Compute(1e7, 0, machine.ClassStencil)
				r.World().Barrier(r)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	a, b := run(11), run(11)
	if a != b {
		t.Fatalf("same seed elapsed %v then %v", a, b)
	}
	if a <= 0 {
		t.Fatal("no elapsed time")
	}
}

// TestInvalidNoiseRejected: a bad override fails world construction.
func TestInvalidNoiseRejected(t *testing.T) {
	p := fault.NewPlan(1)
	if err := p.SetNoise(fault.NoiseProfile{Period: 0, Duration: sim.Microsecond}); err == nil {
		t.Fatal("SetNoise accepted an invalid profile")
	}
}
