package mpi

import (
	"testing"

	"bgpsim/internal/fault"
	"bgpsim/internal/machine"
	"bgpsim/internal/network"
	"bgpsim/internal/sim"
)

func recoverCfg(t *testing.T, nodes int, plan *fault.Plan) Config {
	t.Helper()
	m, err := machine.Lookup("BG/P")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Machine:  m,
		Nodes:    nodes,
		Mode:     machine.SMP,
		Fidelity: network.Contention,
		Faults:   plan,
	}
}

// barrierLoop is the standard recovery-test program: compute then
// barrier, repeated. Collectives are the only cross-rank coupling, so
// node kills are recoverable.
func barrierLoop(iters int) func(*Rank) {
	return func(r *Rank) {
		for i := 0; i < iters; i++ {
			r.Advance(10 * sim.Microsecond)
			r.World().Barrier(r)
		}
	}
}

func TestRecoverLeafDeath(t *testing.T) {
	plan := fault.NewPlan(1)
	plan.KillNode(7, sim.Time(25*sim.Microsecond)) // leaf of the 8-node tree
	plan.EnableRecovery()
	res, err := Execute(recoverCfg(t, 8, plan), barrierLoop(5))
	if err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
	if len(res.Lost) != 1 || res.Lost[0] != 7 {
		t.Fatalf("Lost = %v, want [7]", res.Lost)
	}
	if res.Net.Recoveries == 0 {
		t.Error("no recovery charged")
	}
	if res.Net.TreeRebuilds == 0 {
		t.Error("leaf death on BG/P should rebuild the hardware tree")
	}
	if res.Net.HWFallbacks != 0 {
		t.Errorf("leaf death demoted HW offloads (HWFallbacks = %d)", res.Net.HWFallbacks)
	}
	if res.Net.RecoveryTime <= 0 {
		t.Error("recovery charged no latency")
	}
}

func TestRecoverInteriorDeathDemotes(t *testing.T) {
	plan := fault.NewPlan(1)
	plan.KillNode(0, sim.Time(25*sim.Microsecond)) // root of the tree
	plan.EnableRecovery()
	res, err := Execute(recoverCfg(t, 8, plan), barrierLoop(5))
	if err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
	if len(res.Lost) != 1 || res.Lost[0] != 0 {
		t.Fatalf("Lost = %v, want [0]", res.Lost)
	}
	if res.Net.HWFallbacks == 0 {
		t.Error("interior-node death should demote HW offloads")
	}
	// Post-death barriers must run a software algorithm.
	sw := false
	for name, cs := range res.Net.Collectives {
		if name == "barrier/dissemination" && cs.Ops > 0 {
			sw = true
		}
	}
	if !sw {
		t.Errorf("no software barrier ops after demotion: %v", res.Net.Collectives)
	}
}

func TestRecoverFailStopStillAborts(t *testing.T) {
	plan := fault.NewPlan(1)
	plan.KillNode(3, sim.Time(25*sim.Microsecond))
	// No EnableRecovery: fail-stop.
	_, err := Execute(recoverCfg(t, 8, plan), barrierLoop(5))
	if err == nil {
		t.Fatal("fail-stop kill did not abort the run")
	}
}

func TestRecoverNoFaultMatchesHealthy(t *testing.T) {
	// A recovery-enabled plan with no kills must reproduce the healthy
	// run bit for bit (Elapsed and stats), despite the agreement gates.
	healthy, err := Execute(recoverCfg(t, 8, nil), barrierLoop(5))
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.NewPlan(1)
	plan.EnableRecovery()
	rec, err := Execute(recoverCfg(t, 8, plan), barrierLoop(5))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Elapsed != healthy.Elapsed {
		t.Errorf("recovery mode without faults: elapsed %v, healthy %v", rec.Elapsed, healthy.Elapsed)
	}
	if rec.Net.Recoveries != 0 {
		t.Errorf("recovery charged with no faults: %d", rec.Net.Recoveries)
	}
}

func TestRecoverAllreducePayloadSemantics(t *testing.T) {
	plan := fault.NewPlan(1)
	plan.KillNode(5, sim.Time(25*sim.Microsecond))
	plan.EnableRecovery()
	got := make([]interface{}, 8)
	res, err := Execute(recoverCfg(t, 8, plan), func(r *Rank) {
		for i := 0; i < 3; i++ {
			r.Advance(20 * sim.Microsecond)
			got[r.ID()] = r.World().AllreducePayload(r, 8, 1<<uint(r.ID()),
				func(a, b interface{}) interface{} { return a.(int) + b.(int) })
		}
	})
	if err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
	if len(res.Lost) != 1 || res.Lost[0] != 5 {
		t.Fatalf("Lost = %v, want [5]", res.Lost)
	}
	want := 0
	for id := 0; id < 8; id++ {
		if id != 5 {
			want += 1 << uint(id)
		}
	}
	for id := 0; id < 8; id++ {
		if id == 5 {
			continue
		}
		if got[id] != want {
			t.Errorf("rank %d allreduce = %v, want %d (sum over survivors)", id, got[id], want)
		}
	}
}
