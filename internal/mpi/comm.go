package mpi

import (
	"fmt"
	"sort"
	"strconv"

	"bgpsim/internal/sim"
	"bgpsim/internal/trace"
)

// Comm is a communicator: an ordered set of world ranks. The world
// communicator is created with the World; subsets are made with Split.
// Comm values are shared between the ranks of the communicator.
type Comm struct {
	w       *World
	name    string
	members []int // world rank ids in communicator-rank order
	index   map[int]int
	isWorld bool

	// Recovery-mode state (recover.go): the cached live sub-communicator
	// for the current failure epoch, and the last epoch whose recovery
	// latency this comm has been charged.
	liveCache *Comm
	liveEpoch int
	recEpoch  int
}

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.members) }

// Rank returns r's rank within the communicator, or -1 if r is not a
// member.
func (c *Comm) Rank(r *Rank) int {
	if c.isWorld {
		return r.id
	}
	if i, ok := c.index[r.id]; ok {
		return i
	}
	return -1
}

// Member returns the world rank id of communicator rank i.
func (c *Comm) Member(i int) int { return c.members[i] }

// nextKey returns a unique key for the rank's next collective on this
// communicator. MPI requires all members to issue collectives in the
// same order, so the per-rank sequence numbers agree. Built by hand
// rather than with fmt: this runs once per rank per collective, and
// fmt's deep call stack forces a stack grow on every fresh rank
// goroutine.
func (c *Comm) nextKey(r *Rank, kind string) string {
	if r.collSeq == nil {
		r.collSeq = make(map[string]int)
	}
	seq := r.collSeq[c.name]
	r.collSeq[c.name] = seq + 1
	b := make([]byte, 0, len(c.name)+len(kind)+8)
	b = append(b, c.name...)
	b = append(b, '#')
	b = strconv.AppendInt(b, int64(seq), 10)
	b = append(b, ':')
	b = append(b, kind...)
	return string(b)
}

// gate synchronizes the members of one collective operation. Ranks
// enter with a value; when the last member arrives, the finisher
// computes each member's release time (and optionally a shared
// result), and everyone resumes at their release time.
type gate struct {
	c       *Comm
	fin     finisher
	need    int
	ranks   []*Rank
	times   []sim.Time
	vals    []interface{}
	indices map[int]int // world rank id -> entry index
	result  interface{}
}

// finisher computes per-entry release times given the entry times. It
// may also return a shared result value.
type finisher func(ranks []*Rank, times []sim.Time, vals []interface{}) (release []sim.Time, result interface{})

// sync enters the calling rank into the gate for the given collective
// key and blocks until released. It returns the finisher's shared
// result.
func (c *Comm) sync(r *Rank, key string, val interface{}, fin finisher) interface{} {
	if r.sh != nil {
		return c.syncShard(r, key, val, fin)
	}
	g, ok := c.w.gates[key]
	if !ok {
		g = &gate{c: c, fin: fin, need: c.liveSize(), indices: make(map[int]int)}
		c.w.gates[key] = g
	}
	if _, dup := g.indices[r.id]; dup {
		panic(fmt.Sprintf("mpi: rank %d entered collective %q twice", r.id, key))
	}
	g.indices[r.id] = len(g.ranks)
	g.ranks = append(g.ranks, r)
	g.times = append(g.times, r.proc.Now())
	g.vals = append(g.vals, val)
	if len(g.ranks) == g.need {
		c.w.completeGate(key, g)
	}
	r.proc.BlockWith("collective ", key)
	if r.gateDropped {
		// Removed from an open gate by failNode: unwind out of the
		// collective instead of consuming its (possibly absent) result.
		// A dead rank released from a *completed* gate must NOT unwind
		// here: the gate's decision already committed it (a software
		// algorithm over the pre-death membership may need its rounds),
		// so it proceeds and dies at the collective's exit boundary.
		r.gateDropped = false
		killRank()
	}
	return g.result
}

// completeGate runs the gate's finisher and schedules every entrant's
// release. Releases are clamped to now: in the normal path the last
// arrival is now and every finisher releases at or after it, but gate
// repair (failNode) can complete a gate whose surviving entrants all
// arrived in the past.
func (w *World) completeGate(key string, g *gate) {
	release, result := g.fin(g.ranks, g.times, g.vals)
	g.result = result
	now := w.now()
	for i, rr := range g.ranks {
		t := release[i]
		if t < now {
			t = now
		}
		if rr.sh != nil {
			// Sharded entrant: hand the result over directly (the gate
			// object is deleted before the rank resumes on its shard
			// kernel) and lift the shard's window cap.
			rr.gateResult = result
			rr.sh.blockedGates--
		}
		rr.proc.WakeAt(t)
	}
	delete(w.gates, key)
}

// uniformFinisher releases every member at last-arrival + d(). The
// duration is computed lazily, exactly once, when the last member
// arrives (so hardware-offload accounting counts one operation).
func uniformFinisher(d func() sim.Duration) finisher {
	return func(ranks []*Rank, times []sim.Time, _ []interface{}) ([]sim.Time, interface{}) {
		var last sim.Time
		for _, t := range times {
			if t > last {
				last = t
			}
		}
		release := make([]sim.Time, len(times))
		end := last.Add(d())
		for i := range release {
			release[i] = end
		}
		return release, nil
	}
}

// Split partitions the communicator by color, ordering each new
// communicator by (key, world rank). Every member must call Split; it
// is a collective operation. Ranks passing a negative color receive a
// nil communicator (MPI_UNDEFINED).
func (c *Comm) Split(r *Rank, color, key int) *Comm {
	gk := c.nextKey(r, "split")
	type ck struct{ color, key, world int }
	fin := func(ranks []*Rank, times []sim.Time, vals []interface{}) ([]sim.Time, interface{}) {
		var last sim.Time
		for _, t := range times {
			if t > last {
				last = t
			}
		}
		// Group members by color.
		byColor := map[int][]ck{}
		for i, v := range vals {
			e := v.(ck)
			if e.color >= 0 {
				byColor[e.color] = append(byColor[e.color], ck{e.color, e.key, ranks[i].id})
			}
		}
		comms := map[int]*Comm{}
		colors := make([]int, 0, len(byColor))
		for col := range byColor {
			colors = append(colors, col)
		}
		sort.Ints(colors)
		for _, col := range colors {
			es := byColor[col]
			sort.Slice(es, func(i, j int) bool {
				if es[i].key != es[j].key {
					return es[i].key < es[j].key
				}
				return es[i].world < es[j].world
			})
			nc := &Comm{
				w:        c.w,
				name:     fmt.Sprintf("%s/%s:%d", c.name, gk, col),
				members:  make([]int, len(es)),
				index:    make(map[int]int, len(es)),
				recEpoch: c.w.epoch, // born after these failures: no back charge
			}
			for i, e := range es {
				nc.members[i] = e.world
				nc.index[e.world] = i
			}
			c.w.registerComm(nc)
			comms[col] = nc
		}
		// A split costs roughly one small allgather; charge a software
		// barrier's worth of time.
		d := c.w.analyticBarrier(c.Size())
		release := make([]sim.Time, len(times))
		for i := range release {
			release[i] = last.Add(d)
		}
		return release, comms
	}
	if tb := r.tb; tb != nil {
		tb.Record(trace.Event{T: r.proc.Now(), Rank: r.id, Kind: trace.CollEnter,
			Peer: -1, Label: gk})
	}
	if r.pb != nil {
		probeColl(r, gk, "split", true)
	}
	res := c.sync(r, gk, ck{color, key, r.id}, fin)
	if tb := r.tb; tb != nil {
		tb.Record(trace.Event{T: r.proc.Now(), Rank: r.id, Kind: trace.CollExit,
			Peer: -1, Label: gk})
	}
	if r.pb != nil {
		probeColl(r, gk, "split", false)
	}
	comms := res.(map[int]*Comm)
	if color < 0 {
		return nil
	}
	return comms[color]
}
