package mpi

// Edge cases of the sharded kernel: degenerate lookahead, more shards
// than ranks, and correlated failures whose blast domain straddles a
// shard boundary. All must preserve the determinism contract — output
// byte-identical at every shard count — or fall back to the serial
// kernel when the configuration admits no safe lookahead.

import (
	"testing"

	"bgpsim/internal/fault"
	"bgpsim/internal/machine"
	"bgpsim/internal/sim"
	"bgpsim/internal/topology"
)

// TestShardZeroLookaheadFallback: a machine whose hop latency rounds
// to zero picoseconds has no usable lookahead — a cross-domain send
// could arrive in the very timestamp it was issued — so every shard
// count must silently run the serial kernel and agree with shards=0.
func TestShardZeroLookaheadFallback(t *testing.T) {
	m := *machine.Get(machine.BGP)
	m.TorusHopLat = 0
	cfg := analyticConfig(8, machine.SMP)
	cfg.Machine = &m

	prog := func(r *Rank) {
		n := r.Size()
		r.Sendrecv((r.ID()+1)%n, 512, 1, (r.ID()+n-1)%n, 1)
		r.World().Barrier(r)
	}
	base := takeSnapshot(t, cfg, 0, prog)
	for _, s := range []int{1, 2, 4} {
		got := takeSnapshot(t, cfg, s, prog)
		if got.shards != 1 {
			t.Errorf("shards=%d with zero lookahead: ran on %d shards, want serial fallback", s, got.shards)
		}
		if got.result != base.result || got.err != base.err {
			t.Errorf("shards=%d: result %q err %q, serial gave %q err %q",
				s, got.result, got.err, base.result, base.err)
		}
	}
}

// TestShardEquivTinyLookahead shrinks the hop latency to one picosecond
// — the smallest representable nonzero lookahead — so every
// conservative window is as narrow as possible and adjacent-domain
// messages land on or next to window boundaries with heavy timestamp
// ties. The ring exchange must still be byte-identical at every count.
func TestShardEquivTinyLookahead(t *testing.T) {
	m := *machine.Get(machine.BGP)
	m.TorusHopLat = 1e-12
	cfg := analyticConfig(16, machine.SMP)
	cfg.Machine = &m

	prog := func(r *Rank) {
		n := r.Size()
		for it := 0; it < 4; it++ {
			right := (r.ID() + 1) % n
			left := (r.ID() + n - 1) % n
			r.Sendrecv(right, 2048, 1, left, 1)
		}
		r.World().Barrier(r)
	}
	// With near-zero latency, many cross-rank events share timestamps;
	// the canonical order then legitimately differs from the serial
	// kernel's creation order, so only mutual byte-identity across
	// shard counts is asserted (as for the Split workload).
	want := takeSnapshot(t, cfg, 1, prog)
	if want.err != "" {
		t.Fatalf("baseline: %v", want.err)
	}
	if want.shards != 1 {
		t.Fatalf("baseline ran on %d shards, want the sharded path", want.shards)
	}
	checkEquivSharded(t, cfg, prog, want, 2, 4, 8, 16)
}

// TestShardEquivMoreShardsThanRanks: shard counts beyond the node
// count leave trailing shards with no ranks at all. Empty shards must
// neither wedge the window protocol nor perturb the output.
func TestShardEquivMoreShardsThanRanks(t *testing.T) {
	cfg := analyticConfig(2, machine.SMP) // 2 ranks on 2 nodes
	checkEquiv(t, cfg, func(r *Rank) {
		peer := 1 - r.ID()
		r.Sendrecv(peer, 1024, 7, peer, 7)
		r.World().Allreduce(r, 64, true)
	}, 3, 8, 32)
}

// TestPeakRankStatePinned pins the modeled per-rank state telemetry on
// a small run whose queue depths are easy to reason about: rank 0
// receives one eagerly-queued unmatched message from each of the other
// ranks before it posts any receive, so its peak footprint is the base
// record plus 7 queued messages — and the value must be identical on
// the serial and sharded kernels at every count.
func TestPeakRankStatePinned(t *testing.T) {
	const wantPeak = rankStateBaseBytes + 7*queuedMsgBytes
	cfg := analyticConfig(8, machine.SMP) // 8 ranks
	prog := func(r *Rank) {
		if r.ID() == 0 {
			// Let every peer's eager message land unmatched first.
			r.Compute(1e6, 0, machine.ClassScalar)
			for src := 1; src < r.Size(); src++ {
				r.Recv(src, 5)
			}
		} else {
			r.Send(0, 64, 5)
		}
	}
	for _, s := range []int{0, 1, 4} {
		c := cfg
		c.Shards = s
		res := mustRun(t, c, prog)
		if res.PeakRankState != wantPeak {
			t.Errorf("shards=%d: PeakRankState=%d, want %d", s, res.PeakRankState, wantPeak)
		}
	}
}

// TestShardEquivBlastSpansShards injects a card-level correlated blast
// whose shared-fate domain straddles a shard boundary, with recovery
// enabled: ranks die in two different event loops at the same fault
// time, and the survivors' collective recovery must still be
// byte-identical at every shard count.
func TestShardEquivBlastSpansShards(t *testing.T) {
	const nodes = 64
	plan := fault.NewPlan(11)
	plan.EnableRecovery()
	tor := topology.NewTorus(topology.DimsForNodes(nodes))
	res, err := plan.InjectBlast(tor, machine.Get(machine.BGP).Hierarchy(), fault.BlastSpec{
		At:      sim.Time(sim.Seconds(0.0003)),
		Origin:  8,
		PCard:   1, // escalate exactly to the 32-node card [0, 32)
		Density: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The test is about a blast spanning shards: at 4 shards of 16
	// nodes each, the card domain [0, 32) covers shards 0 and 1. Check
	// the draw actually killed nodes in at least two distinct domains.
	shardsHit := map[int]bool{}
	for _, n := range res.Dead {
		shardsHit[topology.ShardOfNode(n, nodes, 4)] = true
	}
	if len(shardsHit) < 2 {
		t.Fatalf("blast killed %v: all in one shard domain, pick another seed", res.Dead)
	}

	cfg := analyticConfig(nodes, machine.SMP)
	cfg.Faults = plan
	checkEquiv(t, cfg, func(r *Rank) {
		w := r.World()
		for it := 0; it < 6; it++ {
			r.Compute(2e5, 0, machine.ClassDGEMM)
			w.Allreduce(r, 128, false)
		}
	}, 2, 4, 8)
}
