package mpi

import (
	"strings"
	"testing"

	"bgpsim/internal/machine"
	"bgpsim/internal/network"
	"bgpsim/internal/trace"
)

func xtCollConfig(ranks int) Config {
	m := machine.Get(machine.XT4QC)
	rpn := m.RanksPerNode(machine.VN)
	nodes := (ranks + rpn - 1) / rpn
	return Config{Machine: m, Nodes: nodes, Mode: machine.VN,
		Fidelity: network.Contention, Ranks: ranks}
}

func TestParseCollSpec(t *testing.T) {
	got, err := ParseCollSpec("allreduce=ring,bcast=binomial")
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if got["allreduce"] != "ring" || got["bcast"] != "binomial" || len(got) != 2 {
		t.Errorf("parsed %v", got)
	}
	if got, err := ParseCollSpec("  "); got != nil || err != nil {
		t.Errorf("blank spec = %v, %v; want nil, nil", got, err)
	}
	for _, bad := range []string{"allreduce", "=ring", "allreduce=", "frobnicate=ring", "allreduce=frobnicate"} {
		if _, err := ParseCollSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	// Bad-algorithm errors should name the valid choices.
	_, err = ParseCollSpec("allreduce=nope")
	if err == nil || !strings.Contains(err.Error(), "ring") {
		t.Errorf("error %v should list valid allreduce algorithms", err)
	}
}

func TestNewWorldCollValidation(t *testing.T) {
	cfg := bgpConfig(8, machine.VN)
	cfg.Coll = map[string]string{"frobnicate": "ring"}
	if _, err := NewWorld(cfg); err == nil {
		t.Error("unknown op in Coll should fail")
	}
	cfg = bgpConfig(8, machine.VN)
	cfg.Coll = map[string]string{"allreduce": "frobnicate"}
	if _, err := NewWorld(cfg); err == nil {
		t.Error("unknown algorithm in Coll should fail")
	}
	cfg = bgpConfig(8, machine.VN)
	cfg.Coll = map[string]string{"allreduce": "ring"}
	if _, err := NewWorld(cfg); err != nil {
		t.Errorf("valid Coll rejected: %v", err)
	}
}

func TestCollRegistryEnumeration(t *testing.T) {
	ops := CollOps()
	if len(ops) != 10 {
		t.Fatalf("CollOps() = %v", ops)
	}
	for _, op := range ops {
		algos := CollAlgos(op)
		// Every major collective carries at least two registered
		// algorithms (the stock choice plus an alternative).
		if len(algos) < 2 {
			t.Errorf("%s has algorithms %v, want >= 2", op, algos)
		}
		if !sortedStrings(algos) {
			t.Errorf("%s algorithms not sorted: %v", op, algos)
		}
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			return false
		}
	}
	return true
}

func TestCollOverrideChangesTraffic(t *testing.T) {
	run := func(coll map[string]string) *Result {
		cfg := xtCollConfig(16)
		cfg.Coll = coll
		return mustRun(t, cfg, func(r *Rank) {
			for i := 0; i < 3; i++ {
				r.World().Allreduce(r, 4096, true)
			}
		})
	}
	def := run(nil)
	ring := run(map[string]string{"allreduce": "ring"})
	if def.Elapsed == ring.Elapsed {
		t.Error("ring override should change the allreduce time")
	}
	cs, ok := ring.Net.Collectives["allreduce/ring"]
	if !ok {
		t.Fatalf("traffic not attributed to allreduce/ring: %v", ring.Net.Collectives)
	}
	if cs.Ops != 3 {
		t.Errorf("allreduce/ring ops = %d, want 3", cs.Ops)
	}
	if cs.Messages <= 0 || cs.Bytes <= 0 {
		t.Errorf("allreduce/ring counters = %+v", cs)
	}
}

func TestCollOverrideFallbackWhenIneligible(t *testing.T) {
	// tree-offload requires the BlueGene collective tree; on the XT the
	// override must fall back to the machine's table per call.
	cfg := xtCollConfig(16)
	cfg.Coll = map[string]string{"allreduce": "tree-offload"}
	res := mustRun(t, cfg, func(r *Rank) {
		r.World().Allreduce(r, 1024, true)
	})
	if _, ok := res.Net.Collectives["allreduce/tree-offload"]; ok {
		t.Error("tree-offload ran on a machine without the tree")
	}
	if cs, ok := res.Net.Collectives["allreduce/recdbl"]; !ok || cs.Ops != 1 {
		t.Errorf("fallback should pick the table's recdbl: %v", res.Net.Collectives)
	}
}

func TestCollTraceCarriesAlgorithm(t *testing.T) {
	tb := trace.NewBuffer(0)
	cfg := xtCollConfig(8)
	cfg.Trace = tb
	cfg.Coll = map[string]string{"bcast": "binomial"}
	mustRun(t, cfg, func(r *Rank) {
		r.World().Bcast(r, 0, 512)
	})
	enters := tb.OfKind(trace.CollEnter)
	if len(enters) != 8 {
		t.Fatalf("got %d coll-enter events, want 8", len(enters))
	}
	for _, e := range enters {
		if e.Algo != "bcast/binomial" {
			t.Fatalf("coll-enter algo = %q, want bcast/binomial", e.Algo)
		}
	}
	exits := tb.OfKind(trace.CollExit)
	if len(exits) != 8 || exits[0].Algo != "bcast/binomial" {
		t.Fatalf("coll-exit events = %d (algo %q)", len(exits), exits[0].Algo)
	}
}

func TestSelectCollAlgoThresholds(t *testing.T) {
	xt := machine.Get(machine.XT4QC)
	bgp := machine.Get(machine.BGP)
	cases := []struct {
		m      *machine.Machine
		op     string
		bytes  int
		double bool
		want   string
	}{
		{xt, "allreduce", 1024, true, "recdbl"},
		{xt, "allreduce", 65536, true, "rabenseifner"},
		{xt, "bcast", 4096, false, "binomial"},
		{xt, "bcast", 65536, false, "binomial-pipelined"},
		{bgp, "barrier", 0, false, "hw-gi"},
		{bgp, "bcast", 65536, false, "tree-offload"},
		{bgp, "allreduce", 1024, true, "tree-offload"},
		{bgp, "allreduce", 1024, false, "recdbl"}, // single precision: no tree ALU
	}
	for _, c := range cases {
		got := SelectCollAlgo(c.m, c.op, c.bytes, 64, c.double, true)
		if got != c.want {
			t.Errorf("%s %s %dB double=%v -> %s, want %s", c.m.Name, c.op, c.bytes, c.double, got, c.want)
		}
	}
}
